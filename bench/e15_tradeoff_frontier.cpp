// E15 — the defect-vs-colors trade-off frontier.
//
// The paper (Section 1.1): "One of the most important open problems in
// the context of defective coloring is to determine the combinations of
// defect d, number of colors C, and maximum degree Δ (or β) such that a
// d-defective C-coloring can be computed in time f(Δ)·log* n."
//
// This bench charts what the algorithms built here actually achieve on
// one graph, for each defect level d:
//   * the existential bound ⌈(Δ+1)/(d+1)⌉ [Lov66] (no known fast alg.);
//   * the Lemma 3.4 coloring (O(log* n) rounds, O((Δ/d)²)-ish colors);
//   * the BE09 two-sweep (O(Δ²→q) rounds via Linial, ⌈(Δ+1)/(d+1)⌉²);
//   * the one-sweep θ-defective greedy on a θ-bounded graph
//     (O(θ·Δ/d) colors).
// All defects are MEASURED, not assumed.
#include "bench/bench_util.h"
#include "baselines/be09_two_sweep.h"
#include "baselines/one_sweep_defective.h"
#include "coloring/kuhn_defective.h"
#include "graph/coloring_checks.h"
#include "graph/independence.h"
#include "graph/line_graph.h"
#include "util/math.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  args.check_all_consumed();

  banner("E15", "the d-defective C-coloring frontier achieved here");

  {
    Rng rng(2100);
    const Graph g = random_near_regular(600, 24, rng);
    const int delta = g.max_degree();
    const auto [init, q] = initial_coloring(g, Orientation::by_id(g));
    Table t("general graph, Δ = " + std::to_string(delta) +
            " (measured defect <= d in every row)");
    t.header({"d", "Lovász ⌈(Δ+1)/(d+1)⌉", "Lemma 3.4 colors",
              "L3.4 rounds", "BE09 colors", "BE09 rounds"});
    CsvWriter csv("e15_tradeoff.csv",
                  {"d", "lovasz", "kuhn_colors", "kuhn_rounds",
                   "be09_colors", "be09_rounds"});
    for (int d : {2, 4, 8, 16}) {
      // Lemma 3.4 with α = d/Δ (undirected variant so the defect is the
      // usual undirected one).
      const double alpha =
          static_cast<double>(d) / static_cast<double>(delta);
      const auto kuhn = kuhn_defective_undirected(
          g, init, static_cast<std::uint64_t>(q), alpha);
      if (max_undirected_defect(g, kuhn.colors) > d) return 1;

      // BE09 two-sweep: k = ⌈(Δ+1)/(d+1)⌉, k² colors.
      const int k = static_cast<int>(ceil_div(delta + 1, d + 1));
      const auto be09 = be09_two_sweep_undirected(g, init, q, k);
      if (max_undirected_defect(g, be09.colors) > d) return 1;

      const std::int64_t lovasz = ceil_div(delta + 1, d + 1);
      t.add(d, lovasz, kuhn.num_colors, kuhn.metrics.rounds,
            be09.num_colors, be09.metrics.rounds);
      csv.row({std::to_string(d), std::to_string(lovasz),
               std::to_string(kuhn.num_colors),
               std::to_string(kuhn.metrics.rounds),
               std::to_string(be09.num_colors),
               std::to_string(be09.metrics.rounds)});
    }
    t.print(std::cout);
    std::cout
        << "Reading: nobody reaches the Lovász bound fast — Lemma 3.4 is\n"
           "O(log* n)-round but quadratically many colors; BE09 matches\n"
           "⌈(Δ+1)/(d+1)⌉² with O(q) rounds. Closing the gap is the open\n"
           "problem the paper highlights.\n\n";
  }

  {
    // θ-bounded graphs escape the quadratic barrier: one sweep gives
    // O(θ·Δ/d) colors.
    Rng rng(2200);
    const Graph g = line_graph(gnp_avg_degree(80, 10.0, rng));  // θ <= 2
    const int delta = g.max_degree();
    const auto [init, q] = initial_coloring(g, Orientation::by_id(g));
    Table t("θ-bounded graph (line graph, Δ = " + std::to_string(delta) +
            ")");
    t.header({"k (colors)", "measured defect", "(2⌊Δ/k⌋+1)·θ bound",
              "rounds"});
    for (int k : {2, 4, 8, 16}) {
      const auto res = one_sweep_theta_defective(g, init, q, k);
      const int measured = max_undirected_defect(g, res.colors);
      const int bound = (2 * (delta / k) + 1) * 2;
      if (measured > bound) return 1;
      t.add(k, measured, bound, res.metrics.rounds);
    }
    t.print(std::cout);
    std::cout << "Reading: k colors buy defect ~Δ/k — the LINEAR trade-off\n"
                 "(vs quadratic above) that Section 4 builds on.\n";
  }
  return 0;
}
