// E3 — sharpness of the Eq. (2) slack threshold (ablation).
//
// Theorem 1.1 promises success whenever Σ(d+1) > max{p, |L|/p}·β. We scale
// the list size to a fraction f of the threshold and run the Two-Sweep
// with the precondition check disabled: Phase II throws when no feasible
// color remains. Success should be guaranteed for f > 1 and degrade below
// the threshold — how quickly it degrades is what the experiment measures.
#include "bench/bench_util.h"
#include "core/two_sweep.h"
#include "util/check.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 400));
  const int degree = static_cast<int>(args.get_int("degree", 12));
  const int defect = static_cast<int>(args.get_int("defect", 1));
  const int seeds = static_cast<int>(args.get_int("seeds", 10));
  args.check_all_consumed();

  banner("E3", "Eq. (2) slack threshold sharpness (ablation)");

  Table t;
  t.header({"slack factor f", "success", "trials", "note"});
  CsvWriter csv("e3_slack_threshold.csv", {"factor", "seed", "success"});

  for (double f : {0.25, 0.5, 0.75, 0.9, 1.0, 1.05, 1.25}) {
    int ok = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(400 + static_cast<std::uint64_t>(seed));
      const Graph g = random_near_regular(n, degree, rng);
      Orientation o = Orientation::by_id(g);
      const int beta = o.beta();
      const int p = beta / (defect + 1) + 1;
      // Threshold list size: smallest Λ with Λ(d+1) > max{p, Λ/p}β.
      std::int64_t threshold = 1;
      while (threshold * (defect + 1) * p <=
             std::max<std::int64_t>(static_cast<std::int64_t>(p) * p,
                                    threshold) *
                 beta) {
        ++threshold;
      }
      const auto list_size = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(f * static_cast<double>(threshold)));
      // Maximal contention: every node holds the SAME list (color space ==
      // list size), so the slack bound has no randomness to hide behind.
      const OldcInstance inst =
          random_uniform_oldc(g, std::move(o), list_size,
                              static_cast<int>(list_size), defect, rng);
      const auto [init, q] = initial_coloring(g, inst.orientation);
      bool success;
      try {
        const ColoringResult res = two_sweep(inst, init, q, p,
                                             /*skip_precondition_check=*/true);
        success = validate_oldc(inst, res.colors);
      } catch (const CheckError&) {
        success = false;  // Phase II ran out of feasible colors
      }
      ok += success ? 1 : 0;
      csv.row({std::to_string(f), std::to_string(seed), success ? "1" : "0"});
    }
    t.add(f, ok, seeds, f >= 1.0 ? "theorem regime" : "below threshold");
  }
  t.print(std::cout);
  std::cout << "Expectation: 100% success at f >= 1 (guaranteed by\n"
               "Lemma 3.1/3.2); success collapses below the threshold — the\n"
               "Eq. (2) bound is essentially sharp under full contention.\n";
  return 0;
}
