// E1 — Theorem 1.1 (ε = 0): the Two-Sweep runs in O(q) rounds and solves
// every instance satisfying Eq. (2).
//
// We color one fixed graph properly, then embed the same proper coloring
// into larger and larger color spaces q: the round count must track 2q
// (two sweeps over the classes), independent of how many classes are
// actually occupied — the schedule is what costs rounds, exactly as in
// the paper's O(q) bound.
#include "bench/bench_util.h"
#include "baselines/greedy.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 600));
  const int degree = static_cast<int>(args.get_int("degree", 10));
  const int defect = static_cast<int>(args.get_int("defect", 1));
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  args.check_all_consumed();

  banner("E1", "Two-Sweep rounds are Θ(q) (Theorem 1.1, ε = 0)");

  Table t;
  t.header({"q", "rounds(mean)", "rounds/q", "valid", "max msg bits"});
  CsvWriter csv("e1_two_sweep_rounds.csv",
                {"q", "seed", "rounds", "valid", "max_msg_bits"});

  for (std::int64_t q_factor : {1, 2, 4, 8, 16}) {
    Stats rounds, bits;
    bool all_valid = true;
    std::int64_t q_used = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(100 + static_cast<std::uint64_t>(seed));
      const Graph g = random_near_regular(n, degree, rng);
      Orientation o = Orientation::by_id(g);
      const int beta = o.beta();
      const int p = beta / (defect + 1) + 1;
      const int list_size = p * p + p + 1;
      const OldcInstance inst = random_uniform_oldc(
          g, std::move(o), 4 * list_size, list_size, defect, rng);
      // Proper coloring with Δ+1 colors, then embed into a q-sized space
      // by scaling the labels.
      const ColoringResult base = greedy_delta_plus_one(g);
      const std::int64_t base_colors = num_colors_used(base.colors);
      const std::int64_t q = base_colors * q_factor;
      std::vector<Color> initial(base.colors);
      for (auto& c : initial) c *= q_factor;  // still proper, values < q
      const ColoringResult res = two_sweep(inst, initial, q, p);
      const bool valid = validate_oldc(inst, res.colors);
      all_valid = all_valid && valid;
      rounds.add(static_cast<double>(res.metrics.rounds));
      bits.add(res.metrics.max_message_bits);
      q_used = q;
      csv.row({std::to_string(q), std::to_string(seed),
               std::to_string(res.metrics.rounds), valid ? "1" : "0",
               std::to_string(res.metrics.max_message_bits)});
    }
    t.add(q_used, rounds.mean(), rounds.mean() / static_cast<double>(q_used),
          all_valid ? "yes" : "NO", bits.max);
  }
  t.print(std::cout);
  std::cout << "Expectation: rounds/q ≈ 2 for every q (two sweeps + setup).\n";
  return 0;
}
