// E14 — engineering scaling: wall-clock of the simulator and the main
// pipelines as n grows. Not a paper claim — a library health check: the
// whole reproduction is supposed to run on a laptop, so simulation cost
// must stay near-linear in (n + traffic) per round.
#include <chrono>

#include "bench/bench_util.h"
#include "core/fast_two_sweep.h"
#include "core/list_coloring.h"
#include "graph/coloring_checks.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const bool quick = args.get_bool("quick");
  args.check_all_consumed();

  banner("E14", "wall-clock scaling of the simulator and pipelines");

  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - t0)
        .count();
  };

  {
    Table t("Fast-Two-Sweep (p=2, eps=0.5, degree 6, q = n)");
    t.header({"n", "sim rounds", "wall ms", "us per node"});
    CsvWriter csv("e14_scaling.csv", {"pipeline", "n", "rounds", "ms"});
    for (NodeId n : {2000, 8000, 32000, quick ? 32000 : 64000}) {
      Rng rng(1800);
      const Graph g = random_near_regular(n, 6, rng);
      Orientation o = Orientation::by_id(g);
      const int d = o.beta();
      const OldcInstance inst =
          random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
      std::vector<Color> ids(static_cast<std::size_t>(n));
      for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
      const auto t0 = Clock::now();
      const ColoringResult res = fast_two_sweep(inst, ids, n, 2, 0.5);
      const auto ms = ms_since(t0);
      if (!validate_oldc(inst, res.colors)) return 1;
      t.add(n, res.metrics.rounds, ms,
            1000.0 * static_cast<double>(ms) / n);
      csv.row({"fast_two_sweep", std::to_string(n),
               std::to_string(res.metrics.rounds), std::to_string(ms)});
    }
    t.print(std::cout);
  }

  {
    Table t("(deg+1)-list coloring, oracle engine (degree 12)");
    t.header({"n", "sim rounds", "wall ms"});
    for (NodeId n : {1000, 4000, quick ? 4000 : 16000}) {
      Rng rng(1900);
      const Graph g = random_near_regular(n, 12, rng);
      const std::int64_t C = 2 * (g.max_degree() + 1);
      const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
      const auto t0 = Clock::now();
      const ColoringResult res = solve_degree_plus_one(
          inst, ListColoringOptions{PartitionEngine::kBeg18Oracle});
      const auto ms = ms_since(t0);
      if (!is_proper_coloring(g, res.colors)) return 1;
      t.add(n, res.metrics.rounds, ms);
    }
    t.print(std::cout);
  }
  std::cout << "Expectation: wall time per node roughly flat — simulation\n"
               "cost is dominated by (rounds × active nodes), not n².\n";
  return 0;
}
