// E14 — engineering scaling: wall-clock of the simulator and the main
// pipelines as n grows. Not a paper claim — a library health check: the
// whole reproduction is supposed to run on a laptop, so simulation cost
// must stay near-linear in (n + traffic) per round.
//
// Flags: --quick (smaller sizes), --threads=N (simulator worker threads;
// results are bit-identical, only wall-clock changes), --reps=N (repeat
// each measurement and report the minimum — the noise-robust statistic
// for wall-clock), --engine=auto|scalar|vector (pin the simulator
// execution engine; without the flag the solver sections measure scalar
// AND vector back to back and emit one row per engine — results are
// bit-identical, the two rows differ only in wall-clock). Besides the
// tables, writes BENCH_e14.json with one object per measured row for
// machine consumption; tools/bench_diff compares two such files and
// perf_gate (ctest) fails the build on wall-clock regressions.
//
// The last section measures the tracing layer itself: the same pipeline
// untraced, under a sink-less tracer, and under a JSONL sink, plus the
// per-phase round/bit breakdown the span tree yields — and the invariant
// checker the same way (disabled / collect / throw), backing its
// zero-cost-when-disabled contract with a number.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "check/invariant_checker.h"
#include "core/fast_two_sweep.h"
#include "core/solver_registry.h"
#include "graph/coloring_checks.h"
#include "sim/batch_runner.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/trace.h"
#include "storage/snapshot.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const bool quick = args.get_bool("quick");
  const std::int64_t threads = args.get_int("threads", 0);
  const std::int64_t reps = std::max<std::int64_t>(1, args.get_int("reps", 1));
  const std::string engine_arg = args.get_string("engine", "");
  args.check_all_consumed();
  if (threads > 0) Network::set_default_num_threads(static_cast<int>(threads));
  const std::int64_t used_threads = Network::default_num_threads();

  // Solver sections measure one row per engine. With --engine the list
  // collapses to that engine (and the non-solver sections run under it
  // too, via the process default).
  const std::vector<EngineKind> engines =
      engine_arg.empty()
          ? std::vector<EngineKind>{EngineKind::kScalar, EngineKind::kVector}
          : std::vector<EngineKind>{engine_from_string(engine_arg)};
  const EngineKind rest_engine =
      engine_arg.empty() ? EngineKind::kAuto : engines.front();
  set_default_engine(rest_engine);

  banner("E14", "wall-clock scaling of the simulator and pipelines");

  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - t0)
        .count();
  };

  JsonWriter json("BENCH_e14.json");
  {
    Table t("Fast-Two-Sweep (p=2, eps=0.5, degree 6, q = n)");
    t.header({"n", "engine", "sim rounds", "wall ms", "us per node"});
    CsvWriter csv("e14_scaling.csv", {"pipeline", "n", "engine", "rounds",
                                      "ms"});
    for (NodeId n : {2000, 8000, 32000, quick ? 32000 : 64000}) {
      Rng rng(1800);
      const Graph g = random_near_regular(n, 6, rng);
      Orientation o = Orientation::by_id(g);
      const int d = o.beta();
      const OldcInstance inst =
          random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
      std::vector<Color> ids(static_cast<std::size_t>(n));
      for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
      // Registry dispatch; the explicit initial coloring (ids, q = n)
      // keeps the measured work identical to a direct fast_two_sweep call
      // (no Linial run is folded in).
      const Solver& solver = SolverRegistry::get().require("fast_two_sweep");
      SolveRequest req;
      req.oldc = &inst;
      req.initial_coloring = &ids;
      req.q = n;
      for (const EngineKind ek : engines) {
        set_default_engine(ek);
        std::int64_t best_ms = -1;
        ColoringResult res;
        for (std::int64_t rep = 0; rep < reps; ++rep) {
          const auto t0 = Clock::now();
          RunContext ctx;
          SolveResult sres = solver.solve(req, ctx);
          const auto ms = ms_since(t0);
          res.colors = std::move(sres.colors);
          res.metrics = sres.metrics;
          if (best_ms < 0 || ms < best_ms) best_ms = ms;
        }
        if (!validate_oldc(inst, res.colors)) return 1;
        const double us_per_node = 1000.0 * static_cast<double>(best_ms) / n;
        t.add(n, engine_name(ek), res.metrics.rounds, best_ms, us_per_node);
        csv.row({"fast_two_sweep", std::to_string(n), engine_name(ek),
                 std::to_string(res.metrics.rounds), std::to_string(best_ms)});
        json.row({{"pipeline", JsonWriter::str("fast_two_sweep")},
                  {"n", JsonWriter::num(static_cast<std::int64_t>(n))},
                  {"engine", JsonWriter::str(engine_name(ek))},
                  {"rounds", JsonWriter::num(res.metrics.rounds)},
                  {"wall_ms", JsonWriter::num(best_ms)},
                  {"us_per_node", JsonWriter::num(us_per_node)},
                  {"threads", JsonWriter::num(used_threads)}});
      }
      set_default_engine(rest_engine);
    }
    t.print(std::cout);
  }

  {
    Table t("(deg+1)-list coloring, oracle engine (degree 12)");
    t.header({"n", "sim rounds", "wall ms"});
    for (NodeId n : {1000, 4000, quick ? 4000 : 16000}) {
      Rng rng(1900);
      const Graph g = random_near_regular(n, 12, rng);
      const std::int64_t C = 2 * (g.max_degree() + 1);
      const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
      const Solver& solver = SolverRegistry::get().require("deg_plus_one");
      SolveRequest req;
      req.list_defective = &inst;  // params.engine defaults to the oracle
      std::int64_t best_ms = -1;
      ColoringResult res;
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        RunContext ctx;
        SolveResult sres = solver.solve(req, ctx);
        const auto ms = ms_since(t0);
        res.colors = std::move(sres.colors);
        res.metrics = sres.metrics;
        if (best_ms < 0 || ms < best_ms) best_ms = ms;
      }
      if (!is_proper_coloring(g, res.colors)) return 1;
      t.add(n, res.metrics.rounds, best_ms);
      json.row({{"pipeline", JsonWriter::str("deg_plus_one_oracle")},
                {"n", JsonWriter::num(static_cast<std::int64_t>(n))},
                {"rounds", JsonWriter::num(res.metrics.rounds)},
                {"wall_ms", JsonWriter::num(best_ms)},
                {"us_per_node",
                 JsonWriter::num(1000.0 * static_cast<double>(best_ms) / n)},
                {"threads", JsonWriter::num(used_threads)}});
    }
    t.print(std::cout);
  }

  {
    // Large-scale runs: generation + instance build (the parallel,
    // arena-backed setup path) split from the solve, with RSS and the
    // palette-dedup accounting that keeps list memory O(distinct + n).
    // Memory is reported as CURRENT RSS plus its delta over the
    // section-entry baseline: getrusage's max-RSS is monotone over the
    // process lifetime, so once the n=1M row runs, a lifetime-peak column
    // would repeat its high-water mark for every later sample. peak RSS
    // stays as the whole-process bound it actually is.
    Table t("Setup vs solve at scale (fast_two_sweep, degree 6)");
    t.header({"n", "engine", "setup ms", "solve ms", "rounds", "palettes",
              "arena MiB", "RSS MiB", "dRSS MiB", "peak RSS MiB"});
    std::vector<NodeId> big_sizes = quick ? std::vector<NodeId>{65536}
                                          : std::vector<NodeId>{262144, 1048576};
    const double section_rss_mib = current_rss_mib();
    for (NodeId n : big_sizes) {
      Rng rng(1800);
      const auto t_setup = Clock::now();
      const Graph g = random_near_regular(n, 6, rng);
      Orientation o = Orientation::by_id(g);
      const int d = o.beta();
      const OldcInstance inst =
          random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
      const std::int64_t setup_ms = ms_since(t_setup);
      std::vector<Color> ids(static_cast<std::size_t>(n));
      for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
      for (const EngineKind ek : engines) {
        set_default_engine(ek);
        std::int64_t solve_ms = -1;
        ColoringResult res;
        for (std::int64_t rep = 0; rep < reps; ++rep) {
          const auto t_solve = Clock::now();
          res = fast_two_sweep(inst, ids, n, 2, 0.5);
          const std::int64_t ms = ms_since(t_solve);
          if (solve_ms < 0 || ms < solve_ms) solve_ms = ms;
        }
        if (!validate_oldc(inst, res.colors)) return 1;
        const double arena_mib =
            static_cast<double>(inst.lists.memory_bytes()) / (1024.0 * 1024.0);
        const double rss_mib = current_rss_mib();
        const double rss_delta_mib = rss_mib - section_rss_mib;
        const double lifetime_peak_mib = peak_rss_mib();
        t.add(n, engine_name(ek), setup_ms, solve_ms, res.metrics.rounds,
              static_cast<std::int64_t>(inst.lists.num_palettes()), arena_mib,
              rss_mib, rss_delta_mib, lifetime_peak_mib);
        json.row({{"pipeline", JsonWriter::str("fast_two_sweep_scale")},
                  {"n", JsonWriter::num(static_cast<std::int64_t>(n))},
                  {"engine", JsonWriter::str(engine_name(ek))},
                  {"setup_ms", JsonWriter::num(setup_ms)},
                  {"solve_ms", JsonWriter::num(solve_ms)},
                  {"rounds", JsonWriter::num(res.metrics.rounds)},
                  {"num_palettes",
                   JsonWriter::num(
                       static_cast<std::int64_t>(inst.lists.num_palettes()))},
                  {"dedup_hits", JsonWriter::num(inst.lists.dedup_hits())},
                  {"arena_entries",
                   JsonWriter::num(inst.lists.arena_entries())},
                  {"palette_mib", JsonWriter::num(arena_mib)},
                  {"rss_mib", JsonWriter::num(rss_mib)},
                  {"rss_delta_mib", JsonWriter::num(rss_delta_mib)},
                  {"peak_rss_mib", JsonWriter::num(lifetime_peak_mib)},
                  {"threads", JsonWriter::num(used_threads)}});
      }
      set_default_engine(rest_engine);
    }
    t.print(std::cout);
  }

  {
    const NodeId n = quick ? 8000 : 32000;
    Rng rng(1800);
    const Graph g = random_near_regular(n, 6, rng);
    Orientation o = Orientation::by_id(g);
    const int d = o.beta();
    const OldcInstance inst =
        random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
    std::vector<Color> ids(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
    auto run_once = [&] { return fast_two_sweep(inst, ids, n, 2, 0.5); };

    // Alternate the three modes within each rep so drift (thermal, cache)
    // hits them equally; report minima.
    std::int64_t best_off = -1, best_null = -1, best_jsonl = -1;
    auto keep_min = [](std::int64_t& best, std::int64_t ms) {
      if (best < 0 || ms < best) best = ms;
    };
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      {
        const auto t0 = Clock::now();
        run_once();
        keep_min(best_off, ms_since(t0));
      }
      {
        Tracer tracer;  // installed but sink-less: the null-tracer path
        tracer.install();
        const auto t0 = Clock::now();
        run_once();
        keep_min(best_null, ms_since(t0));
        tracer.finish();
      }
      {
        Tracer tracer;
        tracer.add_sink(make_jsonl_trace_sink("e14_trace.jsonl"));
        tracer.install();
        const auto t0 = Clock::now();
        run_once();
        keep_min(best_jsonl, ms_since(t0));
        tracer.finish();
      }
    }

    Table t("Tracing overhead (fast_two_sweep, n=" + std::to_string(n) + ")");
    t.header({"mode", "wall ms"});
    t.add("untraced", best_off);
    t.add("tracer, no sink", best_null);
    t.add("tracer + jsonl", best_jsonl);
    t.print(std::cout);
    for (const auto& [mode, ms] :
         {std::pair<const char*, std::int64_t>{"off", best_off},
          {"null", best_null},
          {"jsonl", best_jsonl}}) {
      json.row({{"pipeline", JsonWriter::str("trace_overhead")},
                {"mode", JsonWriter::str(mode)},
                {"n", JsonWriter::num(static_cast<std::int64_t>(n))},
                {"wall_ms", JsonWriter::num(ms)},
                {"threads", JsonWriter::num(used_threads)}});
    }

    // Invariant-checker overhead, same protocol as the tracing rows:
    // disabled (the hooks are one pointer test each — must be free),
    // collect mode, and throw mode (which also arms the engine's
    // per-message bandwidth guard).
    std::int64_t best_ck_off = -1, best_ck_collect = -1, best_ck_throw = -1;
    for (std::int64_t rep = 0; rep < reps; ++rep) {
      {
        const auto t0 = Clock::now();
        run_once();
        keep_min(best_ck_off, ms_since(t0));
      }
      {
        InvariantChecker ck(InvariantChecker::Mode::kCollect);
        ck.install();
        const auto t0 = Clock::now();
        run_once();
        keep_min(best_ck_collect, ms_since(t0));
        ck.uninstall();
        if (!ck.violations().empty()) return 1;
      }
      {
        InvariantChecker ck(InvariantChecker::Mode::kThrow);
        ck.install();
        const auto t0 = Clock::now();
        run_once();
        keep_min(best_ck_throw, ms_since(t0));
        ck.uninstall();
      }
    }
    Table ct("Invariant-checker overhead (fast_two_sweep, n=" +
             std::to_string(n) + ")");
    ct.header({"mode", "wall ms"});
    ct.add("disabled", best_ck_off);
    ct.add("collect", best_ck_collect);
    ct.add("throw", best_ck_throw);
    ct.print(std::cout);
    for (const auto& [mode, ms] :
         {std::pair<const char*, std::int64_t>{"off", best_ck_off},
          {"collect", best_ck_collect},
          {"throw", best_ck_throw}}) {
      json.row({{"pipeline", JsonWriter::str("check_overhead")},
                {"mode", JsonWriter::str(mode)},
                {"n", JsonWriter::num(static_cast<std::int64_t>(n))},
                {"wall_ms", JsonWriter::num(ms)},
                {"threads", JsonWriter::num(used_threads)}});
    }

    // Per-phase breakdown from the span tree of one traced run.
    Tracer tracer;
    tracer.install();
    run_once();
    tracer.finish();
    Table pt("Per-phase breakdown (fast_two_sweep, n=" + std::to_string(n) +
             ")");
    pt.header({"phase", "rounds", "executed", "msgs", "bits"});
    for (const TraceSpan& s : tracer.spans()) {
      pt.add(std::string(static_cast<std::size_t>(2 * s.depth), ' ') + s.name,
             s.subtree.rounds, s.subtree.executed, s.subtree.messages,
             s.subtree.bits);
      json.row({{"pipeline", JsonWriter::str("phase_breakdown")},
                {"phase", JsonWriter::str(tracer.span_path(s.id))},
                {"rounds", JsonWriter::num(s.subtree.rounds)},
                {"executed", JsonWriter::num(s.subtree.executed)},
                {"msgs", JsonWriter::num(s.subtree.messages)},
                {"bits", JsonWriter::num(s.subtree.bits)}});
    }
    pt.print(std::cout);
  }
  {
    // Snapshot roundtrip: build the big-section instance once, save it,
    // reload it zero-copy, and prove the loaded instance solves to the
    // SAME colors. `speedup` (cold setup / load) is the headline number
    // for --snapshot-cache: the load pays one mmap plus the O(n)
    // structural validation instead of generation + orientation +
    // palette interning. `first solve` runs on cold mapped pages (the
    // faults are the deferred I/O), later reps on warm ones.
    Table t("Snapshot roundtrip (OLDC instance, degree 6)");
    t.header({"n", "cold setup ms", "save ms", "load ms", "speedup",
              "first solve ms", "solve ms", "file MiB"});
    const std::vector<NodeId> sizes =
        quick ? std::vector<NodeId>{65536}
              : std::vector<NodeId>{262144, 1048576};
    for (NodeId n : sizes) {
      Rng rng(1800);
      const auto t_setup = Clock::now();
      const Graph g = random_near_regular(n, 6, rng);
      Orientation o = Orientation::by_id(g);
      const int d = o.beta();
      const OldcInstance inst =
          random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
      const std::int64_t setup_ms = ms_since(t_setup);

      const std::string path = "e14_snapshot_" + std::to_string(n) + ".snap";
      const auto t_save = Clock::now();
      save_instance_snapshot(path, inst);
      const std::int64_t save_ms = ms_since(t_save);

      std::int64_t load_ms = -1;
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        const InstanceSnapshot probe = InstanceSnapshot::load(path);
        const std::int64_t ms = ms_since(t0);
        if (load_ms < 0 || ms < load_ms) load_ms = ms;
      }

      const InstanceSnapshot snap = InstanceSnapshot::load(path);
      snap.release_pages();  // the timed first solve faults them back in
      std::vector<Color> ids(static_cast<std::size_t>(n));
      for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
      const ColoringResult built = fast_two_sweep(inst, ids, n, 2, 0.5);
      std::int64_t first_solve_ms = -1;
      std::int64_t solve_ms = -1;
      ColoringResult loaded_res;
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        loaded_res = fast_two_sweep(snap.instance(), ids, n, 2, 0.5);
        const std::int64_t ms = ms_since(t0);
        if (rep == 0) first_solve_ms = ms;
        if (solve_ms < 0 || ms < solve_ms) solve_ms = ms;
      }
      if (loaded_res.colors != built.colors) {
        std::cout << "FAIL: loaded snapshot solved to different colors at n="
                  << n << "\n";
        return 1;
      }
      const double file_mib =
          static_cast<double>(snap.info().file_size) / (1024.0 * 1024.0);
      const double speedup = static_cast<double>(setup_ms) /
                             static_cast<double>(std::max<std::int64_t>(
                                 1, load_ms));
      t.add(n, setup_ms, save_ms, load_ms, speedup, first_solve_ms, solve_ms,
            file_mib);
      json.row({{"pipeline", JsonWriter::str("snapshot_roundtrip")},
                {"n", JsonWriter::num(static_cast<std::int64_t>(n))},
                {"setup_ms", JsonWriter::num(setup_ms)},
                {"save_ms", JsonWriter::num(save_ms)},
                {"load_ms", JsonWriter::num(load_ms)},
                {"speedup", JsonWriter::num(speedup)},
                {"first_solve_ms", JsonWriter::num(first_solve_ms)},
                {"solve_ms", JsonWriter::num(solve_ms)},
                {"file_mib", JsonWriter::num(file_mib)},
                {"threads", JsonWriter::num(used_threads)}});
      std::remove(path.c_str());
    }
    t.print(std::cout);
  }
  {
    // Mixed fleet: ONE dominating job plus a long tail of small ones —
    // the shape the two-level scheduler exists for. `serialized` runs
    // the fleet on a single worker with level 2 disabled (strictly one
    // job at a time, each on one thread); `adaptive` gives the scheduler
    // its worker budget and the auto threshold, so the big job's round
    // chunks are stolen by workers that finish tail jobs early. Results
    // are bit-identical between the modes (asserted below); only wall
    // clock moves, and the >=2x adaptive win needs >=2 physical cores —
    // on a one-core box both modes time-slice the same work, so the
    // perf_gate only pins each row's wall clock against its committed
    // same-machine baseline.
    const std::string spec =
        quick ? "solver=fast,n=65536,degree=6,seed=1800;"
                "solver=two_sweep,n=4096,degree=6,seed=2,repeat=15"
              : "solver=fast,n=1048576,degree=6,seed=1800;"
                "solver=two_sweep,n=16384,degree=6,seed=2,repeat=63";
    const std::vector<BatchJob> jobs = parse_batch_jobs(spec);
    const int adaptive_threads =
        threads > 0
            ? static_cast<int>(threads)
            : std::min(8, std::max(2, static_cast<int>(
                                          std::thread::hardware_concurrency())));
    auto run_fleet = [&](int fleet_threads, std::int64_t threshold,
                         BatchReport& out) {
      std::int64_t best_ms = -1;
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        BatchOptions options;
        options.threads = fleet_threads;
        options.big_job_threshold = threshold;
        const auto t0 = Clock::now();
        out = run_batch(jobs, options);
        const std::int64_t ms = ms_since(t0);
        if (best_ms < 0 || ms < best_ms) best_ms = ms;
      }
      return best_ms;
    };
    BatchReport serialized, adaptive;
    const std::int64_t serial_ms =
        run_fleet(1, std::int64_t{1} << 62, serialized);
    const std::int64_t adaptive_ms = run_fleet(adaptive_threads, -1, adaptive);
    if (serialized.jobs_valid != static_cast<std::int64_t>(jobs.size()) ||
        !(adaptive.jobs == serialized.jobs)) {
      std::cout << "FAIL: mixed-fleet modes disagree on job results\n";
      return 1;
    }
    const double speedup =
        static_cast<double>(serial_ms) /
        static_cast<double>(std::max<std::int64_t>(1, adaptive_ms));
    Table t("Mixed fleet (1 big + " + std::to_string(jobs.size() - 1) +
            " small jobs, two-level scheduler)");
    t.header({"mode", "threads", "big jobs", "steals", "wall ms", "speedup"});
    t.add("serialized", 1, serialized.sched.big_jobs, serialized.sched.steals,
          serial_ms, 1.0);
    t.add("adaptive", adaptive_threads, adaptive.sched.big_jobs,
          adaptive.sched.steals, adaptive_ms, speedup);
    t.print(std::cout);
    json.row({{"pipeline", JsonWriter::str("batch_fleet")},
              {"mode", JsonWriter::str("serialized")},
              {"jobs", JsonWriter::num(static_cast<std::int64_t>(jobs.size()))},
              {"wall_ms", JsonWriter::num(serial_ms)},
              {"threads", JsonWriter::num(std::int64_t{1})}});
    json.row({{"pipeline", JsonWriter::str("batch_fleet")},
              {"mode", JsonWriter::str("adaptive")},
              {"jobs", JsonWriter::num(static_cast<std::int64_t>(jobs.size()))},
              {"wall_ms", JsonWriter::num(adaptive_ms)},
              {"speedup", JsonWriter::num(speedup)},
              {"threads",
               JsonWriter::num(static_cast<std::int64_t>(adaptive_threads))}});
  }
  std::cout << "Expectation: wall time per node roughly flat — simulation\n"
               "cost is dominated by (rounds × active nodes), not n².\n"
               "Snapshot loads should beat cold setup by >20x at n=1M.\n"
               "The mixed fleet's adaptive mode should land >=2x under the\n"
               "serialized mode on >=2 physical cores (on one core the two\n"
               "modes interleave the same work and only the baseline gate\n"
               "applies).\n";
  return 0;
}
