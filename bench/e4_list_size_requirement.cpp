// E4 — list-size economy vs [FK23a]/[MT20] (Section 1.1's "Comparison to
// [FK23a, MT20]").
//
// For uniform defect d, [FK23a] requires Σ(d+1)² = Ω(β²·(logβ + loglogC +
// loglog q)·polyloglog) — lists of size Ω((β/d)²·logβ·…) — while
// Theorem 1.1 with p = ⌊β/(d+1)⌋+1 gets by with ~p² colors. The table
// evaluates both formulas; the ratio must GROW with β (the paper's
// qualitative claim: strictly smaller lists, by a log β-ish factor).
#include "bench/bench_util.h"
#include "baselines/mt20_style.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const std::int64_t C = args.get_int("colorspace", 1 << 16);
  const std::int64_t q = args.get_int("q", 1 << 20);
  args.check_all_consumed();

  banner("E4", "list sizes: Theorem 1.1 vs the [FK23a] requirement");

  CsvWriter csv("e4_list_size.csv",
                {"beta", "defect", "ours", "fk23a", "ratio"});
  for (int defect : {1, 4}) {
    Table t("uniform defect d = " + std::to_string(defect) +
            "  (C = 2^16, q = 2^20)");
    t.header({"beta", "ours (Thm 1.1)", "[FK23a] (alpha=1)", "ratio"});
    for (int beta : {8, 16, 32, 64, 128, 256, 512, 1024}) {
      if (defect >= beta) continue;
      const std::int64_t ours = two_sweep_min_list_size(beta, defect);
      const std::int64_t theirs = fk23a_min_list_size(beta, defect, C, q);
      const double ratio =
          static_cast<double>(theirs) / static_cast<double>(ours);
      t.add(beta, ours, theirs, ratio);
      csv.row({std::to_string(beta), std::to_string(defect),
               std::to_string(ours), std::to_string(theirs),
               std::to_string(ratio)});
    }
    t.print(std::cout);
  }
  std::cout << "Expectation: the ratio column grows ~logarithmically in β —\n"
               "our lists are smaller by the (logβ + loglogC + loglog q)·\n"
               "polyloglog factor the paper removes.\n";
  return 0;
}
