// E9 — Theorem 1.5: (Δ+1)-coloring on bounded-neighborhood-independence
// graphs; both branches of the min{}.
//
// On line graphs (θ = 2) we sweep Δ and compare:
//  * the base-only branch (Theorem 1.3 machinery) — √Δ-polylog shape;
//  * the Δ^{1/4} branch (one color-space halving, Eq. 20);
//  * the quasi-polylog branch (Eq. 21) on the SMALLEST instance only —
//    its (θ·logΔ)^{O(loglogΔ)} constants are astronomical at laptop
//    scales, which is itself the finding: the min{} in Theorem 1.5 is
//    decided firmly in favor of Δ^{1/4} for any realistic Δ.
#include <cmath>

#include "bench/bench_util.h"
#include "core/theta_coloring.h"
#include "graph/coloring_checks.h"
#include "graph/independence.h"
#include "graph/line_graph.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const bool run_quasi = args.get_bool("quasi", true);
  args.check_all_consumed();

  banner("E9", "Theorem 1.5: θ-bounded (Δ+1)-coloring, branch comparison");

  Table t;
  t.header({"Delta", "base-only rounds", "Δ^{1/4} branch rounds",
            "ratio", "valid"});
  CsvWriter csv("e9_theta_coloring.csv",
                {"delta", "base_rounds", "quarter_rounds", "valid"});

  for (int base_n : {14, 20, 28, 40}) {
    Rng rng(900 + static_cast<std::uint64_t>(base_n));
    const Graph g = line_graph(gnp_avg_degree(base_n, 6.0, rng));
    const int delta = g.max_degree();
    if (delta < 2) continue;

    ThetaColoringOptions base;
    base.branch = ThetaColoringOptions::Branch::kBaseOnly;
    const ColoringResult rb = theta_delta_plus_one(g, 2, base);

    ThetaColoringOptions quarter;
    quarter.branch = ThetaColoringOptions::Branch::kDeltaQuarter;
    quarter.base_color_threshold = 4;
    const ColoringResult rq = theta_delta_plus_one(g, 2, quarter);

    const bool valid =
        is_proper_coloring(g, rb.colors) && is_proper_coloring(g, rq.colors);
    t.add(delta, rb.metrics.rounds, rq.metrics.rounds,
          static_cast<double>(rq.metrics.rounds) /
              static_cast<double>(std::max<std::int64_t>(1,
                                                         rb.metrics.rounds)),
          valid ? "yes" : "NO");
    csv.row({std::to_string(delta), std::to_string(rb.metrics.rounds),
             std::to_string(rq.metrics.rounds), valid ? "1" : "0"});
  }
  t.print(std::cout);

  if (run_quasi) {
    // The quasi-polylog branch, smallest sensible instance: its Lemma 4.4
    // step alone sweeps O((84·θ·logΔ)²) classes.
    Rng rng(950);
    const Graph g = disjoint_cliques(6, 4);  // θ = 1, Δ = 3
    ThetaColoringOptions quasi;
    quasi.branch = ThetaColoringOptions::Branch::kQuasiPolylog;
    quasi.base_color_threshold = 2;
    const ColoringResult r = theta_delta_plus_one(g, 1, quasi);
    Table qt("quasi-polylog branch (Eq. 21) on K4-components, Δ=3, θ=1");
    qt.header({"metric", "value"});
    qt.add("valid", is_proper_coloring(g, r.colors) ? "yes" : "NO");
    qt.add("rounds", r.metrics.rounds);
    qt.print(std::cout);
    std::cout << "Finding: even at Δ = 3 the recursion's slack-boosting\n"
                 "constants dominate — the min{} of Theorem 1.5 picks the\n"
                 "Δ^{1/4} branch at every laptop-scale Δ; the quasi-polylog\n"
                 "branch exists for asymptotics.\n";
  }
  return 0;
}
