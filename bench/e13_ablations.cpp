// E13 — ablations of the design choices DESIGN.md calls out:
//
//  (a) TWO sweeps vs ONE sweep. One sweep only controls conflicts toward
//      earlier nodes; the second (reverse) sweep is what bounds the rest.
//      We measure how many nodes overshoot their defect without it.
//  (b) BEST p-subset (Algorithm 1, line 4) vs a RANDOM p-subset in
//      Phase I. Lemma 3.1 only proves a good subset EXISTS; the greedy
//      choice is what makes Phase II always succeed. Random subsets fail
//      at tight slack.
//  (c) Lemma 3.4 defect budget α: colors used vs the O(1/α²) bound.
#include "bench/bench_util.h"
#include "coloring/kuhn_defective.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "util/check.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 400));
  const int degree = static_cast<int>(args.get_int("degree", 12));
  const int seeds = static_cast<int>(args.get_int("seeds", 5));
  args.check_all_consumed();

  banner("E13", "ablations: one sweep / random subsets / Lemma 3.4 α");

  const int defect = 1;

  {
    // The adversarial direction for ONE sweep: orient every edge toward
    // the LATER-acting endpoint (larger initial color). Phase I then has
    // k_v == 0 everywhere — a single sweep controls nothing and the whole
    // burden falls on the reverse sweep.
    Table t("(a) one sweep vs two sweeps (defect " + std::to_string(defect) +
            ", tight shared lists, out-edges toward later nodes)");
    t.header({"variant", "violating nodes (mean)", "max excess", "rounds"});
    CsvWriter csv("e13_one_sweep.csv",
                  {"variant", "seed", "violations", "max_excess", "rounds"});
    for (const auto& [name, selection] :
         {std::pair{"two sweeps (Alg. 1)", TwoSweepSelection::kBestMargin},
          std::pair{"one sweep (ablation)", TwoSweepSelection::kOneSweep}}) {
      Stats violations, rounds;
      int max_excess = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(1500 + static_cast<std::uint64_t>(seed));
        const Graph graph = random_near_regular(n, degree, rng);
        const Graph* g = &graph;
        const auto [init, q] =
            initial_coloring(*g, Orientation::by_id(*g));
        const auto& init_ref = init;
        Orientation toward_later = Orientation::from_predicate(
            *g, [&](NodeId a, NodeId b) {
              return init_ref[static_cast<std::size_t>(b)] >
                     init_ref[static_cast<std::size_t>(a)];
            });
        const int beta = toward_later.beta();
        const int p = beta / (defect + 1) + 1;
        const int list_size = p * p + p + 1;  // exactly the Eq. (2) regime
        OldcInstance inst = random_uniform_oldc(
            *g, std::move(toward_later), list_size, list_size, defect, rng);
        TwoSweepOptions options;
        options.selection = selection;
        const ColoringResult res = two_sweep_ex(inst, init, q, p, options);
        // Count per-node defect violations against the lists.
        int bad = 0;
        const auto defects = oriented_defects(inst.orientation, res.colors);
        for (NodeId v = 0; v < g->num_nodes(); ++v) {
          const auto vi = static_cast<std::size_t>(v);
          const auto allowed =
              inst.lists[vi].defect_of(res.colors[vi]).value_or(-1);
          if (defects[vi] > allowed) {
            ++bad;
            max_excess = std::max(max_excess, defects[vi] - allowed);
          }
        }
        violations.add(bad);
        rounds.add(static_cast<double>(res.metrics.rounds));
        csv.row({name, std::to_string(seed), std::to_string(bad),
                 std::to_string(max_excess),
                 std::to_string(res.metrics.rounds)});
      }
      t.add(name, violations.mean(), max_excess, rounds.mean());
    }
    t.print(std::cout);
    std::cout << "Expectation: zero violations with two sweeps (theorem);\n"
                 "the one-sweep ablation overshoots on some nodes — the\n"
                 "reverse sweep is load-bearing.\n\n";
  }

  {
    Table t("(b) best vs random Phase-I subset, by slack factor");
    t.header({"subset rule", "slack factor", "success", "trials"});
    CsvWriter csv("e13_random_subset.csv",
                  {"rule", "factor", "seed", "success"});
    for (const auto& [name, selection] :
         {std::pair{"best (Alg. 1)", TwoSweepSelection::kBestMargin},
          std::pair{"random (ablation)", TwoSweepSelection::kRandomSubset}}) {
      for (double factor : {1.0, 1.5, 3.0}) {
        int ok = 0;
        for (int seed = 0; seed < seeds; ++seed) {
          Rng rng(1600 + static_cast<std::uint64_t>(seed));
          const Graph g = random_near_regular(n, degree, rng);
          Orientation o = Orientation::by_id(g);
          const int beta = o.beta();
          const int p = beta / (defect + 1) + 1;
          const auto list_size = static_cast<int>(
              factor * static_cast<double>(p * p + p + 1));
          const OldcInstance inst = random_uniform_oldc(
              g, std::move(o), list_size, list_size, defect, rng);
          const auto [init, q] = initial_coloring(g, inst.orientation);
          TwoSweepOptions options;
          options.selection = selection;
          options.selection_seed = 99 + static_cast<std::uint64_t>(seed);
          RunContext ctx;
          ctx.skip_precondition_check = true;
          bool success;
          try {
            const ColoringResult res =
                two_sweep(inst, init, q, p, ctx, options);
            success = validate_oldc(inst, res.colors);
          } catch (const CheckError&) {
            success = false;
          }
          ok += success ? 1 : 0;
          csv.row({name, std::to_string(factor), std::to_string(seed),
                   success ? "1" : "0"});
        }
        t.add(name, factor, ok, seeds);
      }
    }
    t.print(std::cout);
    std::cout << "Expectation: the best-subset rule succeeds at factor 1.0\n"
                 "(Lemma 3.1 + Remark); random subsets need extra slack.\n\n";
  }

  {
    Table t("(c) Lemma 3.4: colors used vs O(1/α²)");
    t.header({"alpha", "colors", "colors·α²", "max defect/⌊α·β_v⌋ ok",
              "rounds"});
    CsvWriter csv("e13_kuhn_alpha.csv",
                  {"alpha", "colors", "rounds", "defect_ok"});
    Rng rng(1700);
    const Graph g = random_near_regular(2000, 16, rng);
    const Orientation o = Orientation::by_id(g);
    for (double alpha : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
      const auto res = kuhn_defective_from_ids(g, o, alpha);
      bool defect_ok = true;
      const auto defects = oriented_defects(o, res.colors);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (defects[static_cast<std::size_t>(v)] >
            static_cast<int>(alpha * o.beta_v(v))) {
          defect_ok = false;
        }
      }
      t.add(alpha, res.num_colors,
            static_cast<double>(res.num_colors) * alpha * alpha,
            defect_ok ? "yes" : "NO", res.metrics.rounds);
      csv.row({std::to_string(alpha), std::to_string(res.num_colors),
               std::to_string(res.metrics.rounds), defect_ok ? "1" : "0"});
    }
    t.print(std::cout);
    std::cout << "Expectation: colors·α² bounded (the O(1/α²) guarantee)\n"
                 "and defects within ⌊α·β_v⌋ for every α.\n";
  }
  return 0;
}
