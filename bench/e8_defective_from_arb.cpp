// E8 — Theorem 1.4: T_D(42·θ·logΔ·S, C) <= O(logΔ)·T_A(S, C).
//
// On θ-bounded families we run the defective-from-arbdefective driver and
// measure (a) the number of P_A iterations actually used (must be
// <= ⌈logΔ⌉+1), (b) the round ratio T_D / (inner T_A mean), and (c) the
// validity of the resulting list DEFECTIVE coloring — Claim 4.1 doing its
// job end to end.
#include "bench/bench_util.h"
#include "core/defective_from_arbdefective.h"
#include "core/list_coloring.h"
#include "util/check.h"
#include "graph/independence.h"
#include "graph/line_graph.h"
#include "util/math.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 2));
  args.check_all_consumed();

  banner("E8", "Theorem 1.4: defective from arbdefective, O(logΔ) iterations");

  Table t;
  t.header({"family", "Delta", "theta", "inner calls", "ceil(logΔ)+1",
            "T_D rounds", "mean T_A rounds", "ratio", "valid"});
  CsvWriter csv("e8_defective_from_arb.csv",
                {"family", "seed", "delta", "theta", "inner_calls",
                 "td_rounds", "mean_ta_rounds", "valid"});

  struct Family {
    const char* name;
    int theta;
  };

  for (int fam = 0; fam < 3; ++fam) {
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(800 + static_cast<std::uint64_t>(seed));
      Graph g;
      const char* name;
      int theta;
      // Δ must comfortably exceed 7θ or the Eq. (10) rescaling maps every
      // defect to d' = 0 and a single iteration suffices.
      if (fam == 0) {
        g = clique_chain(8, 24);
        name = "clique_chain";
        theta = 2;
      } else if (fam == 1) {
        g = line_graph(gnp(40, 0.35, rng));
        name = "line_graph";
        theta = 2;
      } else {
        g = cycle_power(200, 20);
        name = "cycle_power";
        theta = 2;
      }
      const int delta = g.delta_paper();
      const std::int64_t S = 2;
      const std::int64_t requirement =
          theorem14_slack_requirement(delta, theta, S);
      // Heterogeneous defects in [0, deg(v)) spread the colors across the
      // driver's iterations (uniform defects would activate all colors in
      // one iteration and trivialize the structure).
      const std::int64_t space = 8 * requirement * g.max_degree() + 64;
      ListDefectiveInstance inst;
      inst.graph = &g;
      inst.color_space = space;
      inst.lists.reserve(static_cast<std::size_t>(g.num_nodes()));
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const std::int64_t target = requirement * g.degree(v) + 1;
        std::vector<Color> colors;
        std::vector<int> defects;
        std::int64_t weight = 0;
        Color next = 0;
        while (weight <= target) {
          colors.push_back(next);
          next += 1 + static_cast<Color>(rng.below(7));
          const int d = static_cast<int>(
              rng.below(static_cast<std::uint64_t>(std::max(1, g.degree(v)))));
          defects.push_back(d);
          weight += d + 1;
        }
        DCOLOR_CHECK(next <= space);
        inst.lists.emplace_back(std::move(colors), std::move(defects));
      }

      std::int64_t inner_calls = 0;
      Stats inner_rounds;
      const ArbSolver inner = [&](const ArbdefectiveInstance& sub) {
        ++inner_calls;
        auto res = solve_arbdefective_slack1(
            sub, ListColoringOptions{PartitionEngine::kBeg18Oracle});
        inner_rounds.add(static_cast<double>(res.metrics.rounds));
        return res;
      };
      const ColoringResult res =
          defective_from_arbdefective(inst, theta, S, inner);
      const bool valid = validate_list_defective(inst, res.colors);
      const int bound = ceil_log2(static_cast<std::uint64_t>(delta)) + 1;
      t.add(name, delta, theta, inner_calls, bound, res.metrics.rounds,
            inner_rounds.mean(),
            inner_rounds.mean() > 0
                ? static_cast<double>(res.metrics.rounds) /
                      inner_rounds.mean()
                : 0.0,
            valid ? "yes" : "NO");
      csv.row({name, std::to_string(seed), std::to_string(delta),
               std::to_string(theta), std::to_string(inner_calls),
               std::to_string(res.metrics.rounds),
               std::to_string(inner_rounds.mean()), valid ? "1" : "0"});
    }
  }
  t.print(std::cout);
  std::cout << "Expectation: inner calls <= ⌈logΔ⌉+1 and the T_D/T_A ratio\n"
               "is O(logΔ) — Theorem 1.4's multiplicative overhead.\n";
  return 0;
}
