// Shared helpers for the experiment binaries (bench/e*.cpp).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "coloring/linial.h"
#include "core/instance.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

namespace dcolor::bench {

/// Standard experiment banner so the combined bench log is navigable.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << " — " << claim << "\n"
            << "================================================================\n";
}

/// Linial initial coloring convenience: (colors, q).
inline std::pair<std::vector<Color>, std::int64_t> initial_coloring(
    const Graph& g, const Orientation& o) {
  const LinialResult linial = linial_from_ids(g, o);
  return {linial.colors, linial.num_colors};
}

/// Means over repeated trials.
struct Stats {
  double sum = 0;
  double max = 0;
  std::int64_t count = 0;
  void add(double x) {
    sum += x;
    max = std::max(max, x);
    ++count;
  }
  double mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

}  // namespace dcolor::bench
