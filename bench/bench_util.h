// Shared helpers for the experiment binaries (bench/e*.cpp).
#pragma once

#include <sys/resource.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "coloring/linial.h"
#include "core/instance.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/rss.h"
#include "util/table.h"

namespace dcolor::bench {

/// Peak resident set size of this process in MiB (ru_maxrss is KiB on
/// Linux). Monotone over the PROCESS lifetime, not the section: once any
/// earlier workload in the same binary pushed RSS up, every later sample
/// repeats that high-water mark. Only useful as a whole-run bound; for
/// per-section figures use current_rss_mib() deltas.
inline double peak_rss_mib() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// CURRENT resident set size in MiB (/proc/self/statm — see util/rss.h).
/// Not monotone: sample before and after a section and report the delta
/// to attribute memory to that section.
inline double current_rss_mib() {
  return static_cast<double>(current_rss_bytes()) / (1024.0 * 1024.0);
}

/// Standard experiment banner so the combined bench log is navigable.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << " — " << claim << "\n"
            << "================================================================\n";
}

/// Linial initial coloring convenience: (colors, q).
inline std::pair<std::vector<Color>, std::int64_t> initial_coloring(
    const Graph& g, const Orientation& o) {
  const LinialResult linial = linial_from_ids(g, o);
  return {linial.colors, linial.num_colors};
}

/// Machine-readable companion to Table/CsvWriter: accumulates flat
/// key→value rows and writes them as a JSON array of objects when the
/// writer is destroyed. Values are raw JSON tokens — render them with
/// num()/str() so strings get quoted and numbers do not.
class JsonWriter {
 public:
  using Row = std::vector<std::pair<std::string, std::string>>;

  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  static std::string num(std::int64_t x) { return std::to_string(x); }
  static std::string num(double x) {
    // JSON has no NaN/Inf tokens; a bare `nan` makes the whole file
    // unparseable. Emit null and let consumers treat it as missing.
    if (!std::isfinite(x)) return "null";
    std::ostringstream os;
    os << x;
    return os.str();
  }
  static std::string str(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  }

  void row(Row r) { rows_.push_back(std::move(r)); }

  ~JsonWriter() {
    std::ofstream out(path_);
    out << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "  {";
      for (std::size_t j = 0; j < rows_[i].size(); ++j) {
        out << (j == 0 ? "" : ", ") << '"' << rows_[i][j].first
            << "\": " << rows_[i][j].second;
      }
      out << (i + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "]\n";
  }

 private:
  std::string path_;
  std::vector<Row> rows_;
};

/// Means over repeated trials.
struct Stats {
  double sum = 0;
  double max = 0;
  std::int64_t count = 0;
  void add(double x) {
    sum += x;
    max = std::max(max, x);
    ++count;
  }
  double mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

}  // namespace dcolor::bench
