// E10 — two boundary applications of Theorem 1.1 (Section 1.1):
//
//  (a) list d-defective 3-coloring in O(Δ + log* n) rounds whenever
//      d > (2Δ−3)/3 — the generalization of [BHL+19]'s d >= (2Δ−4)/3 to
//      lists and to the oriented/symmetric setting. We run at the exact
//      threshold d = ⌊(2Δ−3)/3⌋+1 and verify the UNDIRECTED defect.
//
//  (b) the Linial extension: proper list coloring of β-outdegree-oriented
//      graphs with lists of size β²+β+1 in O(β² + log* n) rounds (vs
//      [MT20]'s Θ(β²·logβ) lists).
#include "bench/bench_util.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "util/logstar.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 3));
  args.check_all_consumed();

  banner("E10", "d-defective 3-coloring at the (2Δ−3)/3 threshold; "
                "Linial-extension list coloring with β²+β+1 lists");

  {
    Table t("(a) 3 colors, d = ⌊(2Δ−3)/3⌋+1, symmetric digraph");
    t.header({"Delta", "d", "rounds(mean)", "rounds/(2Δ+2)", "max defect",
              "valid"});
    CsvWriter csv("e10_three_coloring.csv",
                  {"delta", "seed", "d", "rounds", "max_defect", "valid"});
    for (int delta : {6, 12, 24, 48}) {
      Stats rounds;
      int worst_defect = 0;
      bool all_valid = true;
      int d_used = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(1000 + static_cast<std::uint64_t>(seed));
        const Graph g = random_near_regular(600, delta, rng);
        const int dmax = g.max_degree();
        const int d = (2 * dmax - 3) / 3 + 1;
        d_used = d;
        OldcInstance inst;
        inst.graph = &g;
        inst.color_space = 3;
        inst.symmetric = true;
        inst.lists.assign(static_cast<std::size_t>(g.num_nodes()),
                          ColorList::uniform({0, 1, 2}, d));
        const Orientation o = Orientation::by_id(g);
        const auto [init, q] = initial_coloring(g, o);
        const ColoringResult res = two_sweep(inst, init, q, 2);
        const bool valid = validate_oldc(inst, res.colors);
        const int defect = max_undirected_defect(g, res.colors);
        all_valid = all_valid && valid && defect <= d;
        worst_defect = std::max(worst_defect, defect);
        rounds.add(static_cast<double>(res.metrics.rounds));
        csv.row({std::to_string(dmax), std::to_string(seed),
                 std::to_string(d), std::to_string(res.metrics.rounds),
                 std::to_string(defect), valid ? "1" : "0"});
      }
      t.add(delta, d_used, rounds.mean(),
            rounds.mean() / static_cast<double>(2 * delta + 2), worst_defect,
            all_valid ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "Expectation: valid at the paper's exact threshold; rounds\n"
                 "are two sweeps over the O(Δ²)→O(Δ)-ish initial classes —\n"
                 "O(Δ + log* n) after Linial (ratio column ~O(Δ)).\n\n";
  }

  {
    Table t("(b) proper list coloring, |L| = β²+β+1, p = β+1");
    t.header({"beta", "|L|", "rounds(mean)", "rounds/beta^2", "valid"});
    CsvWriter csv("e10_linial_extension.csv",
                  {"beta", "seed", "rounds", "valid"});
    for (int degree : {4, 6, 8, 12}) {
      Stats rounds;
      bool all_valid = true;
      int beta_used = 0;
      std::int64_t list_used = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(1100 + static_cast<std::uint64_t>(seed));
        const Graph g = random_near_regular(500, degree, rng);
        Orientation o = Orientation::by_id(g);
        const int beta = o.beta();
        const int p = beta + 1;
        const int list_size = beta * beta + beta + 1;
        beta_used = beta;
        list_used = list_size;
        const OldcInstance inst = random_uniform_oldc(
            g, std::move(o), 4 * list_size, list_size, 0, rng);
        const auto [init, q] = initial_coloring(g, inst.orientation);
        const ColoringResult res = two_sweep(inst, init, q, p);
        const bool valid = validate_oldc(inst, res.colors) &&
                           is_proper_coloring(g, res.colors);
        all_valid = all_valid && valid;
        rounds.add(static_cast<double>(res.metrics.rounds));
        csv.row({std::to_string(beta), std::to_string(seed),
                 std::to_string(res.metrics.rounds), valid ? "1" : "0"});
      }
      t.add(beta_used, list_used, rounds.mean(),
            rounds.mean() / static_cast<double>(beta_used * beta_used),
            all_valid ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "Expectation: proper colorings from β²+β+1 lists — below\n"
                 "[MT20]'s Θ(β²logβ) requirement — in O(β²+log*n) rounds\n"
                 "(bounded rounds/β² column).\n";
  }
  return 0;
}
