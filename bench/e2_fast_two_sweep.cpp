// E2 — Theorem 1.1 (ε > 0): Fast-Two-Sweep rounds are
// O((p/ε)² + log* q), essentially independent of q.
//
// Sweep n with the trivial q = n ID coloring: the plain sweep would cost
// Θ(n) rounds, Algorithm 2 must flatten out once n exceeds the defective
// fixed point O((p/ε)²). A second table sweeps ε at fixed n and compares
// the measured rounds against the (p/ε)² reference curve.
#include "bench/bench_util.h"
#include "core/fast_two_sweep.h"
#include "util/logstar.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const int degree = static_cast<int>(args.get_int("degree", 6));
  const int seeds = static_cast<int>(args.get_int("seeds", 2));
  args.check_all_consumed();

  banner("E2", "Fast-Two-Sweep rounds = O((p/ε)² + log* q), not O(q)");

  const int p = 2;
  const double eps = 0.5;
  CsvWriter csv("e2_fast_two_sweep.csv",
                {"n", "eps", "seed", "rounds", "valid"});

  auto make_instance = [&](const Graph& g, Rng& rng) {
    // Generous defects (d = β) keep Eq. (7) satisfied at small lists for
    // every ε <= 1.
    Orientation o = Orientation::by_id(g);
    const int d = o.beta();
    const int list_size = 2 * p * p + 2;
    return random_uniform_oldc(g, std::move(o), 4 * list_size, list_size, d,
                               rng);
  };

  {
    Table t("rounds vs n  (q = n, p = 2, ε = 0.5)");
    t.header({"n", "rounds(mean)", "rounds/n", "log* n", "valid"});
    for (NodeId n : {500, 1000, 2000, 4000, 8000}) {
      Stats rounds;
      bool all_valid = true;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(200 + static_cast<std::uint64_t>(seed));
        const Graph g = random_near_regular(n, degree, rng);
        const OldcInstance inst = make_instance(g, rng);
        std::vector<Color> ids(static_cast<std::size_t>(n));
        for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
        const ColoringResult res = fast_two_sweep(inst, ids, n, p, eps);
        const bool valid = validate_oldc(inst, res.colors);
        all_valid = all_valid && valid;
        rounds.add(static_cast<double>(res.metrics.rounds));
        csv.row({std::to_string(n), std::to_string(eps), std::to_string(seed),
                 std::to_string(res.metrics.rounds), valid ? "1" : "0"});
      }
      t.add(n, rounds.mean(), rounds.mean() / n,
            log_star(static_cast<std::uint64_t>(n)),
            all_valid ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "Expectation: rounds/n decays — the cost saturates at the\n"
                 "O((p/ε)²) defective-coloring size instead of growing with n.\n";
  }

  {
    Table t("rounds vs ε  (n = 4000, p = 2)");
    t.header({"eps", "rounds(mean)", "(p/eps)^2", "rounds/(p/eps)^2", "valid"});
    const NodeId n = 4000;
    for (double e : {1.0, 0.5, 0.25, 0.125}) {
      Stats rounds;
      bool all_valid = true;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(300 + static_cast<std::uint64_t>(seed));
        const Graph g = random_near_regular(n, degree, rng);
        const OldcInstance inst = make_instance(g, rng);
        std::vector<Color> ids(static_cast<std::size_t>(n));
        for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
        const ColoringResult res = fast_two_sweep(inst, ids, n, p, e);
        const bool valid = validate_oldc(inst, res.colors);
        all_valid = all_valid && valid;
        rounds.add(static_cast<double>(res.metrics.rounds));
        csv.row({std::to_string(n), std::to_string(e), std::to_string(seed),
                 std::to_string(res.metrics.rounds), valid ? "1" : "0"});
      }
      const double ref = (p / e) * (p / e);
      t.add(e, rounds.mean(), ref, rounds.mean() / ref,
            all_valid ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "Expectation: rounds grow with 1/ε² (constant ratio column).\n";
  }
  return 0;
}
