// E12 — (2Δ−1)-edge coloring via the paper's θ-machinery on line graphs,
// vs the sequential greedy baseline.
//
// The paper's headline for this family: the [BBKO22]-style result —
// (2Δ−1)-edge coloring in quasi-polylog rounds — now follows for ALL
// θ-bounded graphs, not only line graphs of graphs. We measure rounds and
// palette across Δ for graphs and for rank-3 hypergraphs.
#include "bench/bench_util.h"
#include "baselines/greedy.h"
#include "core/edge_coloring.h"
#include "graph/line_graph.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const int seeds = static_cast<int>(args.get_int("seeds", 2));
  args.check_all_consumed();

  banner("E12", "(2Δ−1)-edge coloring via Theorem 1.5 machinery");

  {
    Table t("graphs (θ = 2 line graphs)");
    t.header({"Delta(G)", "palette 2Δ-1", "colors used", "greedy colors",
              "rounds(mean)", "valid"});
    CsvWriter csv("e12_edge_coloring.csv",
                  {"delta", "seed", "palette", "used", "rounds", "valid"});
    for (double avg_degree : {4.0, 8.0, 12.0}) {
      Stats rounds;
      bool all_valid = true;
      int delta = 0;
      std::int64_t palette = 0, used = 0, greedy_used = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(1300 + static_cast<std::uint64_t>(seed));
        const Graph g = gnp_avg_degree(150, avg_degree, rng);
        delta = g.max_degree();
        ThetaColoringOptions options;
        options.branch = ThetaColoringOptions::Branch::kBaseOnly;
        const EdgeColoringResult res =
            edge_coloring_two_delta_minus_one(g, options);
        const bool valid = validate_edge_coloring(g, res.edge_colors);
        all_valid = all_valid && valid;
        rounds.add(static_cast<double>(res.metrics.rounds));
        palette = res.num_colors;
        used = num_colors_used(res.edge_colors);
        const ColoringResult greedy = greedy_delta_plus_one(line_graph(g));
        greedy_used = num_colors_used(greedy.colors);
        csv.row({std::to_string(delta), std::to_string(seed),
                 std::to_string(palette), std::to_string(used),
                 std::to_string(res.metrics.rounds), valid ? "1" : "0"});
      }
      t.add(delta, palette, used, greedy_used, rounds.mean(),
            all_valid ? "yes" : "NO");
    }
    t.print(std::cout);
  }

  {
    Table t("rank-3 hypergraphs (θ <= 3)");
    t.header({"edges", "Delta(L)", "palette", "colors used", "rounds",
              "valid"});
    for (std::int64_t m : {100, 200}) {
      Rng rng(1400 + static_cast<std::uint64_t>(m));
      const Hypergraph h = random_hypergraph(60, m, 3, rng);
      ThetaColoringOptions options;
      options.branch = ThetaColoringOptions::Branch::kBaseOnly;
      const EdgeColoringResult res = hypergraph_edge_coloring(h, options);
      const bool valid = validate_edge_coloring(h, res.edge_colors);
      const Graph lg = line_graph(h);
      t.add(m, lg.max_degree(), res.num_colors,
            num_colors_used(res.edge_colors), res.metrics.rounds,
            valid ? "yes" : "NO");
    }
    t.print(std::cout);
  }
  std::cout << "Expectation: valid everywhere, palette exactly 2Δ−1 (resp.\n"
               "Δ_L+1); used colors comparable to sequential greedy.\n";
  return 0;
}
