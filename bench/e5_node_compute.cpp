// E5 — per-node internal computation (google-benchmark).
//
// Section 1.1 ("Computational complexity"): our Phase-I step is a sort —
// nearly linear in Δ times the list size — while the [MT20]/[FK23a] nodes
// search an at-least-exponential subset family. We benchmark our
// sort-based selection against an *optimistic* exhaustive-2^Λ stand-in
// for the latter: the measured gap is a LOWER bound on the real one.
#include <benchmark/benchmark.h>

#include "baselines/mt20_style.h"
#include "core/instance.h"
#include "util/rng.h"

namespace {

using namespace dcolor;

struct NodeInputs {
  ColorList list;
  std::vector<int> k_counts;
  int p;
  int n_greater;
};

NodeInputs make_inputs(int lambda, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Color> colors(static_cast<std::size_t>(lambda));
  std::vector<int> defects(static_cast<std::size_t>(lambda));
  std::vector<int> k_counts(static_cast<std::size_t>(lambda));
  for (int i = 0; i < lambda; ++i) {
    colors[static_cast<std::size_t>(i)] = i;
    defects[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(8));
    k_counts[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(4));
  }
  return {ColorList(std::move(colors), std::move(defects)),
          std::move(k_counts), std::max(2, lambda / 4),
          static_cast<int>(rng.below(8))};
}

void BM_SortBasedPhase1(benchmark::State& state) {
  const auto in = make_inputs(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    auto sel = sort_based_phase1(in.list, in.k_counts, in.p, in.n_greater);
    benchmark::DoNotOptimize(sel.subset.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SortBasedPhase1)->DenseRange(8, 24, 4)->Complexity();

void BM_SubsetSearchPhase1(benchmark::State& state) {
  const auto in = make_inputs(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    auto sel = subset_search_phase1(in.list, in.k_counts, in.p, in.n_greater);
    benchmark::DoNotOptimize(sel.subset.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SubsetSearchPhase1)->DenseRange(8, 24, 4)->Complexity();

// Large-list regime: only the sort-based rule can even run here — the
// subset search at Λ = 4096 would take ~2^4096 steps.
void BM_SortBasedPhase1_LargeLists(benchmark::State& state) {
  const auto in = make_inputs(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    auto sel = sort_based_phase1(in.list, in.k_counts, in.p, in.n_greater);
    benchmark::DoNotOptimize(sel.subset.data());
  }
}
BENCHMARK(BM_SortBasedPhase1_LargeLists)->RangeMultiplier(4)->Range(64, 16384);

}  // namespace

BENCHMARK_MAIN();
