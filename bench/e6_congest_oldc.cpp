// E6 — Theorem 1.2: CONGEST OLDC in O(log³C + log* q) rounds with
// O(log q + log C)-bit messages.
//
// Sweeping the color space size C at fixed graph: the rounds must grow
// polylogarithmically in C (we fit against log³C) while the widest
// message stays within a small multiple of log q + log C — the entire
// point of the color space reduction.
#include <cmath>

#include "bench/bench_util.h"
#include "core/congest_oldc.h"
#include "util/logstar.h"
#include "util/math.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 300));
  const int degree = static_cast<int>(args.get_int("degree", 4));
  const int seeds = static_cast<int>(args.get_int("seeds", 2));
  args.check_all_consumed();

  banner("E6", "Theorem 1.2: rounds = O(log³C + log* q), msgs O(log q + log C)");

  Table t;
  t.header({"C", "rounds(mean)", "rounds/log^3 C", "max msg bits",
            "log q + log C", "valid"});
  CsvWriter csv("e6_congest_oldc.csv",
                {"C", "seed", "rounds", "max_msg_bits", "valid"});

  for (std::int64_t C : {16, 64, 256, 1024, 4096, 16384}) {
    Stats rounds, bits;
    bool all_valid = true;
    int logq_logc = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(600 + static_cast<std::uint64_t>(seed));
      const Graph g = random_near_regular(n, degree, rng);
      Orientation o = Orientation::by_id(g);
      const int beta = o.beta();
      const int defect = 2;
      const auto list_size = static_cast<int>(std::min<std::int64_t>(
          C, static_cast<std::int64_t>(
                 std::ceil(3.0 * std::sqrt(static_cast<double>(C)) * beta /
                           (defect + 1))) +
                 1));
      const OldcInstance inst =
          random_uniform_oldc(g, std::move(o), C, list_size, defect, rng);
      const auto [init, q] = initial_coloring(g, inst.orientation);
      const ColoringResult res = congest_oldc(inst, init, q);
      const bool valid = validate_oldc(inst, res.colors);
      all_valid = all_valid && valid;
      rounds.add(static_cast<double>(res.metrics.rounds));
      bits.add(res.metrics.max_message_bits);
      logq_logc = ceil_log2(static_cast<std::uint64_t>(q)) +
                  ceil_log2(static_cast<std::uint64_t>(C));
      csv.row({std::to_string(C), std::to_string(seed),
               std::to_string(res.metrics.rounds),
               std::to_string(res.metrics.max_message_bits),
               valid ? "1" : "0"});
    }
    const double log_c = std::log2(static_cast<double>(C));
    t.add(C, rounds.mean(), rounds.mean() / (log_c * log_c * log_c),
          bits.max, logq_logc, all_valid ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "Expectation: the rounds/log³C ratio stays bounded while C\n"
               "grows 1000×, and max msg bits stays a small multiple of\n"
               "log q + log C (never near the Λ·logC a naive encoding needs).\n";
  return 0;
}
