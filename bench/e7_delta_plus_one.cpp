// E7 — Theorem 1.3: (deg+1)-list coloring in CONGEST.
//
// Sweeping Δ, both partition engines (DESIGN.md §4):
//  * BEG18-oracle: rounds should track √Δ·polylogΔ — the theorem's shape;
//  * honest (Lemma 3.4 partitions): pays O(µ²) classes per level, so its
//    rounds grow ~linearly in Δ — the measured cost of not having the
//    O(k + log* n) arbdefective primitive.
// Baselines: sequential greedy (n rounds) and randomized Luby (O(log n)).
#include <cmath>

#include "bench/bench_util.h"
#include "baselines/luby.h"
#include "coloring/color_reduction.h"
#include "core/list_coloring.h"
#include "graph/coloring_checks.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 1200));
  const int seeds = static_cast<int>(args.get_int("seeds", 2));
  args.check_all_consumed();

  banner("E7",
         "Theorem 1.3: (deg+1)-list coloring rounds vs Δ, both engines");

  Table t;
  t.header({"Delta", "oracle rounds", "o/(sqrtΔ·log⁴Δ)", "honest rounds",
            "h/(Δ·log⁴Δ)", "GPS88 (Δ²)", "luby", "valid"});
  CsvWriter csv("e7_delta_plus_one.csv",
                {"delta", "seed", "oracle_rounds", "honest_rounds",
                 "gps88_rounds", "luby_rounds", "valid"});

  for (int delta : {4, 8, 16, 32, 48}) {
    Stats oracle_r, honest_r, luby_r, gps_r;
    bool all_valid = true;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(700 + static_cast<std::uint64_t>(seed));
      const Graph g = random_near_regular(n, delta, rng);
      const std::int64_t C = 2 * (g.max_degree() + 1);
      const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);

      const ColoringResult oracle = solve_degree_plus_one(
          inst, ListColoringOptions{PartitionEngine::kBeg18Oracle});
      const ColoringResult honest = solve_degree_plus_one(
          inst, ListColoringOptions{PartitionEngine::kHonest});
      Rng luby_rng(rng.fork());
      const ColoringResult luby = luby_list_coloring(inst, luby_rng);
      // The textbook O(Δ² + log* n) baseline ((Δ+1)-coloring, not lists).
      const ColorReductionResult gps = linial_plus_reduction(g);

      const bool valid = is_proper_coloring(g, oracle.colors) &&
                         is_proper_coloring(g, honest.colors) &&
                         is_proper_coloring(g, luby.colors) &&
                         is_proper_coloring(g, gps.colors);
      all_valid = all_valid && valid;
      oracle_r.add(static_cast<double>(oracle.metrics.rounds));
      honest_r.add(static_cast<double>(honest.metrics.rounds));
      luby_r.add(static_cast<double>(luby.metrics.rounds));
      gps_r.add(static_cast<double>(gps.metrics.rounds));
      csv.row({std::to_string(delta), std::to_string(seed),
               std::to_string(oracle.metrics.rounds),
               std::to_string(honest.metrics.rounds),
               std::to_string(gps.metrics.rounds),
               std::to_string(luby.metrics.rounds), valid ? "1" : "0"});
    }
    const double log_d = std::log2(static_cast<double>(std::max(2, delta)));
    const double log4 = log_d * log_d * log_d * log_d;
    t.add(delta, oracle_r.mean(),
          oracle_r.mean() / (std::sqrt(static_cast<double>(delta)) * log4),
          honest_r.mean(), honest_r.mean() / (delta * log4), gps_r.mean(),
          luby_r.mean(), all_valid ? "yes" : "NO");
  }
  t.print(std::cout);

  // Where do the rounds go? One representative run per engine at Δ = 16.
  {
    Table bt("round breakdown at Δ = 16");
    bt.header({"engine", "linial", "partition", "class OLDC", "idle slots",
               "levels", "classes run/idle"});
    Rng rng(700);
    const Graph g = random_near_regular(n, 16, rng);
    const std::int64_t C = 2 * (g.max_degree() + 1);
    const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
    for (const auto& [name, engine] :
         {std::pair{"oracle", PartitionEngine::kBeg18Oracle},
          std::pair{"honest", PartitionEngine::kHonest}}) {
      RunContext ctx;
      ListColoringOptions options;
      options.engine = engine;
      solve_degree_plus_one(inst, ctx, options);
      const ListColoringBreakdown& breakdown = ctx.breakdown;
      bt.add(name, breakdown.initial_coloring_rounds,
             breakdown.partition_rounds, breakdown.class_rounds,
             breakdown.idle_slot_rounds, breakdown.levels,
             std::to_string(breakdown.classes_run) + "/" +
                 std::to_string(breakdown.classes_idle));
    }
    bt.print(std::cout);
  }

  std::cout << "Expectation: the oracle ratio column stays bounded (the\n"
               "√Δ·log⁴Δ shape of Theorem 1.3); the honest engine's ratio\n"
               "against Δ·log⁴Δ stays bounded instead. GPS88 is the classic\n"
               "O(Δ²+log*n) pipeline (small constants, worse exponent —\n"
               "its crossover vs the oracle engine sits beyond these Δ).\n"
               "Luby is rounds-cheap but randomized — the whole point of\n"
               "the paper is matching determinism.\n";
  return 0;
}
