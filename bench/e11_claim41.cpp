// E11 — Claim 4.1: on a graph of neighborhood independence θ, a
// d-arbdefective coloring is (2d+1)·θ-defective.
//
// We build d-arbdefective colorings (one-sweep partitions) across
// θ-bounded families and report measured undirected defect vs the
// (2d+1)·θ bound; a tightness column shows how much of the bound random
// instances actually consume.
#include "bench/bench_util.h"
#include "coloring/arbdefective.h"
#include "graph/coloring_checks.h"
#include "graph/independence.h"
#include "graph/line_graph.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  using namespace dcolor::bench;
  const CliArgs args(argc, argv);
  args.check_all_consumed();

  banner("E11", "Claim 4.1: arbdefective d ⇒ defective (2d+1)·θ");

  Table t;
  t.header({"family", "theta", "k", "max out-defect d", "bound (2d+1)θ",
            "measured defect", "tightness", "holds"});
  CsvWriter csv("e11_claim41.csv", {"family", "theta", "k", "d", "bound",
                                    "measured", "holds"});

  Rng rng(1200);
  const std::vector<std::pair<const char*, Graph>> families = [&]() {
    std::vector<std::pair<const char*, Graph>> f;
    f.emplace_back("disjoint_cliques", disjoint_cliques(10, 8));
    f.emplace_back("clique_chain", clique_chain(12, 7));
    f.emplace_back("line_graph", line_graph(gnp(40, 0.18, rng)));
    f.emplace_back("cycle_power", cycle_power(120, 6));
    f.emplace_back("geometric", random_geometric(250, 0.12, rng));
    return f;
  }();

  for (const auto& [name, g] : families) {
    const auto theta_opt = neighborhood_independence_exact(g, 128);
    const int theta =
        theta_opt ? *theta_opt : neighborhood_independence_upper(g);
    const Orientation o = Orientation::by_id(g);
    const LinialResult linial = linial_from_ids(g, o);
    for (int k : {2, 4, 8}) {
      const auto part =
          arbdefective_partition(g, linial.colors, linial.num_colors, k,
                                 PartitionEngine::kBeg18Oracle);
      const int d = max_oriented_defect(part.orientation, part.classes);
      const int bound = (2 * d + 1) * theta;
      const int measured = max_undirected_defect(g, part.classes);
      const bool holds = measured <= bound;
      t.add(name, theta, k, d, bound, measured,
            bound > 0 ? static_cast<double>(measured) / bound : 0.0,
            holds ? "yes" : "NO");
      csv.row({name, std::to_string(theta), std::to_string(k),
               std::to_string(d), std::to_string(bound),
               std::to_string(measured), holds ? "1" : "0"});
    }
  }
  t.print(std::cout);
  std::cout << "Expectation: 'holds' everywhere; tightness well below 1 on\n"
               "random instances (the bound is worst-case).\n";
  return 0;
}
