// Tests for the plain-text serialization module (src/io).
#include <gtest/gtest.h>

#include <sstream>

#include "core/two_sweep.h"
#include "coloring/linial.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "io/dot_export.h"
#include "io/edge_list.h"
#include "io/instance_io.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  Rng rng(2001);
  const Graph g = gnp(80, 0.1, rng);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  EXPECT_EQ(g.num_nodes(), h.num_nodes());
  EXPECT_EQ(g.num_edges(), h.num_edges());
  EXPECT_EQ(g.edge_list(), h.edge_list());
}

TEST(GraphIo, EmptyGraph) {
  std::stringstream ss;
  write_graph(ss, Graph::from_edges(5, {}));
  const Graph h = read_graph(ss);
  EXPECT_EQ(h.num_nodes(), 5);
  EXPECT_EQ(h.num_edges(), 0);
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream ss("not-a-header v1\nnodes 3\nend\n");
    EXPECT_THROW(read_graph(ss), CheckError);
  }
  {
    std::stringstream ss("dcolor-graph v1\nnodes 3\nedge 0\nend\n");
    EXPECT_THROW(read_graph(ss), CheckError);
  }
  {
    std::stringstream ss("dcolor-graph v1\nnodes 3\nedge 0 nine\nend\n");
    EXPECT_THROW(read_graph(ss), CheckError);
  }
}

TEST(OldcIo, RoundTripPreservesInstance) {
  Rng rng(2002);
  const Graph g = random_near_regular(60, 6, rng);
  Orientation o = Orientation::by_id(g);
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 100, 12, 2, rng);

  std::stringstream ss;
  write_oldc(ss, inst);
  const OwnedOldcInstance owned = read_oldc(ss);
  const OldcInstance& back = owned.instance;

  EXPECT_EQ(back.color_space, inst.color_space);
  EXPECT_EQ(back.symmetric, inst.symmetric);
  EXPECT_EQ(owned.graph.edge_list(), g.edge_list());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    EXPECT_TRUE(back.lists[vi] == inst.lists[vi])
        << "palette mismatch at node " << v;
    EXPECT_EQ(back.orientation.outdegree(v), inst.orientation.outdegree(v));
    for (NodeId u : inst.orientation.out_neighbors(v)) {
      EXPECT_TRUE(back.orientation.is_out_edge(v, u));
    }
  }
}

TEST(OldcIo, RoundTrippedInstanceIsSolvable) {
  // The acid test: solve the instance after a round trip.
  Rng rng(2003);
  const Graph g = random_near_regular(80, 8, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() / 2 + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 4 * list_size, list_size, 1, rng);

  std::stringstream ss;
  write_oldc(ss, inst);
  const OwnedOldcInstance owned = read_oldc(ss);

  const Orientation lin = Orientation::by_id(owned.graph);
  const LinialResult linial = linial_from_ids(owned.graph, lin);
  const ColoringResult res =
      two_sweep(owned.instance, linial.colors, linial.num_colors, p);
  EXPECT_TRUE(validate_oldc(owned.instance, res.colors));
}

TEST(OldcIo, SymmetricInstanceRoundTrip) {
  const Graph g = cycle(8);
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 3;
  inst.symmetric = true;
  inst.lists.assign(8, ColorList::uniform({0, 1, 2}, 2));
  std::stringstream ss;
  write_oldc(ss, inst);
  const OwnedOldcInstance owned = read_oldc(ss);
  EXPECT_TRUE(owned.instance.symmetric);
  EXPECT_EQ(owned.instance.effective_outdegree(0), 2);
}

TEST(OldcIo, MissingListIsRejected) {
  std::stringstream ss(
      "dcolor-oldc v1\ncolorspace 4\nsymmetric 0\n"
      "dcolor-graph v1\nnodes 2\nedge 0 1\nend\n"
      "arc 1 0\nlist 0 1 2 0\nend\n");
  EXPECT_THROW(read_oldc(ss), CheckError);
}

TEST(ColoringIo, RoundTripWithUncoloredNodes) {
  const std::vector<Color> colors = {4, kNoColor, 0, 17, kNoColor};
  std::stringstream ss;
  write_coloring(ss, colors);
  EXPECT_EQ(read_coloring(ss), colors);
}

TEST(ColoringIo, RejectsOutOfRangeNode) {
  std::stringstream ss("dcolor-coloring v1\ncolors 2\nc 5 1\nend\n");
  EXPECT_THROW(read_coloring(ss), CheckError);
}

TEST(FileIo, SaveLoadGraph) {
  Rng rng(2004);
  const Graph g = random_tree(40, rng);
  const std::string path = "/tmp/dcolor_io_test_graph.txt";
  save_graph(path, g);
  const Graph h = load_graph(path);
  EXPECT_EQ(g.edge_list(), h.edge_list());
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(load_graph("/tmp/definitely_missing_dcolor_file.txt"),
               CheckError);
}

TEST(DotExport, UndirectedContainsNodesAndEdges) {
  const Graph g = cycle(4);
  std::stringstream ss;
  write_dot(ss, g, {0, 1, 0, 1});
  const std::string out = ss.str();
  EXPECT_NE(out.find("graph dcolor {"), std::string::npos);
  EXPECT_NE(out.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(out.find("fillcolor"), std::string::npos);
  // 4 nodes, 4 edges.
  std::size_t edges = 0;
  for (std::size_t pos = out.find(" -- "); pos != std::string::npos;
       pos = out.find(" -- ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 4u);
}

TEST(DotExport, DirectedUsesArrows) {
  const Graph g = path(3);
  const Orientation o = Orientation::by_id(g);
  std::stringstream ss;
  write_dot(ss, g, o, {});
  const std::string out = ss.str();
  EXPECT_NE(out.find("digraph"), std::string::npos);
  EXPECT_NE(out.find("1 -> 0;"), std::string::npos);
  EXPECT_NE(out.find("2 -> 1;"), std::string::npos);
}

TEST(DotExport, UncoloredNodesUnfilled) {
  const Graph g = path(2);
  std::stringstream ss;
  write_dot(ss, g, {kNoColor, 3});
  const std::string out = ss.str();
  // Exactly one filled node.
  std::size_t fills = 0;
  for (std::size_t pos = out.find("fillcolor"); pos != std::string::npos;
       pos = out.find("fillcolor", pos + 1)) {
    ++fills;
  }
  EXPECT_EQ(fills, 1u);
}

TEST(DotExport, LabelWithColorOption) {
  const Graph g = path(2);
  DotOptions options;
  options.label_with_color = true;
  std::stringstream ss;
  write_dot(ss, g, {7, 9}, options);
  EXPECT_NE(ss.str().find("label=\"0:7\""), std::string::npos);
}

TEST(EdgeListIo, SnapBarePairsWithCommentsLoopsAndDuplicates) {
  std::stringstream ss(
      "# SNAP-style comment\n"
      "% matrix-market-style header\n"
      "\n"
      "0 1\n"
      "1 0\n"      // duplicate of {0,1}
      "2 2\n"      // self-loop
      "1 3\n"
      "3\t2\n");   // tabs are whitespace too
  EdgeListStats stats;
  const Graph g = read_edge_list(ss, &stats);
  EXPECT_EQ(g.num_nodes(), 4);  // max id + 1
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_EQ(stats.comments, 3);
  EXPECT_EQ(stats.edges, 5);  // edge LINES, before loop/duplicate dropping
  EXPECT_EQ(stats.self_loops, 1);
  EXPECT_EQ(stats.duplicates, 1);
  EXPECT_FALSE(stats.dimacs);
}

TEST(EdgeListIo, DimacsProblemLineSwitchesToOneBasedIds) {
  std::stringstream ss(
      "c DIMACS comment\n"
      "p edge 4 3\n"
      "e 1 2\n"
      "e 2 3\n"
      "e 4 1\n");
  EdgeListStats stats;
  const Graph g = read_edge_list(ss, &stats);
  EXPECT_TRUE(stats.dimacs);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));  // 'e 1 2', shifted to 0-based
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(3, 0));
}

TEST(EdgeListIo, RejectsMalformedEdgeLists) {
  {
    std::stringstream ss("0 1\n2 three\n");  // garbage token
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
  {
    std::stringstream ss("0 1 2\n");  // extra column on a bare pair
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
  {
    std::stringstream ss("e 1 2\np edge 3 1\n");  // 'e' before 'p'
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
  {
    std::stringstream ss("p edge 3 1\ne 1 4\n");  // id beyond declared n
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
  {
    std::stringstream ss("p edge 3 2\ne 1 2\n");  // declared m != actual
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
  {
    std::stringstream ss("0 -1\n");  // negative id
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
}

TEST(EdgeListIo, UppercaseDimacsTagsAccepted) {
  // SNAP mirrors of DIMACS files carry uppercase tag letters.
  std::stringstream ss(
      "C uppercase comment\n"
      "P edge 4 3\n"
      "E 1 2\n"
      "e 2 3\n"
      "A 4 1\n");  // arc lines read as edges too
  EdgeListStats stats;
  const Graph g = read_edge_list(ss, &stats);
  EXPECT_TRUE(stats.dimacs);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(3, 0));
}

TEST(EdgeListIo, NodeIdBoundaryGuardsAgainstOverflow) {
  {
    // id 0x7FFFFFFF itself passes a naive 32-bit check, but n = id + 1
    // then overflows NodeId; the reader must reject the id up front.
    std::stringstream ss("0 2147483647\n");
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
  {
    std::stringstream ss("0 2147483648\n");  // beyond 32-bit entirely
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
  {
    // A DIMACS problem line declaring more nodes than NodeId can count.
    std::stringstream ss("p edge 2147483648 0\n");
    EXPECT_THROW(read_edge_list(ss), CheckError);
  }
}

TEST(EdgeListIo, LoadedGraphMatchesFromEdges) {
  // The reader must produce the same CSR from_edges builds — snapshot
  // determinism downstream depends on it.
  std::stringstream ss("0 1\n0 2\n1 2\n3 1\n");
  const Graph parsed = read_edge_list(ss);
  const Graph direct = Graph::from_edges(4, {{0, 1}, {0, 2}, {1, 2}, {3, 1}});
  EXPECT_EQ(parsed.edge_list(), direct.edge_list());
}

}  // namespace
}  // namespace dcolor
