// Serve layer: JSON protocol parsing, the mutable resident instance and
// its dirtiness contract, incremental recoloring (unit + differential),
// and the daemon itself — socket-free through Server::handle plus real
// TCP round-trips with concurrent sessions (the `ctest -L serve` group a
// TSan build targets). The incremental-vs-full speedup gate runs only in
// plain builds (sanitizers would measure themselves).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "check/fuzz.h"
#include "check/invariant_checker.h"
#include "core/recolor.h"
#include "core/run_context.h"
#include "core/solver_registry.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/dynamic_instance.h"
#include "serve/json.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor::serve {
namespace {

// ---- JSON ---------------------------------------------------------------

TEST(ServeJson, ParsesAndRoundTrips) {
  const JsonValue v = JsonValue::parse(
      R"( {"a": 1, "b": [true, null, "x\nA"], "c": -2.5, "d": "", )"
      R"("e": {"nested": 7}} )");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.require("a").as_int(), 1);
  const auto& b = v.require("b").as_array();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b[0].as_bool());
  EXPECT_TRUE(b[1].is_null());
  EXPECT_EQ(b[2].as_string(), "x\nA");
  EXPECT_DOUBLE_EQ(v.require("c").as_double(), -2.5);
  EXPECT_EQ(v.require("e").require("nested").as_int(), 7);
  // dump -> parse -> dump is stable (objects keep insertion order).
  const std::string once = v.dump();
  EXPECT_EQ(JsonValue::parse(once).dump(), once);
}

TEST(ServeJson, IntegersKeepInt64Exactness) {
  const JsonValue v = JsonValue::parse(R"({"big": 9007199254740993})");
  EXPECT_EQ(v.require("big").as_int(), 9007199254740993LL);
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), CheckError);
  EXPECT_THROW(JsonValue::parse("{"), CheckError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), CheckError);
  EXPECT_THROW(JsonValue::parse(R"({"a": })"), CheckError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), CheckError);
  EXPECT_THROW(JsonValue::parse(R"("bad \q escape")"), CheckError);
  EXPECT_THROW(JsonValue::parse("01"), CheckError);
  // Depth bomb: 80 nested arrays exceeds the parser's depth cap.
  std::string bomb;
  for (int i = 0; i < 80; ++i) bomb += '[';
  for (int i = 0; i < 80; ++i) bomb += ']';
  EXPECT_THROW(JsonValue::parse(bomb), CheckError);
}

TEST(ServeJson, TypedAccessorsNameTheField) {
  const JsonValue v = JsonValue::parse(R"({"n": "not a number"})");
  try {
    v.require("n").as_int("n");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find('n'), std::string::npos);
  }
  EXPECT_THROW(v.require("missing"), CheckError);
  EXPECT_EQ(v.get_int("absent", 42), 42);
}

// ---- DynamicInstance ----------------------------------------------------

/// Greedy proper list coloring — always possible on (deg+1)-lists.
void solve_greedy(DynamicInstance& inst) {
  std::vector<Color> colors(static_cast<std::size_t>(inst.num_nodes()),
                            kNoColor);
  for (NodeId v = 0; v < inst.num_nodes(); ++v) {
    const PaletteView list = inst.lists()[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Color c = list.color(i);
      bool clash = false;
      for (const NodeId u : inst.neighbors(v)) {
        if (colors[static_cast<std::size_t>(u)] == c) clash = true;
      }
      if (!clash) {
        colors[static_cast<std::size_t>(v)] = c;
        break;
      }
    }
    ASSERT_NE(colors[static_cast<std::size_t>(v)], kNoColor);
  }
  inst.set_colors(std::move(colors));
}

TEST(DynamicInstance, BuildsDegPlusOneHeadroomLists) {
  Rng rng(7);
  const Graph g = gnp_avg_degree(200, 6.0, rng);
  DynamicInstance inst(200, g.edge_list(), /*headroom=*/2, /*seed=*/7);
  EXPECT_EQ(inst.num_nodes(), 200);
  EXPECT_EQ(inst.num_edges(), g.num_edges());
  for (NodeId v = 0; v < inst.num_nodes(); ++v) {
    const PaletteView list = inst.lists()[static_cast<std::size_t>(v)];
    EXPECT_EQ(list.size(), inst.neighbors(v).size() + 3u);
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_EQ(list.defect(i), 0);
      EXPECT_LT(list.color(i), inst.color_space());
    }
  }
}

TEST(DynamicInstance, MutationDirtinessContract) {
  const Graph g = cycle(12);
  DynamicInstance inst(12, g.edge_list(), 2, 1);
  solve_greedy(inst);
  EXPECT_FALSE(inst.has_dirty());

  // Duplicate and self-loop insertions are no-ops and stay clean.
  EXPECT_FALSE(inst.add_edge(0, 1));
  EXPECT_FALSE(inst.add_edge(3, 3));
  EXPECT_FALSE(inst.has_dirty());

  // A real insertion dirties exactly its endpoints.
  EXPECT_TRUE(inst.add_edge(0, 6));
  EXPECT_EQ(inst.dirty(), (std::vector<NodeId>{0, 6}));

  inst.set_colors(inst.colors());  // re-install clears the dirty set
  EXPECT_FALSE(inst.has_dirty());

  // Removals never dirty and keep the coloring valid.
  EXPECT_TRUE(inst.remove_edge(0, 6));
  EXPECT_FALSE(inst.has_dirty());
  const NodeId fresh = inst.add_node();
  EXPECT_EQ(fresh, 12);
  EXPECT_FALSE(inst.has_dirty());
  EXPECT_TRUE(inst.remove_node(5));
  EXPECT_FALSE(inst.alive(5));
  EXPECT_FALSE(inst.has_dirty());
  EXPECT_TRUE(inst.validate());
}

TEST(DynamicInstance, RecolorRepairsInsertions) {
  Rng rng(11);
  const Graph g = gnp_avg_degree(400, 5.0, rng);
  DynamicInstance inst(400, g.edge_list(), 2, 11);
  solve_greedy(inst);
  ASSERT_TRUE(inst.validate());

  std::int64_t total_changed = 0;
  for (int round = 0; round < 20; ++round) {
    for (int k = 0; k < 3; ++k) {
      const auto u = static_cast<NodeId>(rng.below(400));
      const auto v = static_cast<NodeId>(rng.below(400));
      if (u != v) inst.add_edge(u, v);
    }
    if (!inst.has_dirty()) continue;
    const std::int64_t dirty = static_cast<std::int64_t>(inst.dirty().size());
    RunContext ctx;
    ctx.seed = 100 + static_cast<std::uint64_t>(round);
    const RecolorResult res = inst.recolor(ctx);
    EXPECT_FALSE(inst.has_dirty());
    EXPECT_LE(res.colors_changed, dirty + res.dirty_nodes);
    total_changed += res.colors_changed;
    ASSERT_TRUE(inst.validate()) << "round " << round;
  }
  // Repair is local: across 60 insertions on 400 nodes, only a small
  // fraction of the graph may ever change color.
  EXPECT_LT(total_changed, 120);
}

TEST(DynamicInstance, RecolorDifferentialBattery) {
  for (std::int64_t idx = 0; idx < 9; ++idx) {
    EXPECT_EQ(run_recolor_battery(/*seed=*/5, idx, /*max_n=*/40), "")
        << "case " << idx;
  }
}

// ---- Server (socket-free, via handle) ----------------------------------

JsonValue req(const std::string& line) { return JsonValue::parse(line); }

TEST(Serve, HandleSpeaksTheProtocol) {
  ServerOptions options;
  options.workers = 2;
  options.check = "collect";
  Server server(options);
  EXPECT_GT(server.port(), 0);

  JsonValue r = server.handle(req(R"({"op":"ping","id":9})"));
  EXPECT_TRUE(r.require("ok").as_bool());
  EXPECT_EQ(r.require("id").as_int(), 9);

  r = server.handle(req(
      R"({"op":"create","session":"s","edges":[[0,1],[1,2],[2,0]],"n":4})"));
  ASSERT_TRUE(r.require("ok").as_bool()) << r.dump();
  EXPECT_EQ(r.require("nodes").as_int(), 4);
  EXPECT_EQ(r.require("edges").as_int(), 3);

  // Duplicate session names are rejected; unknown sessions error.
  EXPECT_FALSE(server
                   .handle(req(
                       R"({"op":"create","session":"s","edges":[[0,1]]})"))
                   .require("ok")
                   .as_bool());
  r = server.handle(req(R"({"op":"solve","session":"nope"})"));
  EXPECT_FALSE(r.require("ok").as_bool());
  EXPECT_NE(r.require("error").as_string().find("nope"), std::string::npos);

  r = server.handle(req(R"({"op":"solve","session":"s"})"));
  ASSERT_TRUE(r.require("ok").as_bool()) << r.dump();
  EXPECT_EQ(r.require("solver").as_string(), "deg_plus_one");

  r = server.handle(req(R"({"op":"query","session":"s","nodes":[0,1,2]})"));
  ASSERT_TRUE(r.require("ok").as_bool());
  const auto& colors = r.require("colors").as_array();
  ASSERT_EQ(colors.size(), 3u);
  EXPECT_NE(colors[0].as_int(), colors[1].as_int());

  r = server.handle(
      req(R"({"op":"mutate","session":"s","kind":"add_edge","u":0,"v":3})"));
  ASSERT_TRUE(r.require("ok").as_bool());
  EXPECT_EQ(r.require("dirty").as_int(), 2);

  r = server.handle(req(R"({"op":"recolor","session":"s"})"));
  ASSERT_TRUE(r.require("ok").as_bool()) << r.dump();
  EXPECT_EQ(r.require("dirty_nodes").as_int(), 2);

  r = server.handle(req(R"({"op":"info","session":"s"})"));
  ASSERT_TRUE(r.require("ok").as_bool());
  EXPECT_TRUE(r.require("colored").as_bool());
  EXPECT_EQ(r.require("dirty").as_int(), 0);
  EXPECT_EQ(r.require("violations").as_int(), 0);

  r = server.handle(req(R"({"op":"stats","session":"s","format":"prom"})"));
  ASSERT_TRUE(r.require("ok").as_bool());
  EXPECT_NE(r.require("stats").as_string().find("dcolor_serve_solves"),
            std::string::npos);

  EXPECT_TRUE(server.handle(req(R"({"op":"drop","session":"s"})"))
                  .require("ok")
                  .as_bool());
  EXPECT_FALSE(server.handle(req(R"({"op":"info","session":"s"})"))
                   .require("ok")
                   .as_bool());
  EXPECT_FALSE(
      server.handle(req(R"({"op":"frobnicate"})")).require("ok").as_bool());
}

TEST(Serve, SolverCapabilityGate) {
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  ASSERT_TRUE(server
                  .handle(req(R"({"op":"create","session":"s",)"
                              R"("generator":"cycle","n":16})"))
                  .require("ok")
                  .as_bool());
  // two_sweep consumes OLDC instances, not the session's list instance.
  const JsonValue r = server.handle(
      req(R"({"op":"solve","session":"s","solver":"two_sweep"})"));
  EXPECT_FALSE(r.require("ok").as_bool());
  EXPECT_NE(r.require("error").as_string().find("two_sweep"),
            std::string::npos);
}

// ---- Server (real sockets) ---------------------------------------------

TEST(Serve, DaemonStartStopRoundTrip) {
  ServerOptions options;
  options.workers = 2;
  Server server(options);
  std::thread accept_thread([&server] { server.run(); });

  {
    Client client(server.port());
    const JsonValue pong = client.call(req(R"({"op":"ping"})"));
    EXPECT_TRUE(pong.require("ok").as_bool());
    // Malformed request lines answer with an error instead of dying.
    const JsonValue err = JsonValue::parse(client.call_line("{nope"));
    EXPECT_FALSE(err.require("ok").as_bool());
    const JsonValue bye = client.call(req(R"({"op":"shutdown"})"));
    EXPECT_TRUE(bye.require("ok").as_bool());
  }
  accept_thread.join();
}

TEST(Serve, ConcurrentSessionsStayIsolated) {
  ServerOptions options;
  options.workers = 4;
  options.check = "collect";
  Server server(options);
  std::thread accept_thread([&server] { server.run(); });

  constexpr int kSessions = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&server, &failures, i] {
      try {
        Client client(server.port());
        const std::string s = "s" + std::to_string(i);
        auto ok = [&](const std::string& line) {
          const JsonValue r = client.call(JsonValue::parse(line));
          if (!r.require("ok").as_bool()) {
            ADD_FAILURE() << s << ": " << r.dump();
            ++failures;
          }
          return r;
        };
        ok(R"({"op":"create","session":")" + s +
           R"(","generator":"gnp","n":300,"degree":6,"seed":)" +
           std::to_string(100 + i) + "}");
        ok(R"({"op":"solve","session":")" + s + R"("})");
        for (int m = 0; m < 5; ++m) {
          ok(R"({"op":"mutate","session":")" + s +
             R"(","kind":"add_edge","u":)" + std::to_string(m) + R"(,"v":)" +
             std::to_string(150 + 7 * m + i) + "}");
          ok(R"({"op":"recolor","session":")" + s + R"("})");
        }
        const JsonValue info = ok(R"({"op":"info","session":")" + s + R"("})");
        if (info.require("violations").as_int() != 0 ||
            !info.require("colored").as_bool() ||
            info.require("dirty").as_int() != 0) {
          ADD_FAILURE() << s << ": bad end state " << info.dump();
          ++failures;
        }
      } catch (const std::exception& e) {
        ADD_FAILURE() << "session " << i << " threw: " << e.what();
        ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.shutdown();
  accept_thread.join();
}

// ---- scheduler-backed hygiene and streaming ------------------------------

TEST(Serve, SessionQuotaRejectsWithCleanJsonError) {
  ServerOptions options;
  options.workers = 1;
  options.session_quota = 0;  // degenerate: every heavy request over quota
  Server server(options);
  ASSERT_TRUE(server
                  .handle(req(R"({"op":"create","session":"q",)"
                              R"("generator":"cycle","n":16})"))
                  .require("ok")
                  .as_bool());
  const JsonValue r = server.handle(req(R"({"op":"solve","session":"q"})"));
  EXPECT_FALSE(r.require("ok").as_bool());
  EXPECT_NE(r.require("error").as_string().find("quota"),
            std::string::npos)
      << r.dump();
  // Light requests (info/query) are not metered.
  EXPECT_TRUE(server.handle(req(R"({"op":"info","session":"q"})"))
                  .require("ok")
                  .as_bool());
}

TEST(Serve, EvictedSessionReturnsCleanJsonError) {
  ServerOptions options;
  options.workers = 1;
  options.session_ttl = 0.05;  // evict after 50 ms idle
  Server server(options);
  ASSERT_TRUE(server
                  .handle(req(R"({"op":"create","session":"idle",)"
                              R"("generator":"cycle","n":16})"))
                  .require("ok")
                  .as_bool());
  // Poll rather than sleep once (CI machines stall) — but each probe
  // touches the session and restarts its idle clock, so every wait must
  // itself exceed the TTL for the eviction timer to win the race.
  JsonValue r = server.handle(req(R"({"op":"ping"})"));
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(75));
    r = server.handle(req(R"({"op":"info","session":"idle"})"));
    if (!r.require("ok").as_bool()) break;
  }
  ASSERT_FALSE(r.require("ok").as_bool()) << "session was never evicted";
  const std::string error = r.require("error").as_string();
  EXPECT_NE(error.find("evicted"), std::string::npos) << error;
  EXPECT_NE(error.find("session-ttl"), std::string::npos) << error;
  // The name is reusable: create wins over the tombstone.
  EXPECT_TRUE(server
                  .handle(req(R"({"op":"create","session":"idle",)"
                              R"("generator":"cycle","n":16})"))
                  .require("ok")
                  .as_bool());
}

TEST(Serve, BatchOpStreamsJobLinesBeforeTheSummary) {
  ServerOptions options;
  options.workers = 2;
  Server server(options);
  std::thread accept_thread([&server] { server.run(); });
  {
    Client client(server.port());
    std::vector<JsonValue> events;
    const JsonValue r = client.call(
        req(R"({"op":"batch","stream":true,"jobs":)"
            R"("solver=greedy,generator=cycle,n=32,seed=1,repeat=3"})"),
        [&events](const std::string& line) {
          events.push_back(JsonValue::parse(line));
        });
    ASSERT_TRUE(r.require("ok").as_bool()) << r.dump();
    EXPECT_EQ(r.require("jobs").as_int(), 3);
    EXPECT_EQ(r.require("jobs_valid").as_int(), 3);
    // 3 streamed job lines (in index order) then 1 summary line.
    ASSERT_EQ(events.size(), 4u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(events[static_cast<std::size_t>(i)].require("event")
                    .as_string(),
                "job");
      EXPECT_EQ(events[static_cast<std::size_t>(i)].require("index")
                    .as_int(),
                i);
    }
    EXPECT_EQ(events[3].require("event").as_string(), "summary");
    client.call(req(R"({"op":"shutdown"})"));
  }
  accept_thread.join();
}

TEST(Serve, AsyncSolvePushesACompletionEvent) {
  ServerOptions options;
  options.workers = 2;
  Server server(options);
  std::thread accept_thread([&server] { server.run(); });
  {
    Client client(server.port());
    ASSERT_TRUE(client
                    .call(req(R"({"op":"create","session":"a",)"
                              R"("generator":"gnp","n":200,"degree":6,)"
                              R"("seed":5})"))
                    .require("ok")
                    .as_bool());
    // The worker may push solve_done BEFORE the connection thread gets
    // to write the queued-response — capture early events instead of
    // letting call() drop them (wait_event would then block forever).
    std::vector<JsonValue> early;
    const JsonValue queued = client.call(
        req(R"({"op":"solve","session":"a","async":true,"id":42})"),
        [&early](const std::string& line) {
          early.push_back(JsonValue::parse(line));
        });
    ASSERT_TRUE(queued.require("ok").as_bool()) << queued.dump();
    EXPECT_TRUE(queued.require("queued").as_bool());
    const JsonValue done = early.empty() ? client.wait_event() : early[0];
    EXPECT_EQ(done.require("event").as_string(), "solve_done");
    EXPECT_EQ(done.require("session").as_string(), "a");
    EXPECT_EQ(done.require("id").as_int(), 42);
    EXPECT_TRUE(done.require("ok").as_bool()) << done.dump();
    // The session really is colored afterwards.
    const JsonValue info =
        client.call(req(R"({"op":"info","session":"a"})"));
    EXPECT_TRUE(info.require("colored").as_bool());
    client.call(req(R"({"op":"shutdown"})"));
  }
  accept_thread.join();
}

// ---- acceptance: incremental beats full re-solve ------------------------

TEST(Serve, IncrementalRecolorBeatsFullResolve) {
#ifdef DCOLOR_SANITIZED
  GTEST_SKIP() << "wall-clock gate is meaningless under sanitizers";
#else
  Rng rng(3);
  const NodeId n = 65536;
  const Graph g = gnp_avg_degree(n, 8.0, rng);
  DynamicInstance inst(n, g.edge_list(), 2, 3);
  const Solver& solver = SolverRegistry::get().require("deg_plus_one");

  const auto full_solve_ms = [&] {
    const Graph mg = inst.materialize();
    ListDefectiveInstance ldi;
    ldi.graph = &mg;
    ldi.lists = inst.lists().borrow();
    ldi.color_space = inst.color_space();
    SolveRequest sreq;
    sreq.list_defective = &ldi;
    RunContext ctx;
    ctx.seed = 3;
    ctx.num_threads = 1;
    const auto start = std::chrono::steady_clock::now();
    SolveResult res = solver.solve(sreq, ctx);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    inst.set_colors(std::move(res.colors));
    return ms;
  };
  const double solve_ms = full_solve_ms();
  ASSERT_TRUE(inst.validate());

  // Warm instance, one edge insertion, incremental repair.
  NodeId u = 0;
  NodeId v = 1;
  while (!inst.add_edge(u, v)) {
    u = static_cast<NodeId>(rng.below(n));
    v = static_cast<NodeId>(rng.below(n));
    if (u == v) v = (v + 1) % n;
  }
  RunContext ctx;
  ctx.seed = 4;
  ctx.num_threads = 1;
  const auto start = std::chrono::steady_clock::now();
  const RecolorResult res = inst.recolor(ctx);
  const double recolor_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_TRUE(inst.validate());
  EXPECT_EQ(res.dirty_nodes, 2);
  EXPECT_GE(solve_ms, 10.0 * recolor_ms)
      << "full solve " << solve_ms << " ms vs incremental " << recolor_ms
      << " ms";
#endif
}

}  // namespace
}  // namespace dcolor::serve
