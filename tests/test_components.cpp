// Tests for the shared sequential-coloring infrastructure
// (TrimmedList, StampOrientationBuilder), the ColorList type, the
// simulator's CONGEST bit cap, and the Two-Sweep ablation policies.
#include <gtest/gtest.h>

#include "coloring/linial.h"
#include "core/instance.h"
#include "core/sequential_coloring.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {
namespace {

// ---- ColorList -------------------------------------------------------------

TEST(ColorList, SortsAndLooksUp) {
  const ColorList lst({9, 3, 7}, {1, 0, 2});
  EXPECT_EQ(lst.colors(), (std::vector<Color>{3, 7, 9}));
  EXPECT_EQ(lst.defects(), (std::vector<int>{0, 2, 1}));
  EXPECT_TRUE(lst.contains(7));
  EXPECT_FALSE(lst.contains(5));
  EXPECT_EQ(lst.defect_of(9), 1);
  EXPECT_FALSE(lst.defect_of(5).has_value());
  EXPECT_EQ(lst.weight(), 6);  // (0+1)+(2+1)+(1+1)
}

TEST(ColorList, RejectsDuplicatesAndNegativeDefects) {
  EXPECT_THROW(ColorList({1, 1}, {0, 0}), CheckError);
  EXPECT_THROW(ColorList({1, 2}, {0, -1}), CheckError);
}

TEST(ColorList, TransformDropsNegatives) {
  const ColorList lst({1, 2, 3}, {0, 1, 2});
  const ColorList cut = lst.transform([](Color, int d) { return d - 1; });
  EXPECT_EQ(cut.colors(), (std::vector<Color>{2, 3}));
  EXPECT_EQ(cut.defects(), (std::vector<int>{0, 1}));
}

TEST(ColorList, FactoryHelpers) {
  const ColorList z = ColorList::zero_defect({5, 1});
  EXPECT_EQ(z.weight(), 2);
  const ColorList u = ColorList::uniform({5, 1}, 3);
  EXPECT_EQ(u.weight(), 8);
}

// ---- TrimmedList -----------------------------------------------------------

TEST(TrimmedList, DecrementsAndEvicts) {
  TrimmedList t = TrimmedList::from(ColorList({1, 2}, {1, 0}));
  EXPECT_EQ(t.weight(), 3);
  t.on_neighbor_colored(1);  // residual 1 -> 0
  EXPECT_EQ(t.weight(), 2);
  EXPECT_EQ(t.colors.size(), 2u);
  t.on_neighbor_colored(1);  // residual 0 -> evicted
  EXPECT_EQ(t.weight(), 1);
  EXPECT_EQ(t.colors, (std::vector<Color>{2}));
  t.on_neighbor_colored(7);  // absent: no-op
  EXPECT_EQ(t.weight(), 1);
  t.on_neighbor_colored(2);  // evict the last color
  EXPECT_TRUE(t.colors.empty());
  EXPECT_EQ(t.weight(), 0);
}

TEST(TrimmedList, WeightDropsByExactlyOnePerHit) {
  // The invariant every Section 4 slack argument rests on.
  Rng rng(3001);
  TrimmedList t;
  for (Color c = 0; c < 50; ++c) {
    t.colors.push_back(c);
    t.residual.push_back(static_cast<int>(rng.below(4)));
  }
  std::int64_t w = t.weight();
  for (int hit = 0; hit < 100; ++hit) {
    const Color c = static_cast<Color>(rng.below(60));  // sometimes absent
    const bool present =
        std::binary_search(t.colors.begin(), t.colors.end(), c);
    t.on_neighbor_colored(c);
    EXPECT_EQ(t.weight(), present ? w - 1 : w);
    w = t.weight();
  }
}

// ---- StampOrientationBuilder ----------------------------------------------

TEST(StampBuilder, EarlierStampBecomesHead) {
  const Graph g = path(3);
  StampOrientationBuilder b(3);
  b.set_stamp(0, 5);
  b.set_stamp(1, 2);
  b.set_stamp(2, 9);
  const Orientation o = b.build(g);
  EXPECT_TRUE(o.is_out_edge(0, 1));  // 1 colored earlier
  EXPECT_TRUE(o.is_out_edge(2, 1));
}

TEST(StampBuilder, SamePhaseUsesRecordedArcs) {
  const Graph g = cycle(4);
  StampOrientationBuilder b(4);
  for (NodeId v = 0; v < 4; ++v) b.set_stamp(v, 1);
  b.add_same_phase_arc(0, 1);
  b.add_same_phase_arc(2, 1);
  b.add_same_phase_arc(2, 3);
  b.add_same_phase_arc(0, 3);
  const Orientation o = b.build(g);
  EXPECT_EQ(o.outdegree(0), 2);
  EXPECT_EQ(o.outdegree(2), 2);
  EXPECT_EQ(o.outdegree(1), 0);
}

TEST(StampBuilder, MissingSamePhaseArcIsAnError) {
  const Graph g = path(2);
  StampOrientationBuilder b(2);
  b.set_stamp(0, 1);
  b.set_stamp(1, 1);
  EXPECT_THROW(b.build(g), CheckError);  // neither direction recorded
}

// ---- Network CONGEST bit cap ------------------------------------------------

class WideSender final : public SyncAlgorithm {
 public:
  explicit WideSender(const Graph& g, int bits) : graph_(&g), bits_(bits) {}
  void init(NodeId v, Mailbox& mail) override {
    if (v == 0) {
      Message m;
      m.push(0, bits_);
      broadcast(*graph_, mail, m);
    }
  }
  void step(NodeId, int, Mailbox&) override {}
  bool done(NodeId) const override { return true; }

 private:
  const Graph* graph_;
  int bits_;
};

TEST(NetworkBitCap, EnforcesCongestBudget) {
  const Graph g = path(3);
  Network net(g);
  WideSender narrow(g, 8);
  EXPECT_NO_THROW(net.run(narrow, 5, /*message_bit_cap=*/8));
  WideSender wide(g, 9);
  EXPECT_THROW(net.run(wide, 5, /*message_bit_cap=*/8), CheckError);
}

TEST(NetworkBitCap, ZeroMeansUnlimited) {
  const Graph g = path(3);
  Network net(g);
  WideSender wide(g, 63);
  EXPECT_NO_THROW(net.run(wide, 5));
}

TEST(NetworkBitCap, CertifiesTwoSweepMessagePattern) {
  // Theorem 1.1's message claim, enforced by the simulator (not just
  // observed): initial color (log q bits) then p colors (p·log C bits),
  // plus the 2-bit type tags.
  Rng rng(3010);
  const Graph g = random_near_regular(80, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  const int list_size = p * p + p + 1;
  const std::int64_t space = 4 * list_size;
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), space, list_size, 0, rng);
  const Orientation lin = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, lin);

  const int color_bits = ceil_log2(static_cast<std::uint64_t>(space));
  const int q_bits =
      ceil_log2(static_cast<std::uint64_t>(linial.num_colors));
  const int cap = 2 + std::max(q_bits, p * color_bits);

  TwoSweepProgram program(inst, linial.colors, linial.num_colors, p);
  Network net(g);
  EXPECT_NO_THROW(net.run(program, 2 * linial.num_colors + 4, cap));
  EXPECT_TRUE(validate_oldc(inst, program.final_colors()));

  // One bit less must trip the enforcement.
  TwoSweepProgram program2(inst, linial.colors, linial.num_colors, p);
  Network net2(g);
  EXPECT_THROW(net2.run(program2, 2 * linial.num_colors + 4, cap - 1),
               CheckError);
}

// ---- Two-Sweep ablation policies -------------------------------------------

TEST(TwoSweepPolicies, RandomSubsetValidAtGenerousSlack) {
  Rng rng(3002);
  const Graph g = random_near_regular(120, 8, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  const int list_size = 3 * (p * p + p + 1);  // 3x the threshold
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 4 * list_size, list_size, 0, rng);
  const Orientation lin = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, lin);
  TwoSweepOptions options;
  options.selection = TwoSweepSelection::kRandomSubset;
  options.selection_seed = 77;
  RunContext ctx;
  ctx.skip_precondition_check = true;
  const ColoringResult res =
      two_sweep(inst, linial.colors, linial.num_colors, p, ctx, options);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
}

TEST(TwoSweepPolicies, OneSweepIsHalfTheRounds) {
  Rng rng(3003);
  const Graph g = random_near_regular(100, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 4 * list_size, list_size, 0, rng);
  const Orientation lin = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, lin);

  const ColoringResult two =
      two_sweep(inst, linial.colors, linial.num_colors, p);
  TwoSweepOptions options;
  options.selection = TwoSweepSelection::kOneSweep;
  const ColoringResult one =
      two_sweep_ex(inst, linial.colors, linial.num_colors, p, options);
  EXPECT_LT(one.metrics.rounds, two.metrics.rounds);
  EXPECT_TRUE(all_colored(one.colors));
  // With by-id orientation every out-neighbor decides earlier*, so even
  // one sweep yields a valid OLDC here (*up to the Linial color order; the
  // margin rule still protects the node because k_v is exact for the
  // earlier ones and zero-defect colors are plentiful at this slack).
  EXPECT_TRUE(validate_oldc(inst, one.colors));
}

TEST(TwoSweepPolicies, OneSweepFailsWhenEdgesPointLater) {
  // The adversarial direction of E13(a), as a regression test.
  Rng rng(3004);
  const Graph g = random_near_regular(150, 10, rng);
  const Orientation lin_orient = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, lin_orient);
  const auto& init = linial.colors;
  Orientation toward_later =
      Orientation::from_predicate(g, [&](NodeId a, NodeId b) {
        return init[static_cast<std::size_t>(b)] >
               init[static_cast<std::size_t>(a)];
      });
  const int beta = toward_later.beta();
  const int p = beta / 2 + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst = random_uniform_oldc(
      g, std::move(toward_later), list_size, list_size, 1, rng);

  TwoSweepOptions one;
  one.selection = TwoSweepSelection::kOneSweep;
  const ColoringResult r1 =
      two_sweep_ex(inst, init, linial.num_colors, p, one);
  EXPECT_FALSE(validate_oldc(inst, r1.colors));  // one sweep overshoots

  const ColoringResult r2 = two_sweep(inst, init, linial.num_colors, p);
  EXPECT_TRUE(validate_oldc(inst, r2.colors));  // two sweeps fix it
}

}  // namespace
}  // namespace dcolor
