// PaletteStore tests: ColorList <-> PaletteStore equivalence on randomized
// instances, structural-dedup accounting (memory O(distinct palettes + n)),
// and the determinism contract — bit-identical arenas at 1/2/4/8 threads
// for both the raw parallel builder and the instance/graph generators that
// sit on top of it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/palette_store.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

#include "test_harness.h"

namespace dcolor {
namespace {

std::vector<Color> to_vec(std::span<const Color> s) {
  return {s.begin(), s.end()};
}
std::vector<int> to_vec(std::span<const int> s) { return {s.begin(), s.end()}; }

ColorList random_list(Rng& rng, std::int64_t color_space, int max_size) {
  const int k = 1 + static_cast<int>(rng.below(
                        static_cast<std::uint64_t>(max_size)));
  const auto raw = rng.sample_without_replacement(
      static_cast<std::uint64_t>(color_space), static_cast<std::uint64_t>(k));
  std::vector<Color> colors(raw.begin(), raw.end());
  std::vector<int> defects(colors.size());
  for (auto& d : defects) d = static_cast<int>(rng.below(5));
  return {std::move(colors), std::move(defects)};
}

void expect_same_store(const PaletteStore& a, const PaletteStore& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_palettes(), b.num_palettes());
  EXPECT_EQ(a.dedup_hits(), b.dedup_hits());
  EXPECT_EQ(a.arena_entries(), b.arena_entries());
  EXPECT_EQ(to_vec(a.arena_colors()), to_vec(b.arena_colors()));
  EXPECT_EQ(to_vec(a.arena_defects()), to_vec(b.arena_defects()));
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a.palette_id(v), b.palette_id(v)) << "node " << v;
  }
}

TEST(PaletteView, MatchesColorListSemantics) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const ColorList list = random_list(rng, 60, 12);
    const PaletteView view(list);  // compatibility constructor
    ASSERT_EQ(view.size(), list.size());
    EXPECT_EQ(view.weight(), list.weight());
    for (Color c = -1; c < 61; ++c) {
      EXPECT_EQ(view.contains(c), list.contains(c)) << "color " << c;
      EXPECT_EQ(view.defect_of(c), list.defect_of(c)) << "color " << c;
    }
    const ColorList halved =
        view.transform([](Color, int d) { return d - 1; });
    const ColorList expected =
        list.transform([](Color, int d) { return d - 1; });
    EXPECT_EQ(halved.colors(), expected.colors());
    EXPECT_EQ(halved.defects(), expected.defects());
  }
}

TEST(PaletteStore, RoundTripsRandomLists) {
  Rng rng(7);
  std::vector<ColorList> reference;
  PaletteStore store;
  for (int i = 0; i < 500; ++i) {
    reference.push_back(random_list(rng, 40, 10));
    store.push_back(reference.back());
  }
  ASSERT_EQ(store.size(), reference.size());
  for (std::size_t v = 0; v < reference.size(); ++v) {
    const auto& list = reference[v];
    const auto view = store[v];
    ASSERT_EQ(view.size(), list.size()) << "node " << v;
    EXPECT_EQ(to_vec(view.colors()), list.colors());
    EXPECT_EQ(to_vec(view.defects()), list.defects());
    EXPECT_EQ(view.weight(), list.weight());
  }
}

TEST(PaletteStore, PushScratchSortsAndValidates) {
  PaletteStore store;
  PaletteStore::Scratch scratch;
  scratch.colors = {9, 2, 5};
  scratch.defects = {1, 0, 3};
  store.push_scratch(scratch);
  EXPECT_EQ(to_vec(store[0].colors()), (std::vector<Color>{2, 5, 9}));
  EXPECT_EQ(to_vec(store[0].defects()), (std::vector<int>{0, 3, 1}));

  PaletteStore::Scratch dup;
  dup.colors = {3, 3};
  dup.defects = {0, 0};
  EXPECT_THROW(store.push_scratch(dup), CheckError);
  PaletteStore::Scratch neg;
  neg.colors = {1};
  neg.defects = {-1};
  EXPECT_THROW(store.push_scratch(neg), CheckError);
}

TEST(PaletteStore, DedupAccountingOnSharedLists) {
  const std::size_t n = 10000;
  const ColorList shared = ColorList::uniform({0, 1, 2, 3, 4, 5, 6, 7}, 3);
  PaletteStore store;
  store.assign(n, shared);
  EXPECT_EQ(store.size(), n);
  EXPECT_EQ(store.num_palettes(), 1u);
  EXPECT_EQ(store.dedup_hits(), static_cast<std::int64_t>(n) - 1);
  // Memory is O(distinct palettes + n): the arena holds ONE copy of the
  // 8-entry list no matter how many nodes share it.
  EXPECT_EQ(store.arena_entries(), 8);
  const std::int64_t per_node = static_cast<std::int64_t>(
      sizeof(PaletteStore::PaletteId));
  EXPECT_LT(store.memory_bytes(),
            static_cast<std::int64_t>(n) * (per_node + 8) + 4096);
}

TEST(PaletteStore, DedupAcrossPushBack) {
  const ColorList a = ColorList::zero_defect({1, 2, 3});
  const ColorList b = ColorList::uniform({4, 5}, 1);
  PaletteStore store;
  store.push_back(a);
  store.push_back(b);
  store.push_back(a);  // dedup hit
  store.push_back(b);  // dedup hit
  EXPECT_EQ(store.num_palettes(), 2u);
  EXPECT_EQ(store.dedup_hits(), 2);
  EXPECT_EQ(store.palette_id(0), store.palette_id(2));
  EXPECT_EQ(store.palette_id(1), store.palette_id(3));
  EXPECT_EQ(store.arena_entries(), 5);
}

TEST(PaletteStore, DeltaPlusOneInstanceStoresOnePalette) {
  const Graph g = grid(40, 40);
  const ListDefectiveInstance inst = delta_plus_one_instance(g);
  EXPECT_EQ(inst.lists.size(), 1600u);
  EXPECT_EQ(inst.lists.num_palettes(), 1u);
  EXPECT_EQ(inst.lists.arena_entries(), g.max_degree() + 1);
}

TEST(PaletteStore, BuildParallelBitIdenticalAcrossThreadCounts) {
  // n spans several fixed-size chunks so the parallel path really merges.
  const std::int64_t n = 3 * PaletteStore::kChunkNodes + 1234;
  auto fill = [](std::int64_t v, PaletteStore::Scratch& s) {
    // A mix of shared palettes (v % 7) and per-node unique ones, emitted
    // unsorted to exercise normalize_scratch.
    if (v % 3 == 0) {
      const Color base = v % 7;
      s.colors = {base + 2, base, base + 1};
      s.defects = {0, 1, 2};
    } else {
      s.colors = {v, v + 1};
      s.defects = {1, 0};
    }
  };
  const PaletteStore serial = PaletteStore::build_parallel(n, 1, fill);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(n));
  EXPECT_GT(serial.dedup_hits(), 0);
  for (int threads : {2, 4, 8}) {
    const PaletteStore parallel = PaletteStore::build_parallel(n, threads, fill);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_store(serial, parallel);
  }
}

TEST(PaletteStore, BuildParallelPropagatesFillErrors) {
  const std::int64_t n = 2 * PaletteStore::kChunkNodes;
  auto bad_fill = [](std::int64_t v, PaletteStore::Scratch& s) {
    s.colors = {1, 1};  // duplicate -> CheckError inside a pool worker
    s.defects = {0, 0};
    (void)v;
  };
  EXPECT_THROW(PaletteStore::build_parallel(n, 4, bad_fill), CheckError);
}

TEST(PaletteStore, InstanceBuildersThreadCountInvariant) {
  Rng graph_rng(99);
  const Graph g = random_near_regular(20000, 8, graph_rng);
  auto build = [&](int threads) {
    ScopedDefaultThreads scope(threads);
    Rng rng(1234);
    return random_uniform_oldc(g, Orientation::by_id(g), 64, 8, 3, rng);
  };
  const OldcInstance serial = build(1);
  for (int threads : {2, 4, 8}) {
    const OldcInstance parallel = build(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_store(serial.lists, parallel.lists);
  }
}

TEST(PaletteStore, DegreePlusOneBuilderThreadCountInvariant) {
  const Graph g = [] {
    Rng r(5);
    return gnp(9000, 0.001, r);
  }();
  auto build = [&](int threads) {
    ScopedDefaultThreads scope(threads);
    Rng rng(77);
    return degree_plus_one_instance(g, g.max_degree() + 40, rng);
  };
  const ListDefectiveInstance serial = build(1);
  for (int threads : {2, 4}) {
    const ListDefectiveInstance parallel = build(threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_store(serial.lists, parallel.lists);
  }
}

TEST(Generators, ThreadCountInvariantEdgeLists) {
  auto edges_at = [](int threads, auto&& make) {
    ScopedDefaultThreads scope(threads);
    return make().edge_list();
  };
  const auto make_gnp = [] {
    Rng r(2024);
    return gnp(9000, 0.0015, r);
  };
  const auto make_reg = [] {
    Rng r(2025);
    return random_near_regular(9000, 6, r);
  };
  const auto make_geo = [] {
    Rng r(2026);
    return random_geometric(9000, 0.012, r);
  };
  const auto make_tree = [] {
    Rng r(2027);
    return random_tree(9000, r);
  };
  const auto gnp1 = edges_at(1, make_gnp);
  const auto reg1 = edges_at(1, make_reg);
  const auto geo1 = edges_at(1, make_geo);
  const auto tree1 = edges_at(1, make_tree);
  EXPECT_FALSE(gnp1.empty());
  EXPECT_FALSE(reg1.empty());
  EXPECT_FALSE(geo1.empty());
  EXPECT_EQ(tree1.size(), 8999u);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(edges_at(threads, make_gnp), gnp1);
    EXPECT_EQ(edges_at(threads, make_reg), reg1);
    EXPECT_EQ(edges_at(threads, make_geo), geo1);
    EXPECT_EQ(edges_at(threads, make_tree), tree1);
  }
}

TEST(Rng, StreamIsCounterBased) {
  // stream(seed, idx) must depend only on (seed, idx) — two streams with
  // the same key agree draw for draw, different keys diverge.
  Rng a = Rng::stream(11, 5);
  Rng b = Rng::stream(11, 5);
  Rng c = Rng::stream(11, 6);
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    const auto x = a();
    EXPECT_EQ(x, b());
    diverged = diverged || (x != c());
  }
  EXPECT_TRUE(diverged);
}

TEST(PaletteStore, SetNodeAndResize) {
  PaletteStore store;
  store.resize(3);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store[1].empty());
  store.set_node(1, ColorList::zero_defect({5, 6}));
  EXPECT_EQ(to_vec(store[1].colors()), (std::vector<Color>{5, 6}));
  EXPECT_TRUE(store[0].empty());
  EXPECT_TRUE(store[2].empty());
}

}  // namespace
}  // namespace dcolor
