// Exhaustive small-case verification of Theorem 1.1.
//
// Thousands of tiny random instances across (n, p, d) at the exact
// Eq. (2) threshold with full contention (shared lists): the Two-Sweep
// must NEVER fail when the premise holds — this is the theorem, and any
// counterexample here would be a bug in Algorithm 1's implementation or
// in the paper's proof. Below the threshold, failures must surface as
// clean CheckErrors (no crashes, no invalid output accepted).
#include <gtest/gtest.h>

#include "baselines/greedy.h"
#include "core/instance.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

/// Smallest shared-list size satisfying Eq. (2) for (p, d, β):
/// Λ·(d+1)·p > max{p², Λ}·β.
std::int64_t threshold_list_size(int p, int d, int beta) {
  for (std::int64_t lambda = 1;; ++lambda) {
    if (lambda * (d + 1) * p >
        std::max<std::int64_t>(static_cast<std::int64_t>(p) * p, lambda) *
            beta) {
      return lambda;
    }
    if (lambda > 4LL * p * p * std::max(1, beta)) return -1;  // infeasible p
  }
}

struct MatrixCase {
  int n;
  double edge_p;
  std::uint64_t seed_base;
};

class ExhaustiveSmall : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ExhaustiveSmall, TwoSweepNeverFailsAtTheThreshold) {
  const MatrixCase mc = GetParam();
  int instances = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(mc.seed_base * 1000 + seed);
    const Graph g = gnp(mc.n, mc.edge_p, rng);
    // A proper coloring for the sweep schedule.
    const ColoringResult greedy = greedy_delta_plus_one(g);
    const std::int64_t q = g.max_degree() + 1;

    for (int d : {0, 1, 2}) {
      for (int variant = 0; variant < 2; ++variant) {
        Orientation o = variant == 0 ? Orientation::by_id(g)
                                     : Orientation::random(g, rng);
        const int beta = o.beta();
        if ((d + 1) * (beta / (d + 1) + 1) <= beta) continue;
        const int p = beta / (d + 1) + 1;
        const std::int64_t lambda = threshold_list_size(p, d, beta);
        ASSERT_GT(lambda, 0);
        const OldcInstance inst =
            contention_oldc(g, std::move(o), static_cast<int>(lambda), d);
        // Exact threshold: must succeed (Theorem 1.1, ε = 0).
        const ColoringResult res = two_sweep(inst, greedy.colors, q, p);
        ASSERT_TRUE(validate_oldc(inst, res.colors))
            << "n=" << mc.n << " seed=" << seed << " d=" << d
            << " variant=" << variant;
        ++instances;
      }
    }
  }
  // Make sure the sweep actually exercised a meaningful number of cases.
  EXPECT_GE(instances, 100);
}

TEST_P(ExhaustiveSmall, BelowThresholdFailsCleanly) {
  const MatrixCase mc = GetParam();
  int failures = 0, runs = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(mc.seed_base * 2000 + seed);
    const Graph g = gnp(mc.n, mc.edge_p, rng);
    if (g.num_edges() == 0) continue;
    const ColoringResult greedy = greedy_delta_plus_one(g);
    const std::int64_t q = g.max_degree() + 1;
    Orientation o = Orientation::by_id(g);
    const int beta = o.beta();
    const int d = 0;
    const int p = beta + 1;
    const std::int64_t lambda = threshold_list_size(p, d, beta);
    // Starve the instance: half the threshold.
    const auto starved = std::max<std::int64_t>(1, lambda / 2);
    const OldcInstance inst =
        contention_oldc(g, std::move(o), static_cast<int>(starved), d);
    ++runs;
    try {
      const ColoringResult res = two_sweep(inst, greedy.colors, q, p,
                                           /*skip_precondition_check=*/true);
      // If it returned, the output must still be internally consistent.
      EXPECT_TRUE(validate_oldc(inst, res.colors));
    } catch (const CheckError&) {
      ++failures;  // clean refusal, as designed
    }
  }
  // Starved contention instances must fail at least sometimes — otherwise
  // the stress test is vacuous.
  if (runs >= 10) EXPECT_GT(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExhaustiveSmall,
    ::testing::Values(MatrixCase{4, 0.5, 1}, MatrixCase{5, 0.5, 2},
                      MatrixCase{6, 0.4, 3}, MatrixCase{7, 0.35, 4},
                      MatrixCase{8, 0.3, 5}, MatrixCase{10, 0.3, 6},
                      MatrixCase{12, 0.25, 7}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return "n" + std::to_string(info.param.n);
    });

}  // namespace
}  // namespace dcolor
