// Tests for the MIS / maximal matching application module.
#include <gtest/gtest.h>

#include "baselines/greedy.h"
#include "core/edge_coloring.h"
#include "core/mis.h"
#include "graph/generators.h"
#include "graph/line_graph.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(Mis, FromGreedyColoringIsValid) {
  Rng rng(4001);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gnp(150, 0.08, rng);
    const ColoringResult coloring = greedy_delta_plus_one(g);
    const MisResult mis = mis_from_coloring(g, coloring.colors);
    EXPECT_TRUE(validate_mis(g, mis.in_set));
    EXPECT_LE(mis.metrics.rounds, g.max_degree() + 1);
  }
}

TEST(Mis, SingleClassColoringSelectsEverything) {
  const Graph g = Graph::from_edges(4, {});
  const MisResult mis = mis_from_coloring(g, {0, 0, 0, 0});
  for (bool b : mis.in_set) EXPECT_TRUE(b);
}

TEST(Mis, CompleteGraphPicksExactlyOne) {
  const Graph g = complete(7);
  const ColoringResult coloring = greedy_delta_plus_one(g);
  const MisResult mis = mis_from_coloring(g, coloring.colors);
  EXPECT_TRUE(validate_mis(g, mis.in_set));
  int count = 0;
  for (bool b : mis.in_set) count += b ? 1 : 0;
  EXPECT_EQ(count, 1);
}

TEST(Mis, RejectsImproperColoring) {
  const Graph g = path(3);
  EXPECT_THROW(mis_from_coloring(g, {0, 0, 1}), CheckError);
}

TEST(MisValidation, CatchesNonIndependentAndNonMaximal) {
  const Graph g = path(3);
  EXPECT_FALSE(validate_mis(g, {true, true, false}));   // adjacent pair
  EXPECT_FALSE(validate_mis(g, {true, false, false}));  // node 2 uncovered
  EXPECT_TRUE(validate_mis(g, {true, false, true}));
  EXPECT_TRUE(validate_mis(g, {false, true, false}));
}

TEST(Matching, FromEdgeColoringIsValid) {
  Rng rng(4002);
  const Graph g = gnp(60, 0.1, rng);
  ThetaColoringOptions options;
  options.branch = ThetaColoringOptions::Branch::kBaseOnly;
  const EdgeColoringResult ec = edge_coloring_two_delta_minus_one(g, options);
  const MatchingResult m =
      maximal_matching_from_edge_coloring(g, ec.edge_colors);
  EXPECT_TRUE(validate_maximal_matching(g, m.in_matching));
}

TEST(MatchingValidation, CatchesBadMatchings) {
  const Graph g = path(4);  // edges (0,1), (1,2), (2,3)
  EXPECT_FALSE(validate_maximal_matching(g, {true, true, false}));  // share 1
  EXPECT_FALSE(validate_maximal_matching(g, {false, false, false})); // empty
  EXPECT_TRUE(validate_maximal_matching(g, {true, false, true}));
  EXPECT_TRUE(validate_maximal_matching(g, {false, true, false}));
}

TEST(Matching, PerfectOnEvenCycle) {
  const Graph g = cycle(8);
  ThetaColoringOptions options;
  options.branch = ThetaColoringOptions::Branch::kBaseOnly;
  const EdgeColoringResult ec = edge_coloring_two_delta_minus_one(g, options);
  const MatchingResult m =
      maximal_matching_from_edge_coloring(g, ec.edge_colors);
  EXPECT_TRUE(validate_maximal_matching(g, m.in_matching));
  int matched = 0;
  for (bool b : m.in_matching) matched += b ? 1 : 0;
  EXPECT_GE(matched, 3);  // maximal matchings of C8 have >= 3 edges
}

}  // namespace
}  // namespace dcolor
