// Parallel-engine determinism tests: for every supported thread count the
// simulator must produce BIT-IDENTICAL colorings and RoundMetrics to the
// serial engine (the merge order of per-chunk outboxes is part of the
// engine contract, not an implementation detail). Also covers the sparse
// scheduling hook (nodes are only stepped when active), round-0 metrics
// accounting, the CONGEST bit cap under threads, and Message overflow
// storage. These tests carry the `parallel_sim` ctest label so they can be
// run in isolation under -DDCOLOR_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/greedy.h"
#include "coloring/linial.h"
#include "core/congest_oldc.h"
#include "core/fast_two_sweep.h"
#include "core/instance.h"
#include "core/mis.h"
#include "core/two_sweep.h"
#include "graph/generators.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/rng.h"

#include "test_harness.h"

namespace dcolor {
namespace {

/// The E14 instance family: near-regular graph, uniform lists, defect =
/// β so the Two-Sweep premise (Eq. 2) holds comfortably.
OldcInstance uniform_instance(const Graph& g, Rng& rng) {
  Orientation o = Orientation::by_id(g);
  const int d = o.beta();
  return random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
}

std::vector<Color> identity_coloring(NodeId n) {
  std::vector<Color> ids(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

TEST(ParallelSim, FastTwoSweepBitIdenticalAcrossThreadCounts) {
  Rng rng(1800);
  const NodeId n = 2000;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  ColoringResult serial;
  {
    ScopedDefaultThreads t(1);
    serial = fast_two_sweep(inst, ids, n, 2, 0.5);
  }
  ASSERT_TRUE(validate_oldc(inst, serial.colors));
  for (int threads : {2, 4, 8}) {
    ScopedDefaultThreads t(threads);
    const ColoringResult par = fast_two_sweep(inst, ids, n, 2, 0.5);
    EXPECT_EQ(par.colors, serial.colors) << "threads=" << threads;
    expect_metrics_eq(par.metrics, serial.metrics);
  }
}

TEST(ParallelSim, TwoSweepPerInstanceThreadOverride) {
  Rng rng(77);
  const NodeId n = 600;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  std::vector<Color> serial_colors;
  RoundMetrics serial_metrics;
  for (int threads : {1, 2, 4, 8}) {
    TwoSweepProgram program(inst, ids, n, 2);
    Network net(*inst.graph);
    net.set_num_threads(threads);
    const RoundMetrics m = net.run(program, 2 * n + 4);
    const std::vector<Color> colors = program.final_colors();
    if (threads == 1) {
      serial_colors = colors;
      serial_metrics = m;
      ASSERT_TRUE(validate_oldc(inst, colors));
    } else {
      EXPECT_EQ(colors, serial_colors) << "threads=" << threads;
      expect_metrics_eq(m, serial_metrics);
    }
  }
}

TEST(ParallelSim, CongestOldcBitIdenticalAcrossThreadCounts) {
  Rng rng(33);
  const Graph g = random_near_regular(300, 4, rng);
  Orientation o = Orientation::by_id(g);
  const std::int64_t C = 64;
  const int beta = o.beta();
  const int defect = 2;
  const int list_size = std::min<std::int64_t>(
      C, static_cast<std::int64_t>(
             std::ceil(3.0 * std::sqrt(static_cast<double>(C)) * beta /
                       (defect + 1))) +
             1);
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), C, list_size, defect, rng);
  const LinialResult linial = linial_from_ids(g, inst.orientation);

  ColoringResult serial;
  {
    ScopedDefaultThreads t(1);
    serial = congest_oldc(inst, linial.colors, linial.num_colors);
  }
  ASSERT_TRUE(validate_oldc(inst, serial.colors));
  for (int threads : {2, 4, 8}) {
    ScopedDefaultThreads t(threads);
    const ColoringResult par =
        congest_oldc(inst, linial.colors, linial.num_colors);
    EXPECT_EQ(par.colors, serial.colors) << "threads=" << threads;
    expect_metrics_eq(par.metrics, serial.metrics);
  }
}

TEST(ParallelSim, MisBitIdenticalAndMatchesSequentialBaseline) {
  Rng rng(4001);
  const Graph g = gnp(400, 0.03, rng);
  const ColoringResult coloring = greedy_delta_plus_one(g);

  MisResult serial;
  {
    ScopedDefaultThreads t(1);
    serial = distributed_mis_from_coloring(g, coloring.colors);
  }
  ASSERT_TRUE(validate_mis(g, serial.in_set));
  const MisResult sequential = mis_from_coloring(g, coloring.colors);
  EXPECT_EQ(serial.in_set, sequential.in_set);
  for (int threads : {2, 4, 8}) {
    ScopedDefaultThreads t(threads);
    const MisResult par = distributed_mis_from_coloring(g, coloring.colors);
    EXPECT_EQ(par.in_set, serial.in_set) << "threads=" << threads;
    expect_metrics_eq(par.metrics, serial.metrics);
  }
}

/// Forwards everything to an inner algorithm while counting step()
/// invocations; optionally suppresses the sparse-scheduling hook so the
/// engine falls back to dense stepping. The counter is atomic because
/// steps may run on pool threads.
class StepCounter final : public SyncAlgorithm {
 public:
  StepCounter(SyncAlgorithm& inner, bool suppress_hook)
      : inner_(&inner), suppress_(suppress_hook) {}

  void init(NodeId v, Mailbox& mail) override { inner_->init(v, mail); }
  void step(NodeId v, int round, Mailbox& mail) override {
    steps_.fetch_add(1, std::memory_order_relaxed);
    inner_->step(v, round, mail);
  }
  bool done(NodeId v) const override { return inner_->done(v); }
  std::int64_t next_active_round(NodeId v,
                                 std::int64_t after_round) const override {
    return suppress_ ? kEveryRound : inner_->next_active_round(v, after_round);
  }

  std::int64_t steps() const {
    return steps_.load(std::memory_order_relaxed);
  }

 private:
  SyncAlgorithm* inner_;
  bool suppress_;
  std::atomic<std::int64_t> steps_{0};
};

TEST(ParallelSim, SparseSchedulingStepsFarFewerNodesThanDense) {
  Rng rng(505);
  const NodeId n = 400;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  auto run_counted = [&](bool suppress_hook) {
    TwoSweepProgram program(inst, ids, n, 2);
    StepCounter counted(program, suppress_hook);
    Network net(*inst.graph);
    net.set_num_threads(1);
    const RoundMetrics m = net.run(counted, 2 * n + 4);
    return std::make_tuple(program.final_colors(), m, counted.steps());
  };

  const auto [sparse_colors, sparse_metrics, sparse_steps] =
      run_counted(/*suppress_hook=*/false);
  const auto [dense_colors, dense_metrics, dense_steps] =
      run_counted(/*suppress_hook=*/true);

  // Dense and sparse runs execute the same algorithm — identical outputs
  // and identical traffic; sparse just skips the no-op steps.
  EXPECT_EQ(sparse_colors, dense_colors);
  expect_metrics_eq(sparse_metrics, dense_metrics);

  // Dense: every node, every round (~2q·n steps). Sparse: each node's two
  // turns plus message deliveries (O(n + m) steps total). The regression
  // margin is deliberately loose — an engine that silently reverts to
  // dense stepping overshoots it by orders of magnitude.
  EXPECT_GE(dense_steps, static_cast<std::int64_t>(n) * n);
  EXPECT_LT(sparse_steps * 10, dense_steps);
}

/// Does nothing and is done from the start: the run must terminate before
/// any round materializes.
class SilentProgram final : public SyncAlgorithm {
 public:
  void init(NodeId, Mailbox&) override {}
  void step(NodeId, int, Mailbox&) override {}
  bool done(NodeId) const override { return true; }
};

TEST(ParallelSim, RunWithoutTrafficCountsZeroRounds) {
  Rng rng(9);
  const Graph g = random_near_regular(200, 4, rng);
  for (int threads : {1, 4}) {
    SilentProgram program;
    Network net(g);
    net.set_num_threads(threads);
    const RoundMetrics m = net.run(program, 10);
    EXPECT_EQ(m.rounds, 0);
    EXPECT_EQ(m.total_messages, 0);
    EXPECT_EQ(m.total_message_bits, 0);
  }
}

/// Node 0 broadcasts once at init; every other node is done after
/// receiving. Exactly one materialized round, deg(0) messages.
class OneShotFlood final : public SyncAlgorithm {
 public:
  explicit OneShotFlood(const Graph& g)
      : graph_(&g), seen_(static_cast<std::size_t>(g.num_nodes()), 0) {}

  void init(NodeId v, Mailbox& mail) override {
    if (v == 0) {
      seen_[0] = 1;
      Message m;
      m.push(1, 1);
      broadcast(*graph_, mail, m);
    }
  }
  void step(NodeId v, int, Mailbox& mail) override {
    if (!mail.inbox().empty()) seen_[static_cast<std::size_t>(v)] = 1;
  }
  bool done(NodeId v) const override {
    return seen_[static_cast<std::size_t>(v)] != 0;
  }

 private:
  const Graph* graph_;
  std::vector<std::uint8_t> seen_;
};

TEST(ParallelSim, InitRoundTrafficIsChargedToRoundOne) {
  // A star: node 0's single init broadcast activates 199 leaves in round 1
  // (enough active nodes to engage the parallel path).
  const Graph g = complete_bipartite(1, 199);
  RoundMetrics serial;
  for (int threads : {1, 4}) {
    OneShotFlood program(g);
    Network net(g);
    net.set_num_threads(threads);
    const RoundMetrics m = net.run(program, 10);
    EXPECT_EQ(m.rounds, 1);
    EXPECT_EQ(m.total_messages, 199);
    if (threads == 1) {
      serial = m;
    } else {
      expect_metrics_eq(m, serial);
    }
  }
}

/// Sends a 1-bit init message, then a 10-bit message from every node in
/// round 1 — wide traffic originating on pool threads.
class WideSecondRound final : public SyncAlgorithm {
 public:
  explicit WideSecondRound(const Graph& g)
      : graph_(&g), acted_(static_cast<std::size_t>(g.num_nodes()), 0) {}

  void init(NodeId, Mailbox& mail) override {
    Message m;
    m.push(1, 1);
    broadcast(*graph_, mail, m);
  }
  void step(NodeId v, int, Mailbox& mail) override {
    const auto vi = static_cast<std::size_t>(v);
    if (acted_[vi] != 0) return;
    acted_[vi] = 1;
    Message m;
    m.push(1000, 10);
    broadcast(*graph_, mail, m);
  }
  bool done(NodeId v) const override {
    return acted_[static_cast<std::size_t>(v)] != 0;
  }

 private:
  const Graph* graph_;
  std::vector<std::uint8_t> acted_;
};

TEST(ParallelSim, CongestBitCapViolationThrowsUnderThreads) {
  Rng rng(12);
  const Graph g = random_near_regular(500, 4, rng);
  {
    WideSecondRound program(g);
    Network net(g);
    net.set_num_threads(4);
    EXPECT_THROW(net.run(program, 10, /*message_bit_cap=*/5), CheckError);
  }
  {
    // Same program without the cap completes — the throw above really is
    // the bandwidth check, not a scheduling failure.
    WideSecondRound program(g);
    Network net(g);
    net.set_num_threads(4);
    const RoundMetrics m = net.run(program, 10);
    EXPECT_EQ(m.max_message_bits, 10);
  }
}

/// JSONL trace with the nondeterministic trailing "t" object stripped
/// from every line — the thread-count-invariant part of the stream.
std::string traced_run_stripped(const OldcInstance& inst,
                                const std::vector<Color>& ids, NodeId n,
                                int threads) {
  std::ostringstream trace;
  {
    ScopedDefaultThreads t(threads);
    Tracer tracer;
    tracer.add_sink(make_jsonl_trace_sink(trace));
    tracer.install();
    fast_two_sweep(inst, ids, n, 2, 0.5);
    tracer.finish();
  }
  std::istringstream is(trace.str());
  std::string out, line;
  while (std::getline(is, line)) {
    out.append(line, 0, line.find(",\"t\":"));
    out.push_back('\n');
  }
  return out;
}

TEST(ParallelSim, TraceRecordsIdenticalModuloTimingAcrossThreadCounts) {
  Rng rng(1800);
  const NodeId n = 2000;  // well past kMinParallelActive: rounds do chunk
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  const std::string serial = traced_run_stripped(inst, ids, n, 1);
  EXPECT_NE(serial.find("\"type\":\"round\""), std::string::npos);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(traced_run_stripped(inst, ids, n, threads), serial)
        << "threads=" << threads;
  }
}

TEST(ParallelSim, MessageOverflowFieldsSurviveCopyAndMove) {
  Message m;
  for (std::int64_t i = 0; i < 6; ++i) m.push(i * 10, 8);
  ASSERT_EQ(m.num_fields(), 6u);
  EXPECT_EQ(m.bits(), 48);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(m.field(i), i * 10);

  Message copy(m);  // deep copy: the overflow storage must not be shared
  Message moved(std::move(m));
  copy.push(99, 8);
  ASSERT_EQ(copy.num_fields(), 7u);
  EXPECT_EQ(copy.field(6), 99);
  ASSERT_EQ(moved.num_fields(), 6u);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(moved.field(i), i * 10);

  Message assigned;
  assigned = copy;
  EXPECT_EQ(assigned.num_fields(), 7u);
  EXPECT_EQ(assigned.field(5), 50);
  EXPECT_EQ(assigned.field(6), 99);
}

}  // namespace
}  // namespace dcolor
