// Tests for the substrate colorings: Linial (O(log* n), O(β²) colors),
// Lemma 3.4 defective coloring, and the one-sweep arbdefective partition.
#include <gtest/gtest.h>

#include <cmath>

#include "coloring/arbdefective.h"
#include "coloring/kuhn_defective.h"
#include "coloring/linial.h"
#include "coloring/poly_reduce.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/logstar.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(PolySchedule, ProperScheduleShrinksToBetaSquared) {
  for (int beta : {1, 2, 4, 8, 16}) {
    const auto schedule = poly_schedule(1u << 20, 0.0, beta);
    ASSERT_FALSE(schedule.empty());
    const std::uint64_t final_space =
        schedule.back().k * schedule.back().k;
    // Fixed point is about (2β+1)², allow prime rounding slack.
    EXPECT_LE(final_space,
              static_cast<std::uint64_t>(16.0 * beta * beta + 64));
    // Each step must satisfy the proper condition k > D·β.
    for (const auto& ps : schedule) {
      EXPECT_GT(ps.k, static_cast<std::uint64_t>(ps.degree) *
                          static_cast<std::uint64_t>(beta));
    }
  }
}

TEST(PolySchedule, LengthIsLogStarish) {
  // Schedule length should stay tiny even for astronomically many colors.
  const auto schedule = poly_schedule(1ULL << 62, 0.0, 8);
  EXPECT_LE(static_cast<int>(schedule.size()),
            log_star(std::uint64_t{1} << 62) + 4);
}

TEST(PolySchedule, DefectiveScheduleIndependentOfBeta) {
  const auto s1 = poly_schedule(1u << 16, 0.05, 2);
  const auto s2 = poly_schedule(1u << 16, 0.05, 200);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i].k, s2[i].k);
}

class LinialTest : public ::testing::TestWithParam<int> {};

TEST_P(LinialTest, ProperAndSmallOnRandomGraphs) {
  const int degree = GetParam();
  Rng rng(1000 + degree);
  const Graph g = random_near_regular(400, degree, rng);
  const Orientation o = Orientation::by_id(g);
  const LinialResult res = linial_from_ids(g, o);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  for (Color c : res.colors) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, res.num_colors);
  }
  const int beta = o.beta();
  EXPECT_LE(res.num_colors, 16 * beta * beta + 64);
  EXPECT_LE(res.metrics.rounds, log_star(std::uint64_t{400}) + 6);
}

INSTANTIATE_TEST_SUITE_P(Degrees, LinialTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(Linial, WorksOnRing) {
  const Graph g = cycle(1000);
  const Orientation o = Orientation::by_id(g);
  const LinialResult res = linial_from_ids(g, o);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  // β = 2 on a ring with by-id orientation... β ≤ 2; space stays O(1).
  EXPECT_LE(res.num_colors, 300);
}

TEST(Linial, DegeneracyOrientationGivesFewColorsOnTrees) {
  Rng rng(77);
  const Graph t = random_tree(500, rng);
  const Orientation o = Orientation::degeneracy(t);  // β = 1
  const LinialResult res = linial_from_ids(t, o);
  EXPECT_TRUE(is_proper_coloring(t, res.colors));
  EXPECT_LE(res.num_colors, 80);  // O(β²) with β = 1
}

TEST(Linial, RespectsGivenInitialColoring) {
  const Graph g = complete(5);
  const Orientation o = Orientation::by_id(g);
  // A proper 10-coloring using only even colors.
  const std::vector<Color> initial = {0, 2, 4, 6, 8};
  const LinialResult res = linial_coloring(g, o, initial, 10);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
}

TEST(Linial, RejectsOutOfRangeInitialColor) {
  const Graph g = path(3);
  const Orientation o = Orientation::by_id(g);
  EXPECT_THROW(linial_coloring(g, o, {0, 5, 0}, 3), CheckError);
}

TEST(Linial, MessageBitsAreLogarithmic) {
  Rng rng(4);
  const Graph g = gnp(300, 0.05, rng);
  const Orientation o = Orientation::by_id(g);
  const LinialResult res = linial_from_ids(g, o);
  // First-round message carries an id: ceil(log2 n) bits; later ones less.
  EXPECT_LE(res.metrics.max_message_bits, 2 + ceil_log2(std::uint64_t{300}));
}

class KuhnDefectiveTest
    : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(KuhnDefectiveTest, DefectAndColorCountWithinBounds) {
  const auto [degree, alpha] = GetParam();
  Rng rng(2000 + degree);
  const Graph g = random_near_regular(300, degree, rng);
  const Orientation o = Orientation::by_id(g);
  const auto res = kuhn_defective_from_ids(g, o, alpha);
  ASSERT_TRUE(all_colored(res.colors));
  // Defect: at most ⌊α·β_v⌋ same-colored out-neighbors.
  const auto defects = oriented_defects(o, res.colors);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(defects[static_cast<std::size_t>(v)],
              static_cast<int>(alpha * o.beta_v(v)))
        << "node " << v;
  }
  // Colors: O(1/α²) — constant depends on the step budget (~6 steps).
  const double inv = 1.0 / alpha;
  EXPECT_LE(static_cast<double>(res.num_colors), 4000.0 * inv * inv + 64);
  // Rounds: O(log* n).
  EXPECT_LE(res.metrics.rounds, log_star(std::uint64_t{300}) + 6);
}

INSTANTIATE_TEST_SUITE_P(
    Params, KuhnDefectiveTest,
    ::testing::Values(std::pair{8, 0.5}, std::pair{8, 0.25},
                      std::pair{16, 0.5}, std::pair{16, 0.125},
                      std::pair{32, 0.25}));

TEST(KuhnDefective, UndirectedVariantBoundsNeighborDefect) {
  Rng rng(55);
  const Graph g = random_near_regular(300, 12, rng);
  std::vector<Color> ids(300);
  for (int i = 0; i < 300; ++i) ids[static_cast<std::size_t>(i)] = i;
  const double alpha = 0.5;
  const auto res = kuhn_defective_undirected(g, ids, 300, alpha);
  ASSERT_TRUE(all_colored(res.colors));
  const auto defects = undirected_defects(g, res.colors);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(defects[static_cast<std::size_t>(v)],
              static_cast<int>(alpha * g.degree(v)));
  }
}

TEST(KuhnDefective, AlphaOneStillColorsEveryone) {
  Rng rng(66);
  const Graph g = gnp(200, 0.1, rng);
  const Orientation o = Orientation::by_id(g);
  const auto res = kuhn_defective_from_ids(g, o, 1.0);
  EXPECT_TRUE(all_colored(res.colors));
}

TEST(KuhnDefective, RejectsBadAlpha) {
  const Graph g = path(3);
  const Orientation o = Orientation::by_id(g);
  EXPECT_THROW(kuhn_defective_from_ids(g, o, 0.0), CheckError);
  EXPECT_THROW(kuhn_defective_from_ids(g, o, 1.5), CheckError);
}

class ArbPartitionTest : public ::testing::TestWithParam<PartitionEngine> {};

TEST_P(ArbPartitionTest, OutDefectBoundedByDegOverK) {
  Rng rng(91);
  const Graph g = gnp(250, 0.08, rng);
  // Proper initial coloring via Linial.
  const Orientation o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, o);
  for (int k : {2, 4, 8}) {
    const auto part = arbdefective_partition(g, linial.colors,
                                             linial.num_colors, k, GetParam());
    ASSERT_TRUE(all_colored(part.classes));
    for (Color c : part.classes) EXPECT_LT(c, k);
    const auto defects = oriented_defects(part.orientation, part.classes);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(defects[static_cast<std::size_t>(v)], g.degree(v) / k)
          << "node " << v << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ArbPartitionTest,
                         ::testing::Values(PartitionEngine::kHonest,
                                           PartitionEngine::kBeg18Oracle));

TEST(ArbPartition, EnginesProduceSamePartition) {
  // The oracle runs the same greedy rule centrally; outputs must agree.
  Rng rng(17);
  const Graph g = gnp(150, 0.1, rng);
  const Orientation o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, o);
  const auto honest = arbdefective_partition(
      g, linial.colors, linial.num_colors, 4, PartitionEngine::kHonest);
  const auto oracle = arbdefective_partition(
      g, linial.colors, linial.num_colors, 4, PartitionEngine::kBeg18Oracle);
  EXPECT_EQ(honest.classes, oracle.classes);
}

TEST(ArbPartition, RoundAccountingDiffers) {
  Rng rng(18);
  const Graph g = gnp(150, 0.1, rng);
  const Orientation o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, o);
  const auto honest = arbdefective_partition(
      g, linial.colors, linial.num_colors, 4, PartitionEngine::kHonest);
  const auto oracle = arbdefective_partition(
      g, linial.colors, linial.num_colors, 4, PartitionEngine::kBeg18Oracle);
  // Honest sweeps all q classes; oracle charges k + O(log* q).
  EXPECT_GE(honest.metrics.rounds, oracle.metrics.rounds);
  EXPECT_LE(oracle.metrics.rounds,
            4 + 2 * log_star(static_cast<std::uint64_t>(linial.num_colors)));
}

TEST(ArbPartition, RejectsImproperInitialColoring) {
  const Graph g = path(3);
  EXPECT_THROW(arbdefective_partition(g, {0, 0, 1}, 2, 2,
                                      PartitionEngine::kHonest),
               CheckError);
}

}  // namespace
}  // namespace dcolor
