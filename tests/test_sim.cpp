// Tests for the synchronous message-passing simulator.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(Message, TracksDeclaredBits) {
  Message m;
  m.push(5, 3);
  m.push(100, 7);
  EXPECT_EQ(m.bits(), 10);
  EXPECT_EQ(m.num_fields(), 2u);
  EXPECT_EQ(m.field(0), 5);
  EXPECT_EQ(m.field(1), 100);
}

TEST(Message, RejectsOverflowingField) {
  Message m;
  EXPECT_THROW(m.push(8, 3), CheckError);   // 8 needs 4 bits
  EXPECT_THROW(m.push(-1, 8), CheckError);  // negatives unsupported
  EXPECT_THROW(m.field(0), CheckError);
}

TEST(Metrics, SequentialComposition) {
  RoundMetrics a{.rounds = 10,
                 .executed_rounds = 3,
                 .peak_active_nodes = 40,
                 .max_message_bits = 8,
                 .total_messages = 100,
                 .total_message_bits = 800,
                 .local_compute_ops = 5};
  const RoundMetrics b{.rounds = 5,
                       .executed_rounds = 2,
                       .peak_active_nodes = 60,
                       .max_message_bits = 16,
                       .total_messages = 50,
                       .total_message_bits = 800,
                       .local_compute_ops = 7};
  a += b;
  EXPECT_EQ(a.rounds, 15);
  EXPECT_EQ(a.executed_rounds, 5);
  EXPECT_EQ(a.peak_active_nodes, 60);
  EXPECT_EQ(a.max_message_bits, 16);
  EXPECT_EQ(a.total_messages, 150);
  EXPECT_EQ(a.local_compute_ops, 12);
}

TEST(Metrics, ParallelComposition) {
  RoundMetrics a{.rounds = 10,
                 .executed_rounds = 3,
                 .peak_active_nodes = 40,
                 .max_message_bits = 8,
                 .total_messages = 100,
                 .total_message_bits = 800};
  const RoundMetrics b{.rounds = 5,
                       .executed_rounds = 4,
                       .peak_active_nodes = 60,
                       .max_message_bits = 16,
                       .total_messages = 50,
                       .total_message_bits = 400};
  a.merge_parallel(b);
  EXPECT_EQ(a.rounds, 10);
  EXPECT_EQ(a.executed_rounds, 4);
  EXPECT_EQ(a.peak_active_nodes, 100);
  EXPECT_EQ(a.max_message_bits, 16);
  EXPECT_EQ(a.total_messages, 150);
}

/// Flood: node 0 starts with a token; each round, holders forward it.
/// After the run every node must know the token — exercises delivery,
/// termination, and round counting (= eccentricity of node 0).
class FloodProgram final : public SyncAlgorithm {
 public:
  explicit FloodProgram(const Graph& g)
      : graph_(&g), has_(static_cast<std::size_t>(g.num_nodes()), false) {}

  void init(NodeId v, Mailbox& mail) override {
    if (v == 0) {
      has_[0] = true;
      Message m;
      m.push(1, 1);
      broadcast(*graph_, mail, m);
    }
  }

  void step(NodeId v, int, Mailbox& mail) override {
    const auto vi = static_cast<std::size_t>(v);
    if (has_[vi]) return;
    if (!mail.inbox().empty()) {
      has_[vi] = true;
      Message m;
      m.push(1, 1);
      broadcast(*graph_, mail, m);
    }
  }

  bool done(NodeId v) const override {
    return has_[static_cast<std::size_t>(v)];
  }

  const std::vector<bool>& has() const { return has_; }

 private:
  const Graph* graph_;
  std::vector<bool> has_;
};

TEST(Network, FloodReachesEveryoneOnPath) {
  const Graph g = path(10);
  FloodProgram flood(g);
  Network net(g);
  const RoundMetrics m = net.run(flood, 100);
  for (NodeId v = 0; v < 10; ++v) EXPECT_TRUE(flood.has()[v]);
  // Token needs 9 hops to reach node 9.
  EXPECT_GE(m.rounds, 9);
  EXPECT_LE(m.rounds, 11);
  EXPECT_EQ(m.max_message_bits, 1);
}

TEST(Network, FloodRoundsMatchDiameterOnCycle) {
  const Graph g = cycle(20);
  FloodProgram flood(g);
  Network net(g);
  const RoundMetrics m = net.run(flood, 100);
  EXPECT_GE(m.rounds, 10);
  EXPECT_LE(m.rounds, 12);
}

/// A program that sends to a non-neighbor must be rejected.
class BadSender final : public SyncAlgorithm {
 public:
  void init(NodeId v, Mailbox& mail) override {
    if (v == 0) {
      Message m;
      m.push(1, 1);
      mail.send(3, m);  // 0 and 3 are not adjacent in path(4)
    }
  }
  void step(NodeId, int, Mailbox&) override {}
  bool done(NodeId) const override { return true; }
};

TEST(Network, RejectsSendToNonNeighbor) {
  const Graph g = path(4);
  BadSender bad;
  Network net(g);
  EXPECT_THROW(net.run(bad, 10), CheckError);
}

/// A program that never terminates must hit the round cap.
class NeverDone final : public SyncAlgorithm {
 public:
  void init(NodeId, Mailbox&) override {}
  void step(NodeId, int, Mailbox&) override {}
  bool done(NodeId) const override { return false; }
};

TEST(Network, EnforcesMaxRounds) {
  const Graph g = path(3);
  NeverDone program;
  Network net(g);
  EXPECT_THROW(net.run(program, 5), CheckError);
}

/// Counts messages: every node broadcasts once in init; total messages
/// must be 2m and bit totals must follow.
class OneBroadcast final : public SyncAlgorithm {
 public:
  explicit OneBroadcast(const Graph& g) : graph_(&g) {}
  void init(NodeId, Mailbox& mail) override {
    Message m;
    m.push(3, 4);
    broadcast(*graph_, mail, m);
  }
  void step(NodeId, int, Mailbox&) override {}
  bool done(NodeId) const override { return true; }

 private:
  const Graph* graph_;
};

TEST(Network, CountsMessagesAndBits) {
  Rng rng(3);
  const Graph g = gnp(30, 0.2, rng);
  OneBroadcast program(g);
  Network net(g);
  const RoundMetrics m = net.run(program, 10);
  EXPECT_EQ(m.total_messages, 2 * g.num_edges());
  EXPECT_EQ(m.total_message_bits, 8 * g.num_edges());
  EXPECT_EQ(m.max_message_bits, 4);
}

TEST(Network, EmptyGraphTerminatesImmediately) {
  const Graph g = Graph::from_edges(3, {});
  OneBroadcast program(g);
  Network net(g);
  const RoundMetrics m = net.run(program, 10);
  EXPECT_EQ(m.rounds, 0);  // nothing was ever sent
  EXPECT_EQ(m.total_messages, 0);
}

}  // namespace
}  // namespace dcolor
