// Unit tests for src/util: log*, math helpers, GF(p) polynomials, RNG,
// tables, CSV, CLI.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/check.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/gf.h"
#include "util/logstar.h"
#include "util/math.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/table.h"

namespace dcolor {
namespace {

TEST(LogStar, KnownValues) {
  EXPECT_EQ(log_star(std::uint64_t{0}), 0);
  EXPECT_EQ(log_star(std::uint64_t{1}), 0);
  EXPECT_EQ(log_star(std::uint64_t{2}), 1);
  EXPECT_EQ(log_star(std::uint64_t{4}), 2);
  EXPECT_EQ(log_star(std::uint64_t{16}), 3);
  EXPECT_EQ(log_star(std::uint64_t{65536}), 4);
  EXPECT_EQ(log_star(std::uint64_t{65537}), 5);
}

TEST(LogStar, Monotone) {
  int prev = 0;
  for (std::uint64_t x = 1; x < 1'000'000; x = x * 3 / 2 + 1) {
    const int cur = log_star(x);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Math, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
}

TEST(Math, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt(100), 10u);
  for (std::uint64_t x = 0; x < 10000; ++x) {
    const std::uint64_t r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(Math, CeilSqrt) {
  EXPECT_EQ(ceil_sqrt(0), 0u);
  EXPECT_EQ(ceil_sqrt(1), 1u);
  EXPECT_EQ(ceil_sqrt(2), 2u);
  EXPECT_EQ(ceil_sqrt(4), 2u);
  EXPECT_EQ(ceil_sqrt(5), 3u);
}

TEST(Math, Binomial) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
  // Pascal's identity on a grid of values.
  for (std::uint64_t nn = 1; nn <= 30; ++nn) {
    for (std::uint64_t kk = 1; kk <= nn; ++kk) {
      EXPECT_EQ(binomial(nn, kk), binomial(nn - 1, kk - 1) + binomial(nn - 1, kk));
    }
  }
}

TEST(Math, IsPrime) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));
  EXPECT_TRUE(is_prime(2147483647ULL));          // 2^31 - 1
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_FALSE(is_prime(1000000007ULL * 3));
}

TEST(Math, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(90), 97u);
}

TEST(Math, PowMod) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(3, 0, 7), 1u);
  EXPECT_EQ(pow_mod(5, 3, 7), 6u);
  // Fermat's little theorem.
  for (std::uint64_t a = 1; a < 97; ++a) EXPECT_EQ(pow_mod(a, 96, 97), 1u);
}

TEST(Gf, EncodeDistinct) {
  // Distinct values in [0, p^k) must encode to distinct polynomials.
  const std::uint64_t p = 5;
  const int k = 3;
  std::set<std::vector<std::uint64_t>> seen;
  for (std::uint64_t v = 0; v < p * p * p; ++v) {
    const GfPoly poly = encode_as_polynomial(v, p, k);
    EXPECT_TRUE(seen.insert(poly.coeffs).second);
  }
}

TEST(Gf, EvalMatchesHorner) {
  GfPoly poly;
  poly.p = 7;
  poly.coeffs = {3, 2, 5};  // 3 + 2x + 5x²
  EXPECT_EQ(poly.eval(0), 3u);
  EXPECT_EQ(poly.eval(1), (3 + 2 + 5) % 7);
  EXPECT_EQ(poly.eval(2), (3 + 4 + 20) % 7);
}

TEST(Gf, DistinctPolysAgreeOnAtMostDegreePoints) {
  const std::uint64_t p = 11;
  const int k = 3;  // degree <= 2
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.below(p * p * p);
    std::uint64_t b = rng.below(p * p * p);
    if (a == b) b = (b + 1) % (p * p * p);
    const GfPoly pa = encode_as_polynomial(a, p, k);
    const GfPoly pb = encode_as_polynomial(b, p, k);
    int agreements = 0;
    for (std::uint64_t s = 0; s < p; ++s) {
      if (pa.eval(s) == pb.eval(s)) ++agreements;
    }
    EXPECT_LE(agreements, 2);
  }
}

TEST(Gf, CoeffsNeeded) {
  EXPECT_EQ(coeffs_needed(1, 2), 1);
  EXPECT_EQ(coeffs_needed(2, 2), 1);
  EXPECT_EQ(coeffs_needed(3, 2), 2);
  EXPECT_EQ(coeffs_needed(4, 2), 2);
  EXPECT_EQ(coeffs_needed(5, 2), 3);
  EXPECT_EQ(coeffs_needed(125, 5), 3);
  EXPECT_EQ(coeffs_needed(126, 5), 4);
}

TEST(Gf, EncodeRejectsOutOfRange) {
  EXPECT_THROW(encode_as_polynomial(8, 2, 3), CheckError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, BelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(11);
  for (std::uint64_t k : {0ULL, 1ULL, 5ULL, 50ULL, 100ULL}) {
    const auto sample = rng.sample_without_replacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::uint64_t> dedup(sample.begin(), sample.end());
    EXPECT_EQ(dedup.size(), k);
    for (auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), CheckError);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Check, ThrowsWithMessage) {
  try {
    DCOLOR_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Table, PrintsAlignedRows) {
  Table t("demo");
  t.header({"name", "value"});
  t.add("alpha", 1);
  t.add("beta", 22.5);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Csv, WritesQuotedCells) {
  const std::string path = "/tmp/dcolor_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row({"x,y", "plain"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",plain");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongWidth) {
  CsvWriter csv("/tmp/dcolor_csv_test2.csv", {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), CheckError);
  std::remove("/tmp/dcolor_csv_test2.csv");
}

TEST(Cli, ParsesTypedFlags) {
  const char* argv[] = {"prog", "--n=100", "--rate=0.5", "--verbose",
                        "--name=x"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_EQ(args.get_string("name", ""), "x");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  args.check_all_consumed();
}

TEST(Cli, DetectsUnknownFlag) {
  const char* argv[] = {"prog", "--typo=1"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_THROW(args.check_all_consumed(), CheckError);
}

TEST(Cli, RejectsMalformedArgument) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, const_cast<char**>(argv)), CheckError);
}

TEST(Cli, RejectsGarbageNumericValues) {
  // strtol would silently read "12abc" as 12 and "abc" as 0; the strict
  // parser must reject both so typos never become silent parameters.
  const char* argv[] = {"prog", "--n=12abc", "--rate=0.5.5", "--k=abc"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_THROW(args.get_int("n", 0), CheckError);
  EXPECT_THROW(args.get_double("rate", 0.0), CheckError);
  EXPECT_THROW(args.get_int("k", 0), CheckError);
}

TEST(Cli, RejectsDuplicateFlags) {
  // Last-one-wins would let `--n=100 --n=200` hide which value a run
  // actually used; duplicates must fail at parse time.
  const char* argv[] = {"prog", "--n=100", "--n=200"};
  EXPECT_THROW(CliArgs(3, const_cast<char**>(argv)), CheckError);
  const char* bare[] = {"prog", "--verbose", "--verbose=false"};
  EXPECT_THROW(CliArgs(3, const_cast<char**>(bare)), CheckError);
}

TEST(Cli, RejectsEmptyKeyForms) {
  const char* empty_key[] = {"prog", "--=v"};
  EXPECT_THROW(CliArgs(2, const_cast<char**>(empty_key)), CheckError);
  const char* bare_dashes[] = {"prog", "--"};
  EXPECT_THROW(CliArgs(2, const_cast<char**>(bare_dashes)), CheckError);
}

TEST(Cli, BoolParsingIsStrict) {
  const char* argv[] = {"prog", "--a=true",  "--b=FALSE", "--c=1",
                        "--d=0", "--e=TrUe", "--f=off",   "--g=yes"};
  CliArgs args(8, const_cast<char**>(argv));
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_FALSE(args.get_bool("b")) << "--b=FALSE must not read as true";
  EXPECT_TRUE(args.get_bool("c"));
  EXPECT_FALSE(args.get_bool("d"));
  EXPECT_TRUE(args.get_bool("e"));
  // Everything outside true/false/1/0 is an error, not a truthy default.
  EXPECT_THROW(args.get_bool("f"), CheckError);
  EXPECT_THROW(args.get_bool("g"), CheckError);
}

TEST(Parse, Int64WholeInputContract) {
  EXPECT_EQ(parse_int64("42", "t"), 42);
  EXPECT_EQ(parse_int64("-7", "t"), -7);
  EXPECT_EQ(parse_int64("  13  ", "t"), 13);
  EXPECT_THROW(parse_int64("", "t"), CheckError);
  EXPECT_THROW(parse_int64("12abc", "t"), CheckError);
  EXPECT_THROW(parse_int64("abc", "t"), CheckError);
  EXPECT_THROW(parse_int64("1 2", "t"), CheckError);
  EXPECT_THROW(parse_int64("99999999999999999999", "t"), CheckError);
}

TEST(Parse, DoubleWholeInputContract) {
  EXPECT_DOUBLE_EQ(parse_double("0.5", "t"), 0.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3", "t"), -2000.0);
  EXPECT_THROW(parse_double("", "t"), CheckError);
  EXPECT_THROW(parse_double("0.5x", "t"), CheckError);
  EXPECT_THROW(parse_double("nanx", "t"), CheckError);
}

TEST(Parse, Int64PrefixForScanners) {
  EXPECT_EQ(parse_int64_prefix("123, \"next\""), 123);
  EXPECT_EQ(parse_int64_prefix("-1}"), -1);
  EXPECT_EQ(parse_int64_prefix("7"), 7);
  EXPECT_FALSE(parse_int64_prefix("x123").has_value());
  EXPECT_FALSE(parse_int64_prefix("").has_value());
}

}  // namespace
}  // namespace dcolor
