// Failure injection: corrupt correct outputs in every way a buggy
// algorithm could and verify the validators catch each violation class.
// The whole experiment suite trusts these validators — they must not
// have blind spots.
#include <gtest/gtest.h>

#include "coloring/linial.h"
#include "core/instance.h"
#include "core/list_coloring.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dcolor {
namespace {

struct Fixture {
  Graph g;
  OldcInstance inst;
  std::vector<Color> colors;

  /// In-place init: inst.graph points at this->g, so the fixture must not
  /// be moved after initialization.
  void init(std::uint64_t seed) {
    Rng rng(seed);
    g = random_near_regular(120, 8, rng);
    Orientation o = Orientation::by_id(g);
    const int p = o.beta() / 2 + 1;
    const int list_size = p * p + p + 1;
    inst =
        random_uniform_oldc(g, std::move(o), 4 * list_size, list_size, 1, rng);
    inst.graph = &g;
    const LinialResult linial = linial_from_ids(g, Orientation::by_id(g));
    colors = two_sweep(inst, linial.colors, linial.num_colors, p).colors;
  }
};

TEST(FailureInjection, OffListColorIsCaught) {
  Fixture f;
  f.init(9001);
  ASSERT_TRUE(validate_oldc(f.inst, f.colors));
  // Replace one node's color with a color outside its list.
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    for (Color c = 0; c < f.inst.color_space; ++c) {
      if (!f.inst.lists[static_cast<std::size_t>(v)].contains(c)) {
        auto bad = f.colors;
        bad[static_cast<std::size_t>(v)] = c;
        EXPECT_FALSE(validate_oldc(f.inst, bad));
        return;
      }
    }
  }
  FAIL() << "no off-list color found";
}

TEST(FailureInjection, UncoloredNodeIsCaught) {
  Fixture f;
  f.init(9002);
  auto bad = f.colors;
  bad[17] = kNoColor;
  EXPECT_FALSE(validate_oldc(f.inst, bad));
}

TEST(FailureInjection, DefectOvershootIsCaught) {
  // Force a node's out-neighborhood onto its own color until the defect
  // budget bursts.
  Fixture f;
  f.init(9003);
  NodeId v = -1;
  for (NodeId cand = 0; cand < f.g.num_nodes(); ++cand) {
    if (f.inst.orientation.outdegree(cand) >= 3) {
      v = cand;
      break;
    }
  }
  ASSERT_GE(v, 0);
  auto bad = f.colors;
  const Color cv = bad[static_cast<std::size_t>(v)];
  // Defect is 1: two same-colored out-neighbors overshoot, one does not.
  const auto outs = f.inst.orientation.out_neighbors(v);
  bad[static_cast<std::size_t>(outs[0])] = cv;
  bad[static_cast<std::size_t>(outs[1])] = cv;
  // NOTE: the corrupted out-neighbors may themselves now be off-list or
  // over budget — that is fine, the validator must reject either way.
  EXPECT_FALSE(validate_oldc(f.inst, bad));
}

TEST(FailureInjection, WrongSizeVectorIsCaught) {
  Fixture f;
  f.init(9004);
  auto bad = f.colors;
  bad.pop_back();
  EXPECT_FALSE(validate_oldc(f.inst, bad));
  bad.push_back(0);
  bad.push_back(0);
  EXPECT_FALSE(validate_oldc(f.inst, bad));
}

TEST(FailureInjection, ArbdefectiveOrientationMismatchIsCaught) {
  // An arbdefective "solution" whose orientation hides the conflicts in
  // the wrong direction must still be rejected when the defect budget is
  // exceeded on the other side.
  const Graph g = complete(4);
  ArbdefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = 2;
  inst.lists.assign(4, ColorList::uniform({0, 1}, 1));
  // All nodes color 0: node with outdegree 3 exceeds defect 1.
  ArbdefectiveResult res;
  res.colors.assign(4, 0);
  res.orientation = Orientation::by_id(g);
  EXPECT_FALSE(validate_arbdefective(inst, res));
  // A fair orientation can keep everyone within defect 1 only if max
  // outdegree <= 1, impossible on K4 (6 edges, 4 nodes): still invalid.
  res.orientation = Orientation::degeneracy(g);
  EXPECT_FALSE(validate_arbdefective(inst, res));
}

TEST(FailureInjection, ListDefectiveCountsBothDirections) {
  // Undirected validation must count in-neighbors too — the difference
  // between P_D and OLDC.
  const Graph g = path(3);
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = 2;
  inst.lists.assign(3, ColorList::uniform({0, 1}, 1));
  // Center node has both neighbors on its color: defect 2 > 1.
  EXPECT_FALSE(validate_list_defective(inst, {0, 0, 0}));
  // One neighbor on its color: within budget everywhere.
  EXPECT_TRUE(validate_list_defective(inst, {0, 0, 1}));
}

TEST(FailureInjection, SymmetricValidationCountsAllNeighbors) {
  Fixture f;
  f.init(9005);
  OldcInstance sym = f.inst;
  sym.graph = &f.g;
  sym.symmetric = true;
  // The oriented solution need not be symmetric-valid; corrupt one dense
  // node's neighborhood and confirm rejection under symmetric semantics.
  auto bad = f.colors;
  NodeId v = 0;
  for (NodeId cand = 0; cand < f.g.num_nodes(); ++cand) {
    if (f.g.degree(cand) >= 3) {
      v = cand;
      break;
    }
  }
  const Color cv = bad[static_cast<std::size_t>(v)];
  int painted = 0;
  for (NodeId u : f.g.neighbors(v)) {
    bad[static_cast<std::size_t>(u)] = cv;
    if (++painted == 3) break;
  }
  EXPECT_FALSE(validate_oldc(sym, bad));
}

TEST(FailureInjection, FrameworkOutputSurvivesSpotChecks) {
  // End-to-end: take a real framework output, inject one random flip,
  // and make sure properness checking notices (50 random flips).
  Rng rng(9006);
  const Graph g = random_near_regular(150, 8, rng);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, 40, rng);
  const ColoringResult res = solve_degree_plus_one(
      inst, ListColoringOptions{PartitionEngine::kBeg18Oracle});
  ASSERT_TRUE(is_proper_coloring(g, res.colors));
  int rejected = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto bad = res.colors;
    const auto v = static_cast<std::size_t>(rng.below(150));
    const NodeId node = static_cast<NodeId>(v);
    if (g.degree(node) == 0) continue;
    // Copy a neighbor's color — always breaks properness.
    const auto nb = g.neighbors(node);
    bad[v] = bad[static_cast<std::size_t>(
        nb[static_cast<std::size_t>(rng.below(nb.size()))])];
    if (!is_proper_coloring(g, bad)) ++rejected;
  }
  EXPECT_EQ(rejected, 50);
}

}  // namespace
}  // namespace dcolor
