// Shared test harness: thread-count scoping + metrics equality, used by
// the parallel-engine determinism suite and the palette-store suite.
#pragma once

#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/network.h"

namespace dcolor {

inline void expect_metrics_eq(const RoundMetrics& a, const RoundMetrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executed_rounds, b.executed_rounds);
  EXPECT_EQ(a.peak_active_nodes, b.peak_active_nodes);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_message_bits, b.total_message_bits);
  EXPECT_EQ(a.local_compute_ops, b.local_compute_ops);
}

/// Metrics identity across ENGINES: everything except peak_active_nodes,
/// which reports the nodes an engine actually stepped and is
/// engine-dependent by design (the vector path's eager ingest skips
/// no-op receiver steps — see sim/engine.h).
inline void expect_metrics_eq_cross_engine(const RoundMetrics& a,
                                           const RoundMetrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executed_rounds, b.executed_rounds);
  EXPECT_EQ(a.max_message_bits, b.max_message_bits);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_message_bits, b.total_message_bits);
  EXPECT_EQ(a.local_compute_ops, b.local_compute_ops);
}

/// Sets the process-default thread count for the enclosing scope. Both
/// the simulator and the setup path (generators, instance builders) read
/// this default, so it is the single knob determinism tests vary.
class ScopedDefaultThreads {
 public:
  explicit ScopedDefaultThreads(int threads)
      : saved_(Network::default_num_threads()) {
    Network::set_default_num_threads(threads);
  }
  ~ScopedDefaultThreads() { Network::set_default_num_threads(saved_); }

  ScopedDefaultThreads(const ScopedDefaultThreads&) = delete;
  ScopedDefaultThreads& operator=(const ScopedDefaultThreads&) = delete;

 private:
  int saved_;
};

}  // namespace dcolor
