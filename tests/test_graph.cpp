// Unit tests for src/graph: graphs, orientations, generators, hypergraphs,
// line graphs, neighborhood independence, coloring checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "graph/independence.h"
#include "graph/line_graph.h"
#include "graph/orientation.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(Graph, FromEdgesDedupsAndDropsLoops) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 0}, {2, 2}, {1, 2}});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(3), 0);
}

TEST(Graph, NeighborsSorted) {
  const Graph g = Graph::from_edges(5, {{3, 1}, {3, 4}, {3, 0}, {3, 2}});
  const auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, RejectsOutOfRangeEdge) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 5}}), CheckError);
}

TEST(Graph, DeltaPaperConvention) {
  // Δ(G) is max(2, max degree) per Section 2.
  const Graph single = Graph::from_edges(2, {{0, 1}});
  EXPECT_EQ(single.max_degree(), 1);
  EXPECT_EQ(single.delta_paper(), 2);
}

TEST(Graph, EdgeListRoundTrips) {
  Rng rng(3);
  const Graph g = gnp(50, 0.2, rng);
  const Graph h = Graph::from_edges(50, g.edge_list());
  EXPECT_EQ(g.num_edges(), h.num_edges());
  for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), h.degree(v));
}

TEST(Graph, InducedSubgraph) {
  const Graph g = cycle(6);
  const auto sub = g.induced_subgraph({0, 1, 2, 4});
  EXPECT_EQ(sub.graph.num_nodes(), 4);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 0-1, 1-2 survive; 4 isolated
  EXPECT_EQ(sub.to_orig[static_cast<std::size_t>(sub.to_sub[1])], 1);
  EXPECT_EQ(sub.to_sub[3], -1);
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  const Graph g = cycle(4);
  EXPECT_THROW(g.induced_subgraph({0, 0}), CheckError);
}

TEST(Graph, EdgeSubgraphKeepsNodesDropsEdges) {
  const Graph g = complete(4);
  const Graph h = g.edge_subgraph({{0, 1}, {2, 3}});
  EXPECT_EQ(h.num_nodes(), 4);
  EXPECT_EQ(h.num_edges(), 2);
  EXPECT_THROW(g.edge_subgraph({{0, 0}}), CheckError);
}

TEST(Orientation, ByIdPointsToSmaller) {
  const Graph g = complete(4);
  const Orientation o = Orientation::by_id(g);
  EXPECT_EQ(o.outdegree(0), 0);
  EXPECT_EQ(o.outdegree(3), 3);
  EXPECT_TRUE(o.is_out_edge(3, 0));
  EXPECT_FALSE(o.is_out_edge(0, 3));
  EXPECT_EQ(o.beta_v(0), 1);  // max(1, outdeg) convention
}

TEST(Orientation, EveryEdgeOrientedExactlyOnce) {
  Rng rng(5);
  const Graph g = gnp(60, 0.15, rng);
  for (const Orientation& o :
       {Orientation::by_id(g), Orientation::random(g, rng),
        Orientation::degeneracy(g)}) {
    std::int64_t arcs = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      arcs += o.outdegree(v);
      for (NodeId u : o.out_neighbors(v)) {
        EXPECT_TRUE(g.has_edge(v, u));
        EXPECT_FALSE(o.is_out_edge(u, v));
        // u must list v as in-neighbor.
        const auto in = o.in_neighbors(u);
        EXPECT_TRUE(std::binary_search(in.begin(), in.end(), v));
      }
    }
    EXPECT_EQ(arcs, g.num_edges());
  }
}

TEST(Orientation, DegeneracyBoundsOutdegreeOnTrees) {
  Rng rng(9);
  const Graph t = random_tree(200, rng);
  const Orientation o = Orientation::degeneracy(t);
  EXPECT_LE(o.beta(), 1);  // trees are 1-degenerate
}

TEST(Orientation, DegeneracyBoundsOutdegreeOnPlanarishGrid) {
  const Graph g = grid(15, 15);
  const Orientation o = Orientation::degeneracy(g);
  EXPECT_LE(o.beta(), 2);  // grids are 2-degenerate
}

TEST(Orientation, ByPriorityMatchesOrder) {
  const Graph g = path(4);
  const std::vector<std::int64_t> prio = {3, 2, 1, 0};
  const Orientation o = Orientation::by_priority(g, prio);
  // Edges point toward smaller priority: 0->1, 1->2, 2->3.
  EXPECT_TRUE(o.is_out_edge(0, 1));
  EXPECT_TRUE(o.is_out_edge(1, 2));
  EXPECT_TRUE(o.is_out_edge(2, 3));
}

TEST(Generators, CycleAndPath) {
  EXPECT_EQ(cycle(5).num_edges(), 5);
  EXPECT_EQ(path(5).num_edges(), 4);
  EXPECT_EQ(cycle(5).max_degree(), 2);
}

TEST(Generators, CompleteFamilies) {
  EXPECT_EQ(complete(6).num_edges(), 15);
  EXPECT_EQ(complete_bipartite(3, 4).num_edges(), 12);
  EXPECT_EQ(complete_bipartite(3, 4).max_degree(), 4);
}

TEST(Generators, GridAndHypercube) {
  EXPECT_EQ(grid(3, 4).num_nodes(), 12);
  EXPECT_EQ(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
  EXPECT_EQ(hypercube(4).num_nodes(), 16);
  EXPECT_EQ(hypercube(4).max_degree(), 4);
  EXPECT_EQ(hypercube(4).num_edges(), 32);
}

TEST(Generators, GnpDensityRoughlyRight) {
  Rng rng(17);
  const Graph g = gnp(400, 0.05, rng);
  const double expected = 0.05 * 400 * 399 / 2;
  EXPECT_GT(g.num_edges(), expected * 0.8);
  EXPECT_LT(g.num_edges(), expected * 1.2);
}

TEST(Generators, GnpEdgeCases) {
  Rng rng(2);
  EXPECT_EQ(gnp(10, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(gnp(10, 1.0, rng).num_edges(), 45);
}

TEST(Generators, GnpAvgDegree) {
  Rng rng(23);
  const Graph g = gnp_avg_degree(1000, 8.0, rng);
  double avg = 2.0 * static_cast<double>(g.num_edges()) / 1000;
  EXPECT_NEAR(avg, 8.0, 1.0);
}

TEST(Generators, NearRegularDegrees) {
  Rng rng(31);
  const Graph g = random_near_regular(300, 6, rng);
  int at_degree = 0;
  for (NodeId v = 0; v < 300; ++v) {
    EXPECT_LE(g.degree(v), 6);
    if (g.degree(v) == 6) ++at_degree;
  }
  EXPECT_GT(at_degree, 250);  // most nodes hit the target degree
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(7);
  for (NodeId n : {1, 2, 3, 10, 100}) {
    const Graph t = random_tree(n, rng);
    EXPECT_EQ(t.num_edges(), n - 1);
    // Connectivity via BFS.
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<NodeId> stack{0};
    seen[0] = true;
    int count = 0;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      ++count;
      for (NodeId u : t.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = true;
          stack.push_back(u);
        }
      }
    }
    EXPECT_EQ(count, n);
  }
}

TEST(Generators, DisjointCliquesTheta1) {
  const Graph g = disjoint_cliques(5, 4);
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_EQ(g.max_degree(), 3);
  EXPECT_EQ(neighborhood_independence_exact(g).value(), 1);
}

TEST(Generators, CliqueChainTheta2) {
  const Graph g = clique_chain(4, 5);
  EXPECT_EQ(g.num_nodes(), 4 * 4 + 1);
  EXPECT_EQ(neighborhood_independence_exact(g).value(), 2);
}

TEST(Generators, CyclePowerTheta2) {
  const Graph g = cycle_power(20, 3);
  EXPECT_EQ(g.max_degree(), 6);
  EXPECT_EQ(neighborhood_independence_exact(g).value(), 2);
}

TEST(Hypergraph, RankAndDegree) {
  const Hypergraph h(6, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 3}});
  EXPECT_EQ(h.rank(), 3);
  EXPECT_EQ(h.max_vertex_degree(), 3);  // vertex 3 in three edges
}

TEST(Hypergraph, RandomHasRequestedShape) {
  Rng rng(13);
  const Hypergraph h = random_hypergraph(50, 80, 4, rng);
  EXPECT_EQ(h.edges().size(), 80u);
  EXPECT_EQ(h.rank(), 4);
}

TEST(LineGraph, TriangleBecomesTriangle) {
  const Graph g = line_graph(complete(3));
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(LineGraph, StarBecomesClique) {
  const Graph star = complete_bipartite(1, 5);
  const Graph lg = line_graph(star);
  EXPECT_EQ(lg.num_nodes(), 5);
  EXPECT_EQ(lg.num_edges(), 10);
}

TEST(LineGraph, ThetaBoundedByRank) {
  Rng rng(19);
  for (int rank : {2, 3, 4}) {
    const Hypergraph h = random_hypergraph(40, 60, rank, rng);
    const Graph lg = line_graph(h);
    const auto theta = neighborhood_independence_exact(lg, 128);
    if (theta.has_value()) {
      EXPECT_LE(*theta, rank);
    }
  }
}

TEST(LineGraph, GraphLineGraphTheta2) {
  Rng rng(29);
  const Graph g = gnp(30, 0.2, rng);
  const Graph lg = line_graph(g);
  const auto theta = neighborhood_independence_exact(lg, 128);
  ASSERT_TRUE(theta.has_value());
  EXPECT_LE(*theta, 2);
}

TEST(Independence, ExactOnKnownGraphs) {
  // C5: each neighborhood is 2 non-adjacent nodes -> θ = 2.
  EXPECT_EQ(neighborhood_independence_exact(cycle(5)).value(), 2);
  // K5: neighborhoods are cliques -> θ = 1.
  EXPECT_EQ(neighborhood_independence_exact(complete(5)).value(), 1);
  // Star K_{1,5}: center's neighborhood is independent -> θ = 5.
  EXPECT_EQ(neighborhood_independence_exact(complete_bipartite(1, 5)).value(),
            5);
}

TEST(Independence, BoundsSandwichExact) {
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gnp(40, 0.25, rng);
    const auto exact = neighborhood_independence_exact(g);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(neighborhood_independence_lower(g), *exact);
    EXPECT_GE(neighborhood_independence_upper(g), *exact);
  }
}

TEST(Independence, ExactMisOnSmallSets) {
  const Graph g = cycle(6);
  EXPECT_EQ(independence_number_exact(g, {0, 1, 2, 3, 4, 5}), 3);
  EXPECT_EQ(independence_number_exact(g, {0, 2, 4}), 3);
  EXPECT_EQ(independence_number_exact(g, {}), 0);
}

TEST(Independence, CapReturnsNullopt) {
  const Graph star = complete_bipartite(1, 10);
  EXPECT_FALSE(neighborhood_independence_exact(star, 5).has_value());
}

TEST(ColoringChecks, ProperColoring) {
  const Graph g = cycle(4);
  EXPECT_TRUE(is_proper_coloring(g, {0, 1, 0, 1}));
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 0, 0}));
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 0, kNoColor}));
}

TEST(ColoringChecks, UndirectedDefects) {
  const Graph g = complete(4);
  const auto d = undirected_defects(g, {0, 0, 0, 1});
  EXPECT_EQ(d[0], 2);
  EXPECT_EQ(d[3], 0);
  EXPECT_EQ(max_undirected_defect(g, {0, 0, 0, 1}), 2);
}

TEST(ColoringChecks, OrientedDefects) {
  const Graph g = complete(3);
  const Orientation o = Orientation::by_id(g);  // edges toward smaller ids
  const auto d = oriented_defects(o, {7, 7, 7});
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
}

TEST(ColoringChecks, NumColorsAndAllColored) {
  EXPECT_EQ(num_colors_used({0, 5, 0, kNoColor}), 2);
  EXPECT_FALSE(all_colored({0, kNoColor}));
  EXPECT_TRUE(all_colored({0, 1}));
}

}  // namespace
}  // namespace dcolor
