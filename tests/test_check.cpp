// The `check` label: online invariant checker, sequential oracles,
// mutation self-tests, and the differential fuzz harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "check/invariant_checker.h"
#include "check/mutation.h"
#include "check/oracle.h"
#include "coloring/linial.h"
#include "core/congest_oldc.h"
#include "core/fast_two_sweep.h"
#include "core/instance.h"
#include "core/two_sweep.h"
#include "graph/generators.h"
#include "io/instance_io.h"
#include "sim/network.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

/// A known-good OLDC instance + proper initial coloring (same shape the
/// mutation baseline uses).
struct GoodSetup {
  Graph g;
  OldcInstance inst;  ///< inst.graph points at `g`
  std::vector<Color> initial;
  std::int64_t q = 0;

  GoodSetup() = default;
  GoodSetup(GoodSetup&& other) noexcept { *this = std::move(other); }
  GoodSetup& operator=(GoodSetup&& other) noexcept {
    g = std::move(other.g);
    inst = std::move(other.inst);
    initial = std::move(other.initial);
    q = other.q;
    inst.graph = &g;
    return *this;
  }
};

GoodSetup make_good_setup(std::uint64_t seed) {
  GoodSetup s;
  Rng rng(seed);
  s.g = gnp(24, 0.25, rng);
  Orientation o = Orientation::by_id(s.g);
  const int beta = o.beta();
  const int defect = (3 * beta + 3) / 4 + 1;
  s.inst = random_uniform_oldc(s.g, std::move(o), /*color_space=*/16,
                               /*list_size=*/6, defect, rng);
  const LinialResult linial = linial_from_ids(s.g, s.inst.orientation);
  s.initial = linial.colors;
  s.q = linial.num_colors;
  return s;
}

// ---- contract pass on known-good runs ----------------------------------

TEST(InvariantChecker, ThrowModePassesOnGoodTwoSweepRun) {
  const GoodSetup s = make_good_setup(901);
  InvariantChecker ck(InvariantChecker::Mode::kThrow);
  ck.install();
  const ColoringResult res = two_sweep(s.inst, s.initial, s.q, /*p=*/2);
  ck.uninstall();
  EXPECT_TRUE(validate_oldc(s.inst, res.colors));
  // "No violations" alone can mean "hooks never fired": require evidence
  // the checker actually evaluated invariants.
  EXPECT_GT(ck.checks_run(), 0);
  EXPECT_TRUE(ck.violations().empty());
}

TEST(InvariantChecker, ThrowModePassesOnGoodFastTwoSweepRun) {
  const GoodSetup s = make_good_setup(902);
  InvariantChecker ck(InvariantChecker::Mode::kThrow);
  ck.install();
  const ColoringResult res =
      fast_two_sweep(s.inst, s.initial, s.q, /*p=*/2, /*eps=*/0.5);
  ck.uninstall();
  EXPECT_TRUE(validate_oldc(s.inst, res.colors));
  EXPECT_GT(ck.checks_run(), 0);
}

TEST(InvariantChecker, ThrowModePassesOnGoodCongestRun) {
  Rng rng(903);
  GoodSetup s;
  s.g = gnp(24, 0.25, rng);
  Orientation o = Orientation::by_id(s.g);
  const int beta = o.beta();
  const std::int64_t C = 12;
  const int list_size = 6;
  // weight = Λ(d+1) >= 3·√C·β.
  const int defect = static_cast<int>(
      3.0 * 3.4641 * beta / list_size) + 1;
  s.inst = random_uniform_oldc(s.g, std::move(o), C, list_size, defect, rng);
  const LinialResult linial = linial_from_ids(s.g, s.inst.orientation);

  InvariantChecker ck(InvariantChecker::Mode::kThrow);
  ck.install();
  const ColoringResult res =
      congest_oldc(s.inst, linial.colors, linial.num_colors);
  ck.uninstall();
  EXPECT_TRUE(validate_oldc(s.inst, res.colors));
  EXPECT_GT(ck.checks_run(), 0);
  // Empirical Theorem 1.2 bandwidth: the widest message of the whole
  // pipeline fits the O(log q + log C) budget the checker enforces.
  EXPECT_LE(res.metrics.max_message_bits,
            InvariantChecker::theorem12_bit_budget(linial.num_colors, C));
}

// ---- mutation self-test ------------------------------------------------

TEST(MutationSelfTest, EverySeededViolationIsCaught) {
  const SelfTestReport report = run_mutation_self_test();
  ASSERT_EQ(report.outcomes.size(), all_mutation_kinds().size());
  for (const MutationOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.baseline_clean)
        << mutation_name(o.kind) << ": unmutated twin raised a violation";
    EXPECT_TRUE(o.caught)
        << mutation_name(o.kind) << ": seeded violation was NOT caught";
  }
  EXPECT_TRUE(report.all_caught());
}

TEST(MutationSelfTest, DefectOverflowFiresTheDefectRule) {
  const MutationOutcome o = run_mutation(MutationKind::kDefectOverflow);
  EXPECT_TRUE(o.caught);
  EXPECT_EQ(o.rule, "defect_bound");
}

TEST(MutationSelfTest, DroppedMessageFiresTheDefectRule) {
  const MutationOutcome o = run_mutation(MutationKind::kDroppedMessage);
  EXPECT_TRUE(o.caught);
  EXPECT_EQ(o.rule, "defect_bound");
}

// ---- determinism across thread counts ----------------------------------

TEST(InvariantChecker, OutputDeterministicAcrossThreadCounts) {
  const GoodSetup s = make_good_setup(904);
  std::vector<Color> first_colors;
  std::int64_t first_checks = -1;
  for (const int threads : {1, 2, 4, 8}) {
    Network::set_default_num_threads(threads);
    InvariantChecker ck(InvariantChecker::Mode::kCollect);
    ck.install();
    const ColoringResult res = two_sweep(s.inst, s.initial, s.q, 2);
    ck.uninstall();
    EXPECT_TRUE(ck.violations().empty()) << "threads=" << threads;
    if (first_checks < 0) {
      first_checks = ck.checks_run();
      first_colors = res.colors;
    } else {
      EXPECT_EQ(ck.checks_run(), first_checks) << "threads=" << threads;
      EXPECT_EQ(res.colors, first_colors) << "threads=" << threads;
    }
  }
  Network::set_default_num_threads(0);
}

// ---- phase attribution + bandwidth guard --------------------------------

TEST(InvariantChecker, ViolationsCarryThePhasePath) {
  InvariantChecker ck(InvariantChecker::Mode::kCollect);
  ck.install();
  {
    PhaseSpan outer("outer");
    PhaseSpan inner("inner");
    const Graph g = path(2);
    ck.check_proper(g, {0, 0}, "attribution");
  }
  ck.uninstall();
  ASSERT_EQ(ck.violations().size(), 1u);
  EXPECT_EQ(ck.violations()[0].rule, "proper_coloring");
  EXPECT_EQ(ck.violations()[0].phase, "outer/inner");
}

TEST(InvariantChecker, BandwidthGuardArmsTheEngineCap) {
  const GoodSetup s = make_good_setup(905);
  InvariantChecker ck(InvariantChecker::Mode::kThrow);
  ck.install();
  {
    // 1 bit is below any real message; the engine must reject the first
    // send of the run, proving the checker cap reaches the simulator.
    const InvariantChecker::BandwidthGuard guard(&ck, 1);
    EXPECT_THROW(two_sweep(s.inst, s.initial, s.q, 2), CheckError);
  }
  // Guard restored: the same run passes.
  const ColoringResult res = two_sweep(s.inst, s.initial, s.q, 2);
  ck.uninstall();
  EXPECT_TRUE(validate_oldc(s.inst, res.colors));
}

TEST(InvariantChecker, CollectModeNeverArmsTheEngineCap) {
  InvariantChecker ck(InvariantChecker::Mode::kCollect);
  const InvariantChecker::BandwidthGuard guard(&ck, 1);
  EXPECT_EQ(ck.active_bit_cap(), 0);
}

// ---- sequential oracles -------------------------------------------------

TEST(Oracle, SolvesGuaranteedOrientedInstances) {
  for (std::int64_t idx = 0; idx < 24; ++idx) {
    const FuzzCase c = make_fuzz_case(/*seed=*/31, idx, /*max_n=*/32);
    if (c.owned.instance.symmetric) continue;
    ASSERT_TRUE(oracle_guarantee_holds(c.owned.instance)) << "case " << idx;
    const OracleResult res = solve_oldc_oracle(c.owned.instance);
    EXPECT_EQ(res.status, OracleStatus::kSolved) << "case " << idx;
    EXPECT_TRUE(validate_oldc(c.owned.instance, res.colors));
  }
}

TEST(Oracle, ReportsUnsolvableWhenNoBudgetExists) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  OldcInstance inst;
  inst.graph = &g;
  inst.orientation = Orientation::by_id(g);  // arc 1 -> 0
  inst.color_space = 1;
  inst.lists.push_back(ColorList::zero_defect({0}));
  inst.lists.push_back(ColorList::zero_defect({0}));
  const OracleResult res = solve_oldc_oracle(inst);
  EXPECT_EQ(res.status, OracleStatus::kUnsolvable);
  EXPECT_FALSE(oracle_guarantee_holds(inst));  // weight == outdeg at node 1
}

TEST(Oracle, SymmetricDeadEndIsASkipNotAnError) {
  const Graph g = complete(3);
  OldcInstance inst;
  inst.graph = &g;
  inst.orientation = Orientation::by_id(g);
  inst.color_space = 1;
  inst.symmetric = true;
  inst.lists.assign(3, ColorList::zero_defect({0}));
  const OracleResult res = solve_oldc_oracle(inst);
  EXPECT_EQ(res.status, OracleStatus::kSkipped);
}

// ---- fuzz harness -------------------------------------------------------

TEST(FuzzHarness, CaseGenerationIsDeterministic) {
  const FuzzCase a = make_fuzz_case(7, 12, 40);
  const FuzzCase b = make_fuzz_case(7, 12, 40);
  EXPECT_EQ(a.owned.graph.num_nodes(), b.owned.graph.num_nodes());
  EXPECT_EQ(a.owned.graph.edge_list(), b.owned.graph.edge_list());
  EXPECT_EQ(a.solver, b.solver);  // same registry singleton
  EXPECT_EQ(a.owned.instance.color_space, b.owned.instance.color_space);
}

TEST(FuzzHarness, SolverAxisComesFromTheRegistry) {
  // Every OLDC-capable registered solver is in the rotation — including
  // the sequential oracle_greedy baseline.
  const std::vector<const Solver*> axis = fuzz_solver_axis();
  std::vector<std::string> names;
  for (const Solver* s : axis) names.emplace_back(s->name());
  EXPECT_NE(std::find(names.begin(), names.end(), "two_sweep"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fast_two_sweep"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "congest_oldc"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "oracle_greedy"),
            names.end());
  // The schedule actually reaches each of them.
  std::vector<std::string> scheduled;
  for (std::int64_t idx = 0; idx < 32; ++idx) {
    const FuzzCase c = make_fuzz_case(/*seed=*/3, idx, /*max_n=*/10);
    scheduled.emplace_back(c.solver->name());
  }
  for (const std::string& name : names) {
    EXPECT_NE(std::find(scheduled.begin(), scheduled.end(), name),
              scheduled.end())
        << name << " never scheduled";
  }
}

TEST(FuzzHarness, GeneratedCasesSatisfyTheScheduledPremise) {
  for (std::int64_t idx = 0; idx < 32; ++idx) {
    const FuzzCase c = make_fuzz_case(/*seed=*/5, idx, /*max_n=*/40);
    EXPECT_TRUE(
        fuzz_preconditions_hold(c.owned.instance, *c.solver, c.params))
        << "case " << idx << " (" << c.solver->name() << ")";
  }
}

TEST(FuzzHarness, SmokeBatteryPassesAcrossGeneratorsAndThreads) {
  FuzzOptions options;
  options.cases = 32;  // covers all 4 generators and the whole solver axis
  options.seed = 11;
  options.max_n = 28;
  options.thread_counts = {1, 2};
  options.shrink = false;
  options.repro_path = "test_check_fuzz_repro.txt";
  const FuzzReport report = fuzz_differential(options, nullptr);
  EXPECT_EQ(report.cases_run, 32);
  EXPECT_EQ(report.failures, 0) << report.first_failure;
  EXPECT_EQ(report.oracle_skips + report.oracle_solved, 32);
}

TEST(FuzzHarness, BaselineSolverSmokeRun) {
  // The registry-driven axis makes baselines fuzzable too: a short run
  // pinned to the sequential oracle_greedy baseline.
  FuzzOptions options;
  options.cases = 12;
  options.seed = 19;
  options.max_n = 24;
  options.thread_counts = {1, 2};
  options.shrink = false;
  options.solver = "oracle_greedy";
  options.repro_path = "test_check_fuzz_baseline_repro.txt";
  const FuzzReport report = fuzz_differential(options, nullptr);
  EXPECT_EQ(report.cases_run, 12);
  EXPECT_EQ(report.failures, 0) << report.first_failure;
}

TEST(FuzzHarness, ShrinkerPreservesPassingInstances) {
  // The shrinker only keeps candidates that still FAIL the battery; on a
  // passing instance every candidate is rejected and the original comes
  // back intact (while still exercising the node/edge/palette cloners).
  const FuzzCase c = make_fuzz_case(/*seed=*/13, /*idx=*/0, /*max_n=*/12);
  const OwnedOldcInstance shrunk =
      shrink_fuzz_case(c.owned.instance, *c.solver, c.params, {1},
                       /*max_evals=*/60, nullptr);
  EXPECT_EQ(shrunk.graph.num_nodes(), c.owned.graph.num_nodes());
  EXPECT_EQ(shrunk.graph.edge_list(), c.owned.graph.edge_list());
  for (NodeId v = 0; v < shrunk.graph.num_nodes(); ++v) {
    EXPECT_TRUE(shrunk.instance.lists[static_cast<std::size_t>(v)] ==
                c.owned.instance.lists[static_cast<std::size_t>(v)]);
  }
}

TEST(FuzzHarness, ReproRoundTripsThroughInstanceIo) {
  const FuzzCase c = make_fuzz_case(/*seed=*/17, /*idx=*/1, /*max_n=*/20);
  const std::string path = "test_check_roundtrip.txt";
  save_oldc(path, c.owned.instance);
  const OwnedOldcInstance loaded = load_oldc(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.graph.edge_list(), c.owned.graph.edge_list());
  const std::string failure = run_fuzz_battery(
      loaded.instance, *c.solver, c.params, {1, 2});
  EXPECT_TRUE(failure.empty()) << failure;
}

}  // namespace
}  // namespace dcolor
