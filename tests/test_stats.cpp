// Resource-accounting metrics tests (`ctest -L observability`):
// obs/stats.h's determinism and cost contracts, plus the hardened JSONL
// trace summarizer and the arena report.
//
//   * install/uninstall nesting and thread-locality of the current
//     registry;
//   * counter/gauge/histogram semantics (power-of-two buckets, exact
//     count/sum/min/max);
//   * export shapes: domain-truncated JSON (the "t" quarantine) and
//     Prometheus text exposition;
//   * the cost contract — recording into resolved handles performs ZERO
//     heap allocations, and a solve under a warm registry allocates
//     exactly as much as one with metrics disabled. This is why the
//     suite lives in its own binary: it overrides global operator new
//     with a counter (and is skipped under sanitizers, whose allocators
//     conflict with the override — see tests/CMakeLists.txt);
//   * kStable stats are byte-identical at 1/2/4/8 simulator threads AND
//     across the scalar/vector engines; kEngine stats per engine;
//   * summarize_trace_jsonl on a recorded mixed-engine trace whose "t"
//     objects contain decoy keys;
//   * the arena report's deterministic fields are byte-identical across
//     batch worker counts and engines once "t" is stripped.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/palette_store.h"
#include "core/run_context.h"
#include "core/solver_registry.h"
#include "graph/generators.h"
#include "obs/arena.h"
#include "obs/stats.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/rss.h"

#include "test_harness.h"

// GCC cannot see that the counting operator new below pairs with the
// free()-based operator delete once both are inlined into library code;
// the mismatch it reports is a false positive of this idiom.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dcolor {
namespace {

std::int64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

// ---- registry mechanics -------------------------------------------------

TEST(Stats, InstallNestsAndRestores) {
  EXPECT_EQ(StatsRegistry::current(), nullptr);
  StatsRegistry outer;
  outer.install();
  EXPECT_EQ(StatsRegistry::current(), &outer);
  {
    StatsRegistry inner;
    inner.install();
    EXPECT_EQ(StatsRegistry::current(), &inner);
    inner.uninstall();
  }
  EXPECT_EQ(StatsRegistry::current(), &outer);
  outer.uninstall();
  EXPECT_EQ(StatsRegistry::current(), nullptr);
  EXPECT_THROW(outer.uninstall(), CheckError);
}

TEST(Stats, DestructorUninstalls) {
  {
    StatsRegistry reg;
    reg.install();
    EXPECT_EQ(StatsRegistry::current(), &reg);
  }
  EXPECT_EQ(StatsRegistry::current(), nullptr);
}

TEST(Stats, HandlesAreStableAndDomainIsFixedByFirstResolution) {
  StatsRegistry reg;
  StatCounter& c = reg.counter("a.b", StatDomain::kEngine);
  c.add(3);
  // Later resolutions return the same metric; the domain argument is
  // ignored after the first.
  reg.counter("a.b", StatDomain::kStable).add(4);
  EXPECT_EQ(c.value, 7);
  const std::string stable = reg.to_json(StatDomain::kStable);
  EXPECT_EQ(stable.find("a.b"), std::string::npos)
      << "domain should stay kEngine: " << stable;
}

TEST(Stats, HistogramBucketsAreExactPowersOfTwo) {
  StatsRegistry reg;
  StatHistogram& h = reg.histogram("h");
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1000);
  h.record(-5);  // clamped into the zero bucket
  EXPECT_EQ(h.count, 6);
  EXPECT_EQ(h.sum, 1001);
  EXPECT_EQ(h.min, -5);
  EXPECT_EQ(h.max, 1000);
  EXPECT_EQ(h.buckets[0], 2);  // 0 and -5
  EXPECT_EQ(h.buckets[1], 1);  // 1
  EXPECT_EQ(h.buckets[2], 2);  // 2, 3
  EXPECT_EQ(h.buckets[10], 1);  // 1000 in (511, 1023]
}

// ---- export shapes ------------------------------------------------------

TEST(Stats, JsonTruncatesAtMaxDomain) {
  StatsRegistry reg;
  reg.counter("stable.c", StatDomain::kStable).add(1);
  reg.counter("engine.c", StatDomain::kEngine).add(2);
  reg.gauge("timing.g", StatDomain::kTiming).set(3);

  const std::string stable = reg.to_json(StatDomain::kStable);
  EXPECT_NE(stable.find("\"stable.c\":1"), std::string::npos);
  EXPECT_EQ(stable.find("engine.c"), std::string::npos);
  EXPECT_EQ(stable.find("\"t\":"), std::string::npos);

  const std::string full = reg.to_json();
  EXPECT_NE(full.find("\"engine\":{"), std::string::npos);
  EXPECT_NE(full.find("\"t\":{"), std::string::npos);
  EXPECT_NE(full.find("\"timing.g\":{\"value\":3,\"peak\":3}"),
            std::string::npos);
  // The quarantine convention: "t" is the LAST section.
  EXPECT_GT(full.find("\"t\":{"), full.find("\"engine\":{"));
}

TEST(Stats, PrometheusExposition) {
  StatsRegistry reg;
  reg.counter("sim.rounds").add(7);
  reg.gauge("mem.bytes").set(10);
  reg.gauge("mem.bytes").set(4);  // value drops, peak stays
  StatHistogram& h = reg.histogram("sim.active");
  h.record(1);
  h.record(3);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE dcolor_sim_rounds counter\n"
                      "dcolor_sim_rounds 7\n"),
            std::string::npos);
  EXPECT_NE(prom.find("dcolor_mem_bytes 4\n"), std::string::npos);
  EXPECT_NE(prom.find("dcolor_mem_bytes_peak 10\n"), std::string::npos);
  // Cumulative buckets up to the last non-empty one, then +Inf.
  EXPECT_NE(prom.find("dcolor_sim_active_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("dcolor_sim_active_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("dcolor_sim_active_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("dcolor_sim_active_sum 4\n"), std::string::npos);
  EXPECT_NE(prom.find("dcolor_sim_active_count 2\n"), std::string::npos);
}

TEST(Stats, WriteStatsFileRejectsUnknownFormat) {
  const StatsRegistry reg;
  EXPECT_THROW(write_stats_file(reg, "xml", "/tmp/stats_test_out"),
               CheckError);
}

// ---- producers ----------------------------------------------------------

TEST(Stats, ObservePalettesSnapshotsTheStore) {
  PaletteStore store;
  store.emplace_back({1, 2, 3}, {0, 0, 0});
  store.emplace_back({1, 2, 3}, {0, 0, 0});  // dedup hit
  StatsRegistry reg;
  reg.observe_palettes(store);
  EXPECT_EQ(reg.gauge("palette.nodes").value, 2);
  EXPECT_EQ(reg.gauge("palette.num_palettes").value, 1);
  EXPECT_EQ(reg.gauge("palette.arena_entries").value, 3);
  EXPECT_EQ(reg.gauge("palette.dedup_hits").value, 1);
  EXPECT_EQ(reg.gauge("palette.content_bytes").value, store.content_bytes());
  EXPECT_GT(reg.gauge("palette.arena_bytes").value, 0);
}

TEST(Stats, ContentBytesIgnoresCapacityHistory) {
  // Same content through two different capacity histories: content_bytes
  // (the figure batch/arena reports use) must agree; memory_bytes is
  // capacity-based and may not.
  const auto fill = [](PaletteStore& store) {
    for (int i = 0; i < 8; ++i) {
      store.emplace_back({static_cast<Color>(i), static_cast<Color>(i + 1)},
                         {1, 1});
    }
  };
  PaletteStore fresh;
  fill(fresh);
  PaletteStore reused;
  reused.reserve(4096);
  reused.reserve_arena(4096);
  for (int i = 0; i < 100; ++i) {
    reused.emplace_back({static_cast<Color>(i)}, {0});
  }
  reused.clear();
  fill(reused);
  EXPECT_EQ(fresh.content_bytes(), reused.content_bytes());
  EXPECT_GE(reused.memory_bytes(), fresh.content_bytes());
}

TEST(Stats, RssSamplerReportsPlausibleValues) {
  StatsRegistry reg;
  reg.sample_rss();
  EXPECT_GT(reg.gauge("mem.current_rss_bytes").value, 0);
  EXPECT_GT(reg.gauge("mem.peak_rss_bytes").value, 0);
  // getrusage's high-water mark bounds the /proc/self/statm sample.
  EXPECT_GE(reg.gauge("mem.peak_rss_bytes").value,
            reg.gauge("mem.current_rss_bytes").value / 2);
}

// ---- cost contract ------------------------------------------------------

TEST(Stats, RecordingIntoResolvedHandlesAllocatesNothing) {
  StatsRegistry reg;
  // Deliberately longer than any SSO buffer: a lookup that builds a
  // std::string key would show up in the counter.
  const char* const kLong = "sim.some_quite_long_histogram_metric_name";
  StatCounter& c = reg.counter(kLong);
  StatGauge& g = reg.gauge("sim.another_long_gauge_metric_name_here");
  StatHistogram& h = reg.histogram("sim.round_sent_bits_histogram_name");

  const std::int64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    c.add(1);
    g.set(i);
    h.record(i);
    // Re-resolution of an existing name is heterogeneous (string_view):
    // no key string is materialized.
    reg.counter(kLong).add(1);
  }
  EXPECT_EQ(allocations() - before, 0)
      << "steady-state metric recording touched the heap";
}

TEST(Stats, SolveUnderWarmRegistryAllocatesLikeDisabled) {
  ScopedDefaultThreads threads(1);
  Rng rng(1800);
  const NodeId n = 600;
  const Graph g = random_near_regular(n, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int d = o.beta();
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
  std::vector<Color> ids(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  const Solver& solver = SolverRegistry::get().require("fast_two_sweep");
  SolveRequest req;
  req.oldc = &inst;
  req.initial_coloring = &ids;
  req.q = n;

  const auto solve_allocations = [&](StatsRegistry* stats) {
    RunContext ctx;
    ctx.stats = stats;
    const RunScope scope(ctx);
    const std::int64_t before = allocations();
    solver.solve(req, ctx);
    return allocations() - before;
  };

  solve_allocations(nullptr);  // process warmup (lazy singletons, pools)
  const std::int64_t disabled = solve_allocations(nullptr);
  EXPECT_EQ(solve_allocations(nullptr), disabled)
      << "baseline solve is not allocation-deterministic; the contract "
         "below would be meaningless";

  StatsRegistry reg;
  solve_allocations(&reg);  // resolve every handle once (allocates)
  EXPECT_EQ(solve_allocations(&reg), disabled)
      << "a warm registry must add zero steady-state allocations";
  EXPECT_EQ(solve_allocations(nullptr), disabled);
}

// ---- determinism across threads and engines -----------------------------

TEST(Stats, StableStatsIdenticalAcrossThreadsAndEngines) {
  Rng rng(1800);
  const NodeId n = 800;
  const Graph g = random_near_regular(n, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int d = o.beta();
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
  std::vector<Color> ids(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  const Solver& solver = SolverRegistry::get().require("fast_two_sweep");
  SolveRequest req;
  req.oldc = &inst;
  req.initial_coloring = &ids;
  req.q = n;

  const auto run = [&](EngineKind engine, int threads) {
    StatsRegistry reg;
    RunContext ctx;
    ctx.stats = &reg;
    ctx.engine = engine;
    ctx.num_threads = threads;
    {
      const RunScope scope(ctx);
      solver.solve(req, ctx);
    }
    return std::pair<std::string, std::string>{
        reg.to_json(StatDomain::kStable), reg.to_json(StatDomain::kEngine)};
  };

  const auto [stable_base, engine_base] = run(EngineKind::kScalar, 1);
  EXPECT_NE(stable_base.find("sim.runs"), std::string::npos);
  EXPECT_NE(stable_base.find("sim.round_sent_bits"), std::string::npos);
  std::string engine_vector_base;
  for (const EngineKind ek : {EngineKind::kScalar, EngineKind::kVector}) {
    for (const int threads : {1, 2, 4, 8}) {
      const auto [stable, engine_incl] = run(ek, threads);
      EXPECT_EQ(stable, stable_base)
          << "kStable stats diverged at engine=" << engine_name(ek)
          << " threads=" << threads;
      // kEngine-inclusive export must agree WITHIN an engine at every
      // thread count (across engines it may differ by design).
      std::string& per_engine_base =
          ek == EngineKind::kScalar
              ? const_cast<std::string&>(engine_base)
              : engine_vector_base;
      if (per_engine_base.empty()) {
        per_engine_base = engine_incl;
      } else {
        EXPECT_EQ(engine_incl, per_engine_base)
            << "kEngine stats diverged within engine=" << engine_name(ek)
            << " at threads=" << threads;
      }
    }
  }
}

// ---- trace summarizer ---------------------------------------------------

TEST(Stats, SummarizeTraceJsonlHandlesEngineLabelsAndDecoyTimingKeys) {
  // A recorded-trace regression fixture in JsonlSink's exact format:
  // mixed engine labels, one pre-label line (no "engine" key), an
  // unattributed round, an unknown line type, and "t" objects carrying
  // DECOY deterministic key names ("rounds", "engine") that a naive
  // whole-line scan would pick up.
  const char* const kTrace =
      R"({"type":"span_begin","id":0,"parent":-1,"depth":0,"name":"outer","g_round":0,"t":{"ts_ns":100}}
{"type":"round","g_round":1,"round":1,"ff":0,"span":0,"active":5,"inbox":5,"woken":0,"dense":0,"dmsgs":10,"dbits":80,"smsgs":10,"sbits":80,"bfast":0,"engine":"scalar","t":{"ts_ns":200,"wall_ns":50,"step_ns":40,"chunks":[40],"rounds":999,"engine":"vector"}}
{"type":"round","g_round":2,"round":2,"ff":0,"span":0,"active":5,"inbox":5,"woken":0,"dense":0,"dmsgs":10,"dbits":80,"smsgs":0,"sbits":0,"bfast":0,"engine":"vector","t":{"ts_ns":300,"wall_ns":60,"step_ns":50,"chunks":[50]}}
{"type":"span_end","id":0,"name":"outer","g_round":2,"rounds":2,"executed":2,"msgs":20,"bits":160,"t":{"ts_ns":400,"wall_ns":110}}
{"type":"round","g_round":3,"round":3,"ff":4,"span":-1,"active":1,"inbox":1,"woken":0,"dense":0,"dmsgs":2,"dbits":16,"smsgs":0,"sbits":0,"bfast":0,"t":{"ts_ns":500,"wall_ns":30}}
{"type":"future_record","payload":"ignored","t":{"ts_ns":600}}
)";
  std::istringstream is(kTrace);
  const TraceSummaryData data = summarize_trace_jsonl(is);

  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0].name, "(unattributed)");
  EXPECT_EQ(data.rows[0].totals.rounds, 5);  // 1 + 4 fast-forwarded
  EXPECT_EQ(data.rows[0].totals.executed, 1);
  EXPECT_EQ(data.rows[0].totals.messages, 2);
  EXPECT_EQ(data.rows[0].totals.bits, 16);
  EXPECT_EQ(data.rows[0].totals.wall_ns, 30);
  EXPECT_EQ(data.rows[1].name, "outer");
  EXPECT_EQ(data.rows[1].totals.rounds, 2);  // NOT the decoy 999
  EXPECT_EQ(data.rows[1].totals.executed, 2);
  EXPECT_EQ(data.rows[1].totals.messages, 20);
  EXPECT_EQ(data.rows[1].totals.bits, 160);
  EXPECT_EQ(data.rows[1].totals.wall_ns, 110);

  EXPECT_EQ(data.total.rounds, 7);
  EXPECT_EQ(data.total.executed, 3);
  EXPECT_EQ(data.total.bits, 176);

  // One scalar + one vector label; the unlabeled (pre-label) round is
  // tallied under neither.
  EXPECT_EQ(data.scalar_rounds, 1);
  EXPECT_EQ(data.vector_rounds, 1);
}

TEST(Stats, SummarizeTraceJsonlRejectsOutOfOrderSpanIds) {
  std::istringstream is(
      R"({"type":"span_begin","id":3,"parent":-1,"depth":0,"name":"x","g_round":0,"t":{"ts_ns":1}}
)");
  EXPECT_THROW(summarize_trace_jsonl(is), CheckError);
}

// ---- arena --------------------------------------------------------------

/// Removes every `, "t": {...}` quarantine block (JSON) and the engine
/// header field, leaving only fields the determinism contract covers.
std::string strip_nondeterministic(std::string s) {
  for (std::size_t pos; (pos = s.find(", \"t\": {")) != std::string::npos;) {
    const std::size_t close = s.find('}', pos);
    s.erase(pos, close - pos + 1);
  }
  const std::size_t epos = s.find("\"engine\": \"");
  if (epos != std::string::npos) {
    const std::size_t vbegin = epos + 11;
    const std::size_t vend = s.find('"', vbegin);
    s.replace(vbegin, vend - vbegin, "X");
  }
  return s;
}

TEST(Stats, ArenaReportDeterministicAcrossWorkersAndEngines) {
  ArenaOptions options;
  options.generators = {"gnp"};
  options.sizes = {64};
  options.degrees = {6};
  options.solvers = {"greedy", "two_sweep", "fast_two_sweep", "luby"};
  options.seed = 7;

  const auto render = [&](int threads, EngineKind engine) {
    ArenaOptions o = options;
    o.threads = threads;
    o.sim_engine = engine;
    return strip_nondeterministic(run_arena(o).to_json());
  };

  const std::string base = render(1, EngineKind::kScalar);
  EXPECT_EQ(render(4, EngineKind::kScalar), base);
  EXPECT_EQ(render(1, EngineKind::kVector), base);
  EXPECT_EQ(render(4, EngineKind::kVector), base);
}

TEST(Stats, ArenaMarksTheParetoFrontAndCoversTheRegistry) {
  ArenaOptions options;
  options.generators = {"gnp"};
  options.sizes = {64};
  options.degrees = {6};
  options.seed = 1;
  const ArenaReport report = run_arena(options);
  ASSERT_EQ(report.scenarios.size(), 1u);
  // ROADMAP item 4 wants a cross-solver report: every registry solver
  // runs, and at least 8 produce valid comparable rows.
  EXPECT_GE(report.jobs_valid, 8);
  EXPECT_EQ(report.jobs_failed, 0);
  std::int64_t front = 0;
  for (const ArenaRow& row : report.scenarios[0].rows) {
    if (row.pareto) ++front;
    if (!row.result.valid || !row.result.error.empty()) {
      EXPECT_FALSE(row.pareto);
    }
  }
  EXPECT_GE(front, 1);
  EXPECT_LT(front, static_cast<std::int64_t>(report.scenarios[0].rows.size()))
      << "a front containing every row compares nothing";
  const std::string md = report.to_markdown();
  EXPECT_NE(md.find("| solver |"), std::string::npos);
  EXPECT_NE(md.find(" | * |"), std::string::npos);
}

// ---- batch integration --------------------------------------------------

TEST(Stats, BatchJobsCarryPaletteBytesAndAggregateIntoCallerRegistry) {
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 4; ++i) {
    BatchJob job;
    job.solver = "two_sweep";
    job.generator = "regular";
    job.n = 200;
    job.degree = 6;
    job.seed = static_cast<std::uint64_t>(i + 1);
    jobs.push_back(std::move(job));
  }
  StatsRegistry reg;
  reg.install();
  BatchOptions options;
  options.threads = 2;
  const BatchReport report = run_batch(jobs, options);
  reg.uninstall();

  EXPECT_EQ(report.jobs_valid, 4);
  for (const BatchJobResult& r : report.jobs) {
    EXPECT_GT(r.palette_bytes, 0) << r.label;
    EXPECT_GT(r.t.wall_ns, 0) << r.label;
  }
  EXPECT_EQ(reg.counter("batch.jobs").value, 4);
  EXPECT_EQ(reg.counter("batch.jobs_valid").value, 4);
  EXPECT_EQ(reg.counter("batch.message_bits").value, report.total_bits);
  // Lease accounting depends on the worker count -> kTiming quarantine.
  const std::string stable = reg.to_json(StatDomain::kStable);
  EXPECT_EQ(stable.find("batch.scratch_created"), std::string::npos);
  EXPECT_NE(reg.to_json().find("batch.scratch_created"), std::string::npos);
}

TEST(Stats, BatchResultEqualityIgnoresTimingQuarantine) {
  BatchJobResult a;
  BatchJobResult b;
  a.t.wall_ns = 123;
  b.t.wall_ns = 456;
  b.t.rss_bytes = 1 << 20;
  EXPECT_EQ(a, b);
  b.palette_bytes = 7;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace dcolor
