// perf_smoke: a fast E14 subset run as a ctest (`ctest -L perf_smoke`).
// Guards the two setup-path properties the scale benchmarks rely on:
//
//  1. steady-state palette insertion performs ZERO heap allocations —
//     verified by overriding global operator new with a counter (this is
//     why these tests live in their own binary);
//  2. setup throughput: generating a mid-size graph and building its
//     instance completes well under a generous wall-clock bound (the CI
//     box is one noisy core; the bound is ~20x the expected time, so it
//     catches accidental O(n²) setup, not scheduler jitter).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/palette_store.h"
#include "graph/generators.h"
#include "sim/batch_runner.h"
#include "sim/scheduler.h"
#include "storage/snapshot.h"
#include "util/rng.h"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dcolor {
namespace {

TEST(PerfSmoke, SteadyStatePaletteInsertionAllocatesNothing) {
  const std::size_t n = 50000;
  PaletteStore store;
  store.reserve(n);
  PaletteStore::Scratch scratch;
  auto fill = [&](std::size_t v) {
    // 16-color uniform-defect palettes from a pool of 32 shapes — after
    // warmup every palette is a dedup hit and the arena never grows.
    scratch.colors.clear();
    scratch.defects.clear();
    const Color base = static_cast<Color>(v % 32);
    for (Color c = 0; c < 16; ++c) {
      scratch.colors.push_back(base + c);  // ascending: no sort temporaries
      scratch.defects.push_back(3);
    }
  };
  // Warmup: intern all 32 distinct palettes, size the hash index and the
  // scratch buffers to their high-water marks.
  std::size_t v = 0;
  for (; v < 1000; ++v) {
    fill(v);
    store.push_scratch(scratch);
  }
  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (; v < n; ++v) {
    fill(v);
    store.push_scratch(scratch);
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state push_scratch should not touch the heap";
  EXPECT_EQ(store.size(), n);
  EXPECT_EQ(store.num_palettes(), 32u);
  EXPECT_EQ(store.arena_entries(), 32 * 16);
}

TEST(PerfSmoke, BatchSteadyStateReusesArenas) {
  // The batch runner's steady state rebuilds each job's instance inside
  // the previous job's arenas. Guard: the MARGINAL allocation cost of 8
  // extra identical jobs is below the cost of the first 8 (i.e. the pool
  // amortizes — per-job allocations shrink once arenas exist), and the
  // scratch accounting proves reuse actually happened.
  auto jobs = [](std::size_t count) {
    std::vector<BatchJob> out;
    for (std::size_t i = 0; i < count; ++i) {
      BatchJob job;
      job.solver = "two_sweep";
      job.generator = "regular";
      job.n = 400;
      job.degree = 6;
      job.seed = 1;  // identical jobs: steady state from job 2 onward
      out.push_back(std::move(job));
    }
    return out;
  };
  BatchOptions options;
  options.threads = 1;  // one worker = one arena, pure reuse after job 1
  run_batch(jobs(2), options);  // warm up process-level lazies

  const std::int64_t base = g_allocations.load(std::memory_order_relaxed);
  const BatchReport small = run_batch(jobs(8), options);
  const std::int64_t mid = g_allocations.load(std::memory_order_relaxed);
  const BatchReport big = run_batch(jobs(16), options);
  const std::int64_t end = g_allocations.load(std::memory_order_relaxed);

  const std::int64_t cost8 = mid - base;
  const std::int64_t marginal8 = (end - mid) - cost8;  // jobs 9..16 extra
  EXPECT_LT(marginal8, cost8)
      << "batch steady state regrew its arenas (8 jobs cost " << cost8
      << " allocations, the next 8 cost " << marginal8 + cost8 << ")";

  EXPECT_EQ(small.scratch_created, 1);
  EXPECT_EQ(small.scratch_reused, 7);
  EXPECT_EQ(big.scratch_created, 1);
  EXPECT_EQ(big.scratch_reused, 15);
  EXPECT_EQ(small.jobs_valid, 8);
  EXPECT_EQ(big.jobs_valid, 16);
}

TEST(PerfSmoke, SnapshotReadsAllocateNothingAfterLoad) {
  // The zero-copy contract of the storage seam: once a snapshot is
  // mapped, traversing the borrowed graph and palette arrays must not
  // touch the heap — the bytes in the mapping ARE the arrays. (The load
  // itself allocates: the mapping handle, the heap Graph, the section
  // table. Steady-state reads after it must not.)
  const NodeId n = 20000;
  Rng rng(1800);
  const Graph g = random_near_regular(n, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int d = o.beta();
  const OldcInstance built =
      random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
  const std::string path = "perf_smoke_snapshot.snap";
  save_instance_snapshot(path, built);
  const InstanceSnapshot snap = InstanceSnapshot::load(path);
  const OldcInstance& inst = snap.instance();

  // Warm the pages (page faults are the kernel's business, not the
  // allocator's, but fault-driven lazy work should not skew the count).
  std::int64_t warm_sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : snap.graph().neighbors(v)) warm_sum += u;
  }

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  std::int64_t sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : snap.graph().neighbors(v)) sum += u;
    for (const NodeId u : inst.out_neighbors(v)) sum += u;
    const auto palette = inst.lists[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < palette.size(); ++i) {
      sum += palette.color(i) + palette.defect(i);
    }
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "reading a mapped snapshot should not touch the heap";
  // Keep both sweeps observable so the loops cannot be elided.
  EXPECT_GT(warm_sum, 0);
  EXPECT_GT(sum, warm_sum);
  std::remove(path.c_str());
}

TEST(PerfSmoke, SchedulerHotLoopAllocatesNothing) {
  // The scheduler's allocation contract (sim/scheduler.h): once the
  // per-priority task rings hit their high-water capacity, POD submit,
  // worker dispatch, drain, and fork-join chunk claiming never touch the
  // heap. (The std::function overload is exempt by design.)
  sched::Scheduler scheduler(2);
  std::atomic<std::int64_t> executed{0};
  const auto bump = [](void* ctx, std::int64_t) {
    static_cast<std::atomic<std::int64_t>*>(ctx)->fetch_add(
        1, std::memory_order_relaxed);
  };
  constexpr int kBurst = 512;
  // Warmup: grow the ring past the burst size and run one region so
  // every lazy structure (ring slots, thread-local current pointers)
  // reaches steady state.
  for (int i = 0; i < kBurst; ++i) scheduler.submit(bump, &executed, i);
  scheduler.drain();
  scheduler.parallel_for(16, [&](int) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  executed.store(0, std::memory_order_relaxed);

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < kBurst; ++i) scheduler.submit(bump, &executed, i);
    scheduler.drain();
    scheduler.parallel_for(16, [&](int) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "warm scheduler hot loop touched the heap";
  EXPECT_EQ(executed.load(), 8 * (kBurst + 16));
  const sched::SchedCounters counters = scheduler.counters();
  EXPECT_GE(counters.tasks, 9 * kBurst);
  EXPECT_GE(counters.chunks, 9 * 16);
}

TEST(PerfSmoke, SetupThroughputAtMidScale) {
  using Clock = std::chrono::steady_clock;
  const NodeId n = 65536;
  const auto t0 = Clock::now();
  Rng rng(1800);
  const Graph g = random_near_regular(n, 6, rng);
  Orientation o = Orientation::by_id(g);
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 40, 10, 6, rng);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Clock::now() - t0)
                      .count();
  EXPECT_EQ(inst.lists.size(), static_cast<std::size_t>(n));
  // ~64k nodes of generation + arena build takes well under a second even
  // serial on one core; 10 s only trips on a complexity regression.
  EXPECT_LT(ms, 10000) << "setup path lost its near-linear throughput";

  // Uniform-list workloads collapse to O(distinct palettes + n) memory:
  // every node of the (Δ+1)-instance shares ONE palette.
  const ListDefectiveInstance shared = delta_plus_one_instance(g);
  EXPECT_EQ(shared.lists.num_palettes(), 1u);
  EXPECT_EQ(shared.lists.arena_entries(), g.max_degree() + 1);
  EXPECT_EQ(shared.lists.dedup_hits(), static_cast<std::int64_t>(n) - 1);
}

}  // namespace
}  // namespace dcolor
