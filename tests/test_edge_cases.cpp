// Edge cases and robustness: tiny graphs, degenerate parameters, and the
// general-λ color space reduction.
#include <gtest/gtest.h>

#include <cmath>

#include "coloring/kuhn_defective.h"
#include "coloring/linial.h"
#include "coloring/poly_reduce.h"
#include "core/color_space_reduction.h"
#include "core/congest_oldc.h"
#include "core/fast_two_sweep.h"
#include "core/instance.h"
#include "core/list_coloring.h"
#include "core/theta_color_space.h"
#include "core/theta_coloring.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "graph/line_graph.h"
#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {
namespace {

// ---- Tiny graphs ------------------------------------------------------------

TEST(EdgeCases, SingleNodeEverywhere) {
  const Graph g = Graph::from_edges(1, {});
  const Orientation o = Orientation::by_id(g);
  EXPECT_TRUE(is_proper_coloring(g, linial_from_ids(g, o).colors));

  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 1;
  inst.orientation = Orientation::by_id(g);
  inst.lists.push_back(ColorList::zero_defect({0}));
  const ColoringResult res = two_sweep(inst, {0}, 1, 1);
  EXPECT_EQ(res.colors, (std::vector<Color>{0}));

  const ListDefectiveInstance dp1 = delta_plus_one_instance(g);
  EXPECT_TRUE(is_proper_coloring(
      g, solve_degree_plus_one(
             dp1, ListColoringOptions{PartitionEngine::kBeg18Oracle})
             .colors));
}

TEST(EdgeCases, EdgelessGraph) {
  const Graph g = Graph::from_edges(6, {});
  const ListDefectiveInstance inst = delta_plus_one_instance(g);
  const ColoringResult res = solve_degree_plus_one(inst);
  EXPECT_TRUE(all_colored(res.colors));
}

TEST(EdgeCases, SingleEdge) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  const ColoringResult res =
      solve_degree_plus_one(delta_plus_one_instance(g));
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
}

TEST(EdgeCases, StarGraphHighDegreeCenter) {
  const Graph g = complete_bipartite(1, 30);
  const ColoringResult res = solve_degree_plus_one(
      delta_plus_one_instance(g),
      ListColoringOptions{PartitionEngine::kBeg18Oracle});
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
}

TEST(EdgeCases, ColorSpaceOfSizeOne) {
  // Everyone must take color 0; feasible only with defects >= degree.
  const Graph g = complete(4);
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 1;
  inst.orientation = Orientation::by_id(g);
  inst.lists.assign(4, ColorList::uniform({0}, 3));
  const std::vector<Color> init = {0, 1, 2, 3};
  const ColoringResult res = two_sweep(inst, init, 4, 1);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  EXPECT_EQ(num_colors_used(res.colors), 1);
}

// ---- poly schedule budget properties ----------------------------------------

TEST(PolyScheduleDefective, GeometricBudgetNeverExceedsAlpha) {
  // Per-step alpha_i implied by k_i is D_i/k_i; their sum must stay <= α.
  for (double alpha : {1.0, 0.5, 0.25, 0.1, 0.05}) {
    for (std::uint64_t q : {std::uint64_t{100}, std::uint64_t{100000},
                            std::uint64_t{1} << 40}) {
      const auto schedule = poly_schedule_defective(q, alpha);
      double spent = 0;
      std::uint64_t space = std::max<std::uint64_t>(2, q);
      for (const auto& step : schedule) {
        EXPECT_LT(step.k * step.k, space);  // every step shrinks
        spent += static_cast<double>(std::max(step.degree, 1)) /
                 static_cast<double>(step.k);
        space = step.k * step.k;
      }
      EXPECT_LE(spent, alpha + 1e-9) << "alpha=" << alpha << " q=" << q;
    }
  }
}

TEST(PolyScheduleDefective, FinalSpaceIsInverseAlphaSquared) {
  for (double alpha : {0.5, 0.25, 0.125}) {
    const auto schedule = poly_schedule_defective(std::uint64_t{1} << 30,
                                                  alpha);
    ASSERT_FALSE(schedule.empty());
    const double final_space = static_cast<double>(
        schedule.back().k * schedule.back().k);
    // Final step uses ~alpha/2: k ≈ 2D/alpha with small D.
    EXPECT_LE(final_space, 400.0 / (alpha * alpha));
  }
}

// ---- General λ color space reduction -----------------------------------------

class LambdaSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(LambdaSweep, ColorSpaceReductionWorksForAnyLambda) {
  const std::int64_t lambda = GetParam();
  Rng rng(7000 + static_cast<std::uint64_t>(lambda));
  const Graph g = random_near_regular(120, 4, rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  const std::int64_t C = 4096;
  // Base: plain Two-Sweep with p = ⌈√λ⌉; κ(λ) = p (ε = 0).
  const auto p = static_cast<int>(ceil_sqrt(static_cast<std::uint64_t>(lambda)));
  const double kappa = p;
  // Levels L with λ^L >= C; required slack κ^L.
  int levels = 1;
  {
    std::int64_t cap = lambda;
    while (cap < C) {
      cap *= lambda;
      ++levels;
    }
  }
  const double required = std::pow(kappa, levels);
  const int defect = 3;
  const auto list_size = static_cast<int>(std::min<double>(
      C, std::ceil(required * beta / (defect + 1)) + 1));
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), C, list_size, defect, rng);

  const LinialResult linial = linial_from_ids(g, Orientation::by_id(g));
  const OldcSolver base = [&](const OldcInstance& sub,
                              const std::vector<Color>& initial,
                              std::int64_t sub_q) {
    return two_sweep(sub, initial, sub_q, p);
  };
  const ColoringResult res = color_space_reduction(
      inst, linial.colors, linial.num_colors, lambda, kappa, base);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
}

// λ = 2 is degenerate: κ(2) = 2 per level and log₂C levels make the
// required slack κ^L = C itself — no list fits. λ >= 3 keeps κ^L
// sublinear in C (the paper picks λ = 4, where κ^L ≈ 2√C).
INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweep,
                         ::testing::Values(3, 4, 8, 16, 64));

// ---- Lemma 4.6 direct --------------------------------------------------------

TEST(Lemma46, SlackRequirementFormula) {
  // 2σ = 84·θ·(⌈logΔ⌉+1).
  EXPECT_EQ(lemma46_slack_requirement(2, 1), 84 * 2);
  EXPECT_EQ(lemma46_slack_requirement(8, 2), 84 * 2 * 4);
  EXPECT_EQ(lemma46_slack_requirement(9, 1), 84 * 5);
}

TEST(Lemma46, StepSolvesHighSlackInstance) {
  // Small θ-bounded graph, instance with slack > 2σ; the step must halve
  // the color space and recombine into a valid arbdefective coloring.
  const Graph g = disjoint_cliques(6, 3);  // θ = 1, Δ = 2
  const int theta = 1;
  const std::int64_t required = lemma46_slack_requirement(g.delta_paper(),
                                                          theta);
  const std::int64_t C = 256;
  const int defect = 11;
  // weight = |L|·12 > required·deg (deg = 2): |L| > required/6.
  const auto list_size =
      static_cast<int>(required * g.max_degree() / (defect + 1) + 2);
  Rng rng(7100);
  const ArbdefectiveInstance inst =
      random_uniform_list_defective(g, C, list_size, defect, rng);
  ASSERT_GT(inst.slack(), static_cast<double>(required));

  const ArbSolver pa2 = [](const ArbdefectiveInstance& sub) {
    return solve_arbdefective_slack1(
        sub, ListColoringOptions{PartitionEngine::kBeg18Oracle});
  };
  const ArbdefectiveResult res = theta_color_space_step(inst, theta, pa2);
  EXPECT_TRUE(validate_arbdefective(inst, res));
}

// ---- Theorem 1.5 quasi branch on a line graph ---------------------------------

TEST(Theorem15, QuasiPolylogBranchOnTinyLineGraph) {
  const Graph g = line_graph(cycle(8));  // 2-regular, θ = 2
  ThetaColoringOptions options;
  options.branch = ThetaColoringOptions::Branch::kQuasiPolylog;
  options.base_color_threshold = 2;
  const ColoringResult res = theta_delta_plus_one(g, 2, options);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
}

// ---- Degenerate sizes through the fuzz generators -----------------------------

TEST(EdgeCases, GeneratorsAcceptZeroAndOneNode) {
  // The fuzz harness draws from these four generators; n = 0 and n = 1
  // must yield valid (edgeless) graphs, not crash. random_tree(0) used to
  // reject n = 0 outright.
  Rng rng(7300);
  for (const NodeId n : {0, 1}) {
    EXPECT_EQ(gnp(n, 0.5, rng).num_nodes(), n);
    EXPECT_EQ(random_tree(n, rng).num_nodes(), n);
    EXPECT_EQ(random_near_regular(n, 3, rng).num_nodes(), n);
    EXPECT_EQ(random_geometric(n, 0.5, rng).num_nodes(), n);
    EXPECT_EQ(gnp(n, 0.5, rng).num_edges(), 0);
  }
}

TEST(EdgeCases, EmptyInstanceThroughAllSolvers) {
  const Graph g = Graph::from_edges(0, {});
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 1;
  inst.orientation = Orientation::by_id(g);
  const std::vector<Color> init;
  EXPECT_TRUE(two_sweep(inst, init, 1, 1).colors.empty());
  EXPECT_TRUE(fast_two_sweep(inst, init, 1, 2, 0.5).colors.empty());
  EXPECT_TRUE(congest_oldc(inst, init, 1).colors.empty());
}

TEST(EdgeCases, EmptyListAtSinkIsRejected) {
  // A node with an empty palette can never be colored; the precondition
  // check must say so instead of looping or emitting kNoColor.
  const Graph g = Graph::from_edges(1, {});
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 1;
  inst.orientation = Orientation::by_id(g);
  inst.lists.push_back(ColorList());
  EXPECT_THROW(two_sweep(inst, {0}, 1, 1), CheckError);
  EXPECT_THROW(fast_two_sweep(inst, {0}, 1, 2, 0.5), CheckError);
}

TEST(EdgeCases, SingleColorListsForceOneColor) {
  // Identical single-color lists with defect >= outdegree: everyone must
  // take that color and the result is still a valid OLDC solution.
  const Graph g = path(4);
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 8;
  inst.orientation = Orientation::by_id(g);
  inst.lists.assign(4, ColorList::uniform({5}, 1));
  const std::vector<Color> init = {0, 1, 0, 1};
  const ColoringResult res = two_sweep(inst, init, 2, 1);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  EXPECT_EQ(res.colors, (std::vector<Color>{5, 5, 5, 5}));
}

// ---- Congest OLDC at tiny color spaces ----------------------------------------

TEST(CongestOldc, TinyColorSpacesSolve) {
  // Regression probe for the color space reduction's level arithmetic at
  // C < λ (a single level must cover the whole space): C from 1 to 5 on
  // K_2 with full lists and enough defect for the Theorem 1.2 premise
  // weight = 3C >= 3·√C·β (β = 1).
  for (std::int64_t C = 1; C <= 5; ++C) {
    const Graph g = complete(2);
    OldcInstance inst;
    inst.graph = &g;
    inst.color_space = C;
    inst.orientation = Orientation::by_id(g);
    std::vector<Color> all(static_cast<std::size_t>(C));
    for (std::size_t i = 0; i < all.size(); ++i)
      all[i] = static_cast<Color>(i);
    inst.lists.assign(2, ColorList::uniform(all, 2));
    const ColoringResult res = congest_oldc(inst, {0, 1}, 2);
    EXPECT_TRUE(validate_oldc(inst, res.colors)) << "C=" << C;
  }
}

// ---- Congest OLDC with symmetric instances ------------------------------------

TEST(CongestOldc, SymmetricInstanceSolvedUndirected) {
  Rng rng(7200);
  const Graph g = random_near_regular(150, 4, rng);
  const std::int64_t C = 256;
  const int delta = g.max_degree();
  const int defect = 2;
  const auto list_size = static_cast<int>(
      std::ceil(3.0 * std::sqrt(static_cast<double>(C)) * delta /
                (defect + 1)) +
      1);
  OldcInstance inst =
      random_uniform_oldc(g, Orientation::by_id(g), C, list_size, defect, rng);
  inst.symmetric = true;  // β_v = deg(v): the premise uses full degrees
  const LinialResult linial = linial_from_ids(g, Orientation::by_id(g));
  const ColoringResult res =
      congest_oldc(inst, linial.colors, linial.num_colors);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  // Symmetric validity == undirected defect bound.
  const auto defects = undirected_defects(g, res.colors);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(defects[static_cast<std::size_t>(v)], defect);
  }
}

}  // namespace
}  // namespace dcolor
