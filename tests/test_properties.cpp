// Property-style sweeps: the full algorithm stack across a matrix of
// graph families and seeds. Every case exercises the end-to-end pipeline
// and asserts the paper's guarantees (properness, defect bounds, slack
// preservation, validity), not just "it ran".
#include <gtest/gtest.h>

#include <cmath>

#include "coloring/kuhn_defective.h"
#include "coloring/linial.h"
#include "core/congest_oldc.h"
#include "core/instance.h"
#include "core/list_coloring.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "graph/line_graph.h"
#include "util/logstar.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {
namespace {

struct FamilyCase {
  const char* name;
  int family;
  std::uint64_t seed;
};

Graph build_family(const FamilyCase& c, Rng& rng) {
  switch (c.family) {
    case 0:
      return random_near_regular(220, 4, rng);
    case 1:
      return random_near_regular(180, 12, rng);
    case 2:
      return gnp(200, 0.03, rng);
    case 3:
      return random_tree(200, rng);
    case 4:
      return grid(14, 14);
    case 5:
      return cycle_power(150, 4);
    case 6:
      return line_graph(gnp(28, 0.22, rng));
    case 7:
      return random_geometric(220, 0.09, rng);
    default:
      return hypercube(7);
  }
}

class FamilySweep : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(FamilySweep, LinialIsProperAndSmall) {
  Rng rng(GetParam().seed);
  const Graph g = build_family(GetParam(), rng);
  const Orientation o = Orientation::by_id(g);
  const LinialResult res = linial_from_ids(g, o);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  const int beta = o.beta();
  EXPECT_LE(res.num_colors,
            std::max<std::int64_t>(g.num_nodes(), 16 * beta * beta + 64));
  EXPECT_LE(res.metrics.rounds,
            log_star(static_cast<std::uint64_t>(
                std::max<NodeId>(2, g.num_nodes()))) +
                6);
}

TEST_P(FamilySweep, KuhnDefectiveRespectsAlpha) {
  Rng rng(GetParam().seed + 1);
  const Graph g = build_family(GetParam(), rng);
  const Orientation o = Orientation::by_id(g);
  const double alpha = 0.3;
  const auto res = kuhn_defective_from_ids(g, o, alpha);
  ASSERT_TRUE(all_colored(res.colors));
  const auto defects = oriented_defects(o, res.colors);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(defects[static_cast<std::size_t>(v)],
              static_cast<int>(alpha * o.beta_v(v)));
  }
}

TEST_P(FamilySweep, TwoSweepSolvesTightUniformInstance) {
  Rng rng(GetParam().seed + 2);
  const Graph g = build_family(GetParam(), rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  const int defect = std::max(1, beta / 6);
  const int p = beta / (defect + 1) + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst = random_uniform_oldc(
      g, std::move(o), 3 * list_size, list_size, defect, rng);
  const LinialResult linial =
      linial_from_ids(g, Orientation::by_id(g));
  const ColoringResult res =
      two_sweep(inst, linial.colors, linial.num_colors, p);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  EXPECT_LE(res.metrics.rounds, 2 * linial.num_colors + 2);
}

TEST_P(FamilySweep, DegPlusOneListColoringIsProper) {
  Rng rng(GetParam().seed + 3);
  const Graph g = build_family(GetParam(), rng);
  const std::int64_t C = 2 * (g.max_degree() + 2);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
  const ColoringResult res = solve_degree_plus_one(
      inst, ListColoringOptions{PartitionEngine::kBeg18Oracle});
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  EXPECT_TRUE(validate_list_defective(inst, res.colors));
}

TEST_P(FamilySweep, ArbdefectiveSlack1WithDefectsIsValid) {
  Rng rng(GetParam().seed + 4);
  const Graph g = build_family(GetParam(), rng);
  const int delta = std::max(1, g.max_degree());
  // Slack-1 instance with mixed defects: lists of ⌈Δ/2⌉+1 colors with
  // defect 1 — weight = 2(⌈Δ/2⌉+1) > Δ >= deg(v).
  const int list_size = (delta + 1) / 2 + 1;
  const ArbdefectiveInstance inst = random_uniform_list_defective(
      g, 4 * delta + 8, list_size, 1, rng);
  const ArbdefectiveResult res = solve_arbdefective_slack1(
      inst, ListColoringOptions{PartitionEngine::kBeg18Oracle});
  EXPECT_TRUE(validate_arbdefective(inst, res));
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilySweep,
    ::testing::Values(FamilyCase{"regular4_s1", 0, 1},
                      FamilyCase{"regular4_s2", 0, 2},
                      FamilyCase{"regular4_s3", 0, 3},
                      FamilyCase{"regular12_s1", 1, 1},
                      FamilyCase{"regular12_s2", 1, 2},
                      FamilyCase{"regular12_s3", 1, 3},
                      FamilyCase{"gnp_s1", 2, 1}, FamilyCase{"gnp_s2", 2, 2},
                      FamilyCase{"gnp_s3", 2, 3},
                      FamilyCase{"tree_s1", 3, 1},
                      FamilyCase{"tree_s2", 3, 2},
                      FamilyCase{"grid_s1", 4, 1},
                      FamilyCase{"cyclepow_s1", 5, 1},
                      FamilyCase{"cyclepow_s2", 5, 2},
                      FamilyCase{"linegraph_s1", 6, 1},
                      FamilyCase{"linegraph_s2", 6, 2},
                      FamilyCase{"linegraph_s3", 6, 3},
                      FamilyCase{"geometric_s1", 7, 1},
                      FamilyCase{"geometric_s2", 7, 2},
                      FamilyCase{"hypercube", 8, 1}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.name;
    });

// ---- CONGEST discipline across the Theorem 1.2 pipeline --------------------

class CongestBudgetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CongestBudgetSweep, MessagesStayLogarithmic) {
  Rng rng(GetParam());
  const Graph g = random_near_regular(200, 4, rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  const std::int64_t C = 2048;
  const int defect = 2;
  const auto list_size = static_cast<int>(
      std::ceil(3.0 * std::sqrt(static_cast<double>(C)) * beta /
                (defect + 1)) +
      1);
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), C, list_size, defect, rng);
  const LinialResult linial = linial_from_ids(g, Orientation::by_id(g));
  const ColoringResult res =
      congest_oldc(inst, linial.colors, linial.num_colors);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  const int budget =
      4 * (ceil_log2(static_cast<std::uint64_t>(linial.num_colors)) +
           ceil_log2(static_cast<std::uint64_t>(C)));
  EXPECT_LE(res.metrics.max_message_bits, budget);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CongestBudgetSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---- Determinism -------------------------------------------------------------

TEST(Determinism, SameSeedSameResultAcrossTheStack) {
  // The whole library is deterministic given the seed — a load-bearing
  // property for the experiment harness.
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    const Graph g = random_near_regular(150, 8, rng);
    const std::int64_t C = 2 * (g.max_degree() + 1);
    const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
    const ColoringResult res = solve_degree_plus_one(
        inst, ListColoringOptions{PartitionEngine::kBeg18Oracle});
    return std::pair{res.colors, res.metrics.rounds};
  };
  const auto a = run_once(99);
  const auto b = run_once(99);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run_once(100);
  EXPECT_NE(a.first, c.first);  // different seed, different instance
}

}  // namespace
}  // namespace dcolor
