// Tests for the baseline algorithms the experiment suite compares against.
#include <gtest/gtest.h>

#include "baselines/be09_two_sweep.h"
#include "baselines/greedy.h"
#include "baselines/luby.h"
#include "baselines/mt20_style.h"
#include "baselines/one_sweep_defective.h"
#include "coloring/linial.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "graph/independence.h"
#include "graph/line_graph.h"
#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(GreedyBaseline, DeltaPlusOneIsProper) {
  Rng rng(80);
  const Graph g = gnp(200, 0.05, rng);
  const ColoringResult res = greedy_delta_plus_one(g);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  for (Color c : res.colors) EXPECT_LE(c, g.max_degree());
  EXPECT_EQ(res.metrics.rounds, g.num_nodes());
}

TEST(GreedyBaseline, ArbdefectiveRespectsLists) {
  Rng rng(81);
  const Graph g = random_near_regular(150, 10, rng);
  const ArbdefectiveInstance inst =
      random_uniform_list_defective(g, 64, 6, 1, rng);  // weight 12 > 10
  const ArbdefectiveResult res = greedy_arbdefective(inst);
  EXPECT_TRUE(validate_arbdefective(inst, res));
}

TEST(GreedyBaseline, RejectsNoSlack) {
  Rng rng(82);
  const Graph g = complete(8);
  const ArbdefectiveInstance inst =
      random_uniform_list_defective(g, 32, 3, 0, rng);
  EXPECT_THROW(greedy_arbdefective(inst), CheckError);
}

class Be09Test : public ::testing::TestWithParam<int> {};

TEST_P(Be09Test, UndirectedDefectWithinBound) {
  const int d = GetParam();
  Rng rng(83 + static_cast<std::uint64_t>(d));
  const Graph g = random_near_regular(250, 16, rng);
  const Orientation o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, o);
  const int delta = g.max_degree();
  const int k = static_cast<int>(ceil_div(delta + 1, d + 1));
  const auto res =
      be09_two_sweep_undirected(g, linial.colors, linial.num_colors, k);
  EXPECT_EQ(res.num_colors, static_cast<std::int64_t>(k) * k);
  // Defect bound ⌊E/k⌋+⌊L/k⌋ <= ⌊deg/k⌋ <= d (paper: d-defective
  // ⌈(Δ+1)/(d+1)⌉² colors).
  const int defect = max_undirected_defect(g, res.colors);
  EXPECT_LE(defect, d);
}

INSTANTIATE_TEST_SUITE_P(Defects, Be09Test, ::testing::Values(1, 2, 4, 8));

TEST(Be09, OrientedVariantBoundsOutDefect) {
  Rng rng(84);
  const Graph g = random_near_regular(250, 20, rng);
  const Orientation o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, o);
  const int beta = o.beta();
  for (int d : {2, 4}) {
    const int k = static_cast<int>(ceil_div(beta, d));
    const auto res =
        be09_two_sweep_oriented(g, o, linial.colors, linial.num_colors, k);
    EXPECT_LE(max_oriented_defect(o, res.colors), d);
    EXPECT_EQ(res.num_colors, static_cast<std::int64_t>(k) * k);
  }
}

TEST(OneSweepTheta, DefectBoundOnThetaGraphs) {
  Rng rng(85);
  const Graph g = line_graph(gnp(30, 0.25, rng));  // θ <= 2
  const Orientation o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, o);
  const int delta = g.max_degree();
  for (int k : {2, 4, 8}) {
    const auto res =
        one_sweep_theta_defective(g, linial.colors, linial.num_colors, k);
    EXPECT_TRUE(all_colored(res.colors));
    EXPECT_LE(max_undirected_defect(g, res.colors),
              (2 * (delta / k) + 1) * 2);
  }
}

TEST(Luby, ColorsProperlyAndFast) {
  Rng rng(86);
  const Graph g = gnp(300, 0.05, rng);
  Rng algo_rng(87);
  const ColoringResult res = luby_delta_plus_one(g, algo_rng);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  // O(log n) w.h.p.; generous cap.
  EXPECT_LE(res.metrics.rounds, 12 * ceil_log2(std::uint64_t{300}));
}

TEST(Luby, ListVariantStaysInLists) {
  Rng rng(88);
  const Graph g = random_near_regular(200, 8, rng);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, 40, rng);
  Rng algo_rng(89);
  const ColoringResult res = luby_list_coloring(inst, algo_rng);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  EXPECT_TRUE(validate_list_defective(inst, res.colors));
}

TEST(Fk23aFormulas, ListSizeGapGrowsWithBeta) {
  // The paper: [FK23a] needs Ω((β/d)²·(logβ+…)) colors, Theorem 1.1 only
  // ~(β/d)². The ratio must grow with β.
  const std::int64_t C = 1 << 16, q = 1 << 20;
  double prev_ratio = 0;
  for (int beta : {8, 32, 128, 512}) {
    const int d = 1;
    const auto ours = two_sweep_min_list_size(beta, d);
    const auto theirs = fk23a_min_list_size(beta, d, C, q);
    EXPECT_GT(theirs, ours);
    const double ratio =
        static_cast<double>(theirs) / static_cast<double>(ours);
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
}

TEST(Fk23aFormulas, TwoSweepMinListSizeMatchesEq2) {
  // Spot-check: the returned Λ satisfies Eq. (2) and Λ−1 does not.
  for (int beta : {4, 10, 31}) {
    for (int d : {0, 1, 3}) {
      const std::int64_t p = beta / (d + 1) + 1;  // implementation's choice
      const std::int64_t lambda = two_sweep_min_list_size(beta, d);
      auto ok = [&](std::int64_t l) {
        return l * (d + 1) * p > std::max(p * p, l) * beta;
      };
      EXPECT_TRUE(ok(lambda)) << beta << " " << d;
      if (lambda > 1) {
        EXPECT_FALSE(ok(lambda - 1)) << beta << " " << d;
      }
    }
  }
}

TEST(Phase1Selection, SortAndSubsetSearchAgreeOnScore) {
  // Both rules must pick subsets with the same (optimal) Eq. (4) margin —
  // the subset itself may differ under ties.
  Rng rng(90);
  for (int trial = 0; trial < 20; ++trial) {
    const int lambda = 3 + static_cast<int>(rng.below(10));
    const int p = 1 + static_cast<int>(rng.below(4));
    std::vector<Color> colors(static_cast<std::size_t>(lambda));
    std::vector<int> defects(static_cast<std::size_t>(lambda));
    std::vector<int> k_counts(static_cast<std::size_t>(lambda));
    for (int i = 0; i < lambda; ++i) {
      colors[static_cast<std::size_t>(i)] = i;
      defects[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(6));
      k_counts[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(4));
    }
    const ColorList list(colors, defects);
    const int n_greater = static_cast<int>(rng.below(5));
    const auto a = sort_based_phase1(list, k_counts, p, n_greater);
    const auto b = subset_search_phase1(list, k_counts, p, n_greater);
    auto score = [&](const std::vector<Color>& subset) {
      std::int64_t s = -n_greater;
      for (Color c : subset) {
        const auto it =
            std::lower_bound(list.colors().begin(), list.colors().end(), c);
        const auto i = static_cast<std::size_t>(it - list.colors().begin());
        s += list.defect(i) + 1 - k_counts[i];
      }
      return s;
    };
    EXPECT_EQ(score(a.subset), score(b.subset));
    // And the compute gap: subset search does exponentially more work.
    EXPECT_GT(b.ops, a.ops);
  }
}

}  // namespace
}  // namespace dcolor
