#!/bin/sh
# Snapshot byte-determinism: two independent builds of the same generator
# spec + seed must produce byte-identical snapshot files (the format
# zero-fills all padding and the arena layout is deterministic, so `cmp`
# is a valid equality check). Guards against accidental nondeterminism —
# uninitialized padding, hash-order-dependent arena layout, timestamps —
# sneaking into the writer.
set -e
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# Full OLDC instance (graph + orientation + palette arena).
"$CLI" --cmd=snapshot --family=regular --n=2000 --degree=6 --seed=1800 \
       --defect=2 --save="$DIR/a.snap"
"$CLI" --cmd=snapshot --family=regular --n=2000 --degree=6 --seed=1800 \
       --defect=2 --save="$DIR/b.snap"
cmp "$DIR/a.snap" "$DIR/b.snap" || {
  echo "snapshot_determinism: FAIL — instance snapshots differ" >&2
  exit 1; }

# Graph-only snapshot through the text round-trip (generate -> save).
"$CLI" --cmd=generate --family=gnp --n=500 --degree=7 --seed=42 \
       --out="$DIR/g.txt"
"$CLI" --cmd=snapshot --graph="$DIR/g.txt" --save="$DIR/ga.snap"
"$CLI" --cmd=snapshot --graph="$DIR/g.txt" --save="$DIR/gb.snap"
cmp "$DIR/ga.snap" "$DIR/gb.snap" || {
  echo "snapshot_determinism: FAIL — graph snapshots differ" >&2
  exit 1; }

# A different seed must NOT collide (cmp succeeding here would mean the
# snapshot ignores its inputs).
"$CLI" --cmd=snapshot --family=regular --n=2000 --degree=6 --seed=1801 \
       --defect=2 --save="$DIR/c.snap"
if cmp -s "$DIR/a.snap" "$DIR/c.snap"; then
  echo "snapshot_determinism: FAIL — different seeds, identical bytes" >&2
  exit 1
fi

echo "snapshot_determinism: OK"
