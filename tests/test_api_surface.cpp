// Coverage for the remaining public-API corners: instance predicates,
// metrics reporting, heterogeneous generators, and the umbrella header.
#include <gtest/gtest.h>

#include <cmath>

#include "dcolor.h"  // the umbrella header must compile stand-alone
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(InstancePredicates, SatisfiesTheorem11MatchesManualCheck) {
  Rng rng(8001);
  const Graph g = random_near_regular(60, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  const int p = beta + 1;
  // Exactly at the threshold: |L| = p²+p+1, defect 0.
  const OldcInstance ok = random_uniform_oldc(g, std::move(o),
                                              4 * (p * p + p + 1),
                                              p * p + p + 1, 0, rng);
  EXPECT_TRUE(ok.satisfies_theorem11(p, 0.0));
  // Shrinking ε's headroom: ε = 1 doubles the requirement and must fail.
  EXPECT_FALSE(ok.satisfies_theorem11(p, 1.0));
}

TEST(InstancePredicates, MinWeightOverBeta) {
  const Graph g = path(3);
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 8;
  inst.orientation = Orientation::by_id(g);  // β = (1,1,1) effectively
  inst.lists.push_back(ColorList::uniform({0, 1}, 1));  // weight 4
  inst.lists.push_back(ColorList::uniform({0, 1}, 0));  // weight 2
  inst.lists.push_back(ColorList::uniform({0}, 0));     // weight 1
  EXPECT_DOUBLE_EQ(inst.min_weight_over_beta(), 1.0);
  EXPECT_EQ(inst.beta(), 1);
}

TEST(InstancePredicates, SymmetricBetaUsesDegrees) {
  const Graph g = complete(4);
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 2;
  inst.symmetric = true;
  inst.lists.assign(4, ColorList::uniform({0, 1}, 3));
  EXPECT_EQ(inst.beta(), 3);
  EXPECT_EQ(inst.beta_v(0), 3);
  EXPECT_EQ(inst.effective_outdegree(0), 3);
  EXPECT_TRUE(inst.is_out(0, 1));
  EXPECT_TRUE(inst.is_out(1, 0));  // symmetric: both directions
}

TEST(InstancePredicates, Theorem12Predicate) {
  Rng rng(8002);
  const Graph g = random_near_regular(60, 4, rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  // Zero-defect lists need |L| >= 3·√C·β, so C must exceed 9β².
  const std::int64_t C = 9 * beta * beta * 2;
  const auto needed = static_cast<int>(
      std::ceil(3 * std::sqrt(static_cast<double>(C)) * beta));
  ASSERT_LE(needed, C);
  OldcInstance yes = random_uniform_oldc(g, std::move(o), C, needed, 0, rng);
  EXPECT_TRUE(yes.satisfies_theorem12());
  Orientation o2 = Orientation::by_id(g);
  OldcInstance no = random_uniform_oldc(g, std::move(o2), C, 4, 0, rng);
  EXPECT_FALSE(no.satisfies_theorem12());
}

TEST(Generators, HeterogeneousOldcMeetsPremise) {
  Rng rng(8003);
  const Graph g = random_near_regular(100, 10, rng);
  for (double eps : {0.0, 0.5}) {
    Orientation o = Orientation::by_id(g);
    const OldcInstance inst =
        random_heterogeneous_oldc(g, std::move(o), 4000, 4, eps, rng);
    EXPECT_TRUE(inst.satisfies_theorem11(4, eps)) << "eps=" << eps;
    EXPECT_LE(inst.max_list_size(), 4u * 4u * 4u + 16u);
  }
}

TEST(Metrics, SummaryMentionsEveryField) {
  const RoundMetrics m{.rounds = 12,
                       .executed_rounds = 9,
                       .peak_active_nodes = 33,
                       .max_message_bits = 7,
                       .total_messages = 100,
                       .total_message_bits = 700,
                       .local_compute_ops = 42};
  const std::string s = m.summary();
  EXPECT_NE(s.find("rounds=12"), std::string::npos);
  EXPECT_NE(s.find("executed=9"), std::string::npos);
  EXPECT_NE(s.find("peak_active=33"), std::string::npos);
  EXPECT_NE(s.find("max_msg_bits=7"), std::string::npos);
  EXPECT_NE(s.find("msgs=100"), std::string::npos);
  EXPECT_NE(s.find("compute=42"), std::string::npos);
}

TEST(ComputeOps, TwoSweepReportsNearLinearWork) {
  // The §1.1 claim quantified: per-node ops ≈ Δ·Λ-ish, not exponential.
  Rng rng(8004);
  const Graph g = random_near_regular(200, 8, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 4 * list_size, list_size, 0, rng);
  const LinialResult linial = linial_from_ids(g, Orientation::by_id(g));
  const ColoringResult res =
      two_sweep(inst, linial.colors, linial.num_colors, p);
  EXPECT_GT(res.metrics.local_compute_ops, 0);
  // Generous near-linear budget: nodes × Λ × (logΛ + Δ).
  const std::int64_t budget =
      static_cast<std::int64_t>(g.num_nodes()) * list_size *
      (8 + g.max_degree());
  EXPECT_LT(res.metrics.local_compute_ops, budget);
}

TEST(Hypergraph, FromGraphIsTwoUniform) {
  Rng rng(8005);
  const Graph g = gnp(30, 0.2, rng);
  const Hypergraph h = from_graph(g);
  EXPECT_EQ(static_cast<std::int64_t>(h.edges().size()), g.num_edges());
  EXPECT_EQ(h.rank(), 2);
  EXPECT_EQ(h.max_vertex_degree(), g.max_degree());
}

TEST(GraphSummary, MentionsShape) {
  const Graph g = cycle(5);
  const std::string s = g.summary();
  EXPECT_NE(s.find("n=5"), std::string::npos);
  EXPECT_NE(s.find("m=5"), std::string::npos);
}

TEST(OrientationApi, BetaConventionNeverZero) {
  const Graph g = Graph::from_edges(3, {});
  const Orientation o = Orientation::by_id(g);
  EXPECT_EQ(o.beta(), 1);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(o.beta_v(v), 1);
}

TEST(SlackApi, ListDefectiveSlackValue) {
  const Graph g = complete(3);  // deg 2 everywhere
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = 8;
  inst.lists.assign(3, ColorList::uniform({0, 1, 2}, 1));  // weight 6
  EXPECT_DOUBLE_EQ(inst.slack(), 3.0);
}

}  // namespace
}  // namespace dcolor
