// Storage seam + snapshot format tests (`ctest -L storage`):
//
//  * StorageVec owned/borrowed semantics — the invariant the whole seam
//    rests on: borrowed views read identically and mutation CHECK-fails.
//  * MappedFile bounds/alignment guards and the create -> sync -> remap
//    roundtrip.
//  * Snapshot roundtrips: graph-only and full OLDC / list-defective
//    instances reload zero-copy and solve to BIT-IDENTICAL colors across
//    {scalar, vector} engines x {1, 2, 4, 8} simulator threads.
//  * Superblock rejection: truncation, magic/version/endian mismatch,
//    checksum corruption, file-size lies — each fails loudly at load;
//    payload corruption is caught by the on-demand verify_payload pass.
//  * Determinism: two independent builds of the same spec+seed produce
//    byte-identical snapshot files.
//  * SnapshotCache: build-exactly-once accounting in-memory and across
//    file-backed cache generations, plus stale-file fallback.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "core/fast_two_sweep.h"
#include "core/instance.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "io/instance_io.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "storage/mapped_file.h"
#include "storage/snapshot.h"
#include "storage/snapshot_cache.h"
#include "storage/storage_vec.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          ("dcolor_storage_" + stem + "_" + std::to_string(::getpid())))
      .string();
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

/// The e14 recipe: a near-regular instance satisfying Eq. (2) for
/// fast_two_sweep(p=2, eps=0.5).
OldcInstance build_instance(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  Orientation o = Orientation::by_id(g);
  const int d = o.beta();
  return random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
}

// ---- StorageVec ---------------------------------------------------------

TEST(StorageVec, OwnedBehavesLikeVector) {
  StorageVec<int> v;
  v.push_back(3);
  v.push_back(1);
  v.resize(4, 9);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v[3], 9);
  v[1] = 7;
  EXPECT_EQ(v[1], 7);
  v = std::vector<int>{5, 6};
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 6);
  EXPECT_FALSE(v.borrowed());
}

TEST(StorageVec, AdoptBorrowsInPlaceAndRejectsMutation) {
  const std::vector<int> backing = {10, 20, 30};
  StorageVec<int> v = StorageVec<int>::adopt(backing.data(), backing.size());
  EXPECT_TRUE(v.borrowed());
  // Reads must use const access — the non-const accessors are mutators.
  EXPECT_EQ(std::as_const(v).data(), backing.data())
      << "borrow must be zero-copy";
  EXPECT_EQ(std::as_const(v)[2], 30);
  EXPECT_THROW(v.push_back(4), CheckError);
  EXPECT_THROW(v.resize(5), CheckError);
  EXPECT_THROW(v.assign(2, 0), CheckError);
  // clear() is the one mutator that is always legal: it drops the borrow
  // and resets to an empty OWNED vector.
  v.clear();
  EXPECT_FALSE(v.borrowed());
  EXPECT_EQ(v.size(), 0u);
  v.push_back(1);
  EXPECT_EQ(v[0], 1);
}

TEST(StorageVec, CopyOfBorrowedStaysBorrowed) {
  const std::vector<int> backing = {1, 2, 3};
  const StorageVec<int> a =
      StorageVec<int>::adopt(backing.data(), backing.size());
  const StorageVec<int> b = a;  // NOLINT(performance-unnecessary-copy...)
  EXPECT_TRUE(b.borrowed());
  EXPECT_EQ(b.data(), backing.data());
  StorageVec<int> c;
  c = a;
  EXPECT_TRUE(c.borrowed());
  EXPECT_EQ(c.size(), 3u);
}

// ---- MappedFile ---------------------------------------------------------

TEST(MappedFile, CreateWriteSyncRemapRoundtrip) {
  const std::string path = temp_path("mapped");
  {
    MappedFile w = MappedFile::create_rw(path, 8192);
    ASSERT_TRUE(w.mapped());
    EXPECT_TRUE(w.writable());
    auto* words = reinterpret_cast<std::uint64_t*>(w.mutable_data());
    words[0] = 0xDEADBEEFu;
    words[512] = 42;  // second page
    w.sync();
  }
  MappedFile r = MappedFile::map_readonly(path);
  EXPECT_FALSE(r.writable());
  EXPECT_EQ(r.size(), 8192u);
  const auto v = r.view<std::uint64_t>(0, 1024);
  EXPECT_EQ(v[0], 0xDEADBEEFu);
  EXPECT_EQ(v[512], 42u);
  EXPECT_EQ(v[1], 0u) << "create_rw pages must be zero-filled";
  EXPECT_THROW(r.view<std::uint64_t>(4, 1), CheckError);     // misaligned
  EXPECT_THROW(r.view<std::uint64_t>(0, 1025), CheckError);  // overrun
  EXPECT_THROW(r.view<std::uint64_t>(8192, 1), CheckError);
  r.advise_dontneed();  // must not invalidate the data
  EXPECT_EQ(r.view<std::uint64_t>(0, 1)[0], 0xDEADBEEFu);
  std::remove(path.c_str());
}

TEST(MappedFile, RejectsMissingAndEmptyFiles) {
  EXPECT_THROW(MappedFile::map_readonly(temp_path("missing")), CheckError);
  const std::string path = temp_path("empty");
  { std::ofstream os(path); }
  EXPECT_THROW(MappedFile::map_readonly(path), CheckError);
  std::remove(path.c_str());
}

// ---- snapshot roundtrips ------------------------------------------------

TEST(Snapshot, GraphRoundtripIsZeroCopyAndExact) {
  Rng rng(11);
  const Graph g = gnp_avg_degree(500, 7, rng);
  const std::string path = temp_path("graph");
  save_graph_snapshot(path, g);

  const InstanceSnapshot snap = InstanceSnapshot::load(path);
  EXPECT_FALSE(snap.has_instance());
  EXPECT_TRUE(snap.graph().borrowed());
  EXPECT_EQ(snap.graph().num_nodes(), g.num_nodes());
  EXPECT_EQ(snap.graph().num_edges(), g.num_edges());
  EXPECT_EQ(snap.graph().edge_list(), g.edge_list());
  snap.verify_payload();  // payload checksums hold for a fresh file
  EXPECT_THROW(snap.instance(), CheckError);
  std::remove(path.c_str());
}

TEST(Snapshot, OldcInstanceBitIdenticalAcrossEnginesAndThreads) {
  const NodeId n = 3000;
  Rng grng(21);
  const Graph g = random_near_regular(n, 6, grng);
  const OldcInstance inst = build_instance(g, 22);
  const std::string path = temp_path("oldc");
  save_instance_snapshot(path, inst);

  const InstanceSnapshot snap = InstanceSnapshot::load(path);
  ASSERT_TRUE(snap.has_instance());
  EXPECT_EQ(snap.info().num_nodes, n);
  EXPECT_EQ(snap.instance().color_space, inst.color_space);

  std::vector<Color> ids(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;

  const int saved_threads = Network::default_num_threads();
  for (const EngineKind ek : {EngineKind::kScalar, EngineKind::kVector}) {
    set_default_engine(ek);
    for (const int threads : {1, 2, 4, 8}) {
      Network::set_default_num_threads(threads);
      const ColoringResult heap = fast_two_sweep(inst, ids, n, 2, 0.5);
      const ColoringResult mapped =
          fast_two_sweep(snap.instance(), ids, n, 2, 0.5);
      EXPECT_EQ(heap.colors, mapped.colors)
          << "heap vs mmap diverged (engine=" << engine_name(ek)
          << ", threads=" << threads << ")";
    }
  }
  set_default_engine(EngineKind::kAuto);
  Network::set_default_num_threads(saved_threads);
  std::remove(path.c_str());
}

TEST(Snapshot, ListDefectiveRoundtripPreservesEveryPalette) {
  Rng rng(31);
  const Graph g = gnp_avg_degree(400, 9, rng);
  const std::int64_t space = 2 * (g.max_degree() + 1);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, space, rng);
  const std::string path = temp_path("listdef");
  save_instance_snapshot(path, inst);

  const InstanceSnapshot snap = InstanceSnapshot::load(path);
  const ListDefectiveInstance view = snap.list_instance();
  ASSERT_EQ(view.lists.size(), inst.lists.size());
  EXPECT_EQ(view.color_space, inst.color_space);
  for (std::size_t v = 0; v < inst.lists.size(); ++v) {
    const auto a = inst.lists[v];
    const auto b = view.lists[v];
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.color(i), b.color(i));
      EXPECT_EQ(a.defect(i), b.defect(i));
    }
  }
  EXPECT_EQ(view.lists.dedup_hits(), inst.lists.dedup_hits())
      << "dedup accounting must survive the roundtrip";
  std::remove(path.c_str());
}

TEST(Snapshot, ReleasePagesKeepsDataReadable) {
  Rng rng(41);
  const Graph g = gnp_avg_degree(2000, 8, rng);
  const std::string path = temp_path("release");
  save_graph_snapshot(path, g);
  const InstanceSnapshot snap = InstanceSnapshot::load(path);
  snap.release_pages();
  EXPECT_EQ(snap.graph().edge_list(), g.edge_list())
      << "MADV_DONTNEED pages must reload transparently";
  std::remove(path.c_str());
}

// ---- rejection paths ----------------------------------------------------

class SnapshotReject : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(51);
    graph_ = gnp_avg_degree(200, 6, rng);
    path_ = temp_path("reject");
    save_graph_snapshot(path_, graph_);
    bytes_ = slurp(path_);
    ASSERT_GE(bytes_.size(), kSnapshotAlign);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void rewrite(const std::vector<char>& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Graph graph_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(SnapshotReject, TruncatedFile) {
  std::vector<char> cut(bytes_.begin(), bytes_.begin() + 100);
  rewrite(cut);
  // The magic survives a 100-byte truncation, so the sniff still says
  // "snapshot" — the superblock size check is what must reject it.
  EXPECT_TRUE(is_snapshot_file(path_));
  EXPECT_THROW(InstanceSnapshot::load(path_), CheckError);
  rewrite({bytes_.begin(), bytes_.begin() + 4});
  EXPECT_FALSE(is_snapshot_file(path_)) << "4 bytes cannot hold the magic";
}

TEST_F(SnapshotReject, TruncatedPayload) {
  std::vector<char> cut(bytes_.begin(),
                        bytes_.begin() + static_cast<long>(kSnapshotAlign));
  rewrite(cut);  // valid superblock prefix, file_size now lies
  EXPECT_THROW(InstanceSnapshot::load(path_), CheckError);
}

TEST_F(SnapshotReject, WrongMagic) {
  bytes_[0] = 'X';
  rewrite(bytes_);
  EXPECT_FALSE(is_snapshot_file(path_));
  EXPECT_THROW(InstanceSnapshot::load(path_), CheckError);
}

TEST_F(SnapshotReject, WrongVersion) {
  // version is the u32 right after the 8-byte magic; bumping it must be
  // rejected BEFORE the checksum is consulted, so fix the checksum up too
  // — easiest by corrupting only the version and expecting either error.
  bytes_[8] = static_cast<char>(bytes_[8] + 1);
  rewrite(bytes_);
  EXPECT_THROW(InstanceSnapshot::load(path_), CheckError);
}

TEST_F(SnapshotReject, ForeignEndianTag) {
  // endian tag is the u32 at offset 12.
  std::swap(bytes_[12], bytes_[15]);
  std::swap(bytes_[13], bytes_[14]);
  rewrite(bytes_);
  EXPECT_THROW(InstanceSnapshot::load(path_), CheckError);
}

TEST_F(SnapshotReject, CorruptedSuperblock) {
  bytes_[64] = static_cast<char>(bytes_[64] ^ 0x5A);  // inside the header
  rewrite(bytes_);
  EXPECT_THROW(InstanceSnapshot::load(path_), CheckError);
}

TEST_F(SnapshotReject, PayloadCorruptionCaughtOnVerify) {
  // Flip the first byte of the adjacency payload (section 2 — its table
  // entry sits right after section 1's at superblock offset 72, and the
  // u64 payload offset is 8 bytes into the 40-byte entry). Loading skips
  // the payload checksums by design; adopt()'s structural pass may or may
  // not notice a changed neighbor id — verify_payload must.
  std::uint64_t adj_offset = 0;
  std::memcpy(&adj_offset, bytes_.data() + 72 + 40 + 8, sizeof(adj_offset));
  ASSERT_GE(adj_offset, kSnapshotAlign);
  ASSERT_LT(adj_offset, bytes_.size());
  bytes_[adj_offset] = static_cast<char>(bytes_[adj_offset] ^ 0x01);
  rewrite(bytes_);
  try {
    const InstanceSnapshot snap = InstanceSnapshot::load(path_);
    EXPECT_THROW(snap.verify_payload(), CheckError);
  } catch (const CheckError&) {
    // Structural validation rejecting it at load is acceptable too.
  }
}

TEST_F(SnapshotReject, GarbageFile) {
  std::vector<char> garbage(kSnapshotAlign * 2, 'g');
  rewrite(garbage);
  EXPECT_FALSE(is_snapshot_file(path_));
  EXPECT_THROW(InstanceSnapshot::load(path_), CheckError);
}

// ---- determinism --------------------------------------------------------

TEST(Snapshot, IndependentBuildsProduceIdenticalBytes) {
  const std::string p1 = temp_path("det1");
  const std::string p2 = temp_path("det2");
  for (const std::string& p : {p1, p2}) {
    Rng rng(61);
    const Graph g = random_near_regular(1000, 6, rng);
    const OldcInstance inst = build_instance(g, 62);
    save_instance_snapshot(p, inst);
  }
  EXPECT_EQ(slurp(p1), slurp(p2))
      << "snapshot bytes must be a pure function of the instance content";
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

// ---- text-loader sniffing ----------------------------------------------

TEST(Snapshot, TextLoadersSniffSnapshots) {
  Rng rng(71);
  const Graph g = gnp_avg_degree(300, 6, rng);
  const OldcInstance inst = build_instance(g, 72);
  const std::string gpath = temp_path("sniff_g");
  const std::string ipath = temp_path("sniff_i");
  save_graph_snapshot(gpath, g);
  save_instance_snapshot(ipath, inst);

  const Graph loaded_g = load_graph(gpath);
  EXPECT_FALSE(loaded_g.borrowed()) << "load_graph materializes an owned copy";
  EXPECT_EQ(loaded_g.edge_list(), g.edge_list());

  const OwnedOldcInstance owned = load_oldc(ipath);
  ASSERT_NE(owned.backing, nullptr);
  EXPECT_EQ(owned.instance.graph->num_nodes(), g.num_nodes());
  EXPECT_EQ(owned.instance.color_space, inst.color_space);
  // Moving the owner must keep the instance pointing at the snapshot's
  // (heap-stable) graph.
  const OwnedOldcInstance moved = [&] {
    OwnedOldcInstance tmp = load_oldc(ipath);
    return tmp;
  }();
  EXPECT_EQ(moved.instance.graph, &moved.backing->graph());

  // A graph-only snapshot is not an instance.
  EXPECT_THROW(load_oldc(gpath), CheckError);
  std::remove(gpath.c_str());
  std::remove(ipath.c_str());
}

// ---- SnapshotCache ------------------------------------------------------

InstanceKey test_key(std::uint64_t seed) {
  InstanceKey key;
  key.kind = 2;  // graph-only: cheap to build in tests
  key.generator = "gnp";
  key.n = 200;
  key.degree = 6;
  key.seed = seed;
  return key;
}

TEST(SnapshotCache, InMemoryCachesOnlyAnnouncedKeys) {
  SnapshotCache cache("");  // in-memory mode
  const InstanceKey hot = test_key(1);
  const InstanceKey cold = test_key(2);
  cache.set_cacheable({hot});

  int builds = 0;
  const auto builder = [&](SnapshotCache::Entry& e) {
    ++builds;
    Rng rng(e.key.seed);
    e.graph = gnp_avg_degree(static_cast<NodeId>(e.key.n), e.key.degree, rng);
  };
  EXPECT_EQ(cache.get_or_build(cold, builder), nullptr)
      << "unannounced keys fall back to the scratch path";
  const auto a = cache.get_or_build(hot, builder);
  const auto b = cache.get_or_build(hot, builder);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get()) << "same key must share one entry";
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.built(), 1);
  EXPECT_EQ(cache.reused(), 1);
  EXPECT_EQ(cache.loaded(), 0);
}

TEST(SnapshotCache, FileBackedSurvivesCacheGenerations) {
  const std::string dir = temp_path("cachedir");
  std::filesystem::remove_all(dir);
  const InstanceKey key = test_key(3);
  const auto builder = [&](SnapshotCache::Entry& e) {
    Rng rng(e.key.seed);
    e.graph = gnp_avg_degree(static_cast<NodeId>(e.key.n), e.key.degree, rng);
  };

  std::vector<std::pair<NodeId, NodeId>> expected;
  {
    SnapshotCache cache(dir);
    const auto entry = cache.get_or_build(key, builder);
    ASSERT_NE(entry, nullptr);
    expected = entry->graph_ref().edge_list();
    EXPECT_EQ(cache.built(), 1);
    EXPECT_EQ(cache.loaded(), 0);
  }
  {
    SnapshotCache cache(dir);  // new generation: must mmap, not rebuild
    const auto entry = cache.get_or_build(
        key, [](SnapshotCache::Entry&) { FAIL() << "should load, not build"; });
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(cache.loaded(), 1);
    EXPECT_EQ(cache.built(), 0);
    EXPECT_EQ(entry->graph_ref().edge_list(), expected);
  }
  std::filesystem::remove_all(dir);
}

TEST(SnapshotCache, StaleCacheFileFallsBackToRebuild) {
  const std::string dir = temp_path("staledir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const InstanceKey key = test_key(4);
  {
    // Poison the slot with a file that sniffs as a snapshot but fails
    // validation (magic + garbage).
    std::ofstream os(dir + "/" + key.fingerprint() + ".snap",
                     std::ios::binary);
    os.write(kSnapshotMagic, sizeof(kSnapshotMagic));
    const std::vector<char> junk(2 * kSnapshotAlign, 'x');
    os.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  SnapshotCache cache(dir);
  int builds = 0;
  const auto entry = cache.get_or_build(key, [&](SnapshotCache::Entry& e) {
    ++builds;
    Rng rng(e.key.seed);
    e.graph = gnp_avg_degree(static_cast<NodeId>(e.key.n), e.key.degree, rng);
  });
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(builds, 1) << "corrupt cache file must trigger a rebuild";
  EXPECT_EQ(cache.built(), 1);
  EXPECT_EQ(cache.loaded(), 0);
  // The rebuild overwrote the poisoned file with a valid snapshot.
  EXPECT_TRUE(is_snapshot_file(dir + "/" + key.fingerprint() + ".snap"));
  SnapshotCache fresh(dir);
  EXPECT_NE(fresh.get_or_build(
                key, [](SnapshotCache::Entry&) { FAIL() << "rebuilt?"; }),
            nullptr);
  EXPECT_EQ(fresh.loaded(), 1);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotCache, LongGeneratorNamesKeepDistinctFingerprints) {
  // Two keys identical through byte 300 of the generator name used to
  // collide: a fixed 256-byte pre-hash buffer truncated the differing
  // tails, aliasing both onto one cache file.
  InstanceKey a = test_key(5);
  InstanceKey b = test_key(5);
  a.generator = std::string(300, 'g') + "alpha";
  b.generator = std::string(300, 'g') + "beta";
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  InstanceKey c = test_key(5);
  c.generator = std::string(300, 'g') + "alpha";
  EXPECT_EQ(a.fingerprint(), c.fingerprint())
      << "equal keys must keep sharing a fingerprint";
}

TEST(SnapshotCache, MismatchedValidSnapshotTriggersRebuild) {
  const std::string dir = temp_path("mismatchdir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const InstanceKey key = test_key(6);  // graph-only, n = 200
  {
    // A perfectly valid snapshot of the WRONG instance (n = 50), as an
    // older generator version would leave behind under the same key.
    Rng rng(7);
    const Graph wrong = gnp_avg_degree(50, 4, rng);
    save_graph_snapshot(dir + "/" + key.fingerprint() + ".snap", wrong);
  }
  SnapshotCache cache(dir);
  const auto entry = cache.get_or_build(key, [&](SnapshotCache::Entry& e) {
    Rng rng(e.key.seed);
    e.graph = gnp_avg_degree(static_cast<NodeId>(e.key.n), e.key.degree, rng);
  });
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cache.built(), 1) << "loadable is not trustable: shape mismatch "
                                 "against the key must force a rebuild";
  EXPECT_EQ(cache.loaded(), 0);
  EXPECT_EQ(entry->graph_ref().num_nodes(), 200);
  // The rebuild replaced the stale file; a fresh generation loads it.
  SnapshotCache fresh(dir);
  const auto again = fresh.get_or_build(
      key, [](SnapshotCache::Entry&) { FAIL() << "should load, not build"; });
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(fresh.loaded(), 1);
  EXPECT_EQ(again->graph_ref().num_nodes(), 200);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dcolor
