// Tests for the batch multi-instance runner (sim/batch_runner.h), the
// `batch` ctest label: job-spec parsing, bit-identical results across
// batch thread counts and job orderings, scratch-pool (arena reuse)
// accounting, a mixed-solver 50-job batch under the collect-mode
// invariant checker, and the JSON report shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/batch_runner.h"
#include "util/check.h"

namespace dcolor {
namespace {

/// A mixed-solver job list touching every capability class: OLDC solvers
/// (two_sweep / fast_two_sweep / congest_oldc / oracle_greedy), the
/// recursive frameworks (deg_plus_one / slack1_arbdefective), the
/// sequential and randomized baselines, and the graph-only primitives.
/// Theta jobs run on cycles (neighborhood independence 2 by
/// construction); everything else cycles through the generators.
std::vector<BatchJob> mixed_jobs(std::size_t count) {
  const std::vector<std::string> solvers = {
      "two_sweep", "fast_two_sweep", "congest_oldc", "oracle_greedy",
      "deg_plus_one", "slack1_arbdefective", "greedy_arbdefective",
      "greedy", "luby", "linial", "kuhn_defective", "theta"};
  const std::vector<std::string> generators = {"gnp", "regular", "tree",
                                               "geometric", "cycle"};
  std::vector<BatchJob> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    BatchJob job;
    job.solver = solvers[i % solvers.size()];
    job.generator =
        job.solver == "theta" ? "cycle" : generators[i % generators.size()];
    job.n = static_cast<NodeId>(40 + 8 * (i % 5));
    job.degree = 3 + static_cast<int>(i % 3);
    job.seed = 100 + i;  // unique seeds -> unique default labels
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(BatchParse, InlineSpecWithMultipleJobs) {
  const std::vector<BatchJob> jobs = parse_batch_jobs(
      "solver=two_sweep,n=64,degree=6,seed=3,p=3;"
      " solver=greedy, generator=cycle, n=40 ;"
      "alg=fast, gen=tree, n=32, eps=0.25, symmetric=1");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].solver, "two_sweep");
  EXPECT_EQ(jobs[0].n, 64);
  EXPECT_EQ(jobs[0].degree, 6);
  EXPECT_EQ(jobs[0].seed, 3u);
  EXPECT_EQ(jobs[0].params.p, 3);
  EXPECT_EQ(jobs[1].solver, "greedy");
  EXPECT_EQ(jobs[1].generator, "cycle");
  EXPECT_EQ(jobs[2].solver, "fast");
  EXPECT_EQ(jobs[2].generator, "tree");
  EXPECT_DOUBLE_EQ(jobs[2].params.eps, 0.25);
  EXPECT_TRUE(jobs[2].symmetric);
}

TEST(BatchParse, RepeatExpandsIntoConsecutiveSeeds) {
  const std::vector<BatchJob> jobs =
      parse_batch_jobs("solver=greedy,n=32,seed=5,repeat=3,label=smoke");
  ASSERT_EQ(jobs.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(jobs[r].seed, 5u + r);
    EXPECT_EQ(jobs[r].label, "smoke#" + std::to_string(r));
  }
}

TEST(BatchParse, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_batch_jobs("n=64,degree=6"), CheckError);  // no solver
  EXPECT_THROW(parse_batch_jobs("solver=greedy,frobnicate=1"), CheckError);
  EXPECT_THROW(parse_batch_jobs("solver=greedy,n=notanumber"), CheckError);
  EXPECT_THROW(parse_batch_jobs("solver=greedy,symmetric=maybe"), CheckError);
  EXPECT_THROW(parse_batch_jobs("solver=greedy,engine=turbo"), CheckError);
  EXPECT_THROW(parse_batch_jobs("solver=greedy,repeat=0"), CheckError);
  EXPECT_THROW(parse_batch_jobs(" ; ; "), CheckError);  // empty
}

TEST(BatchParse, ReadsJobFilesWithComments) {
  const std::string path =
      ::testing::TempDir() + "/dcolor_batch_jobs_test.txt";
  {
    std::ofstream out(path);
    out << "# batch smoke jobs\n"
        << "solver=two_sweep, n=48, seed=2   # OLDC\n"
        << "\n"
        << "solver=greedy, generator=cycle, n=30, repeat=2\n";
  }
  const std::vector<BatchJob> jobs = parse_batch_jobs(path);
  std::remove(path.c_str());
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].solver, "two_sweep");
  EXPECT_EQ(jobs[0].n, 48);
  EXPECT_EQ(jobs[1].solver, "greedy");
  EXPECT_EQ(jobs[2].seed, jobs[1].seed + 1);
}

TEST(BatchRun, BitIdenticalAcrossBatchThreadCounts) {
  // The acceptance bar: per-job results (colors hashed, metrics, validity)
  // are a pure function of the job description — never of how many batch
  // workers ran or how they interleaved.
  const std::vector<BatchJob> jobs = mixed_jobs(24);
  BatchOptions options;
  options.threads = 1;
  const BatchReport base = run_batch(jobs, options);
  ASSERT_EQ(base.jobs.size(), jobs.size());
  for (const BatchJobResult& r : base.jobs) {
    EXPECT_TRUE(r.valid) << r.label << ": " << r.error;
  }
  for (int threads : {2, 4, 8}) {
    options.threads = threads;
    const BatchReport report = run_batch(jobs, options);
    EXPECT_EQ(report.jobs, base.jobs) << "threads=" << threads;
    EXPECT_EQ(report.jobs_valid, base.jobs_valid);
    EXPECT_EQ(report.total_rounds, base.total_rounds);
    EXPECT_EQ(report.total_messages, base.total_messages);
  }
}

TEST(BatchRun, ResultsIndependentOfJobOrder) {
  std::vector<BatchJob> jobs = mixed_jobs(16);
  BatchOptions options;
  options.threads = 4;
  const BatchReport forward = run_batch(jobs, options);
  std::reverse(jobs.begin(), jobs.end());
  const BatchReport backward = run_batch(jobs, options);

  std::map<std::string, BatchJobResult> by_label;
  for (const BatchJobResult& r : forward.jobs) by_label[r.label] = r;
  ASSERT_EQ(by_label.size(), forward.jobs.size());  // labels unique
  for (const BatchJobResult& r : backward.jobs) {
    const auto it = by_label.find(r.label);
    ASSERT_NE(it, by_label.end()) << r.label;
    EXPECT_EQ(r, it->second) << r.label;
  }
  // Results merge by job index: backward order reverses the report.
  EXPECT_EQ(backward.jobs.front().label, forward.jobs.back().label);
}

TEST(BatchRun, BaseSeedShiftsEveryJob) {
  const std::vector<BatchJob> jobs = mixed_jobs(6);
  BatchOptions options;
  options.threads = 2;
  const BatchReport a = run_batch(jobs, options);
  options.seed = 17;
  const BatchReport b = run_batch(jobs, options);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  bool any_differs = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_TRUE(b.jobs[i].valid) << b.jobs[i].label;
    any_differs = any_differs || a.jobs[i].color_hash != b.jobs[i].color_hash;
  }
  EXPECT_TRUE(any_differs);
}

TEST(BatchRun, ScratchPoolAccountsForArenaReuse) {
  const std::vector<BatchJob> jobs = mixed_jobs(16);
  BatchOptions options;
  options.threads = 4;
  const BatchReport report = run_batch(jobs, options);
  // At most one arena per worker ever materializes; every remaining job
  // is served by a leased, already-built arena.
  EXPECT_GE(report.scratch_created, 1);
  EXPECT_LE(report.scratch_created, 4);
  EXPECT_EQ(report.scratch_reused,
            static_cast<std::int64_t>(jobs.size()) - report.scratch_created);

  options.threads = 1;
  const BatchReport serial = run_batch(jobs, options);
  EXPECT_EQ(serial.scratch_created, 1);
  EXPECT_EQ(serial.scratch_reused, static_cast<std::int64_t>(jobs.size()) - 1);
}

TEST(BatchRun, SnapshotCacheBuildsSharedInstancesOnce) {
  // Three OLDC solvers over the SAME generator spec share one InstanceKey:
  // the batch planner marks it cacheable and the cache builds it exactly
  // once — every other job gets a zero-copy borrowed view. The distinct
  // fourth job stays on the scratch path (in-memory mode caches only
  // keys that occur more than once).
  const std::vector<BatchJob> jobs = parse_batch_jobs(
      "solver=two_sweep,n=64,degree=6,seed=3;"
      "solver=fast_two_sweep,n=64,degree=6,seed=3;"
      "solver=oracle_greedy,n=64,degree=6,seed=3;"
      "solver=greedy,n=48,seed=4");
  BatchOptions options;
  options.threads = 1;
  const BatchReport base = run_batch(jobs, options);
  EXPECT_EQ(base.snapshot_built, 1);
  EXPECT_EQ(base.snapshot_reused, 2);
  EXPECT_EQ(base.snapshot_loaded, 0);
  EXPECT_EQ(base.jobs_valid, 4);

  // The accounting — like every other report field — is deterministic at
  // every worker count (the per-key future serializes racing builders).
  for (const int threads : {2, 4, 8}) {
    options.threads = threads;
    const BatchReport report = run_batch(jobs, options);
    EXPECT_EQ(report.snapshot_built, 1) << "threads=" << threads;
    EXPECT_EQ(report.snapshot_reused, 2) << "threads=" << threads;
    EXPECT_EQ(report.snapshot_loaded, 0) << "threads=" << threads;
    EXPECT_EQ(report.jobs, base.jobs) << "threads=" << threads;
  }
}

TEST(BatchRun, FileBackedSnapshotCachePersistsAcrossRuns) {
  const std::string dir = "batch_snapshot_cache_test";
  std::filesystem::remove_all(dir);
  const std::vector<BatchJob> jobs = mixed_jobs(8);
  BatchOptions options;
  options.threads = 2;
  options.snapshot_dir = dir;
  const BatchReport first = run_batch(jobs, options);
  // File-backed mode caches every key, including single-occurrence ones.
  EXPECT_GT(first.snapshot_built, 0);
  EXPECT_EQ(first.snapshot_loaded, 0);

  const BatchReport second = run_batch(jobs, options);
  EXPECT_EQ(second.snapshot_loaded, first.snapshot_built)
      << "the second run must mmap what the first run built";
  EXPECT_EQ(second.snapshot_built, 0);
  EXPECT_EQ(second.jobs, first.jobs)
      << "mapped instances must solve bit-identically to built ones";

  // And against a cache-less run: the cache must be invisible in results.
  options.snapshot_dir.clear();
  const BatchReport plain = run_batch(jobs, options);
  EXPECT_EQ(plain.jobs, first.jobs);
  std::filesystem::remove_all(dir);
}

TEST(BatchRun, FiftyJobMixedBatchUnderCheckerIsClean) {
  // The ISSUE acceptance batch: >= 50 jobs across every solver family,
  // each job under a collect-mode invariant checker; everything validates
  // with zero violations at several thread counts.
  const std::vector<BatchJob> jobs = mixed_jobs(50);
  BatchOptions options;
  options.check = true;
  options.threads = 4;
  const BatchReport report = run_batch(jobs, options);
  ASSERT_EQ(report.jobs.size(), 50u);
  for (const BatchJobResult& r : report.jobs) {
    EXPECT_TRUE(r.valid) << r.label << ": " << r.error;
    EXPECT_TRUE(r.error.empty()) << r.label << ": " << r.error;
    EXPECT_EQ(r.checker_violations, 0) << r.label;
  }
  EXPECT_EQ(report.jobs_valid, 50);
  EXPECT_EQ(report.jobs_failed, 0);
  EXPECT_EQ(report.total_violations, 0);
  EXPECT_GT(report.total_rounds, 0);

  // And the checker does not perturb determinism.
  options.threads = 8;
  const BatchReport again = run_batch(jobs, options);
  EXPECT_EQ(again.jobs, report.jobs);
}

TEST(BatchRun, FailedJobsAreReportedNotFatal) {
  std::vector<BatchJob> jobs = mixed_jobs(3);
  BatchJob bogus;
  bogus.solver = "no_such_solver";
  bogus.label = "bogus";
  jobs.push_back(bogus);
  BatchJob tiny;
  tiny.solver = "greedy";
  tiny.n = 1;  // build_graph requires n >= 2
  tiny.label = "tiny";
  jobs.push_back(tiny);

  BatchOptions options;
  options.threads = 2;
  const BatchReport report = run_batch(jobs, options);
  ASSERT_EQ(report.jobs.size(), 5u);
  EXPECT_EQ(report.jobs_valid, 3);
  EXPECT_EQ(report.jobs_failed, 2);
  EXPECT_NE(report.jobs[3].error.find("unknown solver"), std::string::npos);
  EXPECT_FALSE(report.jobs[4].error.empty());
}

TEST(BatchRun, AliasResolvesToCanonicalSolverName) {
  const std::vector<BatchJob> jobs =
      parse_batch_jobs("solver=fast,n=40,seed=9");
  const BatchReport report = run_batch(jobs, BatchOptions{});
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].solver, "fast_two_sweep");
  EXPECT_TRUE(report.jobs[0].valid) << report.jobs[0].error;
}

TEST(BatchReportJson, CarriesJobsAndSummary) {
  const std::vector<BatchJob> jobs =
      parse_batch_jobs("solver=greedy,n=24,label=a;solver=luby,n=24,label=b");
  BatchOptions options;
  options.threads = 1;
  const BatchReport report = run_batch(jobs, options);
  const std::string json = report.to_json();
  for (const char* needle :
       {"\"jobs\": [", "\"label\": \"a\"", "\"label\": \"b\"",
        "\"solver\": \"greedy\"", "\"solver\": \"luby\"", "\"valid\": true",
        "\"color_hash\": \"", "\"summary\": {", "\"scratch_created\": 1",
        "\"snapshot_built\":", "\"snapshot_reused\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(json.find("\"error\""), std::string::npos);  // clean run
}

}  // namespace
}  // namespace dcolor
