// Tests for the unified two-level scheduler (sim/scheduler.h), the
// `sched` ctest label: fork-join coverage and nesting, priority FIFO
// dispatch, the steal-storm concurrency surface (the TSan target), the
// back-compat facades, the big-job threshold knob (flag/env/auto), and
// the tentpole acceptance grid — batch reports bit-identical across
// worker counts {1,2,4,8} × thresholds {0, mid, ∞} × engines
// {scalar, vector}, including the stripped JSON report, the streamed
// JSONL commit order, and the kStable stats export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats.h"
#include "sim/batch_runner.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "sim/thread_pool.h"
#include "util/parallel.h"

namespace dcolor {
namespace {

using sched::Priority;
using sched::Scheduler;

// ---- scheduler core -----------------------------------------------------

TEST(SchedCore, ParallelForCoversEveryChunkExactlyOnce) {
  Scheduler pool(4);
  constexpr int kChunks = 500;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.parallel_for(kChunks, [&](int c) {
    hits[static_cast<std::size_t>(c)].fetch_add(1);
  });
  for (int c = 0; c < kChunks; ++c) {
    EXPECT_EQ(hits[static_cast<std::size_t>(c)].load(), 1) << "chunk " << c;
  }
  const sched::SchedCounters counters = pool.counters();
  EXPECT_EQ(counters.chunks, kChunks);
}

TEST(SchedCore, WorkerlessSchedulerRunsInline) {
  Scheduler pool(0);
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);  // inline: done before submit returned
  int sum = 0;
  pool.parallel_for(8, [&](int c) { sum += c; });  // serial, same thread
  EXPECT_EQ(sum, 28);
  pool.drain();  // trivially
  EXPECT_EQ(pool.counters().tasks, 1);
}

TEST(SchedCore, DrainWaitsForEverySubmittedTask) {
  Scheduler pool(4);
  constexpr std::int64_t kTasks = 2000;
  std::atomic<std::int64_t> done{0};
  struct Ctx {
    std::atomic<std::int64_t>* done;
  } ctx{&done};
  for (std::int64_t i = 0; i < kTasks; ++i) {
    pool.submit(
        [](void* c, std::int64_t) {
          static_cast<Ctx*>(c)->done->fetch_add(1);
        },
        &ctx, i);
  }
  pool.drain();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(pool.counters().tasks, kTasks);
}

TEST(SchedCore, HigherPriorityDispatchesFirstFifoWithin) {
  Scheduler pool(1);  // one worker -> dispatch order is observable
  std::atomic<bool> gate{false};
  pool.submit([&] {
    while (!gate.load()) std::this_thread::yield();
  });
  // Queued while the worker is pinned: admission order low, normal, high,
  // but dispatch must be high, high, normal, normal, low, low — FIFO
  // inside each class.
  std::mutex order_mutex;
  std::vector<int> order;
  const auto record = [&](int tag) {
    const std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(tag);
  };
  Scheduler::TaskOptions low;
  low.priority = Priority::kLow;
  Scheduler::TaskOptions high;
  high.priority = Priority::kHigh;
  pool.submit([&, record] { record(50); }, low);
  pool.submit([&, record] { record(51); }, low);
  pool.submit([&, record] { record(20); });
  pool.submit([&, record] { record(21); });
  pool.submit([&, record] { record(10); }, high);
  pool.submit([&, record] { record(11); }, high);
  gate.store(true);
  pool.drain();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 50, 51}));
}

TEST(SchedCore, NestedParallelForInsideTaskUsesAmbientScheduler) {
  Scheduler pool(4);
  std::atomic<std::int64_t> total{0};
  std::atomic<bool> ambient_seen{false};
  pool.submit([&] {
    ambient_seen.store(Scheduler::current() == &pool);
    // The level-1 -> level-2 bridge: a fork-join issued from inside a
    // task must recruit the same fleet, not deadlock on it.
    Scheduler::current()->parallel_for(64, [&](int c) {
      total.fetch_add(c + 1);
    });
  });
  pool.drain();
  EXPECT_TRUE(ambient_seen.load());
  EXPECT_EQ(total.load(), 64 * 65 / 2);
  EXPECT_EQ(Scheduler::current(), nullptr);  // never set on outside threads
}

TEST(SchedCore, ParallelChunksRoutesThroughAmbientFleet) {
  Scheduler pool(4);
  const std::int64_t chunks_before = pool.counters().chunks;
  std::atomic<std::int64_t> total{0};
  pool.submit([&] {
    // util/parallel.h front door: inside a fleet it must NOT spin up a
    // private pool — the ambient scheduler runs the chunks.
    parallel_chunks(32, 4, [&](int c) { total.fetch_add(c); });
  });
  pool.drain();
  EXPECT_EQ(total.load(), 32 * 31 / 2);
  EXPECT_EQ(pool.counters().chunks - chunks_before, 32);
}

TEST(SchedCore, StealStormManyConcurrentRegions) {
  // The TSan surface: every worker initiates fork-joins while the others
  // steal from them, repeatedly, with nothing else to do — maximum
  // contention on the region list. Checksums prove no chunk is lost or
  // doubled under the storm.
  Scheduler pool(8);
  constexpr int kTasks = 32;
  constexpr int kRounds = 20;
  constexpr int kChunks = 16;
  std::vector<std::atomic<std::int64_t>> sums(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        Scheduler::current()->parallel_for(kChunks, [&, t](int c) {
          sums[static_cast<std::size_t>(t)].fetch_add(c + 1);
        });
      }
    });
  }
  pool.drain();
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(sums[static_cast<std::size_t>(t)].load(),
              static_cast<std::int64_t>(kRounds) * kChunks * (kChunks + 1) / 2)
        << "task " << t;
  }
  const sched::SchedCounters counters = pool.counters();
  EXPECT_EQ(counters.chunks,
            static_cast<std::int64_t>(kTasks) * kRounds * kChunks);
  EXPECT_EQ(counters.tasks, kTasks);
}

// ---- back-compat facades ------------------------------------------------

TEST(SchedFacades, SimThreadPoolRunsJobsOnTheScheduler) {
  detail::SimThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(128);
  pool.run(128, [&](int j) { hits[static_cast<std::size_t>(j)].fetch_add(1); });
  for (int j = 0; j < 128; ++j) {
    EXPECT_EQ(hits[static_cast<std::size_t>(j)].load(), 1);
  }
}

TEST(SchedFacades, TaskQueueSubmitAndDrain) {
  detail::TaskQueue queue(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    queue.submit([&] { done.fetch_add(1); });
  }
  queue.drain();
  EXPECT_EQ(done.load(), 64);
}

// ---- big-job threshold resolution ---------------------------------------

TEST(SchedThreshold, ExplicitEnvAndAutoResolution) {
  const std::vector<BatchJob> jobs =
      parse_batch_jobs("solver=greedy,n=100;solver=greedy,n=300,seed=2");
  ::unsetenv("DCOLOR_BIG_JOB_THRESHOLD");
  EXPECT_EQ(resolve_big_job_threshold(7, jobs), 7);  // request wins
  EXPECT_EQ(resolve_big_job_threshold(0, jobs), 0);
  // Auto: max(65536, 2 * mean(100, 300)) = 65536.
  EXPECT_EQ(resolve_big_job_threshold(-1, jobs), 65536);
  ::setenv("DCOLOR_BIG_JOB_THRESHOLD", "123", 1);
  EXPECT_EQ(resolve_big_job_threshold(-1, jobs), 123);
  EXPECT_EQ(resolve_big_job_threshold(9, jobs), 9);  // request beats env
  ::unsetenv("DCOLOR_BIG_JOB_THRESHOLD");

  // A lone giant among small jobs always clears the auto threshold.
  std::vector<BatchJob> fleet =
      parse_batch_jobs("solver=two_sweep,n=1000000;"
                       "solver=greedy,n=1000,repeat=9,seed=2");
  const std::int64_t automatic = resolve_big_job_threshold(-1, fleet);
  EXPECT_GE(automatic, 65536);
  EXPECT_LE(automatic, 1000000);
}

TEST(SchedThreshold, ThresholdSplitsJobsIntoLevels) {
  // The round-parallel gate is on the per-round ACTIVE set (>= 128
  // senders), not on n; two_sweep crosses it around n=1024, so n=2048
  // guarantees at least one chunked round per big job.
  const std::vector<BatchJob> jobs = parse_batch_jobs(
      "solver=two_sweep,n=2048,degree=6,seed=1,repeat=4");
  BatchOptions options;
  options.threads = 4;
  options.big_job_threshold = 0;  // everything big
  const BatchReport all_big = run_batch(jobs, options);
  EXPECT_EQ(all_big.sched.big_jobs, 4);
  EXPECT_GT(all_big.sched.chunks, 0);

  options.big_job_threshold = 1 << 30;  // nothing big
  const BatchReport all_small = run_batch(jobs, options);
  EXPECT_EQ(all_small.sched.big_jobs, 0);
  EXPECT_EQ(all_small.sched.chunks, 0);  // small jobs pin to one thread

  // The split is invisible in results — only wall clock may move.
  EXPECT_EQ(all_big.jobs, all_small.jobs);
}

// ---- the acceptance grid ------------------------------------------------

/// Mixed jobs sized to cross the simulator's parallel gate (n >= 128) so
/// level 2 actually runs chunked rounds somewhere in the grid.
std::vector<BatchJob> grid_jobs(EngineKind engine) {
  std::vector<BatchJob> jobs = parse_batch_jobs(
      "solver=two_sweep,n=192,degree=6,seed=11;"
      "solver=fast_two_sweep,n=160,degree=5,seed=12;"
      "solver=deg_plus_one,n=96,degree=4,seed=13;"
      "solver=greedy,generator=cycle,n=64,seed=14;"
      "solver=luby,n=80,degree=4,seed=15;"
      "solver=two_sweep,n=224,degree=6,seed=16;"
      "solver=congest_oldc,n=72,degree=4,seed=17;"
      "solver=kuhn_defective,n=64,degree=4,seed=18");
  for (BatchJob& job : jobs) job.sim_engine = engine;
  return jobs;
}

/// Strips every trailing-quarantined `, "t": {...}` object ("t" objects
/// are flat by construction, so the first '}' closes them).
std::string strip_timing(std::string json) {
  std::size_t pos;
  while ((pos = json.find(", \"t\": {")) != std::string::npos) {
    const std::size_t end = json.find('}', pos);
    if (end == std::string::npos) {
      ADD_FAILURE() << "unterminated \"t\" object";
      return json;
    }
    json.erase(pos, end - pos + 1);
  }
  return json;
}

TEST(SchedGrid, ReportsBitIdenticalAcrossWorkersThresholdsEngines) {
  // The tentpole acceptance: workers {1,2,4,8} × threshold {0, mid, ∞} ×
  // engines {scalar, vector} all produce identical per-job results, an
  // identical stripped JSON report, and an identical kStable stats
  // export. Only the quarantined "t" blocks may differ.
  BatchOptions base_options;
  base_options.threads = 1;
  base_options.big_job_threshold = 1 << 30;
  const BatchReport base = run_batch(grid_jobs(EngineKind::kScalar),
                                     base_options);
  for (const BatchJobResult& r : base.jobs) {
    EXPECT_TRUE(r.valid) << r.label << ": " << r.error;
  }
  const std::string base_json = strip_timing(base.to_json());
  EXPECT_EQ(base_json.find("\"steals\""), std::string::npos)
      << "scheduler telemetry must live inside the stripped t block";

  std::string base_stats;
  for (const EngineKind engine : {EngineKind::kScalar, EngineKind::kVector}) {
    const std::vector<BatchJob> jobs = grid_jobs(engine);
    // Full-struct equality holds per engine: RoundMetrics carries
    // peak_active_nodes, the one field outside the cross-engine identity
    // contract (sim/metrics.h), so the struct baseline is per-engine
    // while the JSON report and kStable stats are compared globally.
    BatchOptions engine_base_options;
    engine_base_options.threads = 1;
    engine_base_options.big_job_threshold = 1 << 30;
    const BatchReport engine_base = run_batch(jobs, engine_base_options);
    for (const int workers : {1, 2, 4, 8}) {
      for (const std::int64_t threshold :
           {std::int64_t{0}, std::int64_t{128}, std::int64_t{1} << 30}) {
        BatchOptions options;
        options.threads = workers;
        options.big_job_threshold = threshold;
        StatsRegistry stats;
        stats.install();
        const BatchReport report = run_batch(jobs, options);
        stats.uninstall();
        const std::string tag = std::string("engine=") +
                                (engine == EngineKind::kScalar ? "scalar"
                                                               : "vector") +
                                " workers=" + std::to_string(workers) +
                                " threshold=" + std::to_string(threshold);
        EXPECT_EQ(report.jobs, engine_base.jobs) << tag;
        EXPECT_EQ(strip_timing(report.to_json()), base_json) << tag;
        const std::string stable = stats.to_json(StatDomain::kStable);
        if (base_stats.empty()) {
          base_stats = stable;
          EXPECT_NE(stable.find("sched.tasks"), std::string::npos);
        } else {
          EXPECT_EQ(stable, base_stats) << tag;
        }
      }
    }
  }
}

TEST(SchedGrid, StreamCommitsInJobIndexOrderAtEveryFleetShape) {
  const std::vector<BatchJob> jobs = grid_jobs(EngineKind::kAuto);
  std::string base_lines;
  for (const int workers : {1, 4}) {
    for (const std::int64_t threshold : {std::int64_t{0}, std::int64_t{1}
                                                              << 30}) {
      BatchOptions options;
      options.threads = workers;
      options.big_job_threshold = threshold;
      std::vector<std::size_t> indices;
      std::string lines;
      options.on_result = [&](std::size_t index, const BatchJobResult& r) {
        indices.push_back(index);
        lines += strip_timing(batch_stream_line(index, r)) + "\n";
      };
      const BatchReport report = run_batch(jobs, options);
      ASSERT_EQ(indices.size(), jobs.size());
      for (std::size_t i = 0; i < indices.size(); ++i) {
        EXPECT_EQ(indices[i], i) << "stream must commit in job index order";
      }
      // The summary stream line carries the same identity fields as the
      // report.
      const std::string summary = batch_stream_summary(report);
      EXPECT_NE(summary.find("\"event\": \"summary\""), std::string::npos);
      EXPECT_NE(summary.find("\"jobs\": 8"), std::string::npos);
      if (base_lines.empty()) {
        base_lines = lines;
      } else {
        EXPECT_EQ(lines, base_lines)
            << "workers=" << workers << " threshold=" << threshold;
      }
    }
  }
  // And the emitted lines round-trip the per-job fields.
  EXPECT_NE(base_lines.find("\"event\": \"job\", \"index\": 0"),
            std::string::npos);
  EXPECT_NE(base_lines.find("\"color_hash\": \""), std::string::npos);
}

}  // namespace
}  // namespace dcolor
