#!/bin/sh
# End-to-end smoke test of the dcolor CLI: generate -> instance -> color
# (all three OLDC algorithms) -> validate, plus info.
set -e
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" --cmd=generate --family=regular --n=120 --degree=8 --seed=3 \
       --out="$DIR/g.txt"
"$CLI" --cmd=info --graph="$DIR/g.txt"
"$CLI" --cmd=instance --graph="$DIR/g.txt" --defect=1 --seed=3 \
       --out="$DIR/i.txt"

"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/i.txt" --coloring="$DIR/c.txt"

# Algorithm 2 needs the (1+ε) slack of Eq. (7): keep ε small here.
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=fast --ts_p=5 \
       --eps=0.2 --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/i.txt" --coloring="$DIR/c.txt"

# The congest algorithm needs the 3·√C·β premise: build a dedicated
# instance with generous defects.
"$CLI" --cmd=instance --graph="$DIR/g.txt" --defect=8 --list=34 \
       --colorspace=36 --seed=4 --out="$DIR/ic.txt"
"$CLI" --cmd=color --instance="$DIR/ic.txt" --algorithm=congest \
       --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/ic.txt" --coloring="$DIR/c.txt"

"$CLI" --cmd=color --graph="$DIR/g.txt" --algorithm=degplus1 --seed=5 \
       --out="$DIR/c.txt"

# Tracing: record a JSONL trace, fold it with trace_summary, and write a
# Chrome trace. Validate the JSON when python3 is around.
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=fast --ts_p=5 \
       --eps=0.2 --out="$DIR/c.txt" --trace="$DIR/trace.jsonl"
test -s "$DIR/trace.jsonl"
"$CLI" --cmd=trace_summary --trace="$DIR/trace.jsonl" | grep -q two_sweep
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=fast --ts_p=5 \
       --eps=0.2 --out="$DIR/c.txt" --trace="$DIR/trace.json" \
       --trace-format=chrome
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys
[json.loads(l) for l in open(sys.argv[1])]
json.load(open(sys.argv[2]))" "$DIR/trace.jsonl" "$DIR/trace.json"
fi

# Online invariant checking: --check must pass clean runs (and report its
# check count on stderr), and DCOLOR_CHECK must do the same without flags.
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --check --out="$DIR/c.txt" 2>"$DIR/check.log"
grep -q "invariant checks, 0 violation" "$DIR/check.log"
DCOLOR_CHECK=1 "$CLI" --cmd=color --instance="$DIR/i.txt" \
       --algorithm=two_sweep --ts_p=5 --out="$DIR/c.txt"

# Differential fuzz: a tiny deterministic run plus repro replay.
"$CLI" --cmd=fuzz --cases=10 --seed=7 --max-n=24 --threads=1,2 \
       --out="$DIR/repro.txt"
"$CLI" --cmd=fuzz --replay="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --threads=1,2

# Strict numeric parsing: garbage values must fail loudly, not parse as 0.
if "$CLI" --cmd=generate --family=regular --n=12abc --degree=3 --seed=1 \
       --out="$DIR/bad.txt" 2>/dev/null; then
  echo "cli_smoke: FAIL — garbage --n accepted" >&2; exit 1
fi
if DCOLOR_SIM_THREADS=abc "$CLI" --cmd=color --instance="$DIR/i.txt" \
       --algorithm=two_sweep --ts_p=5 --out="$DIR/c.txt" 2>/dev/null; then
  echo "cli_smoke: FAIL — garbage DCOLOR_SIM_THREADS accepted" >&2; exit 1
fi

echo "cli_smoke: OK"
