#!/bin/sh
# End-to-end smoke test of the dcolor CLI: generate -> instance -> color
# (all three OLDC algorithms) -> validate, plus info.
set -e
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" --cmd=generate --family=regular --n=120 --degree=8 --seed=3 \
       --out="$DIR/g.txt"
"$CLI" --cmd=info --graph="$DIR/g.txt"
"$CLI" --cmd=instance --graph="$DIR/g.txt" --defect=1 --seed=3 \
       --out="$DIR/i.txt"

"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/i.txt" --coloring="$DIR/c.txt"

# Algorithm 2 needs the (1+ε) slack of Eq. (7): keep ε small here.
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=fast --ts_p=5 \
       --eps=0.2 --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/i.txt" --coloring="$DIR/c.txt"

# The congest algorithm needs the 3·√C·β premise: build a dedicated
# instance with generous defects.
"$CLI" --cmd=instance --graph="$DIR/g.txt" --defect=8 --list=34 \
       --colorspace=36 --seed=4 --out="$DIR/ic.txt"
"$CLI" --cmd=color --instance="$DIR/ic.txt" --algorithm=congest \
       --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/ic.txt" --coloring="$DIR/c.txt"

"$CLI" --cmd=color --graph="$DIR/g.txt" --algorithm=degplus1 --seed=5 \
       --out="$DIR/c.txt"

# Tracing: record a JSONL trace, fold it with trace_summary, and write a
# Chrome trace. Validate the JSON when python3 is around.
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=fast --ts_p=5 \
       --eps=0.2 --out="$DIR/c.txt" --trace="$DIR/trace.jsonl"
test -s "$DIR/trace.jsonl"
"$CLI" --cmd=trace_summary --trace="$DIR/trace.jsonl" | grep -q two_sweep
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=fast --ts_p=5 \
       --eps=0.2 --out="$DIR/c.txt" --trace="$DIR/trace.json" \
       --trace-format=chrome
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys
[json.loads(l) for l in open(sys.argv[1])]
json.load(open(sys.argv[2]))" "$DIR/trace.jsonl" "$DIR/trace.json"
fi

# Online invariant checking: --check must pass clean runs (and report its
# check count on stderr), and DCOLOR_CHECK must do the same without flags.
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --check --out="$DIR/c.txt" 2>"$DIR/check.log"
grep -q "invariant checks, 0 violation" "$DIR/check.log"
DCOLOR_CHECK=1 "$CLI" --cmd=color --instance="$DIR/i.txt" \
       --algorithm=two_sweep --ts_p=5 --out="$DIR/c.txt"

# Differential fuzz: a tiny deterministic run plus repro replay.
"$CLI" --cmd=fuzz --cases=10 --seed=7 --max-n=24 --threads=1,2 \
       --out="$DIR/repro.txt"
"$CLI" --cmd=fuzz --replay="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --threads=1,2

# Solver registry surfaces: --cmd=list enumerates every solver with its
# capability flags, and --alg=help routes to the same listing.
"$CLI" --cmd=list > "$DIR/list.txt"
for name in two_sweep fast_two_sweep congest_oldc deg_plus_one greedy luby; do
  grep -q "$name" "$DIR/list.txt" || {
    echo "cli_smoke: FAIL — --cmd=list is missing $name" >&2; exit 1; }
done
grep -q "oldc" "$DIR/list.txt"
"$CLI" --cmd=color --alg=help | grep -q fast_two_sweep

# Batch runner: an inline mixed-solver spec (repeat expansion included)
# must validate every job and produce identical JSON at 1 and 4 workers.
SPEC="solver=two_sweep,n=64,degree=6,seed=3,repeat=2;solver=greedy,generator=cycle,n=40;solver=fast,gen=tree,n=48,seed=9"
"$CLI" --cmd=batch --jobs="$SPEC" --threads=1 --verify \
       --json="$DIR/batch1.json"
"$CLI" --cmd=batch --jobs="$SPEC" --threads=4 --verify \
       --json="$DIR/batch4.json"
# Per-job results must be bit-identical after stripping the trailing
# "t" timing quarantine (wall clock / RSS are nondeterministic by
# design); only the summary's scratch-pool accounting may differ with
# the worker count.
grep '"label"' "$DIR/batch1.json" | sed 's/, "t": {[^}]*}//' > "$DIR/jobs1.txt"
grep '"label"' "$DIR/batch4.json" | sed 's/, "t": {[^}]*}//' > "$DIR/jobs4.txt"
cmp "$DIR/jobs1.txt" "$DIR/jobs4.txt" || {
  echo "cli_smoke: FAIL — batch job results differ across thread counts" >&2
  exit 1; }
grep -q '"failed": 0' "$DIR/batch1.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      "$DIR/batch1.json"
fi
# Job files work too: same spec, one job per line with comments.
{
  echo "# cli smoke batch jobs"
  echo "solver=two_sweep, n=64, degree=6, seed=3"
  echo "solver=greedy, generator=cycle, n=40"
} > "$DIR/jobs.txt"
"$CLI" --cmd=batch --jobs="$DIR/jobs.txt" --threads=2
# A bad job must fail the batch exit code without killing the report.
if "$CLI" --cmd=batch --jobs="solver=nonexistent,n=32" 2>/dev/null; then
  echo "cli_smoke: FAIL — unknown batch solver exited 0" >&2; exit 1
fi
# Streamed batch: --stream routes the human report to stderr and emits
# one JSONL event line per completed job on stdout (commit order = job
# index order) plus a trailing summary event. The deterministic fields
# are identical at any worker count and any level-2 threshold.
"$CLI" --cmd=batch --jobs="$SPEC" --threads=1 --stream \
       > "$DIR/stream1.jsonl" 2>/dev/null
"$CLI" --cmd=batch --jobs="$SPEC" --threads=4 --big-job-threshold=0 \
       --stream > "$DIR/stream4.jsonl" 2>/dev/null
test "$(grep -c '"event": "job"' "$DIR/stream1.jsonl")" = 4 || {
  echo "cli_smoke: FAIL — expected 4 streamed job events" >&2; exit 1; }
grep -q '"event": "summary"' "$DIR/stream1.jsonl"
sed 's/, "t": {[^}]*}//' "$DIR/stream1.jsonl" > "$DIR/stream1.stripped"
sed 's/, "t": {[^}]*}//' "$DIR/stream4.jsonl" > "$DIR/stream4.stripped"
cmp "$DIR/stream1.stripped" "$DIR/stream4.stripped" || {
  echo "cli_smoke: FAIL — streamed batch differs across fleet shapes" >&2
  exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys
[json.loads(l) for l in open(sys.argv[1])]" "$DIR/stream1.jsonl"
fi

# Metrics: --stats writes a JSON registry dump whose deterministic part
# leads and whose "t" quarantine trails; prom format works too.
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --out="$DIR/c.txt" --stats="$DIR/stats.json" 2>/dev/null
grep -q '"sim.rounds"' "$DIR/stats.json"
grep -q '"t":{' "$DIR/stats.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      "$DIR/stats.json"
fi
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --out="$DIR/c.txt" --stats="$DIR/stats.prom" --stats-format=prom \
       2>/dev/null
grep -q '# TYPE dcolor_sim_rounds counter' "$DIR/stats.prom"

# Arena: the cross-solver Pareto report over a small matrix — markdown to
# stdout, JSON twin on request, and identical deterministic fields at 1
# and 4 workers.
"$CLI" --cmd=arena --generators=gnp --n=48 --degrees=6 --seed=5 \
       --threads=1 --json="$DIR/arena1.json" > "$DIR/arena.md"
grep -q '| solver |' "$DIR/arena.md"
grep -q '0 not run' "$DIR/arena.md"
"$CLI" --cmd=arena --generators=gnp --n=48 --degrees=6 --seed=5 \
       --threads=4 --json="$DIR/arena4.json" >/dev/null
sed 's/, "t": {[^}]*}//' "$DIR/arena1.json" > "$DIR/arena1.stripped"
sed 's/, "t": {[^}]*}//' "$DIR/arena4.json" > "$DIR/arena4.stripped"
cmp "$DIR/arena1.stripped" "$DIR/arena4.stripped" || {
  echo "cli_smoke: FAIL — arena results differ across thread counts" >&2
  exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      "$DIR/arena1.json"
fi

# Snapshots: a text instance converted to a binary snapshot must load,
# verify, and color BIT-identically to the text original.
"$CLI" --cmd=snapshot --instance="$DIR/i.txt" --save="$DIR/i.snap"
"$CLI" --cmd=snapshot --load="$DIR/i.snap" --verify > "$DIR/snapinfo.txt"
grep -q "verified" "$DIR/snapinfo.txt"
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --out="$DIR/ct.txt"
"$CLI" --cmd=color --instance="$DIR/i.snap" --algorithm=two_sweep --ts_p=5 \
       --out="$DIR/cs.txt"
cmp "$DIR/ct.txt" "$DIR/cs.txt" || {
  echo "cli_smoke: FAIL — snapshot instance colored differently" >&2
  exit 1; }
"$CLI" --cmd=validate --instance="$DIR/i.snap" --coloring="$DIR/cs.txt"

# Edge-list ingestion: SNAP pairs with comments/loops/duplicates become a
# graph snapshot that every --graph= flag accepts.
printf '# toy snap file\n0 1\n1 2\n2 2\n0 1\n3 0\n' > "$DIR/edges.txt"
"$CLI" --cmd=snapshot --from-edges="$DIR/edges.txt" --save="$DIR/e.snap" \
    | grep -q "1 self-loops dropped"
"$CLI" --cmd=info --graph="$DIR/e.snap"

# Generator-sourced snapshots skip the text round-trip entirely.
"$CLI" --cmd=snapshot --family=regular --n=120 --degree=8 --seed=3 \
       --defect=1 --save="$DIR/gen.snap"
"$CLI" --cmd=color --instance="$DIR/gen.snap" --algorithm=two_sweep \
       --ts_p=5 --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/gen.snap" --coloring="$DIR/c.txt"

# Corrupt and non-snapshot files must be rejected loudly.
if "$CLI" --cmd=snapshot --load="$DIR/i.txt" 2>/dev/null; then
  echo "cli_smoke: FAIL — text file accepted as snapshot" >&2; exit 1
fi
printf 'DCSNAP01 corrupted superblock follows' > "$DIR/bad.snap"
if "$CLI" --cmd=snapshot --load="$DIR/bad.snap" 2>/dev/null; then
  echo "cli_smoke: FAIL — corrupt snapshot accepted" >&2; exit 1
fi

# Batch with a file-backed snapshot cache: same results as cache-less,
# and the second run reloads what the first one built.
"$CLI" --cmd=batch --jobs="$SPEC" --threads=2 --verify \
       --snapshot-cache="$DIR/snapcache" --json="$DIR/batchc.json" \
    | grep -q "snapshots"
grep '"label"' "$DIR/batchc.json" | sed 's/, "t": {[^}]*}//' \
    > "$DIR/jobsc.txt"
cmp "$DIR/jobs1.txt" "$DIR/jobsc.txt" || {
  echo "cli_smoke: FAIL — snapshot-cached batch results differ" >&2
  exit 1; }
"$CLI" --cmd=batch --jobs="$SPEC" --threads=2 \
       --snapshot-cache="$DIR/snapcache" > "$DIR/batchc2.txt"
grep -q "0 built" "$DIR/batchc2.txt" || {
  echo "cli_smoke: FAIL — second cached batch run rebuilt instances" >&2
  exit 1; }

# Strict numeric parsing: garbage values must fail loudly, not parse as 0.
if "$CLI" --cmd=generate --family=regular --n=12abc --degree=3 --seed=1 \
       --out="$DIR/bad.txt" 2>/dev/null; then
  echo "cli_smoke: FAIL — garbage --n accepted" >&2; exit 1
fi
if DCOLOR_SIM_THREADS=abc "$CLI" --cmd=color --instance="$DIR/i.txt" \
       --algorithm=two_sweep --ts_p=5 --out="$DIR/c.txt" 2>/dev/null; then
  echo "cli_smoke: FAIL — garbage DCOLOR_SIM_THREADS accepted" >&2; exit 1
fi

# Strict flag parsing: duplicates, non-boolean bool values, and empty
# flag names must all be rejected, not silently last-wins/zeroed.
if "$CLI" --cmd=info --graph="$DIR/g.txt" --graph="$DIR/g.txt" \
       2>/dev/null; then
  echo "cli_smoke: FAIL — duplicate flag accepted" >&2; exit 1
fi
if "$CLI" --cmd=batch --jobs="solver=greedy,generator=cycle,n=40" \
       --verify=maybe 2>/dev/null; then
  echo "cli_smoke: FAIL — non-boolean --verify accepted" >&2; exit 1
fi
if "$CLI" --cmd=info --=value 2>/dev/null; then
  echo "cli_smoke: FAIL — empty flag name accepted" >&2; exit 1
fi

# Serve daemon round-trip: start on an ephemeral port, drive one session
# through create -> solve -> mutate -> recolor with the bundled client,
# then shut the daemon down and wait for it to exit.
"$CLI" --cmd=serve --workers=2 --port-file="$DIR/port.txt" \
       > "$DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  test -s "$DIR/port.txt" && break
  sleep 0.25
done
test -s "$DIR/port.txt" || {
  echo "cli_smoke: FAIL — serve daemon never published its port" >&2
  kill "$SERVE_PID" 2>/dev/null; exit 1; }
PORT=$(cat "$DIR/port.txt")
"$CLI" --cmd=client --port="$PORT" --request='{"op":"ping"}' \
    | grep -q '"pong":true'
"$CLI" --cmd=client --port="$PORT" --request='{"op":"create","session":"s","generator":"gnp","n":400,"degree":6,"seed":3}' \
    | grep -q '"ok":true'
"$CLI" --cmd=client --port="$PORT" --request='{"op":"solve","session":"s"}' \
    | grep -q '"ok":true'
"$CLI" --cmd=client --port="$PORT" --request='{"op":"mutate","session":"s","kind":"add_edge","u":1,"v":200}' \
    | grep -q '"dirty":2'
"$CLI" --cmd=client --port="$PORT" --request='{"op":"recolor","session":"s"}' \
    | grep -q '"colors_changed"'
if "$CLI" --cmd=client --port="$PORT" \
       --request='{"op":"solve","session":"missing"}' \
    | grep -q '"ok":true'; then
  echo "cli_smoke: FAIL — unknown serve session accepted" >&2
  kill "$SERVE_PID" 2>/dev/null; exit 1
fi
# Streamed op:batch over the wire: the client prints each pushed event
# line before the final response, so the JSONL round-trips end to end.
"$CLI" --cmd=client --port="$PORT" \
       --request='{"op":"batch","stream":true,"jobs":"solver=greedy,generator=cycle,n=32,repeat=2"}' \
       > "$DIR/servebatch.txt"
test "$(grep -c '"event": "job"' "$DIR/servebatch.txt")" = 2 || {
  echo "cli_smoke: FAIL — serve batch streamed wrong job count" >&2
  kill "$SERVE_PID" 2>/dev/null; exit 1; }
grep -q '"event": "summary"' "$DIR/servebatch.txt"
grep -q '"jobs_valid"' "$DIR/servebatch.txt"
"$CLI" --cmd=client --port="$PORT" --request='{"op":"shutdown"}' \
    | grep -q '"ok":true'
wait "$SERVE_PID" || {
  echo "cli_smoke: FAIL — serve daemon exited non-zero" >&2; exit 1; }

echo "cli_smoke: OK"
