#!/bin/sh
# End-to-end smoke test of the dcolor CLI: generate -> instance -> color
# (all three OLDC algorithms) -> validate, plus info.
set -e
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" --cmd=generate --family=regular --n=120 --degree=8 --seed=3 \
       --out="$DIR/g.txt"
"$CLI" --cmd=info --graph="$DIR/g.txt"
"$CLI" --cmd=instance --graph="$DIR/g.txt" --defect=1 --seed=3 \
       --out="$DIR/i.txt"

"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=two_sweep --ts_p=5 \
       --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/i.txt" --coloring="$DIR/c.txt"

# Algorithm 2 needs the (1+ε) slack of Eq. (7): keep ε small here.
"$CLI" --cmd=color --instance="$DIR/i.txt" --algorithm=fast --ts_p=5 \
       --eps=0.2 --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/i.txt" --coloring="$DIR/c.txt"

# The congest algorithm needs the 3·√C·β premise: build a dedicated
# instance with generous defects.
"$CLI" --cmd=instance --graph="$DIR/g.txt" --defect=8 --list=34 \
       --colorspace=36 --seed=4 --out="$DIR/ic.txt"
"$CLI" --cmd=color --instance="$DIR/ic.txt" --algorithm=congest \
       --out="$DIR/c.txt"
"$CLI" --cmd=validate --instance="$DIR/ic.txt" --coloring="$DIR/c.txt"

"$CLI" --cmd=color --graph="$DIR/g.txt" --algorithm=degplus1 --seed=5 \
       --out="$DIR/c.txt"

echo "cli_smoke: OK"
