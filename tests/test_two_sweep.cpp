// Tests for Algorithm 1 (Two-Sweep) and Algorithm 2 (Fast Two-Sweep) —
// Theorem 1.1 of the paper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "coloring/linial.h"
#include "core/fast_two_sweep.h"
#include "core/instance.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/check.h"
#include "util/logstar.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {
namespace {

/// Builds a proper coloring via Linial and returns (colors, q).
std::pair<std::vector<Color>, std::int64_t> initial_coloring(
    const Graph& g, const Orientation& o) {
  const LinialResult linial = linial_from_ids(g, o);
  return {linial.colors, linial.num_colors};
}

TEST(TwoSweep, SolvesUniformDefectInstance) {
  Rng rng(1);
  const Graph g = random_near_regular(200, 12, rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  // p = β/d with d = 2: lists of ~p² colors with defect 2 satisfy Eq. (2).
  const int d = 2;
  const int p = (beta + d) / (d + 1) + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst = random_uniform_oldc(
      g, std::move(o), /*color_space=*/4 * list_size, list_size, d, rng);
  ASSERT_TRUE(inst.satisfies_theorem11(p, 0.0));
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = two_sweep(inst, init, q, p);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  EXPECT_TRUE(all_colored(res.colors));
}

TEST(TwoSweep, RoundsLinearInQ) {
  Rng rng(2);
  const Graph g = random_near_regular(300, 8, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst = random_uniform_oldc(g, std::move(o),
                                                4 * list_size, list_size,
                                                /*defect=*/0, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = two_sweep(inst, init, q, p);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  // Two sweeps over q classes plus the initial broadcast.
  EXPECT_LE(res.metrics.rounds, 2 * q + 2);
  EXPECT_GE(res.metrics.rounds, q);
}

TEST(TwoSweep, ZeroDefectGivesProperColoringOnOutEdges) {
  // With all defects zero the result must be properly colored.
  Rng rng(3);
  const Graph g = gnp(150, 0.08, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst = random_uniform_oldc(g, std::move(o),
                                                3 * list_size, list_size, 0,
                                                rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = two_sweep(inst, init, q, p);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
}

TEST(TwoSweep, PhaseOneInvariantsHold) {
  // White-box: Eq. (3) |S_v| <= p and Eq. (4)
  //   |N_>(v)| + Σ_{x∈S_v} k_v(x) < Σ_{x∈S_v}(d_v(x)+1).
  Rng rng(4);
  const Graph g = random_near_regular(120, 10, rng);
  Orientation o = Orientation::by_id(g);
  const int d = 1;
  const int p = (o.beta() + d) / (d + 1) + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst = random_uniform_oldc(g, std::move(o),
                                                4 * list_size, list_size, d,
                                                rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);

  TwoSweepProgram program(inst, init, q, p);
  Network net(g);
  net.run(program, 2 * q + 4);

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& s = program.phase1_set(v);
    EXPECT_LE(static_cast<int>(s.size()), p);  // Eq. (3)
    const auto& lst = inst.lists[static_cast<std::size_t>(v)];
    std::int64_t k_sum = 0, weight = 0;
    for (Color x : s) {
      const auto it = std::lower_bound(lst.colors().begin(),
                                       lst.colors().end(), x);
      ASSERT_NE(it, lst.colors().end());
      const auto idx = static_cast<std::size_t>(it - lst.colors().begin());
      k_sum += program.k_counts(v)[idx];
      weight += lst.defect(idx) + 1;
    }
    EXPECT_LT(program.n_greater(v) + k_sum, weight) << "Eq. (4) at " << v;
  }
}

TEST(TwoSweep, RejectsInstanceViolatingEq2) {
  // Lists too small for the chosen p must be rejected up front.
  Rng rng(5);
  const Graph g = complete(10);
  Orientation o = Orientation::by_id(g);
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 100, /*list_size=*/3,
                          /*defect=*/0, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  EXPECT_THROW(two_sweep(inst, init, q, /*p=*/3), CheckError);
}

TEST(TwoSweep, RejectsImproperInitialColoring) {
  Rng rng(6);
  const Graph g = path(4);
  Orientation o = Orientation::by_id(g);
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 50, 6, 0, rng);
  const std::vector<Color> bad = {0, 0, 1, 2};
  EXPECT_THROW(two_sweep(inst, bad, 3, 2), CheckError);
}

TEST(TwoSweep, SinkNodesSucceedWithSingletonLists) {
  // Nodes with outdegree 0 only need a non-empty list (implementation
  // refinement documented in two_sweep.cpp).
  const Graph g = path(3);
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 4;
  // Orient everything toward node 0: node 0 is a sink.
  inst.orientation = Orientation::from_predicate(
      g, [](NodeId a, NodeId b) { return b < a; });
  inst.lists.push_back(ColorList::zero_defect({2}));        // sink
  inst.lists.push_back(ColorList::zero_defect({0, 1, 2}));  // β=1, w=3 > 2
  inst.lists.push_back(ColorList::zero_defect({0, 1, 3}));
  const std::vector<Color> init = {0, 1, 0};
  const ColoringResult res = two_sweep(inst, init, 2, 2);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  EXPECT_EQ(res.colors[0], 2);
}

TEST(TwoSweep, HeterogeneousDefectsRespected) {
  Rng rng(7);
  const Graph g = random_near_regular(150, 14, rng);
  Orientation o = Orientation::by_id(g);
  const int p = 4;
  const OldcInstance inst = random_heterogeneous_oldc(
      g, std::move(o), /*color_space=*/2000, p, /*eps=*/0.0, rng);
  ASSERT_TRUE(inst.satisfies_theorem11(p, 0.0));
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = two_sweep(inst, init, q, p);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
}

TEST(TwoSweep, MessageBitsMatchTheorem) {
  // Theorem 1.1: nodes forward the initial color, then a list of p colors.
  Rng rng(8);
  const Graph g = random_near_regular(100, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  const int list_size = p * p + p + 1;
  const std::int64_t space = 4 * list_size;
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), space, list_size, 0, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = two_sweep(inst, init, q, p);
  const int color_bits = ceil_log2(static_cast<std::uint64_t>(space));
  EXPECT_LE(res.metrics.max_message_bits, 2 + p * color_bits);
}

TEST(TwoSweep, WorksWithQEqualOne) {
  // Edgeless graph: q = 1 is a proper coloring.
  const Graph g = Graph::from_edges(5, {});
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 2;
  inst.orientation = Orientation::by_id(g);
  inst.lists.assign(5, ColorList::zero_defect({1}));
  const std::vector<Color> init(5, 0);
  const ColoringResult res = two_sweep(inst, init, 1, 1);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
}

// ---- Parameterized sweep over graph families and defects ----------------

struct SweepCase {
  const char* name;
  int n;
  int degree;
  int defect;
  std::uint64_t seed;
};

class TwoSweepFamilies : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TwoSweepFamilies, ValidOldcAcrossFamilies) {
  const SweepCase c = GetParam();
  Rng rng(c.seed);
  const Graph g = random_near_regular(c.n, c.degree, rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  const int p = std::max(1, (beta + c.defect) / (c.defect + 1) + 1);
  const int list_size = p * p + p + 1;
  const OldcInstance inst = random_uniform_oldc(
      g, std::move(o), 4 * list_size, list_size, c.defect, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = two_sweep(inst, init, q, p);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  // Defect check done by validate_oldc; also confirm round bound O(q).
  EXPECT_LE(res.metrics.rounds, 2 * q + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Families, TwoSweepFamilies,
    ::testing::Values(SweepCase{"sparse_d0", 150, 4, 0, 11},
                      SweepCase{"sparse_d1", 150, 4, 1, 12},
                      SweepCase{"mid_d0", 200, 10, 0, 13},
                      SweepCase{"mid_d2", 200, 10, 2, 14},
                      SweepCase{"dense_d3", 150, 24, 3, 15},
                      SweepCase{"dense_d6", 150, 24, 6, 16}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

// ---- Symmetric (undirected) mode ------------------------------------------

TEST(TwoSweepSymmetric, ThreeColoringWithPaperDefectBound) {
  // Section 1.1: a list d-defective 3-coloring in O(Δ + log* n) rounds
  // whenever d > (2Δ−3)/3. Symmetric digraph: β_v = deg(v).
  Rng rng(9);
  const Graph g = random_near_regular(200, 12, rng);
  const int delta = g.max_degree();
  const int d = (2 * delta - 3) / 3 + 1;  // smallest d > (2Δ−3)/3
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 3;
  inst.symmetric = true;
  inst.lists.assign(static_cast<std::size_t>(g.num_nodes()),
                    ColorList::uniform({0, 1, 2}, d));
  // Premise with p = 2: 3(d+1) > 2·deg(v) ⟺ d > (2·deg−3)/3.
  ASSERT_TRUE(inst.satisfies_theorem11(2, 0.0));
  const Orientation o = Orientation::by_id(g);
  const auto [init, q] = initial_coloring(g, o);
  const ColoringResult res = two_sweep(inst, init, q, 2);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  // The symmetric-mode defect bound is UNDIRECTED:
  EXPECT_LE(max_undirected_defect(g, res.colors), d);
  EXPECT_EQ(num_colors_used(res.colors), 3);
}

TEST(TwoSweepSymmetric, FastVariantAlsoWorks) {
  Rng rng(10);
  const int n = 800;
  const Graph g = random_near_regular(n, 8, rng);
  const int delta = g.max_degree();
  const int d = delta;  // plenty of slack for ε = 0.4
  OldcInstance inst;
  inst.graph = &g;
  inst.color_space = 3;
  inst.symmetric = true;
  inst.lists.assign(static_cast<std::size_t>(g.num_nodes()),
                    ColorList::uniform({0, 1, 2}, d));
  std::vector<Color> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  const ColoringResult res = fast_two_sweep(inst, ids, n, 2, 0.4);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  EXPECT_LE(max_undirected_defect(g, res.colors), d);
}

// ---- Fast Two-Sweep (Algorithm 2) ----------------------------------------

TEST(FastTwoSweep, MatchesPlainSweepWhenQSmall) {
  Rng rng(21);
  const Graph g = random_near_regular(100, 8, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  // defect 1 and p² colors: weight = 2p² > 1.25·p·β, satisfying Eq. (7).
  const int list_size = p * p;
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 4 * list_size, list_size, 1, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  // q = O(β²) is below (p/ε)² here, so Algorithm 2 delegates to the sweep.
  const ColoringResult res = fast_two_sweep(inst, init, q, p, 0.25);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
}

TEST(FastTwoSweep, DefectiveRouteRoundsIndependentOfQ) {
  // With the raw ID coloring (q = n), Algorithm 2 must beat O(q).
  Rng rng(22);
  const int n = 3000;
  const Graph g = random_near_regular(n, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  const int d = beta;  // generous defects keep (p/ε)² small
  const int p = 2;
  const int list_size = 2 * p * p + 2;
  OldcInstance inst = random_uniform_oldc(g, std::move(o), 4 * list_size,
                                          list_size, d, rng);
  std::vector<Color> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  const double eps = 0.5;
  const ColoringResult res = fast_two_sweep(inst, ids, n, p, eps);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  // O((p/ε)² + log* q) with our Lemma 3.4 constants is well below n/2.
  EXPECT_LT(res.metrics.rounds, n / 2);
}

TEST(FastTwoSweep, RejectsEq7Violation) {
  Rng rng(23);
  const Graph g = complete(12);
  Orientation o = Orientation::by_id(g);
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 50, 4, 0, rng);
  std::vector<Color> ids(12);
  for (int i = 0; i < 12; ++i) ids[static_cast<std::size_t>(i)] = i;
  EXPECT_THROW(fast_two_sweep(inst, ids, 12, 3, 0.5), CheckError);
}

TEST(FastTwoSweep, EpsilonZeroFallsBackToPlainSweep) {
  Rng rng(24);
  const Graph g = random_near_regular(80, 6, rng);
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() + 1;
  const int list_size = p * p + p + 1;
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 4 * list_size, list_size, 0, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult direct = two_sweep(inst, init, q, p);
  const ColoringResult via_fast = fast_two_sweep(inst, init, q, p, 0.0);
  EXPECT_EQ(direct.colors, via_fast.colors);
  EXPECT_EQ(direct.metrics.rounds, via_fast.metrics.rounds);
}

}  // namespace
}  // namespace dcolor
