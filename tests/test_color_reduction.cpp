// Tests for the classic greedy color reduction (O(Δ²+log* n) pipeline).
#include <gtest/gtest.h>

#include "coloring/color_reduction.h"
#include "coloring/linial.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "util/check.h"
#include "util/logstar.h"
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(ColorReduction, ReducesToDeltaPlusOne) {
  Rng rng(6001);
  const Graph g = gnp(200, 0.06, rng);
  const Orientation o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, o);
  const auto res =
      reduce_colors(g, linial.colors, linial.num_colors, g.max_degree() + 1);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  for (Color c : res.colors) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, g.max_degree());
  }
  // One round per eliminated class.
  EXPECT_LE(res.metrics.rounds, linial.num_colors + 2);
}

TEST(ColorReduction, NoopWhenAlreadySmall) {
  const Graph g = cycle(6);
  const std::vector<Color> initial = {0, 1, 0, 1, 0, 1};
  const auto res = reduce_colors(g, initial, 3, 3);
  EXPECT_EQ(res.colors, initial);
  EXPECT_EQ(res.metrics.rounds, 0);
}

TEST(ColorReduction, RejectsTargetBelowDeltaPlusOne) {
  const Graph g = complete(4);
  EXPECT_THROW(reduce_colors(g, {0, 1, 2, 3}, 4, 3), CheckError);
}

TEST(ColorReduction, RejectsImproperInitial) {
  const Graph g = path(3);
  EXPECT_THROW(reduce_colors(g, {0, 0, 1}, 2, 3), CheckError);
}

TEST(ColorReduction, PipelineIsDeltaSquaredPlusLogStar) {
  Rng rng(6002);
  for (int degree : {4, 8, 16}) {
    const Graph g = random_near_regular(300, degree, rng);
    const auto res = linial_plus_reduction(g);
    EXPECT_TRUE(is_proper_coloring(g, res.colors));
    for (Color c : res.colors) EXPECT_LE(c, g.max_degree());
    const int delta = g.max_degree();
    // Linial fixed point ~(2Δ+1)² classes, one round each, plus log*.
    EXPECT_LE(res.metrics.rounds,
              16 * delta * delta + 64 +
                  log_star(std::uint64_t{300}) + 8);
  }
}

TEST(ColorReduction, WorksOnStructuredGraphs) {
  for (const Graph& g : {cycle(30), grid(7, 7), complete(12), hypercube(5)}) {
    const auto res = linial_plus_reduction(g);
    EXPECT_TRUE(is_proper_coloring(g, res.colors)) << g.summary();
    for (Color c : res.colors) EXPECT_LE(c, g.max_degree());
  }
}

}  // namespace
}  // namespace dcolor
