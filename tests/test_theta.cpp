// Tests for Section 4: Claim 4.1, Theorem 1.4, the slack reduction lemmas
// (4.4, A.1), color space reduction for P_A (4.5, 4.6), Theorem 1.5, and
// the (2Δ−1)-edge coloring application.
#include <gtest/gtest.h>

#include <algorithm>

#include "coloring/arbdefective.h"
#include "coloring/linial.h"
#include "core/defective_from_arbdefective.h"
#include "core/edge_coloring.h"
#include "core/instance.h"
#include "core/list_coloring.h"
#include "core/slack_reduction.h"
#include "core/theta_color_space.h"
#include "core/theta_coloring.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "graph/independence.h"
#include "graph/line_graph.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

/// Inner solver used by the combinator tests: the Theorem 1.3 machinery,
/// wrapped with an assertion that the combinator delivered the slack it
/// promised.
ArbSolver checked_inner_solver(double promised_slack) {
  return [promised_slack](const ArbdefectiveInstance& sub) {
    for (NodeId v = 0; v < sub.graph->num_nodes(); ++v) {
      const auto w = sub.lists[static_cast<std::size_t>(v)].weight();
      EXPECT_GT(static_cast<double>(w),
                promised_slack * sub.graph->degree(v))
          << "combinator broke its slack promise at node " << v;
    }
    return solve_arbdefective_slack1(
        sub, ListColoringOptions{PartitionEngine::kBeg18Oracle});
  };
}

/// Uniform arbdefective instance with weight > slack_needed·deg(v).
ArbdefectiveInstance uniform_arb_instance(const Graph& g, std::int64_t space,
                                          int defect,
                                          std::int64_t slack_needed,
                                          Rng& rng) {
  const int delta = g.max_degree();
  const auto list_size = static_cast<int>(std::min<std::int64_t>(
      space, slack_needed * delta / (defect + 1) + 2));
  return random_uniform_list_defective(g, space, list_size, defect, rng);
}

// ---- Claim 4.1 ------------------------------------------------------------

TEST(Claim41, ArbdefectiveImpliesDefectiveOnThetaBoundedGraphs) {
  Rng rng(61);
  // θ-bounded families: line graphs (θ<=2) and clique chains (θ=2).
  const Graph families[] = {line_graph(gnp(40, 0.15, rng)),
                            clique_chain(8, 6), cycle_power(60, 4)};
  for (const Graph& g : families) {
    const auto theta = neighborhood_independence_exact(g, 128);
    ASSERT_TRUE(theta.has_value());
    // Build a d-arbdefective coloring with the one-sweep partition.
    const Orientation o = Orientation::by_id(g);
    const LinialResult linial = linial_from_ids(g, o);
    for (int k : {2, 3, 5}) {
      const auto part =
          arbdefective_partition(g, linial.colors, linial.num_colors, k,
                                 PartitionEngine::kBeg18Oracle);
      const int d = max_oriented_defect(part.orientation, part.classes);
      // Claim 4.1: every node has at most (2d+1)·θ same-class neighbors.
      const auto und = undirected_defects(g, part.classes);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_LE(und[static_cast<std::size_t>(v)], (2 * d + 1) * *theta)
            << g.summary() << " k=" << k;
      }
    }
  }
}

// ---- Lemma 4.4 -------------------------------------------------------------

TEST(Lemma44, BoostsSlackAndStaysValid) {
  Rng rng(62);
  const Graph g = random_near_regular(120, 8, rng);
  const double mu = 3.0;
  // Slack > 2 instance: defect 1, enough colors.
  const ArbdefectiveInstance inst =
      uniform_arb_instance(g, 200, 1, 3, rng);
  ASSERT_GT(inst.slack(), 2.0);
  const ArbdefectiveResult res =
      slack_reduction_lemma44(inst, mu, checked_inner_solver(mu));
  EXPECT_TRUE(validate_arbdefective(inst, res));
  EXPECT_TRUE(all_colored(res.colors));
}

TEST(Lemma44, RejectsSlackTwoViolation) {
  Rng rng(63);
  const Graph g = complete(12);
  const ArbdefectiveInstance inst =
      random_uniform_list_defective(g, 64, 8, 0, rng);  // weight 8 < 2·11
  EXPECT_THROW(
      slack_reduction_lemma44(inst, 2.0, checked_inner_solver(2.0)),
      CheckError);
}

TEST(Lemma44, ClassInstancesHaveSmallDegree) {
  // The µ-slack promise relies on class subgraphs of degree <= deg/µ; the
  // checked solver above verifies the weight side. Here we additionally
  // verify the degree side through a recording solver.
  Rng rng(64);
  const Graph g = random_near_regular(150, 12, rng);
  const double mu = 4.0;
  const ArbdefectiveInstance inst = uniform_arb_instance(g, 300, 1, 3, rng);
  int max_class_degree = 0;
  const ArbSolver recorder = [&](const ArbdefectiveInstance& sub) {
    max_class_degree = std::max(max_class_degree, sub.graph->max_degree());
    return solve_arbdefective_slack1(
        sub, ListColoringOptions{PartitionEngine::kBeg18Oracle});
  };
  slack_reduction_lemma44(inst, mu, recorder);
  EXPECT_LE(max_class_degree, static_cast<int>(g.max_degree() / mu));
}

// ---- Lemma A.1 -------------------------------------------------------------

TEST(LemmaA1, HandlesSlackOneInstances) {
  Rng rng(65);
  const Graph g = random_near_regular(120, 8, rng);
  // Slack > 1 but NOT > 2: zero defects, deg+1 lists.
  const ArbdefectiveInstance inst = degree_plus_one_instance(g, 64, rng);
  ASSERT_GT(inst.slack(), 1.0);
  const double mu = 2.0;
  const ArbdefectiveResult res =
      slack_reduction_lemmaA1(inst, mu, checked_inner_solver(mu));
  EXPECT_TRUE(validate_arbdefective(inst, res));
  // Zero defects ⇒ proper.
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
}

TEST(LemmaA1, RejectsSlackOneViolation) {
  Rng rng(66);
  const Graph g = complete(10);
  const ArbdefectiveInstance inst =
      random_uniform_list_defective(g, 64, 5, 0, rng);  // weight 5 < 9
  EXPECT_THROW(
      slack_reduction_lemmaA1(inst, 2.0, checked_inner_solver(2.0)),
      CheckError);
}

// ---- Theorem 1.4 -----------------------------------------------------------

class Theorem14Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem14Test, DefectiveFromArbdefective) {
  const int family = GetParam();
  Rng rng(70 + static_cast<std::uint64_t>(family));
  Graph g;
  int theta = 0;
  switch (family) {
    case 0:
      g = clique_chain(10, 5);
      theta = 2;
      break;
    case 1:
      g = line_graph(gnp(25, 0.25, rng));
      theta = 2;
      break;
    default:
      g = disjoint_cliques(8, 6);
      theta = 1;
      break;
  }
  const std::int64_t S = 2;
  const std::int64_t requirement =
      theorem14_slack_requirement(g.delta_paper(), theta, S);
  // Uniform defect 3; list size so weight > requirement·deg.
  const int defect = 3;
  const std::int64_t space = requirement * g.max_degree() + 64;
  const auto list_size = static_cast<int>(
      requirement * g.max_degree() / (defect + 1) + 2);
  ListDefectiveInstance inst =
      random_uniform_list_defective(g, space, list_size, defect, rng);

  const ColoringResult res = defective_from_arbdefective(
      inst, theta, S, checked_inner_solver(static_cast<double>(S)));
  EXPECT_TRUE(all_colored(res.colors));
  EXPECT_TRUE(validate_list_defective(inst, res.colors));
}

INSTANTIATE_TEST_SUITE_P(Families, Theorem14Test, ::testing::Values(0, 1, 2));

TEST(Theorem14, TrivialDefectsColorImmediately) {
  // Colors with d_v(x) >= deg(v) are picked in the pre-pass.
  const Graph g = complete(6);
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = 8;
  // One shared color with defect >= deg plus filler weight is enough.
  inst.lists.assign(6, ColorList::uniform({0, 1, 2, 3, 4, 5, 6, 7}, 200));
  const ColoringResult res = defective_from_arbdefective(
      inst, /*theta=*/1, /*S=*/1, checked_inner_solver(1.0));
  EXPECT_TRUE(validate_list_defective(inst, res.colors));
  EXPECT_LE(res.metrics.rounds, 2);  // pre-pass only
}

TEST(Theorem14, RejectsInsufficientSlack) {
  Rng rng(71);
  const Graph g = clique_chain(5, 4);
  const ListDefectiveInstance inst =
      random_uniform_list_defective(g, 32, 4, 0, rng);
  EXPECT_THROW(
      defective_from_arbdefective(inst, 2, 1, checked_inner_solver(1.0)),
      CheckError);
}

// ---- Lemma 4.5 -------------------------------------------------------------

TEST(Lemma45, ColorSpaceSplitsAndRecombines) {
  Rng rng(72);
  const Graph g = random_near_regular(100, 6, rng);
  const std::int64_t S = 8, sigma = 2, p = 4;
  const ArbdefectiveInstance inst = uniform_arb_instance(g, 256, 1, 9, rng);
  ASSERT_GT(inst.slack(), static_cast<double>(S));

  // Part choice solved by the generic defective route: Theorem 1.3
  // machinery + orientation-free validation. For the test we use a simple
  // exact-greedy defective solver to isolate Lemma 4.5's own logic.
  const DefectiveSolver greedy_pd = [](const ListDefectiveInstance& pd) {
    ColoringResult r;
    const Graph& gg = *pd.graph;
    r.colors.assign(static_cast<std::size_t>(gg.num_nodes()), kNoColor);
    for (NodeId v = 0; v < gg.num_nodes(); ++v) {
      const auto& lst = pd.lists[static_cast<std::size_t>(v)];
      // Pick the color with most residual defect vs already-colored nbrs.
      Color best = kNoColor;
      std::int64_t best_margin = -1;
      for (std::size_t i = 0; i < lst.size(); ++i) {
        int used = 0;
        for (NodeId u : gg.neighbors(v)) {
          if (r.colors[static_cast<std::size_t>(u)] == lst.color(i)) ++used;
        }
        const std::int64_t margin = lst.defect(i) - used;
        if (margin > best_margin) {
          best_margin = margin;
          best = lst.color(i);
        }
      }
      r.colors[static_cast<std::size_t>(v)] = best;
    }
    r.metrics.rounds = gg.num_nodes();  // sequential greedy
    return r;
  };

  const ArbdefectiveResult res = color_space_reduction_pa(
      inst, S, p, sigma, greedy_pd,
      checked_inner_solver(static_cast<double>(S) / sigma));
  EXPECT_TRUE(validate_arbdefective(inst, res));
}

// ---- Theorem 1.5 -----------------------------------------------------------

TEST(Theorem15, BaseOnlyBranchOnLineGraph) {
  Rng rng(73);
  const Graph g = line_graph(gnp(30, 0.2, rng));
  ThetaColoringOptions options;
  options.branch = ThetaColoringOptions::Branch::kBaseOnly;
  const ColoringResult res = theta_delta_plus_one(g, 2, options);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  for (Color c : res.colors) EXPECT_LE(c, g.max_degree());
}

TEST(Theorem15, DeltaQuarterBranchOnSmallThetaGraph) {
  const Graph g = clique_chain(6, 4);  // Δ=6, θ=2, small
  ThetaColoringOptions options;
  options.branch = ThetaColoringOptions::Branch::kDeltaQuarter;
  options.base_color_threshold = 4;
  const ColoringResult res = theta_delta_plus_one(g, 2, options);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  for (Color c : res.colors) EXPECT_LE(c, g.max_degree());
}

TEST(Theorem15, GeneralListInstanceWithDefects) {
  Rng rng(74);
  const Graph g = disjoint_cliques(10, 5);  // θ = 1
  // Slack-1 instance with nonzero defects.
  const ArbdefectiveInstance inst =
      random_uniform_list_defective(g, 32, 3, 1, rng);  // weight 6 > deg 4
  ThetaColoringOptions options;
  options.branch = ThetaColoringOptions::Branch::kBaseOnly;
  const ArbdefectiveResult res = solve_theta_arbdefective(inst, 1, options);
  EXPECT_TRUE(validate_arbdefective(inst, res));
}

// ---- Edge coloring ---------------------------------------------------------

TEST(EdgeColoring, TwoDeltaMinusOneOnRandomGraph) {
  Rng rng(75);
  const Graph g = gnp(40, 0.12, rng);
  const EdgeColoringResult res = edge_coloring_two_delta_minus_one(g);
  EXPECT_TRUE(validate_edge_coloring(g, res.edge_colors));
  EXPECT_LE(res.num_colors, 2 * g.max_degree() - 1);
  for (Color c : res.edge_colors) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, res.num_colors);
  }
}

TEST(EdgeColoring, WorksOnStructuredGraphs) {
  for (const Graph& g : {cycle(30), grid(6, 6), complete(10)}) {
    const EdgeColoringResult res = edge_coloring_two_delta_minus_one(g);
    EXPECT_TRUE(validate_edge_coloring(g, res.edge_colors)) << g.summary();
  }
}

TEST(EdgeColoring, HypergraphRankThree) {
  Rng rng(76);
  const Hypergraph h = random_hypergraph(40, 50, 3, rng);
  const EdgeColoringResult res = hypergraph_edge_coloring(h);
  EXPECT_TRUE(validate_edge_coloring(h, res.edge_colors));
  const Graph lg = line_graph(h);
  EXPECT_LE(res.num_colors, lg.max_degree() + 1);
}

}  // namespace
}  // namespace dcolor
