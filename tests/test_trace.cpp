// Observability-layer tests: span-tree structure, exact agreement
// between trace totals and RoundMetrics, the null-tracer no-op
// guarantee, the JSONL/Chrome/summary sinks, the new RoundMetrics
// fields and their composition operators, and the JsonWriter NaN fix.
// Labelled `observability` in ctest.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "coloring/linial.h"
#include "core/congest_oldc.h"
#include "core/fast_two_sweep.h"
#include "core/instance.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace dcolor {
namespace {

OldcInstance uniform_instance(const Graph& g, Rng& rng) {
  Orientation o = Orientation::by_id(g);
  const int d = o.beta();
  return random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
}

std::vector<Color> identity_coloring(NodeId n) {
  std::vector<Color> ids(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

const TraceSpan* find_span(const Tracer& tracer, const std::string& name) {
  for (const TraceSpan& s : tracer.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---- span trees --------------------------------------------------------

TEST(Trace, FastTwoSweepSpanTreeNestsAndMatchesMetrics) {
  Rng rng(1800);
  const NodeId n = 2000;  // q = n is far past the direct-sweep threshold,
                          // so the defective-precoloring path runs
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  Tracer tracer;
  tracer.install();
  const ColoringResult res = fast_two_sweep(inst, ids, n, 2, 0.5);
  tracer.finish();

  const TraceSpan* root = find_span(tracer, "fast_two_sweep");
  const TraceSpan* psi = find_span(tracer, "defective_precoloring");
  const TraceSpan* kuhn = find_span(tracer, "kuhn_defective");
  const TraceSpan* sweep = find_span(tracer, "two_sweep");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(psi, nullptr);
  ASSERT_NE(kuhn, nullptr);
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(root->parent, -1);
  EXPECT_EQ(psi->parent, root->id);
  EXPECT_EQ(kuhn->parent, psi->id);
  EXPECT_EQ(sweep->parent, root->id);
  EXPECT_EQ(root->depth, 0);
  EXPECT_EQ(psi->depth, 1);
  EXPECT_EQ(kuhn->depth, 2);
  EXPECT_EQ(sweep->depth, 1);
  EXPECT_EQ(tracer.span_path(kuhn->id),
            "fast_two_sweep/defective_precoloring/kuhn_defective");

  // The root subtree accounts for every round and every message of the
  // composite execution: rounds add across the sequential sub-runs, and
  // each sent message is delivered before its run terminates, so the
  // delivered-based totals equal the sent-based RoundMetrics.
  EXPECT_EQ(root->subtree.rounds, res.metrics.rounds);
  EXPECT_EQ(root->subtree.executed, res.metrics.executed_rounds);
  EXPECT_EQ(root->subtree.messages, res.metrics.total_messages);
  EXPECT_EQ(root->subtree.bits, res.metrics.total_message_bits);
  // Both children saw real work, and they partition the root (the root
  // runs no Network of its own).
  EXPECT_GT(psi->subtree.rounds, 0);
  EXPECT_GT(sweep->subtree.rounds, 0);
  EXPECT_EQ(psi->subtree.rounds + sweep->subtree.rounds,
            root->subtree.rounds);
  EXPECT_EQ(kuhn->subtree.rounds, psi->subtree.rounds);
  EXPECT_EQ(tracer.total().rounds, res.metrics.rounds);
  EXPECT_EQ(tracer.unattributed().rounds, 0);
}

TEST(Trace, CongestOldcSpanTreeHasLevelsWithFastTwoSweepChildren) {
  Rng rng(33);
  const Graph g = random_near_regular(300, 4, rng);
  Orientation o = Orientation::by_id(g);
  const std::int64_t C = 64;
  const int beta = o.beta();
  const int defect = 2;
  const int list_size = std::min<std::int64_t>(
      C, static_cast<std::int64_t>(
             std::ceil(3.0 * std::sqrt(static_cast<double>(C)) * beta /
                       (defect + 1))) +
             1);
  const OldcInstance inst =
      random_uniform_oldc(g, std::move(o), C, list_size, defect, rng);
  const LinialResult linial = linial_from_ids(g, inst.orientation);

  Tracer tracer;
  tracer.install();
  const ColoringResult res =
      congest_oldc(inst, linial.colors, linial.num_colors);
  tracer.finish();

  const TraceSpan* root = find_span(tracer, "congest_oldc");
  const TraceSpan* level1 = find_span(tracer, "csr_level_1");
  const TraceSpan* final_level = find_span(tracer, "csr_final");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(level1, nullptr);
  ASSERT_NE(final_level, nullptr);
  EXPECT_EQ(level1->parent, root->id);
  EXPECT_EQ(final_level->parent, root->id);

  // Every level discharges through the fast_two_sweep base solver.
  std::int64_t fast_children_of_levels = 0;
  for (const TraceSpan& s : tracer.spans()) {
    if (s.name != "fast_two_sweep") continue;
    const TraceSpan& parent = tracer.spans()[static_cast<std::size_t>(
        s.parent)];
    EXPECT_TRUE(parent.name.rfind("csr_", 0) == 0) << parent.name;
    ++fast_children_of_levels;
  }
  EXPECT_GE(fast_children_of_levels, 2);
  EXPECT_EQ(root->subtree.rounds, res.metrics.rounds);
  EXPECT_EQ(root->subtree.messages, res.metrics.total_messages);
}

// ---- null tracer & determinism ----------------------------------------

TEST(Trace, SinklessTracerChangesNoColoringOrMetric) {
  Rng rng(1800);
  const NodeId n = 600;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  const ColoringResult plain = fast_two_sweep(inst, ids, n, 2, 0.5);
  ColoringResult traced;
  {
    Tracer tracer;
    tracer.install();
    traced = fast_two_sweep(inst, ids, n, 2, 0.5);
    tracer.finish();
  }
  EXPECT_EQ(traced.colors, plain.colors);
  EXPECT_EQ(traced.metrics.rounds, plain.metrics.rounds);
  EXPECT_EQ(traced.metrics.executed_rounds, plain.metrics.executed_rounds);
  EXPECT_EQ(traced.metrics.peak_active_nodes,
            plain.metrics.peak_active_nodes);
  EXPECT_EQ(traced.metrics.max_message_bits, plain.metrics.max_message_bits);
  EXPECT_EQ(traced.metrics.total_messages, plain.metrics.total_messages);
  EXPECT_EQ(traced.metrics.total_message_bits,
            plain.metrics.total_message_bits);
  EXPECT_EQ(traced.metrics.local_compute_ops,
            plain.metrics.local_compute_ops);
}

// ---- JSONL round-record invariants ------------------------------------

std::int64_t line_int(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  if (pos == std::string::npos) return 0;
  return std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(Trace, JsonlRoundRecordsSumExactlyToRunMetrics) {
  Rng rng(1800);
  const NodeId n = 2000;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  std::ostringstream trace;
  Tracer tracer;
  tracer.add_sink(make_jsonl_trace_sink(trace));
  tracer.install();
  const ColoringResult res = fast_two_sweep(inst, ids, n, 2, 0.5);
  tracer.finish();

  std::int64_t rounds = 0, executed = 0, dmsgs = 0, dbits = 0;
  std::int64_t smsgs = 0, sbits = 0, last_g_round = 0;
  std::istringstream is(trace.str());
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"type\":\"round\"") == std::string::npos) continue;
    rounds += 1 + line_int(line, "ff");
    executed += 1;
    dmsgs += line_int(line, "dmsgs");
    dbits += line_int(line, "dbits");
    smsgs += line_int(line, "smsgs");
    sbits += line_int(line, "sbits");
    last_g_round = std::max(last_g_round, line_int(line, "g_round"));
    // Every line carries the timing object as its final key.
    EXPECT_NE(line.find(",\"t\":{"), std::string::npos);
  }
  // (1 + ff) telescopes to metrics.rounds per run and runs concatenate.
  EXPECT_EQ(rounds, res.metrics.rounds);
  EXPECT_EQ(executed, res.metrics.executed_rounds);
  EXPECT_EQ(last_g_round, res.metrics.rounds);
  // Every sent message is delivered before its run terminates, so the
  // delivered sums equal the RoundMetrics send totals. The per-record
  // sent sums fall short by exactly the init (round-0) sends, which only
  // show up as round-1 deliveries.
  EXPECT_EQ(dmsgs, res.metrics.total_messages);
  EXPECT_EQ(dbits, res.metrics.total_message_bits);
  EXPECT_LE(smsgs, dmsgs);
  EXPECT_LE(sbits, dbits);
}

// ---- engine metrics: executed_rounds / peak_active_nodes ---------------

/// Every node sleeps until round 10, then finishes. The engine must
/// fast-forward rounds 1..9 (one materialized round) while the round
/// count still reads 10.
class SleepyProgram final : public SyncAlgorithm {
 public:
  explicit SleepyProgram(NodeId n)
      : acted_(static_cast<std::size_t>(n), 0) {}

  void init(NodeId, Mailbox&) override {}
  void step(NodeId v, int, Mailbox&) override {
    acted_[static_cast<std::size_t>(v)] = 1;
  }
  bool done(NodeId v) const override {
    return acted_[static_cast<std::size_t>(v)] != 0;
  }
  std::int64_t next_active_round(NodeId,
                                 std::int64_t after_round) const override {
    return after_round < 10 ? 10 : kNoWakeup;
  }

 private:
  std::vector<std::uint8_t> acted_;
};

TEST(Trace, ExecutedRoundsCountsMaterializedRoundsOnly) {
  Rng rng(7);
  const NodeId n = 300;
  const Graph g = random_near_regular(n, 4, rng);
  SleepyProgram program(n);
  Network net(g);
  net.set_num_threads(1);
  const RoundMetrics m = net.run(program, 20);
  EXPECT_EQ(m.rounds, 10);
  EXPECT_EQ(m.executed_rounds, 1);
  EXPECT_EQ(m.peak_active_nodes, static_cast<std::int64_t>(n));
}

// ---- RoundMetrics composition ------------------------------------------

TEST(Trace, RoundMetricsSequentialCompositionAddsRoundsMaxesPeak) {
  RoundMetrics a;
  a.rounds = 10;
  a.executed_rounds = 4;
  a.peak_active_nodes = 100;
  a.max_message_bits = 8;
  a.total_messages = 50;
  a.total_message_bits = 400;
  a.local_compute_ops = 7;
  RoundMetrics b;
  b.rounds = 5;
  b.executed_rounds = 5;
  b.peak_active_nodes = 300;
  b.max_message_bits = 12;
  b.total_messages = 20;
  b.total_message_bits = 240;
  b.local_compute_ops = 3;

  a += b;
  EXPECT_EQ(a.rounds, 15);
  EXPECT_EQ(a.executed_rounds, 9);
  EXPECT_EQ(a.peak_active_nodes, 300);  // phases never overlap: max
  EXPECT_EQ(a.max_message_bits, 12);
  EXPECT_EQ(a.total_messages, 70);
  EXPECT_EQ(a.total_message_bits, 640);
  EXPECT_EQ(a.local_compute_ops, 10);
}

TEST(Trace, RoundMetricsParallelCompositionMaxesRoundsAddsPeak) {
  RoundMetrics a;
  a.rounds = 10;
  a.executed_rounds = 4;
  a.peak_active_nodes = 100;
  a.max_message_bits = 8;
  a.total_messages = 50;
  a.total_message_bits = 400;
  a.local_compute_ops = 7;
  RoundMetrics b;
  b.rounds = 5;
  b.executed_rounds = 5;
  b.peak_active_nodes = 300;
  b.max_message_bits = 12;
  b.total_messages = 20;
  b.total_message_bits = 240;
  b.local_compute_ops = 3;

  a.merge_parallel(b);
  EXPECT_EQ(a.rounds, 10);
  EXPECT_EQ(a.executed_rounds, 5);
  EXPECT_EQ(a.peak_active_nodes, 400);  // disjoint parts, same rounds: add
  EXPECT_EQ(a.max_message_bits, 12);
  EXPECT_EQ(a.total_messages, 70);
  EXPECT_EQ(a.total_message_bits, 640);
  EXPECT_EQ(a.local_compute_ops, 10);
}

// ---- sinks -------------------------------------------------------------

TEST(Trace, ChromeSinkWritesWellFormedTraceEventJson) {
  Rng rng(1800);
  const NodeId n = 600;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  const std::string path = testing::TempDir() + "dcolor_trace_chrome.json";
  {
    Tracer tracer;
    tracer.add_sink(make_chrome_trace_sink(path));
    tracer.install();
    fast_two_sweep(inst, ids, n, 2, 0.5);
    tracer.finish();
  }
  std::ifstream is(path);
  ASSERT_TRUE(static_cast<bool>(is));
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string content = ss.str();
  std::remove(path.c_str());
  EXPECT_EQ(content.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);  // rounds
  EXPECT_NE(content.find("\"ph\":\"B\""), std::string::npos);  // spans
  EXPECT_NE(content.find("\"name\":\"fast_two_sweep\""), std::string::npos);
  EXPECT_NE(content.find("]}"), std::string::npos);
  // Balanced braces is a decent proxy for well-formedness without a
  // JSON parser (there are no braces inside strings in this format).
  std::int64_t depth = 0;
  for (const char c : content) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Trace, SummarySinkRendersHierarchicalTable) {
  Rng rng(1800);
  const NodeId n = 600;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  std::ostringstream out;
  Tracer tracer;
  tracer.add_sink(make_summary_trace_sink(out));
  tracer.install();
  fast_two_sweep(inst, ids, n, 2, 0.5);
  tracer.finish();

  const std::string text = out.str();
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
  EXPECT_NE(text.find("fast_two_sweep"), std::string::npos);
  EXPECT_NE(text.find("  two_sweep"), std::string::npos);  // indented child
}

// ---- JsonWriter NaN/Inf regression ------------------------------------

TEST(Trace, JsonWriterEmitsNullForNonFiniteDoubles) {
  using bench::JsonWriter;
  EXPECT_EQ(JsonWriter::num(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::num(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonWriter::num(-std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonWriter::num(1.5), "1.5");
  EXPECT_EQ(JsonWriter::num(std::int64_t{42}), "42");
}

}  // namespace
}  // namespace dcolor
