// Tests for the central solver registry (core/solver_registry.h) and the
// uniform Solver interface (core/solver.h): enumeration, lookup by name
// and alias, capability descriptors, premise predicates (including the
// sink convention), validate_solve dispatch, and equivalence between
// registry dispatch and the native entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "coloring/linial.h"
#include "core/instance.h"
#include "core/list_coloring.h"
#include "core/solver_registry.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {
namespace {

using Input = SolverCapabilities::Input;

/// Eq. (2) regime instance for Two-Sweep with parameter p: uniform defect
/// 1, lists of size p² + p + 1 where p = β/2 + 1 (the e13 construction).
OldcInstance eq2_instance(const Graph& g, int* p_out, Rng& rng) {
  Orientation o = Orientation::by_id(g);
  const int p = o.beta() / 2 + 1;
  const int list_size = p * p + p + 1;
  *p_out = p;
  return random_uniform_oldc(g, std::move(o), list_size, list_size,
                             /*defect=*/1, rng);
}

TEST(SolverRegistry, EnumeratesEveryBuiltinSolver) {
  const std::vector<const Solver*> all = SolverRegistry::get().solvers();
  std::vector<std::string> names;
  names.reserve(all.size());
  for (const Solver* s : all) names.emplace_back(s->name());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // Every algorithm family is reachable: the paper's core solvers
  // (Theorems 1.1-1.5), the standalone coloring primitives, the
  // baselines, and the differential-testing oracle.
  for (const char* expected :
       {"two_sweep", "fast_two_sweep", "congest_oldc", "slack1_arbdefective",
        "deg_plus_one", "theta", "linial", "kuhn_defective", "greedy",
        "greedy_arbdefective", "luby", "oracle_greedy"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(SolverRegistry, FindsByNameAndAlias) {
  const SolverRegistry& reg = SolverRegistry::get();
  const Solver* fast = reg.find("fast_two_sweep");
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(reg.find("fast"), fast);          // alias -> same object
  EXPECT_EQ(reg.find("congest"), reg.find("congest_oldc"));
  EXPECT_EQ(reg.find("degplus1"), reg.find("deg_plus_one"));
  EXPECT_EQ(reg.find("slack1"), reg.find("slack1_arbdefective"));
  EXPECT_EQ(reg.find("kuhn"), reg.find("kuhn_defective"));
  EXPECT_EQ(reg.find("no_such_solver"), nullptr);
}

TEST(SolverRegistry, RequireThrowsNamingTheAvailableSolvers) {
  EXPECT_EQ(&SolverRegistry::get().require("two_sweep"),
            SolverRegistry::get().find("two_sweep"));
  try {
    SolverRegistry::get().require("bogus");
    FAIL() << "require(bogus) did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("two_sweep"), std::string::npos);
  }
}

TEST(SolverRegistry, AliasesOfReportsRegisteredAliases) {
  const SolverRegistry& reg = SolverRegistry::get();
  const std::vector<std::string> fast = reg.aliases_of("fast_two_sweep");
  EXPECT_NE(std::find(fast.begin(), fast.end(), "fast"), fast.end());
  EXPECT_TRUE(reg.aliases_of("two_sweep").empty());
}

TEST(SolverRegistry, CapabilityFlagsPartitionTheFamilies) {
  std::vector<std::string> oldc, congest, sequential;
  for (const Solver* s : SolverRegistry::get().solvers()) {
    const SolverCapabilities caps = s->capabilities();
    if (caps.input == Input::kOldc && caps.lists && caps.defects) {
      oldc.emplace_back(s->name());
    }
    if (caps.congest) congest.emplace_back(s->name());
    if (!caps.distributed) sequential.emplace_back(s->name());
  }
  // The fuzz harness's OLDC axis (plus the oracle).
  EXPECT_EQ(oldc, (std::vector<std::string>{"congest_oldc", "fast_two_sweep",
                                            "oracle_greedy", "two_sweep"}));
  EXPECT_EQ(congest, std::vector<std::string>{"congest_oldc"});
  // At least two sequential baselines are registered (acceptance
  // criterion: baselines reachable through the registry).
  EXPECT_GE(sequential.size(), 2u);
  EXPECT_NE(std::find(sequential.begin(), sequential.end(), "greedy"),
            sequential.end());
}

TEST(SolverRegistry, CapabilitySummaryIsHumanReadable) {
  const Solver& ts = SolverRegistry::get().require("two_sweep");
  const std::string summary = ts.capabilities().summary();
  EXPECT_NE(summary.find("oldc"), std::string::npos);
  EXPECT_NE(summary.find("lists"), std::string::npos);
  EXPECT_NE(summary.find("defects"), std::string::npos);
}

TEST(SolverPremise, TwoSweepAcceptsEq2Regime) {
  Rng rng(71);
  const Graph g = random_near_regular(80, 4, rng);
  int p = 0;
  const OldcInstance inst = eq2_instance(g, &p, rng);
  SolveRequest req;
  req.oldc = &inst;
  req.params.p = p;
  EXPECT_TRUE(SolverRegistry::get().require("two_sweep").premise_holds(req));
}

TEST(SolverPremise, TwoSweepRejectsStarvedLists) {
  Rng rng(72);
  const Graph g = complete(12);
  Orientation o = Orientation::by_id(g);
  OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 1024, /*list_size=*/2,
                          /*defect=*/0, rng);
  SolveRequest req;
  req.oldc = &inst;
  req.params.p = 2;
  EXPECT_FALSE(SolverRegistry::get().require("two_sweep").premise_holds(req));
}

TEST(SolverPremise, SinksOnlyNeedANonEmptyList) {
  // Eq. (2)/(7)/Theorem 1.2 only bind at outdegree >= 1: on an edgeless
  // graph every node is a sink and a single-color list suffices.
  Rng rng(73);
  const Graph g = Graph::from_edges(10, {});
  Orientation o = Orientation::by_id(g);
  OldcInstance inst =
      random_uniform_oldc(g, std::move(o), 16, /*list_size=*/1,
                          /*defect=*/0, rng);
  SolveRequest req;
  req.oldc = &inst;
  for (const char* name : {"two_sweep", "fast_two_sweep", "congest_oldc"}) {
    EXPECT_TRUE(SolverRegistry::get().require(name).premise_holds(req))
        << name;
  }
}

TEST(SolverPremise, DefaultPremiseIsTrue) {
  // Graph-only solvers have no entry premise.
  SolveRequest req;
  const Graph g = cycle(8);
  req.graph = &g;
  EXPECT_TRUE(SolverRegistry::get().require("greedy").premise_holds(req));
  EXPECT_TRUE(SolverRegistry::get().require("luby").premise_holds(req));
}

TEST(SolverSolve, RegistryDispatchMatchesNativeTwoSweep) {
  Rng rng(74);
  const Graph g = random_near_regular(100, 4, rng);
  int p = 0;
  const OldcInstance inst = eq2_instance(g, &p, rng);
  const LinialResult lin = linial_from_ids(g, inst.orientation);

  const ColoringResult native =
      two_sweep(inst, lin.colors, lin.num_colors, p);

  const Solver& solver = SolverRegistry::get().require("two_sweep");
  SolveRequest req;
  req.oldc = &inst;
  req.initial_coloring = &lin.colors;
  req.q = lin.num_colors;
  req.params.p = p;
  RunContext ctx;
  const SolveResult via_registry = solver.solve(req, ctx);

  EXPECT_EQ(via_registry.colors, native.colors);
  EXPECT_EQ(via_registry.metrics.rounds, native.metrics.rounds);
  EXPECT_TRUE(validate_solve(req, solver.capabilities(), via_registry));
  // The context accumulated the same metrics the call returned.
  EXPECT_EQ(ctx.metrics.rounds, via_registry.metrics.rounds);
}

TEST(SolverSolve, RegistryDispatchMatchesNativeDegPlusOne) {
  Rng rng(75);
  const Graph g = random_near_regular(120, 6, rng);
  const std::int64_t C = 2 * (g.max_degree() + 1);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);

  // SolverParams defaults to the BEG18-oracle engine; pin the native call
  // to the same engine for an apples-to-apples comparison.
  const ColoringResult native = solve_degree_plus_one(
      inst, ListColoringOptions{PartitionEngine::kBeg18Oracle});

  const Solver& solver = SolverRegistry::get().require("deg_plus_one");
  SolveRequest req;
  req.list_defective = &inst;
  ASSERT_TRUE(solver.premise_holds(req));
  RunContext ctx;
  const SolveResult via_registry = solver.solve(req, ctx);

  EXPECT_EQ(via_registry.colors, native.colors);
  EXPECT_TRUE(is_proper_coloring(g, via_registry.colors));
  EXPECT_TRUE(validate_solve(req, solver.capabilities(), via_registry));
  // Framework solvers surface the per-phase breakdown on the result.
  EXPECT_GE(via_registry.breakdown.levels, 1);
}

TEST(SolverSolve, ComputesLinialWhenNoInitialColoringGiven) {
  Rng rng(76);
  const Graph g = random_near_regular(60, 4, rng);
  int p = 0;
  const OldcInstance inst = eq2_instance(g, &p, rng);
  const Solver& solver = SolverRegistry::get().require("two_sweep");
  SolveRequest req;
  req.oldc = &inst;
  req.params.p = p;
  RunContext ctx;
  const SolveResult res = solver.solve(req, ctx);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  // The folded-in Linial run costs rounds on top of the sweeps.
  const LinialResult lin = linial_from_ids(g, inst.orientation);
  const ColoringResult native = two_sweep(inst, lin.colors, lin.num_colors, p);
  EXPECT_EQ(res.metrics.rounds,
            lin.metrics.rounds + native.metrics.rounds);
}

TEST(SolverSolve, ValidateSolveRejectsCorruptedOutput) {
  Rng rng(77);
  const Graph g = random_near_regular(60, 4, rng);
  int p = 0;
  const OldcInstance inst = eq2_instance(g, &p, rng);
  const Solver& solver = SolverRegistry::get().require("two_sweep");
  SolveRequest req;
  req.oldc = &inst;
  req.params.p = p;
  RunContext ctx;
  SolveResult res = solver.solve(req, ctx);
  ASSERT_TRUE(validate_solve(req, solver.capabilities(), res));
  res.colors[0] = inst.color_space + 41;  // not on any list
  EXPECT_FALSE(validate_solve(req, solver.capabilities(), res));
}

TEST(SolverSolve, GraphBaselinesSolveThroughTheRegistry) {
  Rng rng(78);
  const Graph g = random_near_regular(80, 6, rng);
  SolveRequest req;
  req.graph = &g;
  for (const char* name : {"greedy", "luby", "linial", "theta"}) {
    const Solver& solver = SolverRegistry::get().require(name);
    RunContext ctx;
    ctx.seed = 7;
    const SolveResult res = solver.solve(req, ctx);
    EXPECT_TRUE(validate_solve(req, solver.capabilities(), res)) << name;
    if (solver.capabilities().proper_output) {
      EXPECT_TRUE(is_proper_coloring(g, res.colors)) << name;
    }
  }
}

TEST(SolverSolve, RandomizedSolversDeriveFromContextSeed) {
  Rng rng(79);
  const Graph g = random_near_regular(80, 6, rng);
  SolveRequest req;
  req.graph = &g;
  const Solver& luby = SolverRegistry::get().require("luby");
  RunContext a, b, c;
  a.seed = 5;
  b.seed = 5;
  c.seed = 6;
  const SolveResult ra = luby.solve(req, a);
  const SolveResult rb = luby.solve(req, b);
  const SolveResult rc = luby.solve(req, c);
  EXPECT_EQ(ra.colors, rb.colors);  // same seed -> same run
  EXPECT_TRUE(is_proper_coloring(g, rc.colors));
}

TEST(SolverSolve, ArbdefectiveSolverOutputsAnOrientation) {
  Rng rng(80);
  const Graph g = random_near_regular(90, 5, rng);
  const std::int64_t C = 2 * (g.max_degree() + 1);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
  const Solver& solver = SolverRegistry::get().require("slack1_arbdefective");
  EXPECT_TRUE(solver.capabilities().outputs_orientation);
  SolveRequest req;
  req.list_defective = &inst;
  ASSERT_TRUE(solver.premise_holds(req));
  RunContext ctx;
  const SolveResult res = solver.solve(req, ctx);
  EXPECT_TRUE(res.has_orientation);
  EXPECT_TRUE(validate_solve(req, solver.capabilities(), res));
}

}  // namespace
}  // namespace dcolor
