// Tests for the CONGEST pipeline: Lemma 3.5 color space reduction,
// Theorem 1.2 (congest_oldc) and Theorem 1.3 (solve_degree_plus_one).
#include <gtest/gtest.h>

#include <cmath>

#include "coloring/linial.h"
#include "core/color_space_reduction.h"
#include "core/congest_oldc.h"
#include "core/fast_two_sweep.h"
#include "core/instance.h"
#include "core/list_coloring.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/logstar.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {
namespace {

std::pair<std::vector<Color>, std::int64_t> initial_coloring(
    const Graph& g, const Orientation& o) {
  const LinialResult linial = linial_from_ids(g, o);
  return {linial.colors, linial.num_colors};
}

/// Instance with uniform defect sized so Theorem 1.2's premise
/// weight >= 3·√C·β_v holds with small margin.
OldcInstance theorem12_instance(const Graph& g, Orientation o,
                                std::int64_t color_space, Rng& rng) {
  const double sqrt_c = std::sqrt(static_cast<double>(color_space));
  OldcInstance inst;
  const int beta = o.beta();
  const int defect = 2;
  const int list_size = std::min<std::int64_t>(
      color_space,
      static_cast<std::int64_t>(std::ceil(3.0 * sqrt_c * beta / (defect + 1))) +
          1);
  inst = random_uniform_oldc(g, std::move(o), color_space, list_size, defect,
                             rng);
  return inst;
}

TEST(ColorSpaceReduction, SolvesWithTwoSweepBase) {
  Rng rng(31);
  const Graph g = random_near_regular(150, 6, rng);
  Orientation o = Orientation::by_id(g);
  const std::int64_t C = 256;
  OldcInstance inst = theorem12_instance(g, std::move(o), C, rng);
  ASSERT_TRUE(inst.satisfies_theorem12());
  const auto [init, q] = initial_coloring(g, inst.orientation);

  // λ = 4, base = plain Two-Sweep with p = 2 (ε = 0 keeps it simple).
  const OldcSolver base = [](const OldcInstance& sub,
                             const std::vector<Color>& initial,
                             std::int64_t sub_q) {
    return two_sweep(sub, initial, sub_q, 2);
  };
  const ColoringResult res =
      color_space_reduction(inst, init, q, 4, 2.0, base);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
}

TEST(ColorSpaceReduction, LevelsMultiplyRounds) {
  Rng rng(32);
  const Graph g = random_near_regular(120, 4, rng);
  Orientation o = Orientation::by_id(g);
  const std::int64_t C = 1024;
  OldcInstance inst = theorem12_instance(g, std::move(o), C, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  std::int64_t invocations = 0;
  const OldcSolver base = [&](const OldcInstance& sub,
                              const std::vector<Color>& initial,
                              std::int64_t sub_q) {
    ++invocations;
    return two_sweep(sub, initial, sub_q, 2);
  };
  color_space_reduction(inst, init, q, 4, 2.0, base);
  EXPECT_EQ(invocations, 5);  // ⌈log₄ 1024⌉ = 5 levels
}

class CongestOldcTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CongestOldcTest, ValidAcrossColorSpaceSizes) {
  const std::int64_t C = GetParam();
  Rng rng(33 + static_cast<std::uint64_t>(C));
  const Graph g = random_near_regular(150, 4, rng);
  Orientation o = Orientation::by_id(g);
  OldcInstance inst = theorem12_instance(g, std::move(o), C, rng);
  ASSERT_TRUE(inst.satisfies_theorem12());
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = congest_oldc(inst, init, q);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
}

INSTANTIATE_TEST_SUITE_P(Spaces, CongestOldcTest,
                         ::testing::Values(16, 64, 256, 1024));

TEST(CongestOldc, MessageBitsLogarithmic) {
  // Theorem 1.2: messages of O(log q + log C) bits even for large C.
  Rng rng(34);
  const Graph g = random_near_regular(150, 4, rng);
  Orientation o = Orientation::by_id(g);
  const std::int64_t C = 4096;
  OldcInstance inst = theorem12_instance(g, std::move(o), C, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = congest_oldc(inst, init, q);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  // Inner instances live on λ = 4 colors: each message ships an initial
  // color (log q' bits for the level-local defective coloring) plus at
  // most 2 part indices. Generous budget: 4·(log q + log C) bits.
  const int budget = 4 * (ceil_log2(static_cast<std::uint64_t>(q)) +
                          ceil_log2(static_cast<std::uint64_t>(C)));
  EXPECT_LE(res.metrics.max_message_bits, budget);
}

TEST(CongestOldc, RejectsPremiseViolation) {
  Rng rng(35);
  const Graph g = complete(16);
  Orientation o = Orientation::by_id(g);
  // Tiny lists: weight ≈ list_size << 3√C·β.
  OldcInstance inst = random_uniform_oldc(g, std::move(o), 1024, 4, 0, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  EXPECT_THROW(congest_oldc(inst, init, q), CheckError);
}

TEST(CongestOldc, ZeroDefectProperListColoring) {
  // Pure list coloring through the CONGEST pipeline: defect 0, lists of
  // size ≥ 3√C·β.
  Rng rng(36);
  const Graph g = random_near_regular(100, 4, rng);
  Orientation o = Orientation::by_id(g);
  const std::int64_t C = 400;
  const int beta = o.beta();
  const int list_size =
      static_cast<int>(3.0 * std::sqrt(static_cast<double>(C)) * beta) + 1;
  OldcInstance inst =
      random_uniform_oldc(g, std::move(o), C, list_size, 0, rng);
  const auto [init, q] = initial_coloring(g, inst.orientation);
  const ColoringResult res = congest_oldc(inst, init, q);
  EXPECT_TRUE(validate_oldc(inst, res.colors));
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
}

// ---- Theorem 1.3: (deg+1)-list coloring ----------------------------------

class DegPlusOneTest : public ::testing::TestWithParam<PartitionEngine> {};

TEST_P(DegPlusOneTest, ProperColoringFromLists) {
  Rng rng(41);
  const Graph g = random_near_regular(200, 8, rng);
  const std::int64_t C = 2 * (g.max_degree() + 1);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
  ListColoringOptions options;
  options.engine = GetParam();
  const ColoringResult res = solve_degree_plus_one(inst, options);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  EXPECT_TRUE(validate_list_defective(inst, res.colors));
}

INSTANTIATE_TEST_SUITE_P(Engines, DegPlusOneTest,
                         ::testing::Values(PartitionEngine::kHonest,
                                           PartitionEngine::kBeg18Oracle));

TEST(DegPlusOne, DeltaPlusOneClassicInstance) {
  // Every node gets the full palette {0..Δ}: the classic (Δ+1)-coloring.
  Rng rng(42);
  const Graph g = gnp(150, 0.06, rng);
  const ListDefectiveInstance inst = delta_plus_one_instance(g);
  ListColoringOptions options;
  options.engine = PartitionEngine::kBeg18Oracle;
  const ColoringResult res = solve_degree_plus_one(inst, options);
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  for (Color c : res.colors) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, g.max_degree());
  }
}

TEST(DegPlusOne, WorksOnStructuredGraphs) {
  ListColoringOptions options;
  options.engine = PartitionEngine::kBeg18Oracle;
  for (const Graph& g : {cycle(50), grid(8, 8), hypercube(5), complete(20)}) {
    const ListDefectiveInstance inst = delta_plus_one_instance(g);
    const ColoringResult res = solve_degree_plus_one(inst, options);
    EXPECT_TRUE(is_proper_coloring(g, res.colors)) << g.summary();
  }
}

TEST(DegPlusOne, RejectsTooSmallLists) {
  Rng rng(43);
  const Graph g = complete(10);
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = 64;
  inst.lists.assign(10, ColorList::zero_defect({0, 1, 2}));  // deg = 9
  EXPECT_THROW(solve_degree_plus_one(inst), CheckError);
}

TEST(DegPlusOne, RejectsNonzeroDefects) {
  const Graph g = path(3);
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = 8;
  inst.lists.assign(3, ColorList::uniform({0, 1, 2, 3}, 1));
  EXPECT_THROW(solve_degree_plus_one(inst), CheckError);
}

TEST(DegPlusOne, BreakdownAccountsForAllRounds) {
  Rng rng(45);
  const Graph g = random_near_regular(200, 8, rng);
  const std::int64_t C = 2 * (g.max_degree() + 1);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
  RunContext ctx;
  const ColoringResult res = solve_degree_plus_one(
      inst, ctx, ListColoringOptions{PartitionEngine::kBeg18Oracle});
  const ListColoringBreakdown& breakdown = ctx.breakdown;
  EXPECT_TRUE(is_proper_coloring(g, res.colors));
  // The phases partition the total round count exactly.
  EXPECT_EQ(res.metrics.rounds,
            breakdown.initial_coloring_rounds + breakdown.partition_rounds +
                breakdown.class_rounds + breakdown.idle_slot_rounds);
  EXPECT_GE(breakdown.levels, 1);
  EXPECT_GE(breakdown.classes_run, 1);
}

TEST(DegPlusOne, OracleEngineRoundsGrowSlowly) {
  // Shape check: oracle-engine rounds at Δ=16 should be far below the
  // honest engine's (which sweeps O(µ²) classes per level).
  Rng rng(44);
  const Graph g = random_near_regular(300, 16, rng);
  const std::int64_t C = 2 * (g.max_degree() + 1);
  const ListDefectiveInstance inst = degree_plus_one_instance(g, C, rng);
  ListColoringOptions fast{PartitionEngine::kBeg18Oracle};
  ListColoringOptions slow{PartitionEngine::kHonest};
  const ColoringResult rf = solve_degree_plus_one(inst, fast);
  const ColoringResult rs = solve_degree_plus_one(inst, slow);
  EXPECT_TRUE(is_proper_coloring(g, rf.colors));
  EXPECT_TRUE(is_proper_coloring(g, rs.colors));
  EXPECT_LT(rf.metrics.rounds, rs.metrics.rounds);
}

}  // namespace
}  // namespace dcolor
