// Tests for src/graph/algorithms and the adversarial instance generators.
#include <gtest/gtest.h>

#include "core/instance.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dcolor {
namespace {

TEST(Components, CountsAndLabels) {
  const Graph g = disjoint_cliques(4, 3);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      EXPECT_EQ(c.component[static_cast<std::size_t>(v)],
                c.component[static_cast<std::size_t>(u)]);
    }
  }
}

TEST(Components, ConnectedGraphIsOneComponent) {
  Rng rng(5001);
  const Graph t = random_tree(100, rng);
  EXPECT_EQ(connected_components(t).count, 1);
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bfs, UnreachableIsMinusOne) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(path(6)), 5);
  EXPECT_EQ(diameter(cycle(8)), 4);
  EXPECT_EQ(diameter(complete(5)), 1);
  EXPECT_EQ(diameter(grid(3, 3)), 4);
  EXPECT_EQ(diameter(hypercube(5)), 5);
}

TEST(Degeneracy, KnownValues) {
  Rng rng(5002);
  EXPECT_EQ(degeneracy_number(random_tree(50, rng)), 1);
  EXPECT_EQ(degeneracy_number(cycle(9)), 2);
  EXPECT_EQ(degeneracy_number(complete(6)), 5);
  EXPECT_EQ(degeneracy_number(grid(5, 5)), 2);
  EXPECT_EQ(degeneracy_number(Graph::from_edges(3, {})), 0);
}

TEST(Eccentricity, CenterOfPath) {
  const Graph g = path(5);
  EXPECT_EQ(eccentricity(g, 2), 2);
  EXPECT_EQ(eccentricity(g, 0), 4);
}

TEST(AdversarialGenerators, ContentionInstanceSharesOneList) {
  const Graph g = cycle(6);
  const OldcInstance inst =
      contention_oldc(g, Orientation::by_id(g), 5, 2);
  EXPECT_EQ(inst.color_space, 5);
  for (NodeId v = 0; v < 6; ++v) {
    const auto cs = inst.lists[static_cast<std::size_t>(v)].colors();
    EXPECT_EQ(std::vector<Color>(cs.begin(), cs.end()),
              (std::vector<Color>{0, 1, 2, 3, 4}));
    EXPECT_EQ(inst.lists[static_cast<std::size_t>(v)].weight(), 15);
  }
}

TEST(AdversarialGenerators, TowardLargerOrientsEveryEdge) {
  Rng rng(5003);
  const Graph g = gnp(60, 0.1, rng);
  std::vector<Color> values(60);
  for (auto& v : values) v = static_cast<Color>(rng.below(10));  // with ties
  const Orientation o = orientation_toward_larger(g, values);
  std::int64_t arcs = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    arcs += o.outdegree(v);
    for (NodeId u : o.out_neighbors(v)) {
      const Color vu = values[static_cast<std::size_t>(u)];
      const Color vv = values[static_cast<std::size_t>(v)];
      EXPECT_TRUE(vu > vv || (vu == vv && u > v));
    }
  }
  EXPECT_EQ(arcs, g.num_edges());
}

}  // namespace
}  // namespace dcolor
