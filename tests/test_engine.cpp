// Dense-round engine tests (`ctest -L engine`): the bit-identity
// contract of sim/engine.h and its selection knobs.
//
//   * forced kVector == forced kScalar == kAuto — colors AND the full
//     RoundMetrics — at every thread count, for the Two-Sweep program,
//     the whole Fast-Two-Sweep pipeline, and dense (clique-chain)
//     graphs;
//   * forced kVector on sparse-round instances (the kernel declines /
//     spills and the scalar path finishes the round) stays identical;
//   * threshold-straddling runs under kAuto really are mixed-engine:
//     the per-round trace records carry both engine labels, and a
//     forced-scalar run carries only "scalar";
//   * fast-forwarded quiet stretches (rounds > executed_rounds) don't
//     perturb cross-engine identity;
//   * the knob plumbing: engine_from_string/engine_name, the
//     default/override resolution order, RunScope installing
//     RunContext::engine as the thread-local override, Network's
//     per-instance setting, and the batch runner's `sim_engine` key;
//   * the SIMD primitives (util/simd.h) against scalar references —
//     the `engine_portable_fallback` ctest entry re-runs this whole
//     binary under DCOLOR_SIMD=off to pin the portable path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/fast_two_sweep.h"
#include "core/instance.h"
#include "core/solver_registry.h"
#include "core/two_sweep.h"
#include "graph/generators.h"
#include "sim/batch_runner.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/gf.h"
#include "util/rng.h"
#include "util/simd.h"

#include "test_harness.h"

namespace dcolor {
namespace {

/// Sets the process-default engine for the enclosing scope (the knob the
/// direct pipeline entry points resolve to when no override is active).
class ScopedDefaultEngine {
 public:
  explicit ScopedDefaultEngine(EngineKind kind) : saved_(default_engine()) {
    set_default_engine(kind);
  }
  ~ScopedDefaultEngine() { set_default_engine(saved_); }

  ScopedDefaultEngine(const ScopedDefaultEngine&) = delete;
  ScopedDefaultEngine& operator=(const ScopedDefaultEngine&) = delete;

 private:
  EngineKind saved_;
};

OldcInstance uniform_instance(const Graph& g, Rng& rng) {
  Orientation o = Orientation::by_id(g);
  const int d = o.beta();
  return random_uniform_oldc(g, std::move(o), 40, 10, d, rng);
}

std::vector<Color> identity_coloring(NodeId n) {
  std::vector<Color> ids(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  return ids;
}

// ---- knob plumbing ------------------------------------------------------

TEST(Engine, NameRoundTrip) {
  EXPECT_EQ(engine_from_string("auto"), EngineKind::kAuto);
  EXPECT_EQ(engine_from_string("scalar"), EngineKind::kScalar);
  EXPECT_EQ(engine_from_string("vector"), EngineKind::kVector);
  EXPECT_STREQ(engine_name(EngineKind::kAuto), "auto");
  EXPECT_STREQ(engine_name(EngineKind::kScalar), "scalar");
  EXPECT_STREQ(engine_name(EngineKind::kVector), "vector");
  EXPECT_THROW(engine_from_string("simd"), CheckError);
  EXPECT_THROW(engine_from_string(""), CheckError);
}

TEST(Engine, OverrideBeatsDefaultAndRestores) {
  const ScopedDefaultEngine def(EngineKind::kScalar);
  Rng rng(3);
  const Graph g = random_near_regular(40, 4, rng);
  Network net(g);
  EXPECT_EQ(net.engine(), EngineKind::kScalar);  // falls to the default

  const EngineKind prev = set_engine_override(EngineKind::kVector);
  EXPECT_EQ(prev, EngineKind::kAuto);
  EXPECT_EQ(net.engine(), EngineKind::kVector);  // override wins

  net.set_engine(EngineKind::kScalar);
  EXPECT_EQ(net.engine(), EngineKind::kScalar);  // instance wins over all

  set_engine_override(prev);  // kAuto clears
  EXPECT_EQ(engine_override(), EngineKind::kAuto);
}

TEST(Engine, RunScopeInstallsContextEngine) {
  RunContext ctx;
  ctx.engine = EngineKind::kVector;
  EXPECT_EQ(engine_override(), EngineKind::kAuto);
  {
    const RunScope scope(ctx);
    EXPECT_EQ(engine_override(), EngineKind::kVector);
  }
  EXPECT_EQ(engine_override(), EngineKind::kAuto);
}

TEST(Engine, RegistrySolversDeclareDenseKernels) {
  const SolverRegistry& registry = SolverRegistry::get();
  const SolverCapabilities ts = registry.require("two_sweep").capabilities();
  EXPECT_TRUE(ts.dense_kernel);
  EXPECT_NE(ts.summary().find("dense"), std::string::npos);
  const SolverCapabilities fts =
      registry.require("fast_two_sweep").capabilities();
  EXPECT_TRUE(fts.dense_kernel);
}

// ---- bit-identity across engines ---------------------------------------

TEST(Engine, FastTwoSweepIdenticalAcrossEnginesAndThreads) {
  Rng rng(1800);
  const NodeId n = 2000;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  ColoringResult baseline;
  {
    ScopedDefaultThreads t(1);
    const ScopedDefaultEngine e(EngineKind::kScalar);
    baseline = fast_two_sweep(inst, ids, n, 2, 0.5);
  }
  ASSERT_TRUE(validate_oldc(inst, baseline.colors));
  // The quiet stretches between Two-Sweep turns fast-forward; the
  // cross-engine comparison below therefore also covers empty active
  // sets after a fast-forward.
  ASSERT_GT(baseline.metrics.rounds, baseline.metrics.executed_rounds);

  for (const EngineKind ek :
       {EngineKind::kScalar, EngineKind::kVector, EngineKind::kAuto}) {
    for (const int threads : {1, 2, 4, 8}) {
      ScopedDefaultThreads t(threads);
      const ScopedDefaultEngine e(ek);
      const ColoringResult run = fast_two_sweep(inst, ids, n, 2, 0.5);
      EXPECT_EQ(run.colors, baseline.colors)
          << "engine=" << engine_name(ek) << " threads=" << threads;
      expect_metrics_eq_cross_engine(run.metrics, baseline.metrics);
    }
  }
}

TEST(Engine, TwoSweepPerInstanceEngineSetting) {
  Rng rng(77);
  const NodeId n = 600;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  std::vector<Color> scalar_colors;
  RoundMetrics scalar_metrics;
  for (const EngineKind ek :
       {EngineKind::kScalar, EngineKind::kVector, EngineKind::kAuto}) {
    TwoSweepProgram program(inst, ids, n, 2);
    Network net(*inst.graph);
    net.set_engine(ek);
    const RoundMetrics m = net.run(program, 2 * n + 4);
    const std::vector<Color> colors = program.final_colors();
    if (ek == EngineKind::kScalar) {
      scalar_colors = colors;
      scalar_metrics = m;
      continue;
    }
    EXPECT_EQ(colors, scalar_colors) << "engine=" << engine_name(ek);
    expect_metrics_eq_cross_engine(m, scalar_metrics);
  }
}

TEST(Engine, DenseAllCliqueChainIdentical) {
  // Clique chains keep every round dense (each node hears from almost
  // all neighbors every turn) — the shape the vector path was built for.
  const Graph g = clique_chain(24, 12);
  Rng rng(11);
  const OldcInstance inst = uniform_instance(g, rng);
  const NodeId n = g.num_nodes();
  const std::vector<Color> ids = identity_coloring(n);

  ColoringResult scalar;
  {
    const ScopedDefaultEngine e(EngineKind::kScalar);
    scalar = fast_two_sweep(inst, ids, n, 2, 0.5);
  }
  ASSERT_TRUE(validate_oldc(inst, scalar.colors));
  for (const EngineKind ek : {EngineKind::kVector, EngineKind::kAuto}) {
    const ScopedDefaultEngine e(ek);
    const ColoringResult run = fast_two_sweep(inst, ids, n, 2, 0.5);
    EXPECT_EQ(run.colors, scalar.colors) << "engine=" << engine_name(ek);
    expect_metrics_eq_cross_engine(run.metrics, scalar.metrics);
  }
}

TEST(Engine, ForcedVectorOnSparseRoundsIdentical) {
  // Trees and cycles make Two-Sweep's turn rounds sparse (one color
  // class sends per round, most rounds nearly empty). Forcing kVector
  // here exercises the decline/spill path: the kernel hands the
  // non-dense rounds back to the scalar loop, and the result must not
  // change.
  Rng rng(5);
  for (const Graph& g : {random_tree(300, rng), cycle(128)}) {
    Rng irng(9);
    const OldcInstance inst = uniform_instance(g, irng);
    const NodeId n = g.num_nodes();
    const std::vector<Color> ids = identity_coloring(n);

    ColoringResult scalar;
    {
      const ScopedDefaultEngine e(EngineKind::kScalar);
      scalar = fast_two_sweep(inst, ids, n, 2, 0.5);
    }
    ASSERT_TRUE(validate_oldc(inst, scalar.colors));
    {
      const ScopedDefaultEngine e(EngineKind::kVector);
      const ColoringResult vec = fast_two_sweep(inst, ids, n, 2, 0.5);
      EXPECT_EQ(vec.colors, scalar.colors);
      expect_metrics_eq_cross_engine(vec.metrics, scalar.metrics);
    }
  }
}

// ---- trace labeling -----------------------------------------------------

/// Runs the pipeline with a JSONL trace sink and returns how many round
/// records carry each engine label.
struct EngineRoundCounts {
  std::int64_t scalar = 0;
  std::int64_t vector = 0;
};
EngineRoundCounts traced_engine_counts(const OldcInstance& inst,
                                       const std::vector<Color>& ids,
                                       NodeId n, EngineKind engine) {
  const ScopedDefaultEngine e(engine);
  std::ostringstream trace;
  {
    Tracer tracer;
    tracer.add_sink(make_jsonl_trace_sink(trace));
    tracer.install();
    fast_two_sweep(inst, ids, n, 2, 0.5);
    tracer.finish();
  }
  EngineRoundCounts counts;
  std::istringstream is(trace.str());
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"type\":\"round\"") == std::string::npos) continue;
    if (line.find("\"engine\":\"scalar\"") != std::string::npos) {
      ++counts.scalar;
    } else if (line.find("\"engine\":\"vector\"") != std::string::npos) {
      ++counts.vector;
    } else {
      ADD_FAILURE() << "round record without engine label: " << line;
    }
  }
  return counts;
}

TEST(Engine, AutoRunsStraddleTheDensityThreshold) {
  Rng rng(1800);
  const NodeId n = 2000;
  const Graph g = random_near_regular(n, 6, rng);
  const OldcInstance inst = uniform_instance(g, rng);
  const std::vector<Color> ids = identity_coloring(n);

  // kAuto: the broadcast floods run vectorized, the thin leading rounds
  // scalar — a genuinely mixed-engine run, visible per round in traces.
  const EngineRoundCounts autos =
      traced_engine_counts(inst, ids, n, EngineKind::kAuto);
  EXPECT_GT(autos.vector, 0);
  EXPECT_GT(autos.scalar, 0);

  // Forced scalar: every executed round is labeled scalar.
  const EngineRoundCounts scalars =
      traced_engine_counts(inst, ids, n, EngineKind::kScalar);
  EXPECT_EQ(scalars.vector, 0);
  EXPECT_GT(scalars.scalar, 0);
  EXPECT_EQ(scalars.scalar, autos.scalar + autos.vector);
}

// ---- batch runner -------------------------------------------------------

TEST(Engine, BatchSimEngineKeyParsesAndStaysIdentical) {
  const std::vector<BatchJob> jobs = parse_batch_jobs(
      "solver=two_sweep,n=200,degree=6,seed=4,sim_engine=vector;"
      "solver=two_sweep,n=200,degree=6,seed=4,sim_engine=scalar;"
      "solver=two_sweep,n=200,degree=6,seed=4");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].sim_engine, EngineKind::kVector);
  EXPECT_EQ(jobs[1].sim_engine, EngineKind::kScalar);
  EXPECT_EQ(jobs[2].sim_engine, EngineKind::kAuto);

  const BatchReport report = run_batch(jobs);
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_EQ(report.jobs_failed, 0);
  // Same job, three engines: identical colors and metrics, modulo the
  // display label and peak_active_nodes (engine-dependent by design —
  // the vector path steps fewer nodes; see sim/engine.h).
  BatchJobResult a = report.jobs[0], b = report.jobs[1], c = report.jobs[2];
  a.label = b.label = c.label = "";
  a.metrics.peak_active_nodes = b.metrics.peak_active_nodes =
      c.metrics.peak_active_nodes = 0;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);

  EXPECT_THROW(parse_batch_jobs("solver=two_sweep,sim_engine=simd"),
               CheckError);
}

// ---- SIMD primitives ----------------------------------------------------

TEST(Simd, LowerBoundMatchesStd) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = rng.below(70);
    std::vector<std::int64_t> a(n);
    for (auto& v : a) v = static_cast<std::int64_t>(rng.below(200)) - 50;
    std::sort(a.begin(), a.end());
    for (std::int64_t x = -60; x <= 160; x += 7) {
      const std::size_t want = static_cast<std::size_t>(
          std::lower_bound(a.begin(), a.end(), x) - a.begin());
      EXPECT_EQ(simd::lower_bound_i64(a.data(), n, x), want)
          << "n=" << n << " x=" << x
          << " level=" << simd::level_name(simd::active_level());
    }
  }
}

TEST(Simd, FindFirstEqMatchesLinearScan) {
  Rng rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = rng.below(70);
    std::vector<std::int64_t> a(n);
    for (auto& v : a) v = static_cast<std::int64_t>(rng.below(20));
    for (std::int64_t x = -1; x < 22; ++x) {
      std::size_t want = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (a[i] == x) {
          want = i;
          break;
        }
      }
      EXPECT_EQ(simd::find_first_eq_i64(a.data(), n, x), want);
    }
  }
}

TEST(Simd, CountEvalEqMatchesScalarHorner) {
  Rng rng(555);
  for (const std::uint32_t k : {2u, 3u, 7u, 101u, 65521u}) {
    ASSERT_TRUE(simd::gf_eval_supported(k));
    const int nc = 3;
    const std::size_t rows = 97;
    // Transposed digit matrix: digit i of row j at digits[i*rows + j].
    std::vector<std::int32_t> digits(nc * rows);
    for (auto& d : digits) d = static_cast<std::int32_t>(rng.below(k));
    for (int trial = 0; trial < 8; ++trial) {
      const auto x = static_cast<std::uint32_t>(rng.below(k));
      const auto target = static_cast<std::uint32_t>(rng.below(k));
      std::int64_t want = 0;
      for (std::size_t j = 0; j < rows; ++j) {
        std::uint64_t d[nc];
        for (int i = 0; i < nc; ++i) {
          d[i] = static_cast<std::uint64_t>(digits[i * rows + j]);
        }
        if (eval_digits(d, nc, k, x) == target) ++want;
      }
      EXPECT_EQ(simd::count_eval_eq(digits.data(), rows, nc, k, x, target),
                want)
          << "k=" << k << " x=" << x << " target=" << target
          << " level=" << simd::level_name(simd::active_level());
    }
  }
}

}  // namespace
}  // namespace dcolor
