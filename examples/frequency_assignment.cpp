// Example: radio frequency assignment as list defective coloring.
//
//   ./frequency_assignment [--n=300] [--radius=0.08] [--channels=48]
//                          [--licensed=14] [--tolerance=2] [--seed=11]
//
// Scenario: n transmitters are scattered in the unit square; two
// transmitters within `radius` interfere. Regulation gives each
// transmitter a LIST of licensed channels (not all transmitters may use
// all channels), and cheap hardware tolerates a bounded amount of
// co-channel interference — `tolerance` interfering neighbors on the
// chosen channel are acceptable. That is precisely a list defective
// coloring instance; interference graphs of disk ranges also have bounded
// neighborhood independence (θ <= 5), the structure Section 4 exploits.
//
// The example solves the instance with the slack-1 framework and reports
// the interference profile of the computed assignment.
#include <algorithm>
#include <iostream>

#include "core/instance.h"
#include "core/list_coloring.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "graph/independence.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 300));
  const double radius = args.get_double("radius", 0.08);
  const auto channels = args.get_int("channels", 48);
  const int licensed = static_cast<int>(args.get_int("licensed", 14));
  const int tolerance = static_cast<int>(args.get_int("tolerance", 2));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  args.check_all_consumed();

  Rng rng(seed);
  const Graph g = random_geometric(n, radius, rng);
  std::cout << "interference graph: " << g.summary()
            << ", θ upper bound: " << neighborhood_independence_upper(g)
            << "\n";

  // Build the instance: each transmitter draws `licensed` channels; the
  // per-channel tolerance shrinks on busy nodes only if slack allows.
  // For feasibility (slack > 1) we top up lists where needed:
  // weight = licensed·(tolerance+1) must exceed deg(v).
  ArbdefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = channels;
  inst.lists.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const int need = g.degree(v) / (tolerance + 1) + 1;
    const int size = std::min<int>(static_cast<int>(channels),
                                   std::max(licensed, need));
    const auto sample = rng.sample_without_replacement(
        static_cast<std::uint64_t>(channels),
        static_cast<std::uint64_t>(size));
    std::vector<Color> list;
    list.reserve(sample.size());
    for (auto c : sample) list.push_back(static_cast<Color>(c));
    inst.lists.push_back(ColorList::uniform(std::move(list), tolerance));
  }

  ListColoringOptions options;
  options.engine = PartitionEngine::kBeg18Oracle;
  const ArbdefectiveResult res = solve_arbdefective_slack1(inst, options);
  const bool valid = validate_arbdefective(inst, res);

  // Interference profile: how many same-channel interferers per node
  // (undirected — what the operator actually observes).
  const auto interference = undirected_defects(g, res.colors);
  const int worst =
      interference.empty()
          ? 0
          : *std::max_element(interference.begin(), interference.end());
  double avg = 0;
  for (int x : interference) avg += x;
  if (n > 0) avg /= n;

  Table t("frequency assignment");
  t.header({"metric", "value"});
  t.add("valid (list + out-tolerance)", valid ? "yes" : "NO");
  t.add("channels used", num_colors_used(res.colors));
  t.add("worst same-channel interferers", worst);
  t.add("avg same-channel interferers", avg);
  t.add("per-channel tolerance (out)", tolerance);
  t.add("simulated rounds", res.metrics.rounds);
  t.add("max message bits", res.metrics.max_message_bits);
  t.print(std::cout);
  return valid ? 0 : 1;
}
