// Example: (deg+1)-list coloring in the CONGEST model (Theorem 1.3).
//
//   ./congest_delta_plus_one [--n=400] [--degree=16] [--seed=7]
//
// Every node receives deg(v)+1 random colors from a space of size
// 2(Δ+1); the framework colors the graph properly from the lists. The
// example reports the round count under both partition engines
// (DESIGN.md §4) and verifies the CONGEST discipline: no message wider
// than O(log q + log C) bits ever crosses an edge.
#include <iostream>

#include "core/instance.h"
#include "core/list_coloring.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 400));
  const int degree = static_cast<int>(args.get_int("degree", 16));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  args.check_all_consumed();

  Rng rng(seed);
  const Graph g = random_near_regular(n, degree, rng);
  const std::int64_t color_space = 2 * (g.max_degree() + 1);
  const ListDefectiveInstance inst =
      degree_plus_one_instance(g, color_space, rng);
  std::cout << "graph: " << g.summary() << ", color space " << color_space
            << ", (deg+1)-lists\n";

  Table t("(deg+1)-list coloring, Theorem 1.3");
  t.header({"engine", "valid", "rounds", "max msg bits", "congest budget"});
  const int budget =
      4 * (2 * ceil_log2(static_cast<std::uint64_t>(std::max<NodeId>(2, n))) +
           ceil_log2(static_cast<std::uint64_t>(color_space)));
  for (const auto& [name, engine] :
       {std::pair{"honest (Lemma 3.4 partition)", PartitionEngine::kHonest},
        std::pair{"BEG18-oracle partition", PartitionEngine::kBeg18Oracle}}) {
    ListColoringOptions options;
    options.engine = engine;
    const ColoringResult res = solve_degree_plus_one(inst, options);
    const bool valid = is_proper_coloring(g, res.colors) &&
                       validate_list_defective(inst, res.colors);
    t.add(name, valid ? "yes" : "NO", res.metrics.rounds,
          res.metrics.max_message_bits, budget);
    if (!valid || res.metrics.max_message_bits > budget) return 1;
  }
  t.print(std::cout);
  std::cout << "\nBoth engines produce a proper coloring from the lists; the\n"
               "oracle engine's round count shows the O(√Δ·polylogΔ) shape\n"
               "of Theorem 1.3 while honest partitions pay O(µ²) classes.\n";
  return 0;
}
