// Example: MIS and maximal matching from the paper's colorings.
//
//   ./mis_and_matching [--n=250] [--degree=10] [--seed=5]
//
// The classic downstream pipeline: a (Δ+1)-coloring (Theorem 1.3
// machinery) yields a maximal independent set in Δ+1 extra rounds; a
// (2Δ−1)-edge coloring (Theorem 1.5 machinery on the line graph) yields a
// maximal matching the same way. This is why fast deterministic coloring
// matters: every symmetry-breaking primitive downstream inherits the
// round bound.
#include <iostream>

#include "core/edge_coloring.h"
#include "core/instance.h"
#include "core/list_coloring.h"
#include "core/mis.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 250));
  const int degree = static_cast<int>(args.get_int("degree", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  args.check_all_consumed();

  Rng rng(seed);
  const Graph g = random_near_regular(n, degree, rng);
  std::cout << "graph: " << g.summary() << "\n";

  // (Δ+1)-coloring -> MIS.
  const ListDefectiveInstance inst = delta_plus_one_instance(g);
  const ColoringResult coloring = solve_degree_plus_one(
      inst, ListColoringOptions{PartitionEngine::kBeg18Oracle});
  const MisResult mis = mis_from_coloring(g, coloring.colors);
  std::int64_t mis_size = 0;
  for (bool b : mis.in_set) mis_size += b ? 1 : 0;

  Table t("MIS from (Δ+1)-coloring");
  t.header({"metric", "value"});
  t.add("coloring valid", is_proper_coloring(g, coloring.colors) ? "yes" : "NO");
  t.add("MIS valid", validate_mis(g, mis.in_set) ? "yes" : "NO");
  t.add("MIS size", mis_size);
  t.add("coloring rounds", coloring.metrics.rounds);
  t.add("MIS sweep rounds", mis.metrics.rounds);
  t.print(std::cout);

  // (2Δ−1)-edge coloring -> maximal matching.
  ThetaColoringOptions options;
  options.branch = ThetaColoringOptions::Branch::kBaseOnly;
  const EdgeColoringResult ec = edge_coloring_two_delta_minus_one(g, options);
  const MatchingResult matching =
      maximal_matching_from_edge_coloring(g, ec.edge_colors);
  std::int64_t matched = 0;
  for (bool b : matching.in_matching) matched += b ? 1 : 0;

  Table mt("maximal matching from (2Δ−1)-edge coloring");
  mt.header({"metric", "value"});
  mt.add("edge coloring valid",
         validate_edge_coloring(g, ec.edge_colors) ? "yes" : "NO");
  mt.add("matching valid",
         validate_maximal_matching(g, matching.in_matching) ? "yes" : "NO");
  mt.add("matched edges", matched);
  mt.add("edge-coloring rounds", ec.metrics.rounds);
  mt.add("matching sweep rounds", matching.metrics.rounds);
  mt.print(std::cout);

  const bool ok = validate_mis(g, mis.in_set) &&
                  validate_maximal_matching(g, matching.in_matching);
  return ok ? 0 : 1;
}
