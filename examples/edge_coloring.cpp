// Example: (2Δ−1)-edge coloring through the paper's bounded-neighborhood-
// independence machinery (Theorem 1.5 applied to line graphs, θ <= 2),
// plus the hypergraph generalization (θ <= rank).
//
//   ./edge_coloring [--n=120] [--avg_degree=8] [--rank=3] [--seed=3]
//
// Motivation (paper, Section 1): a proper edge coloring is a schedule —
// edges with the same color can communicate simultaneously without
// endpoint clashes. (2Δ−1) colors is what sequential greedy achieves, and
// the paper's Theorem 1.5 reproduces it distributedly for every graph of
// bounded neighborhood independence, not just line graphs of graphs.
#include <iostream>

#include "core/edge_coloring.h"
#include "graph/generators.h"
#include "graph/hypergraph.h"
#include "graph/independence.h"
#include "graph/line_graph.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 120));
  const double avg_degree = args.get_double("avg_degree", 8.0);
  const int rank = static_cast<int>(args.get_int("rank", 3));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  args.check_all_consumed();

  Rng rng(seed);

  // --- Graph edge coloring -------------------------------------------------
  const Graph g = gnp_avg_degree(n, avg_degree, rng);
  std::cout << "graph: " << g.summary() << "\n";
  ThetaColoringOptions options;
  options.branch = ThetaColoringOptions::Branch::kBaseOnly;
  const EdgeColoringResult res = edge_coloring_two_delta_minus_one(g, options);

  Table t("(2Δ−1)-edge coloring");
  t.header({"metric", "value"});
  t.add("valid", validate_edge_coloring(g, res.edge_colors) ? "yes" : "NO");
  t.add("palette (2Δ−1)", res.num_colors);
  t.add("colors used", num_colors_used(res.edge_colors));
  t.add("rounds", res.metrics.rounds);
  t.add("max message bits", res.metrics.max_message_bits);
  t.print(std::cout);

  // --- Hypergraph edge coloring -------------------------------------------
  const Hypergraph h =
      random_hypergraph(n, static_cast<std::int64_t>(2 * n), rank, rng);
  const Graph lg = line_graph(h);
  const int theta_upper = neighborhood_independence_upper(lg);
  std::cout << "\nhypergraph: " << h.edges().size() << " edges of rank "
            << h.rank() << "; line graph " << lg.summary()
            << " (θ <= " << theta_upper << ")\n";
  const EdgeColoringResult hres = hypergraph_edge_coloring(h, options);

  Table ht("hyperedge coloring (θ <= rank)");
  ht.header({"metric", "value"});
  ht.add("valid", validate_edge_coloring(h, hres.edge_colors) ? "yes" : "NO");
  ht.add("palette (Δ_L+1)", hres.num_colors);
  ht.add("colors used", num_colors_used(hres.edge_colors));
  ht.add("rounds", hres.metrics.rounds);
  ht.print(std::cout);

  const bool ok = validate_edge_coloring(g, res.edge_colors) &&
                  validate_edge_coloring(h, hres.edge_colors);
  return ok ? 0 : 1;
}
