// Quickstart: build an oriented list defective coloring (OLDC) instance
// and solve it with the paper's Two-Sweep algorithm (Theorem 1.1).
//
//   ./quickstart [--n=500] [--degree=12] [--defect=2] [--seed=1]
//
// Walk-through:
//   1. generate a random near-regular graph and orient it by node id;
//   2. give every node a random color list with uniform defect d and the
//      Eq. (2) amount of slack (p = ⌈β/(d+1)⌉+1, lists of ~p² colors);
//   3. compute the initial proper coloring with Linial's O(log* n)
//      algorithm;
//   4. run the Two-Sweep and validate that every node holds a list color
//      with at most d same-colored out-neighbors.
#include <cstdio>
#include <iostream>

#include "coloring/linial.h"
#include "core/instance.h"
#include "core/two_sweep.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcolor;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_int("n", 500));
  const int degree = static_cast<int>(args.get_int("degree", 12));
  const int defect = static_cast<int>(args.get_int("defect", 2));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  args.check_all_consumed();

  Rng rng(seed);
  const Graph g = random_near_regular(n, degree, rng);
  Orientation orientation = Orientation::by_id(g);
  const int beta = orientation.beta();
  std::cout << "graph: " << g.summary() << ", beta=" << beta << "\n";

  // Eq. (2) sizing: p = ⌈β/(d+1)⌉ + 1 and lists of p²+p+1 colors make
  //   Σ(d+1) = |L|·(d+1) > max{p, |L|/p}·β.
  const int p = beta / (defect + 1) + 1;
  const int list_size = p * p + p + 1;
  const std::int64_t color_space = 4 * list_size;
  const OldcInstance inst = random_uniform_oldc(
      g, std::move(orientation), color_space, list_size, defect, rng);
  std::cout << "instance: lists of " << list_size << " colors from a space "
            << "of " << color_space << ", uniform defect " << defect
            << ", p=" << p << "\n";

  const LinialResult linial = linial_from_ids(g, inst.orientation);
  std::cout << "initial coloring (Linial): " << linial.num_colors
            << " colors in " << linial.metrics.rounds << " rounds\n";

  const ColoringResult result =
      two_sweep(inst, linial.colors, linial.num_colors, p);
  const bool valid = validate_oldc(inst, result.colors);

  Table t("Two-Sweep result");
  t.header({"metric", "value"});
  t.add("valid OLDC", valid ? "yes" : "NO");
  t.add("rounds (incl. Linial)",
        result.metrics.rounds + linial.metrics.rounds);
  t.add("max message bits", result.metrics.max_message_bits);
  t.add("colors used", num_colors_used(result.colors));
  t.add("max out-defect", max_oriented_defect(inst.orientation, result.colors));
  t.add("allowed defect", defect);
  t.print(std::cout);
  return valid ? 0 : 1;
}
