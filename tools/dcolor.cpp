// dcolor — command-line driver for the library.
//
// Subcommands (--cmd=...):
//   generate  Build a graph from a named family and save it.
//             --family=gnp|regular|cycle|grid|hypercube|tree|line_gnp|
//                      clique_chain|geometric
//             --n=.. --degree=.. --p=.. --seed=.. --out=graph.txt
//   instance  Build a random OLDC instance over a saved graph.
//             --graph=graph.txt --colorspace=.. --list=.. --defect=..
//             [--symmetric] --seed=.. --out=instance.txt
//   color     Solve with any registry solver (--alg=help lists them).
//             Input depends on the solver's capability class:
//               OLDC solvers:   --instance=instance.txt
//               list solvers:   --graph=graph.txt [--colorspace=..] [--seed=..]
//               graph solvers:  --graph=graph.txt
//             --algorithm=<name-or-alias> (--alg works too)
//               [--ts_p=..] [--eps=..] [--theta=..] [--alpha=..]
//             --out=coloring.txt
//   list      Enumerate the solver registry with capability flags.
//   batch     Run N independent jobs concurrently (job = solver + seeded
//             generated instance); see sim/batch_runner.h for the spec
//             grammar.
//             --jobs=<file-or-inline-spec> [--threads=0] [--seed=0]
//             [--verify] (collect-mode checker per job) [--json=report.json]
//             [--snapshot-cache=<dir>] (file-backed instance cache: repeat
//             runs mmap instances instead of rebuilding them)
//             [--stream] (emit one {"event":"job",...} JSONL line per
//             completed job to stdout, in job-index commit order, then a
//             {"event":"summary",...} line; the human table moves to
//             stderr so stdout stays machine-parseable)
//             [--big-job-threshold=N] (node count at which a job runs
//             its simulator rounds as stealable scheduler chunks instead
//             of pinned to one worker; 0 = every job, huge = none, -1 =
//             $DCOLOR_BIG_JOB_THRESHOLD else auto max(65536, 2*mean job
//             size). Results are bit-identical at every setting — this
//             only moves wall clock.)
//   snapshot  Save / load binary zero-copy instance snapshots
//             (storage/snapshot.h).
//             --save=<out.snap> with ONE input source:
//               --from-edges=<file>    SNAP/DIMACS edge list -> graph
//               --graph=<graph.txt>    text graph -> graph snapshot
//               --instance=<inst.txt>  text OLDC instance -> full snapshot
//               (none)                 generate like --cmd=instance
//                                      (--family/--n/--degree/--seed/
//                                      --list/--defect/--colorspace/
//                                      [--symmetric])
//             --load=<in.snap> [--verify]  map a snapshot, print its
//             shape; --verify additionally checks every payload checksum.
//             Snapshots are also accepted directly by --graph=/--instance=/
//             --replay= everywhere (the loaders sniff the magic).
//   validate  Check a coloring against an instance.
//             --instance=instance.txt --coloring=coloring.txt
//   info      Print summary statistics of a saved graph.
//             --graph=graph.txt [--exact_theta]
//   trace_summary  Fold a JSONL round trace into a per-phase table.
//             --trace=trace.jsonl
//   arena     Race every capable registry solver over a scenario matrix
//             and report per-scenario Pareto fronts over (colors, rounds,
//             message bits); see obs/arena.h.
//             [--generators=gnp,regular] [--n=128,512] [--degrees=6,12]
//             [--solvers=a,b,...] [--seed=1] [--threads=0] [--verify]
//             [--out=arena.md] [--json=arena.json]
//   serve     Coloring-as-a-service daemon: line-delimited JSON over a
//             local TCP socket, warm resident sessions, incremental
//             recoloring (see serve/server.h for the protocol).
//             [--port=0] (0 = ephemeral; the bound port is printed)
//             [--port-file=<path>] [--workers=4] [--headroom=2]
//             [--solver=deg_plus_one] [--check[=collect]] (per-request
//             checker inside the daemon)
//             [--session-quota=64] (max solve/recolor requests queued or
//             running per session; the excess gets a clean JSON error;
//             -1 = unlimited) [--session-ttl=<seconds>] (evict sessions
//             idle that long; 0 = never; an evicted name answers with a
//             clean "was evicted" JSON error)
//             [--big-job-threshold=N] (default level-2 threshold for the
//             daemon's op:batch — see --cmd=batch)
//   client    One-shot / stdin-driven client for a running daemon.
//             --port=<p> [--request='{"op":"ping"}'] (without --request,
//             forwards stdin lines and prints response lines). Pushed
//             {"event":...} lines — streamed op:batch jobs, async solve
//             notifications — print as they arrive, before the response.
//   fuzz      Differential fuzzing against sequential oracles. The
//             algorithm axis comes from the solver registry; --alg=<name>
//             restricts it to one solver.
//             [--cases=200] [--seed=1] [--max-n=48] [--threads=1,2,4,8]
//             [--out=fuzz_repro.txt] [--shrink=true]
//             [--max-shrink-evals=400]
//             --self-test            run the mutation self-test instead
//             --replay=repro.txt     re-run the battery on a saved repro
//               [--algorithm=<name>] [--ts_p=..] [--eps=..]
//
// Any subcommand accepts --trace=<path> [--trace-format=jsonl|chrome|
// summary] to record an execution trace of the run (the DCOLOR_TRACE /
// DCOLOR_TRACE_FORMAT environment variables do the same for binaries
// without flags), --check[=collect] to run it under the online
// invariant checker (fail fast by default, or collect + report; the
// DCOLOR_CHECK environment variable does the same), and
// --engine=auto|scalar|vector to pin the simulator execution engine
// (sim/engine.h; DCOLOR_ENGINE does the same). Results are bit-identical
// across engines — the flag is a perf / differential-testing knob. Batch
// jobs can override it per job with the `sim_engine` spec key.
//
// --stats=<path> [--stats-format=json|prom] installs a process-wide
// StatsRegistry (obs/stats.h) for the run and writes the collected
// counters/gauges/histograms — plus an end-of-run RSS sample — to the
// given file on exit.
//
// Exit code 0 on success / valid, 1 otherwise.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "check/fuzz.h"
#include "check/invariant_checker.h"
#include "check/mutation.h"
#include "coloring/linial.h"
#include "core/instance.h"
#include "core/run_context.h"
#include "core/solver_registry.h"
#include "graph/coloring_checks.h"
#include "graph/generators.h"
#include "graph/independence.h"
#include "graph/line_graph.h"
#include "io/edge_list.h"
#include "io/instance_io.h"
#include "obs/arena.h"
#include "obs/stats.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/batch_runner.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "storage/snapshot.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/table.h"

namespace dcolor {
namespace {

Graph generate_family(const CliArgs& args, Rng& rng) {
  const std::string family = args.get_string("family", "gnp");
  const auto n = static_cast<NodeId>(args.get_int("n", 200));
  const int degree = static_cast<int>(args.get_int("degree", 8));
  if (family == "gnp") return gnp_avg_degree(n, degree, rng);
  if (family == "regular") return random_near_regular(n, degree, rng);
  if (family == "cycle") return cycle(n);
  if (family == "grid") return grid(n, n);
  if (family == "hypercube") return hypercube(degree);
  if (family == "tree") return random_tree(n, rng);
  if (family == "line_gnp") return line_graph(gnp_avg_degree(n, degree, rng));
  if (family == "clique_chain") return clique_chain(n, degree);
  if (family == "geometric")
    return random_geometric(n, args.get_double("radius", 0.1), rng);
  DCOLOR_CHECK_MSG(false, "unknown family " << family);
  return {};
}

int cmd_generate(const CliArgs& args) {
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const Graph g = generate_family(args, rng);
  const std::string out = args.get_string("out", "graph.txt");
  save_graph(out, g);
  std::cout << "wrote " << g.summary() << " to " << out << "\n";
  return 0;
}

int cmd_instance(const CliArgs& args) {
  const Graph g = load_graph(args.get_string("graph", "graph.txt"));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  const int defect = static_cast<int>(args.get_int("defect", 1));
  const int default_p = beta / (defect + 1) + 1;
  const auto list_size = static_cast<int>(
      args.get_int("list", default_p * default_p + default_p + 1));
  const std::int64_t space = args.get_int("colorspace", 4 * list_size);
  OldcInstance inst =
      random_uniform_oldc(g, std::move(o), space, list_size, defect, rng);
  inst.symmetric = args.get_bool("symmetric");
  const std::string out = args.get_string("out", "instance.txt");
  save_oldc(out, inst);
  std::cout << "wrote OLDC instance (C=" << space << ", Λ=" << list_size
            << ", d=" << defect << (inst.symmetric ? ", symmetric" : "")
            << ") to " << out << "\n";
  return 0;
}

std::string join_aliases(const std::vector<std::string>& aliases) {
  std::string out;
  for (const std::string& a : aliases) {
    if (!out.empty()) out += ", ";
    out += a;
  }
  return out;
}

int cmd_list(const CliArgs&) {
  const SolverRegistry& registry = SolverRegistry::get();
  Table t("registered solvers");
  t.header({"name", "capabilities", "aliases"});
  for (const Solver* s : registry.solvers()) {
    t.add(std::string(s->name()), s->capabilities().summary(),
          join_aliases(registry.aliases_of(s->name())));
  }
  t.print(std::cout);
  return 0;
}

int cmd_color(const CliArgs& args) {
  const std::string alg_fallback = args.get_string("alg", "two_sweep");
  const std::string algorithm = args.get_string("algorithm", alg_fallback);
  if (algorithm == "help") return cmd_list(args);
  const std::string out = args.get_string("out", "coloring.txt");

  const Solver& solver = SolverRegistry::get().require(algorithm);
  const SolverCapabilities caps = solver.capabilities();

  SolveRequest req;
  req.params.p = static_cast<int>(args.get_int("ts_p", 2));
  req.params.eps = args.get_double("eps", 0.5);
  req.params.theta = static_cast<int>(args.get_int("theta", 2));
  req.params.alpha = args.get_double("alpha", 0.25);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::int64_t colorspace = args.get_int("colorspace", 0);

  // Input storage outliving the request (which only borrows).
  OwnedOldcInstance owned;
  Graph g;
  ListDefectiveInstance list_inst;
  LinialResult linial;

  using Input = SolverCapabilities::Input;
  switch (caps.input) {
    case Input::kOldc: {
      owned = load_oldc(args.get_string("instance", "instance.txt"));
      // owned.instance.graph, not owned.graph: the inline member is empty
      // when the instance came from a mapped snapshot.
      const Graph& ig = *owned.instance.graph;
      const Orientation lin_orient = Orientation::by_id(ig);
      linial = linial_from_ids(ig, lin_orient);
      req.oldc = &owned.instance;
      req.initial_coloring = &linial.colors;
      req.q = linial.num_colors;
      break;
    }
    case Input::kListDefective:
    case Input::kArbdefective: {
      g = load_graph(args.get_string("graph", "graph.txt"));
      Rng rng(seed);
      const std::int64_t space =
          colorspace > 0 ? colorspace : 2 * (g.max_degree() + 1);
      list_inst = degree_plus_one_instance(g, space, rng);
      req.list_defective = &list_inst;
      break;
    }
    case Input::kGraph:
      g = load_graph(args.get_string("graph", "graph.txt"));
      req.graph = &g;
      break;
  }

  RunContext ctx;
  ctx.seed = seed;
  SolveResult result = solver.solve(req, ctx);
  if (caps.input == Input::kOldc) result.metrics += linial.metrics;
  const bool valid = validate_solve(req, caps, result);

  std::ofstream os(out);
  DCOLOR_CHECK_MSG(static_cast<bool>(os), "cannot open " << out);
  write_coloring(os, result.colors);

  Table t("dcolor color");
  t.header({"metric", "value"});
  t.add("algorithm", std::string(solver.name()));
  t.add("capabilities", caps.summary());
  t.add("valid", valid ? "yes" : "NO");
  t.add("colors used", num_colors_used(result.colors));
  t.add("rounds", result.metrics.rounds);
  t.add("max message bits", result.metrics.max_message_bits);
  t.print(std::cout);
  return valid ? 0 : 1;
}

int cmd_snapshot(const CliArgs& args) {
  if (args.has("load")) {
    const std::string path = args.get_string("load", "snapshot.snap");
    const InstanceSnapshot snap = InstanceSnapshot::load(path);
    if (args.get_bool("verify")) snap.verify_payload();
    const SnapshotInfo& info = snap.info();
    Table t("snapshot info");
    t.header({"field", "value"});
    t.add("file", path);
    t.add("bytes", static_cast<std::int64_t>(info.file_size));
    t.add("sections", static_cast<std::int64_t>(info.num_sections));
    t.add("nodes", info.num_nodes);
    t.add("edges", info.num_edges);
    t.add("colorspace", info.color_space);
    t.add("orientation", info.has_orientation ? "yes" : "no");
    t.add("lists", info.has_lists ? "yes" : "no");
    t.add("symmetric", info.symmetric ? "yes" : "no");
    t.add("payload checksums",
          args.get_bool("verify") ? "verified" : "not checked");
    t.print(std::cout);
    return 0;
  }

  const std::string out = args.get_string("save", "");
  DCOLOR_CHECK_MSG(!out.empty(),
                   "--cmd=snapshot requires --save=<path> or --load=<path>");
  if (args.has("from-edges")) {
    EdgeListStats st;
    const Graph g = load_edge_list(args.get_string("from-edges", ""), &st);
    save_graph_snapshot(out, g);
    std::cout << "wrote graph snapshot " << g.summary() << " to " << out
              << " (" << st.edges << " edge lines, " << st.self_loops
              << " self-loops dropped, " << st.duplicates
              << " duplicates merged" << (st.dimacs ? ", DIMACS" : "")
              << ")\n";
    return 0;
  }
  if (args.has("graph")) {
    const Graph g = load_graph(args.get_string("graph", "graph.txt"));
    save_graph_snapshot(out, g);
    std::cout << "wrote graph snapshot " << g.summary() << " to " << out
              << "\n";
    return 0;
  }
  if (args.has("instance")) {
    const OwnedOldcInstance owned =
        load_oldc(args.get_string("instance", "instance.txt"));
    save_instance_snapshot(out, owned.instance);
    std::cout << "wrote instance snapshot (C=" << owned.instance.color_space
              << ", " << owned.instance.graph->summary() << ") to " << out
              << "\n";
    return 0;
  }
  // Generator source — the same knobs (and sizing defaults) as
  // --cmd=generate followed by --cmd=instance, without the text
  // round-trip in between.
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const Graph g = generate_family(args, rng);
  Orientation o = Orientation::by_id(g);
  const int beta = o.beta();
  const int defect = static_cast<int>(args.get_int("defect", 1));
  const int default_p = beta / (defect + 1) + 1;
  const auto list_size = static_cast<int>(
      args.get_int("list", default_p * default_p + default_p + 1));
  const std::int64_t space = args.get_int("colorspace", 4 * list_size);
  OldcInstance inst =
      random_uniform_oldc(g, std::move(o), space, list_size, defect, rng);
  inst.symmetric = args.get_bool("symmetric");
  save_instance_snapshot(out, inst);
  std::cout << "wrote instance snapshot (C=" << space << ", Λ=" << list_size
            << ", d=" << defect << (inst.symmetric ? ", symmetric" : "")
            << ", " << g.summary() << ") to " << out << "\n";
  return 0;
}

int cmd_batch(const CliArgs& args) {
  const std::string jobs_spec = args.get_string("jobs", "");
  DCOLOR_CHECK_MSG(!jobs_spec.empty(),
                   "--cmd=batch requires --jobs=<file-or-inline-spec>");
  const std::vector<BatchJob> jobs = parse_batch_jobs(jobs_spec);

  BatchOptions options;
  options.threads = static_cast<int>(args.get_int("threads", 0));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  options.check = args.get_bool("verify");
  options.snapshot_dir = args.get_string("snapshot-cache", "");
  options.big_job_threshold = args.get_int("big-job-threshold", -1);
  const bool stream = args.get_bool("stream");
  if (stream) {
    // JSONL goes to stdout (one line per job, commit order = job index
    // order, flushed immediately so a consumer sees jobs as they land);
    // the human-readable table below moves to stderr.
    options.on_result = [](std::size_t index, const BatchJobResult& r) {
      std::cout << batch_stream_line(index, r) << std::endl;
    };
  }
  const BatchReport report = run_batch(jobs, options);
  if (stream) std::cout << batch_stream_summary(report) << std::endl;
  std::ostream& human = stream ? std::cerr : std::cout;

  if (args.has("json")) {
    const std::string path = args.get_string("json", "batch_report.json");
    std::ofstream os(path);
    DCOLOR_CHECK_MSG(static_cast<bool>(os), "cannot open " << path);
    os << report.to_json();
    human << "report written to " << path << "\n";
  }

  Table t("batch results");
  t.header({"label", "solver", "valid", "colors", "rounds", "violations"});
  for (const BatchJobResult& r : report.jobs) {
    t.add(r.label, r.solver,
          r.error.empty() ? (r.valid ? "yes" : "NO") : "ERROR",
          r.colors_used, r.metrics.rounds, r.checker_violations);
  }
  t.print(human);
  human << "batch: " << report.jobs.size() << " jobs, "
            << report.jobs_valid << " valid, " << report.jobs_failed
            << " failed; " << report.total_rounds << " total rounds, "
            << report.total_violations << " checker violation(s); scratch "
            << report.scratch_created << " created / "
            << report.scratch_reused << " reused; snapshots "
            << report.snapshot_built << " built / " << report.snapshot_loaded
            << " loaded / " << report.snapshot_reused << " reused\n";
  for (const BatchJobResult& r : report.jobs) {
    if (!r.error.empty()) {
      human << "  " << r.label << ": " << r.error << "\n";
    }
  }
  return report.jobs_failed == 0 && report.total_violations == 0 ? 0 : 1;
}

int cmd_validate(const CliArgs& args) {
  const OwnedOldcInstance owned =
      load_oldc(args.get_string("instance", "instance.txt"));
  std::ifstream is(args.get_string("coloring", "coloring.txt"));
  DCOLOR_CHECK_MSG(static_cast<bool>(is), "cannot open coloring file");
  const std::vector<Color> colors = read_coloring(is);
  const bool valid = validate_oldc(owned.instance, colors);
  std::cout << (valid ? "VALID" : "INVALID") << "\n";
  return valid ? 0 : 1;
}

int cmd_info(const CliArgs& args) {
  const Graph g = load_graph(args.get_string("graph", "graph.txt"));
  Table t("graph info");
  t.header({"metric", "value"});
  t.add("nodes", g.num_nodes());
  t.add("edges", g.num_edges());
  t.add("max degree", g.max_degree());
  t.add("degeneracy beta", Orientation::degeneracy(g).beta());
  t.add("theta lower bound", neighborhood_independence_lower(g));
  t.add("theta upper bound", neighborhood_independence_upper(g));
  if (args.get_bool("exact_theta")) {
    const auto exact = neighborhood_independence_exact(g, 128);
    t.add("theta exact", exact ? std::to_string(*exact) : "(too large)");
  }
  t.print(std::cout);
  return 0;
}

// ---- trace_summary ----------------------------------------------------

int cmd_trace_summary(const CliArgs& args) {
  const std::string path = args.get_string("trace", "trace.jsonl");
  std::ifstream is(path);
  DCOLOR_CHECK_MSG(static_cast<bool>(is), "cannot open " << path);
  // The folding lives in the library (sim/trace.h) so the hardening
  // against mixed-engine lines and "t"-object contents is testable.
  const TraceSummaryData summary = summarize_trace_jsonl(is);
  render_phase_summary("trace summary (" + path + ")", summary.rows,
                       summary.total, std::cout);
  if (summary.scalar_rounds + summary.vector_rounds > 0) {
    std::cout << "executed rounds by engine: scalar " << summary.scalar_rounds
              << ", vector " << summary.vector_rounds << "\n";
  }
  return 0;
}

// ---- arena -------------------------------------------------------------

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const auto comma = std::min(spec.find(',', begin), spec.size());
    if (comma > begin) out.push_back(spec.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return out;
}

int cmd_arena(const CliArgs& args) {
  ArenaOptions options;
  if (args.has("generators")) {
    options.generators = split_csv(args.get_string("generators", "gnp"));
  }
  if (args.has("n")) {
    options.sizes.clear();
    for (const std::string& v : split_csv(args.get_string("n", "256"))) {
      options.sizes.push_back(static_cast<NodeId>(parse_int64(v, "--n")));
    }
  }
  if (args.has("degrees")) {
    options.degrees.clear();
    for (const std::string& v : split_csv(args.get_string("degrees", "8"))) {
      options.degrees.push_back(static_cast<int>(parse_int64(v, "--degrees")));
    }
  }
  if (args.has("solvers")) {
    options.solvers = split_csv(args.get_string("solvers", ""));
  }
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.threads = static_cast<int>(args.get_int("threads", 0));
  options.check = args.get_bool("verify");
  // Per-job pin (recorded in the report header); the same flag also set
  // the process default above, which kAuto jobs would inherit anyway.
  options.sim_engine =
      engine_from_string(args.get_string("engine", "auto"));

  const ArenaReport report = run_arena(options);
  const std::string markdown = report.to_markdown();
  std::cout << markdown;
  if (args.has("out")) {
    const std::string path = args.get_string("out", "arena.md");
    std::ofstream os(path);
    DCOLOR_CHECK_MSG(static_cast<bool>(os), "cannot open " << path);
    os << markdown;
    std::cout << "markdown written to " << path << "\n";
  }
  if (args.has("json")) {
    const std::string path = args.get_string("json", "arena.json");
    std::ofstream os(path);
    DCOLOR_CHECK_MSG(static_cast<bool>(os), "cannot open " << path);
    os << report.to_json();
    std::cout << "report written to " << path << "\n";
  }
  return report.jobs_failed == 0 ? 0 : 1;
}

// ---- fuzz --------------------------------------------------------------

std::vector<int> parse_thread_list(const std::string& spec) {
  std::vector<int> out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const auto comma = spec.find(',', begin);
    const auto end = comma == std::string::npos ? spec.size() : comma;
    const std::int64_t t =
        parse_int64(std::string_view(spec).substr(begin, end - begin),
                    "--threads");
    DCOLOR_CHECK_MSG(t >= 1 && t <= 256,
                     "--threads entries must be in [1, 256], got " << t);
    out.push_back(static_cast<int>(t));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  DCOLOR_CHECK_MSG(!out.empty(), "--threads must name at least one count");
  return out;
}

int cmd_fuzz(const CliArgs& args) {
  if (args.get_bool("self-test")) {
    const SelfTestReport report = run_mutation_self_test();
    for (const MutationOutcome& o : report.outcomes) {
      std::cout << "self-test " << mutation_name(o.kind) << ": baseline "
                << (o.baseline_clean ? "clean" : "DIRTY") << ", mutation "
                << (o.caught ? "caught [" + o.rule + "]" : "MISSED") << "\n";
    }
    std::cout << "mutation self-test: "
              << (report.all_caught() ? "all violations caught"
                                      : "FAILED — see above")
              << "\n";
    return report.all_caught() ? 0 : 1;
  }

  FuzzOptions options;
  options.cases = args.get_int("cases", args.get_int("max-cases", 200));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.max_n = static_cast<NodeId>(args.get_int("max-n", 48));
  options.repro_path = args.get_string("out", "fuzz_repro.txt");
  options.shrink = args.get_bool("shrink", true);
  options.max_shrink_evals = args.get_int("max-shrink-evals", 400);
  options.thread_counts =
      parse_thread_list(args.get_string("threads", "1,2,4,8"));
  const std::string alg_fallback = args.get_string("alg", "");
  options.solver = args.get_string("algorithm", alg_fallback);

  if (args.has("replay")) {
    const OwnedOldcInstance owned = load_oldc(args.get_string("replay", ""));
    const Solver& solver = SolverRegistry::get().require(
        options.solver.empty() ? "two_sweep" : options.solver);
    SolverParams params;
    params.p = static_cast<int>(args.get_int("ts_p", 2));
    params.eps = args.get_double("eps", 0.5);
    if (!fuzz_preconditions_hold(owned.instance, solver, params)) {
      std::cout << "replay: " << solver.name()
                << " premise does not hold on this instance\n";
      return 1;
    }
    const std::string failure = run_fuzz_battery(owned.instance, solver,
                                                 params,
                                                 options.thread_counts);
    if (failure.empty()) {
      std::cout << "replay PASS (" << solver.name() << ", "
                << owned.instance.graph->summary() << ")\n";
      return 0;
    }
    std::cout << "replay FAIL: " << failure << "\n";
    return 1;
  }

  const FuzzReport report = fuzz_differential(options, &std::cout);
  std::cout << "fuzz: " << report.cases_run << " cases, " << report.failures
            << " failure(s); oracle solved " << report.oracle_solved
            << ", skipped " << report.oracle_skips << "\n";
  if (report.failures > 0) {
    std::cout << "first failure: " << report.first_failure << "\n";
    if (!report.repro_path.empty()) {
      std::cout << "shrunk repro saved to " << report.repro_path
                << " (re-run with --cmd=fuzz --replay=" << report.repro_path
                << ")\n";
    }
    return 1;
  }
  return 0;
}

// ---- serve / client ----------------------------------------------------

int cmd_serve(const CliArgs& args) {
  serve::ServerOptions options;
  options.port = static_cast<int>(args.get_int("port", 0));
  options.workers = static_cast<int>(args.get_int("workers", 4));
  options.headroom = static_cast<int>(args.get_int("headroom", 2));
  options.default_solver = args.get_string("solver", "deg_plus_one");
  options.session_quota = static_cast<int>(args.get_int("session-quota", 64));
  options.session_ttl = args.get_double("session-ttl", 0.0);
  options.big_job_threshold = args.get_int("big-job-threshold", -1);
  if (args.has("check")) {
    options.check = args.get_string("check", "true") == "collect"
                        ? "collect"
                        : "throw";
  }
  serve::Server server(std::move(options));
  if (args.has("port-file")) {
    const std::string path = args.get_string("port-file", "port.txt");
    std::ofstream os(path);
    DCOLOR_CHECK_MSG(static_cast<bool>(os), "cannot open " << path);
    os << server.port() << "\n";
  }
  std::cout << "serving on 127.0.0.1:" << server.port() << std::endl;
  server.run();
  std::cout << "serve: shut down\n";
  return 0;
}

int cmd_client(const CliArgs& args) {
  const int port = static_cast<int>(args.get_int("port", 0));
  DCOLOR_CHECK_MSG(port > 0, "--cmd=client requires --port=<port>");
  serve::Client client(port);
  // Pushed event lines (streamed batch jobs, async solve notifications)
  // print as they arrive, before the blocking response line.
  const auto print_event = [](const std::string& event) {
    std::cout << event << std::endl;
  };
  if (args.has("request")) {
    std::cout << client.call_line(args.get_string("request", ""), print_event)
              << "\n";
    return 0;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << client.call_line(line, print_event) << std::endl;
  }
  return 0;
}

int run(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string cmd = args.get_string("cmd", "info");
  if (cmd == "trace_summary") {
    // Here --trace names an INPUT file; no tracer is installed.
    const int code = cmd_trace_summary(args);
    args.check_all_consumed();
    return code;
  }

  // Process-wide engine pin — the CLI equivalent of DCOLOR_ENGINE.
  // Thread-local overrides (RunScope with a non-auto ctx.engine, e.g. a
  // batch job's `sim_engine` key) still take precedence per job.
  if (args.has("engine")) {
    set_default_engine(engine_from_string(args.get_string("engine", "auto")));
  }

  std::unique_ptr<Tracer> tracer;
  if (args.has("trace")) {
    tracer = std::make_unique<Tracer>();
    tracer->add_sink(make_trace_sink(args.get_string("trace-format", "jsonl"),
                                     args.get_string("trace", "trace.jsonl")));
    tracer->install();
  }

  std::unique_ptr<InvariantChecker> checker;
  if (args.has("check")) {
    const std::string mode = args.get_string("check", "true");
    checker = std::make_unique<InvariantChecker>(
        mode == "collect" ? InvariantChecker::Mode::kCollect
                          : InvariantChecker::Mode::kThrow);
    checker->install();
  }

  std::unique_ptr<StatsRegistry> stats;
  std::string stats_path;
  std::string stats_format;
  if (args.has("stats")) {
    stats_path = args.get_string("stats", "stats.json");
    stats_format = args.get_string("stats-format", "json");
    stats = std::make_unique<StatsRegistry>();
    stats->install();
  }

  int code;
  if (cmd == "generate") {
    code = cmd_generate(args);
  } else if (cmd == "instance") {
    code = cmd_instance(args);
  } else if (cmd == "color") {
    code = cmd_color(args);
  } else if (cmd == "list") {
    code = cmd_list(args);
  } else if (cmd == "snapshot") {
    code = cmd_snapshot(args);
  } else if (cmd == "batch") {
    code = cmd_batch(args);
  } else if (cmd == "validate") {
    code = cmd_validate(args);
  } else if (cmd == "info") {
    code = cmd_info(args);
  } else if (cmd == "arena") {
    code = cmd_arena(args);
  } else if (cmd == "serve") {
    code = cmd_serve(args);
  } else if (cmd == "client") {
    code = cmd_client(args);
  } else if (cmd == "fuzz") {
    code = cmd_fuzz(args);
  } else {
    DCOLOR_CHECK_MSG(false, "unknown --cmd=" << cmd);
    return 1;
  }
  if (stats != nullptr) {
    stats->sample_rss();
    stats->uninstall();
    write_stats_file(*stats, stats_format, stats_path);
    std::cerr << "[stats] written to " << stats_path << "\n";
  }
  if (checker != nullptr) {
    const auto& violations = checker->violations();
    for (const CheckViolation& v : violations) {
      std::cerr << "[check] " << v.rule
                << (v.phase.empty() ? "" : " in " + v.phase) << " node="
                << v.node << ": " << v.detail << "\n";
    }
    std::cerr << "[check] " << checker->checks_run()
              << " invariant checks, " << violations.size()
              << " violation(s)\n";
    if (!violations.empty()) code = 1;
    checker->uninstall();
  }
  if (tracer != nullptr) tracer->finish();
  args.check_all_consumed();
  return code;
}

}  // namespace
}  // namespace dcolor

int main(int argc, char** argv) {
  try {
    return dcolor::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
