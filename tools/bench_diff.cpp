// bench_diff — wall-clock regression gate over two BENCH_*.json files.
//
// Both inputs are row-oriented JSON arrays as written by
// bench::JsonWriter (one flat object per line). Rows are matched by
// their identity fields (pipeline, n, engine, mode, phase, threads);
// for every matched pair the timing fields (--fields, default
// wall_ms,solve_ms) are compared and the run FAILS if
//
//     candidate > baseline * (1 + tolerance) + slack_ms
//
// for any of them. The absolute slack floor exists because relative
// gates flap on small rows (a 3 ms -> 4 ms jitter is +33%) and because
// single-digit-percent wall-clock noise is real on shared machines;
// the relative tolerance alone guards the big rows, the slack alone
// guards the tiny ones.
//
// Rows present on only one side are reported and skipped (benches grow
// new rows; a baseline refresh picks them up), but zero matched
// comparisons is an error — a gate that compares nothing must not pass.
//
// Memory fields (--mem-fields, default none) are gated the same way with
// their own tolerance and an absolute slack in MiB: RSS is page-
// granular and allocator-dependent, so small rows need a floor just
// like small timings do.
//
// Flags:
//   --baseline=BENCH_e14.json    committed reference
//   --candidate=BENCH_e14.json   freshly measured file
//   --tolerance=0.10             relative regression budget
//   --slack-ms=150               absolute budget added on top
//   --fields=wall_ms,solve_ms    comma-separated timing fields
//   --mem-fields=rss_mib         comma-separated memory fields (MiB)
//   --mem-tolerance=0.10         relative memory budget
//   --mem-slack-mib=32           absolute memory budget added on top
//
// Exit code: 0 = no regression, 1 = regression (or nothing compared),
// 2 = bad invocation / unreadable input.
//
// The `perf_gate` ctest label wires this against the repo's committed
// BENCH_e14.json (see tests/CMakeLists.txt).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/cli.h"
#include "util/table.h"

namespace dcolor {
namespace {

/// One flat JSON object: string values unquoted, numeric values kept as
/// text (parsed on demand). JsonWriter emits neither nesting nor escapes
/// beyond \" and \\, so a hand scanner is enough.
using BenchRow = std::map<std::string, std::string>;

std::optional<BenchRow> parse_row(const std::string& line) {
  const auto open = line.find('{');
  if (open == std::string::npos) return std::nullopt;
  BenchRow row;
  std::size_t i = open + 1;
  while (i < line.size()) {
    const auto kq = line.find('"', i);
    if (kq == std::string::npos) break;
    const auto kend = line.find('"', kq + 1);
    DCOLOR_CHECK_MSG(kend != std::string::npos, "unterminated key: " << line);
    std::string key = line.substr(kq + 1, kend - kq - 1);
    auto v = line.find(':', kend);
    DCOLOR_CHECK_MSG(v != std::string::npos, "missing ':' after \"" << key
                                                                    << '"');
    ++v;
    while (v < line.size() && line[v] == ' ') ++v;
    std::string value;
    if (v < line.size() && line[v] == '"') {
      std::size_t e = v + 1;
      while (e < line.size() && line[e] != '"') {
        if (line[e] == '\\') ++e;
        value.push_back(line[e]);
        ++e;
      }
      i = e + 1;
    } else {
      std::size_t e = v;
      while (e < line.size() && line[e] != ',' && line[e] != '}') ++e;
      value = line.substr(v, e - v);
      while (!value.empty() && value.back() == ' ') value.pop_back();
      i = e;
    }
    row[std::move(key)] = std::move(value);
    const auto next = line.find_first_of(",}", i);
    if (next == std::string::npos || line[next] == '}') break;
    i = next + 1;
  }
  return row;
}

std::vector<BenchRow> load_rows(const std::string& path) {
  std::ifstream is(path);
  DCOLOR_CHECK_MSG(static_cast<bool>(is), "cannot open " << path);
  std::vector<BenchRow> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (auto row = parse_row(line); row && !row->empty()) {
      rows.push_back(std::move(*row));
    }
  }
  return rows;
}

/// Identity of a row: every non-timing field that names WHAT was
/// measured. Unknown identity-ish fields are included so new axes added
/// to a bench split rows instead of silently colliding.
std::string row_key(const BenchRow& row,
                    const std::vector<std::string>& fields) {
  std::string key;
  for (const auto& [k, v] : row) {
    bool is_timing = false;
    for (const std::string& f : fields) {
      if (k == f) is_timing = true;
    }
    // us_per_node is derived from wall_ms; setup_ms, speedup, the
    // snapshot-roundtrip readings and the memory accounting columns are
    // measurements, not identity.
    if (is_timing || k == "us_per_node" || k == "setup_ms" ||
        k == "peak_rss_mib" || k == "rss_mib" || k == "rss_delta_mib" ||
        k == "palette_mib" || k == "wall_ns" || k == "speedup" ||
        k == "first_solve_ms" || k == "file_mib") {
      continue;
    }
    key += k;
    key += '=';
    key += v;
    key += '|';
  }
  return key;
}

std::optional<double> get_num(const BenchRow& row, const std::string& field) {
  const auto it = row.find(field);
  if (it == row.end() || it->second == "null") return std::nullopt;
  return std::stod(it->second);
}

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

int run(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string baseline_path = args.get_string("baseline", "");
  const std::string candidate_path = args.get_string("candidate", "");
  const double tolerance = args.get_double("tolerance", 0.10);
  const double slack_ms = args.get_double("slack-ms", 150.0);
  const std::vector<std::string> fields =
      split_csv(args.get_string("fields", "wall_ms,solve_ms"));
  const double mem_tolerance = args.get_double("mem-tolerance", 0.10);
  const double mem_slack_mib = args.get_double("mem-slack-mib", 32.0);
  const std::vector<std::string> mem_fields =
      split_csv(args.get_string("mem-fields", ""));
  args.check_all_consumed();
  // Both field lists are measurements, not identity.
  std::vector<std::string> measured = fields;
  measured.insert(measured.end(), mem_fields.begin(), mem_fields.end());
  DCOLOR_CHECK_MSG(!baseline_path.empty() && !candidate_path.empty(),
                   "usage: bench_diff --baseline=a.json --candidate=b.json "
                   "[--tolerance=0.10] [--slack-ms=150] "
                   "[--fields=wall_ms,solve_ms]");

  const std::vector<BenchRow> base_rows = load_rows(baseline_path);
  const std::vector<BenchRow> cand_rows = load_rows(candidate_path);

  // Key -> row; on duplicate keys (e.g. --quick measuring one size
  // twice) keep the faster side — consistent with every bench reporting
  // min-of-reps.
  const auto index = [&](const std::vector<BenchRow>& rows) {
    std::map<std::string, BenchRow> out;
    for (const BenchRow& row : rows) {
      const std::string key = row_key(row, measured);
      const auto [it, inserted] = out.emplace(key, row);
      if (inserted) continue;
      for (const std::string& f : measured) {
        const auto fresh = get_num(row, f);
        const auto kept = get_num(it->second, f);
        if (fresh && (!kept || *fresh < *kept)) {
          it->second[f] = row.at(f);
        }
      }
    }
    return out;
  };
  const std::map<std::string, BenchRow> base = index(base_rows);
  const std::map<std::string, BenchRow> cand = index(cand_rows);

  Table t("bench_diff (" + baseline_path + " -> " + candidate_path + ")");
  t.header({"row", "field", "base", "cand", "delta", "verdict"});
  std::int64_t compared = 0, regressions = 0, skipped = 0;
  for (const auto& [key, crow] : cand) {
    const auto bit = base.find(key);
    if (bit == base.end()) {
      ++skipped;
      continue;
    }
    const auto gate = [&](const std::vector<std::string>& fs, double tol,
                          double slack) {
      for (const std::string& f : fs) {
        const auto b = get_num(bit->second, f);
        const auto c = get_num(crow, f);
        if (!b || !c) continue;
        ++compared;
        const double budget = *b * (1.0 + tol) + slack;
        const bool bad = *c > budget;
        if (bad) ++regressions;
        const double delta_pct = *b > 0.0 ? 100.0 * (*c - *b) / *b : 0.0;
        std::ostringstream delta;
        delta << (delta_pct >= 0 ? "+" : "") << static_cast<int>(delta_pct)
              << "%";
        // Trim the trailing '|' and print only the identity fields.
        t.add(key.substr(0, key.empty() ? 0 : key.size() - 1), f, *b, *c,
              delta.str(), bad ? "REGRESSED" : "ok");
      }
    };
    gate(fields, tolerance, slack_ms);
    gate(mem_fields, mem_tolerance, mem_slack_mib);
  }
  for (const auto& [key, brow] : base) {
    if (cand.find(key) == cand.end()) ++skipped;
  }
  t.print(std::cout);
  std::cout << "bench_diff: " << compared << " comparison(s), " << regressions
            << " regression(s), " << skipped
            << " unmatched row(s) skipped (tolerance "
            << static_cast<int>(100.0 * tolerance) << "%, slack " << slack_ms
            << " ms";
  if (!mem_fields.empty()) {
    std::cout << "; mem tolerance " << static_cast<int>(100.0 * mem_tolerance)
              << "%, mem slack " << mem_slack_mib << " MiB";
  }
  std::cout << ")\n";
  if (compared == 0) {
    std::cout << "bench_diff: FAIL — nothing compared (key mismatch between "
                 "the two files?)\n";
    return 1;
  }
  return regressions == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dcolor

int main(int argc, char** argv) {
  try {
    return dcolor::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
