// Online invariant checking for coloring executions.
//
// The library's solvers carry strong per-node contracts straight from the
// paper: the chosen color must come from L_v, the oriented defect must
// stay within d_v(x_v), Theorem 1.1's slack premise
// Σ(d_v(x)+1) > (1+ε)·max{p, |L_v|/p}·β_v must hold before a sweep, and
// Theorem 1.2 bounds every CONGEST message to O(log q + log C) bits.
// Unit tests spot-check these; the `InvariantChecker` enforces them
// ONLINE, after each algorithm phase of a real run.
//
// Design mirrors the Tracer (sim/trace.h): a process-current checker set
// by install()/uninstall() (installs nest), consulted through a raw
// `current()` pointer. With no checker installed every hook is a single
// pointer test — the zero-cost-when-disabled contract the E14 bench row
// verifies. `detail::ensure_env_checker()` installs a process-global
// checker from the DCOLOR_CHECK environment variable ("1"/"throw" to
// fail fast, "collect" to accumulate), so any binary can be checked
// without wiring; `dcolor --check` does the same via the flag.
//
// Threading: all check_* entry points, install/uninstall, and phase
// notifications run on the simulating (main) thread. The engine's
// per-message bandwidth guard reads `active_bit_cap()` once per run on
// the main thread; violations raised from pool threads travel through
// the engine's existing first-error-in-chunk-order rethrow, so throw-mode
// failures are deterministic at every thread count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.h"
#include "graph/graph.h"
#include "sim/metrics.h"

namespace dcolor {

/// One detected contract violation.
struct CheckViolation {
  std::string rule;    ///< e.g. "color_in_list", "defect_bound"
  std::string phase;   ///< innermost PhaseSpan path at detection time
  NodeId node = -1;    ///< offending node (-1 = not node-specific)
  std::string detail;  ///< human-readable specifics

  friend bool operator==(const CheckViolation& a,
                         const CheckViolation& b) = default;
};

class InvariantChecker {
 public:
  enum class Mode {
    kThrow,    ///< first violation throws CheckError (fail fast)
    kCollect,  ///< violations accumulate in violations()
  };

  explicit InvariantChecker(Mode mode = Mode::kThrow);
  ~InvariantChecker();  ///< uninstalls if still installed

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Makes this checker the process-current one; nests like the Tracer.
  void install();
  void uninstall();

  /// The checker solver hooks consult (null = checking disabled).
  static InvariantChecker* current() noexcept;

  Mode mode() const noexcept { return mode_; }
  const std::vector<CheckViolation>& violations() const noexcept {
    return violations_;
  }
  /// Total individual invariant evaluations performed (a contract-pass
  /// run must report > 0 — "no violations" alone can mean "never ran").
  std::int64_t checks_run() const noexcept { return checks_run_; }
  void clear();

  // ---- contract checks (called from solver epilogues) -----------------

  /// Colors from lists + oriented defects within d_v(x_v) + all colored.
  void check_oldc(const OldcInstance& inst, const std::vector<Color>& colors,
                  std::string_view what);

  /// Colors from lists + undirected defects within d_v(x_v).
  void check_list_defective(const ListDefectiveInstance& inst,
                            const std::vector<Color>& colors,
                            std::string_view what);

  /// Colors from lists + out-defects under the OUTPUT orientation.
  void check_arbdefective(const ArbdefectiveInstance& inst,
                          const ArbdefectiveResult& result,
                          std::string_view what);

  /// Every node colored and no monochromatic edge.
  void check_proper(const Graph& g, const std::vector<Color>& colors,
                    std::string_view what);

  /// Defective precoloring contract (Lemma 3.4): every node colored in
  /// [0, num_colors) and per-node defect (oriented for non-symmetric
  /// instances, undirected otherwise) at most ⌊β_v·α⌋.
  void check_defective_precoloring(const OldcInstance& inst,
                                   const std::vector<Color>& psi,
                                   std::int64_t num_colors, double alpha,
                                   std::string_view what);

  /// Theorem 1.1 slack premise per node (sinks only need non-empty lists).
  void check_theorem11(const OldcInstance& inst, int p, double eps,
                       std::string_view what);

  /// Theorem 1.2 premise per node: weight(v) ≥ 3·√C·β_v.
  void check_theorem12(const OldcInstance& inst, std::string_view what);

  /// Theorem 1.2 bandwidth: the widest message of the run must fit the
  /// O(log q + log C) budget.
  void check_message_bits(const RoundMetrics& metrics, std::int64_t q,
                          std::int64_t color_space, std::string_view what);

  /// Concrete per-message budget behind the O(log q + log C) bound: the
  /// widest wire format in the CONGEST pipeline is a 2-bit tag plus a
  /// Phase-I set of p = 2 colors (2·⌈log C⌉ bits) or an initial color
  /// (⌈log q⌉ bits); kuhn_defective's trial messages stay within the same
  /// shape. The +8 absorbs tags and small per-field rounding.
  static int theorem12_bit_budget(std::int64_t q,
                                  std::int64_t color_space) noexcept;

  // ---- engine seam -----------------------------------------------------

  /// Per-message bit cap `Network::run` applies on top of its own
  /// message_bit_cap; 0 = none. Only armed in kThrow mode (collect mode
  /// validates post-run via check_message_bits — pool threads never touch
  /// checker state).
  int active_bit_cap() const noexcept {
    return mode_ == Mode::kThrow ? bit_cap_ : 0;
  }

  /// RAII bandwidth scope: arms active_bit_cap() for the solvers run
  /// inside it (congest_oldc wraps its pipeline in one).
  class BandwidthGuard {
   public:
    BandwidthGuard(InvariantChecker* checker, int bit_cap) noexcept;
    ~BandwidthGuard();
    BandwidthGuard(const BandwidthGuard&) = delete;
    BandwidthGuard& operator=(const BandwidthGuard&) = delete;

   private:
    InvariantChecker* checker_ = nullptr;
    int prev_cap_ = 0;
  };

  // ---- phase seam (called by PhaseSpan, mirrors the Tracer hook) -------
  void on_phase_begin(std::string_view name);
  void on_phase_end();
  /// "a/b/c" path of the currently open phases (empty at top level).
  std::string phase_path() const;

  /// Raises one violation: throws CheckError in kThrow mode, appends to
  /// violations() in kCollect mode.
  void report(std::string_view rule, NodeId node, std::string detail);

 private:
  void count_check() noexcept { ++checks_run_; }

  Mode mode_;
  std::vector<CheckViolation> violations_;
  std::vector<std::string> phase_stack_;
  std::int64_t checks_run_ = 0;
  int bit_cap_ = 0;
  bool installed_ = false;
  InvariantChecker* prev_ = nullptr;  ///< checker displaced by install()
};

namespace detail {
/// Installs a process-global checker from DCOLOR_CHECK on first call
/// (no-op when unset/"0"). "collect" accumulates and prints violations
/// to stderr at exit; anything else fails fast. Called by Network::run
/// so env-driven checking works in any binary without wiring.
void ensure_env_checker();
}  // namespace detail

}  // namespace dcolor
