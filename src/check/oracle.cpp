#include "check/oracle.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace dcolor {

namespace {

/// Greedy choice at one node: among colors with conflicts(x) ≤ d_v(x),
/// pick the one maximizing the remaining margin d_v(x) − conflicts(x)
/// (smallest color on ties — deterministic). Returns kNoColor when every
/// color's budget is exhausted.
Color pick_color(PaletteView list, const std::vector<int>& conflicts) {
  std::int64_t best_margin = -1;
  Color best = kNoColor;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const std::int64_t margin = list.defect(i) - conflicts[i];
    if (margin > best_margin) {
      best_margin = margin;
      best = list.color(i);
    }
  }
  return best_margin >= 0 ? best : kNoColor;
}

OracleResult solve_oriented(const OldcInstance& inst) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  OracleResult out;
  out.colors.assign(n, kNoColor);

  // Kahn over the out-arc DAG: v becomes ready once all out-neighbors are
  // colored. A min-heap keyed by id makes the order (and thus the output)
  // deterministic; a stall before all nodes are colored means the
  // orientation has a directed cycle — no processing order exists.
  std::vector<int> outstanding(n, 0);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    outstanding[static_cast<std::size_t>(v)] =
        static_cast<int>(inst.orientation.out_neighbors(v).size());
    if (outstanding[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }

  std::vector<int> conflicts;
  std::size_t colored = 0;
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    const auto vi = static_cast<std::size_t>(v);
    const PaletteView list = inst.lists[vi];
    conflicts.assign(list.size(), 0);
    for (const NodeId u : inst.orientation.out_neighbors(v)) {
      const Color cu = out.colors[static_cast<std::size_t>(u)];
      const auto cs = list.colors();
      const auto it = std::lower_bound(cs.begin(), cs.end(), cu);
      if (it != cs.end() && *it == cu) {
        ++conflicts[static_cast<std::size_t>(it - cs.begin())];
      }
    }
    const Color c = pick_color(list, conflicts);
    if (c == kNoColor) {
      out.status = OracleStatus::kUnsolvable;
      out.detail = "no color of node " + std::to_string(v) +
                   " has defect budget for its out-conflicts";
      return out;
    }
    out.colors[vi] = c;
    ++colored;
    for (const NodeId u : inst.orientation.in_neighbors(v)) {
      if (--outstanding[static_cast<std::size_t>(u)] == 0) ready.push(u);
    }
  }
  if (colored != n) {
    out.status = OracleStatus::kSkipped;
    out.detail = "orientation has a directed cycle; no topological order";
    out.colors.assign(n, kNoColor);
    return out;
  }
  out.status = OracleStatus::kSolved;
  return out;
}

OracleResult solve_symmetric(const OldcInstance& inst) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  OracleResult out;
  out.colors.assign(n, kNoColor);

  // remaining[u]: how many MORE same-colored neighbors node u can absorb.
  std::vector<std::int64_t> remaining(n, 0);
  std::vector<int> conflicts;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const PaletteView list = inst.lists[vi];
    conflicts.assign(list.size(), 0);
    for (const NodeId u : g.neighbors(v)) {
      const Color cu = out.colors[static_cast<std::size_t>(u)];
      if (cu == kNoColor) continue;
      const auto cs = list.colors();
      const auto it = std::lower_bound(cs.begin(), cs.end(), cu);
      if (it != cs.end() && *it == cu) {
        ++conflicts[static_cast<std::size_t>(it - cs.begin())];
      }
    }
    // Feasible = own budget covers current conflicts AND every
    // already-colored same-color neighbor still has headroom to absorb v.
    std::int64_t best_margin = -1;
    Color best = kNoColor;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const std::int64_t margin = list.defect(i) - conflicts[i];
      if (margin < 0 || margin <= best_margin) continue;
      bool neighbors_ok = true;
      for (const NodeId u : g.neighbors(v)) {
        const auto ui = static_cast<std::size_t>(u);
        if (out.colors[ui] == list.color(i) && remaining[ui] == 0) {
          neighbors_ok = false;
          break;
        }
      }
      if (neighbors_ok) {
        best_margin = margin;
        best = list.color(i);
      }
    }
    if (best == kNoColor) {
      out.status = OracleStatus::kSkipped;
      out.detail = "greedy dead end at node " + std::to_string(v) +
                   " (no guarantee for symmetric instances)";
      out.colors.assign(n, kNoColor);
      return out;
    }
    out.colors[vi] = best;
    remaining[vi] = best_margin;  // d_v(best) − conflicts(best)
    for (const NodeId u : g.neighbors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      if (out.colors[ui] == best) --remaining[ui];
    }
  }
  out.status = OracleStatus::kSolved;
  return out;
}

}  // namespace

OracleResult solve_oldc_oracle(const OldcInstance& inst) {
  OracleResult out =
      inst.symmetric ? solve_symmetric(inst) : solve_oriented(inst);
  if (out.status == OracleStatus::kSolved &&
      !validate_oldc(inst, out.colors)) {
    // The oracle's own invariants failed — never trust a reference that
    // does not validate.
    out.status = OracleStatus::kUnsolvable;
    out.detail = "oracle produced an invalid solution (internal error)";
  }
  return out;
}

bool oracle_guarantee_holds(const OldcInstance& inst) {
  if (inst.symmetric) return false;
  const Graph& g = *inst.graph;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PaletteView list = inst.lists[static_cast<std::size_t>(v)];
    const int outdeg = inst.effective_outdegree(v);
    if (outdeg == 0) {
      if (list.empty()) return false;
    } else if (list.weight() <= outdeg) {
      return false;
    }
  }
  return true;
}

}  // namespace dcolor
