// Sequential reference solvers ("oracles") for differential testing.
//
// The fuzz harness cross-checks every distributed run against a
// sequential solver with a provable success guarantee:
//
//  * Oriented instances with an ACYCLIC orientation are solved greedily
//    in reverse topological order (a node is colored only after all of
//    its out-neighbors). At v's turn every out-conflict count is exact
//    and final — later choices only affect later nodes' out-defects — so
//    picking the color maximizing d_v(x) − conflicts(x) succeeds whenever
//    Σ(d_v(x)+1) > outdeg(v) (pigeonhole), which Eq. (2) implies. An
//    oracle failure on an Eq.-(2)-feasible acyclic instance is therefore
//    always a bug, never bad luck.
//
//  * Symmetric (undirected) instances get a budget-aware greedy that
//    tracks how much defect headroom each colored node has left; greedy
//    has no success guarantee there, so a dead end reports kSkipped
//    (not a mismatch) and the harness counts it separately.
#pragma once

#include <string>
#include <vector>

#include "core/instance.h"

namespace dcolor {

enum class OracleStatus {
  kSolved,      ///< colors is a valid solution (self-validated)
  kUnsolvable,  ///< provably no valid choice existed at some node
  kSkipped,     ///< no guarantee applies (cyclic orientation / greedy dead
                ///< end on a symmetric instance) — not a mismatch
};

struct OracleResult {
  OracleStatus status = OracleStatus::kSkipped;
  std::vector<Color> colors;  ///< valid iff status == kSolved
  std::string detail;         ///< why it stopped, for kUnsolvable/kSkipped
};

/// Solves an OLDC instance sequentially (dispatches on inst.symmetric).
OracleResult solve_oldc_oracle(const OldcInstance& inst);

/// True iff every non-sink node satisfies Eq. (2)'s pigeonhole corollary
/// weight(v) > outdeg(v) and every sink has a non-empty list — the
/// premise under which the oriented oracle provably succeeds.
bool oracle_guarantee_holds(const OldcInstance& inst);

}  // namespace dcolor
