#include "check/invariant_checker.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "graph/coloring_checks.h"
#include "obs/stats.h"
#include "util/check.h"
#include "util/math.h"

namespace dcolor {

namespace {

// Thread-local for the same reason as the Tracer's current pointer:
// concurrent batch workers install per-job checkers without racing, and
// a checker installed on one thread never observes another thread's run.
thread_local InvariantChecker* g_current = nullptr;

}  // namespace

InvariantChecker::InvariantChecker(Mode mode) : mode_(mode) {}

InvariantChecker::~InvariantChecker() {
  // Tolerate destruction on a thread other than the installing one (the
  // env-driven checker can be installed by whichever thread first runs a
  // Network, but static destruction happens on the main thread): only pop
  // the thread-local current pointer when it is actually ours.
  if (installed_ && g_current == this) {
    uninstall();
  } else {
    installed_ = false;
  }
}

void InvariantChecker::install() {
  DCOLOR_CHECK_MSG(!installed_, "checker installed twice");
  prev_ = g_current;
  g_current = this;
  installed_ = true;
}

void InvariantChecker::uninstall() {
  DCOLOR_CHECK_MSG(installed_ && g_current == this,
                   "uninstalling a checker that is not current");
  g_current = prev_;
  prev_ = nullptr;
  installed_ = false;
}

InvariantChecker* InvariantChecker::current() noexcept { return g_current; }

void InvariantChecker::clear() {
  violations_.clear();
  checks_run_ = 0;
}

void InvariantChecker::report(std::string_view rule, NodeId node,
                              std::string detail) {
  CheckViolation v;
  v.rule = std::string(rule);
  v.phase = phase_path();
  v.node = node;
  v.detail = std::move(detail);
  // Count before the throw-mode escape so a thrown violation is still
  // visible in the resource accounting of the run that died.
  if (StatsRegistry* const stats = StatsRegistry::current(); stats != nullptr) {
    stats->counter("check.violations").add(1);
  }
  if (mode_ == Mode::kThrow) {
    std::ostringstream os;
    os << "invariant violation [" << v.rule << "]";
    if (!v.phase.empty()) os << " in phase " << v.phase;
    if (v.node >= 0) os << " at node " << v.node;
    if (!v.detail.empty()) os << ": " << v.detail;
    throw CheckError(os.str());
  }
  violations_.push_back(std::move(v));
}

void InvariantChecker::on_phase_begin(std::string_view name) {
  phase_stack_.emplace_back(name);
}

void InvariantChecker::on_phase_end() {
  if (!phase_stack_.empty()) phase_stack_.pop_back();
}

std::string InvariantChecker::phase_path() const {
  std::string path;
  for (const std::string& s : phase_stack_) {
    if (!path.empty()) path += '/';
    path += s;
  }
  return path;
}

// ---- contract checks ---------------------------------------------------

void InvariantChecker::check_oldc(const OldcInstance& inst,
                                  const std::vector<Color>& colors,
                                  std::string_view what) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (colors.size() != n) {
    report("output_size", -1,
           std::string(what) + ": coloring has " +
               std::to_string(colors.size()) + " entries for " +
               std::to_string(n) + " nodes");
    return;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const Color c = colors[vi];
    count_check();
    if (c == kNoColor) {
      report("all_colored", v, std::string(what) + ": node left uncolored");
      continue;
    }
    const PaletteView list = inst.lists[vi];
    const auto d = list.defect_of(c);
    count_check();
    if (!d) {
      report("color_in_list", v,
             std::string(what) + ": color " + std::to_string(c) +
                 " not in L_v");
      continue;
    }
    int defect = 0;
    for (const NodeId u : inst.out_neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c) ++defect;
    }
    count_check();
    if (defect > *d) {
      report("defect_bound", v,
             std::string(what) + ": oriented defect " +
                 std::to_string(defect) + " exceeds d_v(" +
                 std::to_string(c) + ") = " + std::to_string(*d));
    }
  }
}

void InvariantChecker::check_list_defective(const ListDefectiveInstance& inst,
                                            const std::vector<Color>& colors,
                                            std::string_view what) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (colors.size() != n) {
    report("output_size", -1,
           std::string(what) + ": coloring size mismatch");
    return;
  }
  const std::vector<int> defects = undirected_defects(g, colors);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const Color c = colors[vi];
    count_check();
    if (c == kNoColor) {
      report("all_colored", v, std::string(what) + ": node left uncolored");
      continue;
    }
    const auto d = inst.lists[vi].defect_of(c);
    count_check();
    if (!d) {
      report("color_in_list", v,
             std::string(what) + ": color " + std::to_string(c) +
                 " not in L_v");
      continue;
    }
    count_check();
    if (defects[vi] > *d) {
      report("defect_bound", v,
             std::string(what) + ": undirected defect " +
                 std::to_string(defects[vi]) + " exceeds d_v(" +
                 std::to_string(c) + ") = " + std::to_string(*d));
    }
  }
}

void InvariantChecker::check_arbdefective(const ArbdefectiveInstance& inst,
                                          const ArbdefectiveResult& result,
                                          std::string_view what) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (result.colors.size() != n) {
    report("output_size", -1, std::string(what) + ": coloring size mismatch");
    return;
  }
  const std::vector<int> defects =
      oriented_defects(result.orientation, result.colors);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const Color c = result.colors[vi];
    count_check();
    if (c == kNoColor) {
      report("all_colored", v, std::string(what) + ": node left uncolored");
      continue;
    }
    const auto d = inst.lists[vi].defect_of(c);
    count_check();
    if (!d) {
      report("color_in_list", v,
             std::string(what) + ": color " + std::to_string(c) +
                 " not in L_v");
      continue;
    }
    count_check();
    if (defects[vi] > *d) {
      report("defect_bound", v,
             std::string(what) + ": output-oriented defect " +
                 std::to_string(defects[vi]) + " exceeds d_v(" +
                 std::to_string(c) + ") = " + std::to_string(*d));
    }
  }
}

void InvariantChecker::check_proper(const Graph& g,
                                    const std::vector<Color>& colors,
                                    std::string_view what) {
  if (colors.size() != static_cast<std::size_t>(g.num_nodes())) {
    report("output_size", -1, std::string(what) + ": coloring size mismatch");
    return;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = colors[static_cast<std::size_t>(v)];
    count_check();
    if (c == kNoColor) {
      report("all_colored", v, std::string(what) + ": node left uncolored");
      continue;
    }
    for (const NodeId u : g.neighbors(v)) {
      if (u > v && colors[static_cast<std::size_t>(u)] == c) {
        report("proper_coloring", v,
               std::string(what) + ": edge (" + std::to_string(v) + "," +
                   std::to_string(u) + ") is monochromatic with color " +
                   std::to_string(c));
      }
    }
  }
}

void InvariantChecker::check_defective_precoloring(
    const OldcInstance& inst, const std::vector<Color>& psi,
    std::int64_t num_colors, double alpha, std::string_view what) {
  const Graph& g = *inst.graph;
  if (psi.size() != static_cast<std::size_t>(g.num_nodes())) {
    report("output_size", -1,
           std::string(what) + ": precoloring size mismatch");
    return;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const Color c = psi[vi];
    count_check();
    if (c < 0 || c >= num_colors) {
      report("precoloring_range", v,
             std::string(what) + ": Ψ color " + std::to_string(c) +
                 " outside [0, " + std::to_string(num_colors) + ")");
      continue;
    }
    int defect = 0;
    if (inst.symmetric) {
      for (const NodeId u : g.neighbors(v)) {
        if (psi[static_cast<std::size_t>(u)] == c) ++defect;
      }
    } else {
      for (const NodeId u : inst.orientation.out_neighbors(v)) {
        if (psi[static_cast<std::size_t>(u)] == c) ++defect;
      }
    }
    const int allowed =
        static_cast<int>(std::floor(inst.beta_v(v) * alpha));
    count_check();
    if (defect > allowed) {
      report("precoloring_defect", v,
             std::string(what) + ": Ψ defect " + std::to_string(defect) +
                 " exceeds ⌊β_v·α⌋ = " + std::to_string(allowed));
    }
  }
}

void InvariantChecker::check_theorem11(const OldcInstance& inst, int p,
                                       double eps, std::string_view what) {
  const Graph& g = *inst.graph;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PaletteView list = inst.lists[static_cast<std::size_t>(v)];
    count_check();
    if (inst.effective_outdegree(v) == 0) {
      if (list.empty()) {
        report("theorem11_slack", v,
               std::string(what) + ": empty list at sink node");
      }
      continue;
    }
    const double need =
        (1.0 + eps) *
        std::max(static_cast<double>(p),
                 static_cast<double>(list.size()) / static_cast<double>(p)) *
        inst.beta_v(v);
    if (static_cast<double>(list.weight()) <= need) {
      std::ostringstream os;
      os << what << ": Σ(d_v(x)+1) = " << list.weight()
         << " ≤ (1+ε)·max{p,|L_v|/p}·β_v = " << need << " (p=" << p
         << ", ε=" << eps << ", β_v=" << inst.beta_v(v) << ")";
      report("theorem11_slack", v, os.str());
    }
  }
}

void InvariantChecker::check_theorem12(const OldcInstance& inst,
                                       std::string_view what) {
  const Graph& g = *inst.graph;
  const double sqrt_c = std::sqrt(static_cast<double>(inst.color_space));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PaletteView list = inst.lists[static_cast<std::size_t>(v)];
    count_check();
    if (inst.effective_outdegree(v) == 0) {
      if (list.empty()) {
        report("theorem12_premise", v,
               std::string(what) + ": empty list at sink node");
      }
      continue;
    }
    if (static_cast<double>(list.weight()) < 3.0 * sqrt_c * inst.beta_v(v)) {
      std::ostringstream os;
      os << what << ": weight " << list.weight() << " < 3·√C·β_v = "
         << 3.0 * sqrt_c * inst.beta_v(v);
      report("theorem12_premise", v, os.str());
    }
  }
}

int InvariantChecker::theorem12_bit_budget(std::int64_t q,
                                           std::int64_t color_space) noexcept {
  const int q_bits = ceil_log2(
      static_cast<std::uint64_t>(std::max<std::int64_t>(2, q)));
  const int c_bits = ceil_log2(
      static_cast<std::uint64_t>(std::max<std::int64_t>(2, color_space)));
  return 8 + q_bits + 2 * c_bits;
}

void InvariantChecker::check_message_bits(const RoundMetrics& metrics,
                                          std::int64_t q,
                                          std::int64_t color_space,
                                          std::string_view what) {
  const int budget = theorem12_bit_budget(q, color_space);
  count_check();
  if (metrics.max_message_bits > budget) {
    std::ostringstream os;
    os << what << ": widest message " << metrics.max_message_bits
       << " bits exceeds the O(log q + log C) budget " << budget
       << " (q=" << q << ", C=" << color_space << ")";
    report("theorem12_bandwidth", -1, os.str());
  }
}

// ---- bandwidth guard ---------------------------------------------------

InvariantChecker::BandwidthGuard::BandwidthGuard(InvariantChecker* checker,
                                                 int bit_cap) noexcept
    : checker_(checker) {
  if (checker_ != nullptr) {
    prev_cap_ = checker_->bit_cap_;
    checker_->bit_cap_ = bit_cap;
  }
}

InvariantChecker::BandwidthGuard::~BandwidthGuard() {
  if (checker_ != nullptr) checker_->bit_cap_ = prev_cap_;
}

// ---- environment wiring ------------------------------------------------

namespace detail {

namespace {

InvariantChecker* g_env_checker = nullptr;

void flush_env_checker() {
  if (g_env_checker == nullptr) return;
  const auto& violations = g_env_checker->violations();
  if (!violations.empty()) {
    std::fprintf(stderr, "[dcolor-check] %zu invariant violation(s):\n",
                 violations.size());
    for (const CheckViolation& v : violations) {
      std::fprintf(stderr, "[dcolor-check]   %s%s%s node=%d: %s\n",
                   v.rule.c_str(), v.phase.empty() ? "" : " in ",
                   v.phase.c_str(), static_cast<int>(v.node),
                   v.detail.c_str());
    }
  }
}

}  // namespace

void ensure_env_checker() {
  static const bool done = [] {
    const char* s = std::getenv("DCOLOR_CHECK");
    if (s == nullptr || *s == '\0' || std::string_view(s) == "0") return true;
    const auto mode = std::string_view(s) == "collect"
                          ? InvariantChecker::Mode::kCollect
                          : InvariantChecker::Mode::kThrow;
    static InvariantChecker checker(mode);
    checker.install();
    g_env_checker = &checker;
    std::atexit(flush_env_checker);
    return true;
  }();
  (void)done;
}

}  // namespace detail

}  // namespace dcolor
