#include "check/mutation.h"

#include <utility>

#include "check/invariant_checker.h"
#include "coloring/linial.h"
#include "core/instance.h"
#include "core/two_sweep.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {

namespace {

/// A solved, validated baseline execution the generic mutations poke at.
struct Baseline {
  Graph g;
  OldcInstance inst;
  std::vector<Color> colors;
  std::int64_t q = 0;
  RoundMetrics metrics;
};

Baseline make_baseline() {
  Baseline b;
  Rng rng(7);
  b.g = gnp(20, 0.3, rng);
  Orientation o = Orientation::by_id(b.g);
  const int beta = o.beta();
  // d sized so both Eq. (2) (p=2) and Theorem 1.1 (ε=0.5) hold per node.
  const int defect = (3 * beta + 3) / 4 + 1;
  b.inst = random_uniform_oldc(b.g, std::move(o), /*color_space=*/12,
                               /*list_size=*/6, defect, rng);
  const LinialResult linial = linial_from_ids(b.g, b.inst.orientation);
  b.q = linial.num_colors;
  ColoringResult result =
      two_sweep(b.inst, linial.colors, linial.num_colors, /*p=*/2);
  b.colors = std::move(result.colors);
  b.metrics = result.metrics;
  DCOLOR_CHECK(validate_oldc(b.inst, b.colors));
  return b;
}

/// Replaces node v's palette in a copy of `store`.
PaletteStore with_palette(const PaletteStore& store, std::size_t v,
                          const ColorList& list) {
  PaletteStore out = store;
  out.set_node(v, list);
  return out;
}

/// First node with at least one out-neighbor (mutations that need a
/// non-sink target; by_id orientations make node 0 a sink).
NodeId first_non_sink(const OldcInstance& inst) {
  for (NodeId v = 0; v < inst.graph->num_nodes(); ++v) {
    if (inst.effective_outdegree(v) > 0) return v;
  }
  return -1;
}

MutationOutcome finish(MutationOutcome out, const InvariantChecker& checker,
                       bool mutated_phase) {
  if (!mutated_phase) {
    out.baseline_clean = checker.violations().empty();
  } else {
    out.caught = !checker.violations().empty();
    if (out.caught) out.rule = checker.violations().front().rule;
  }
  return out;
}

}  // namespace

const char* mutation_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kOffListColor: return "off_list_color";
    case MutationKind::kUncoloredNode: return "uncolored_node";
    case MutationKind::kDefectOverflow: return "defect_overflow";
    case MutationKind::kImproperFinal: return "improper_final";
    case MutationKind::kSlackLie: return "slack_lie";
    case MutationKind::kBandwidthLie: return "bandwidth_lie";
    case MutationKind::kDroppedMessage: return "dropped_message";
  }
  return "unknown";
}

std::vector<MutationKind> all_mutation_kinds() {
  return {MutationKind::kOffListColor,   MutationKind::kUncoloredNode,
          MutationKind::kDefectOverflow, MutationKind::kImproperFinal,
          MutationKind::kSlackLie,       MutationKind::kBandwidthLie,
          MutationKind::kDroppedMessage};
}

MutationOutcome run_mutation(MutationKind kind) {
  MutationOutcome out;
  out.kind = kind;
  InvariantChecker checker(InvariantChecker::Mode::kCollect);
  checker.install();

  switch (kind) {
    case MutationKind::kOffListColor: {
      const Baseline b = make_baseline();
      checker.check_oldc(b.inst, b.colors, "baseline");
      out = finish(out, checker, /*mutated_phase=*/false);
      checker.clear();
      std::vector<Color> mutated = b.colors;
      mutated[0] = b.inst.color_space;  // outside every list by construction
      checker.check_oldc(b.inst, mutated, "mutated");
      out = finish(std::move(out), checker, /*mutated_phase=*/true);
      break;
    }
    case MutationKind::kUncoloredNode: {
      const Baseline b = make_baseline();
      checker.check_oldc(b.inst, b.colors, "baseline");
      out = finish(out, checker, false);
      checker.clear();
      std::vector<Color> mutated = b.colors;
      mutated[mutated.size() / 2] = kNoColor;
      checker.check_oldc(b.inst, mutated, "mutated");
      out = finish(std::move(out), checker, true);
      break;
    }
    case MutationKind::kDefectOverflow: {
      // K2 with arc 1->0, both lists {5} with defect 1: coloring both 5 is
      // exactly at budget. The off-by-one twin lowers node 1's budget to 0.
      const Graph g = Graph::from_edges(2, {{0, 1}});
      OldcInstance inst;
      inst.graph = &g;
      inst.orientation = Orientation::by_id(g);
      inst.color_space = 6;
      inst.lists.push_back(ColorList::uniform({5}, 1));
      inst.lists.push_back(ColorList::uniform({5}, 1));
      const std::vector<Color> colors = {5, 5};
      checker.check_oldc(inst, colors, "baseline");
      out = finish(out, checker, false);
      checker.clear();
      OldcInstance mutated = inst;
      mutated.lists = with_palette(inst.lists, 1, ColorList::uniform({5}, 0));
      checker.check_oldc(mutated, colors, "mutated");
      out = finish(std::move(out), checker, true);
      break;
    }
    case MutationKind::kImproperFinal: {
      const Graph g = path(5);
      const std::vector<Color> good = {0, 1, 0, 1, 0};
      checker.check_proper(g, good, "baseline");
      out = finish(out, checker, false);
      checker.clear();
      std::vector<Color> mutated = good;
      mutated[1] = 0;  // edge (0,1) now monochromatic
      checker.check_proper(g, mutated, "mutated");
      out = finish(std::move(out), checker, true);
      break;
    }
    case MutationKind::kSlackLie: {
      const Baseline b = make_baseline();
      checker.check_theorem11(b.inst, 2, 0.5, "baseline");
      out = finish(out, checker, false);
      checker.clear();
      const NodeId v = first_non_sink(b.inst);
      DCOLOR_CHECK(v >= 0);
      OldcInstance mutated = b.inst;
      mutated.lists = with_palette(
          b.inst.lists, static_cast<std::size_t>(v),
          ColorList::zero_defect({0}));  // weight 1 breaks the premise
      checker.check_theorem11(mutated, 2, 0.5, "mutated");
      out = finish(std::move(out), checker, true);
      break;
    }
    case MutationKind::kBandwidthLie: {
      const Baseline b = make_baseline();
      const int budget =
          InvariantChecker::theorem12_bit_budget(b.q, b.inst.color_space);
      RoundMetrics good;
      good.max_message_bits = budget;
      checker.check_message_bits(good, b.q, b.inst.color_space, "baseline");
      out = finish(out, checker, false);
      checker.clear();
      RoundMetrics lied;
      lied.max_message_bits = budget + 1;
      checker.check_message_bits(lied, b.q, b.inst.color_space, "mutated");
      out = finish(std::move(out), checker, true);
      break;
    }
    case MutationKind::kDroppedMessage: {
      // Path 0-1-2, true orientation by_id (1->0, 2->1). Node 1 must hear
      // node 0's decision to avoid color 5; hiding that arc reproduces the
      // state a dropped message leaves behind: node 1 commits to 5 with a
      // stale conflict count, and the true instance rejects the output.
      const Graph g = path(3);
      OldcInstance true_inst;
      true_inst.graph = &g;
      true_inst.orientation = Orientation::by_id(g);
      true_inst.color_space = 8;
      true_inst.lists.push_back(ColorList::uniform({5}, 1));
      true_inst.lists.push_back(ColorList::zero_defect({5, 6}));
      true_inst.lists.push_back(ColorList::zero_defect({5, 6}));

      const std::vector<Color> initial = {0, 1, 2};
      const ColoringResult honest =
          two_sweep(true_inst, initial, /*q=*/3, /*p=*/1,
                    /*skip_precondition_check=*/true);
      checker.check_oldc(true_inst, honest.colors, "baseline");
      out = finish(out, checker, false);
      checker.clear();

      OldcInstance dropped = true_inst;
      dropped.orientation = Orientation::from_predicate(
          g, [](NodeId a, NodeId b) {
            return (a == 0 && b == 1) || (a == 2 && b == 1);
          });
      const ColoringResult stale =
          two_sweep(dropped, initial, /*q=*/3, /*p=*/1,
                    /*skip_precondition_check=*/true);
      checker.clear();  // solver-epilogue checks ran against `dropped`
      checker.check_oldc(true_inst, stale.colors, "mutated");
      out = finish(std::move(out), checker, true);
      break;
    }
  }

  checker.uninstall();
  return out;
}

bool SelfTestReport::all_caught() const {
  for (const MutationOutcome& o : outcomes) {
    if (!o.caught || !o.baseline_clean) return false;
  }
  return !outcomes.empty();
}

SelfTestReport run_mutation_self_test() {
  SelfTestReport report;
  for (const MutationKind kind : all_mutation_kinds()) {
    report.outcomes.push_back(run_mutation(kind));
  }
  return report;
}

}  // namespace dcolor
