#include "check/fuzz.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "check/invariant_checker.h"
#include "check/oracle.h"
#include "coloring/linial.h"
#include "core/congest_oldc.h"
#include "core/fast_two_sweep.h"
#include "core/two_sweep.h"
#include "graph/generators.h"
#include "sim/network.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {

namespace {

/// Deep copy: the instance plus an owned graph it points at.
OwnedOldcInstance clone_instance(const OldcInstance& inst) {
  OwnedOldcInstance out;
  out.graph = *inst.graph;
  out.instance = inst;
  out.instance.graph = &out.graph;
  return out;
}

Orientation rebuild_orientation(const Graph& g, const OldcInstance& source,
                                const std::vector<NodeId>& to_old) {
  if (source.symmetric) return Orientation::by_id(g);
  return Orientation::from_predicate(g, [&](NodeId a, NodeId b) {
    return source.orientation.is_out_edge(
        to_old[static_cast<std::size_t>(a)],
        to_old[static_cast<std::size_t>(b)]);
  });
}

/// Drops node `drop`, renumbering ids above it down by one (monotone, so
/// a by_id orientation keeps its meaning).
OwnedOldcInstance clone_without_node(const OldcInstance& inst, NodeId drop) {
  const Graph& g = *inst.graph;
  const NodeId n = g.num_nodes();
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& [u, v] : g.edge_list()) {
    if (u == drop || v == drop) continue;
    edges.emplace_back(u < drop ? u : u - 1, v < drop ? v : v - 1);
  }
  OwnedOldcInstance out;
  out.graph = Graph::from_edges(n - 1, std::move(edges));
  std::vector<NodeId> to_old(static_cast<std::size_t>(n - 1));
  for (NodeId v = 0; v + 1 < n; ++v) {
    to_old[static_cast<std::size_t>(v)] = v < drop ? v : v + 1;
  }
  out.instance.graph = &out.graph;
  out.instance.color_space = inst.color_space;
  out.instance.symmetric = inst.symmetric;
  out.instance.orientation = rebuild_orientation(out.graph, inst, to_old);
  for (NodeId v = 0; v + 1 < n; ++v) {
    out.instance.lists.push_back(
        inst.lists[static_cast<std::size_t>(to_old[static_cast<std::size_t>(v)])]);
  }
  return out;
}

/// Drops one edge (by index into the deterministic edge_list() order).
OwnedOldcInstance clone_without_edge(const OldcInstance& inst,
                                     std::size_t edge_idx) {
  const Graph& g = *inst.graph;
  std::vector<std::pair<NodeId, NodeId>> edges = g.edge_list();
  edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(edge_idx));
  OwnedOldcInstance out;
  out.graph = Graph::from_edges(g.num_nodes(), std::move(edges));
  std::vector<NodeId> to_old(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    to_old[static_cast<std::size_t>(v)] = v;
  }
  out.instance.graph = &out.graph;
  out.instance.color_space = inst.color_space;
  out.instance.symmetric = inst.symmetric;
  out.instance.orientation = rebuild_orientation(out.graph, inst, to_old);
  out.instance.lists = inst.lists;
  return out;
}

/// Replaces node v's palette.
OwnedOldcInstance clone_with_list(const OldcInstance& inst, NodeId v,
                                  ColorList list) {
  OwnedOldcInstance out = clone_instance(inst);
  out.instance.lists.set_node(static_cast<std::size_t>(v), list);
  return out;
}

ColoringResult solve_with(const OldcInstance& inst,
                          const std::vector<Color>& initial, std::int64_t q,
                          FuzzAlg alg, int p, double eps) {
  switch (alg) {
    case FuzzAlg::kTwoSweep:
      return two_sweep(inst, initial, q, p);
    case FuzzAlg::kFastTwoSweep:
      return fast_two_sweep(inst, initial, q, p, eps);
    case FuzzAlg::kCongest:
      return congest_oldc(inst, initial, q);
  }
  DCOLOR_CHECK_MSG(false, "unreachable");
  return {};
}

}  // namespace

const char* fuzz_alg_name(FuzzAlg alg) {
  switch (alg) {
    case FuzzAlg::kTwoSweep: return "two_sweep";
    case FuzzAlg::kFastTwoSweep: return "fast_two_sweep";
    case FuzzAlg::kCongest: return "congest_oldc";
  }
  return "unknown";
}

FuzzCase make_fuzz_case(std::uint64_t seed, std::int64_t idx, NodeId max_n) {
  DCOLOR_CHECK(max_n >= 3);
  Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(idx));
  FuzzCase c;
  const auto n = static_cast<NodeId>(
      2 + rng.below(static_cast<std::uint64_t>(max_n - 1)));
  switch (idx % 4) {
    case 0:
      c.owned.graph = gnp(n, 0.05 + 0.45 * rng.uniform(), rng);
      break;
    case 1:
      c.owned.graph = random_tree(n, rng);
      break;
    case 2:
      c.owned.graph =
          random_near_regular(n, 1 + static_cast<int>(rng.below(4)), rng);
      break;
    default:
      c.owned.graph = random_geometric(n, 0.15 + 0.35 * rng.uniform(), rng);
      break;
  }
  const bool symmetric = (idx % 5) == 4;
  c.alg = (idx % 8) == 3
              ? FuzzAlg::kCongest
              : ((idx % 2) != 0 ? FuzzAlg::kFastTwoSweep : FuzzAlg::kTwoSweep);
  c.p = 2;
  c.eps = 0.5;

  Orientation o = Orientation::by_id(c.owned.graph);
  const int beta =
      symmetric ? std::max(1, c.owned.graph.max_degree()) : o.beta();
  const int list_size = 4 + static_cast<int>(rng.below(5));  // 4..8
  const std::int64_t color_space =
      list_size +
      static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(list_size + 4)));
  // Uniform defect sized so the scheduled algorithm's premise holds for
  // EVERY node (β >= β_v): Theorem 1.2 needs Λ(d+1) >= 3√C·β; Eq. (2)
  // and Eq. (7) with p=2, ε=1/2 need d+1 > 3β/4.
  int defect;
  if (c.alg == FuzzAlg::kCongest) {
    defect = static_cast<int>(std::ceil(
                 3.0 * std::sqrt(static_cast<double>(color_space)) * beta /
                 list_size)) +
             static_cast<int>(rng.below(2));
  } else {
    defect = (3 * beta + 3) / 4 + static_cast<int>(rng.below(3));
  }
  c.owned.instance = random_uniform_oldc(c.owned.graph, std::move(o),
                                         color_space, list_size, defect, rng);
  c.owned.instance.symmetric = symmetric;
  return c;
}

bool fuzz_preconditions_hold(const OldcInstance& inst, FuzzAlg alg, int p,
                             double eps) {
  const Graph& g = *inst.graph;
  if (inst.color_space < 1) return false;
  const double sqrt_c = std::sqrt(static_cast<double>(inst.color_space));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PaletteView list = inst.lists[static_cast<std::size_t>(v)];
    if (inst.effective_outdegree(v) == 0) {
      if (list.empty()) return false;
      continue;
    }
    const auto beta_v = static_cast<double>(inst.beta_v(v));
    const auto weight = static_cast<double>(list.weight());
    switch (alg) {
      case FuzzAlg::kTwoSweep:
        if (weight * p <= std::max<double>(static_cast<double>(p) * p,
                                           static_cast<double>(list.size())) *
                              beta_v) {
          return false;
        }
        break;
      case FuzzAlg::kFastTwoSweep:
        if (weight <=
            (1.0 + eps) *
                std::max(static_cast<double>(p),
                         static_cast<double>(list.size()) / p) *
                beta_v) {
          return false;
        }
        break;
      case FuzzAlg::kCongest:
        if (weight < 3.0 * sqrt_c * beta_v) return false;
        break;
    }
  }
  return true;
}

std::string run_fuzz_battery(const OldcInstance& inst, FuzzAlg alg, int p,
                             double eps, const std::vector<int>& thread_counts,
                             std::int64_t* oracle_skips,
                             std::int64_t* oracle_solved) {
  const Graph& g = *inst.graph;
  const Orientation lin_o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, lin_o);

  struct RunOut {
    std::vector<Color> colors;
    std::vector<CheckViolation> violations;
  };
  std::vector<RunOut> runs;
  for (const int t : thread_counts) {
    Network::set_default_num_threads(t);
    InvariantChecker checker(InvariantChecker::Mode::kCollect);
    checker.install();
    RunOut r;
    try {
      r.colors =
          solve_with(inst, linial.colors, linial.num_colors, alg, p, eps)
              .colors;
    } catch (const CheckError& e) {
      checker.uninstall();
      Network::set_default_num_threads(0);
      return std::string(fuzz_alg_name(alg)) + " threw at threads=" +
             std::to_string(t) + ": " + e.what();
    }
    r.violations = checker.violations();
    checker.uninstall();
    runs.push_back(std::move(r));
  }
  Network::set_default_num_threads(0);

  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].colors != runs[0].colors) {
      return "thread divergence: colors differ between threads=" +
             std::to_string(thread_counts[0]) + " and threads=" +
             std::to_string(thread_counts[i]);
    }
    if (runs[i].violations != runs[0].violations) {
      return "thread divergence: checker violations differ between thread "
             "counts";
    }
  }
  if (!runs.empty() && !runs[0].violations.empty()) {
    const CheckViolation& v = runs[0].violations.front();
    return "checker violation [" + v.rule + "] node " +
           std::to_string(v.node) + ": " + v.detail;
  }
  if (!runs.empty() && !validate_oldc(inst, runs[0].colors)) {
    return "distributed result failed validation";
  }

  const OracleResult oracle = solve_oldc_oracle(inst);
  switch (oracle.status) {
    case OracleStatus::kSolved:
      if (oracle_solved != nullptr) ++*oracle_solved;
      break;
    case OracleStatus::kUnsolvable:
      if (oracle_guarantee_holds(inst)) {
        return "oracle mismatch: sequential oracle failed on a provably "
               "solvable instance (" +
               oracle.detail + ")";
      }
      if (oracle_skips != nullptr) ++*oracle_skips;
      break;
    case OracleStatus::kSkipped:
      if (oracle_skips != nullptr) ++*oracle_skips;
      break;
  }
  return {};
}

OwnedOldcInstance shrink_fuzz_case(const OldcInstance& inst, FuzzAlg alg,
                                   int p, double eps,
                                   const std::vector<int>& thread_counts,
                                   std::int64_t max_evals, std::ostream* log) {
  OwnedOldcInstance current = clone_instance(inst);
  std::int64_t evals = 0;
  const auto still_fails = [&](const OldcInstance& cand) {
    if (!fuzz_preconditions_hold(cand, alg, p, eps)) return false;
    ++evals;
    return !run_fuzz_battery(cand, alg, p, eps, thread_counts).empty();
  };

  bool improved = true;
  while (improved && evals < max_evals) {
    improved = false;
    // Nodes, highest id first: monotone renumbering keeps by_id
    // orientations meaningful and tends to peel leaves off generators.
    for (NodeId v = current.graph.num_nodes() - 1;
         v >= 0 && current.graph.num_nodes() > 1 && evals < max_evals; --v) {
      OwnedOldcInstance cand = clone_without_node(current.instance, v);
      if (still_fails(cand.instance)) {
        current = std::move(cand);
        improved = true;
      }
    }
    // Edges (removal at index i keeps indices < i stable).
    for (std::int64_t i = current.graph.num_edges() - 1;
         i >= 0 && evals < max_evals; --i) {
      OwnedOldcInstance cand = clone_without_edge(
          current.instance, static_cast<std::size_t>(i));
      if (still_fails(cand.instance)) {
        current = std::move(cand);
        improved = true;
      }
    }
    // Palette entries: drop colors, then shave defects.
    for (NodeId v = 0; v < current.graph.num_nodes() && evals < max_evals;
         ++v) {
      const auto vi = static_cast<std::size_t>(v);
      for (std::size_t i = current.instance.lists[vi].size();
           i-- > 0 && evals < max_evals;) {
        const PaletteView view = current.instance.lists[vi];
        std::vector<Color> colors(view.colors().begin(), view.colors().end());
        std::vector<int> defects(view.defects().begin(),
                                 view.defects().end());
        {
          std::vector<Color> cs = colors;
          std::vector<int> ds = defects;
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(i));
          ds.erase(ds.begin() + static_cast<std::ptrdiff_t>(i));
          OwnedOldcInstance cand = clone_with_list(
              current.instance, v, ColorList(std::move(cs), std::move(ds)));
          if (still_fails(cand.instance)) {
            current = std::move(cand);
            improved = true;
            continue;  // index i now points at the next entry to try
          }
        }
        if (defects[i] > 0) {
          std::vector<int> ds = defects;
          --ds[i];
          OwnedOldcInstance cand = clone_with_list(
              current.instance, v, ColorList(std::vector<Color>(colors), std::move(ds)));
          if (still_fails(cand.instance)) {
            current = std::move(cand);
            improved = true;
          }
        }
      }
    }
  }
  if (log != nullptr) {
    *log << "shrunk to " << current.graph.num_nodes() << " nodes / "
         << current.graph.num_edges() << " edges after " << evals
         << " battery evaluations\n";
  }
  return current;
}

FuzzReport fuzz_differential(const FuzzOptions& options, std::ostream* log) {
  DCOLOR_CHECK(options.cases >= 1);
  DCOLOR_CHECK(!options.thread_counts.empty());
  FuzzReport report;
  for (std::int64_t idx = 0; idx < options.cases; ++idx) {
    FuzzCase c = make_fuzz_case(options.seed, idx, options.max_n);
    std::string failure;
    if (!fuzz_preconditions_hold(c.owned.instance, c.alg, c.p, c.eps)) {
      failure = "generator produced an instance violating the premise of " +
                std::string(fuzz_alg_name(c.alg));
    } else {
      failure = run_fuzz_battery(c.owned.instance, c.alg, c.p, c.eps,
                                 options.thread_counts, &report.oracle_skips,
                                 &report.oracle_solved);
    }
    ++report.cases_run;
    if (!failure.empty()) {
      ++report.failures;
      if (log != nullptr) {
        *log << "case " << idx << " (" << fuzz_alg_name(c.alg) << ", n="
             << c.owned.graph.num_nodes() << "): FAIL — " << failure << "\n";
      }
      if (report.first_failure.empty()) {
        report.first_failure = "case " + std::to_string(idx) + " (" +
                               fuzz_alg_name(c.alg) + "): " + failure;
        OwnedOldcInstance repro =
            options.shrink
                ? shrink_fuzz_case(c.owned.instance, c.alg, c.p, c.eps,
                                   options.thread_counts,
                                   options.max_shrink_evals, log)
                : clone_instance(c.owned.instance);
        save_oldc(options.repro_path, repro.instance);
        report.repro_path = options.repro_path;
        if (log != nullptr) {
          *log << "repro written to " << options.repro_path << "\n";
        }
      }
    } else if (log != nullptr && (idx + 1) % 50 == 0) {
      *log << "  " << (idx + 1) << "/" << options.cases << " cases passed\n";
    }
  }
  return report;
}

}  // namespace dcolor
