#include "check/fuzz.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "check/invariant_checker.h"
#include "check/oracle.h"
#include "coloring/linial.h"
#include "core/run_context.h"
#include "core/solver_registry.h"
#include "graph/generators.h"
#include "serve/dynamic_instance.h"
#include "sim/engine.h"
#include "util/check.h"
#include "util/rng.h"

namespace dcolor {

namespace {

/// Deep copy: the instance plus an owned graph it points at.
OwnedOldcInstance clone_instance(const OldcInstance& inst) {
  OwnedOldcInstance out;
  out.graph = *inst.graph;
  out.instance = inst;
  out.instance.graph = &out.graph;
  return out;
}

Orientation rebuild_orientation(const Graph& g, const OldcInstance& source,
                                const std::vector<NodeId>& to_old) {
  if (source.symmetric) return Orientation::by_id(g);
  return Orientation::from_predicate(g, [&](NodeId a, NodeId b) {
    return source.orientation.is_out_edge(
        to_old[static_cast<std::size_t>(a)],
        to_old[static_cast<std::size_t>(b)]);
  });
}

/// Drops node `drop`, renumbering ids above it down by one (monotone, so
/// a by_id orientation keeps its meaning).
OwnedOldcInstance clone_without_node(const OldcInstance& inst, NodeId drop) {
  const Graph& g = *inst.graph;
  const NodeId n = g.num_nodes();
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& [u, v] : g.edge_list()) {
    if (u == drop || v == drop) continue;
    edges.emplace_back(u < drop ? u : u - 1, v < drop ? v : v - 1);
  }
  OwnedOldcInstance out;
  out.graph = Graph::from_edges(n - 1, std::move(edges));
  std::vector<NodeId> to_old(static_cast<std::size_t>(n - 1));
  for (NodeId v = 0; v + 1 < n; ++v) {
    to_old[static_cast<std::size_t>(v)] = v < drop ? v : v + 1;
  }
  out.instance.graph = &out.graph;
  out.instance.color_space = inst.color_space;
  out.instance.symmetric = inst.symmetric;
  out.instance.orientation = rebuild_orientation(out.graph, inst, to_old);
  for (NodeId v = 0; v + 1 < n; ++v) {
    out.instance.lists.push_back(
        inst.lists[static_cast<std::size_t>(to_old[static_cast<std::size_t>(v)])]);
  }
  return out;
}

/// Drops one edge (by index into the deterministic edge_list() order).
OwnedOldcInstance clone_without_edge(const OldcInstance& inst,
                                     std::size_t edge_idx) {
  const Graph& g = *inst.graph;
  std::vector<std::pair<NodeId, NodeId>> edges = g.edge_list();
  edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(edge_idx));
  OwnedOldcInstance out;
  out.graph = Graph::from_edges(g.num_nodes(), std::move(edges));
  std::vector<NodeId> to_old(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    to_old[static_cast<std::size_t>(v)] = v;
  }
  out.instance.graph = &out.graph;
  out.instance.color_space = inst.color_space;
  out.instance.symmetric = inst.symmetric;
  out.instance.orientation = rebuild_orientation(out.graph, inst, to_old);
  out.instance.lists = inst.lists;
  return out;
}

/// Replaces node v's palette.
OwnedOldcInstance clone_with_list(const OldcInstance& inst, NodeId v,
                                  ColorList list) {
  OwnedOldcInstance out = clone_instance(inst);
  out.instance.lists.set_node(static_cast<std::size_t>(v), list);
  return out;
}

}  // namespace

std::vector<const Solver*> fuzz_solver_axis() {
  std::vector<const Solver*> axis;
  for (const Solver* s : SolverRegistry::get().solvers()) {
    const SolverCapabilities caps = s->capabilities();
    if (caps.input == SolverCapabilities::Input::kOldc && caps.lists &&
        caps.defects) {
      axis.push_back(s);
    }
  }
  DCOLOR_CHECK_MSG(!axis.empty(), "no OLDC-capable solvers registered");
  return axis;
}

FuzzCase make_fuzz_case(std::uint64_t seed, std::int64_t idx, NodeId max_n,
                        const Solver* force_solver) {
  DCOLOR_CHECK(max_n >= 3);
  Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(idx));
  FuzzCase c;
  const auto n = static_cast<NodeId>(
      2 + rng.below(static_cast<std::uint64_t>(max_n - 1)));
  switch (idx % 4) {
    case 0:
      c.owned.graph = gnp(n, 0.05 + 0.45 * rng.uniform(), rng);
      break;
    case 1:
      c.owned.graph = random_tree(n, rng);
      break;
    case 2:
      c.owned.graph =
          random_near_regular(n, 1 + static_cast<int>(rng.below(4)), rng);
      break;
    default:
      c.owned.graph = random_geometric(n, 0.15 + 0.35 * rng.uniform(), rng);
      break;
  }

  // Schedule a solver from the registry axis: CONGEST-capable solvers own
  // the idx%8==3 slot (they need the steeper Theorem 1.2 defect sizing),
  // the rest rotate through the remaining slots.
  if (force_solver != nullptr) {
    c.solver = force_solver;
  } else {
    const std::vector<const Solver*> axis = fuzz_solver_axis();
    std::vector<const Solver*> congest;
    std::vector<const Solver*> others;
    for (const Solver* s : axis) {
      (s->capabilities().congest ? congest : others).push_back(s);
    }
    const auto u = static_cast<std::uint64_t>(idx);
    if ((idx % 8) == 3 && !congest.empty()) {
      c.solver = congest[(u / 8) % congest.size()];
    } else if (!others.empty()) {
      c.solver = others[u % others.size()];
    } else {
      c.solver = congest[u % congest.size()];
    }
  }
  const SolverCapabilities caps = c.solver->capabilities();
  const bool symmetric = (idx % 5) == 4 && caps.symmetric;

  Orientation o = Orientation::by_id(c.owned.graph);
  const int beta =
      symmetric ? std::max(1, c.owned.graph.max_degree()) : o.beta();
  const int list_size = 4 + static_cast<int>(rng.below(5));  // 4..8
  const std::int64_t color_space =
      list_size +
      static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(list_size + 4)));
  // Uniform defect sized so the scheduled solver's premise holds for
  // EVERY node (β >= β_v): Theorem 1.2 needs Λ(d+1) >= 3√C·β; Eq. (2)
  // and Eq. (7) with p=2, ε=1/2 need d+1 > 3β/4 (which also implies the
  // oracle guarantee weight > outdeg).
  int defect;
  if (caps.congest) {
    defect = static_cast<int>(std::ceil(
                 3.0 * std::sqrt(static_cast<double>(color_space)) * beta /
                 list_size)) +
             static_cast<int>(rng.below(2));
  } else {
    defect = (3 * beta + 3) / 4 + static_cast<int>(rng.below(3));
  }
  c.owned.instance = random_uniform_oldc(c.owned.graph, std::move(o),
                                         color_space, list_size, defect, rng);
  c.owned.instance.symmetric = symmetric;
  return c;
}

bool fuzz_preconditions_hold(const OldcInstance& inst, const Solver& solver,
                             const SolverParams& params) {
  SolveRequest req;
  req.oldc = &inst;
  req.params = params;
  return solver.premise_holds(req);
}

std::string run_fuzz_battery(const OldcInstance& inst, const Solver& solver,
                             const SolverParams& params,
                             const std::vector<int>& thread_counts,
                             std::int64_t* oracle_skips,
                             std::int64_t* oracle_solved) {
  const Graph& g = *inst.graph;
  const Orientation lin_o = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, lin_o);

  SolveRequest req;
  req.oldc = &inst;
  req.initial_coloring = &linial.colors;
  req.q = linial.num_colors;
  req.params = params;

  // The battery's run grid is engine × thread count: the forced-scalar
  // runs pin down thread determinism of the sparse path, the forced-
  // vector runs exercise the dense kernels (which silently fall back to
  // scalar rounds on solvers without one), and every run must match the
  // scalar/threads[0] baseline bit for bit — colors AND checker
  // violation lists. This is the continuous enforcement of the
  // engine-equivalence contract in sim/engine.h.
  struct RunOut {
    EngineKind engine;
    int threads;
    std::vector<Color> colors;
    std::vector<CheckViolation> violations;
  };
  std::vector<RunOut> runs;
  for (const EngineKind engine : {EngineKind::kScalar, EngineKind::kVector}) {
    for (const int t : thread_counts) {
      InvariantChecker checker(InvariantChecker::Mode::kCollect);
      RunContext ctx;
      ctx.num_threads = t;
      ctx.engine = engine;
      ctx.checker = &checker;
      RunOut r;
      r.engine = engine;
      r.threads = t;
      {
        const RunScope scope(ctx);
        try {
          r.colors = solver.solve(req, ctx).colors;
        } catch (const CheckError& e) {
          return std::string(solver.name()) + " threw at engine=" +
                 engine_name(engine) + " threads=" + std::to_string(t) +
                 ": " + e.what();
        }
      }
      r.violations = checker.violations();
      runs.push_back(std::move(r));
    }
  }

  const auto run_label = [](const RunOut& r) {
    return std::string(engine_name(r.engine)) + "/threads=" +
           std::to_string(r.threads);
  };
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].colors != runs[0].colors) {
      return "engine/thread divergence: colors differ between " +
             run_label(runs[0]) + " and " + run_label(runs[i]);
    }
    if (runs[i].violations != runs[0].violations) {
      return "engine/thread divergence: checker violations differ between " +
             run_label(runs[0]) + " and " + run_label(runs[i]);
    }
  }
  if (!runs.empty() && !runs[0].violations.empty()) {
    const CheckViolation& v = runs[0].violations.front();
    return "checker violation [" + v.rule + "] node " +
           std::to_string(v.node) + ": " + v.detail;
  }
  if (!runs.empty() && !validate_oldc(inst, runs[0].colors)) {
    return "distributed result failed validation";
  }

  const OracleResult oracle = solve_oldc_oracle(inst);
  switch (oracle.status) {
    case OracleStatus::kSolved:
      if (oracle_solved != nullptr) ++*oracle_solved;
      break;
    case OracleStatus::kUnsolvable:
      if (oracle_guarantee_holds(inst)) {
        return "oracle mismatch: sequential oracle failed on a provably "
               "solvable instance (" +
               oracle.detail + ")";
      }
      if (oracle_skips != nullptr) ++*oracle_skips;
      break;
    case OracleStatus::kSkipped:
      if (oracle_skips != nullptr) ++*oracle_skips;
      break;
  }
  return {};
}

OwnedOldcInstance shrink_fuzz_case(const OldcInstance& inst,
                                   const Solver& solver,
                                   const SolverParams& params,
                                   const std::vector<int>& thread_counts,
                                   std::int64_t max_evals, std::ostream* log) {
  OwnedOldcInstance current = clone_instance(inst);
  std::int64_t evals = 0;
  const auto still_fails = [&](const OldcInstance& cand) {
    if (!fuzz_preconditions_hold(cand, solver, params)) return false;
    ++evals;
    return !run_fuzz_battery(cand, solver, params, thread_counts).empty();
  };

  bool improved = true;
  while (improved && evals < max_evals) {
    improved = false;
    // Nodes, highest id first: monotone renumbering keeps by_id
    // orientations meaningful and tends to peel leaves off generators.
    for (NodeId v = current.graph.num_nodes() - 1;
         v >= 0 && current.graph.num_nodes() > 1 && evals < max_evals; --v) {
      OwnedOldcInstance cand = clone_without_node(current.instance, v);
      if (still_fails(cand.instance)) {
        current = std::move(cand);
        improved = true;
      }
    }
    // Edges (removal at index i keeps indices < i stable).
    for (std::int64_t i = current.graph.num_edges() - 1;
         i >= 0 && evals < max_evals; --i) {
      OwnedOldcInstance cand = clone_without_edge(
          current.instance, static_cast<std::size_t>(i));
      if (still_fails(cand.instance)) {
        current = std::move(cand);
        improved = true;
      }
    }
    // Palette entries: drop colors, then shave defects.
    for (NodeId v = 0; v < current.graph.num_nodes() && evals < max_evals;
         ++v) {
      const auto vi = static_cast<std::size_t>(v);
      for (std::size_t i = current.instance.lists[vi].size();
           i-- > 0 && evals < max_evals;) {
        const PaletteView view = current.instance.lists[vi];
        std::vector<Color> colors(view.colors().begin(), view.colors().end());
        std::vector<int> defects(view.defects().begin(),
                                 view.defects().end());
        {
          std::vector<Color> cs = colors;
          std::vector<int> ds = defects;
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(i));
          ds.erase(ds.begin() + static_cast<std::ptrdiff_t>(i));
          OwnedOldcInstance cand = clone_with_list(
              current.instance, v, ColorList(std::move(cs), std::move(ds)));
          if (still_fails(cand.instance)) {
            current = std::move(cand);
            improved = true;
            continue;  // index i now points at the next entry to try
          }
        }
        if (defects[i] > 0) {
          std::vector<int> ds = defects;
          --ds[i];
          OwnedOldcInstance cand = clone_with_list(
              current.instance, v, ColorList(std::vector<Color>(colors), std::move(ds)));
          if (still_fails(cand.instance)) {
            current = std::move(cand);
            improved = true;
          }
        }
      }
    }
  }
  if (log != nullptr) {
    *log << "shrunk to " << current.graph.num_nodes() << " nodes / "
         << current.graph.num_edges() << " edges after " << evals
         << " battery evaluations\n";
  }
  return current;
}

std::string run_recolor_battery(std::uint64_t seed, std::int64_t idx,
                                NodeId max_n) {
  Rng rng = Rng::stream(seed + 0xC01055u, static_cast<std::uint64_t>(idx));
  const NodeId floor_n = 8;
  const NodeId span = std::max<NodeId>(1, max_n - floor_n + 1);
  const auto n = static_cast<NodeId>(
      floor_n + rng.below(static_cast<std::uint64_t>(span)));
  Graph g;
  switch (idx % 3) {
    case 0:
      g = gnp_avg_degree(n, 4.0, rng);
      break;
    case 1:
      g = random_tree(n, rng);
      break;
    default:
      g = random_geometric(n, 0.3, rng);
      break;
  }
  serve::DynamicInstance inst(n, g.edge_list(), /*headroom=*/2,
                              seed + static_cast<std::uint64_t>(idx));
  const Solver& solver = SolverRegistry::get().require("deg_plus_one");

  // From-scratch solve on the CURRENT topology; `install` decides whether
  // the result becomes the resident coloring or is only a feasibility
  // probe (the differential oracle side).
  const auto full_solve = [&](bool install,
                              const std::string& what) -> std::string {
    const Graph mg = inst.materialize();
    ListDefectiveInstance ldi;
    ldi.graph = &mg;
    ldi.lists = inst.lists().borrow();
    ldi.color_space = inst.color_space();
    SolveRequest req;
    req.list_defective = &ldi;
    RunContext ctx;
    ctx.seed = seed + static_cast<std::uint64_t>(idx);
    ctx.num_threads = 1;
    SolveResult res;
    try {
      res = solver.solve(req, ctx);
    } catch (const CheckError& e) {
      return what + ": from-scratch solve threw: " + e.what();
    }
    if (!validate_list_defective(ldi, res.colors)) {
      return what + ": from-scratch coloring invalid";
    }
    if (install) inst.set_colors(std::move(res.colors));
    return "";
  };
  if (std::string err = full_solve(true, "initial"); !err.empty()) {
    return err;
  }

  const int steps = 10;
  for (int s = 0; s < steps; ++s) {
    const auto batch = 1 + static_cast<int>(rng.below(3));
    for (int b = 0; b < batch; ++b) {
      const std::uint64_t kind = rng.below(8);
      const auto pick = [&] {
        return static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(inst.num_nodes())));
      };
      if (kind < 5) {  // insertions dominate: they are what dirties
        const NodeId u = pick();
        const NodeId v = pick();
        if (u != v && inst.alive(u) && inst.alive(v)) inst.add_edge(u, v);
      } else if (kind == 5) {
        const NodeId u = pick();
        const auto nbrs = inst.neighbors(u);
        if (!nbrs.empty()) {
          inst.remove_edge(u, nbrs[rng.below(nbrs.size())]);
        }
      } else if (kind == 6) {
        inst.add_node();
      } else {
        const NodeId u = pick();
        if (inst.alive(u)) inst.remove_node(u);
      }
    }
    if (inst.has_dirty()) {
      RunContext ctx;
      ctx.seed = seed + static_cast<std::uint64_t>(idx * 1000 + s);
      ctx.num_threads = 1;
      try {
        inst.recolor(ctx);
      } catch (const CheckError&) {
        // Local repair impossible — the documented full-re-solve fallback.
        if (std::string err = full_solve(true, "fallback step " +
                                                   std::to_string(s));
            !err.empty()) {
          return err;
        }
      }
    }
    if (!inst.validate()) {
      return "step " + std::to_string(s) +
             ": repaired coloring not proper/in-list";
    }
    {
      InvariantChecker checker(InvariantChecker::Mode::kCollect);
      const Graph mg = inst.materialize();
      ListDefectiveInstance ldi;
      ldi.graph = &mg;
      ldi.lists = inst.lists().borrow();
      ldi.color_space = inst.color_space();
      checker.check_list_defective(ldi, inst.colors(), "recolor_battery");
      if (!checker.violations().empty()) {
        return "step " + std::to_string(s) + ": checker flagged " +
               checker.violations().front().rule + " — " +
               checker.violations().front().detail;
      }
    }
    if (std::string err =
            full_solve(false, "differential step " + std::to_string(s));
        !err.empty()) {
      return err;
    }
  }
  return "";
}

FuzzReport fuzz_differential(const FuzzOptions& options, std::ostream* log) {
  DCOLOR_CHECK(options.cases >= 1);
  DCOLOR_CHECK(!options.thread_counts.empty());
  const Solver* forced =
      options.solver.empty() ? nullptr
                             : &SolverRegistry::get().require(options.solver);
  FuzzReport report;
  for (std::int64_t idx = 0; idx < options.cases; ++idx) {
    FuzzCase c = make_fuzz_case(options.seed, idx, options.max_n, forced);
    const std::string solver_name(c.solver->name());
    std::string failure;
    if (!fuzz_preconditions_hold(c.owned.instance, *c.solver, c.params)) {
      failure = "generator produced an instance violating the premise of " +
                solver_name;
    } else {
      failure = run_fuzz_battery(c.owned.instance, *c.solver, c.params,
                                 options.thread_counts, &report.oracle_skips,
                                 &report.oracle_solved);
    }
    ++report.cases_run;
    if (!failure.empty()) {
      ++report.failures;
      if (log != nullptr) {
        *log << "case " << idx << " (" << solver_name << ", n="
             << c.owned.graph.num_nodes() << "): FAIL — " << failure << "\n";
      }
      if (report.first_failure.empty()) {
        report.first_failure = "case " + std::to_string(idx) + " (" +
                               solver_name + "): " + failure;
        OwnedOldcInstance repro =
            options.shrink
                ? shrink_fuzz_case(c.owned.instance, *c.solver, c.params,
                                   options.thread_counts,
                                   options.max_shrink_evals, log)
                : clone_instance(c.owned.instance);
        save_oldc(options.repro_path, repro.instance);
        report.repro_path = options.repro_path;
        if (log != nullptr) {
          *log << "repro written to " << options.repro_path << "\n";
        }
      }
    } else if (log != nullptr && (idx + 1) % 50 == 0) {
      *log << "  " << (idx + 1) << "/" << options.cases << " cases passed\n";
    }
    // The incremental-recolor axis rides along on every 4th case (only
    // when the forced-solver knob leaves the schedule alone; it has no
    // repro/shrink path — failures name the seeded case for replay).
    if (forced == nullptr && idx % 4 == 3) {
      const std::string rfail =
          run_recolor_battery(options.seed, idx, options.max_n);
      if (!rfail.empty()) {
        ++report.failures;
        if (log != nullptr) {
          *log << "recolor case " << idx << ": FAIL — " << rfail << "\n";
        }
        if (report.first_failure.empty()) {
          report.first_failure =
              "recolor case " + std::to_string(idx) + ": " + rfail;
        }
      }
    }
  }
  return report;
}

}  // namespace dcolor
