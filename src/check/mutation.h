// Mutation self-tests for the invariant checker.
//
// A checker that never fires is indistinguishable from a checker that
// works; each mutation seeds one known contract violation into an
// otherwise-valid execution and asserts the checker flags it (and that
// the unmutated twin passes). The kinds cover every rule the checker
// enforces, including the two failure modes the issue singles out: an
// off-by-one defect budget and a dropped message (simulated by running
// Two-Sweep against an orientation with one arc hidden, then checking
// the output against the true instance — exactly the wrong-conflict-count
// state a lost decision message produces).
#pragma once

#include <string>
#include <vector>

namespace dcolor {

enum class MutationKind {
  kOffListColor,    ///< final color outside L_v
  kUncoloredNode,   ///< node left at kNoColor
  kDefectOverflow,  ///< off-by-one defect: budget one below the real defect
  kImproperFinal,   ///< monochromatic edge in a "proper" output
  kSlackLie,        ///< Theorem 1.1 premise broken at one node
  kBandwidthLie,    ///< message wider than the Theorem 1.2 budget
  kDroppedMessage,  ///< lost decision message -> stale conflict counts
};

const char* mutation_name(MutationKind kind);
std::vector<MutationKind> all_mutation_kinds();

struct MutationOutcome {
  MutationKind kind;
  bool baseline_clean = false;  ///< unmutated twin raised no violation
  bool caught = false;          ///< mutated run raised >= 1 violation
  std::string rule;             ///< first rule that fired (when caught)
};

/// Runs one mutation scenario under a collect-mode checker.
MutationOutcome run_mutation(MutationKind kind);

struct SelfTestReport {
  std::vector<MutationOutcome> outcomes;
  bool all_caught() const;
};

/// Runs every mutation kind; the CLI's `fuzz --self-test` and the `check`
/// test label both assert all_caught().
SelfTestReport run_mutation_self_test();

}  // namespace dcolor
