// Registry adapter for the sequential OLDC oracle (check/oracle.h).
//
// Exposed as the `oracle_greedy` baseline: on acyclically oriented
// instances whose per-node weight exceeds the outdegree (a corollary of
// Eq. (2)) the reverse-topological greedy provably succeeds, so the fuzz
// harness can schedule it like any other solver in its registry-driven
// algorithm axis — its premise is implied by the harness's
// premise-by-construction instance sizing.
#include <utility>

#include "check/oracle.h"
#include "core/solver_registry.h"
#include "util/check.h"

namespace dcolor {
namespace {

class OracleGreedySolver final : public Solver {
 public:
  std::string_view name() const override { return "oracle_greedy"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = SolverCapabilities::Input::kOldc;
    c.oriented = true;
    c.symmetric = false;  // the symmetric greedy has no success guarantee
    c.lists = true;
    c.defects = true;
    c.distributed = false;
    return c;
  }

  bool premise_holds(const SolveRequest& req) const override {
    return req.oldc != nullptr && !req.oldc->symmetric &&
           oracle_guarantee_holds(*req.oldc);
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.oldc != nullptr,
                     "oracle_greedy needs an OLDC instance");
    OracleResult r = solve_oldc_oracle(*req.oldc);
    DCOLOR_CHECK_MSG(r.status == OracleStatus::kSolved,
                     "oracle_greedy could not solve the instance: "
                         << r.detail);
    SolveResult out;
    out.colors = std::move(r.colors);
    // Sequential horizon: one node decides per "round".
    out.metrics.rounds = req.oldc->graph->num_nodes();
    ctx.metrics += out.metrics;
    return out;
  }
};

}  // namespace

namespace detail {

void register_check_solvers(SolverRegistry& registry) {
  registry.add(std::make_unique<OracleGreedySolver>());
}

}  // namespace detail
}  // namespace dcolor
