// Differential fuzz harness: seeded random instances, distributed runs
// at several thread counts, sequential oracles, and instance shrinking.
//
// One case = one seeded instance drawn from one of the four parallelized
// graph generators (gnp, random_tree, random_near_regular,
// random_geometric) with parameters chosen so the scheduled solver's
// premise holds BY CONSTRUCTION — any failure is then a bug, not an
// infeasible input. The algorithm axis is the solver registry itself:
// every registered OLDC-capable solver (including the sequential
// `oracle_greedy` baseline) is scheduled, so new solvers join the fuzz
// rotation the moment they register. The battery run on each case:
//
//   1. solve with the scheduled solver over the full engine × thread
//      grid — forced-scalar and forced-vector (sim/engine.h) at every
//      requested thread count — each run inside its own RunScope with a
//      collect-mode InvariantChecker;
//   2. require bit-identical colors and identical (empty) checker
//      violation lists across every engine/thread combination (the
//      continuous enforcement of the engine-equivalence contract);
//   3. validate the output against the instance;
//   4. cross-check against the sequential oracle: on acyclic oriented
//      instances the oracle provably succeeds, so kUnsolvable there (or
//      an invalid oracle solution) is a mismatch; symmetric greedy dead
//      ends only count as skips.
//
// On failure the instance is shrunk — node deletion, edge deletion,
// palette color deletion, defect decrements — as long as the solver's
// premise survives and the battery still fails, then dumped via
// instance_io for replay with `dcolor --cmd=fuzz --replay=<file>`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver.h"
#include "io/instance_io.h"

namespace dcolor {

struct FuzzOptions {
  std::int64_t cases = 200;
  std::uint64_t seed = 1;
  NodeId max_n = 48;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::string repro_path = "fuzz_repro.txt";
  bool shrink = true;
  std::int64_t max_shrink_evals = 400;  ///< battery runs the shrinker may spend
  /// Restrict the algorithm axis to one registry solver (name or alias);
  /// empty = rotate over the whole OLDC-capable axis.
  std::string solver;
};

struct FuzzReport {
  std::int64_t cases_run = 0;
  std::int64_t failures = 0;
  std::int64_t oracle_skips = 0;   ///< symmetric greedy dead ends (benign)
  std::int64_t oracle_solved = 0;  ///< oracle cross-checks that ran to kSolved
  std::string first_failure;       ///< description of the first failing case
  std::string repro_path;          ///< written only when failures > 0
};

/// The registry solvers the case generator rotates over: every solver
/// taking OLDC input with list + defect support, sorted by name.
std::vector<const Solver*> fuzz_solver_axis();

/// Generates case `idx` of the seeded stream: instance + scheduled solver
/// + parameters. CONGEST-capable solvers take the idx%8==3 slot (their
/// Theorem 1.2 premise needs the steeper defect sizing); the rest of the
/// axis rotates through the remaining slots. `force_solver` (optional)
/// pins the schedule to one solver — the instance sizing then follows its
/// capabilities. Exposed for tests.
struct FuzzCase {
  OwnedOldcInstance owned;
  const Solver* solver = nullptr;
  SolverParams params;
};
FuzzCase make_fuzz_case(std::uint64_t seed, std::int64_t idx, NodeId max_n,
                        const Solver* force_solver = nullptr);

/// Runs the battery on one instance; returns "" on pass, otherwise a
/// failure description. `oracle_skips`/`oracle_solved` (optional) count
/// oracle outcomes.
std::string run_fuzz_battery(const OldcInstance& inst, const Solver& solver,
                             const SolverParams& params,
                             const std::vector<int>& thread_counts,
                             std::int64_t* oracle_skips = nullptr,
                             std::int64_t* oracle_solved = nullptr);

/// True iff the solver's entry premise holds for `inst` (delegates to
/// Solver::premise_holds); shrink candidates that break it are rejected.
bool fuzz_preconditions_hold(const OldcInstance& inst, const Solver& solver,
                             const SolverParams& params);

/// Shrinks a failing instance while the battery keeps failing; returns
/// the minimized instance (at worst the input itself).
OwnedOldcInstance shrink_fuzz_case(const OldcInstance& inst,
                                   const Solver& solver,
                                   const SolverParams& params,
                                   const std::vector<int>& thread_counts,
                                   std::int64_t max_evals, std::ostream* log);

/// Incremental-recolor differential axis: builds a seeded resident
/// instance (serve/dynamic_instance.h) over one of the fuzz generators,
/// solves it from scratch, then applies a seeded mutation sequence
/// (edge/node insertions and deletions) with incremental recoloring after
/// each batch. After every repair the coloring must be proper, in-list,
/// clean under a collect-mode InvariantChecker, and a from-scratch solve
/// of the mutated instance must also succeed (the differential oracle).
/// Returns "" on pass, else a failure description. Scheduled by
/// fuzz_differential on every 4th case.
std::string run_recolor_battery(std::uint64_t seed, std::int64_t idx,
                                NodeId max_n);

/// The full harness. `log` (optional) receives progress lines.
FuzzReport fuzz_differential(const FuzzOptions& options, std::ostream* log);

}  // namespace dcolor
