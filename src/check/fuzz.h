// Differential fuzz harness: seeded random instances, distributed runs
// at several thread counts, sequential oracles, and instance shrinking.
//
// One case = one seeded instance drawn from one of the four parallelized
// graph generators (gnp, random_tree, random_near_regular,
// random_geometric) with parameters chosen so the target algorithm's
// premise holds BY CONSTRUCTION — any failure is then a bug, not an
// infeasible input. The battery run on each case:
//
//   1. solve with the scheduled algorithm (two_sweep / fast_two_sweep /
//      congest_oldc) at every requested thread count, under a
//      collect-mode InvariantChecker;
//   2. require bit-identical colors and identical (empty) checker
//      violation lists across thread counts;
//   3. validate the output against the instance;
//   4. cross-check against the sequential oracle: on acyclic oriented
//      instances the oracle provably succeeds, so kUnsolvable there (or
//      an invalid oracle solution) is a mismatch; symmetric greedy dead
//      ends only count as skips.
//
// On failure the instance is shrunk — node deletion, edge deletion,
// palette color deletion, defect decrements — as long as the algorithm's
// premise survives and the battery still fails, then dumped via
// instance_io for replay with `dcolor --cmd=fuzz --replay=<file>`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.h"
#include "io/instance_io.h"

namespace dcolor {

enum class FuzzAlg { kTwoSweep, kFastTwoSweep, kCongest };

const char* fuzz_alg_name(FuzzAlg alg);

struct FuzzOptions {
  std::int64_t cases = 200;
  std::uint64_t seed = 1;
  NodeId max_n = 48;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::string repro_path = "fuzz_repro.txt";
  bool shrink = true;
  std::int64_t max_shrink_evals = 400;  ///< battery runs the shrinker may spend
};

struct FuzzReport {
  std::int64_t cases_run = 0;
  std::int64_t failures = 0;
  std::int64_t oracle_skips = 0;   ///< symmetric greedy dead ends (benign)
  std::int64_t oracle_solved = 0;  ///< oracle cross-checks that ran to kSolved
  std::string first_failure;       ///< description of the first failing case
  std::string repro_path;          ///< written only when failures > 0
};

/// Generates case `idx` of the seeded stream: instance + algorithm + the
/// solver parameters the battery will use. Exposed for tests.
struct FuzzCase {
  OwnedOldcInstance owned;
  FuzzAlg alg = FuzzAlg::kTwoSweep;
  int p = 2;
  double eps = 0.5;
};
FuzzCase make_fuzz_case(std::uint64_t seed, std::int64_t idx, NodeId max_n);

/// Runs the battery on one instance; returns "" on pass, otherwise a
/// failure description. `oracle_skips`/`oracle_solved` (optional) count
/// oracle outcomes.
std::string run_fuzz_battery(const OldcInstance& inst, FuzzAlg alg, int p,
                             double eps, const std::vector<int>& thread_counts,
                             std::int64_t* oracle_skips = nullptr,
                             std::int64_t* oracle_solved = nullptr);

/// True iff the algorithm's entry premise holds for `inst` (Eq. (7) for
/// fast_two_sweep, Eq. (2) for two_sweep, the Theorem 1.2 premise for
/// congest); shrink candidates that break it are rejected.
bool fuzz_preconditions_hold(const OldcInstance& inst, FuzzAlg alg, int p,
                             double eps);

/// Shrinks a failing instance while the battery keeps failing; returns
/// the minimized instance (at worst the input itself).
OwnedOldcInstance shrink_fuzz_case(const OldcInstance& inst, FuzzAlg alg,
                                   int p, double eps,
                                   const std::vector<int>& thread_counts,
                                   std::int64_t max_evals, std::ostream* log);

/// The full harness. `log` (optional) receives progress lines.
FuzzReport fuzz_differential(const FuzzOptions& options, std::ostream* log);

}  // namespace dcolor
