// Theorem 1.5 (Section 4.4): list arbdefective coloring — and thus
// (Δ+1)-coloring — on graphs of neighborhood independence θ.
//
// Proof structure reproduced faithfully:
//   T_A(1, C)  --Lemma A.1 (µ=2)-->  T_A(2, C)
//   T_A(2, C)  --Lemma 4.4 (µ=2σ)--> T_A(2σ, C)   [σ = 42θ(⌈logΔ⌉+1)]
//   T_A(2σ, C) --Lemma 4.6-->        T_A(2, ⌈√C⌉) (×O(logΔ), via Thm 1.4)
//   ... recurse on the color space ...
//   base case: the Theorem 1.3 machinery (Two-Sweep + color space
//   reduction + congest OLDC), which solves P_A(1, ·) directly.
//
// Branch selection mirrors the min{} in the theorem statement:
//   * kDeltaQuarter — one color-space halving step (i = 1 in the proof,
//     Eq. 20), then the Theorem 1.3 base: O(θ²·Δ^{1/4}·polylog) shape.
//   * kQuasiPolylog — recurse until the color space is tiny (i = loglog C,
//     Eq. 21): (θ·logΔ)^{O(loglogΔ)} shape. The constants (84θlogΔ)² per
//     Lemma 4.4 level are astronomically large at laptop scales — the
//     experiment suite measures exactly that crossover.
//   * kBaseOnly — no recursion; the Theorem 1.3 machinery directly.
#pragma once

#include "coloring/arbdefective.h"
#include "core/instance.h"

namespace dcolor {

struct ThetaColoringOptions {
  enum class Branch {
    kBaseOnly,      ///< Theorem 1.3 machinery, no θ-recursion
    kDeltaQuarter,  ///< one recursion level (Eq. 20)
    kQuasiPolylog,  ///< recurse until the color space is tiny (Eq. 21)
  };
  Branch branch = Branch::kDeltaQuarter;
  /// Partition engine for the base-case solver (see list_coloring.h).
  PartitionEngine engine = PartitionEngine::kBeg18Oracle;
  /// Color spaces at or below this size stop the recursion.
  std::int64_t base_color_threshold = 16;
};

/// Solves P_A(1, C) on a graph of neighborhood independence θ: any list
/// arbdefective instance with Σ(d_v(x)+1) > deg(v).
ArbdefectiveResult solve_theta_arbdefective(const ArbdefectiveInstance& inst,
                                            int theta,
                                            const ThetaColoringOptions&
                                                options = {});

/// (Δ+1)-coloring of a θ-bounded graph via solve_theta_arbdefective on the
/// all-lists-{0..Δ} zero-defect instance.
ColoringResult theta_delta_plus_one(const Graph& g, int theta,
                                    const ThetaColoringOptions& options = {});

}  // namespace dcolor
