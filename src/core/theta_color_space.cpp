#include "core/theta_color_space.h"

#include <algorithm>
#include <cmath>

#include "core/defective_from_arbdefective.h"
#include "core/sequential_coloring.h"
#include "util/check.h"
#include "util/math.h"

namespace dcolor {

ArbdefectiveResult color_space_reduction_pa(const ArbdefectiveInstance& inst,
                                            std::int64_t S, std::int64_t p,
                                            std::int64_t sigma,
                                            const DefectiveSolver& solve_pd,
                                            const ArbSolver& solve_inner) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DCOLOR_CHECK(1 <= sigma && sigma <= S);
  DCOLOR_CHECK(p >= 1 && p <= inst.color_space);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DCOLOR_CHECK_MSG(
        inst.lists[static_cast<std::size_t>(v)].weight() >
            S * g.degree(v),
        "Lemma 4.5 requires slack > " << S << "; fails at node " << v);
  }

  const std::int64_t part_width = ceil_div(inst.color_space, p);
  const std::int64_t num_parts = ceil_div(inst.color_space, part_width);

  ArbdefectiveResult result;
  result.colors.assign(n, kNoColor);

  // --- Part choice: a P_D(σ, num_parts) instance (Eq. 18 + Eq. 19) -------
  ListDefectiveInstance choice;
  choice.graph = &g;
  choice.color_space = num_parts;
  choice.lists.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const auto& lst = inst.lists[vi];
    std::vector<std::int64_t> part_weight(
        static_cast<std::size_t>(num_parts), 0);
    for (std::size_t i = 0; i < lst.size(); ++i) {
      part_weight[static_cast<std::size_t>(lst.color(i) / part_width)] +=
          lst.defect(i) + 1;
    }
    const std::int64_t total = lst.weight();
    std::vector<Color> parts;
    std::vector<int> defects;
    for (std::int64_t i = 0; i < num_parts; ++i) {
      const std::int64_t wi = part_weight[static_cast<std::size_t>(i)];
      if (wi == 0) continue;
      // d_{v,i} = ⌈σ·deg(v)·W_i / W⌉ (Eq. 19).
      const std::int64_t di =
          ceil_div(sigma * g.degree(v) * wi, std::max<std::int64_t>(1, total));
      parts.push_back(i);
      defects.push_back(static_cast<int>(di));
    }
    choice.lists.emplace_back(std::move(parts), std::move(defects));
  }

  const ColoringResult choice_result = solve_pd(choice);
  DCOLOR_CHECK_MSG(validate_list_defective(choice, choice_result.colors),
                   "part-choice defective coloring is invalid");
  result.metrics += choice_result.metrics;

  // --- Per-part sub-instances, solved in parallel -------------------------
  std::vector<std::vector<NodeId>> part_members(
      static_cast<std::size_t>(num_parts));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    part_members[static_cast<std::size_t>(
                     choice_result.colors[static_cast<std::size_t>(v)])]
        .push_back(v);
  }

  StampOrientationBuilder stamps(g.num_nodes());
  RoundMetrics parallel_metrics;
  bool any_part = false;
  for (std::int64_t part = 0; part < num_parts; ++part) {
    const auto& members = part_members[static_cast<std::size_t>(part)];
    if (members.empty()) continue;
    const auto hsub = g.induced_subgraph(members);
    const Graph& hg = hsub.graph;
    const std::int64_t lo = part * part_width;
    const std::int64_t hi = std::min(lo + part_width, inst.color_space);

    ArbdefectiveInstance sub;
    sub.graph = &hg;
    sub.color_space = hi - lo;
    sub.lists.reserve(members.size());
    for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
      const NodeId orig = hsub.to_orig[static_cast<std::size_t>(hv)];
      const auto& lst = inst.lists[static_cast<std::size_t>(orig)];
      std::vector<Color> cs;
      std::vector<int> ds;
      for (std::size_t i = 0; i < lst.size(); ++i) {
        if (lst.color(i) >= lo && lst.color(i) < hi) {
          cs.push_back(lst.color(i) - lo);  // remap into [0, ⌈C/p⌉)
          ds.push_back(lst.defect(i));
        }
      }
      sub.lists.emplace_back(std::move(cs), std::move(ds));
    }

    const ArbdefectiveResult part_result = solve_inner(sub);
    DCOLOR_CHECK_MSG(validate_arbdefective(sub, part_result),
                     "part " << part << " sub-instance result is invalid");
    if (!any_part) {
      parallel_metrics = part_result.metrics;
      any_part = true;
    } else {
      parallel_metrics.merge_parallel(part_result.metrics);
    }

    for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
      const auto hvi = static_cast<std::size_t>(hv);
      const NodeId orig = hsub.to_orig[hvi];
      result.colors[static_cast<std::size_t>(orig)] =
          part_result.colors[hvi] + lo;
      stamps.set_stamp(orig, 0);  // all parts run in the same phase
      for (NodeId hu : part_result.orientation.out_neighbors(hv)) {
        stamps.add_same_phase_arc(orig,
                                  hsub.to_orig[static_cast<std::size_t>(hu)]);
      }
    }
  }
  result.metrics += parallel_metrics;

  // Cross-part edges can never be monochromatic (disjoint sub-spaces);
  // orient them toward the smaller id to complete the orientation.
  for (const auto& [u, v] : g.edge_list()) {
    if (choice_result.colors[static_cast<std::size_t>(u)] !=
        choice_result.colors[static_cast<std::size_t>(v)]) {
      stamps.add_same_phase_arc(std::max(u, v), std::min(u, v));
    }
  }
  result.orientation = stamps.build(g);
  DCOLOR_CHECK(all_colored(result.colors));
  return result;
}

std::int64_t lemma46_slack_requirement(int delta_paper, int theta) {
  return 2 * theorem14_slack_requirement(delta_paper, theta, 2);
}

ArbdefectiveResult theta_color_space_step(const ArbdefectiveInstance& inst,
                                          int theta,
                                          const ArbSolver& solve_pa2) {
  const Graph& g = *inst.graph;
  const std::int64_t sigma = theorem14_slack_requirement(g.delta_paper(),
                                                         theta, 2);
  const std::int64_t S = 2 * sigma;
  const auto p = static_cast<std::int64_t>(
      ceil_sqrt(static_cast<std::uint64_t>(inst.color_space)));

  const DefectiveSolver solve_pd = [&](const ListDefectiveInstance& pd) {
    // Theorem 1.4 turns the P_D(σ, p) part choice into O(logΔ) instances
    // of P_A(2, p), handled by the same slack-2 solver.
    return defective_from_arbdefective(pd, theta, 2, solve_pa2);
  };
  return color_space_reduction_pa(inst, S, p, sigma, solve_pd, solve_pa2);
}

}  // namespace dcolor
