// Shared infrastructure for the sequential class-coloring drivers
// (Lemma 4.4, Lemma A.1, Theorem 1.4, and the Theorem 1.3 machinery):
// residual list trimming and stamp-based output orientations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/instance.h"
#include "graph/graph.h"
#include "graph/orientation.h"

namespace dcolor {

/// A node's trimmed list: colors whose residual defect d_v(x) − a_v(x) is
/// still non-negative, kept sorted by color. a_v(x) counts already-colored
/// neighbors of color x; edges toward them are oriented toward them, so
/// each consumes one unit of the color's defect budget.
struct TrimmedList {
  std::vector<Color> colors;
  std::vector<int> residual;

  static TrimmedList from(PaletteView list) {
    const auto cs = list.colors();
    const auto ds = list.defects();
    return {{cs.begin(), cs.end()}, {ds.begin(), ds.end()}};
  }

  /// A neighbor was colored with c: residual drops by one, the color is
  /// evicted when it goes negative. Total weight drops by exactly one when
  /// c is present and is unchanged otherwise — the bookkeeping behind every
  /// slack-preservation argument in Section 4.
  void on_neighbor_colored(Color c) {
    const auto it = std::lower_bound(colors.begin(), colors.end(), c);
    if (it == colors.end() || *it != c) return;
    const auto i = static_cast<std::size_t>(it - colors.begin());
    if (residual[i] == 0) {
      colors.erase(it);
      residual.erase(residual.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      --residual[i];
    }
  }

  std::int64_t weight() const {
    std::int64_t w = 0;
    for (int r : residual) w += r + 1;
    return w;
  }

  ColorList to_color_list() const { return {colors, residual}; }
};

/// Assembles the output orientation of a multi-phase coloring: every edge
/// points toward the endpoint colored in an earlier phase ("already
/// colored nodes never gain defect"); edges whose endpoints were colored
/// in the same phase follow that phase's inner-solver orientation, which
/// the driver records arc by arc.
class StampOrientationBuilder {
 public:
  explicit StampOrientationBuilder(NodeId n)
      : stamp_(static_cast<std::size_t>(n), -1) {}

  /// Marks node v as colored in phase `s` (phases strictly increase).
  void set_stamp(NodeId v, std::int64_t s) {
    stamp_[static_cast<std::size_t>(v)] = s;
  }

  std::int64_t stamp(NodeId v) const {
    return stamp_[static_cast<std::size_t>(v)];
  }

  /// Records a same-phase arc from -> to (original node ids).
  void add_same_phase_arc(NodeId from, NodeId to) {
    arcs_.insert(key(from, to));
  }

  /// Builds the orientation over g. Every node must be stamped; every
  /// same-stamp edge must have a recorded arc.
  Orientation build(const Graph& g) const {
    return Orientation::from_predicate(g, [this](NodeId a, NodeId b) {
      const auto sa = stamp_[static_cast<std::size_t>(a)];
      const auto sb = stamp_[static_cast<std::size_t>(b)];
      if (sa != sb) return sb < sa;  // toward the earlier-colored endpoint
      return arcs_.contains(key(a, b));
    });
  }

 private:
  static std::uint64_t key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  std::vector<std::int64_t> stamp_;
  std::unordered_set<std::uint64_t> arcs_;
};

}  // namespace dcolor
