// (2Δ−1)-edge coloring via line graphs (application of Theorem 1.5).
//
// A proper vertex coloring of the line graph L(G) is a proper edge
// coloring of G. L(G) has neighborhood independence θ <= 2 (θ <= r for
// line graphs of rank-r hypergraphs), and an edge {u,v} has line-graph
// degree deg(u)+deg(v)−2 <= 2Δ−2, so the palette {0,…,2Δ−2} gives every
// line-node a (deg+1)-list. The CONGEST simulation of a line-graph
// algorithm on G itself costs O(1) overhead per round (each endpoint
// simulates its incident edges), which our metrics inherit unchanged.
#pragma once

#include "core/theta_coloring.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace dcolor {

struct EdgeColoringResult {
  /// Colors aligned with Graph::edge_list() order (or Hypergraph::edges()).
  std::vector<Color> edge_colors;
  std::int64_t num_colors = 0;
  RoundMetrics metrics;
};

/// Colors the edges of g with at most 2Δ−1 colors such that edges sharing
/// an endpoint differ.
EdgeColoringResult edge_coloring_two_delta_minus_one(
    const Graph& g, const ThetaColoringOptions& options = {});

/// Colors the hyperedges of h (rank r) such that intersecting hyperedges
/// differ, with Δ_L+1 <= r·(Δ_H−1)+1 colors, where Δ_L is the line graph
/// degree and Δ_H the maximum vertex degree of h.
EdgeColoringResult hypergraph_edge_coloring(
    const Hypergraph& h, const ThetaColoringOptions& options = {});

/// True iff no two intersecting (hyper)edges share a color and all edges
/// are colored.
bool validate_edge_coloring(const Graph& g,
                            const std::vector<Color>& edge_colors);
bool validate_edge_coloring(const Hypergraph& h,
                            const std::vector<Color>& edge_colors);

}  // namespace dcolor
