#include "core/two_sweep.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {

namespace {

// Message type tags (2 bits on the wire).
constexpr std::int64_t kMsgInitial = 0;
constexpr std::int64_t kMsgPhase1Set = 1;
constexpr std::int64_t kMsgDecision = 2;

}  // namespace

TwoSweepProgram::TwoSweepProgram(const OldcInstance& inst,
                                 const std::vector<Color>& initial_coloring,
                                 std::int64_t q, int p, TwoSweepOptions options)
    : inst_(&inst),
      initial_(&initial_coloring),
      q_(q),
      p_(p),
      options_(options) {
  DCOLOR_CHECK(p >= 1);
  DCOLOR_CHECK(q >= 1);
  const auto n = static_cast<std::size_t>(inst.graph->num_nodes());
  DCOLOR_CHECK(initial_coloring.size() == n);
  s_sets_.resize(n);
  k_.resize(n);
  heard_from_.assign(n, 0);
  n_greater_.assign(n, 0);
  r_.resize(n);
  final_color_.assign(n, kNoColor);
  for (std::size_t v = 0; v < n; ++v) {
    k_[v].assign(inst.lists[v].size(), 0);
  }
}

int TwoSweepProgram::color_bits() const noexcept {
  return std::max(1, ceil_log2(static_cast<std::uint64_t>(
                          std::max<std::int64_t>(2, inst_->color_space))));
}

void TwoSweepProgram::init(NodeId v, Mailbox& mail) {
  // Nodes forward their initial color first (Theorem 1.1's message
  // pattern); the sweep schedule itself is driven by the global round
  // counter, which every node shares in the synchronous model.
  Message m;
  m.push(kMsgInitial, 2);
  m.push((*initial_)[static_cast<std::size_t>(v)],
         std::max(1, ceil_log2(static_cast<std::uint64_t>(
                         std::max<std::int64_t>(2, q_)))));
  broadcast(*inst_->graph, mail, m);
}

void TwoSweepProgram::step(NodeId v, int round, Mailbox& mail) {
  const auto vi = static_cast<std::size_t>(v);
  const auto& list = inst_->lists[vi];

  // Ingest this round's inbox: Phase-I sets and Phase-II decisions from
  // OUT-neighbors update k_v and r_v. k_v(x) counts only out-neighbors in
  // N_<(v): because Phase I ascends through the color classes, exactly the
  // sets of smaller-colored out-neighbors arrive before v's own Phase-I
  // turn; set messages arriving after that come from N_>(v) and must be
  // ignored (they would corrupt the Phase-II margins).
  const bool before_my_phase1_turn = s_sets_[vi].empty();
  for (const Envelope& env : mail.inbox()) {
    if (env.message.empty()) continue;
    const std::int64_t type = env.message.field(0);
    if (!inst_->is_out(v, env.from)) continue;
    if (type == kMsgPhase1Set && before_my_phase1_turn) {
      ++heard_from_[vi];
      for (std::size_t i = 1; i < env.message.num_fields(); ++i) {
        const Color x = env.message.field(i);
        const auto it = std::lower_bound(list.colors().begin(),
                                         list.colors().end(), x);
        ++compute_ops_;
        if (it != list.colors().end() && *it == x) {
          ++k_[vi][static_cast<std::size_t>(it - list.colors().begin())];
        }
      }
    } else if (type == kMsgDecision) {
      const Color x = env.message.field(1);
      const auto& s = s_sets_[vi];
      for (std::size_t i = 0; i < s.size(); ++i) {
        ++compute_ops_;
        if (s[i] == x) {
          ++r_[vi][i];
          break;
        }
      }
    }
  }

  const Color my_color = (*initial_)[vi];

  // Phase I turn: round == my_color + 1 (colors ascend 0..q-1).
  if (round == static_cast<int>(my_color) + 1) {
    n_greater_[vi] = inst_->beta_v(v) - heard_from_[vi];
    std::vector<std::size_t> order(list.size());
    std::iota(order.begin(), order.end(), 0);
    if (options_.selection == TwoSweepSelection::kRandomSubset) {
      // Ablation: an arbitrary p-subset instead of the best one.
      Rng rng(options_.selection_seed ^
              (static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ULL));
      rng.shuffle(order);
    } else {
      // Select S_v: the min(p, |L_v|) colors maximizing d_v(x) - k_v(x)
      // (best possible choice per the Remark after Lemma 3.1).
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const int ma = list.defect(a) - k_[vi][a];
                  const int mb = list.defect(b) - k_[vi][b];
                  if (ma != mb) return ma > mb;
                  return a < b;
                });
    }
    compute_ops_ += static_cast<std::int64_t>(list.size()) *
                    std::max(1, ceil_log2(std::max<std::uint64_t>(
                                    2, list.size())));
    const std::size_t take =
        options_.selection == TwoSweepSelection::kOneSweep
            ? std::min<std::size_t>(1, list.size())
            : std::min<std::size_t>(static_cast<std::size_t>(p_),
                                    list.size());
    auto& s = s_sets_[vi];
    s.reserve(take);
    for (std::size_t i = 0; i < take; ++i) s.push_back(list.color(order[i]));
    std::sort(s.begin(), s.end());
    r_[vi].assign(s.size(), 0);

    Message m;
    m.push(kMsgPhase1Set, 2);
    for (Color x : s) m.push(x, color_bits());
    broadcast(*inst_->graph, mail, m);

    if (options_.selection == TwoSweepSelection::kOneSweep) {
      // Ablation: commit immediately — no second sweep. Out-edges toward
      // later nodes are uncontrolled; the bench measures the damage.
      DCOLOR_CHECK_MSG(!s.empty(), "empty list at node " << v);
      final_color_[vi] = s.front();
    }
    return;
  }
  if (options_.selection == TwoSweepSelection::kOneSweep) return;

  // Phase II turn: round == q + (q - my_color) (colors descend q-1..0).
  if (round == static_cast<int>(2 * q_ - my_color)) {
    const auto& s = s_sets_[vi];
    DCOLOR_CHECK_MSG(!s.empty(), "node " << v << " has an empty Phase-I set");
    // Pick the color with the largest remaining margin d - k - r; Lemma 3.2
    // guarantees some margin is >= 0 whenever Eq. (2) held.
    std::int64_t best_margin = -1;
    Color best = kNoColor;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const auto d = list.defect_of(s[i]);
      const auto it =
          std::lower_bound(list.colors().begin(), list.colors().end(), s[i]);
      const auto li = static_cast<std::size_t>(it - list.colors().begin());
      const std::int64_t margin =
          static_cast<std::int64_t>(*d) - k_[vi][li] - r_[vi][i];
      ++compute_ops_;
      if (margin > best_margin) {
        best_margin = margin;
        best = s[i];
      }
    }
    DCOLOR_CHECK_MSG(best_margin >= 0,
                     "Phase II found no feasible color at node "
                         << v << " — Eq. (2) precondition violated?");
    final_color_[vi] = best;

    Message m;
    m.push(kMsgDecision, 2);
    m.push(best, color_bits());
    broadcast(*inst_->graph, mail, m);
    return;
  }
}

bool TwoSweepProgram::done(NodeId v) const {
  return final_color_[static_cast<std::size_t>(v)] != kNoColor;
}

ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p, bool skip_precondition_check) {
  TwoSweepOptions options;
  options.skip_precondition_check = skip_precondition_check;
  return two_sweep_ex(inst, initial_coloring, q, p, options);
}

ColoringResult two_sweep_ex(const OldcInstance& inst,
                            const std::vector<Color>& initial_coloring,
                            std::int64_t q, int p,
                            const TwoSweepOptions& options) {
  const bool skip_precondition_check = options.skip_precondition_check;
  const Graph& g = *inst.graph;
  DCOLOR_CHECK(static_cast<NodeId>(initial_coloring.size()) == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = initial_coloring[static_cast<std::size_t>(v)];
    DCOLOR_CHECK_MSG(c >= 0 && c < q, "initial color out of range at " << v);
    for (NodeId u : g.neighbors(v)) {
      DCOLOR_CHECK_MSG(initial_coloring[static_cast<std::size_t>(u)] != c,
                       "initial q-coloring is not proper on edge ("
                           << v << "," << u << ")");
    }
  }
  if (!skip_precondition_check) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& lst = inst.lists[static_cast<std::size_t>(v)];
      // A node with no out-neighbors succeeds with any non-empty list
      // (k_v == r_v == 0 for every color), so Eq. (2) — which uses
      // β_v = max(1, outdeg) — is only enforced when outdeg >= 1. This is
      // a strictly weaker requirement than the paper's and keeps tight
      // recursive instances (color space reduction) feasible.
      if (inst.effective_outdegree(v) == 0) {
        DCOLOR_CHECK_MSG(!lst.empty(), "empty list at sink node " << v);
        continue;
      }
      // Eq. (2), multiplied through by p to stay in integers:
      //   weight * p > max{p², |L_v|} * β_v.
      const std::int64_t lhs = lst.weight() * p;
      const std::int64_t rhs =
          std::max<std::int64_t>(static_cast<std::int64_t>(p) * p,
                                 static_cast<std::int64_t>(lst.size())) *
          inst.beta_v(v);
      DCOLOR_CHECK_MSG(lhs > rhs, "Eq. (2) fails at node "
                                      << v << ": weight=" << lst.weight()
                                      << " p=" << p << " beta=" <<
                                      inst.beta_v(v));
    }
  }

  TwoSweepProgram program(inst, initial_coloring, q, p, options);
  Network net(g);
  ColoringResult result;
  result.metrics = net.run(program, 2 * q + 4);
  result.metrics.local_compute_ops = program.compute_ops();
  result.colors = program.final_colors();
  return result;
}

}  // namespace dcolor
