#include "core/two_sweep.h"

#include <algorithm>
#include <numeric>

#include "check/invariant_checker.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/simd.h"

namespace dcolor {

namespace {

// Message type tags (2 bits on the wire).
constexpr std::int64_t kMsgInitial = 0;
constexpr std::int64_t kMsgPhase1Set = 1;
constexpr std::int64_t kMsgDecision = 2;

}  // namespace

TwoSweepProgram::TwoSweepProgram(const OldcInstance& inst,
                                 const std::vector<Color>& initial_coloring,
                                 std::int64_t q, int p, TwoSweepOptions options)
    : inst_(&inst),
      initial_(&initial_coloring),
      q_(q),
      p_(p),
      options_(options) {
  DCOLOR_CHECK(p >= 1);
  DCOLOR_CHECK(q >= 1);
  const auto n = static_cast<std::size_t>(inst.graph->num_nodes());
  DCOLOR_CHECK(initial_coloring.size() == n);
  node_.assign(n, {});
  list_view_.resize(n);
  k_off_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    list_view_[v] = inst.lists[v];
    k_off_[v + 1] = k_off_[v] + static_cast<std::int64_t>(list_view_[v].size());
  }
  k_flat_.assign(static_cast<std::size_t>(k_off_[n]), 0);
  sr_flat_.assign(n * 2 * static_cast<std::size_t>(p), 0);
}

int TwoSweepProgram::color_bits() const noexcept {
  return std::max(1, ceil_log2(static_cast<std::uint64_t>(
                          std::max<std::int64_t>(2, inst_->color_space))));
}

void TwoSweepProgram::init(NodeId v, Mailbox& mail) {
  // Nodes forward their initial color first (Theorem 1.1's message
  // pattern); the sweep schedule itself is driven by the global round
  // counter, which every node shares in the synchronous model.
  broadcast(*inst_->graph, mail,
            rebuild_message(v, static_cast<std::int8_t>(kMsgInitial)));
}

// Single source of truth for the wire format: init/step, the dense
// kernel's spill, and absorb's shape validation all agree by
// construction because every Message goes through here.
Message TwoSweepProgram::rebuild_message(NodeId v, std::int8_t type) const {
  const auto vi = static_cast<std::size_t>(v);
  Message m;
  if (type == kMsgInitial) {
    m.push(kMsgInitial, 2);
    m.push((*initial_)[vi], std::max(1, ceil_log2(static_cast<std::uint64_t>(
                                            std::max<std::int64_t>(2, q_)))));
  } else if (type == kMsgPhase1Set) {
    m.push(kMsgPhase1Set, 2);
    const std::int64_t* const sv =
        sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_);
    const std::int32_t count = node_[vi].s_count;
    for (std::int32_t i = 0; i < count; ++i) m.push(sv[i], color_bits());
  } else {
    m.push(kMsgDecision, 2);
    m.push(node_[vi].final_color, color_bits());
  }
  return m;
}

int TwoSweepProgram::message_bits(NodeId v, std::int8_t type) const noexcept {
  if (type == kMsgInitial) {
    return 2 + std::max(1, ceil_log2(static_cast<std::uint64_t>(
                               std::max<std::int64_t>(2, q_))));
  }
  if (type == kMsgPhase1Set) {
    return 2 + node_[static_cast<std::size_t>(v)].s_count * color_bits();
  }
  return 2 + color_bits();
}

void TwoSweepProgram::step(NodeId v, int round, Mailbox& mail) {
  const auto vi = static_cast<std::size_t>(v);
  const PaletteView& list = list_view_[vi];
  NodeState& st = node_[vi];
  int* const kv = k_flat_.data() + k_off_[vi];
  std::int64_t* const sv =
      sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_);
  std::int64_t* const rv = sv + p_;
  const std::span<const Color> list_colors = list.colors();
  std::int64_t ops = 0;

  // Ingest this round's inbox: Phase-I sets and Phase-II decisions from
  // OUT-neighbors update k_v and r_v. k_v(x) counts only out-neighbors in
  // N_<(v): because Phase I ascends through the color classes, exactly the
  // sets of smaller-colored out-neighbors arrive before v's own Phase-I
  // turn; set messages arriving after that come from N_>(v) and must be
  // ignored (they would corrupt the Phase-II margins).
  const bool before_my_phase1_turn = st.s_count == 0;
  for (const Envelope& env : mail.inbox()) {
    if (env.message.empty()) continue;
    const std::int64_t type = env.message.field(0);
    if (type == kMsgInitial) continue;  // before the adjacency lookup: the
                                        // initial-color flood is ignored
    if (!inst_->is_out(v, env.from)) continue;
    if (type == kMsgPhase1Set && before_my_phase1_turn) {
      ++st.heard_from;
      for (std::size_t i = 1; i < env.message.num_fields(); ++i) {
        const Color x = env.message.field(i);
        const auto it =
            std::lower_bound(list_colors.begin(), list_colors.end(), x);
        ++ops;
        if (it != list_colors.end() && *it == x) {
          ++kv[it - list_colors.begin()];
        }
      }
    } else if (type == kMsgDecision) {
      const Color x = env.message.field(1);
      for (std::int32_t i = 0; i < st.s_count; ++i) {
        ++ops;
        if (sv[i] == x) {
          ++rv[i];
          break;
        }
      }
    }
  }
  if (ops != 0) st.ops += ops;

  const Color my_color = (*initial_)[vi];

  // Phase I turn: round == my_color + 1 (colors ascend 0..q-1).
  if (round == static_cast<int>(my_color) + 1) {
    phase1_turn(v);
    broadcast(*inst_->graph, mail,
              rebuild_message(v, static_cast<std::int8_t>(kMsgPhase1Set)));
    return;
  }
  if (options_.selection == TwoSweepSelection::kOneSweep) return;

  // Phase II turn: round == q + (q - my_color) (colors descend q-1..0).
  if (round == static_cast<int>(2 * q_ - my_color)) {
    phase2_turn(v);
    broadcast(*inst_->graph, mail,
              rebuild_message(v, static_cast<std::int8_t>(kMsgDecision)));
    return;
  }
}

std::size_t TwoSweepProgram::phase1_turn(NodeId v) {
  const auto vi = static_cast<std::size_t>(v);
  const PaletteView& list = list_view_[vi];
  NodeState& st = node_[vi];
  int* const kv = k_flat_.data() + k_off_[vi];
  std::int64_t* const sv =
      sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_);
  std::int64_t* const rv = sv + p_;

  st.n_greater = inst_->beta_v(v) - st.heard_from;
  const std::size_t take =
      options_.selection == TwoSweepSelection::kOneSweep
          ? std::min<std::size_t>(1, list.size())
          : std::min<std::size_t>(static_cast<std::size_t>(p_), list.size());
  // Thread-local scratch: one buffer per pool thread instead of a heap
  // allocation per phase-I turn.
  static thread_local std::vector<std::size_t> order;
  order.resize(list.size());
  std::iota(order.begin(), order.end(), 0);
  if (options_.selection == TwoSweepSelection::kRandomSubset) {
    // Ablation: an arbitrary p-subset instead of the best one.
    Rng rng(options_.selection_seed ^
            (static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ULL));
    rng.shuffle(order);
  } else {
    // Select S_v: the min(p, |L_v|) colors maximizing d_v(x) - k_v(x)
    // (best possible choice per the Remark after Lemma 3.1). Only the
    // top `take` entries are consumed, and the comparator is a total
    // order, so a partial sort selects the identical subset.
    std::partial_sort(order.begin(), order.begin() + take, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        const int ma = list.defect(a) - kv[a];
                        const int mb = list.defect(b) - kv[b];
                        if (ma != mb) return ma > mb;
                        return a < b;
                      });
  }
  st.ops += static_cast<std::int64_t>(list.size()) *
            std::max(1, ceil_log2(std::max<std::uint64_t>(2, list.size())));
  for (std::size_t i = 0; i < take; ++i) {
    sv[i] = list.color(order[i]);
    rv[i] = 0;
  }
  std::sort(sv, sv + take);
  st.s_count = static_cast<std::int32_t>(take);

  if (options_.selection == TwoSweepSelection::kOneSweep) {
    // Ablation: commit immediately — no second sweep. Out-edges toward
    // later nodes are uncontrolled; the bench measures the damage.
    DCOLOR_CHECK_MSG(take > 0, "empty list at node " << v);
    st.final_color = sv[0];
  }
  return take;
}

void TwoSweepProgram::phase2_turn(NodeId v) {
  const auto vi = static_cast<std::size_t>(v);
  const PaletteView& list = list_view_[vi];
  NodeState& st = node_[vi];
  int* const kv = k_flat_.data() + k_off_[vi];
  std::int64_t* const sv =
      sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_);
  std::int64_t* const rv = sv + p_;
  const std::span<const Color> list_colors = list.colors();

  DCOLOR_CHECK_MSG(st.s_count > 0,
                   "node " << v << " has an empty Phase-I set");
  // Pick the color with the largest remaining margin d - k - r; Lemma 3.2
  // guarantees some margin is >= 0 whenever Eq. (2) held.
  std::int64_t best_margin = -1;
  Color best = kNoColor;
  for (std::int32_t i = 0; i < st.s_count; ++i) {
    const auto d = list.defect_of(sv[i]);
    const auto it =
        std::lower_bound(list_colors.begin(), list_colors.end(), sv[i]);
    const std::int64_t margin =
        static_cast<std::int64_t>(*d) - kv[it - list_colors.begin()] - rv[i];
    ++st.ops;
    if (margin > best_margin) {
      best_margin = margin;
      best = sv[i];
    }
  }
  DCOLOR_CHECK_MSG(best_margin >= 0,
                   "Phase II found no feasible color at node "
                       << v << " — Eq. (2) precondition violated?");
  st.final_color = best;
}

bool TwoSweepProgram::done(NodeId v) const {
  return node_[static_cast<std::size_t>(v)].final_color != kNoColor;
}

std::vector<Color> TwoSweepProgram::final_colors() const {
  std::vector<Color> out(node_.size());
  for (std::size_t i = 0; i < node_.size(); ++i) out[i] = node_[i].final_color;
  return out;
}

std::int64_t TwoSweepProgram::next_active_round(NodeId v,
                                                std::int64_t after_round) const {
  const Color my_color = (*initial_)[static_cast<std::size_t>(v)];
  const std::int64_t phase1 = static_cast<std::int64_t>(my_color) + 1;
  if (after_round < phase1) return phase1;
  if (options_.selection == TwoSweepSelection::kOneSweep) return kNoWakeup;
  const std::int64_t phase2 = 2 * q_ - static_cast<std::int64_t>(my_color);
  if (after_round < phase2) return phase2;
  return kNoWakeup;
}

std::int64_t TwoSweepProgram::compute_ops() const noexcept {
  std::int64_t total = 0;
  for (const NodeState& st : node_) total += st.ops;
  return total;
}

// ---- DenseKernel ------------------------------------------------------
//
// Representation: a pending broadcast from v is one (stamp, type) pair;
// the payload is recovered from v's own state (initial color / S_v /
// final color), so absorb and spill are loss-free by construction —
// absorb verifies each queued Message matches what rebuild_message(v)
// would emit and declines the round otherwise.

bool TwoSweepProgram::absorb(std::span<const Mailbox::Outgoing> queued) {
  const std::size_t n = node_.size();
  if (pending_type_.empty()) {  // lazily sized: scalar runs never pay this
    pending_type_.assign(n, 0);
  }
  DCOLOR_CHECK(pending_senders_.empty());
  const Graph& g = *inst_->graph;
  bool ok = true;
  for (const Mailbox::Outgoing& out : queued) {
    const auto vi = static_cast<std::size_t>(out.from);
    const Message& m = out.message;
    if (out.to != Mailbox::kBroadcastTo || m.empty() || vi >= n ||
        pending_type_[vi] != 0) {
      ok = false;
      break;
    }
    const std::int64_t type = m.field(0);
    bool match = false;
    if (type == kMsgInitial) {
      match = m.num_fields() == 2 && m.field(1) == (*initial_)[vi];
    } else if (type == kMsgPhase1Set) {
      const std::int64_t* const sv =
          sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_);
      match = m.num_fields() ==
              static_cast<std::size_t>(node_[vi].s_count) + 1;
      for (std::size_t i = 1; match && i < m.num_fields(); ++i) {
        match = m.field(i) == sv[i - 1];
      }
    } else if (type == kMsgDecision) {
      match = m.num_fields() == 2 && m.field(1) == node_[vi].final_color;
    }
    if (!match ||
        m.bits() != message_bits(out.from, static_cast<std::int8_t>(type))) {
      ok = false;
      break;
    }
    pending_type_[vi] = static_cast<std::int8_t>(type + 1);
    pending_senders_.push_back(out.from);
    pending_msgs_ += g.degree(out.from);
  }
  if (!ok) {  // leave no trace: the engine keeps the scalar buffer
    for (const NodeId s : pending_senders_) {
      pending_type_[static_cast<std::size_t>(s)] = 0;
    }
    pending_senders_.clear();
    pending_msgs_ = 0;
  }
  return ok;
}

void TwoSweepProgram::spill(std::vector<Mailbox::Outgoing>& sink) {
  for (const NodeId s : pending_senders_) {
    const auto si = static_cast<std::size_t>(s);
    const auto type = static_cast<std::int8_t>(pending_type_[si] - 1);
    pending_type_[si] = 0;
    sink.push_back({Mailbox::kBroadcastTo, s, rebuild_message(s, type)});
  }
  pending_senders_.clear();
  pending_msgs_ = 0;
}

void TwoSweepProgram::deliver(std::int64_t round,
                              std::vector<NodeId>& touched) {
  (void)round;
  const Graph& g = *inst_->graph;
  // Scatter-side ingest: each retiring broadcast walks the nodes that
  // hold an out-arc TOWARD its sender (under the instance orientation)
  // and applies the update in place. This runs serially before any
  // step_batch of the round, so it cannot race the turns; and because
  // turns only run in step_batch, every s_count read here reflects
  // exactly the turns of earlier rounds — the same "before my Phase-I
  // turn" predicate the scalar ingest evaluates. The op tallies
  // reproduce the scalar counts: one op per set color searched,
  // scan-length ops per decision.
  //
  // `touched` intentionally stays EMPTY: ingest-only receivers need no
  // step (no send, no done()/wake-up transition is possible outside a
  // turn), and the turn nodes re-enter the active set through their
  // registered wake-ups.
  //
  // The walk is expanded into flat (receiver, payload) work lists first:
  // receiver lists are only ~Δ items long — too short a horizon to hide
  // a cache miss — while the flat lists let the ingest loops software-
  // prefetch a dozen items ahead. Item order equals (sender order ×
  // receiver order), the exact order the nested walk would use, and both
  // ingest kinds are order-independent anyway (see the class comment).
  scatter_p1_.clear();
  scatter_dec_.clear();
  for (const NodeId s : pending_senders_) {
    const auto si = static_cast<std::size_t>(s);
    const auto type = static_cast<std::int8_t>(pending_type_[si] - 1);
    pending_type_[si] = 0;
    if (type == kMsgInitial) continue;  // ignored by every receiver
    const std::span<const NodeId> receivers =
        inst_->symmetric ? g.neighbors(s) : inst_->orientation.in_neighbors(s);
    if (type == kMsgPhase1Set) {
      for (const NodeId v : receivers) scatter_p1_.push_back({v, s});
    } else {  // kMsgDecision
      const Color x = node_[si].final_color;
      for (const NodeId v : receivers) scatter_dec_.push_back({v, x});
    }
  }
  pending_senders_.clear();
  pending_msgs_ = 0;

  // Phase-I set ingest. Two prefetch stages: the far stage pulls the
  // receiver's metadata lines (state record, k-offset, palette view), the
  // near stage chases the pointers those lines contain (palette colors,
  // k-row) once the far stage has had time to land.
  const std::size_t np1 = scatter_p1_.size();
  for (std::size_t i = 0; i < np1; ++i) {
    if (i + 12 < np1) {
      const auto pf = static_cast<std::size_t>(scatter_p1_[i + 12].v);
      __builtin_prefetch(&node_[pf]);
      __builtin_prefetch(&k_off_[pf]);
      __builtin_prefetch(&list_view_[pf]);
    }
    if (i + 4 < np1) {
      const auto pf = static_cast<std::size_t>(scatter_p1_[i + 4].v);
      __builtin_prefetch(list_view_[pf].colors().data());
      __builtin_prefetch(k_flat_.data() + k_off_[pf]);
    }
    const auto vi = static_cast<std::size_t>(scatter_p1_[i].v);
    NodeState& st = node_[vi];
    if (st.s_count != 0) continue;  // Phase-I turn already taken:
                                    // sets from N_>(v) are ignored
    ++st.heard_from;
    const auto ui = static_cast<std::size_t>(scatter_p1_[i].u);
    const std::int64_t* const su_sv =
        sr_flat_.data() + ui * 2 * static_cast<std::size_t>(p_);
    const std::int32_t su_count = node_[ui].s_count;
    const std::span<const Color> list_colors = list_view_[vi].colors();
    int* const kv = k_flat_.data() + k_off_[vi];
    for (std::int32_t t = 0; t < su_count; ++t) {
      const Color x = su_sv[t];
      const std::size_t pos =
          simd::lower_bound_i64(list_colors.data(), list_colors.size(), x);
      if (pos < list_colors.size() && list_colors[pos] == x) ++kv[pos];
    }
    st.ops += su_count;
  }

  // Phase-II decision ingest: one stage suffices — the S_v/r_v row
  // address is computable from the item alone, nothing to chase.
  const std::size_t nde = scatter_dec_.size();
  for (std::size_t i = 0; i < nde; ++i) {
    if (i + 8 < nde) {
      const auto pf = static_cast<std::size_t>(scatter_dec_[i + 8].v);
      __builtin_prefetch(&node_[pf]);
      __builtin_prefetch(&sr_flat_[pf * 2 * static_cast<std::size_t>(p_)]);
    }
    const auto vi = static_cast<std::size_t>(scatter_dec_[i].v);
    const Color x = scatter_dec_[i].x;
    std::int64_t* const sv =
        sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_);
    std::int64_t* const rv = sv + p_;
    const auto s_count = static_cast<std::size_t>(node_[vi].s_count);
    const std::size_t pos = simd::find_first_eq_i64(sv, s_count, x);
    node_[vi].ops += pos < s_count ? static_cast<std::int64_t>(pos) + 1
                                   : static_cast<std::int64_t>(s_count);
    if (pos < s_count) ++rv[pos];
  }
  (void)touched;
}

void TwoSweepProgram::step_batch(std::int64_t round,
                                 std::span<const NodeId> active,
                                 std::size_t lo, std::size_t hi,
                                 int message_bit_cap, DenseChunk& chunk) {
  const Graph& g = *inst_->graph;
  for (std::size_t idx = lo; idx < hi; ++idx) {
    // Active ids arrive in random graph order; two prefetch stages (far:
    // per-node metadata, near: the palette/k rows those records point at)
    // keep the turn loop from serializing on cache misses.
    if (idx + 12 < hi) {
      const auto pf = static_cast<std::size_t>(active[idx + 12]);
      __builtin_prefetch(&node_[pf]);
      __builtin_prefetch(&k_off_[pf]);
      __builtin_prefetch(&list_view_[pf]);
      __builtin_prefetch(initial_->data() + pf);
    }
    if (idx + 4 < hi) {
      const auto pf = static_cast<std::size_t>(active[idx + 4]);
      __builtin_prefetch(list_view_[pf].colors().data());
      __builtin_prefetch(list_view_[pf].defects().data());
      __builtin_prefetch(k_flat_.data() + k_off_[pf]);
      __builtin_prefetch(&sr_flat_[pf * 2 * static_cast<std::size_t>(p_)]);
    }
    const NodeId v = active[idx];
    const auto vi = static_cast<std::size_t>(v);

    // Ingest already happened in deliver(); only the sweep turns remain.
    // Turns touch node-local state exclusively (k_v, S_v, r_v, the color
    // list), so chunks never contend.
    const Color my_color = (*initial_)[vi];
    std::int8_t send_type = -1;
    if (round == static_cast<std::int64_t>(my_color) + 1) {
      phase1_turn(v);
      send_type = static_cast<std::int8_t>(kMsgPhase1Set);
    } else if (options_.selection != TwoSweepSelection::kOneSweep &&
               round == 2 * q_ - static_cast<std::int64_t>(my_color)) {
      phase2_turn(v);
      send_type = static_cast<std::int8_t>(kMsgDecision);
    }
    if (send_type >= 0) {
      const int deg = g.degree(v);
      if (deg != 0) {  // isolated broadcasts expand to nothing (scalar
                       // account pass drops them before the cap check)
        const int bits = message_bits(v, send_type);
        DCOLOR_CHECK_MSG(message_bit_cap <= 0 || bits <= message_bit_cap,
                         "CONGEST violation: node "
                             << v << " sent " << bits << " bits (cap "
                             << message_bit_cap << ")");
        pending_type_[vi] = static_cast<std::int8_t>(send_type + 1);
        chunk.senders.push_back(v);
        chunk.msgs += deg;
        chunk.bits += static_cast<std::int64_t>(deg) * bits;
        chunk.max_bits = std::max(chunk.max_bits, bits);
      }
    }
  }
}

void TwoSweepProgram::commit_senders(std::span<const NodeId> senders) {
  const Graph& g = *inst_->graph;
  pending_senders_.insert(pending_senders_.end(), senders.begin(),
                          senders.end());
  for (const NodeId s : senders) pending_msgs_ += g.degree(s);
}

ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p, bool skip_precondition_check) {
  RunContext ctx;
  ctx.skip_precondition_check = skip_precondition_check;
  return two_sweep(inst, initial_coloring, q, p, ctx);
}

ColoringResult two_sweep_ex(const OldcInstance& inst,
                            const std::vector<Color>& initial_coloring,
                            std::int64_t q, int p,
                            const TwoSweepOptions& options) {
  RunContext ctx;
  return two_sweep(inst, initial_coloring, q, p, ctx, options);
}

ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p, RunContext& ctx,
                         const TwoSweepOptions& options) {
  const bool skip_precondition_check = ctx.skip_precondition_check;
  const Graph& g = *inst.graph;
  DCOLOR_CHECK(static_cast<NodeId>(initial_coloring.size()) == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // The adjacency rows stream sequentially but the neighbor colors are
    // random reads; prefetching the next-next row's colors keeps this
    // whole-edge-set scan from running at one miss per arc.
    if (v + 2 < g.num_nodes()) {
      for (NodeId u : g.neighbors(v + 2)) {
        __builtin_prefetch(initial_coloring.data() + u);
      }
    }
    const Color c = initial_coloring[static_cast<std::size_t>(v)];
    DCOLOR_CHECK_MSG(c >= 0 && c < q, "initial color out of range at " << v);
    for (NodeId u : g.neighbors(v)) {
      DCOLOR_CHECK_MSG(initial_coloring[static_cast<std::size_t>(u)] != c,
                       "initial q-coloring is not proper on edge ("
                           << v << "," << u << ")");
    }
  }
  if (!skip_precondition_check) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& lst = inst.lists[static_cast<std::size_t>(v)];
      // A node with no out-neighbors succeeds with any non-empty list
      // (k_v == r_v == 0 for every color), so Eq. (2) — which uses
      // β_v = max(1, outdeg) — is only enforced when outdeg >= 1. This is
      // a strictly weaker requirement than the paper's and keeps tight
      // recursive instances (color space reduction) feasible.
      if (inst.effective_outdegree(v) == 0) {
        DCOLOR_CHECK_MSG(!lst.empty(), "empty list at sink node " << v);
        continue;
      }
      // Eq. (2), multiplied through by p to stay in integers:
      //   weight * p > max{p², |L_v|} * β_v.
      const std::int64_t lhs = lst.weight() * p;
      const std::int64_t rhs =
          std::max<std::int64_t>(static_cast<std::int64_t>(p) * p,
                                 static_cast<std::int64_t>(lst.size())) *
          inst.beta_v(v);
      DCOLOR_CHECK_MSG(lhs > rhs, "Eq. (2) fails at node "
                                      << v << ": weight=" << lst.weight()
                                      << " p=" << p << " beta=" <<
                                      inst.beta_v(v));
    }
  }

  TwoSweepProgram program(inst, initial_coloring, q, p, options);
  PhaseSpan span("two_sweep");
  Network net(g);
  ColoringResult result;
  result.metrics = net.run(program, 2 * q + 4);
  result.metrics.local_compute_ops = program.compute_ops();
  result.colors = program.final_colors();
  if (InvariantChecker* ck = InvariantChecker::current();
      ck != nullptr &&
      options.selection != TwoSweepSelection::kOneSweep) {
    // kOneSweep is the ablation that intentionally overshoots defects.
    ck->check_oldc(inst, result.colors, "two_sweep");
  }
  return result;
}

}  // namespace dcolor
