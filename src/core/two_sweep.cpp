#include "core/two_sweep.h"

#include <algorithm>
#include <numeric>

#include "check/invariant_checker.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {

namespace {

// Message type tags (2 bits on the wire).
constexpr std::int64_t kMsgInitial = 0;
constexpr std::int64_t kMsgPhase1Set = 1;
constexpr std::int64_t kMsgDecision = 2;

}  // namespace

TwoSweepProgram::TwoSweepProgram(const OldcInstance& inst,
                                 const std::vector<Color>& initial_coloring,
                                 std::int64_t q, int p, TwoSweepOptions options)
    : inst_(&inst),
      initial_(&initial_coloring),
      q_(q),
      p_(p),
      options_(options) {
  DCOLOR_CHECK(p >= 1);
  DCOLOR_CHECK(q >= 1);
  const auto n = static_cast<std::size_t>(inst.graph->num_nodes());
  DCOLOR_CHECK(initial_coloring.size() == n);
  node_.assign(n, {});
  k_off_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    k_off_[v + 1] = k_off_[v] + static_cast<std::int64_t>(inst.lists[v].size());
  }
  k_flat_.assign(static_cast<std::size_t>(k_off_[n]), 0);
  sr_flat_.assign(n * 2 * static_cast<std::size_t>(p), 0);
  compute_ops_.assign(n, 0);
}

int TwoSweepProgram::color_bits() const noexcept {
  return std::max(1, ceil_log2(static_cast<std::uint64_t>(
                          std::max<std::int64_t>(2, inst_->color_space))));
}

void TwoSweepProgram::init(NodeId v, Mailbox& mail) {
  // Nodes forward their initial color first (Theorem 1.1's message
  // pattern); the sweep schedule itself is driven by the global round
  // counter, which every node shares in the synchronous model.
  Message m;
  m.push(kMsgInitial, 2);
  m.push((*initial_)[static_cast<std::size_t>(v)],
         std::max(1, ceil_log2(static_cast<std::uint64_t>(
                         std::max<std::int64_t>(2, q_)))));
  broadcast(*inst_->graph, mail, m);
}

void TwoSweepProgram::step(NodeId v, int round, Mailbox& mail) {
  const auto vi = static_cast<std::size_t>(v);
  const auto& list = inst_->lists[vi];
  NodeState& st = node_[vi];
  int* const kv = k_flat_.data() + k_off_[vi];
  std::int64_t* const sv =
      sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_);
  std::int64_t* const rv = sv + p_;
  const std::span<const Color> list_colors = list.colors();
  std::int64_t ops = 0;

  // Ingest this round's inbox: Phase-I sets and Phase-II decisions from
  // OUT-neighbors update k_v and r_v. k_v(x) counts only out-neighbors in
  // N_<(v): because Phase I ascends through the color classes, exactly the
  // sets of smaller-colored out-neighbors arrive before v's own Phase-I
  // turn; set messages arriving after that come from N_>(v) and must be
  // ignored (they would corrupt the Phase-II margins).
  const bool before_my_phase1_turn = st.s_count == 0;
  for (const Envelope& env : mail.inbox()) {
    if (env.message.empty()) continue;
    const std::int64_t type = env.message.field(0);
    if (type == kMsgInitial) continue;  // before the adjacency lookup: the
                                        // initial-color flood is ignored
    if (!inst_->is_out(v, env.from)) continue;
    if (type == kMsgPhase1Set && before_my_phase1_turn) {
      ++st.heard_from;
      for (std::size_t i = 1; i < env.message.num_fields(); ++i) {
        const Color x = env.message.field(i);
        const auto it =
            std::lower_bound(list_colors.begin(), list_colors.end(), x);
        ++ops;
        if (it != list_colors.end() && *it == x) {
          ++kv[it - list_colors.begin()];
        }
      }
    } else if (type == kMsgDecision) {
      const Color x = env.message.field(1);
      for (std::int32_t i = 0; i < st.s_count; ++i) {
        ++ops;
        if (sv[i] == x) {
          ++rv[i];
          break;
        }
      }
    }
  }
  if (ops != 0) compute_ops_[vi] += ops;

  const Color my_color = (*initial_)[vi];

  // Phase I turn: round == my_color + 1 (colors ascend 0..q-1).
  if (round == static_cast<int>(my_color) + 1) {
    st.n_greater = inst_->beta_v(v) - st.heard_from;
    const std::size_t take =
        options_.selection == TwoSweepSelection::kOneSweep
            ? std::min<std::size_t>(1, list.size())
            : std::min<std::size_t>(static_cast<std::size_t>(p_),
                                    list.size());
    // Thread-local scratch: one buffer per pool thread instead of a heap
    // allocation per phase-I turn.
    static thread_local std::vector<std::size_t> order;
    order.resize(list.size());
    std::iota(order.begin(), order.end(), 0);
    if (options_.selection == TwoSweepSelection::kRandomSubset) {
      // Ablation: an arbitrary p-subset instead of the best one.
      Rng rng(options_.selection_seed ^
              (static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ULL));
      rng.shuffle(order);
    } else {
      // Select S_v: the min(p, |L_v|) colors maximizing d_v(x) - k_v(x)
      // (best possible choice per the Remark after Lemma 3.1). Only the
      // top `take` entries are consumed, and the comparator is a total
      // order, so a partial sort selects the identical subset.
      std::partial_sort(order.begin(), order.begin() + take, order.end(),
                        [&](std::size_t a, std::size_t b) {
                          const int ma = list.defect(a) - kv[a];
                          const int mb = list.defect(b) - kv[b];
                          if (ma != mb) return ma > mb;
                          return a < b;
                        });
    }
    compute_ops_[vi] += static_cast<std::int64_t>(list.size()) *
                        std::max(1, ceil_log2(std::max<std::uint64_t>(
                                        2, list.size())));
    for (std::size_t i = 0; i < take; ++i) {
      sv[i] = list.color(order[i]);
      rv[i] = 0;
    }
    std::sort(sv, sv + take);
    st.s_count = static_cast<std::int32_t>(take);

    Message m;
    m.push(kMsgPhase1Set, 2);
    for (std::size_t i = 0; i < take; ++i) m.push(sv[i], color_bits());
    broadcast(*inst_->graph, mail, m);

    if (options_.selection == TwoSweepSelection::kOneSweep) {
      // Ablation: commit immediately — no second sweep. Out-edges toward
      // later nodes are uncontrolled; the bench measures the damage.
      DCOLOR_CHECK_MSG(take > 0, "empty list at node " << v);
      st.final_color = sv[0];
    }
    return;
  }
  if (options_.selection == TwoSweepSelection::kOneSweep) return;

  // Phase II turn: round == q + (q - my_color) (colors descend q-1..0).
  if (round == static_cast<int>(2 * q_ - my_color)) {
    DCOLOR_CHECK_MSG(st.s_count > 0,
                     "node " << v << " has an empty Phase-I set");
    // Pick the color with the largest remaining margin d - k - r; Lemma 3.2
    // guarantees some margin is >= 0 whenever Eq. (2) held.
    std::int64_t best_margin = -1;
    Color best = kNoColor;
    for (std::int32_t i = 0; i < st.s_count; ++i) {
      const auto d = list.defect_of(sv[i]);
      const auto it =
          std::lower_bound(list_colors.begin(), list_colors.end(), sv[i]);
      const std::int64_t margin =
          static_cast<std::int64_t>(*d) - kv[it - list_colors.begin()] -
          rv[i];
      ++compute_ops_[vi];
      if (margin > best_margin) {
        best_margin = margin;
        best = sv[i];
      }
    }
    DCOLOR_CHECK_MSG(best_margin >= 0,
                     "Phase II found no feasible color at node "
                         << v << " — Eq. (2) precondition violated?");
    st.final_color = best;

    Message m;
    m.push(kMsgDecision, 2);
    m.push(best, color_bits());
    broadcast(*inst_->graph, mail, m);
    return;
  }
}

bool TwoSweepProgram::done(NodeId v) const {
  return node_[static_cast<std::size_t>(v)].final_color != kNoColor;
}

std::vector<Color> TwoSweepProgram::final_colors() const {
  std::vector<Color> out(node_.size());
  for (std::size_t i = 0; i < node_.size(); ++i) out[i] = node_[i].final_color;
  return out;
}

std::int64_t TwoSweepProgram::next_active_round(NodeId v,
                                                std::int64_t after_round) const {
  const Color my_color = (*initial_)[static_cast<std::size_t>(v)];
  const std::int64_t phase1 = static_cast<std::int64_t>(my_color) + 1;
  if (after_round < phase1) return phase1;
  if (options_.selection == TwoSweepSelection::kOneSweep) return kNoWakeup;
  const std::int64_t phase2 = 2 * q_ - static_cast<std::int64_t>(my_color);
  if (after_round < phase2) return phase2;
  return kNoWakeup;
}

std::int64_t TwoSweepProgram::compute_ops() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t ops : compute_ops_) total += ops;
  return total;
}

ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p, bool skip_precondition_check) {
  RunContext ctx;
  ctx.skip_precondition_check = skip_precondition_check;
  return two_sweep(inst, initial_coloring, q, p, ctx);
}

ColoringResult two_sweep_ex(const OldcInstance& inst,
                            const std::vector<Color>& initial_coloring,
                            std::int64_t q, int p,
                            const TwoSweepOptions& options) {
  RunContext ctx;
  return two_sweep(inst, initial_coloring, q, p, ctx, options);
}

ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p, RunContext& ctx,
                         const TwoSweepOptions& options) {
  const bool skip_precondition_check = ctx.skip_precondition_check;
  const Graph& g = *inst.graph;
  DCOLOR_CHECK(static_cast<NodeId>(initial_coloring.size()) == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = initial_coloring[static_cast<std::size_t>(v)];
    DCOLOR_CHECK_MSG(c >= 0 && c < q, "initial color out of range at " << v);
    for (NodeId u : g.neighbors(v)) {
      DCOLOR_CHECK_MSG(initial_coloring[static_cast<std::size_t>(u)] != c,
                       "initial q-coloring is not proper on edge ("
                           << v << "," << u << ")");
    }
  }
  if (!skip_precondition_check) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& lst = inst.lists[static_cast<std::size_t>(v)];
      // A node with no out-neighbors succeeds with any non-empty list
      // (k_v == r_v == 0 for every color), so Eq. (2) — which uses
      // β_v = max(1, outdeg) — is only enforced when outdeg >= 1. This is
      // a strictly weaker requirement than the paper's and keeps tight
      // recursive instances (color space reduction) feasible.
      if (inst.effective_outdegree(v) == 0) {
        DCOLOR_CHECK_MSG(!lst.empty(), "empty list at sink node " << v);
        continue;
      }
      // Eq. (2), multiplied through by p to stay in integers:
      //   weight * p > max{p², |L_v|} * β_v.
      const std::int64_t lhs = lst.weight() * p;
      const std::int64_t rhs =
          std::max<std::int64_t>(static_cast<std::int64_t>(p) * p,
                                 static_cast<std::int64_t>(lst.size())) *
          inst.beta_v(v);
      DCOLOR_CHECK_MSG(lhs > rhs, "Eq. (2) fails at node "
                                      << v << ": weight=" << lst.weight()
                                      << " p=" << p << " beta=" <<
                                      inst.beta_v(v));
    }
  }

  TwoSweepProgram program(inst, initial_coloring, q, p, options);
  PhaseSpan span("two_sweep");
  Network net(g);
  ColoringResult result;
  result.metrics = net.run(program, 2 * q + 4);
  result.metrics.local_compute_ops = program.compute_ops();
  result.colors = program.final_colors();
  if (InvariantChecker* ck = InvariantChecker::current();
      ck != nullptr &&
      options.selection != TwoSweepSelection::kOneSweep) {
    // kOneSweep is the ablation that intentionally overshoots defects.
    ck->check_oldc(inst, result.colors, "two_sweep");
  }
  return result;
}

}  // namespace dcolor
