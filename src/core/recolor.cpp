#include "core/recolor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/two_sweep.h"
#include "graph/orientation.h"
#include "util/check.h"

namespace dcolor {

namespace {

/// Working state of one repair attempt over a fixed dirty set.
struct SubProblem {
  std::vector<NodeId> to_orig;             ///< sub id -> original id
  std::vector<NodeId> to_sub;              ///< original id -> sub id or -1
  Graph graph;                             ///< induced dirty subgraph
  PaletteStore lists;                      ///< reduced palettes, sub order
  bool infeasible = false;                 ///< some reduced palette is empty
};

/// True when u's defect budget counts neighbor w.
bool counts(const RecolorProblem& prob, NodeId u, NodeId w) {
  return prob.symmetric || prob.is_out(u, w);
}

/// Builds the reduced sub-instance for the current dirty set.
///
/// Besides reducing each dirty node's defects by its FIXED same-colored
/// neighbors (the node's own side of every boundary edge), the build also
/// protects the fixed side: a fixed node u colored c has headroom
/// h = d_u(c) − (current same-colored fixed neighbors), and at most h of
/// the dirty neighbors u counts may take c. The headroom is granted to
/// u's dirty neighbors in id order; the rest get c struck from their
/// palettes. Any assignment of the resulting sub-instance therefore
/// leaves every fixed node's contract intact — zero-defect lists make
/// this coincide with the plain "drop the neighbor's color" rule.
SubProblem build_subproblem(const RecolorProblem& prob,
                            const std::vector<Color>& colors,
                            const std::vector<NodeId>& dirty,
                            const std::vector<char>& in_dirty) {
  SubProblem sub;
  sub.to_orig = dirty;
  sub.to_sub.assign(static_cast<std::size_t>(prob.num_nodes), -1);
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    sub.to_sub[static_cast<std::size_t>(dirty[i])] = static_cast<NodeId>(i);
  }

  // Fixed-side protection: per dirty node, the colors struck because a
  // fixed neighbor's headroom ran out.
  std::unordered_map<NodeId, std::unordered_set<Color>> forbidden;
  std::vector<char> seen_fixed(static_cast<std::size_t>(prob.num_nodes), 0);
  for (const NodeId v : dirty) {
    for (const NodeId u : prob.neighbors(v)) {
      if (in_dirty[static_cast<std::size_t>(u)] ||
          seen_fixed[static_cast<std::size_t>(u)]) {
        continue;
      }
      seen_fixed[static_cast<std::size_t>(u)] = 1;
      const Color c = colors[static_cast<std::size_t>(u)];
      if (c == kNoColor) continue;
      // Headroom of u for its own color, counting only fixed neighbors
      // (dirty ones are being replaced and are what the grants bound).
      std::int64_t used = 0;
      for (const NodeId w : prob.neighbors(u)) {
        if (!in_dirty[static_cast<std::size_t>(w)] &&
            colors[static_cast<std::size_t>(w)] == c && counts(prob, u, w)) {
          ++used;
        }
      }
      const auto d = (*prob.lists)[static_cast<std::size_t>(u)].defect_of(c);
      std::int64_t grants = d.has_value() ? *d - used : 0;
      for (const NodeId w : prob.neighbors(u)) {
        if (!in_dirty[static_cast<std::size_t>(w)] || !counts(prob, u, w))
          continue;
        if (grants > 0) {
          --grants;
        } else {
          forbidden[w].insert(c);
        }
      }
    }
  }

  // Reduced palettes + sub edge list in one pass over the dirty nodes.
  std::vector<std::pair<NodeId, NodeId>> sub_edges;
  std::unordered_map<Color, int> fixed_count;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const NodeId v = dirty[i];
    fixed_count.clear();
    for (const NodeId u : prob.neighbors(v)) {
      if (in_dirty[static_cast<std::size_t>(u)]) {
        if (v < u) {
          sub_edges.emplace_back(
              static_cast<NodeId>(i),
              sub.to_sub[static_cast<std::size_t>(u)]);
        }
        continue;
      }
      const Color c = colors[static_cast<std::size_t>(u)];
      if (c != kNoColor && counts(prob, v, u)) ++fixed_count[c];
    }
    const auto* struck =
        forbidden.count(v) != 0 ? &forbidden.at(v) : nullptr;
    const ColorList reduced =
        (*prob.lists)[static_cast<std::size_t>(v)].transform(
            [&](Color c, int d) -> int {
              if (struck != nullptr && struck->count(c) != 0) return -1;
              const auto it = fixed_count.find(c);
              return it == fixed_count.end() ? d : d - it->second;
            });
    if (reduced.empty()) sub.infeasible = true;
    sub.lists.push_back(reduced);
  }
  sub.graph = Graph::from_edges(static_cast<NodeId>(dirty.size()),
                                std::move(sub_edges));
  return sub;
}

/// Deterministic sequential last resort: first feasible palette color per
/// node in id order, honoring both sides' (already reduced) defects.
/// Returns the sub coloring; throws CheckError on a dead end.
std::vector<Color> greedy_repair(const SubProblem& sub, bool symmetric,
                                 const RecolorProblem& prob) {
  const auto sub_n = static_cast<NodeId>(sub.to_orig.size());
  std::vector<Color> out(static_cast<std::size_t>(sub_n), kNoColor);
  const auto sub_counts = [&](NodeId a, NodeId b) {
    return symmetric || prob.is_out(sub.to_orig[static_cast<std::size_t>(a)],
                                    sub.to_orig[static_cast<std::size_t>(b)]);
  };
  const auto committed_with = [&](NodeId a, Color c) {
    std::int64_t k = 0;
    for (const NodeId b : sub.graph.neighbors(a)) {
      if (out[static_cast<std::size_t>(b)] == c && sub_counts(a, b)) ++k;
    }
    return k;
  };
  for (NodeId v = 0; v < sub_n; ++v) {
    const PaletteView list = sub.lists[static_cast<std::size_t>(v)];
    Color chosen = kNoColor;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Color c = list.color(i);
      if (committed_with(v, c) > list.defect(i)) continue;
      // Committing v to c must also leave every already-committed
      // same-colored neighbor within its own reduced budget.
      bool ok = true;
      for (const NodeId u : sub.graph.neighbors(v)) {
        if (out[static_cast<std::size_t>(u)] != c || !sub_counts(u, v))
          continue;
        const auto du =
            sub.lists[static_cast<std::size_t>(u)].defect_of(c);
        if (!du.has_value() || committed_with(u, c) + 1 > *du) {
          ok = false;
          break;
        }
      }
      if (ok) {
        chosen = c;
        break;
      }
    }
    DCOLOR_CHECK_MSG(chosen != kNoColor,
                     "recolor: greedy fallback dead-ended at dirty node "
                         << sub.to_orig[static_cast<std::size_t>(v)]
                         << "; full re-solve required");
    out[static_cast<std::size_t>(v)] = chosen;
  }
  return out;
}

}  // namespace

RecolorResult recolor_dirty(const RecolorProblem& problem,
                            std::vector<Color> colors,
                            std::vector<NodeId> dirty, RunContext& ctx,
                            const RecolorOptions& options) {
  const NodeId n = problem.num_nodes;
  DCOLOR_CHECK_MSG(problem.lists != nullptr &&
                       problem.lists->size() == static_cast<std::size_t>(n),
                   "recolor: lists must cover all " << n << " nodes");
  DCOLOR_CHECK_MSG(colors.size() == static_cast<std::size_t>(n),
                   "recolor: coloring must cover all " << n << " nodes");
  DCOLOR_CHECK_MSG(problem.symmetric || problem.is_out,
                   "recolor: oriented problems need an is_out predicate");

  RecolorResult result;
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  for (const NodeId v : dirty) {
    DCOLOR_CHECK_MSG(v >= 0 && v < n, "recolor: dirty node " << v
                                          << " out of range [0, " << n << ")");
  }
  if (dirty.empty()) {
    result.colors = std::move(colors);
    return result;
  }
  const std::vector<Color> original = colors;
  std::vector<char> in_dirty(static_cast<std::size_t>(n), 0);
  for (const NodeId v : dirty) in_dirty[static_cast<std::size_t>(v)] = 1;

  const auto grow_one_hop = [&]() {
    std::vector<NodeId> added;
    for (const NodeId v : dirty) {
      for (const NodeId u : problem.neighbors(v)) {
        if (in_dirty[static_cast<std::size_t>(u)] == 0) {
          in_dirty[static_cast<std::size_t>(u)] = 1;
          added.push_back(u);
        }
      }
    }
    dirty.insert(dirty.end(), added.begin(), added.end());
    std::sort(dirty.begin(), dirty.end());
    return !added.empty();
  };

  SubProblem sub;
  std::vector<Color> sub_colors;
  bool solved = false;
  for (int attempt = 0; attempt <= options.max_growth && !solved; ++attempt) {
    sub = build_subproblem(problem, colors, dirty, in_dirty);
    if (!sub.infeasible) {
      OldcInstance inst;
      inst.graph = &sub.graph;
      inst.lists = sub.lists.borrow();
      inst.color_space = problem.color_space;
      inst.symmetric = problem.symmetric;
      if (!problem.symmetric) {
        inst.orientation = Orientation::from_predicate(
            sub.graph, [&](NodeId a, NodeId b) {
              return problem.is_out(
                  sub.to_orig[static_cast<std::size_t>(a)],
                  sub.to_orig[static_cast<std::size_t>(b)]);
            });
      }
      // Identity initial coloring: trivially proper, and q = |dirty| keeps
      // the sweep at O(|dirty|) rounds — the whole point of the repair.
      const auto sub_n = static_cast<std::int64_t>(dirty.size());
      std::vector<Color> initial(static_cast<std::size_t>(sub_n));
      for (std::int64_t i = 0; i < sub_n; ++i)
        initial[static_cast<std::size_t>(i)] = i;
      // The reduced sub-instance generally sits below Eq. (2); a Phase-II
      // dead end is handled by growing the region, not by failing.
      const bool prev_skip = ctx.skip_precondition_check;
      ctx.skip_precondition_check = true;
      try {
        ColoringResult res =
            two_sweep(inst, initial, sub_n, options.p, ctx);
        ctx.skip_precondition_check = prev_skip;
        sub_colors = std::move(res.colors);
        result.rounds += res.metrics.rounds;
        solved = true;
      } catch (const CheckError&) {
        ctx.skip_precondition_check = prev_skip;
      }
    }
    if (!solved && attempt < options.max_growth && !grow_one_hop()) {
      break;  // region already closed: growing again cannot help
    }
  }
  if (!solved) {
    sub = build_subproblem(problem, colors, dirty, in_dirty);
    DCOLOR_CHECK_MSG(!sub.infeasible,
                     "recolor: dirty region has a node with an empty "
                     "reduced palette; full re-solve required");
    sub_colors = greedy_repair(sub, problem.symmetric, problem);
    result.used_greedy_fallback = true;
  }

  for (std::size_t i = 0; i < dirty.size(); ++i) {
    colors[static_cast<std::size_t>(dirty[i])] = sub_colors[i];
  }
  for (NodeId v = 0; v < n; ++v) {
    if (colors[static_cast<std::size_t>(v)] !=
        original[static_cast<std::size_t>(v)]) {
      ++result.colors_changed;
    }
  }
  result.dirty_nodes = static_cast<std::int64_t>(dirty.size());
  result.colors = std::move(colors);
  return result;
}

}  // namespace dcolor
