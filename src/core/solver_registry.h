// Central registry of every coloring solver in the library.
//
// The registry is the single lookup point behind `dcolor --cmd=color`,
// `dcolor --cmd=list`, the batch runner, the fuzz harness's algorithm
// axis, and the benches: each resolves a solver by name (or alias) and
// drives it through the uniform Solver interface (core/solver.h).
//
// Registration is CENTRAL, not self-registering: the constructor calls
// one `detail::register_*_solvers` hook per algorithm family, each
// defined in a dedicated adapter file (core/core_solvers.cpp,
// coloring/coloring_solvers.cpp, baselines/baseline_solvers.cpp,
// check/oracle_solver.cpp). The undefined-symbol reference is what pulls
// those objects out of the static library — per-file static-initializer
// self-registration would be silently dead-stripped by the linker the
// moment nothing else references the object.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.h"

namespace dcolor {

class SolverRegistry {
 public:
  /// The process-wide registry, built (with every builtin solver) on
  /// first use. Thread-safe construction; read-only afterwards.
  static SolverRegistry& get();

  /// Solver by canonical name or alias; nullptr when unknown.
  const Solver* find(std::string_view name_or_alias) const;

  /// Like find(), but throws CheckError naming the available solvers.
  const Solver& require(std::string_view name_or_alias) const;

  /// All solvers, sorted by canonical name.
  std::vector<const Solver*> solvers() const;

  /// Aliases registered for a canonical solver name (may be empty).
  std::vector<std::string> aliases_of(std::string_view name) const;

  /// Registers a solver (takes ownership). Throws CheckError when the
  /// name or an alias collides with an existing registration.
  void add(std::unique_ptr<Solver> solver,
           std::vector<std::string> aliases = {});

 private:
  SolverRegistry();

  struct Entry {
    std::unique_ptr<Solver> solver;
    std::vector<std::string> aliases;
  };
  std::vector<Entry> entries_;
};

namespace detail {
// Per-family registration hooks, one per adapter file (see header
// comment for why registration is centralized here).
void register_core_solvers(SolverRegistry& registry);
void register_coloring_solvers(SolverRegistry& registry);
void register_baseline_solvers(SolverRegistry& registry);
void register_check_solvers(SolverRegistry& registry);
}  // namespace detail

}  // namespace dcolor
