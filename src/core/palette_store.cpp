#include "core/palette_store.h"

#include <algorithm>
#include <exception>
#include <numeric>

#include "util/check.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dcolor {

// ---- ColorList ---------------------------------------------------------

ColorList::ColorList(std::vector<Color> colors, std::vector<int> defects)
    : colors_(std::move(colors)), defects_(std::move(defects)) {
  DCOLOR_CHECK(colors_.size() == defects_.size());
  // Sort jointly by color.
  std::vector<std::size_t> order(colors_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return colors_[a] < colors_[b]; });
  std::vector<Color> cs(colors_.size());
  std::vector<int> ds(colors_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    cs[i] = colors_[order[i]];
    ds[i] = defects_[order[i]];
    DCOLOR_CHECK_MSG(ds[i] >= 0, "negative defect");
    if (i > 0) DCOLOR_CHECK_MSG(cs[i] != cs[i - 1], "duplicate color " << cs[i]);
  }
  colors_ = std::move(cs);
  defects_ = std::move(ds);
}

ColorList ColorList::zero_defect(std::vector<Color> colors) {
  std::vector<int> d(colors.size(), 0);
  return {std::move(colors), std::move(d)};
}

ColorList ColorList::uniform(std::vector<Color> colors, int defect) {
  std::vector<int> d(colors.size(), defect);
  return {std::move(colors), std::move(d)};
}

std::int64_t ColorList::weight() const noexcept {
  std::int64_t w = 0;
  for (int d : defects_) w += d + 1;
  return w;
}

// ---- PaletteView -------------------------------------------------------

bool PaletteView::contains(Color c) const noexcept {
  return std::binary_search(colors_, colors_ + size_, c);
}

std::optional<int> PaletteView::defect_of(Color c) const noexcept {
  const Color* it = std::lower_bound(colors_, colors_ + size_, c);
  if (it == colors_ + size_ || *it != c) return std::nullopt;
  return defects_[it - colors_];
}

// ---- PaletteStore ------------------------------------------------------

void PaletteStore::clear() {
  arena_colors_.clear();
  arena_defects_.clear();
  palettes_.clear();
  node_palette_.clear();
  buckets_.clear();
  dedup_hits_ = 0;
}

void PaletteStore::assign(std::size_t n, const ColorList& list) {
  node_palette_.clear();
  if (n == 0) return;
  const PaletteId id = intern(PaletteView(list));
  node_palette_.assign(n, id);
  dedup_hits_ += static_cast<std::int64_t>(n) - 1;
}

void PaletteStore::resize(std::size_t n) {
  if (n <= node_palette_.size()) {
    node_palette_.resize(n);
    return;
  }
  const PaletteId empty = intern(PaletteView(nullptr, nullptr, 0, 0));
  node_palette_.resize(n, empty);
}

std::uint64_t PaletteStore::hash_palette(PaletteView view) noexcept {
  // splitmix64-style mixing over the (color, defect) stream; stable
  // across platforms (no pointer or size_t dependence).
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ view.size();
  for (std::size_t i = 0; i < view.size(); ++i) {
    std::uint64_t s = h ^ static_cast<std::uint64_t>(view.color(i));
    h = splitmix64(s);
    s = h ^ static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(view.defect(i)));
    h = splitmix64(s);
  }
  return h;
}

PaletteStore::PaletteId PaletteStore::find(PaletteView view,
                                           std::uint64_t hash) const noexcept {
  if (buckets_.empty()) return kNoPalette;
  std::uint32_t id = buckets_[hash & (buckets_.size() - 1)];
  while (id != kNoPalette) {
    const PaletteRecord& rec = palettes_[id];
    if (rec.hash == hash && this->view(id) == view) return id;
    id = rec.next;
  }
  return kNoPalette;
}

void PaletteStore::rehash_if_needed() {
  if (palettes_.size() * 2 < buckets_.size()) return;
  std::size_t cap = buckets_.empty() ? 64 : buckets_.size() * 2;
  buckets_.assign(cap, kNoPalette);
  // Relink only — the cached record hashes make a rehash O(palettes)
  // pointer writes instead of a full re-read of the arena.
  for (PaletteId id = 0; id < palettes_.size(); ++id) {
    const std::size_t b = palettes_[id].hash & (cap - 1);
    palettes_[id].next = buckets_[b];
    buckets_[b] = id;
  }
}

PaletteStore::PaletteId PaletteStore::append_palette(PaletteView view,
                                                     std::uint64_t hash) {
  rehash_if_needed();
  PaletteRecord rec;
  rec.offset = static_cast<std::int64_t>(arena_colors_.size());
  rec.len = static_cast<std::uint32_t>(view.size());
  rec.weight = view.weight();
  rec.hash = hash;
  arena_colors_.insert(arena_colors_.end(), view.colors().begin(),
                       view.colors().end());
  arena_defects_.insert(arena_defects_.end(), view.defects().begin(),
                        view.defects().end());
  const auto id = static_cast<PaletteId>(palettes_.size());
  const std::size_t b = hash & (buckets_.size() - 1);
  rec.next = buckets_[b];
  buckets_[b] = id;
  palettes_.push_back(rec);
  return id;
}

PaletteStore::PaletteId PaletteStore::intern(PaletteView v) {
  const std::uint64_t h = hash_palette(v);
  const PaletteId existing = find(v, h);
  if (existing != kNoPalette) {
    ++dedup_hits_;
    return existing;
  }
  return append_palette(v, h);
}

std::int64_t PaletteStore::memory_bytes() const noexcept {
  return static_cast<std::int64_t>(arena_colors_.capacity() * sizeof(Color) +
                                   arena_defects_.capacity() * sizeof(int) +
                                   palettes_.capacity() * sizeof(PaletteRecord) +
                                   node_palette_.capacity() * sizeof(PaletteId) +
                                   buckets_.capacity() * sizeof(std::uint32_t));
}

std::int64_t PaletteStore::content_bytes() const noexcept {
  return static_cast<std::int64_t>(arena_colors_.size() * sizeof(Color) +
                                   arena_defects_.size() * sizeof(int) +
                                   palettes_.size() * sizeof(PaletteRecord) +
                                   node_palette_.size() * sizeof(PaletteId));
}

PaletteStore PaletteStore::adopt(std::span<const Color> arena_colors,
                                 std::span<const int> arena_defects,
                                 std::span<const PaletteRecord> palettes,
                                 std::span<const PaletteId> node_palette,
                                 std::int64_t dedup_hits) {
  DCOLOR_CHECK_MSG(arena_colors.size() == arena_defects.size(),
                   "adopt: color/defect arenas disagree on size");
  const auto arena = static_cast<std::int64_t>(arena_colors.size());
  for (const PaletteRecord& rec : palettes) {
    DCOLOR_CHECK_MSG(rec.offset >= 0 && rec.len <= arena &&
                         rec.offset <= arena - rec.len,
                     "adopt: palette record overruns the arena");
  }
  for (const PaletteId id : node_palette) {
    DCOLOR_CHECK_MSG(id < palettes.size(),
                     "adopt: node palette id " << id << " out of range");
  }
  PaletteStore s;
  s.arena_colors_ =
      StorageVec<Color>::adopt(arena_colors.data(), arena_colors.size());
  s.arena_defects_ =
      StorageVec<int>::adopt(arena_defects.data(), arena_defects.size());
  s.palettes_ =
      StorageVec<PaletteRecord>::adopt(palettes.data(), palettes.size());
  s.node_palette_ =
      StorageVec<PaletteId>::adopt(node_palette.data(), node_palette.size());
  s.dedup_hits_ = dedup_hits;
  return s;
}

PaletteStore PaletteStore::borrow() const noexcept {
  PaletteStore s;
  s.arena_colors_ =
      StorageVec<Color>::adopt(arena_colors_.data(), arena_colors_.size());
  s.arena_defects_ =
      StorageVec<int>::adopt(arena_defects_.data(), arena_defects_.size());
  s.palettes_ =
      StorageVec<PaletteRecord>::adopt(palettes_.data(), palettes_.size());
  s.node_palette_ =
      StorageVec<PaletteId>::adopt(node_palette_.data(), node_palette_.size());
  s.dedup_hits_ = dedup_hits_;
  return s;
}

std::int64_t PaletteStore::normalize_scratch(Scratch& scratch) {
  auto& cs = scratch.colors;
  auto& ds = scratch.defects;
  DCOLOR_CHECK(cs.size() == ds.size());
  // Fast path: strictly ascending colors prove sortedness AND
  // distinctness in the same pass that accumulates the weight, so the
  // common already-sorted case touches each entry exactly once.
  {
    bool ascending = true;
    std::int64_t weight = 0;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      DCOLOR_CHECK_MSG(ds[i] >= 0, "negative defect");
      if (i > 0 && cs[i] <= cs[i - 1]) {
        DCOLOR_CHECK_MSG(cs[i] != cs[i - 1], "duplicate color " << cs[i]);
        ascending = false;
        break;
      }
      weight += ds[i] + 1;
    }
    if (ascending) return weight;
  }
  // Slow path: out-of-order input — sort jointly, then validate.
  if (!std::is_sorted(cs.begin(), cs.end())) {
    static thread_local std::vector<std::uint32_t> order;
    static thread_local std::vector<Color> tmp_c;
    static thread_local std::vector<int> tmp_d;
    order.resize(cs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) { return cs[a] < cs[b]; });
    tmp_c.resize(cs.size());
    tmp_d.resize(ds.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      tmp_c[i] = cs[order[i]];
      tmp_d[i] = ds[order[i]];
    }
    std::swap(cs, tmp_c);
    std::swap(ds, tmp_d);
  }
  std::int64_t weight = 0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    DCOLOR_CHECK_MSG(ds[i] >= 0, "negative defect");
    if (i > 0)
      DCOLOR_CHECK_MSG(cs[i] != cs[i - 1], "duplicate color " << cs[i]);
    weight += ds[i] + 1;
  }
  return weight;
}

void PaletteStore::push_scratch(Scratch& scratch) {
  const std::int64_t weight = normalize_scratch(scratch);
  push_back(PaletteView(scratch.colors.data(), scratch.defects.data(),
                        static_cast<std::uint32_t>(scratch.colors.size()),
                        weight));
}

void PaletteStore::merge_append(const PaletteStore& other) {
  // Remap chunk-local palette ids to global ids lazily, in node order:
  // within a chunk nodes appear ascending, so distinct palettes reach
  // intern() in exactly the first-appearance order a serial build over
  // the same nodes would produce.
  std::vector<PaletteId> remap(other.num_palettes(), kNoPalette);
  for (std::size_t v = 0; v < other.size(); ++v) {
    const PaletteId lid = other.palette_id(v);
    if (remap[lid] == kNoPalette) {
      remap[lid] = intern(other.view(lid));
    } else {
      ++dedup_hits_;
    }
    node_palette_.push_back(remap[lid]);
  }
}

namespace detail {

PaletteStore build_palette_store_parallel(
    std::int64_t n, int threads,
    const std::function<void(std::int64_t, PaletteStore::Scratch&)>& fill,
    std::int64_t expected_entries) {
  PaletteStore out;
  out.reserve(static_cast<std::size_t>(n));
  out.reserve_arena(expected_entries);
  if (n <= 0) return out;

  const std::int64_t chunk = PaletteStore::kChunkNodes;
  const auto num_chunks = static_cast<int>((n + chunk - 1) / chunk);
  if (threads <= 1 || num_chunks <= 1) {
    PaletteStore::Scratch scratch;
    for (std::int64_t v = 0; v < n; ++v) {
      scratch.colors.clear();
      scratch.defects.clear();
      fill(v, scratch);
      out.push_scratch(scratch);
    }
    return out;
  }

  // Chunk-local stores, then a sequential merge in chunk order. The merge
  // re-interns each node's palette into the global store following the
  // exact order a serial build would, so the global arena — offsets,
  // first-appearance order, bytes — is identical for every thread count.
  std::vector<PaletteStore> local(static_cast<std::size_t>(num_chunks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_chunks));
  parallel_chunks(num_chunks, threads, [&](int c) {
    try {
      const std::int64_t begin = static_cast<std::int64_t>(c) * chunk;
      const std::int64_t end = std::min<std::int64_t>(n, begin + chunk);
      PaletteStore& store = local[static_cast<std::size_t>(c)];
      store.reserve(static_cast<std::size_t>(end - begin));
      PaletteStore::Scratch scratch;
      for (std::int64_t v = begin; v < end; ++v) {
        scratch.colors.clear();
        scratch.defects.clear();
        fill(v, scratch);
        store.push_scratch(scratch);
      }
    } catch (...) {
      // Pool jobs are noexcept; surface the first failing chunk (in chunk
      // order, for determinism) after the barrier.
      errors[static_cast<std::size_t>(c)] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  for (const PaletteStore& store : local) out.merge_append(store);
  return out;
}

}  // namespace detail

}  // namespace dcolor
