#include "core/solver.h"

#include "graph/coloring_checks.h"

namespace dcolor {

const char* SolverCapabilities::input_name(Input input) noexcept {
  switch (input) {
    case Input::kOldc: return "oldc";
    case Input::kListDefective: return "list_defective";
    case Input::kArbdefective: return "arbdefective";
    case Input::kGraph: return "graph";
  }
  return "unknown";
}

std::string SolverCapabilities::summary() const {
  std::string s = input_name(input);
  const auto add = [&s](bool on, const char* flag) {
    if (on) {
      s += '|';
      s += flag;
    }
  };
  add(oriented, "oriented");
  add(symmetric, "symmetric");
  add(lists, "lists");
  add(defects, "defects");
  add(outputs_orientation, "orients");
  add(proper_output, "proper");
  add(congest, "congest");
  add(!distributed, "sequential");
  add(randomized, "randomized");
  add(dense_kernel, "dense");
  return s;
}

bool Solver::premise_holds(const SolveRequest&) const { return true; }

bool validate_solve(const SolveRequest& req, const SolverCapabilities& caps,
                    const SolveResult& res) {
  switch (caps.input) {
    case SolverCapabilities::Input::kOldc:
      return req.oldc != nullptr && validate_oldc(*req.oldc, res.colors);
    case SolverCapabilities::Input::kListDefective:
      if (req.list_defective == nullptr) return false;
      if (caps.proper_output &&
          !is_proper_coloring(*req.list_defective->graph, res.colors)) {
        return false;
      }
      return validate_list_defective(*req.list_defective, res.colors);
    case SolverCapabilities::Input::kArbdefective: {
      if (req.list_defective == nullptr || !res.has_orientation) return false;
      ArbdefectiveResult arb;
      arb.colors = res.colors;
      arb.orientation = res.orientation;
      return validate_arbdefective(*req.list_defective, arb);
    }
    case SolverCapabilities::Input::kGraph:
      if (req.graph == nullptr) return false;
      if (caps.proper_output) return is_proper_coloring(*req.graph, res.colors);
      for (const Color c : res.colors) {
        if (c == kNoColor) return false;
      }
      return res.colors.size() ==
             static_cast<std::size_t>(req.graph->num_nodes());
  }
  return false;
}

}  // namespace dcolor
