// Section 4.2 + Appendix A: slack reduction for list arbdefective coloring.
//
// Both lemmas trade communication rounds for slack: an instance with small
// slack is split into class subgraphs with large slack, which a
// higher-slack solver handles.
//
//  * Lemma 4.4:  T_A(2, C) <= O(µ²)·T_A(µ, C) + O(log* q).
//    The graph is partitioned by the undirected Lemma 3.4 defective
//    coloring with α = 1/µ (K = O(µ²) classes, per-node class-degree
//    <= deg/µ); the classes are colored sequentially with lists trimmed by
//    the already-colored neighbors; slack 2 guarantees the residual weight
//    stays above deg(v) >= µ·deg_class(v).
//
//  * Lemma A.1:  T_A(1, C) <= O(µ²·logΔ)·T_A(µ, C) + O(log* q).
//    Slack 1 only guarantees residual weight > (uncolored degree), so a
//    node may only be colored while at most half of its neighbors are:
//    each level colors the eligible half and halves the degree of the
//    rest; O(log Δ) levels. (We use the per-node relative threshold
//    "colored <= deg(v)/2"; the paper's absolute Δ/2 threshold has the
//    same effect for full-degree nodes but does not cover low-degree
//    nodes — see DESIGN.md.)
//
// Both combinators are generic in the inner solver, which receives genuine
// P_A(µ, ·) instances (slack measured against the subgraph degree, as in
// Definition 1.1).
#pragma once

#include <functional>

#include "core/instance.h"

namespace dcolor {

/// An algorithm for list arbdefective coloring instances. Implementations
/// must color every node from its list and return an orientation under
/// which every node has at most d_v(x_v) same-colored out-neighbors.
using ArbSolver = std::function<ArbdefectiveResult(const ArbdefectiveInstance&)>;

/// Lemma 4.4. Requires slack > 2 (weight > 2·deg). `solve_slack_mu` is
/// invoked once per partition class with an instance of slack > µ.
ArbdefectiveResult slack_reduction_lemma44(const ArbdefectiveInstance& inst,
                                           double mu,
                                           const ArbSolver& solve_slack_mu);

/// Lemma A.1. Requires slack > 1 (weight > deg).
ArbdefectiveResult slack_reduction_lemmaA1(const ArbdefectiveInstance& inst,
                                           double mu,
                                           const ArbSolver& solve_slack_mu);

}  // namespace dcolor
