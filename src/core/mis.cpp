#include "core/mis.h"

#include <algorithm>

#include "graph/coloring_checks.h"
#include "graph/line_graph.h"
#include "sim/trace.h"
#include "util/check.h"

namespace dcolor {

MisResult mis_from_coloring(const Graph& g, const std::vector<Color>& colors) {
  DCOLOR_CHECK_MSG(is_proper_coloring(g, colors),
                   "mis_from_coloring needs a proper coloring");
  // Sweep classes in ascending color order; within a class all nodes can
  // decide simultaneously (no internal edges).
  std::vector<Color> classes(colors);
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  // Dense per-node ranks via a flat table indexed by the (bounded)
  // precoloring — no hashing; falls back to binary search only if the
  // color values are far sparser than the node count.
  std::vector<std::int64_t> node_rank(n);
  const Color minc = classes.empty() ? 0 : classes.front();
  const Color maxc = classes.empty() ? 0 : classes.back();
  const std::int64_t span = maxc - minc + 1;
  if (span <= static_cast<std::int64_t>(4 * n + 1024)) {
    std::vector<std::int64_t> rank_of(static_cast<std::size_t>(span), -1);
    for (std::size_t i = 0; i < classes.size(); ++i)
      rank_of[static_cast<std::size_t>(classes[i] - minc)] =
          static_cast<std::int64_t>(i);
    for (std::size_t v = 0; v < n; ++v)
      node_rank[v] = rank_of[static_cast<std::size_t>(colors[v] - minc)];
  } else {
    for (std::size_t v = 0; v < n; ++v)
      node_rank[v] = std::lower_bound(classes.begin(), classes.end(),
                                      colors[v]) -
                     classes.begin();
  }

  MisResult result;
  result.in_set.assign(n, false);
  // Counting sort by rank replaces the comparison sort of the sweep order.
  std::vector<std::int64_t> count(classes.size() + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    ++count[static_cast<std::size_t>(node_rank[v]) + 1];
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& slot = count[static_cast<std::size_t>(
        node_rank[static_cast<std::size_t>(v)])];
    order[static_cast<std::size_t>(slot++)] = v;
  }
  for (NodeId v : order) {
    const bool blocked =
        std::any_of(g.neighbors(v).begin(), g.neighbors(v).end(),
                    [&](NodeId u) { return result.in_set[
                        static_cast<std::size_t>(u)]; });
    if (!blocked) result.in_set[static_cast<std::size_t>(v)] = true;
  }
  // One round per color class: each class announces its joins.
  result.metrics.rounds = static_cast<std::int64_t>(classes.size());
  result.metrics.max_message_bits = 1;
  return result;
}

ColorClassMisProgram::ColorClassMisProgram(const Graph& g,
                                           const std::vector<Color>& colors)
    : graph_(&g) {
  DCOLOR_CHECK_MSG(is_proper_coloring(g, colors),
                   "ColorClassMisProgram needs a proper coloring");
  // Dense ranks of the color values; every node can derive them locally
  // once the color space is known, so no extra communication is charged.
  std::vector<Color> classes(colors);
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  const auto n = static_cast<std::size_t>(g.num_nodes());
  rank_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    rank_[v] = std::lower_bound(classes.begin(), classes.end(), colors[v]) -
               classes.begin();
  }
  in_set_.assign(n, 0);
  blocked_.assign(n, 0);
  decided_.assign(n, 0);
}

void ColorClassMisProgram::init(NodeId, Mailbox&) {}

void ColorClassMisProgram::step(NodeId v, int round, Mailbox& mail) {
  const auto vi = static_cast<std::size_t>(v);
  if (!mail.inbox().empty()) blocked_[vi] = 1;  // any message = a join
  if (round == static_cast<int>(rank_[vi]) + 1) {
    if (blocked_[vi] == 0) {
      in_set_[vi] = 1;
      Message m;
      m.push(1, 1);
      broadcast(*graph_, mail, m);
    }
    decided_[vi] = 1;
  }
}

bool ColorClassMisProgram::done(NodeId v) const {
  return decided_[static_cast<std::size_t>(v)] != 0;
}

std::int64_t ColorClassMisProgram::next_active_round(
    NodeId v, std::int64_t after_round) const {
  const std::int64_t turn = rank_[static_cast<std::size_t>(v)] + 1;
  return after_round < turn ? turn : kNoWakeup;
}

MisResult distributed_mis_from_coloring(const Graph& g,
                                        const std::vector<Color>& colors) {
  ColorClassMisProgram program(g, colors);
  PhaseSpan phase("mis_color_class_sweep");
  Network net(g);
  MisResult result;
  result.metrics = net.run(
      program, static_cast<std::int64_t>(g.num_nodes()) + 4);
  result.in_set.assign(static_cast<std::size_t>(g.num_nodes()), false);
  for (std::size_t v = 0; v < program.in_set().size(); ++v) {
    result.in_set[v] = program.in_set()[v] != 0;
  }
  return result;
}

bool validate_mis(const Graph& g, const std::vector<bool>& in_set) {
  if (static_cast<NodeId>(in_set.size()) != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool v_in = in_set[static_cast<std::size_t>(v)];
    bool has_in_neighbor = false;
    for (NodeId u : g.neighbors(v)) {
      const bool u_in = in_set[static_cast<std::size_t>(u)];
      if (v_in && u_in) return false;  // not independent
      has_in_neighbor = has_in_neighbor || u_in;
    }
    if (!v_in && !has_in_neighbor) return false;  // not maximal
  }
  return true;
}

MatchingResult maximal_matching_from_edge_coloring(
    const Graph& g, const std::vector<Color>& edge_colors) {
  const Graph lg = line_graph(g);
  const MisResult mis = mis_from_coloring(lg, edge_colors);
  MatchingResult result;
  result.in_matching = mis.in_set;
  result.metrics = mis.metrics;
  return result;
}

bool validate_maximal_matching(const Graph& g,
                               const std::vector<bool>& in_matching) {
  const auto edges = g.edge_list();
  if (in_matching.size() != edges.size()) return false;
  // Independence: no two selected edges share an endpoint; maximality:
  // every unselected edge touches a selected one.
  std::vector<bool> covered(static_cast<std::size_t>(g.num_nodes()), false);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!in_matching[i]) continue;
    const auto [u, v] = edges[i];
    if (covered[static_cast<std::size_t>(u)] ||
        covered[static_cast<std::size_t>(v)])
      return false;
    covered[static_cast<std::size_t>(u)] = true;
    covered[static_cast<std::size_t>(v)] = true;
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (in_matching[i]) continue;
    const auto [u, v] = edges[i];
    if (!covered[static_cast<std::size_t>(u)] &&
        !covered[static_cast<std::size_t>(v)])
      return false;
  }
  return true;
}

}  // namespace dcolor
