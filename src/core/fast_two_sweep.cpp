#include "core/fast_two_sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "check/invariant_checker.h"
#include "coloring/kuhn_defective.h"
#include "core/two_sweep.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/logstar.h"
#include "util/parallel.h"

namespace dcolor {

ColoringResult fast_two_sweep(const OldcInstance& inst,
                              const std::vector<Color>& initial_coloring,
                              std::int64_t q, int p, double eps) {
  DCOLOR_CHECK(p >= 1);
  DCOLOR_CHECK(eps >= 0.0);
  PhaseSpan phase("fast_two_sweep");
  const Graph& g = *inst.graph;

  // Same lightweight profiling switch the simulator honors: per-stage wall
  // times of the (non-simulated) setup work, printed to stderr.
  using Clk = std::chrono::steady_clock;
  const bool simprof = std::getenv("DCOLOR_SIMPROF") != nullptr;
  auto t0 = Clk::now();
  auto lap = [&](const char* what) {
    if (!simprof) return;
    const auto t1 = Clk::now();
    std::fprintf(
        stderr, "fast_two_sweep %-12s %8.1fms\n", what,
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    t0 = t1;
  };

  // Check Eq. (7) up front (sink nodes only need a non-empty list; see the
  // matching refinement in two_sweep).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& lst = inst.lists[static_cast<std::size_t>(v)];
    if (inst.effective_outdegree(v) == 0) {
      DCOLOR_CHECK_MSG(!lst.empty(), "empty list at sink node " << v);
      continue;
    }
    const double need =
        (1.0 + eps) *
        std::max(static_cast<double>(p),
                 static_cast<double>(lst.size()) / static_cast<double>(p)) *
        inst.beta_v(v);
    DCOLOR_CHECK_MSG(static_cast<double>(lst.weight()) > need,
                     "Eq. (7) fails at node " << v);
  }
  lap("eq7");
  InvariantChecker* const ck = InvariantChecker::current();
  if (ck != nullptr) ck->check_theorem11(inst, p, eps, "fast_two_sweep entry");

  // Line 1 of Algorithm 2: when q is already small (or ε == 0), the plain
  // sweep is at least as fast.
  const double direct_threshold =
      eps == 0.0 ? std::numeric_limits<double>::infinity()
                 : (static_cast<double>(p) / eps) *
                           (static_cast<double>(p) / eps) +
                       log_star(static_cast<std::uint64_t>(q));
  if (eps == 0.0 || static_cast<double>(q) <= direct_threshold) {
    return two_sweep(inst, initial_coloring, q, p);
  }

  // Line 4: defective coloring Ψ with α = ε/p (Lemma 3.4) — undirected
  // for symmetric instances (β_v = deg there).
  const double alpha = eps / static_cast<double>(p);
  const auto psi = [&] {
    PhaseSpan s("defective_precoloring");
    return inst.symmetric
               ? kuhn_defective_undirected(g, initial_coloring,
                                           static_cast<std::uint64_t>(q),
                                           alpha)
               : kuhn_defective_coloring(g, inst.orientation, initial_coloring,
                                         static_cast<std::uint64_t>(q), alpha);
  }();
  lap("psi");
  if (ck != nullptr) {
    ck->check_defective_precoloring(inst, psi.colors, psi.num_colors, alpha,
                                    "defective_precoloring");
  }

  // Line 5: drop Ψ-monochromatic edges and lower the defects by the saved
  // budget ⌊β_v·ε/p⌋. The predicate is symmetric, so the CSR filter keeps
  // each surviving edge in both adjacency directions.
  const Graph sub = g.edge_subgraph_if([&](NodeId a, NodeId b) {
    return psi.colors[static_cast<std::size_t>(a)] !=
           psi.colors[static_cast<std::size_t>(b)];
  });
  lap("subgraph");

  OldcInstance sub_inst;
  sub_inst.graph = &sub;
  sub_inst.color_space = inst.color_space;
  sub_inst.symmetric = inst.symmetric;
  // Symmetric instances re-derive the canonical by-id orientation; oriented
  // ones keep the input directions, restricted to the surviving edges.
  sub_inst.orientation = inst.symmetric
                             ? Orientation::by_id(sub)
                             : Orientation::induced(sub, inst.orientation);
  lap("orientation");
  // Σ|L_v| of the parent instance upper-bounds the rebuilt arena (colors
  // are only ever dropped) — pre-sizing it skips the geometric-growth
  // copies of a large mostly-distinct palette set.
  std::int64_t parent_entries = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    parent_entries +=
        static_cast<std::int64_t>(inst.lists[static_cast<std::size_t>(v)].size());
  }
  sub_inst.lists = PaletteStore::build_parallel(
      g.num_nodes(), default_setup_threads(),
      [&](std::int64_t v, PaletteStore::Scratch& s) {
        // transform() semantics, but filled into reusable scratch: keep
        // the colors whose lowered defect stays >= 0. The source view is
        // sorted, so the scratch needs no re-sort.
        const int saved = static_cast<int>(
            std::floor(inst.beta_v(static_cast<NodeId>(v)) * alpha));
        const PaletteView src = inst.lists[static_cast<std::size_t>(v)];
        const auto cs = src.colors();
        const auto ds = src.defects();
        for (std::size_t i = 0; i < cs.size(); ++i) {
          const int nd = ds[i] - saved;
          if (nd >= 0) {
            s.colors.push_back(cs[i]);
            s.defects.push_back(nd);
          }
        }
      },
      parent_entries);
  lap("lists");

  // Line 6: Two-Sweep on the Ψ-colored subgraph (Ψ is proper there).
  ColoringResult result =
      two_sweep(sub_inst, psi.colors, psi.num_colors, p);
  lap("two_sweep");
  result.metrics += psi.metrics;
  // The sub-instance epilogue above checked the lowered-defect contract;
  // this one checks the ORIGINAL instance the caller handed us.
  if (ck != nullptr) ck->check_oldc(inst, result.colors, "fast_two_sweep");
  return result;
}

}  // namespace dcolor
