// Theorem 1.4 (Section 4.1): list DEFECTIVE coloring from list
// ARBdefective coloring on graphs of neighborhood independence θ.
//
// The bridge is Claim 4.1: a d-arbdefective coloring of a θ-bounded graph
// is automatically (2d+1)·θ-defective, because the same-colored
// neighborhood has an outdegree-d orientation and therefore chromatic
// number <= 2d+1, and no color class inside a neighborhood can exceed θ.
//
// The driver scales every defect down by 7θ (Eq. 10), then runs
// ⌈logΔ⌉+1 iterations i = ⌈logΔ⌉,…,0 with per-iteration uniform defect
// d_i = 2^i − 1. In iteration i every still-uncolored node restricts its
// list to the fresh colors whose residual scaled defect still affords d_i
// (Eq. 12) and joins the round's subgraph H_i when those colors carry
// enough slack (Eq. 13); H_i is colored by the P_A(S, C) solver. Lemma 4.2
// shows every node is colored in some iteration; Lemma 4.3 bounds the
// total same-color neighbors by d_v(x).
#pragma once

#include "core/instance.h"
#include "core/slack_reduction.h"

namespace dcolor {

/// Solves a list defective instance with slack > 21·θ·(⌈logΔ⌉+1)·S
/// (Eq. 9; the Theorem 1.4 statement's 42·θ·logΔ·S majorizes this for
/// Δ >= 2). `solve_pa_s` must solve list arbdefective instances of slack
/// > S over the same color space. Requires d_v(x) <= Δ for every color
/// (defects above Δ are trivially satisfiable; Lemma 4.2's analysis
/// assumes they were clipped).
ColoringResult defective_from_arbdefective(const ListDefectiveInstance& inst,
                                           int theta, std::int64_t S,
                                           const ArbSolver& solve_pa_s);

/// The Eq. (9) threshold 21·θ·(⌈logΔ⌉+1)·S for a given graph Δ (paper
/// convention Δ >= 2).
std::int64_t theorem14_slack_requirement(int delta_paper, int theta,
                                         std::int64_t S);

}  // namespace dcolor
