#include "core/defective_from_arbdefective.h"

#include <algorithm>
#include <string>

#include "core/sequential_coloring.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/math.h"

namespace dcolor {

std::int64_t theorem14_slack_requirement(int delta_paper, int theta,
                                         std::int64_t S) {
  const std::int64_t log_delta =
      ceil_log2(static_cast<std::uint64_t>(std::max(2, delta_paper)));
  return 21 * static_cast<std::int64_t>(theta) * (log_delta + 1) * S;
}

ColoringResult defective_from_arbdefective(const ListDefectiveInstance& inst,
                                           int theta, std::int64_t S,
                                           const ArbSolver& solve_pa_s) {
  PhaseSpan phase("defective_from_arbdefective");
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DCOLOR_CHECK(theta >= 1);
  DCOLOR_CHECK(S >= 1);
  const int delta = g.delta_paper();
  const std::int64_t requirement = theorem14_slack_requirement(delta, theta, S);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& lst = inst.lists[static_cast<std::size_t>(v)];
    DCOLOR_CHECK_MSG(lst.weight() > requirement * g.degree(v),
                     "Eq. (9) fails at node " << v << ": weight "
                                              << lst.weight() << " <= "
                                              << requirement << "·deg");
  }

  ColoringResult result;
  result.colors.assign(n, kNoColor);

  // Colors with d_v(x) >= deg(v) are trivially safe — the node cannot have
  // more conflicting neighbors than its degree (the paper's remark below
  // Eq. 12). Nodes holding such a color take it immediately; the remaining
  // instance then satisfies d_v(x) < deg(v) <= Δ, which Lemma 4.2's
  // analysis assumes. One announcement round.
  {
    bool any_trivial = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto& lst = inst.lists[vi];
      for (std::size_t i = 0; i < lst.size(); ++i) {
        if (lst.defect(i) >= g.degree(v)) {
          result.colors[vi] = lst.color(i);
          any_trivial = true;
          break;
        }
      }
    }
    if (any_trivial) result.metrics.rounds += 1;
  }

  // Eq. (10): d'_v(x) = ⌈(d_v(x)+1)/(7θ)⌉ − 1, tracked as a residual that
  // colored neighbors of color x decrement (a_v(x) bookkeeping).
  struct NodeState {
    std::vector<Color> colors;
    std::vector<std::int64_t> residual;  // d'_v(x) − a_v(x); may go negative
    std::vector<bool> burned;            // x was in some earlier L_{v,i}
  };
  std::vector<NodeState> state(n);
  for (std::size_t vi = 0; vi < n; ++vi) {
    const auto& lst = inst.lists[vi];
    const auto cs = lst.colors();
    state[vi].colors.assign(cs.begin(), cs.end());
    state[vi].residual.resize(lst.size());
    state[vi].burned.assign(lst.size(), false);
    for (std::size_t i = 0; i < lst.size(); ++i) {
      state[vi].residual[i] =
          ceil_div(lst.defect(i) + 1, 7 * static_cast<std::int64_t>(theta)) - 1;
    }
  }

  std::vector<int> colored_neighbors(n, 0);

  // Propagate the trivially pre-colored nodes into the bookkeeping.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (result.colors[vi] == kNoColor) continue;
    const Color c = result.colors[vi];
    for (NodeId u : g.neighbors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      ++colored_neighbors[ui];
      if (result.colors[ui] != kNoColor) continue;
      auto& st = state[ui];
      const auto it = std::lower_bound(st.colors.begin(), st.colors.end(), c);
      if (it != st.colors.end() && *it == c) {
        --st.residual[static_cast<std::size_t>(it - st.colors.begin())];
      }
    }
  }

  // Round complexity is the round in which the LAST node outputs its color
  // (Section 2); iteration slots after that don't delay anyone.
  std::int64_t rounds_at_last_commit = result.metrics.rounds;

  const int top = ceil_log2(static_cast<std::uint64_t>(delta));
  for (int iter = top; iter >= 0; --iter) {
    PhaseSpan iter_phase("dfa_iteration_" + std::to_string(iter));
    const std::int64_t d_i = (std::int64_t{1} << iter) - 1;

    // Per uncolored node: iteration list L_{v,i} = fresh colors whose
    // residual still affords d_i (Eq. 12). Colors burn on first inclusion.
    std::vector<std::vector<Color>> iter_list(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (result.colors[vi] != kNoColor) continue;
      auto& st = state[vi];
      for (std::size_t i = 0; i < st.colors.size(); ++i) {
        if (st.burned[i]) continue;
        if (st.residual[i] >= d_i) {
          st.burned[i] = true;
          iter_list[vi].push_back(st.colors[i]);
        }
      }
    }

    // Eq. (13): membership in H_i requires the iteration list to carry
    // slack S against the still-uncolored degree.
    std::vector<NodeId> members;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (result.colors[vi] != kNoColor) continue;
      const std::int64_t weight =
          static_cast<std::int64_t>(iter_list[vi].size()) * (d_i + 1);
      const std::int64_t uncolored_deg = g.degree(v) - colored_neighbors[vi];
      if (weight > S * uncolored_deg) members.push_back(v);
    }
    if (members.empty()) {
      result.metrics.rounds += 1;  // the iteration slot still elapses
      continue;
    }

    const auto hsub = g.induced_subgraph(members);
    const Graph& hg = hsub.graph;
    ArbdefectiveInstance sub;
    sub.graph = &hg;
    sub.color_space = inst.color_space;
    sub.lists.reserve(members.size());
    for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
      const NodeId orig = hsub.to_orig[static_cast<std::size_t>(hv)];
      sub.lists.push_back(ColorList::uniform(
          iter_list[static_cast<std::size_t>(orig)], static_cast<int>(d_i)));
    }
    const ArbdefectiveResult iter_result = solve_pa_s(sub);
    DCOLOR_CHECK_MSG(validate_arbdefective(sub, iter_result),
                     "P_A(S,C) solver returned an invalid result in "
                     "iteration " << iter);
    result.metrics += iter_result.metrics;
    result.metrics.rounds += 1;  // announcing the new colors
    rounds_at_last_commit = result.metrics.rounds;

    // Commit and update the a_v(x, ·) residuals of uncolored neighbors.
    for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
      const NodeId orig = hsub.to_orig[static_cast<std::size_t>(hv)];
      result.colors[static_cast<std::size_t>(orig)] =
          iter_result.colors[static_cast<std::size_t>(hv)];
    }
    for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
      const NodeId orig = hsub.to_orig[static_cast<std::size_t>(hv)];
      const Color c = result.colors[static_cast<std::size_t>(orig)];
      for (NodeId u : g.neighbors(orig)) {
        const auto ui = static_cast<std::size_t>(u);
        ++colored_neighbors[ui];
        if (result.colors[ui] != kNoColor) continue;
        auto& st = state[ui];
        const auto it =
            std::lower_bound(st.colors.begin(), st.colors.end(), c);
        if (it != st.colors.end() && *it == c) {
          --st.residual[static_cast<std::size_t>(it - st.colors.begin())];
        }
      }
    }
  }

  DCOLOR_CHECK_MSG(all_colored(result.colors),
                   "Lemma 4.2 violated: some node was never colored "
                   "(slack requirement too tight or θ wrong)");
  result.metrics.rounds = rounds_at_last_commit;
  return result;
}

}  // namespace dcolor
