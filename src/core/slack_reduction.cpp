#include "core/slack_reduction.h"

#include <algorithm>

#include "coloring/kuhn_defective.h"
#include "coloring/linial.h"
#include "core/sequential_coloring.h"
#include "util/check.h"
#include "util/math.h"

namespace dcolor {

namespace {

/// Shared driver: colors the members of one class through the inner
/// solver, commits the result, and maintains trimming/stamps/metrics.
/// `members` are original node ids, all currently uncolored.
void color_class(const Graph& g, const ArbdefectiveInstance& inst,
                 const std::vector<NodeId>& members,
                 const ArbSolver& solve_inner, std::vector<TrimmedList>& lists,
                 std::vector<Color>& colors, StampOrientationBuilder& stamps,
                 std::int64_t phase, RoundMetrics& metrics) {
  const auto hsub = g.induced_subgraph(members);
  const Graph& hg = hsub.graph;

  ArbdefectiveInstance sub;
  sub.graph = &hg;
  sub.color_space = inst.color_space;
  sub.lists.reserve(members.size());
  for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
    const NodeId orig = hsub.to_orig[static_cast<std::size_t>(hv)];
    sub.lists.push_back(
        lists[static_cast<std::size_t>(orig)].to_color_list());
  }

  const ArbdefectiveResult res = solve_inner(sub);
  DCOLOR_CHECK_MSG(validate_arbdefective(sub, res),
                   "inner arbdefective solver returned an invalid result");
  metrics += res.metrics;

  for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
    const auto hvi = static_cast<std::size_t>(hv);
    const NodeId orig = hsub.to_orig[hvi];
    colors[static_cast<std::size_t>(orig)] = res.colors[hvi];
    stamps.set_stamp(orig, phase);
    for (NodeId hu : res.orientation.out_neighbors(hv)) {
      stamps.add_same_phase_arc(orig,
                                hsub.to_orig[static_cast<std::size_t>(hu)]);
    }
  }
  // Trim the lists of uncolored neighbors.
  for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
    const NodeId orig = hsub.to_orig[static_cast<std::size_t>(hv)];
    const Color c = colors[static_cast<std::size_t>(orig)];
    for (NodeId u : g.neighbors(orig)) {
      if (colors[static_cast<std::size_t>(u)] == kNoColor) {
        lists[static_cast<std::size_t>(u)].on_neighbor_colored(c);
      }
    }
  }
}

}  // namespace

ArbdefectiveResult slack_reduction_lemma44(const ArbdefectiveInstance& inst,
                                           double mu,
                                           const ArbSolver& solve_slack_mu) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DCOLOR_CHECK(mu >= 1.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DCOLOR_CHECK_MSG(
        inst.lists[static_cast<std::size_t>(v)].weight() > 2 * g.degree(v),
        "Lemma 4.4 requires slack > 2; fails at node " << v);
  }

  ArbdefectiveResult result;
  result.colors.assign(n, kNoColor);

  // Initial coloring + the Lemma 3.4 defective partition with α = 1/µ.
  const Orientation id_orientation = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, id_orientation);
  result.metrics += linial.metrics;
  const auto psi = kuhn_defective_undirected(
      g, linial.colors, static_cast<std::uint64_t>(linial.num_colors),
      1.0 / mu);
  result.metrics += psi.metrics;

  std::vector<TrimmedList> lists(n);
  for (std::size_t vi = 0; vi < n; ++vi)
    lists[vi] = TrimmedList::from(inst.lists[vi]);
  StampOrientationBuilder stamps(g.num_nodes());

  // Bucket members per class up front: the class count is O(µ²) and may
  // vastly exceed n, so the sweep must cost O(n + #classes).
  std::vector<std::vector<NodeId>> buckets(
      static_cast<std::size_t>(psi.num_colors));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    buckets[static_cast<std::size_t>(psi.colors[static_cast<std::size_t>(v)])]
        .push_back(v);
  for (std::int64_t cls = 0; cls < psi.num_colors; ++cls) {
    const auto& members = buckets[static_cast<std::size_t>(cls)];
    if (members.empty()) {
      result.metrics.rounds += 1;  // the schedule slot still elapses
      continue;
    }
    color_class(g, inst, members, solve_slack_mu, lists, result.colors,
                stamps, cls, result.metrics);
  }

  DCOLOR_CHECK(all_colored(result.colors));
  result.orientation = stamps.build(g);
  return result;
}

ArbdefectiveResult slack_reduction_lemmaA1(const ArbdefectiveInstance& inst,
                                           double mu,
                                           const ArbSolver& solve_slack_mu) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DCOLOR_CHECK(mu >= 1.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DCOLOR_CHECK_MSG(
        inst.lists[static_cast<std::size_t>(v)].weight() > g.degree(v),
        "Lemma A.1 requires slack > 1; fails at node " << v);
  }

  ArbdefectiveResult result;
  result.colors.assign(n, kNoColor);

  const Orientation id_orientation = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, id_orientation);
  result.metrics += linial.metrics;

  std::vector<TrimmedList> lists(n);
  for (std::size_t vi = 0; vi < n; ++vi)
    lists[vi] = TrimmedList::from(inst.lists[vi]);
  StampOrientationBuilder stamps(g.num_nodes());
  std::int64_t phase = 0;

  std::vector<NodeId> uncolored;
  uncolored.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) uncolored.push_back(v);

  const int max_levels = 2 * ceil_log2(static_cast<std::uint64_t>(
                                 std::max(2, g.max_degree()))) +
                         4;
  int level = 0;
  while (!uncolored.empty()) {
    DCOLOR_CHECK_MSG(++level <= max_levels,
                     "Lemma A.1 degree-halving failed to make progress");
    const auto sub = g.induced_subgraph(uncolored);
    const Graph& sg = sub.graph;
    const auto sn = static_cast<std::size_t>(sg.num_nodes());

    std::vector<Color> sub_base(sn);
    for (std::size_t i = 0; i < sn; ++i)
      sub_base[i] = linial.colors[static_cast<std::size_t>(sub.to_orig[i])];
    std::vector<int> d0(sn);
    for (NodeId v = 0; v < sg.num_nodes(); ++v)
      d0[static_cast<std::size_t>(v)] = sg.degree(v);
    std::vector<int> colored_this_level(sn, 0);

    // Defective partition with ε = 1/(2µ) (Lemma A.1's tightened ε).
    const auto psi = kuhn_defective_undirected(
        sg, sub_base, static_cast<std::uint64_t>(linial.num_colors),
        1.0 / (2.0 * mu));
    result.metrics += psi.metrics;

    for (std::int64_t cls = 0; cls < psi.num_colors; ++cls) {
      std::vector<NodeId> members;  // original ids
      for (NodeId v = 0; v < sg.num_nodes(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        if (psi.colors[vi] != cls) continue;
        const NodeId orig = sub.to_orig[vi];
        if (result.colors[static_cast<std::size_t>(orig)] != kNoColor)
          continue;
        if (2 * colored_this_level[vi] > d0[vi]) continue;
        members.push_back(orig);
      }
      if (members.empty()) {
        result.metrics.rounds += 1;
        continue;
      }
      color_class(g, inst, members, solve_slack_mu, lists, result.colors,
                  stamps, phase++, result.metrics);
      // Track per-level colored counts for the eligibility rule.
      for (NodeId orig : members) {
        for (NodeId u : g.neighbors(orig)) {
          const NodeId su = sub.to_sub[static_cast<std::size_t>(u)];
          if (su >= 0) ++colored_this_level[static_cast<std::size_t>(su)];
        }
      }
    }

    std::vector<NodeId> still;
    for (NodeId v : uncolored) {
      if (result.colors[static_cast<std::size_t>(v)] == kNoColor)
        still.push_back(v);
    }
    uncolored = std::move(still);
  }

  result.orientation = stamps.build(g);
  return result;
}

}  // namespace dcolor
