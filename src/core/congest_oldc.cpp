#include "core/congest_oldc.h"

#include <cmath>

#include "check/invariant_checker.h"
#include "core/color_space_reduction.h"
#include "core/fast_two_sweep.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/math.h"

namespace dcolor {

ColoringResult congest_oldc(const OldcInstance& inst,
                            const std::vector<Color>& initial_coloring,
                            std::int64_t q) {
  PhaseSpan phase("congest_oldc");
  const Graph& g = *inst.graph;
  DCOLOR_CHECK(inst.color_space >= 1);

  // Premise: weight >= 3·√C·β_v (sinks only need a non-empty list).
  const double sqrt_c = std::sqrt(static_cast<double>(inst.color_space));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& lst = inst.lists[static_cast<std::size_t>(v)];
    if (inst.effective_outdegree(v) == 0) {
      DCOLOR_CHECK_MSG(!lst.empty(), "empty list at sink node " << v);
      continue;
    }
    DCOLOR_CHECK_MSG(
        static_cast<double>(lst.weight()) >=
            3.0 * sqrt_c * inst.beta_v(v),
        "Theorem 1.2 premise fails at node " << v << ": weight "
                                             << lst.weight());
  }
  InvariantChecker* const ck = InvariantChecker::current();
  if (ck != nullptr) ck->check_theorem12(inst, "congest_oldc entry");

  // L = ⌈log₄ C⌉ levels, ε = 1/(3L), base = Fast-Two-Sweep(p=2, ε).
  int levels = 1;
  {
    __int128 cap = 4;
    while (cap < inst.color_space) {
      cap *= 4;
      ++levels;
    }
  }
  const double eps = 1.0 / (3.0 * levels);
  const int p = 2;  // ⌈√λ⌉ with λ = 4
  const double kappa = (1.0 + eps) * p;

  const OldcSolver base = [&](const OldcInstance& sub,
                              const std::vector<Color>& initial,
                              std::int64_t sub_q) {
    return fast_two_sweep(sub, initial, sub_q, p, eps);
  };
  ColoringResult result;
  {
    // Arm the engine-level per-message cap for the whole pipeline: in
    // throw mode any single message wider than the Theorem 1.2 budget
    // fails the run at the sending round, not post hoc.
    const InvariantChecker::BandwidthGuard guard(
        ck, InvariantChecker::theorem12_bit_budget(q, inst.color_space));
    result = color_space_reduction(inst, initial_coloring, q, /*lambda=*/4,
                                   kappa, base);
  }
  if (ck != nullptr) {
    ck->check_oldc(inst, result.colors, "congest_oldc");
    ck->check_message_bits(result.metrics, q, inst.color_space,
                           "congest_oldc");
  }
  return result;
}

}  // namespace dcolor
