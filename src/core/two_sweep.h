// Algorithm 1: the Two-Sweep list defective coloring algorithm
// (Theorem 1.1 with ε = 0; Section 3.1 of the paper).
//
// Given an input proper q-coloring and an edge orientation, the algorithm
// makes two sweeps over the q color classes:
//   Phase I  (colors ascending):  node v picks S_v ⊆ L_v, |S_v| ≤ p,
//     maximizing Σ_{x∈S_v}(d_v(x) − k_v(x)) where k_v(x) counts
//     already-committed out-neighbors u (initial color < v's) with x ∈ S_u;
//     v broadcasts S_v.
//   Phase II (colors descending): node v picks x_v ∈ S_v with
//     k_v(x_v) + r_v(x_v) ≤ d_v(x_v), where r_v(x) counts out-neighbors
//     with larger initial color that already committed to x; broadcasts x_v.
//
// Precondition (Eq. 2):  Σ_{x∈L_v}(d_v(x)+1) > max{p, |L_v|/p}·β_v.
// Guarantees: a valid OLDC in O(q) rounds; nodes exchange their initial
// color once and later a list of ≤ p colors (Lemma 3.3).
#pragma once

#include <span>
#include <vector>

#include "core/instance.h"
#include "core/run_context.h"
#include "sim/network.h"

namespace dcolor {

/// Phase-I selection rule — the ablation axis of experiment E13.
enum class TwoSweepSelection {
  kBestMargin,    ///< Algorithm 1: top-p colors by d_v(x) − k_v(x)
  kRandomSubset,  ///< ablation: a uniformly random p-subset of L_v
  kOneSweep,      ///< ablation: ONE sweep — commit argmax d_v(x) − k_v(x)
                  ///  immediately; no Phase II (defects may overshoot)
};

struct TwoSweepOptions {
  TwoSweepSelection selection = TwoSweepSelection::kBestMargin;
  std::uint64_t selection_seed = 0;  ///< for kRandomSubset
};

/// Distributed Two-Sweep run through the message-passing simulator.
///
/// `initial_coloring` must be a proper coloring with values in [0, q).
/// Checks Eq. (2) per node up front and throws CheckError otherwise,
/// unless the active RunContext sets `skip_precondition_check` (Phase II
/// still verifies every node found a color). The context also names the
/// simulator thread count the run executes under (via RunScope at the
/// call site or ctx-free defaults).
ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p, RunContext& ctx,
                         const TwoSweepOptions& options = {});

/// Context-free convenience (defaults: precondition check ON). The bool
/// form mirrors the pre-RunContext signature for callers that only ever
/// toggled the precondition check (ablation benches, mutation tests).
ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p,
                         bool skip_precondition_check = false);

/// Variant with explicit options (ablations, E13), default context.
ColoringResult two_sweep_ex(const OldcInstance& inst,
                            const std::vector<Color>& initial_coloring,
                            std::int64_t q, int p,
                            const TwoSweepOptions& options);

/// The SyncAlgorithm behind `two_sweep`, exposed for white-box tests of
/// the Phase-I invariants (Eq. 3 and Eq. 4).
///
/// Doubles as its own dense-round kernel (sim/engine.h): all three
/// message kinds are broadcasts whose payloads are recoverable from
/// per-node state (initial color, S_v, final color), so the vector path
/// keeps no message copies at all — only a per-node pending-type lane.
/// Delivery is SENDER-side scatter: each retiring broadcast walks the
/// arcs pointing at its sender and applies the k_v/r_v/heard_from
/// updates right there, which keeps the (few) senders' payload state
/// cache-hot instead of re-fetching it per receiver, never scans a
/// neighborhood that received nothing, and leaves only the turn nodes
/// for step_batch (ingest-only receivers need no step: their done()/
/// wake-up state cannot change outside a turn). Both ingest kinds are
/// order-independent within a round (S_u is immutable after u's Phase-I
/// turn; r_v increments never affect later scans; the k_v guard
/// s_count == 0 is constant during a delivery), so scatter order is
/// bit-identical to inbox-order ingestion.
class TwoSweepProgram final : public SyncAlgorithm, public DenseKernel {
 public:
  TwoSweepProgram(const OldcInstance& inst,
                  const std::vector<Color>& initial_coloring, std::int64_t q,
                  int p, TwoSweepOptions options = {});

  void init(NodeId v, Mailbox& mail) override;
  void step(NodeId v, int round, Mailbox& mail) override;
  bool done(NodeId v) const override;

  /// Sparse scheduling: node v acts in exactly two rounds — its Phase-I
  /// turn (initial color + 1) and its Phase-II turn (2q − initial color);
  /// between turns it only needs to be stepped when messages arrive.
  std::int64_t next_active_round(NodeId v,
                                 std::int64_t after_round) const override;

  DenseKernel* dense_kernel() override { return this; }

  // ---- DenseKernel (see sim/engine.h for the contract) ----------------
  bool absorb(std::span<const Mailbox::Outgoing> queued) override;
  void spill(std::vector<Mailbox::Outgoing>& sink) override;
  std::int64_t pending_messages() const override { return pending_msgs_; }
  void deliver(std::int64_t round, std::vector<NodeId>& touched) override;
  void step_batch(std::int64_t round, std::span<const NodeId> active,
                  std::size_t lo, std::size_t hi, int message_bit_cap,
                  DenseChunk& chunk) override;
  void commit_senders(std::span<const NodeId> senders) override;

  /// Phase-I set S_v of node v (valid after the run).
  std::span<const Color> phase1_set(NodeId v) const {
    const auto vi = static_cast<std::size_t>(v);
    return {sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_),
            static_cast<std::size_t>(node_[vi].s_count)};
  }

  /// k_v(x) as accumulated by node v, aligned with its ColorList order.
  std::span<const int> k_counts(NodeId v) const {
    const auto vi = static_cast<std::size_t>(v);
    return {k_flat_.data() + k_off_[vi],
            static_cast<std::size_t>(k_off_[vi + 1] - k_off_[vi])};
  }

  /// |N_>(v)| = β_v − |N_<(v)| as known to node v at its Phase-I turn.
  int n_greater(NodeId v) const {
    return node_[static_cast<std::size_t>(v)].n_greater;
  }

  std::vector<Color> final_colors() const;

  std::int64_t compute_ops() const noexcept;

 private:
  int color_bits() const noexcept;
  Message rebuild_message(NodeId v, std::int8_t type) const;
  int message_bits(NodeId v, std::int8_t type) const noexcept;
  /// Shared Phase-I selection: fills S_v / r_v / s_count / n_greater and
  /// tallies selection ops; returns |S_v| (also commits for kOneSweep).
  std::size_t phase1_turn(NodeId v);
  /// Shared Phase-II commit: margin argmax over S_v; sets final_color.
  void phase2_turn(NodeId v);

  const OldcInstance* inst_;
  const std::vector<Color>* initial_;
  std::int64_t q_;
  int p_;
  TwoSweepOptions options_;

  // Per-node state, flattened. step(v, ...) only touches index v (plus the
  // inbox); everything a step reads sits in one record plus flat CSR /
  // stride-p slices, so an ingest touches a couple of cache lines instead
  // of chasing per-node vector headers.
  struct NodeState {
    std::int32_t heard_from = 0;   ///< # out-neighbors' S_u received
    std::int32_t n_greater = 0;    ///< β_v − |N_<(v)|, set at Phase-I turn
    std::int32_t s_count = 0;      ///< |S_v|; 0 until the Phase-I turn
    Color final_color = kNoColor;  ///< Phase-II commitment
    std::int64_t ops = 0;          ///< local compute-op tally; lives here
                                   ///  so an ingest pays no extra cache
                                   ///  line (step(v) is node-local, so
                                   ///  parallel rounds stay race-free)
  };
  std::vector<NodeState> node_;
  /// Per-node palette views resolved once at construction: the ingest and
  /// turn loops hit lists at random node order, and going through
  /// PaletteStore each time costs two extra dependent cache misses
  /// (palette-id map + palette record) before the color data.
  std::vector<PaletteView> list_view_;
  std::vector<std::int64_t> k_off_;  ///< CSR offsets into k_flat_ (n+1)
  std::vector<int> k_flat_;          ///< k_v, aligned with lists[v] order
  /// S_v and r_v interleaved per node — [v·2p, v·2p + p) holds the set,
  /// [v·2p + p, v·2p + 2p) the per-color decision counts — so a Phase-II
  /// ingest touches one cache line instead of two parallel arrays.
  std::vector<std::int64_t> sr_flat_;

  // ---- dense-kernel lanes (meaningful only under the vector engine) ----
  // A "send" is one pending-type mark; payloads live in node_ / sr_flat_.
  // deliver() retires the marks by scatter-ingesting into the receivers
  // (serial, before any step_batch of the round runs), so a round never
  // races its own sends against its ingests.
  std::vector<NodeId> pending_senders_;     ///< queued broadcasts, in
                                            ///  scalar-equivalent order
  std::vector<std::int8_t> pending_type_;   ///< per node, message tag
                                            ///  (+1; 0 = not pending)
  std::int64_t pending_msgs_ = 0;           ///< Σ deg over pending senders
  /// Flattened scatter work lists rebuilt each dense round. Expanding the
  /// (sender → receivers) walk into flat items first gives the ingest
  /// loops a long iteration space, so software prefetch can run 4–12
  /// items ahead — receiver lists themselves are only ~Δ long, far too
  /// short a horizon to hide a cache miss inside.
  struct P1Item {
    NodeId v;  ///< receiver
    NodeId u;  ///< sender (S_u / |S_u| read from node_ / sr_flat_)
  };
  struct DecItem {
    NodeId v;  ///< receiver
    Color x;   ///< sender's committed color
  };
  std::vector<P1Item> scatter_p1_;
  std::vector<DecItem> scatter_dec_;
};

}  // namespace dcolor
