// Algorithm 1: the Two-Sweep list defective coloring algorithm
// (Theorem 1.1 with ε = 0; Section 3.1 of the paper).
//
// Given an input proper q-coloring and an edge orientation, the algorithm
// makes two sweeps over the q color classes:
//   Phase I  (colors ascending):  node v picks S_v ⊆ L_v, |S_v| ≤ p,
//     maximizing Σ_{x∈S_v}(d_v(x) − k_v(x)) where k_v(x) counts
//     already-committed out-neighbors u (initial color < v's) with x ∈ S_u;
//     v broadcasts S_v.
//   Phase II (colors descending): node v picks x_v ∈ S_v with
//     k_v(x_v) + r_v(x_v) ≤ d_v(x_v), where r_v(x) counts out-neighbors
//     with larger initial color that already committed to x; broadcasts x_v.
//
// Precondition (Eq. 2):  Σ_{x∈L_v}(d_v(x)+1) > max{p, |L_v|/p}·β_v.
// Guarantees: a valid OLDC in O(q) rounds; nodes exchange their initial
// color once and later a list of ≤ p colors (Lemma 3.3).
#pragma once

#include <vector>

#include "core/instance.h"
#include "sim/network.h"

namespace dcolor {

/// Phase-I selection rule — the ablation axis of experiment E13.
enum class TwoSweepSelection {
  kBestMargin,    ///< Algorithm 1: top-p colors by d_v(x) − k_v(x)
  kRandomSubset,  ///< ablation: a uniformly random p-subset of L_v
  kOneSweep,      ///< ablation: ONE sweep — commit argmax d_v(x) − k_v(x)
                  ///  immediately; no Phase II (defects may overshoot)
};

struct TwoSweepOptions {
  TwoSweepSelection selection = TwoSweepSelection::kBestMargin;
  std::uint64_t selection_seed = 0;  ///< for kRandomSubset
  bool skip_precondition_check = false;
};

/// Distributed Two-Sweep run through the message-passing simulator.
///
/// `initial_coloring` must be a proper coloring with values in [0, q).
/// Checks Eq. (2) per node up front (throws CheckError otherwise, unless
/// `skip_precondition_check`; Phase II still verifies it found a color).
ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p,
                         bool skip_precondition_check = false);

/// Variant with explicit options (ablations, E13).
ColoringResult two_sweep_ex(const OldcInstance& inst,
                            const std::vector<Color>& initial_coloring,
                            std::int64_t q, int p,
                            const TwoSweepOptions& options);

/// The SyncAlgorithm behind `two_sweep`, exposed for white-box tests of
/// the Phase-I invariants (Eq. 3 and Eq. 4).
class TwoSweepProgram final : public SyncAlgorithm {
 public:
  TwoSweepProgram(const OldcInstance& inst,
                  const std::vector<Color>& initial_coloring, std::int64_t q,
                  int p, TwoSweepOptions options = {});

  void init(NodeId v, Mailbox& mail) override;
  void step(NodeId v, int round, Mailbox& mail) override;
  bool done(NodeId v) const override;

  /// Phase-I set S_v of node v (valid after the run).
  const std::vector<Color>& phase1_set(NodeId v) const {
    return s_sets_[static_cast<std::size_t>(v)];
  }

  /// k_v(x) as accumulated by node v, aligned with its ColorList order.
  const std::vector<int>& k_counts(NodeId v) const {
    return k_[static_cast<std::size_t>(v)];
  }

  /// |N_>(v)| = β_v − |N_<(v)| as known to node v at its Phase-I turn.
  int n_greater(NodeId v) const {
    return n_greater_[static_cast<std::size_t>(v)];
  }

  const std::vector<Color>& final_colors() const { return final_color_; }

  std::int64_t compute_ops() const noexcept { return compute_ops_; }

 private:
  int color_bits() const noexcept;

  const OldcInstance* inst_;
  const std::vector<Color>* initial_;
  std::int64_t q_;
  int p_;
  TwoSweepOptions options_;

  // Per-node state. step(v, ...) only touches index v (plus inbox).
  std::vector<std::vector<Color>> s_sets_;
  std::vector<std::vector<int>> k_;          // aligned with lists[v] order
  std::vector<int> heard_from_;              // # out-neighbors' S_u received
  std::vector<int> n_greater_;
  std::vector<std::vector<int>> r_;          // aligned with s_sets_[v]
  std::vector<Color> final_color_;
  std::int64_t compute_ops_ = 0;
};

}  // namespace dcolor
