// Algorithm 1: the Two-Sweep list defective coloring algorithm
// (Theorem 1.1 with ε = 0; Section 3.1 of the paper).
//
// Given an input proper q-coloring and an edge orientation, the algorithm
// makes two sweeps over the q color classes:
//   Phase I  (colors ascending):  node v picks S_v ⊆ L_v, |S_v| ≤ p,
//     maximizing Σ_{x∈S_v}(d_v(x) − k_v(x)) where k_v(x) counts
//     already-committed out-neighbors u (initial color < v's) with x ∈ S_u;
//     v broadcasts S_v.
//   Phase II (colors descending): node v picks x_v ∈ S_v with
//     k_v(x_v) + r_v(x_v) ≤ d_v(x_v), where r_v(x) counts out-neighbors
//     with larger initial color that already committed to x; broadcasts x_v.
//
// Precondition (Eq. 2):  Σ_{x∈L_v}(d_v(x)+1) > max{p, |L_v|/p}·β_v.
// Guarantees: a valid OLDC in O(q) rounds; nodes exchange their initial
// color once and later a list of ≤ p colors (Lemma 3.3).
#pragma once

#include <span>
#include <vector>

#include "core/instance.h"
#include "core/run_context.h"
#include "sim/network.h"

namespace dcolor {

/// Phase-I selection rule — the ablation axis of experiment E13.
enum class TwoSweepSelection {
  kBestMargin,    ///< Algorithm 1: top-p colors by d_v(x) − k_v(x)
  kRandomSubset,  ///< ablation: a uniformly random p-subset of L_v
  kOneSweep,      ///< ablation: ONE sweep — commit argmax d_v(x) − k_v(x)
                  ///  immediately; no Phase II (defects may overshoot)
};

struct TwoSweepOptions {
  TwoSweepSelection selection = TwoSweepSelection::kBestMargin;
  std::uint64_t selection_seed = 0;  ///< for kRandomSubset
};

/// Distributed Two-Sweep run through the message-passing simulator.
///
/// `initial_coloring` must be a proper coloring with values in [0, q).
/// Checks Eq. (2) per node up front and throws CheckError otherwise,
/// unless the active RunContext sets `skip_precondition_check` (Phase II
/// still verifies every node found a color). The context also names the
/// simulator thread count the run executes under (via RunScope at the
/// call site or ctx-free defaults).
ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p, RunContext& ctx,
                         const TwoSweepOptions& options = {});

/// Context-free convenience (defaults: precondition check ON). The bool
/// form mirrors the pre-RunContext signature for callers that only ever
/// toggled the precondition check (ablation benches, mutation tests).
ColoringResult two_sweep(const OldcInstance& inst,
                         const std::vector<Color>& initial_coloring,
                         std::int64_t q, int p,
                         bool skip_precondition_check = false);

/// Variant with explicit options (ablations, E13), default context.
ColoringResult two_sweep_ex(const OldcInstance& inst,
                            const std::vector<Color>& initial_coloring,
                            std::int64_t q, int p,
                            const TwoSweepOptions& options);

/// The SyncAlgorithm behind `two_sweep`, exposed for white-box tests of
/// the Phase-I invariants (Eq. 3 and Eq. 4).
class TwoSweepProgram final : public SyncAlgorithm {
 public:
  TwoSweepProgram(const OldcInstance& inst,
                  const std::vector<Color>& initial_coloring, std::int64_t q,
                  int p, TwoSweepOptions options = {});

  void init(NodeId v, Mailbox& mail) override;
  void step(NodeId v, int round, Mailbox& mail) override;
  bool done(NodeId v) const override;

  /// Sparse scheduling: node v acts in exactly two rounds — its Phase-I
  /// turn (initial color + 1) and its Phase-II turn (2q − initial color);
  /// between turns it only needs to be stepped when messages arrive.
  std::int64_t next_active_round(NodeId v,
                                 std::int64_t after_round) const override;

  /// Phase-I set S_v of node v (valid after the run).
  std::span<const Color> phase1_set(NodeId v) const {
    const auto vi = static_cast<std::size_t>(v);
    return {sr_flat_.data() + vi * 2 * static_cast<std::size_t>(p_),
            static_cast<std::size_t>(node_[vi].s_count)};
  }

  /// k_v(x) as accumulated by node v, aligned with its ColorList order.
  std::span<const int> k_counts(NodeId v) const {
    const auto vi = static_cast<std::size_t>(v);
    return {k_flat_.data() + k_off_[vi],
            static_cast<std::size_t>(k_off_[vi + 1] - k_off_[vi])};
  }

  /// |N_>(v)| = β_v − |N_<(v)| as known to node v at its Phase-I turn.
  int n_greater(NodeId v) const {
    return node_[static_cast<std::size_t>(v)].n_greater;
  }

  std::vector<Color> final_colors() const;

  std::int64_t compute_ops() const noexcept;

 private:
  int color_bits() const noexcept;

  const OldcInstance* inst_;
  const std::vector<Color>* initial_;
  std::int64_t q_;
  int p_;
  TwoSweepOptions options_;

  // Per-node state, flattened. step(v, ...) only touches index v (plus the
  // inbox); everything a step reads sits in one record plus flat CSR /
  // stride-p slices, so an ingest touches a couple of cache lines instead
  // of chasing per-node vector headers.
  struct NodeState {
    std::int32_t heard_from = 0;   ///< # out-neighbors' S_u received
    std::int32_t n_greater = 0;    ///< β_v − |N_<(v)|, set at Phase-I turn
    std::int32_t s_count = 0;      ///< |S_v|; 0 until the Phase-I turn
    Color final_color = kNoColor;  ///< Phase-II commitment
  };
  std::vector<NodeState> node_;
  std::vector<std::int64_t> k_off_;  ///< CSR offsets into k_flat_ (n+1)
  std::vector<int> k_flat_;          ///< k_v, aligned with lists[v] order
  /// S_v and r_v interleaved per node — [v·2p, v·2p + p) holds the set,
  /// [v·2p + p, v·2p + 2p) the per-color decision counts — so a Phase-II
  /// ingest touches one cache line instead of two parallel arrays.
  std::vector<std::int64_t> sr_flat_;
  std::vector<std::int64_t> compute_ops_;  // per node: step(v) is
                                           // data-race-free under the
                                           // parallel engine
};

}  // namespace dcolor
