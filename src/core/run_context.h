// RunContext: one bundle for everything a solver run threads through the
// library — tracer, invariant checker, metrics accumulation, simulator
// thread count, the RNG stream root for randomized solvers, and the
// scratch-arena handle batch jobs reuse between runs.
//
// Before this seam existed every entry point hand-plumbed its own subset
// (a bool here, an out-pointer there); the solver registry (core/solver.h)
// passes a RunContext& everywhere instead. Activate a context with
// RunScope: it installs the tracer/checker (both keep *thread-local*
// current pointers, so concurrent batch jobs on different worker threads
// are fully isolated) and pins the simulator thread count for the current
// thread, restoring everything on scope exit.
#pragma once

#include <cstdint>

#include "sim/engine.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace dcolor {

class Tracer;
class InvariantChecker;
class PaletteStore;
class StatsRegistry;

/// Per-phase round accounting for the Theorem 1.3 recursive framework —
/// answers "where do the rounds go". Filled into RunContext::breakdown by
/// solve_arbdefective_slack1 / solve_degree_plus_one (and surfaced by the
/// registry as SolveResult::breakdown).
struct ListColoringBreakdown {
  std::int64_t initial_coloring_rounds = 0;  ///< Linial
  std::int64_t partition_rounds = 0;         ///< per-level partitions
  std::int64_t class_rounds = 0;             ///< inner OLDC runs
  std::int64_t idle_slot_rounds = 0;         ///< empty class slots
  std::int64_t levels = 0;
  std::int64_t classes_run = 0;
  std::int64_t classes_idle = 0;
};

struct RunContext {
  /// Observability/verification hooks this run should install (borrowed,
  /// may be null — a null field leaves whatever is already current on the
  /// thread in place).
  Tracer* tracer = nullptr;
  InvariantChecker* checker = nullptr;
  /// Resource-accounting registry (obs/stats.h) producers on this thread
  /// record into while the scope is active (borrowed, may be null).
  StatsRegistry* stats = nullptr;

  /// Simulator worker threads for Network::run calls made inside the
  /// scope (0 = inherit the process default). Batch workers pin this to 1
  /// so the job axis, not the round axis, is the parallel one.
  int num_threads = 0;

  /// Execution engine for Network::run calls made inside the scope
  /// (kAuto = inherit the process default / DCOLOR_ENGINE). Installed as
  /// the thread-local engine override by RunScope, so concurrent batch
  /// jobs can pin different engines. Results are bit-identical across
  /// engines; this knob exists for performance and for differential
  /// testing.
  EngineKind engine = EngineKind::kAuto;

  /// RNG stream root. Randomized solvers derive independent per-purpose
  /// streams with rng(salt), so two solvers sharing a context never
  /// consume each other's draws.
  std::uint64_t seed = 1;

  /// Skip per-node entry-premise checks (Eq. (2)/(7)...). Replaces the
  /// old TwoSweepOptions::skip_precondition_check plumbing; ablation
  /// benches that intentionally run below threshold set this.
  bool skip_precondition_check = false;

  /// Metrics accumulated across the solve() calls made under this
  /// context (sequential composition).
  RoundMetrics metrics;

  /// Per-phase breakdown of the last framework solver run under this
  /// context. Replaces the old ListColoringOptions::breakdown
  /// out-pointer.
  ListColoringBreakdown breakdown;

  /// Optional scratch palette arena a batch runner hands each job so
  /// steady-state jobs rebuild instances without regrowing arenas
  /// (borrowed; see sim/batch_runner.h for the reuse accounting).
  PaletteStore* scratch_palettes = nullptr;

  /// Independent RNG stream `salt` of this context's seed; depends only
  /// on (seed, salt), never on draw order.
  Rng rng(std::uint64_t salt = 0) const noexcept {
    return Rng::stream(seed, salt);
  }
};

/// RAII activation of a RunContext on the current thread: installs
/// ctx.tracer / ctx.checker (if non-null) and applies ctx.num_threads as
/// the thread-local simulator override. Destruction restores the previous
/// state in reverse order. Non-movable; stack-scope only.
class RunScope {
 public:
  explicit RunScope(RunContext& ctx);
  ~RunScope();

  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

 private:
  RunContext* ctx_;
  int prev_thread_override_ = 0;
  EngineKind prev_engine_override_ = EngineKind::kAuto;
  bool tracer_installed_ = false;
  bool checker_installed_ = false;
  bool stats_installed_ = false;
};

}  // namespace dcolor
