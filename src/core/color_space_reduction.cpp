#include "core/color_space_reduction.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "check/invariant_checker.h"
#include "sim/trace.h"
#include "util/check.h"

namespace dcolor {

ColoringResult color_space_reduction(const OldcInstance& inst,
                                     const std::vector<Color>& initial,
                                     std::int64_t q, std::int64_t lambda,
                                     double kappa_lambda,
                                     const OldcSolver& base) {
  DCOLOR_CHECK(lambda >= 2);
  DCOLOR_CHECK(kappa_lambda >= 1.0);
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());

  // Number of levels: smallest L with lambda^L >= color_space.
  int levels = 1;
  {
    __int128 cap = lambda;
    while (cap < inst.color_space) {
      cap *= lambda;
      ++levels;
    }
  }

  // Per-node current sub-space [base, base + width).
  std::vector<std::int64_t> space_base(n, 0);
  std::int64_t width = 1;
  for (int i = 0; i < levels; ++i) width *= lambda;

  ColoringResult result;
  result.colors.assign(n, kNoColor);

  // Invariant before level j (1-based): for every node with outdegree >= 1
  // in the surviving subgraph, W(v) > β_v · kappa_lambda^{levels-j+1},
  // where W(v) is the list weight inside v's current sub-space. The caller
  // establishes j = 1; D_i = ⌈W_i/K⌉ − 1 with K = kappa_lambda^{levels-j}
  // re-establishes it after each choice (W_i > D_i·K ≥ β'·K since the
  // chosen sub-space admits at most D_i same-choice out-neighbors).
  for (int level = 1; level < levels; ++level) {
    PhaseSpan phase("csr_level_" + std::to_string(level));
    const std::int64_t sub_width = width / lambda;
    const double remaining_k =
        std::pow(kappa_lambda, static_cast<double>(levels - level));

    // Surviving edges: endpoints that still share a sub-space.
    std::vector<std::pair<NodeId, NodeId>> kept;
    for (const auto& [u, v] : g.edge_list()) {
      if (space_base[static_cast<std::size_t>(u)] ==
          space_base[static_cast<std::size_t>(v)])
        kept.emplace_back(u, v);
    }
    const Graph sub = g.edge_subgraph(kept);

    OldcInstance choice;
    choice.graph = &sub;
    choice.color_space = lambda;
    choice.symmetric = inst.symmetric;
    choice.orientation =
        inst.symmetric
            ? Orientation::by_id(sub)
            : Orientation::from_predicate(sub, [&](NodeId a, NodeId b) {
                return inst.orientation.is_out_edge(a, b);
              });
    choice.lists.reserve(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto& lst = inst.lists[vi];
      std::vector<std::int64_t> w(static_cast<std::size_t>(lambda), 0);
      for (std::size_t i = 0; i < lst.size(); ++i) {
        const Color x = lst.color(i);
        if (x < space_base[vi] || x >= space_base[vi] + width) continue;
        const auto part =
            static_cast<std::size_t>((x - space_base[vi]) / sub_width);
        w[part] += lst.defect(i) + 1;
      }
      std::vector<Color> parts;
      std::vector<int> defects;
      for (std::int64_t i = 0; i < lambda; ++i) {
        const std::int64_t wi = w[static_cast<std::size_t>(i)];
        if (wi == 0) continue;
        const auto di = static_cast<int>(
            std::ceil(static_cast<double>(wi) / remaining_k)) - 1;
        parts.push_back(i);
        defects.push_back(std::max(0, di));
      }
      choice.lists.emplace_back(std::move(parts), std::move(defects));
    }

    const ColoringResult level_result = base(choice, initial, q);
    DCOLOR_CHECK_MSG(validate_oldc(choice, level_result.colors),
                     "sub-space choice at level " << level << " is invalid");
    if (InvariantChecker* ck = InvariantChecker::current(); ck != nullptr) {
      ck->check_oldc(choice, level_result.colors, "csr_level");
    }
    result.metrics += level_result.metrics;

    for (std::size_t vi = 0; vi < n; ++vi) {
      space_base[vi] += level_result.colors[vi] * sub_width;
    }
    width = sub_width;
  }

  // Final level: true colors and true defects inside a λ-sized sub-space.
  {
    PhaseSpan phase("csr_final");
    std::vector<std::pair<NodeId, NodeId>> kept;
    for (const auto& [u, v] : g.edge_list()) {
      if (space_base[static_cast<std::size_t>(u)] ==
          space_base[static_cast<std::size_t>(v)])
        kept.emplace_back(u, v);
    }
    const Graph sub = g.edge_subgraph(kept);

    OldcInstance last;
    last.graph = &sub;
    last.color_space = inst.color_space;
    last.symmetric = inst.symmetric;
    last.orientation =
        inst.symmetric
            ? Orientation::by_id(sub)
            : Orientation::from_predicate(sub, [&](NodeId a, NodeId b) {
                return inst.orientation.is_out_edge(a, b);
              });
    last.lists.reserve(n);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto& lst = inst.lists[vi];
      std::vector<Color> colors;
      std::vector<int> defects;
      for (std::size_t i = 0; i < lst.size(); ++i) {
        const Color x = lst.color(i);
        if (x >= space_base[vi] && x < space_base[vi] + width) {
          colors.push_back(x);
          defects.push_back(lst.defect(i));
        }
      }
      last.lists.emplace_back(std::move(colors), std::move(defects));
    }

    const ColoringResult final_result = base(last, initial, q);
    DCOLOR_CHECK_MSG(validate_oldc(last, final_result.colors),
                     "final color-space-reduction level is invalid");
    if (InvariantChecker* ck = InvariantChecker::current(); ck != nullptr) {
      ck->check_oldc(last, final_result.colors, "csr_final");
    }
    result.metrics += final_result.metrics;
    result.colors = final_result.colors;
  }
  return result;
}

}  // namespace dcolor
