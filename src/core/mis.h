// Maximal independent set from a coloring — the classic downstream
// application of distributed coloring (a C-coloring yields an MIS in C
// additional rounds by sweeping the color classes).
//
// This is the standard reason the (Δ+1)-coloring algorithms of this paper
// matter beyond coloring itself: MIS, maximal matching (MIS on the line
// graph), and cluster decompositions all reduce to it.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "sim/metrics.h"

namespace dcolor {

struct MisResult {
  std::vector<bool> in_set;
  RoundMetrics metrics;  ///< C rounds on top of the coloring
};

/// Sweeps the color classes of a proper coloring in ascending order; a
/// node joins the MIS when its turn comes and no neighbor joined earlier.
/// `colors` must be a proper coloring (checked).
MisResult mis_from_coloring(const Graph& g, const std::vector<Color>& colors);

/// True iff `in_set` is independent and maximal in g.
bool validate_mis(const Graph& g, const std::vector<bool>& in_set);

/// Maximal matching of g = MIS of its line graph; returns the matched
/// edge indices relative to g.edge_list().
struct MatchingResult {
  std::vector<bool> in_matching;  ///< aligned with g.edge_list()
  RoundMetrics metrics;
};
MatchingResult maximal_matching_from_edge_coloring(
    const Graph& g, const std::vector<Color>& edge_colors);

/// True iff the selected edges form a maximal matching of g.
bool validate_maximal_matching(const Graph& g,
                               const std::vector<bool>& in_matching);

}  // namespace dcolor
