// Maximal independent set from a coloring — the classic downstream
// application of distributed coloring (a C-coloring yields an MIS in C
// additional rounds by sweeping the color classes).
//
// This is the standard reason the (Δ+1)-coloring algorithms of this paper
// matter beyond coloring itself: MIS, maximal matching (MIS on the line
// graph), and cluster decompositions all reduce to it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/metrics.h"
#include "sim/network.h"

namespace dcolor {

struct MisResult {
  std::vector<bool> in_set;
  RoundMetrics metrics;  ///< C rounds on top of the coloring
};

/// Sweeps the color classes of a proper coloring in ascending order; a
/// node joins the MIS when its turn comes and no neighbor joined earlier.
/// `colors` must be a proper coloring (checked).
MisResult mis_from_coloring(const Graph& g, const std::vector<Color>& colors);

/// The color-class sweep as a message-passing program: node v acts once,
/// in round rank(color(v)) + 1, joining iff no neighbor announced a join
/// earlier, and broadcasts a 1-bit join announcement. Produces the same
/// set as `mis_from_coloring` but runs through the simulator, exercising
/// sparse scheduling (each node is active at its turn plus message
/// deliveries only).
class ColorClassMisProgram final : public SyncAlgorithm {
 public:
  ColorClassMisProgram(const Graph& g, const std::vector<Color>& colors);

  void init(NodeId v, Mailbox& mail) override;
  void step(NodeId v, int round, Mailbox& mail) override;
  bool done(NodeId v) const override;

  /// Sparse scheduling: one turn per node at round rank(color) + 1.
  std::int64_t next_active_round(NodeId v,
                                 std::int64_t after_round) const override;

  const std::vector<std::uint8_t>& in_set() const noexcept { return in_set_; }

 private:
  const Graph* graph_;
  std::vector<std::int64_t> rank_;     ///< dense rank of each node's color
  std::vector<std::uint8_t> in_set_;   ///< 1 iff v joined
  std::vector<std::uint8_t> blocked_;  ///< 1 iff a neighbor joined
  std::vector<std::uint8_t> decided_;  ///< 1 once v's turn has passed
};

/// Runs `ColorClassMisProgram` through the simulator. The resulting set is
/// identical to `mis_from_coloring`; the metrics reflect the actual
/// message-passing execution.
MisResult distributed_mis_from_coloring(const Graph& g,
                                        const std::vector<Color>& colors);

/// True iff `in_set` is independent and maximal in g.
bool validate_mis(const Graph& g, const std::vector<bool>& in_set);

/// Maximal matching of g = MIS of its line graph; returns the matched
/// edge indices relative to g.edge_list().
struct MatchingResult {
  std::vector<bool> in_matching;  ///< aligned with g.edge_list()
  RoundMetrics metrics;
};
MatchingResult maximal_matching_from_edge_coloring(
    const Graph& g, const std::vector<Color>& edge_colors);

/// True iff the selected edges form a maximal matching of g.
bool validate_maximal_matching(const Graph& g,
                               const std::vector<bool>& in_matching);

}  // namespace dcolor
