// Theorem 1.2: OLDC in CONGEST.
//
// Premise:  Σ_{x∈L_v}(d_v(x)+1) >= 3·√C·β_v   (for nodes with outdeg >= 1).
// Result:   a valid OLDC in O(log³C + log* q) rounds using messages of
//           O(log q + log C) bits.
//
// Construction (proof of Theorem 1.2): apply the Lemma 3.5 color space
// reduction with split parameter λ = 4 to Algorithm 2 instantiated with
// p = ⌈√λ⌉ = 2 and ε = 1/(3⌈log₄C⌉). Each of the ⌈log₄C⌉ levels costs
// O((p/ε)² + log* q) = O(log²C + log* q) rounds and only ever ships
// 2 colors of log λ = 2 bits plus the O(log q)-bit defective color.
#pragma once

#include <vector>

#include "core/instance.h"

namespace dcolor {

/// Solves the OLDC instance per Theorem 1.2. `initial_coloring` is a
/// proper q-coloring. Throws CheckError if the premise fails at a node
/// with outdegree >= 1.
ColoringResult congest_oldc(const OldcInstance& inst,
                            const std::vector<Color>& initial_coloring,
                            std::int64_t q);

}  // namespace dcolor
