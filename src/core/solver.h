// The unified solver interface behind the registry (solver_registry.h).
//
// The paper's algorithms are one family — Theorems 1.1–1.5 compose the
// same OLDC primitives — and the library treats them that way: every
// coloring algorithm (core OLDC solvers, the recursive frameworks, the
// sequential and randomized baselines) is exposed as a `Solver` with
//   * a stable registry name,
//   * a capability descriptor (which problem family it consumes, whether
//     it is oriented/symmetric-capable, honors lists and defects, emits
//     an output orientation, respects a CONGEST bandwidth budget), and
//   * one entry point: solve(SolveRequest, RunContext) -> SolveResult.
//
// The CLI, the batch runner, the fuzz harness, and the benches dispatch
// through this interface; adding a solver means implementing the adapter
// and registering it (see solver_registry.h), after which all of those
// surfaces pick it up automatically.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "coloring/arbdefective.h"
#include "core/instance.h"
#include "core/run_context.h"
#include "graph/orientation.h"

namespace dcolor {

/// What a solver consumes and guarantees. The flag set mirrors the
/// paper's problem families: P_O (oriented list defective), P_D
/// (undirected list defective), P_A (arbdefective; orientation is
/// output), plus graph-only Δ+1 convenience solvers.
struct SolverCapabilities {
  enum class Input : std::uint8_t {
    kOldc,           ///< OldcInstance (+ optional initial proper coloring)
    kListDefective,  ///< ListDefectiveInstance (P_D)
    kArbdefective,   ///< ArbdefectiveInstance (P_A)
    kGraph,          ///< bare Graph; the solver owns its problem statement
  };
  Input input = Input::kOldc;

  bool oriented = false;      ///< consumes an input edge orientation
  bool symmetric = false;     ///< accepts symmetric (undirected) OLDC mode
  bool lists = false;         ///< honors per-node color lists
  bool defects = false;       ///< honors per-color defect budgets
  bool outputs_orientation = false;  ///< arbdefective: orientation out
  bool proper_output = false;        ///< result is a proper coloring
  bool congest = false;       ///< messages bounded by O(log q + log C)
  bool distributed = true;    ///< false: sequential baseline (rounds ~ n)
  bool randomized = false;    ///< draws from RunContext::seed
  bool dense_kernel = false;  ///< provides a DenseKernel: dense rounds can
                              ///  run on the vector engine (results stay
                              ///  bit-identical to scalar either way)

  /// "oldc|oriented|lists|defects|congest"-style flag string for
  /// `dcolor --cmd=list` and reports.
  std::string summary() const;

  static const char* input_name(Input input) noexcept;
};

/// Per-solve tuning parameters. One flat struct rather than per-solver
/// option types so job specs, fuzz cases, and CLI flags all serialize the
/// same way; solvers read only the fields they document.
struct SolverParams {
  int p = 2;          ///< Two-Sweep Phase-I set size (Theorem 1.1)
  double eps = 0.5;   ///< Fast-Two-Sweep slack parameter (Eq. (7))
  double alpha = 0.25;  ///< defective-precoloring parameter (Lemma 3.4)
  int theta = 2;      ///< neighborhood independence bound (Theorem 1.5)
  PartitionEngine engine = PartitionEngine::kBeg18Oracle;
};

/// One problem handed to Solver::solve. Exactly the pointers matching the
/// solver's Input kind must be set (kOldc -> oldc; kListDefective /
/// kArbdefective -> list_defective; kGraph -> graph). All pointers are
/// borrowed and must outlive the call.
struct SolveRequest {
  const OldcInstance* oldc = nullptr;
  const ListDefectiveInstance* list_defective = nullptr;  ///< P_D and P_A
  const Graph* graph = nullptr;

  /// Optional proper q-coloring for OLDC solvers (values in [0, q)).
  /// When null the solver computes Linial from IDs itself and folds that
  /// cost into the returned metrics.
  const std::vector<Color>* initial_coloring = nullptr;
  std::int64_t q = 0;  ///< size of the initial color space (with the above)

  SolverParams params;

  /// The graph the request ranges over, whichever instance kind carries it.
  const Graph* any_graph() const noexcept {
    if (oldc != nullptr) return oldc->graph;
    if (list_defective != nullptr) return list_defective->graph;
    return graph;
  }
};

/// What every solver returns. `breakdown` is only populated by the
/// recursive-framework solvers; `orientation` only when
/// capabilities().outputs_orientation.
struct SolveResult {
  std::vector<Color> colors;
  Orientation orientation;
  bool has_orientation = false;
  RoundMetrics metrics;
  ListColoringBreakdown breakdown;
};

class Solver {
 public:
  virtual ~Solver() = default;

  virtual std::string_view name() const = 0;
  virtual SolverCapabilities capabilities() const = 0;

  /// True iff this solver's entry premise holds on `req` (Eq. (2) for
  /// Two-Sweep, Eq. (7) for Fast-Two-Sweep, the 3·√C·β bound for the
  /// CONGEST solver, slack > 1 for the frameworks...). Default: true.
  /// The fuzz harness only schedules cases whose premise holds by
  /// construction, so any later failure is a bug.
  virtual bool premise_holds(const SolveRequest& req) const;

  /// Solves `req`. The solver accumulates into ctx.metrics as well as
  /// returning per-call metrics, honors ctx.skip_precondition_check, and
  /// derives any randomness from ctx.rng(...). Throws CheckError on
  /// malformed requests or violated preconditions.
  virtual SolveResult solve(const SolveRequest& req, RunContext& ctx)
      const = 0;
};

/// Validates `res` against whatever `req` carries, dispatching on the
/// solver's capabilities (OLDC validation, list-defective validation,
/// arbdefective validation under the output orientation, or proper-
/// coloring validation for graph solvers). Defective non-list graph
/// solvers (input == kGraph, !proper_output) only get an all-colored
/// check — their defect guarantee depends on solver-specific parameters.
bool validate_solve(const SolveRequest& req, const SolverCapabilities& caps,
                    const SolveResult& res);

}  // namespace dcolor
