#include "core/list_coloring.h"

#include <algorithm>
#include <cmath>

#include "check/invariant_checker.h"
#include "coloring/kuhn_defective.h"
#include "coloring/linial.h"
#include "core/congest_oldc.h"
#include "core/sequential_coloring.h"
#include "util/check.h"
#include "util/math.h"

namespace dcolor {

ArbdefectiveResult solve_arbdefective_slack1(
    const ArbdefectiveInstance& inst, const ListColoringOptions& options) {
  RunContext ctx;
  return solve_arbdefective_slack1(inst, ctx, options);
}

ArbdefectiveResult solve_arbdefective_slack1(
    const ArbdefectiveInstance& inst, RunContext& ctx,
    const ListColoringOptions& options) {
  const Graph& g = *inst.graph;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  DCOLOR_CHECK(inst.color_space >= 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DCOLOR_CHECK_MSG(
        inst.lists[static_cast<std::size_t>(v)].weight() > g.degree(v),
        "slack-1 condition fails at node " << v);
  }

  ArbdefectiveResult result;
  result.colors.assign(n, kNoColor);
  ListColoringBreakdown& breakdown = ctx.breakdown;
  breakdown = {};

  // Initial O(Δ²)-coloring (Linial), the "proper q-coloring" every later
  // sub-call assumes.
  const Orientation id_orientation = Orientation::by_id(g);
  const LinialResult linial = linial_from_ids(g, id_orientation);
  result.metrics += linial.metrics;
  breakdown.initial_coloring_rounds += linial.metrics.rounds;
  const std::int64_t q0 = linial.num_colors;

  const std::int64_t mu = static_cast<std::int64_t>(
      std::ceil(3.0 * std::sqrt(static_cast<double>(inst.color_space))));

  std::vector<TrimmedList> trimmed(n);
  for (std::size_t vi = 0; vi < n; ++vi)
    trimmed[vi] = TrimmedList::from(inst.lists[vi]);

  // Coloring order stamps: primary key of the output orientation.
  std::vector<std::int64_t> stamp(n, -1);
  std::int64_t run_counter = 0;

  std::vector<NodeId> uncolored;
  uncolored.reserve(n);
  for (NodeId v = 0; v < g.num_nodes(); ++v) uncolored.push_back(v);

  const bool oracle = options.engine == PartitionEngine::kBeg18Oracle;
  const int max_levels = 2 * ceil_log2(static_cast<std::uint64_t>(
                                 std::max(2, g.max_degree()))) +
                         4;
  int level = 0;
  while (!uncolored.empty()) {
    DCOLOR_CHECK_MSG(++level <= max_levels,
                     "degree-halving failed to make progress");
    ++breakdown.levels;
    const auto sub = g.induced_subgraph(uncolored);
    const Graph& sg = sub.graph;
    const auto sn = static_cast<std::size_t>(sg.num_nodes());

    std::vector<Color> sub_base(sn);
    for (std::size_t i = 0; i < sn; ++i)
      sub_base[i] = linial.colors[static_cast<std::size_t>(sub.to_orig[i])];

    std::vector<int> d0(sn);
    for (NodeId v = 0; v < sg.num_nodes(); ++v)
      d0[static_cast<std::size_t>(v)] = sg.degree(v);
    std::vector<int> colored_this_level(sn, 0);

    // --- Partition the uncolored subgraph ---------------------------------
    std::vector<Color> class_of;
    std::int64_t num_classes = 0;
    Orientation class_orientation;  // only used by the oracle engine
    if (oracle) {
      auto part = arbdefective_partition(sg, sub_base, q0,
                                         static_cast<int>(2 * mu),
                                         PartitionEngine::kBeg18Oracle);
      class_of = std::move(part.classes);
      num_classes = part.num_classes;
      class_orientation = std::move(part.orientation);
      result.metrics += part.metrics;
      breakdown.partition_rounds += part.metrics.rounds;
    } else {
      const double alpha = 1.0 / (2.0 * static_cast<double>(mu));
      auto psi = kuhn_defective_undirected(
          sg, sub_base, static_cast<std::uint64_t>(q0), alpha);
      class_of = std::move(psi.colors);
      num_classes = psi.num_colors;
      result.metrics += psi.metrics;
      breakdown.partition_rounds += psi.metrics.rounds;
    }

    // --- Sweep the classes ------------------------------------------------
    for (std::int64_t cls = 0; cls < num_classes; ++cls) {
      std::vector<NodeId> eligible;  // sub-graph ids (ascending)
      for (NodeId v = 0; v < sg.num_nodes(); ++v) {
        const auto vi = static_cast<std::size_t>(v);
        const NodeId orig = sub.to_orig[vi];
        if (class_of[vi] != cls) continue;
        if (result.colors[static_cast<std::size_t>(orig)] != kNoColor)
          continue;
        if (2 * colored_this_level[vi] > d0[vi]) continue;  // wait a level
        eligible.push_back(v);
      }
      if (eligible.empty()) {
        // The class slot still occupies schedule time: nodes cannot detect
        // global emptiness. One idle round.
        result.metrics.rounds += 1;
        breakdown.idle_slot_rounds += 1;
        ++breakdown.classes_idle;
        continue;
      }

      const auto hsub = sg.induced_subgraph(eligible);
      const Graph& hg = hsub.graph;
      OldcInstance oldc;
      oldc.graph = &hg;
      oldc.color_space = inst.color_space;
      if (oracle) {
        oldc.orientation = Orientation::from_predicate(
            hg, [&](NodeId a, NodeId b) {
              return class_orientation.is_out_edge(
                  hsub.to_orig[static_cast<std::size_t>(a)],
                  hsub.to_orig[static_cast<std::size_t>(b)]);
            });
      } else {
        oldc.orientation = Orientation::by_id(hg);
      }
      std::vector<Color> h_base(static_cast<std::size_t>(hg.num_nodes()));
      oldc.lists.reserve(static_cast<std::size_t>(hg.num_nodes()));
      for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
        const auto hvi = static_cast<std::size_t>(hv);
        const NodeId sv = hsub.to_orig[hvi];
        const NodeId orig = sub.to_orig[static_cast<std::size_t>(sv)];
        h_base[hvi] = sub_base[static_cast<std::size_t>(sv)];
        oldc.lists.push_back(
            trimmed[static_cast<std::size_t>(orig)].to_color_list());
      }

      const ColoringResult class_result = congest_oldc(oldc, h_base, q0);
      DCOLOR_CHECK_MSG(validate_oldc(oldc, class_result.colors),
                       "class OLDC produced an invalid coloring");
      result.metrics += class_result.metrics;
      breakdown.class_rounds += class_result.metrics.rounds;
      ++breakdown.classes_run;

      // Commit colors, trim neighbors' lists, bump colored counters.
      const std::int64_t this_stamp = run_counter++;
      for (NodeId hv = 0; hv < hg.num_nodes(); ++hv) {
        const auto hvi = static_cast<std::size_t>(hv);
        const NodeId sv = hsub.to_orig[hvi];
        const NodeId orig = sub.to_orig[static_cast<std::size_t>(sv)];
        const Color c = class_result.colors[hvi];
        result.colors[static_cast<std::size_t>(orig)] = c;
        stamp[static_cast<std::size_t>(orig)] = this_stamp;
        for (NodeId u : g.neighbors(orig)) {
          const auto ui = static_cast<std::size_t>(u);
          if (result.colors[ui] == kNoColor)
            trimmed[ui].on_neighbor_colored(c);
          const NodeId su = sub.to_sub[ui];
          if (su >= 0) ++colored_this_level[static_cast<std::size_t>(su)];
        }
      }
    }

    std::vector<NodeId> still;
    for (NodeId v : uncolored) {
      if (result.colors[static_cast<std::size_t>(v)] == kNoColor)
        still.push_back(v);
    }
    uncolored = std::move(still);
  }

  // Output orientation: toward the earlier-colored endpoint; ties (same
  // OLDC run) follow that run's input orientation, which was "toward the
  // smaller node id" (honest engine) or "toward the smaller initial Linial
  // color" (oracle engine) — both expressible on original ids because
  // induced_subgraph preserves id order.
  result.orientation = Orientation::from_predicate(g, [&](NodeId a, NodeId b) {
    const auto ai = static_cast<std::size_t>(a);
    const auto bi = static_cast<std::size_t>(b);
    if (stamp[ai] != stamp[bi]) return stamp[bi] < stamp[ai];
    if (oracle) return linial.colors[bi] < linial.colors[ai];
    return b < a;
  });
  if (InvariantChecker* ck = InvariantChecker::current(); ck != nullptr) {
    ck->check_arbdefective(inst, result, "solve_arbdefective_slack1");
  }
  return result;
}

ColoringResult solve_degree_plus_one(const ListDefectiveInstance& inst,
                                     const ListColoringOptions& options) {
  RunContext ctx;
  return solve_degree_plus_one(inst, ctx, options);
}

ColoringResult solve_degree_plus_one(const ListDefectiveInstance& inst,
                                     RunContext& ctx,
                                     const ListColoringOptions& options) {
  const Graph& g = *inst.graph;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& lst = inst.lists[static_cast<std::size_t>(v)];
    DCOLOR_CHECK_MSG(static_cast<int>(lst.size()) >= g.degree(v) + 1,
                     "list smaller than deg+1 at node " << v);
    for (std::size_t i = 0; i < lst.size(); ++i) {
      DCOLOR_CHECK_MSG(lst.defect(i) == 0,
                       "solve_degree_plus_one expects zero defects");
    }
  }
  ArbdefectiveResult arb = solve_arbdefective_slack1(inst, ctx, options);
  // Zero defects + an orientation of monochromatic edges = no
  // monochromatic edges at all: the coloring is proper.
  ColoringResult result;
  result.colors = std::move(arb.colors);
  result.metrics = arb.metrics;
  if (InvariantChecker* ck = InvariantChecker::current(); ck != nullptr) {
    ck->check_proper(g, result.colors, "solve_degree_plus_one");
  }
  return result;
}

}  // namespace dcolor
