#include "core/theta_coloring.h"

#include <string>

#include "check/invariant_checker.h"
#include "core/instance.h"
#include "core/list_coloring.h"
#include "core/slack_reduction.h"
#include "core/theta_color_space.h"
#include "sim/trace.h"
#include "util/check.h"

namespace dcolor {

namespace {

/// Slack-2 solver P_A(2, C) with `depth` color-space recursion levels
/// remaining. depth 0 (or a tiny color space) drops to the Theorem 1.3
/// machinery, which handles slack > 1 directly.
ArbdefectiveResult solve_pa2(const ArbdefectiveInstance& inst, int theta,
                             int depth, const ThetaColoringOptions& options) {
  PhaseSpan phase("theta_pa2_depth_" + std::to_string(depth));
  if (depth <= 0 || inst.color_space <= options.base_color_threshold) {
    const ListColoringOptions base{options.engine};
    return solve_arbdefective_slack1(inst, base);
  }

  // Lemma 4.4 boosts the slack from 2 to µ = 2σ; Lemma 4.6 then halves the
  // color space per recursion level, discharging its part choice through
  // Theorem 1.4 (which again only needs slack-2 solvers, one level deeper).
  const std::int64_t big_slack =
      lemma46_slack_requirement(inst.graph->delta_paper(), theta);
  const ArbSolver lemma46_solver = [&](const ArbdefectiveInstance& sub) {
    const ArbSolver deeper = [&](const ArbdefectiveInstance& d) {
      return solve_pa2(d, theta, depth - 1, options);
    };
    return theta_color_space_step(sub, theta, deeper);
  };
  return slack_reduction_lemma44(inst, static_cast<double>(big_slack),
                                 lemma46_solver);
}

int recursion_depth(const ThetaColoringOptions& options) {
  switch (options.branch) {
    case ThetaColoringOptions::Branch::kBaseOnly:
      return 0;
    case ThetaColoringOptions::Branch::kDeltaQuarter:
      return 1;
    case ThetaColoringOptions::Branch::kQuasiPolylog:
      return 64;  // the color-space threshold terminates the recursion
  }
  return 0;
}

}  // namespace

ArbdefectiveResult solve_theta_arbdefective(const ArbdefectiveInstance& inst,
                                            int theta,
                                            const ThetaColoringOptions&
                                                options) {
  PhaseSpan phase("theta_coloring");
  const Graph& g = *inst.graph;
  DCOLOR_CHECK(theta >= 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DCOLOR_CHECK_MSG(
        inst.lists[static_cast<std::size_t>(v)].weight() > g.degree(v),
        "Theorem 1.5 requires slack > 1; fails at node " << v);
  }
  const int depth = recursion_depth(options);
  if (depth == 0) {
    const ListColoringOptions base{options.engine};
    return solve_arbdefective_slack1(inst, base);
  }
  // Lemma A.1 with µ = 2 lifts the slack-1 instance to slack-2 instances.
  const ArbSolver pa2 = [&](const ArbdefectiveInstance& sub) {
    return solve_pa2(sub, theta, depth, options);
  };
  return slack_reduction_lemmaA1(inst, 2.0, pa2);
}

ColoringResult theta_delta_plus_one(const Graph& g, int theta,
                                    const ThetaColoringOptions& options) {
  const ListDefectiveInstance inst = delta_plus_one_instance(g);
  ArbdefectiveResult arb = solve_theta_arbdefective(inst, theta, options);
  // Zero defects: the arbdefective coloring is proper.
  ColoringResult result;
  result.colors = std::move(arb.colors);
  result.metrics = arb.metrics;
  if (InvariantChecker* ck = InvariantChecker::current(); ck != nullptr) {
    ck->check_proper(g, result.colors, "theta_delta_plus_one");
  }
  return result;
}

}  // namespace dcolor
