#include "core/edge_coloring.h"

#include <numeric>

#include "graph/coloring_checks.h"
#include "graph/line_graph.h"
#include "util/check.h"

namespace dcolor {

namespace {

EdgeColoringResult color_line_graph(const Graph& lg, std::int64_t palette,
                                    int theta,
                                    const ThetaColoringOptions& options) {
  std::vector<Color> all(static_cast<std::size_t>(palette));
  std::iota(all.begin(), all.end(), 0);
  ArbdefectiveInstance inst;
  inst.graph = &lg;
  inst.color_space = palette;
  inst.lists.assign(static_cast<std::size_t>(lg.num_nodes()),
                    ColorList::zero_defect(all));
  ArbdefectiveResult arb = solve_theta_arbdefective(inst, theta, options);
  DCOLOR_CHECK(is_proper_coloring(lg, arb.colors));
  EdgeColoringResult result;
  result.edge_colors = std::move(arb.colors);
  result.num_colors = palette;
  result.metrics = arb.metrics;
  return result;
}

}  // namespace

EdgeColoringResult edge_coloring_two_delta_minus_one(
    const Graph& g, const ThetaColoringOptions& options) {
  const Graph lg = line_graph(g);
  const std::int64_t palette =
      std::max<std::int64_t>(1, 2 * g.max_degree() - 1);
  return color_line_graph(lg, palette, /*theta=*/2, options);
}

EdgeColoringResult hypergraph_edge_coloring(
    const Hypergraph& h, const ThetaColoringOptions& options) {
  const Graph lg = line_graph(h);
  const std::int64_t palette = lg.max_degree() + 1;
  return color_line_graph(lg, palette, /*theta=*/std::max(1, h.rank()),
                          options);
}

bool validate_edge_coloring(const Graph& g,
                            const std::vector<Color>& edge_colors) {
  const Graph lg = line_graph(g);
  return is_proper_coloring(lg, edge_colors);
}

bool validate_edge_coloring(const Hypergraph& h,
                            const std::vector<Color>& edge_colors) {
  const Graph lg = line_graph(h);
  return is_proper_coloring(lg, edge_colors);
}

}  // namespace dcolor
