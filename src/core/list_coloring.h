// Theorem 1.3 machinery: slack-1 list (arb)defective coloring in CONGEST.
//
// The paper obtains Theorem 1.3 by plugging the Theorem 1.2 OLDC algorithm
// into the recursive framework of [FK23a, Theorem 4]. We reproduce that
// framework with the machinery this paper itself provides (DESIGN.md §4)
// and generalize it to arbitrary defects, because Theorem 1.5's recursion
// needs a slack-1 solver for the whole family P_A(1, C):
//
//   initial O(Δ²)-coloring via Linial              — O(log* n) rounds
//   repeat O(log Δ) levels (Lemma A.1-style degree halving):
//     partition the uncolored subgraph into classes whose per-node
//       same-class (out-)degree is at most deg/2µ, µ = ⌈3·√C⌉
//     sweep the classes; in class i color every node that still has at
//       most half of its level-start neighbors colored, using the
//       Theorem 1.2 OLDC on the trimmed lists d'_v(x) = d_v(x) − a_v(x)
//       (a_v(x) = already-colored neighbors of color x). The premise
//       holds: remaining weight > deg/2 ≥ µ·(class out-degree).
//     skipped nodes lose half their degree by the end of the level, so
//       O(log Δ) levels suffice.
//
// The output orientation points every edge toward the earlier-colored
// endpoint (ties within one OLDC run follow that run's input orientation),
// which makes the defect guarantee arbdefective: at most d_v(x_v)
// same-colored OUT-neighbors.
//
// Partition engines (selectable):
//   * kHonest       — undirected Lemma 3.4 defective coloring, O(log* n)
//     rounds to compute but O(µ²) classes to sweep → measured rounds
//     O(Δ·polylog Δ · log Δ + log* n).
//   * kBeg18Oracle  — arbdefective partition with 2µ classes charged
//     O(µ + log* n) rounds (documented substitution) → measured rounds
//     O(√Δ·polylog Δ + log* n), the shape Theorem 1.3 claims.
#pragma once

#include "coloring/arbdefective.h"
#include "core/instance.h"
#include "core/run_context.h"

namespace dcolor {

// The per-phase round accounting type (ListColoringBreakdown) lives in
// core/run_context.h: the framework solvers report it through
// RunContext::breakdown instead of an out-pointer.

struct ListColoringOptions {
  PartitionEngine engine = PartitionEngine::kHonest;
};

/// Solves any list arbdefective instance with slack > 1
/// (Σ(d_v(x)+1) > deg(v), i.e. P_A(1, C); (deg+1)-list coloring instances
/// qualify with defects 0). Throws CheckError if the slack condition
/// fails. Fills ctx.breakdown with the per-phase round accounting.
ArbdefectiveResult solve_arbdefective_slack1(
    const ArbdefectiveInstance& inst, RunContext& ctx,
    const ListColoringOptions& options = {});

/// Context-free convenience (breakdown discarded).
ArbdefectiveResult solve_arbdefective_slack1(
    const ArbdefectiveInstance& inst, const ListColoringOptions& options = {});

/// Theorem 1.3 proper: zero-defect lists with |L_v| >= deg(v)+1 produce a
/// PROPER coloring from the lists. Fills ctx.breakdown.
ColoringResult solve_degree_plus_one(const ListDefectiveInstance& inst,
                                     RunContext& ctx,
                                     const ListColoringOptions& options = {});

/// Context-free convenience (breakdown discarded).
ColoringResult solve_degree_plus_one(const ListDefectiveInstance& inst,
                                     const ListColoringOptions& options = {});

}  // namespace dcolor
