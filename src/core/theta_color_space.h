// Section 4.3: color space reduction for list arbdefective coloring.
//
// Lemma 4.5: to solve P_A(S, C), partition the color space into p parts of
// size ⌈C/p⌉. Choosing a part is itself a list DEFECTIVE coloring instance
// P_D(σ, p) with derived defects d_{v,i} = ⌈σ·deg(v)·W_i/W⌉ (Eq. 19);
// the nodes that picked part i then solve a P_A(S/σ, ⌈C/p⌉) instance on
// the subgraph they induce — all parts in parallel, since distinct parts
// can never conflict. Hence
//     T_A(S, C) <= T_D(σ, p) + T_A(S/σ, ⌈C/p⌉).
//
// Lemma 4.6 instantiates p = ⌈√C⌉ and σ = 42·θ·(⌈logΔ⌉+1) (the Eq. 9
// requirement for S = 2) and discharges the T_D call through Theorem 1.4,
// giving
//     T_A(2σ, C) <= O(logΔ)·T_A(2, ⌈√C⌉) + T_A(2, ⌈√C⌉).
#pragma once

#include <functional>

#include "core/instance.h"
#include "core/slack_reduction.h"

namespace dcolor {

/// Solver for list defective (undirected) instances.
using DefectiveSolver =
    std::function<ColoringResult(const ListDefectiveInstance&)>;

/// Lemma 4.5. Requires slack > S and 1 <= σ <= S. `solve_pd` receives the
/// part-choice instance (color space = #parts <= p); `solve_inner`
/// receives one instance per non-empty part (slack > S/σ, color space
/// ⌈C/p⌉), whose metrics merge in parallel.
ArbdefectiveResult color_space_reduction_pa(const ArbdefectiveInstance& inst,
                                            std::int64_t S, std::int64_t p,
                                            std::int64_t sigma,
                                            const DefectiveSolver& solve_pd,
                                            const ArbSolver& solve_inner);

/// Lemma 4.6: solves P_A(2σ, C) with σ = 42·θ·(⌈logΔ⌉+1), using
/// `solve_pa2` for every P_A(2, ⌈√C⌉)-shaped sub-instance (both inside the
/// Theorem 1.4 discharge of the part choice and for the per-part
/// sub-instances).
ArbdefectiveResult theta_color_space_step(const ArbdefectiveInstance& inst,
                                          int theta,
                                          const ArbSolver& solve_pa2);

/// The slack Lemma 4.6 requires: 2σ = 84·θ·(⌈logΔ⌉+1).
std::int64_t lemma46_slack_requirement(int delta_paper, int theta);

}  // namespace dcolor
