// Registry adapters for the paper's core algorithms (Theorems 1.1–1.5).
//
// Each adapter translates the uniform SolveRequest into the algorithm's
// native entry point, resolving the initial proper coloring (Linial from
// IDs when the request does not carry one — its cost folds into the
// returned metrics) and copying per-phase accounting out of the
// RunContext. The premise predicates mirror the per-node checks the
// algorithms enforce themselves — sinks only need non-empty lists —
// which is also the contract the fuzz harness relies on for its
// premise-by-construction case generation.
#include <cmath>
#include <utility>

#include "coloring/linial.h"
#include "core/congest_oldc.h"
#include "core/fast_two_sweep.h"
#include "core/list_coloring.h"
#include "core/solver_registry.h"
#include "core/theta_coloring.h"
#include "core/two_sweep.h"
#include "util/check.h"

namespace dcolor {
namespace {

using Input = SolverCapabilities::Input;

/// The initial proper q-coloring an OLDC run starts from: the request's,
/// or Linial-from-IDs computed here (metrics then carry the Linial cost).
struct InitialColoring {
  std::vector<Color> owned;
  const std::vector<Color>* colors = nullptr;
  std::int64_t q = 0;
  RoundMetrics metrics;
};

InitialColoring resolve_initial(const SolveRequest& req) {
  InitialColoring out;
  if (req.initial_coloring != nullptr) {
    DCOLOR_CHECK_MSG(req.q > 0, "initial coloring supplied without q");
    out.colors = req.initial_coloring;
    out.q = req.q;
    return out;
  }
  const OldcInstance& inst = *req.oldc;
  const Orientation lin_o = Orientation::by_id(*inst.graph);
  LinialResult lin = linial_from_ids(*inst.graph, lin_o);
  out.owned = std::move(lin.colors);
  out.colors = &out.owned;
  out.q = lin.num_colors;
  out.metrics = lin.metrics;
  return out;
}

enum class OldcPremise { kEq2, kEq7, kTheorem12 };

/// Per-node premise with the solvers' actual sink convention (a sink
/// succeeds with any non-empty list; Eq. (2)/(7)/Theorem 1.2 only bind
/// at outdegree >= 1).
bool oldc_premise_holds(const OldcInstance& inst, OldcPremise premise, int p,
                        double eps) {
  if (inst.color_space < 1) return false;
  const Graph& g = *inst.graph;
  const double sqrt_c = std::sqrt(static_cast<double>(inst.color_space));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const PaletteView list = inst.lists[static_cast<std::size_t>(v)];
    if (inst.effective_outdegree(v) == 0) {
      if (list.empty()) return false;
      continue;
    }
    const auto beta_v = static_cast<double>(inst.beta_v(v));
    const auto weight = static_cast<double>(list.weight());
    switch (premise) {
      case OldcPremise::kEq2:
        if (weight * p <= std::max<double>(static_cast<double>(p) * p,
                                           static_cast<double>(list.size())) *
                              beta_v) {
          return false;
        }
        break;
      case OldcPremise::kEq7:
        if (weight <=
            (1.0 + eps) *
                std::max(static_cast<double>(p),
                         static_cast<double>(list.size()) / p) *
                beta_v) {
          return false;
        }
        break;
      case OldcPremise::kTheorem12:
        if (weight < 3.0 * sqrt_c * beta_v) return false;
        break;
    }
  }
  return true;
}

SolveResult finish(RunContext& ctx, std::vector<Color> colors,
                   RoundMetrics metrics) {
  SolveResult out;
  out.colors = std::move(colors);
  out.metrics = metrics;
  ctx.metrics += metrics;
  return out;
}

class TwoSweepSolver final : public Solver {
 public:
  std::string_view name() const override { return "two_sweep"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kOldc;
    c.oriented = true;
    c.symmetric = true;
    c.lists = true;
    c.defects = true;
    c.dense_kernel = true;  // TwoSweepProgram
    return c;
  }

  bool premise_holds(const SolveRequest& req) const override {
    return req.oldc != nullptr &&
           oldc_premise_holds(*req.oldc, OldcPremise::kEq2, req.params.p,
                              0.0);
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.oldc != nullptr, "two_sweep needs an OLDC instance");
    const InitialColoring init = resolve_initial(req);
    ColoringResult r =
        two_sweep(*req.oldc, *init.colors, init.q, req.params.p, ctx);
    return finish(ctx, std::move(r.colors), init.metrics + r.metrics);
  }
};

class FastTwoSweepSolver final : public Solver {
 public:
  std::string_view name() const override { return "fast_two_sweep"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kOldc;
    c.oriented = true;
    c.symmetric = true;
    c.lists = true;
    c.defects = true;
    c.dense_kernel = true;  // PolyReduce (Ψ) + TwoSweep programs
    return c;
  }

  bool premise_holds(const SolveRequest& req) const override {
    return req.oldc != nullptr &&
           oldc_premise_holds(*req.oldc, OldcPremise::kEq7, req.params.p,
                              req.params.eps);
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.oldc != nullptr,
                     "fast_two_sweep needs an OLDC instance");
    const InitialColoring init = resolve_initial(req);
    ColoringResult r = fast_two_sweep(*req.oldc, *init.colors, init.q,
                                      req.params.p, req.params.eps);
    return finish(ctx, std::move(r.colors), init.metrics + r.metrics);
  }
};

class CongestOldcSolver final : public Solver {
 public:
  std::string_view name() const override { return "congest_oldc"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kOldc;
    c.oriented = true;
    c.symmetric = true;
    c.lists = true;
    c.defects = true;
    c.congest = true;
    c.dense_kernel = true;  // delegates to fast_two_sweep
    return c;
  }

  bool premise_holds(const SolveRequest& req) const override {
    return req.oldc != nullptr &&
           oldc_premise_holds(*req.oldc, OldcPremise::kTheorem12, 2, 0.0);
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.oldc != nullptr,
                     "congest_oldc needs an OLDC instance");
    const InitialColoring init = resolve_initial(req);
    ColoringResult r = congest_oldc(*req.oldc, *init.colors, init.q);
    return finish(ctx, std::move(r.colors), init.metrics + r.metrics);
  }
};

class Slack1ArbdefectiveSolver final : public Solver {
 public:
  std::string_view name() const override { return "slack1_arbdefective"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kArbdefective;
    c.lists = true;
    c.defects = true;
    c.outputs_orientation = true;
    c.dense_kernel = true;  // Linial + inner Two-Sweep runs
    return c;
  }

  bool premise_holds(const SolveRequest& req) const override {
    if (req.list_defective == nullptr || req.list_defective->color_space < 1)
      return false;
    const ArbdefectiveInstance& inst = *req.list_defective;
    for (NodeId v = 0; v < inst.graph->num_nodes(); ++v) {
      if (inst.lists[static_cast<std::size_t>(v)].weight() <=
          inst.graph->degree(v)) {
        return false;
      }
    }
    return true;
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.list_defective != nullptr,
                     "slack1_arbdefective needs an arbdefective instance");
    ArbdefectiveResult r = solve_arbdefective_slack1(
        *req.list_defective, ctx, ListColoringOptions{req.params.engine});
    SolveResult out = finish(ctx, std::move(r.colors), r.metrics);
    out.orientation = std::move(r.orientation);
    out.has_orientation = true;
    out.breakdown = ctx.breakdown;
    return out;
  }
};

class DegPlusOneSolver final : public Solver {
 public:
  std::string_view name() const override { return "deg_plus_one"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kListDefective;
    c.lists = true;
    c.proper_output = true;
    c.dense_kernel = true;  // Linial + inner Two-Sweep runs
    return c;
  }

  bool premise_holds(const SolveRequest& req) const override {
    if (req.list_defective == nullptr || req.list_defective->color_space < 1)
      return false;
    const ListDefectiveInstance& inst = *req.list_defective;
    for (NodeId v = 0; v < inst.graph->num_nodes(); ++v) {
      const PaletteView list = inst.lists[static_cast<std::size_t>(v)];
      if (static_cast<int>(list.size()) < inst.graph->degree(v) + 1)
        return false;
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list.defect(i) != 0) return false;
      }
    }
    return true;
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.list_defective != nullptr,
                     "deg_plus_one needs a list defective instance");
    ColoringResult r = solve_degree_plus_one(
        *req.list_defective, ctx, ListColoringOptions{req.params.engine});
    SolveResult out = finish(ctx, std::move(r.colors), r.metrics);
    out.breakdown = ctx.breakdown;
    return out;
  }
};

class ThetaSolver final : public Solver {
 public:
  std::string_view name() const override { return "theta"; }

  SolverCapabilities capabilities() const override {
    SolverCapabilities c;
    c.input = Input::kGraph;
    c.proper_output = true;
    c.dense_kernel = true;  // Linial stage runs PolyReduce
    return c;
  }

  SolveResult solve(const SolveRequest& req, RunContext& ctx) const override {
    DCOLOR_CHECK_MSG(req.graph != nullptr, "theta needs a graph");
    ThetaColoringOptions options;
    options.branch = ThetaColoringOptions::Branch::kBaseOnly;
    options.engine = req.params.engine;
    ColoringResult r =
        theta_delta_plus_one(*req.graph, req.params.theta, options);
    return finish(ctx, std::move(r.colors), r.metrics);
  }
};

}  // namespace

namespace detail {

void register_core_solvers(SolverRegistry& registry) {
  registry.add(std::make_unique<TwoSweepSolver>());
  registry.add(std::make_unique<FastTwoSweepSolver>(), {"fast"});
  registry.add(std::make_unique<CongestOldcSolver>(), {"congest"});
  registry.add(std::make_unique<Slack1ArbdefectiveSolver>(), {"slack1"});
  registry.add(std::make_unique<DegPlusOneSolver>(), {"degplus1"});
  registry.add(std::make_unique<ThetaSolver>());
}

}  // namespace detail
}  // namespace dcolor
