// Arena-backed palette storage for list defective coloring instances.
//
// The Two-Sweep family is round-cheap but state-heavy: every node carries
// a color list L_v with per-color defects d_v. Storing each list as a
// `ColorList` (two private heap vectors per node) makes instance
// construction and memory footprint — not round execution — the scaling
// bottleneck. `PaletteStore` replaces that layout with
//
//   * two flat CSR arrays holding ALL colors and defects back to back
//     ("the arena"),
//   * one (offset, len, weight) record per DISTINCT palette, and
//   * one 32-bit palette id per node.
//
// Palettes are deduplicated structurally on insert: the common cases —
// identical `[0..Δ]` lists (Δ+1-coloring), uniform-defect lists from
// Theorem 1.4's d_i = 2^i − 1 iterations, contention instances — store
// ONE palette shared by millions of nodes, so memory is
// O(distinct palettes + n) instead of O(Σ|L_v|).
//
// Nodes hand out lightweight `PaletteView` spans. `PaletteView` also
// converts implicitly from `ColorList&` (the compatibility constructor),
// so helpers taking a view accept both layouts and tests migrate
// incrementally.
//
// Construction is deterministic and parallel: `build_parallel` cuts
// [0, n) into FIXED-SIZE chunks (independent of the thread count), builds
// a chunk-local store per chunk on the PR 1 thread pool, and merges the
// chunk stores in chunk order. The merge reproduces the exact
// first-appearance interning order of a serial build, so the arena bytes
// are bit-identical for every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "storage/storage_vec.h"

namespace dcolor {

class ColorList;

/// A borrowed, non-owning view of one node's palette: sorted colors,
/// aligned defects, and the precomputed weight Σ(d+1). Copy freely; the
/// backing store (or ColorList) must outlive the view.
class PaletteView {
 public:
  PaletteView() = default;

  PaletteView(const Color* colors, const int* defects, std::uint32_t size,
              std::int64_t weight) noexcept
      : colors_(colors), defects_(defects), size_(size), weight_(weight) {}

  /// Compatibility constructor: view over a legacy ColorList (implicit on
  /// purpose — call sites taking PaletteView accept a ColorList directly).
  PaletteView(const ColorList& list) noexcept;  // NOLINT(runtime/explicit)

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::span<const Color> colors() const noexcept { return {colors_, size_}; }
  std::span<const int> defects() const noexcept { return {defects_, size_}; }

  Color color(std::size_t i) const noexcept { return colors_[i]; }
  int defect(std::size_t i) const noexcept { return defects_[i]; }

  bool contains(Color c) const noexcept;

  /// Defect of color c; nullopt if c not in the palette.
  std::optional<int> defect_of(Color c) const noexcept;

  /// Σ_{x∈L}(d(x)+1) — precomputed, O(1).
  std::int64_t weight() const noexcept { return weight_; }

  /// New ColorList keeping only colors with transformed defect >= 0;
  /// `f(color, defect) -> new defect` applied to each entry.
  template <typename F>
  ColorList transform(F&& f) const;

  friend bool operator==(const PaletteView& a, const PaletteView& b) noexcept {
    if (a.size_ != b.size_) return false;
    for (std::uint32_t i = 0; i < a.size_; ++i) {
      if (a.colors_[i] != b.colors_[i] || a.defects_[i] != b.defects_[i])
        return false;
    }
    return true;
  }

 private:
  const Color* colors_ = nullptr;
  const int* defects_ = nullptr;
  std::uint32_t size_ = 0;
  std::int64_t weight_ = 0;
};

/// One node's color list with per-color defects, self-owned. Kept as the
/// construction/builder type (sorts and validates on construction); bulk
/// storage lives in PaletteStore.
class ColorList {
 public:
  ColorList() = default;

  /// Builds from (color, defect) pairs; colors must be distinct, defects
  /// non-negative. Sorted by color on construction.
  ColorList(std::vector<Color> colors, std::vector<int> defects);

  /// All-zero-defect list (proper list coloring).
  static ColorList zero_defect(std::vector<Color> colors);

  /// Uniform defect d for every color.
  static ColorList uniform(std::vector<Color> colors, int defect);

  std::size_t size() const noexcept { return colors_.size(); }
  bool empty() const noexcept { return colors_.empty(); }

  const std::vector<Color>& colors() const noexcept { return colors_; }
  const std::vector<int>& defects() const noexcept { return defects_; }

  Color color(std::size_t i) const { return colors_[i]; }
  int defect(std::size_t i) const { return defects_[i]; }

  bool contains(Color c) const noexcept {
    return PaletteView(*this).contains(c);
  }

  /// Defect of color c; nullopt if c not in the list.
  std::optional<int> defect_of(Color c) const noexcept {
    return PaletteView(*this).defect_of(c);
  }

  /// Σ_{x∈L}(d(x)+1) — the left side of every slack condition.
  std::int64_t weight() const noexcept;

  /// New list keeping only colors with transformed defect >= 0.
  template <typename F>
  ColorList transform(F&& f) const {
    return PaletteView(*this).transform(static_cast<F&&>(f));
  }

 private:
  std::vector<Color> colors_;  // sorted ascending
  std::vector<int> defects_;   // aligned with colors_
};

inline PaletteView::PaletteView(const ColorList& list) noexcept
    : colors_(list.colors().data()),
      defects_(list.defects().data()),
      size_(static_cast<std::uint32_t>(list.size())),
      weight_(list.weight()) {}

template <typename F>
ColorList PaletteView::transform(F&& f) const {
  std::vector<Color> cs;
  std::vector<int> ds;
  for (std::uint32_t i = 0; i < size_; ++i) {
    const int nd = f(colors_[i], defects_[i]);
    if (nd >= 0) {
      cs.push_back(colors_[i]);
      ds.push_back(nd);
    }
  }
  return ColorList(std::move(cs), std::move(ds));
}

/// Arena of deduplicated palettes plus a per-node palette-id map.
///
/// Exposes a deliberately vector<ColorList>-shaped facade (`push_back`,
/// `assign`, `emplace_back`, `operator[]`, `size`, iteration) so
/// instance-building code and tests written against the per-node-vector
/// layout keep working unchanged; `operator[]` hands out PaletteView.
class PaletteStore {
 public:
  using PaletteId = std::uint32_t;

  static constexpr std::uint32_t kNoPalette = 0xFFFFFFFFu;

  /// One record per DISTINCT palette. Exactly 32 bytes, padding-free —
  /// the record array is a snapshot file section verbatim, so the layout
  /// is part of the on-disk format (bump the snapshot version if it
  /// changes).
  struct PaletteRecord {
    std::int64_t offset = 0;  ///< start in the arena arrays
    std::int64_t weight = 0;  ///< cached Σ(d+1)
    std::uint64_t hash = 0;   ///< cached hash_palette value: rehashing
                              ///  relinks chains without re-reading (and
                              ///  re-mixing) the palette bytes, and find()
                              ///  skips deep equality on chain collisions
    std::uint32_t len = 0;
    std::uint32_t next = kNoPalette;  ///< hash-bucket chain
  };
  static_assert(sizeof(PaletteRecord) == 32 &&
                    std::is_trivially_copyable_v<PaletteRecord>,
                "PaletteRecord is serialized raw into snapshots");

  PaletteStore() = default;

  // ---- vector-like facade (node axis) --------------------------------

  std::size_t size() const noexcept { return node_palette_.size(); }
  bool empty() const noexcept { return node_palette_.empty(); }
  void reserve(std::size_t n) { node_palette_.reserve(n); }
  void clear();

  /// View of node v's palette.
  PaletteView operator[](std::size_t v) const noexcept {
    return view(node_palette_[v]);
  }

  /// Appends one node whose palette is `list` (interned with dedup).
  void push_back(const ColorList& list) { push_back(PaletteView(list)); }
  void push_back(PaletteView view) { node_palette_.push_back(intern(view)); }

  /// Appends one node, building (and validating/sorting) the palette from
  /// raw (colors, defects) vectors.
  void emplace_back(std::vector<Color> colors, std::vector<int> defects) {
    push_back(ColorList(std::move(colors), std::move(defects)));
  }

  /// n nodes all sharing one palette — the O(1)-palette fast path.
  void assign(std::size_t n, const ColorList& list);

  /// Grows/shrinks the node axis; new nodes get the empty palette. Use
  /// with `set_node` for out-of-order construction (e.g. file readers).
  void resize(std::size_t n);
  void set_node(std::size_t v, const ColorList& list) {
    node_palette_[v] = intern(PaletteView(list));
  }

  struct Iterator {
    const PaletteStore* store;
    std::size_t i;
    PaletteView operator*() const { return (*store)[i]; }
    Iterator& operator++() {
      ++i;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return i != o.i; }
  };
  Iterator begin() const noexcept { return {this, 0}; }
  Iterator end() const noexcept { return {this, size()}; }

  // ---- palette axis ---------------------------------------------------

  /// Interns a palette (content-deduplicated); returns its id.
  PaletteId intern(PaletteView view);

  PaletteId palette_id(std::size_t v) const noexcept {
    return node_palette_[v];
  }

  PaletteView view(PaletteId id) const noexcept {
    const PaletteRecord& p = palettes_[id];
    return {arena_colors_.data() + p.offset, arena_defects_.data() + p.offset,
            p.len, p.weight};
  }

  // ---- accounting (dedup-verification tests, bench reporting) ---------

  /// Distinct palettes stored in the arena.
  std::size_t num_palettes() const noexcept { return palettes_.size(); }
  /// Inserts that hit an existing palette instead of growing the arena.
  std::int64_t dedup_hits() const noexcept { return dedup_hits_; }
  /// Total (color, defect) entries in the arena = Σ over DISTINCT
  /// palettes of |L| — the dedup win is visible as arena_entries() ≪
  /// Σ_v |L_v| on uniform workloads.
  std::int64_t arena_entries() const noexcept {
    return static_cast<std::int64_t>(arena_colors_.size());
  }
  /// Heap bytes held by the arena + per-palette records + per-node ids.
  /// CAPACITY-based: a leased scratch arena retains capacity from earlier
  /// jobs, so this depends on the reuse schedule. Use content_bytes() for
  /// schedule-independent accounting.
  std::int64_t memory_bytes() const noexcept;
  /// Heap bytes a freshly built store of exactly this content would hold
  /// (SIZE-based, excluding the hash index). Deterministic: a pure
  /// function of the stored palettes and nodes, bit-identical across
  /// arena-reuse histories, thread counts, and engines — the figure batch
  /// reports and the arena Pareto table use for their memory column.
  std::int64_t content_bytes() const noexcept;

  /// Raw arena arrays; byte-comparable across builds (the determinism
  /// contract of build_parallel).
  std::span<const Color> arena_colors() const noexcept {
    return {arena_colors_.data(), arena_colors_.size()};
  }
  std::span<const int> arena_defects() const noexcept {
    return {arena_defects_.data(), arena_defects_.size()};
  }

  // ---- storage seam (snapshot serialization) ---------------------------

  /// Per-distinct-palette records (offsets into the arena); raw section of
  /// the snapshot format.
  std::span<const PaletteRecord> palette_records() const noexcept {
    return {palettes_.data(), palettes_.size()};
  }
  /// Per-node palette ids; raw section of the snapshot format.
  std::span<const PaletteId> node_palette_ids() const noexcept {
    return {node_palette_.data(), node_palette_.size()};
  }

  /// Builds a store that *borrows* prebuilt arena arrays (e.g. sections of
  /// a memory-mapped snapshot) zero-copy. The caller keeps the spans alive
  /// for the store's lifetime. A borrowed store serves every read
  /// (operator[], view, accounting) at full speed; interning NEW palettes
  /// into it fails loudly (the hash index is owner-only), which is the
  /// point — mapped instances are immutable.
  static PaletteStore adopt(std::span<const Color> arena_colors,
                            std::span<const int> arena_defects,
                            std::span<const PaletteRecord> palettes,
                            std::span<const PaletteId> node_palette,
                            std::int64_t dedup_hits);

  /// A zero-copy borrowed view of this store (this object must outlive
  /// it). Carries dedup_hits_ along so the deterministic accounting fields
  /// of a job running over a cached instance match a scratch-built run.
  PaletteStore borrow() const noexcept;

  /// True when the arena arrays are borrowed rather than owned.
  bool borrowed() const noexcept { return arena_colors_.borrowed(); }

  // ---- deterministic parallel construction ----------------------------

  /// Number of nodes per construction chunk. Fixed (never derived from
  /// the thread count) so the chunk decomposition — and therefore the
  /// merged arena — is identical for every thread count.
  static constexpr std::int64_t kChunkNodes = 8192;

  /// Scratch buffers a build callback fills for one node. Reused across
  /// the whole chunk: steady-state construction performs no per-node
  /// allocation once the buffers reached the palette size high-water mark.
  struct Scratch {
    std::vector<Color> colors;
    std::vector<int> defects;
  };

  /// Builds a store for n nodes. `fill(v, scratch)` writes node v's
  /// palette into scratch.colors/scratch.defects (cleared beforehand);
  /// entries need not be sorted (a joint sort runs per node, matching the
  /// ColorList constructor's validation). Chunks run on `threads` workers
  /// (1 = inline serial); the result is bit-identical for every value.
  /// `expected_entries` (optional) pre-sizes the arena — pass an upper
  /// bound on Σ|L_v| when known; -1 grows geometrically as before.
  template <typename F>
  static PaletteStore build_parallel(std::int64_t n, int threads, F&& fill,
                                     std::int64_t expected_entries = -1);

  /// Appends one node from scratch buffers: sorts/validates in place and
  /// interns without constructing a ColorList (the allocation-free path
  /// build_parallel uses per node).
  void push_scratch(Scratch& scratch);

  /// Appends every node of `other`, re-interning its distinct palettes in
  /// first-appearance order (the chunk-merge step of build_parallel).
  void merge_append(const PaletteStore& other);

  /// Pre-sizes the arena arrays for `entries` total (color, defect)
  /// pairs. Purely an allocation hint: large all-distinct builds
  /// otherwise pay the geometric-growth copies of a multi-hundred-MB
  /// arena. Safe to over-estimate (Σ|L_v| is always an upper bound).
  void reserve_arena(std::int64_t entries) {
    if (entries <= 0) return;
    arena_colors_.reserve(static_cast<std::size_t>(entries));
    arena_defects_.reserve(static_cast<std::size_t>(entries));
  }

 private:
  static std::uint64_t hash_palette(PaletteView view) noexcept;

  /// Appends the palette bytes to the arena unconditionally (dedup is the
  /// caller's job) and registers the record in the hash index.
  PaletteId append_palette(PaletteView view, std::uint64_t hash);
  void rehash_if_needed();
  PaletteId find(PaletteView view, std::uint64_t hash) const noexcept;

  /// Sorts scratch jointly by color and validates (distinct colors,
  /// non-negative defects) — the flat-buffer equivalent of the ColorList
  /// constructor. Returns the palette weight.
  static std::int64_t normalize_scratch(Scratch& scratch);

  StorageVec<Color> arena_colors_;
  StorageVec<int> arena_defects_;
  StorageVec<PaletteRecord> palettes_;
  StorageVec<PaletteId> node_palette_;
  std::vector<std::uint32_t> buckets_;  ///< power-of-two hash index
                                        ///  (rebuilt, never serialized)
  std::int64_t dedup_hits_ = 0;
};

namespace detail {
/// Type-erased core of build_parallel (implementation in the .cpp so the
/// thread pool stays out of this header).
PaletteStore build_palette_store_parallel(
    std::int64_t n, int threads,
    const std::function<void(std::int64_t, PaletteStore::Scratch&)>& fill,
    std::int64_t expected_entries);
}  // namespace detail

template <typename F>
PaletteStore PaletteStore::build_parallel(std::int64_t n, int threads, F&& fill,
                                          std::int64_t expected_entries) {
  return detail::build_palette_store_parallel(
      n, threads,
      std::function<void(std::int64_t, Scratch&)>(static_cast<F&&>(fill)),
      expected_entries);
}

}  // namespace dcolor
