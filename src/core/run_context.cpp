#include "core/run_context.h"

#include "check/invariant_checker.h"
#include "obs/stats.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace dcolor {

RunScope::RunScope(RunContext& ctx) : ctx_(&ctx) {
  prev_thread_override_ = Network::set_thread_override(ctx.num_threads);
  prev_engine_override_ = set_engine_override(ctx.engine);
  if (ctx.tracer != nullptr) {
    ctx.tracer->install();
    tracer_installed_ = true;
  }
  if (ctx.checker != nullptr) {
    ctx.checker->install();
    checker_installed_ = true;
  }
  if (ctx.stats != nullptr) {
    ctx.stats->install();
    stats_installed_ = true;
  }
}

RunScope::~RunScope() {
  if (stats_installed_) ctx_->stats->uninstall();
  if (checker_installed_) ctx_->checker->uninstall();
  if (tracer_installed_) ctx_->tracer->uninstall();
  set_engine_override(prev_engine_override_);
  Network::set_thread_override(prev_thread_override_);
}

}  // namespace dcolor
