// Lemma 3.5 (FK23a, Theorem 3): color space reduction for OLDC.
//
// Given a base OLDC algorithm A that handles color spaces of size λ with
// slack κ(λ) (i.e. Σ(d_v(x)+1) > κ(λ)·β_v), instances over a color space
// of size C with slack κ(λ)^⌈log_λ C⌉ are solved in ⌈log_λ C⌉ levels:
//
//  * pad the space to λ^L, L = ⌈log_λ C⌉, and view colors as base-λ
//    digit strings;
//  * at each of the first L−1 levels every node picks one of the λ
//    sub-spaces of its current space — itself an OLDC instance over "colors"
//    {0,…,λ−1} with derived defects D_i = ⌈W_i / K⌉ − 1, where W_i is the
//    list weight inside sub-space i and K the slack still owed to the
//    remaining levels (this keeps the invariant W > β·K strict, see the
//    analysis in the .cpp);
//  * edges whose endpoints chose different sub-spaces at an earlier level
//    can never conflict again and are dropped;
//  * the last level runs A on the true colors (≤ λ of them per node) with
//    the true defects.
//
// Round cost: L sequential invocations of A. Message width: A only ever
// sees λ-sized color spaces, so per-message bits stay O(log q + p·log λ) —
// the mechanism behind Theorem 1.2's CONGEST bound.
#pragma once

#include <functional>
#include <vector>

#include "core/instance.h"

namespace dcolor {

/// Base OLDC solver: gets the instance, a proper q-coloring, and q.
using OldcSolver = std::function<ColoringResult(
    const OldcInstance&, const std::vector<Color>&, std::int64_t)>;

/// Applies Lemma 3.5. Requires weight(v) > kappa_lambda^L · β_v for all v
/// with outdegree >= 1 (L = ⌈log_lambda(color_space)⌉); the caller
/// guarantees this (e.g. Theorem 1.2 asks for 3·√C which dominates
/// (2(1+ε))^⌈log₄C⌉).
ColoringResult color_space_reduction(const OldcInstance& inst,
                                     const std::vector<Color>& initial,
                                     std::int64_t q, std::int64_t lambda,
                                     double kappa_lambda,
                                     const OldcSolver& base);

}  // namespace dcolor
