#include "core/solver_registry.h"

#include <algorithm>

#include "util/check.h"

namespace dcolor {

SolverRegistry::SolverRegistry() {
  detail::register_core_solvers(*this);
  detail::register_coloring_solvers(*this);
  detail::register_baseline_solvers(*this);
  detail::register_check_solvers(*this);
}

SolverRegistry& SolverRegistry::get() {
  static SolverRegistry registry;
  return registry;
}

const Solver* SolverRegistry::find(std::string_view name_or_alias) const {
  for (const Entry& e : entries_) {
    if (e.solver->name() == name_or_alias) return e.solver.get();
    for (const std::string& a : e.aliases) {
      if (a == name_or_alias) return e.solver.get();
    }
  }
  return nullptr;
}

const Solver& SolverRegistry::require(std::string_view name_or_alias) const {
  const Solver* solver = find(name_or_alias);
  if (solver != nullptr) return *solver;
  std::string available;
  for (const Solver* s : solvers()) {
    if (!available.empty()) available += ", ";
    available += s->name();
  }
  DCOLOR_CHECK_MSG(false, "unknown solver \"" << name_or_alias
                                              << "\"; available: "
                                              << available);
  // Unreachable; DCOLOR_CHECK_MSG throws.
  throw CheckError("unreachable");
}

std::vector<const Solver*> SolverRegistry::solvers() const {
  std::vector<const Solver*> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.solver.get());
  std::sort(out.begin(), out.end(), [](const Solver* a, const Solver* b) {
    return a->name() < b->name();
  });
  return out;
}

std::vector<std::string> SolverRegistry::aliases_of(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.solver->name() == name) return e.aliases;
  }
  return {};
}

void SolverRegistry::add(std::unique_ptr<Solver> solver,
                         std::vector<std::string> aliases) {
  DCOLOR_CHECK(solver != nullptr);
  DCOLOR_CHECK_MSG(find(solver->name()) == nullptr,
                   "duplicate solver name " << solver->name());
  for (const std::string& a : aliases) {
    DCOLOR_CHECK_MSG(find(a) == nullptr,
                     "solver alias " << a << " collides with an existing "
                                        "registration");
  }
  entries_.push_back(Entry{std::move(solver), std::move(aliases)});
}

}  // namespace dcolor
