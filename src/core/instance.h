// Problem instance types for list defective coloring.
//
// Terminology (paper, Sections 1–2):
//  * A *list defective coloring* (LDC) instance gives every node v a color
//    list L_v and a defect function d_v : L_v -> N0. A solution assigns
//    x_v ∈ L_v with at most d_v(x_v) same-colored *neighbors*.
//  * An *oriented list defective coloring* (OLDC) instance additionally
//    fixes an edge orientation as input; only same-colored OUT-neighbors
//    count against d_v(x_v).
//  * A *list arbdefective coloring* instance asks for a coloring plus an
//    orientation of the monochromatic edges such that every node has at
//    most d_v(x_v) same-colored out-neighbors (the orientation is output).
//  * Slack (Definition 1.1): the instance has slack S if
//    Σ_{x∈L_v}(d_v(x)+1) > S·deg(v) for all v.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/palette_store.h"
#include "graph/coloring_checks.h"
#include "graph/graph.h"
#include "graph/orientation.h"
#include "sim/metrics.h"

namespace dcolor {

class Rng;

/// Oriented list defective coloring instance (orientation is INPUT).
///
/// With `symmetric == true` the instance lives on the symmetric digraph:
/// every neighbor counts as an out-neighbor and β_v = max(1, deg(v)).
/// Solving such an instance yields an UNDIRECTED list defective coloring —
/// the reading behind the paper's d-defective 3-coloring claim
/// (d > (2Δ−3)/3, Section 1.1). `orientation` is ignored in that mode.
struct OldcInstance {
  const Graph* graph = nullptr;
  Orientation orientation;
  PaletteStore lists;  ///< per-node palettes, arena-backed + deduplicated
  std::int64_t color_space = 0;  ///< colors are from [0, color_space)
  bool symmetric = false;

  /// Out-neighbors of v under the instance's digraph semantics.
  std::span<const NodeId> out_neighbors(NodeId v) const {
    return symmetric ? graph->neighbors(v) : orientation.out_neighbors(v);
  }

  /// True iff u -> v is an arc of the instance's digraph.
  bool is_out(NodeId u, NodeId v) const {
    return symmetric ? graph->has_edge(u, v)
                     : orientation.is_out_edge(u, v);
  }

  /// Outdegree under the instance's digraph semantics.
  int effective_outdegree(NodeId v) const {
    return symmetric ? graph->degree(v) : orientation.outdegree(v);
  }

  /// β_v = max(1, outdegree) per the paper's convention.
  int beta_v(NodeId v) const { return std::max(1, effective_outdegree(v)); }

  /// β = max_v β_v.
  int beta() const;

  /// Minimum over v of weight(v) / β_v; Theorem 1.1 requires this to
  /// exceed (1+ε)·max{p, |L_v|/p} per node — see `satisfies_theorem11`.
  double min_weight_over_beta() const;

  /// Checks the per-node premise of Theorem 1.1 for given p and ε.
  bool satisfies_theorem11(int p, double eps) const;

  /// Checks the premise of Theorem 1.2: weight(v) >= 3·√C·β_v.
  bool satisfies_theorem12() const;

  /// Maximum list size Λ.
  std::size_t max_list_size() const;
};

/// Undirected list defective coloring instance (problem family P_D).
struct ListDefectiveInstance {
  const Graph* graph = nullptr;
  PaletteStore lists;  ///< per-node palettes, arena-backed + deduplicated
  std::int64_t color_space = 0;

  /// Largest S such that weight(v) > S·deg(v) for all v (∞-free: returns
  /// a large value when some node has degree 0).
  double slack() const;
};

/// List arbdefective coloring instance (problem family P_A); identical
/// data to the undirected case — the orientation is part of the OUTPUT.
using ArbdefectiveInstance = ListDefectiveInstance;

/// A coloring result together with its simulated execution cost.
struct ColoringResult {
  std::vector<Color> colors;
  RoundMetrics metrics;
};

/// A coloring plus output orientation (for arbdefective problems).
struct ArbdefectiveResult {
  std::vector<Color> colors;
  Orientation orientation;
  RoundMetrics metrics;
};

/// ---- Validation --------------------------------------------------------

/// All nodes colored from their lists, out-defects within d_v(x_v).
bool validate_oldc(const OldcInstance& inst, const std::vector<Color>& colors);

/// All nodes colored from their lists, undirected defects within d_v(x_v).
bool validate_list_defective(const ListDefectiveInstance& inst,
                             const std::vector<Color>& colors);

/// All nodes colored from their lists, out-defects (under the OUTPUT
/// orientation) within d_v(x_v).
bool validate_arbdefective(const ArbdefectiveInstance& inst,
                           const ArbdefectiveResult& result);

/// ---- Instance generators ----------------------------------------------

/// Random OLDC instance: each node draws a list of `list_size` colors from
/// [0, color_space) with uniform defect `defect`.
OldcInstance random_uniform_oldc(const Graph& g, Orientation orientation,
                                 std::int64_t color_space, int list_size,
                                 int defect, Rng& rng);

/// Random OLDC instance with *heterogeneous* defects: per color, defect is
/// uniform in [0, max_defect]; list sizes are re-drawn until the
/// Theorem 1.1 premise holds for the given p (keeps instances feasible but
/// tight). Colors from [0, color_space).
OldcInstance random_heterogeneous_oldc(const Graph& g, Orientation orientation,
                                       std::int64_t color_space, int p,
                                       double eps, Rng& rng);

/// (deg+1)-list coloring instance: node v gets deg(v)+1 random colors from
/// [0, color_space), zero defects. Requires color_space > Δ.
ListDefectiveInstance degree_plus_one_instance(const Graph& g,
                                               std::int64_t color_space,
                                               Rng& rng);

/// The classic (Δ+1)-coloring instance: every list = {0,…,Δ}, zero defect.
ListDefectiveInstance delta_plus_one_instance(const Graph& g);

/// Uniform-defect undirected instance with `list_size` colors per node.
ListDefectiveInstance random_uniform_list_defective(const Graph& g,
                                                    std::int64_t color_space,
                                                    int list_size, int defect,
                                                    Rng& rng);

/// ---- Adversarial generators (used by the E3/E13 stress experiments) ----

/// Full-contention OLDC instance: every node holds the SAME uniform-defect
/// list {0,…,list_size−1}. Removes the slack randomness hides behind —
/// below the Eq. (2) threshold these instances actually fail.
OldcInstance contention_oldc(const Graph& g, Orientation orientation,
                             int list_size, int defect);

/// Orientation pointing every edge toward the endpoint with the LARGER
/// value in `priority_to_beat` — e.g. toward the later-acting node of a
/// sweep when given the initial coloring. The adversarial direction for
/// one-sweep algorithms: Phase I sees k_v == 0 everywhere.
Orientation orientation_toward_larger(const Graph& g,
                                      const std::vector<Color>& values);

}  // namespace dcolor
