// Incremental recoloring: repair a coloring on a dirty region instead of
// re-solving the whole instance.
//
// The paper's framing makes local repair natural: a solved instance is a
// list defective coloring, and after a topology mutation only the nodes
// whose contracts may now be violated — the dirty region — need new
// colors. The repair builds a sub-instance on the dirty nodes whose
// palettes are the original lists with each color's defect reduced by the
// consumption of FIXED (non-dirty) neighbors already committed to it
// (colors whose reduced defect would go negative drop out entirely), and
// re-runs Two-Sweep (Algorithm 1) on that sub-instance seeded from a
// trivially proper coloring. A fixed-point of the sub-instance is, by
// construction, a valid coloring of the dirty nodes against the full
// instance: every constraint involving a dirty node is either inside the
// subgraph (checked by the sub-solve) or against a fixed neighbor (paid
// for in the reduced defect).
//
// The sub-instance generally sits below the Eq. (2) premise — the repair
// runs with skip_precondition_check and treats a Phase-II dead end as a
// signal, not a failure: the dirty region grows by one hop (freeing the
// colors of the ring that boxed it in) and the repair retries. After
// `max_growth` rounds a deterministic greedy pass over the sub-instance
// runs as the last resort; only when that also dead-ends does the call
// throw, telling the caller to fall back to a from-scratch solve.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/instance.h"
#include "core/run_context.h"

namespace dcolor {

/// The instance view a repair runs against. Adjacency is a callback so a
/// mutable topology (the serve layer's dynamic instances) repairs in
/// place without materializing a CSR graph of the full n first — the
/// repair only ever asks for the neighborhoods of dirty nodes.
struct RecolorProblem {
  NodeId num_nodes = 0;
  /// Sorted neighbor list of v; spans must stay valid for the call.
  std::function<std::span<const NodeId>(NodeId)> neighbors;
  const PaletteStore* lists = nullptr;  ///< full per-node palettes
  std::int64_t color_space = 0;
  /// Symmetric (undirected) defect semantics; false counts only
  /// out-neighbors, via `is_out`.
  bool symmetric = true;
  /// u -> v arc test (required iff !symmetric).
  std::function<bool(NodeId, NodeId)> is_out;
};

struct RecolorOptions {
  int p = 2;           ///< Two-Sweep Phase-I set size
  int max_growth = 3;  ///< dead-end retries, each growing the region 1 hop
};

struct RecolorResult {
  std::vector<Color> colors;          ///< full repaired coloring
  std::int64_t colors_changed = 0;    ///< nodes whose color differs
  std::int64_t dirty_nodes = 0;       ///< final dirty-region size
  std::int64_t rounds = 0;            ///< simulated rounds of the repair
  bool used_greedy_fallback = false;  ///< Two-Sweep dead-ended every round
};

/// Repairs `colors` so that every node again satisfies its list/defect
/// contract, changing only nodes in (a grown superset of) `dirty`.
/// `colors[v]` may be kNoColor or contract-violating for dirty nodes;
/// FIXED nodes must satisfy their contracts against other fixed nodes
/// (the caller's invariant — mutations only invalidate the region they
/// report). Throws CheckError when even the greedy fallback dead-ends;
/// the caller should then re-solve from scratch.
RecolorResult recolor_dirty(const RecolorProblem& problem,
                            std::vector<Color> colors,
                            std::vector<NodeId> dirty, RunContext& ctx,
                            const RecolorOptions& options = {});

}  // namespace dcolor
