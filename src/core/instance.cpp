#include "core/instance.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "sim/trace.h"
#include "util/check.h"
#include "util/math.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dcolor {

int OldcInstance::beta() const {
  int b = 1;
  for (NodeId v = 0; v < graph->num_nodes(); ++v) b = std::max(b, beta_v(v));
  return b;
}

double OldcInstance::min_weight_over_beta() const {
  double best = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const double w =
        static_cast<double>(lists[static_cast<std::size_t>(v)].weight());
    best = std::min(best, w / beta_v(v));
  }
  return best;
}

bool OldcInstance::satisfies_theorem11(int p, double eps) const {
  DCOLOR_CHECK(p >= 1);
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const auto& lst = lists[static_cast<std::size_t>(v)];
    const double need =
        (1.0 + eps) *
        std::max(static_cast<double>(p),
                 static_cast<double>(lst.size()) / static_cast<double>(p)) *
        beta_v(v);
    if (!(static_cast<double>(lst.weight()) > need)) return false;
  }
  return true;
}

bool OldcInstance::satisfies_theorem12() const {
  const double sqrt_c = std::sqrt(static_cast<double>(color_space));
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const auto& lst = lists[static_cast<std::size_t>(v)];
    if (static_cast<double>(lst.weight()) <
        3.0 * sqrt_c * beta_v(v))
      return false;
  }
  return true;
}

std::size_t OldcInstance::max_list_size() const {
  std::size_t m = 0;
  for (const auto& lst : lists) m = std::max(m, lst.size());
  return m;
}

double ListDefectiveInstance::slack() const {
  double best = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const int deg = graph->degree(v);
    if (deg == 0) continue;
    const double w =
        static_cast<double>(lists[static_cast<std::size_t>(v)].weight());
    best = std::min(best, w / deg);
  }
  return best;
}

bool validate_oldc(const OldcInstance& inst, const std::vector<Color>& colors) {
  const Graph& g = *inst.graph;
  if (static_cast<NodeId>(colors.size()) != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = colors[static_cast<std::size_t>(v)];
    const auto d = inst.lists[static_cast<std::size_t>(v)].defect_of(c);
    if (!d.has_value()) return false;  // uncolored or off-list
    int conflicts = 0;
    for (NodeId u : inst.out_neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c) ++conflicts;
    }
    if (conflicts > *d) return false;
  }
  return true;
}

bool validate_list_defective(const ListDefectiveInstance& inst,
                             const std::vector<Color>& colors) {
  const Graph& g = *inst.graph;
  if (static_cast<NodeId>(colors.size()) != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = colors[static_cast<std::size_t>(v)];
    const auto d = inst.lists[static_cast<std::size_t>(v)].defect_of(c);
    if (!d.has_value()) return false;
    int conflicts = 0;
    for (NodeId u : g.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c) ++conflicts;
    }
    if (conflicts > *d) return false;
  }
  return true;
}

bool validate_arbdefective(const ArbdefectiveInstance& inst,
                           const ArbdefectiveResult& result) {
  const Graph& g = *inst.graph;
  if (static_cast<NodeId>(result.colors.size()) != g.num_nodes()) return false;
  if (result.orientation.num_nodes() != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = result.colors[static_cast<std::size_t>(v)];
    const auto d = inst.lists[static_cast<std::size_t>(v)].defect_of(c);
    if (!d.has_value()) return false;
    int conflicts = 0;
    for (NodeId u : result.orientation.out_neighbors(v)) {
      if (result.colors[static_cast<std::size_t>(u)] == c) ++conflicts;
    }
    if (conflicts > *d) return false;
  }
  return true;
}

namespace {

/// Samples `size` distinct colors from [0, color_space) into `out`
/// (unsorted — push_scratch sorts). Floyd's algorithm; membership checks
/// switch from a linear scan to a thread-reused hash set past 128 colors
/// so high-degree (deg+1)-lists stay O(size). No per-call allocation in
/// steady state.
void sample_colors_into(Rng& rng, std::int64_t color_space, int size,
                        std::vector<Color>& out) {
  out.clear();
  const auto n = static_cast<std::int64_t>(color_space);
  if (size <= 128) {
    for (std::int64_t j = n - size; j < n; ++j) {
      const auto t = static_cast<Color>(
          rng.below(static_cast<std::uint64_t>(j) + 1));
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      } else {
        out.push_back(static_cast<Color>(j));
      }
    }
    return;
  }
  static thread_local std::unordered_set<Color> seen;
  seen.clear();
  for (std::int64_t j = n - size; j < n; ++j) {
    const auto t = static_cast<Color>(
        rng.below(static_cast<std::uint64_t>(j) + 1));
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(static_cast<Color>(j));
      out.push_back(static_cast<Color>(j));
    }
  }
}

}  // namespace

OldcInstance random_uniform_oldc(const Graph& g, Orientation orientation,
                                 std::int64_t color_space, int list_size,
                                 int defect, Rng& rng) {
  DCOLOR_CHECK(list_size >= 1 && list_size <= color_space);
  DCOLOR_CHECK(defect >= 0);
  PhaseSpan span("setup:random_uniform_oldc");
  OldcInstance inst;
  inst.graph = &g;
  inst.orientation = std::move(orientation);
  inst.color_space = color_space;
  const std::uint64_t base = rng();
  inst.lists = PaletteStore::build_parallel(
      g.num_nodes(), default_setup_threads(),
      [&](std::int64_t v, PaletteStore::Scratch& s) {
        Rng r = Rng::stream(base, static_cast<std::uint64_t>(v));
        sample_colors_into(r, color_space, list_size, s.colors);
        s.defects.assign(s.colors.size(), defect);
      });
  return inst;
}

OldcInstance random_heterogeneous_oldc(const Graph& g, Orientation orientation,
                                       std::int64_t color_space, int p,
                                       double eps, Rng& rng) {
  DCOLOR_CHECK(p >= 1);
  PhaseSpan span("setup:random_heterogeneous_oldc");
  OldcInstance inst;
  inst.graph = &g;
  inst.orientation = std::move(orientation);
  inst.color_space = color_space;
  const std::uint64_t base = rng();
  const int pool_size = static_cast<int>(
      std::min<std::int64_t>(color_space, 4L * p * p + 16));
  std::atomic<NodeId> failed{-1};
  inst.lists = PaletteStore::build_parallel(
      g.num_nodes(), default_setup_threads(),
      [&](std::int64_t v, PaletteStore::Scratch& s) {
        const int beta = inst.beta_v(static_cast<NodeId>(v));
        // Grow a random list with random defects until the Theorem 1.1
        // premise for (p, eps) holds at this node; defects are drawn
        // around (1+ε)·β/p so the per-color weight outpaces the |L|/p
        // branch of the requirement and the threshold is met after
        // roughly p² colors.
        const int max_defect = std::max(
            1, static_cast<int>(std::ceil((1.0 + eps) * beta / p)));
        Rng r = Rng::stream(base, static_cast<std::uint64_t>(v));
        std::int64_t weight = 0;
        auto premise_met = [&]() {
          const double need =
              (1.0 + eps) *
              std::max(static_cast<double>(p),
                       static_cast<double>(s.colors.size()) /
                           static_cast<double>(p)) *
              beta;
          return static_cast<double>(weight) > need;
        };
        sample_colors_into(r, color_space, pool_size, s.colors);
        std::size_t kept = 0;
        for (const Color c : s.colors) {
          if (premise_met() && static_cast<int>(kept) >= p) break;
          const int d = static_cast<int>(r.below(
              static_cast<std::uint64_t>(2 * max_defect + 1)));
          s.colors[kept++] = c;
          s.defects.push_back(d);
          weight += d + 1;
        }
        s.colors.resize(kept);
        if (!premise_met()) {
          NodeId expected = -1;
          failed.compare_exchange_strong(expected, static_cast<NodeId>(v));
        }
      });
  DCOLOR_CHECK_MSG(failed.load() < 0,
                   "color space too small to satisfy Theorem 1.1 premise at "
                   "node " << failed.load() << " (increase color_space)");
  return inst;
}

ListDefectiveInstance degree_plus_one_instance(const Graph& g,
                                               std::int64_t color_space,
                                               Rng& rng) {
  DCOLOR_CHECK_MSG(color_space > g.max_degree(),
                   "color space must exceed Δ for (deg+1)-lists");
  PhaseSpan span("setup:degree_plus_one_instance");
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = color_space;
  const std::uint64_t base = rng();
  inst.lists = PaletteStore::build_parallel(
      g.num_nodes(), default_setup_threads(),
      [&](std::int64_t v, PaletteStore::Scratch& s) {
        Rng r = Rng::stream(base, static_cast<std::uint64_t>(v));
        sample_colors_into(r, color_space,
                           g.degree(static_cast<NodeId>(v)) + 1, s.colors);
        s.defects.assign(s.colors.size(), 0);
      });
  return inst;
}

ListDefectiveInstance delta_plus_one_instance(const Graph& g) {
  PhaseSpan span("setup:delta_plus_one_instance");
  const int delta = g.max_degree();
  std::vector<Color> all(static_cast<std::size_t>(delta) + 1);
  std::iota(all.begin(), all.end(), 0);
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = delta + 1;
  // One shared palette for every node — the dedup fast path.
  inst.lists.assign(static_cast<std::size_t>(g.num_nodes()),
                    ColorList::zero_defect(all));
  return inst;
}

ListDefectiveInstance random_uniform_list_defective(const Graph& g,
                                                    std::int64_t color_space,
                                                    int list_size, int defect,
                                                    Rng& rng) {
  DCOLOR_CHECK(list_size >= 1 && list_size <= color_space);
  DCOLOR_CHECK(defect >= 0);
  PhaseSpan span("setup:random_uniform_list_defective");
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = color_space;
  const std::uint64_t base = rng();
  inst.lists = PaletteStore::build_parallel(
      g.num_nodes(), default_setup_threads(),
      [&](std::int64_t v, PaletteStore::Scratch& s) {
        Rng r = Rng::stream(base, static_cast<std::uint64_t>(v));
        sample_colors_into(r, color_space, list_size, s.colors);
        s.defects.assign(s.colors.size(), defect);
      });
  return inst;
}

OldcInstance contention_oldc(const Graph& g, Orientation orientation,
                             int list_size, int defect) {
  DCOLOR_CHECK(list_size >= 1);
  PhaseSpan span("setup:contention_oldc");
  std::vector<Color> shared(static_cast<std::size_t>(list_size));
  std::iota(shared.begin(), shared.end(), 0);
  OldcInstance inst;
  inst.graph = &g;
  inst.orientation = std::move(orientation);
  inst.color_space = list_size;
  inst.lists.assign(static_cast<std::size_t>(g.num_nodes()),
                    ColorList::uniform(shared, defect));
  return inst;
}

Orientation orientation_toward_larger(const Graph& g,
                                      const std::vector<Color>& values) {
  DCOLOR_CHECK(static_cast<NodeId>(values.size()) == g.num_nodes());
  return Orientation::from_predicate(g, [&](NodeId a, NodeId b) {
    const Color va = values[static_cast<std::size_t>(a)];
    const Color vb = values[static_cast<std::size_t>(b)];
    return vb > va || (vb == va && b > a);
  });
}

}  // namespace dcolor
