#include "core/instance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/math.h"
#include "util/rng.h"

namespace dcolor {

ColorList::ColorList(std::vector<Color> colors, std::vector<int> defects)
    : colors_(std::move(colors)), defects_(std::move(defects)) {
  DCOLOR_CHECK(colors_.size() == defects_.size());
  // Sort jointly by color.
  std::vector<std::size_t> order(colors_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return colors_[a] < colors_[b]; });
  std::vector<Color> cs(colors_.size());
  std::vector<int> ds(colors_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    cs[i] = colors_[order[i]];
    ds[i] = defects_[order[i]];
    DCOLOR_CHECK_MSG(ds[i] >= 0, "negative defect");
    if (i > 0) DCOLOR_CHECK_MSG(cs[i] != cs[i - 1], "duplicate color " << cs[i]);
  }
  colors_ = std::move(cs);
  defects_ = std::move(ds);
}

ColorList ColorList::zero_defect(std::vector<Color> colors) {
  std::vector<int> d(colors.size(), 0);
  return {std::move(colors), std::move(d)};
}

ColorList ColorList::uniform(std::vector<Color> colors, int defect) {
  std::vector<int> d(colors.size(), defect);
  return {std::move(colors), std::move(d)};
}

bool ColorList::contains(Color c) const noexcept {
  return std::binary_search(colors_.begin(), colors_.end(), c);
}

std::optional<int> ColorList::defect_of(Color c) const noexcept {
  const auto it = std::lower_bound(colors_.begin(), colors_.end(), c);
  if (it == colors_.end() || *it != c) return std::nullopt;
  return defects_[static_cast<std::size_t>(it - colors_.begin())];
}

std::int64_t ColorList::weight() const noexcept {
  std::int64_t w = 0;
  for (int d : defects_) w += d + 1;
  return w;
}

int OldcInstance::beta() const {
  int b = 1;
  for (NodeId v = 0; v < graph->num_nodes(); ++v) b = std::max(b, beta_v(v));
  return b;
}

double OldcInstance::min_weight_over_beta() const {
  double best = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const double w =
        static_cast<double>(lists[static_cast<std::size_t>(v)].weight());
    best = std::min(best, w / beta_v(v));
  }
  return best;
}

bool OldcInstance::satisfies_theorem11(int p, double eps) const {
  DCOLOR_CHECK(p >= 1);
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const auto& lst = lists[static_cast<std::size_t>(v)];
    const double need =
        (1.0 + eps) *
        std::max(static_cast<double>(p),
                 static_cast<double>(lst.size()) / static_cast<double>(p)) *
        beta_v(v);
    if (!(static_cast<double>(lst.weight()) > need)) return false;
  }
  return true;
}

bool OldcInstance::satisfies_theorem12() const {
  const double sqrt_c = std::sqrt(static_cast<double>(color_space));
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const auto& lst = lists[static_cast<std::size_t>(v)];
    if (static_cast<double>(lst.weight()) <
        3.0 * sqrt_c * beta_v(v))
      return false;
  }
  return true;
}

std::size_t OldcInstance::max_list_size() const {
  std::size_t m = 0;
  for (const auto& lst : lists) m = std::max(m, lst.size());
  return m;
}

double ListDefectiveInstance::slack() const {
  double best = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const int deg = graph->degree(v);
    if (deg == 0) continue;
    const double w =
        static_cast<double>(lists[static_cast<std::size_t>(v)].weight());
    best = std::min(best, w / deg);
  }
  return best;
}

bool validate_oldc(const OldcInstance& inst, const std::vector<Color>& colors) {
  const Graph& g = *inst.graph;
  if (static_cast<NodeId>(colors.size()) != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = colors[static_cast<std::size_t>(v)];
    const auto d = inst.lists[static_cast<std::size_t>(v)].defect_of(c);
    if (!d.has_value()) return false;  // uncolored or off-list
    int conflicts = 0;
    for (NodeId u : inst.out_neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c) ++conflicts;
    }
    if (conflicts > *d) return false;
  }
  return true;
}

bool validate_list_defective(const ListDefectiveInstance& inst,
                             const std::vector<Color>& colors) {
  const Graph& g = *inst.graph;
  if (static_cast<NodeId>(colors.size()) != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = colors[static_cast<std::size_t>(v)];
    const auto d = inst.lists[static_cast<std::size_t>(v)].defect_of(c);
    if (!d.has_value()) return false;
    int conflicts = 0;
    for (NodeId u : g.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == c) ++conflicts;
    }
    if (conflicts > *d) return false;
  }
  return true;
}

bool validate_arbdefective(const ArbdefectiveInstance& inst,
                           const ArbdefectiveResult& result) {
  const Graph& g = *inst.graph;
  if (static_cast<NodeId>(result.colors.size()) != g.num_nodes()) return false;
  if (result.orientation.num_nodes() != g.num_nodes()) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Color c = result.colors[static_cast<std::size_t>(v)];
    const auto d = inst.lists[static_cast<std::size_t>(v)].defect_of(c);
    if (!d.has_value()) return false;
    int conflicts = 0;
    for (NodeId u : result.orientation.out_neighbors(v)) {
      if (result.colors[static_cast<std::size_t>(u)] == c) ++conflicts;
    }
    if (conflicts > *d) return false;
  }
  return true;
}

namespace {

std::vector<Color> random_color_subset(std::int64_t color_space, int size,
                                       Rng& rng) {
  const auto raw = rng.sample_without_replacement(
      static_cast<std::uint64_t>(color_space), static_cast<std::uint64_t>(size));
  std::vector<Color> out;
  out.reserve(raw.size());
  for (auto c : raw) out.push_back(static_cast<Color>(c));
  return out;
}

}  // namespace

OldcInstance random_uniform_oldc(const Graph& g, Orientation orientation,
                                 std::int64_t color_space, int list_size,
                                 int defect, Rng& rng) {
  DCOLOR_CHECK(list_size >= 1 && list_size <= color_space);
  OldcInstance inst;
  inst.graph = &g;
  inst.orientation = std::move(orientation);
  inst.color_space = color_space;
  inst.lists.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    inst.lists.push_back(
        ColorList::uniform(random_color_subset(color_space, list_size, rng),
                           defect));
  }
  return inst;
}

OldcInstance random_heterogeneous_oldc(const Graph& g, Orientation orientation,
                                       std::int64_t color_space, int p,
                                       double eps, Rng& rng) {
  DCOLOR_CHECK(p >= 1);
  OldcInstance inst;
  inst.graph = &g;
  inst.orientation = std::move(orientation);
  inst.color_space = color_space;
  inst.lists.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int beta = inst.beta_v(v);
    // Grow a random list with random defects until the Theorem 1.1
    // premise for (p, eps) holds at this node; defects are drawn around
    // (1+ε)·β/p so the per-color weight outpaces the |L|/p branch of the
    // requirement and the threshold is met after roughly p² colors.
    const int max_defect = std::max(
        1, static_cast<int>(std::ceil((1.0 + eps) * beta / p)));
    std::vector<Color> colors;
    std::vector<int> defects;
    std::int64_t weight = 0;
    auto premise_met = [&]() {
      const double need =
          (1.0 + eps) *
          std::max(static_cast<double>(p),
                   static_cast<double>(colors.size()) / static_cast<double>(p)) *
          beta;
      return static_cast<double>(weight) > need;
    };
    const auto pool = random_color_subset(
        color_space, static_cast<int>(std::min<std::int64_t>(color_space,
                                                             4L * p * p + 16)),
        rng);
    for (Color c : pool) {
      if (premise_met() && static_cast<int>(colors.size()) >= p) break;
      const int d = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(2 * max_defect + 1)));
      colors.push_back(c);
      defects.push_back(d);
      weight += d + 1;
    }
    DCOLOR_CHECK_MSG(premise_met(),
                     "color space too small to satisfy Theorem 1.1 premise at "
                     "node " << v << " (increase color_space)");
    inst.lists.emplace_back(std::move(colors), std::move(defects));
  }
  return inst;
}

ListDefectiveInstance degree_plus_one_instance(const Graph& g,
                                               std::int64_t color_space,
                                               Rng& rng) {
  DCOLOR_CHECK_MSG(color_space > g.max_degree(),
                   "color space must exceed Δ for (deg+1)-lists");
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = color_space;
  inst.lists.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    inst.lists.push_back(ColorList::zero_defect(
        random_color_subset(color_space, g.degree(v) + 1, rng)));
  }
  return inst;
}

ListDefectiveInstance delta_plus_one_instance(const Graph& g) {
  const int delta = g.max_degree();
  std::vector<Color> all(static_cast<std::size_t>(delta) + 1);
  std::iota(all.begin(), all.end(), 0);
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = delta + 1;
  inst.lists.assign(static_cast<std::size_t>(g.num_nodes()),
                    ColorList::zero_defect(all));
  return inst;
}

ListDefectiveInstance random_uniform_list_defective(const Graph& g,
                                                    std::int64_t color_space,
                                                    int list_size, int defect,
                                                    Rng& rng) {
  DCOLOR_CHECK(list_size >= 1 && list_size <= color_space);
  ListDefectiveInstance inst;
  inst.graph = &g;
  inst.color_space = color_space;
  inst.lists.reserve(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    inst.lists.push_back(ColorList::uniform(
        random_color_subset(color_space, list_size, rng), defect));
  }
  return inst;
}

OldcInstance contention_oldc(const Graph& g, Orientation orientation,
                             int list_size, int defect) {
  DCOLOR_CHECK(list_size >= 1);
  std::vector<Color> shared(static_cast<std::size_t>(list_size));
  std::iota(shared.begin(), shared.end(), 0);
  OldcInstance inst;
  inst.graph = &g;
  inst.orientation = std::move(orientation);
  inst.color_space = list_size;
  inst.lists.assign(static_cast<std::size_t>(g.num_nodes()),
                    ColorList::uniform(shared, defect));
  return inst;
}

Orientation orientation_toward_larger(const Graph& g,
                                      const std::vector<Color>& values) {
  DCOLOR_CHECK(static_cast<NodeId>(values.size()) == g.num_nodes());
  return Orientation::from_predicate(g, [&](NodeId a, NodeId b) {
    const Color va = values[static_cast<std::size_t>(a)];
    const Color vb = values[static_cast<std::size_t>(b)];
    return vb > va || (vb == va && b > a);
  });
}

}  // namespace dcolor
