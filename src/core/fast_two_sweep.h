// Algorithm 2: Fast-Two-Sweep (Theorem 1.1 with ε > 0; Section 3.2).
//
// The plain Two-Sweep costs O(q) rounds — too slow when only an expensive
// proper q-coloring is available. Algorithm 2 first computes the Lemma 3.4
// defective coloring Ψ with α = ε/p in O(log* q) rounds, drops the
// Ψ-monochromatic edges, lowers every defect by ⌊β_v·ε/p⌋ to "save"
// defect budget for the dropped edges, and runs Two-Sweep on the remaining
// properly-Ψ-colored subgraph with q' = O((p/ε)²) classes.
//
// Precondition (Eq. 7): Σ_{x∈L_v}(d_v(x)+1) > (1+ε)·max{p, |L_v|/p}·β_v.
// Rounds: O(min{q, (p/ε)² + log* q}).
#pragma once

#include <vector>

#include "core/instance.h"

namespace dcolor {

/// Runs Algorithm 2. `initial_coloring` is a proper q-coloring. ε == 0
/// falls back to the plain Two-Sweep (O(q) rounds).
ColoringResult fast_two_sweep(const OldcInstance& inst,
                              const std::vector<Color>& initial_coloring,
                              std::int64_t q, int p, double eps);

}  // namespace dcolor
