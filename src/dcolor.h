// dcolor — distributed list defective coloring.
//
// Umbrella header for the public API. Reproduction of
//   Fuchs, Kuhn: "Simpler and More General Distributed Coloring Based on
//   Simple List Defective Coloring Algorithms", PODC 2024.
//
// Layering (see DESIGN.md):
//   util/      — log*, RNG, GF(p) polynomials, tables, CSV, CLI flags
//   graph/     — graphs, orientations, generators, hypergraphs, θ
//   sim/       — synchronous message-passing simulator with bit accounting
//   coloring/  — substrate colorings: Linial, Lemma 3.4, arbdefective
//   core/      — the paper's algorithms (Theorems 1.1–1.5 and lemmas)
//   baselines/ — greedy, BE09 two-sweep, Luby, MT20/FK23a comparators
//   io/        — plain-text serialization
#pragma once

#include "coloring/arbdefective.h"      // IWYU pragma: export
#include "coloring/kuhn_defective.h"    // IWYU pragma: export
#include "coloring/linial.h"            // IWYU pragma: export
#include "core/color_space_reduction.h" // IWYU pragma: export
#include "core/congest_oldc.h"          // IWYU pragma: export
#include "core/run_context.h"           // IWYU pragma: export
#include "core/solver.h"                // IWYU pragma: export
#include "core/solver_registry.h"       // IWYU pragma: export
#include "core/defective_from_arbdefective.h"  // IWYU pragma: export
#include "core/edge_coloring.h"         // IWYU pragma: export
#include "core/fast_two_sweep.h"        // IWYU pragma: export
#include "core/instance.h"              // IWYU pragma: export
#include "core/list_coloring.h"         // IWYU pragma: export
#include "core/mis.h"                   // IWYU pragma: export
#include "core/slack_reduction.h"       // IWYU pragma: export
#include "core/theta_color_space.h"     // IWYU pragma: export
#include "core/theta_coloring.h"        // IWYU pragma: export
#include "core/two_sweep.h"             // IWYU pragma: export
#include "graph/algorithms.h"           // IWYU pragma: export
#include "graph/coloring_checks.h"      // IWYU pragma: export
#include "graph/generators.h"           // IWYU pragma: export
#include "graph/graph.h"                // IWYU pragma: export
#include "graph/hypergraph.h"           // IWYU pragma: export
#include "graph/independence.h"         // IWYU pragma: export
#include "graph/line_graph.h"           // IWYU pragma: export
#include "graph/orientation.h"          // IWYU pragma: export
#include "io/instance_io.h"             // IWYU pragma: export
#include "sim/batch_runner.h"           // IWYU pragma: export
#include "sim/network.h"                // IWYU pragma: export
