#include "sim/message.h"

#include "util/check.h"
#include "util/math.h"

namespace dcolor {

void Message::push(std::int64_t value, int bits) {
  DCOLOR_CHECK_MSG(value >= 0, "message fields are non-negative");
  DCOLOR_CHECK_MSG(bits >= 1 && bits <= 63, "field width " << bits);
  DCOLOR_CHECK_MSG(
      bits == 63 || value < (static_cast<std::int64_t>(1) << bits),
      "value " << value << " does not fit in " << bits << " bits");
  fields_.push_back(value);
  bits_ += bits;
}

std::int64_t Message::field(std::size_t i) const {
  DCOLOR_CHECK_MSG(i < fields_.size(),
                   "field " << i << " of " << fields_.size());
  return fields_[i];
}

}  // namespace dcolor
