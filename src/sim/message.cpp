#include "sim/message.h"

#include "util/check.h"
#include "util/math.h"

namespace dcolor {

void Message::push(std::int64_t value, int bits) {
  DCOLOR_CHECK_MSG(value >= 0, "message fields are non-negative");
  DCOLOR_CHECK_MSG(bits >= 1 && bits <= 63, "field width " << bits);
  DCOLOR_CHECK_MSG(
      bits == 63 || value < (static_cast<std::int64_t>(1) << bits),
      "value " << value << " does not fit in " << bits << " bits");
  if (count_ < kInlineFields) {
    inline_[count_] = value;
  } else {
    if (overflow_ == nullptr) {
      overflow_ = std::make_unique<std::vector<std::int64_t>>();
    }
    overflow_->push_back(value);
  }
  ++count_;
  bits_ += bits;
}

std::int64_t Message::field(std::size_t i) const {
  DCOLOR_CHECK_MSG(i < count_, "field " << i << " of " << count_);
  return i < kInlineFields ? inline_[i] : (*overflow_)[i - kInlineFields];
}

}  // namespace dcolor
