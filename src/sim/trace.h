// Execution tracing and metrics streaming for the simulator.
//
// The engine (`Network::run`) emits one `TraceRound` record per
// MATERIALIZED round — round index, why nodes were active (inbox /
// wake-up / dense), traffic delivered and sent, whether the broadcast
// fast path fired, and wall-clock for the round and for each
// thread-pool chunk. Composite algorithms annotate their logical phases
// with RAII `PhaseSpan` objects; the tracer attributes the round stream
// to the innermost open span, building a span tree whose per-phase
// round/bit totals decompose the returned `RoundMetrics` the same way
// the paper's analyses decompose their round bounds.
//
// Sinks (attach any number to one Tracer):
//   * JSONL   — one self-contained JSON object per line (round records
//               and span begin/end events). Nondeterministic fields
//               (wall clocks, per-chunk timings) live exclusively in the
//               trailing "t" object of each line, so stripping `"t"`
//               yields a byte-identical stream for every thread count.
//   * Chrome  — trace_event JSON loadable in chrome://tracing or
//               Perfetto: phase spans on one row, rounds on another,
//               per-thread-chunk step timing on one row per chunk.
//   * Summary — end-of-run hierarchical per-phase table.
//
// Cost contract (verified by the E14 overhead check):
//   * no tracer installed — the engine's only extra work per round is a
//     null pointer test (plus clock reads it already performs);
//   * tracer installed — record emission performs no heap allocation
//     per round; sinks reuse their line buffers.
//
// Threading: install/uninstall, PhaseSpan, and sink emission happen on
// the simulating (main) thread only. Pool threads never touch the
// tracer — per-chunk timings are collected by the engine and handed
// over after the chunk barrier. Record content is therefore
// deterministic at every thread count; only the "t" fields vary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.h"

namespace dcolor {

/// Deterministic aggregate a span (or the whole trace) accumulates.
struct TraceTotals {
  std::int64_t rounds = 0;    ///< simulated rounds (incl. fast-forwarded)
  std::int64_t executed = 0;  ///< rounds actually materialized
  std::int64_t messages = 0;  ///< messages delivered
  std::int64_t bits = 0;      ///< message bits delivered
  std::int64_t wall_ns = 0;   ///< wall clock (nondeterministic)

  TraceTotals& operator+=(const TraceTotals& o) {
    rounds += o.rounds;
    executed += o.executed;
    messages += o.messages;
    bits += o.bits;
    wall_ns += o.wall_ns;
    return *this;
  }
};

/// One materialized simulator round. All fields are deterministic for a
/// given execution except the timing block at the bottom.
struct TraceRound {
  std::int64_t run_round = 0;     ///< 1-based round within this Network::run
  std::int64_t global_round = 0;  ///< cumulative across the traced execution
  std::int64_t ff_rounds = 0;     ///< rounds fast-forwarded just before this one
  std::int32_t span = -1;         ///< innermost open span id (-1 = root)
  std::int64_t active_nodes = 0;  ///< nodes stepped this round
  std::int64_t inbox_nodes = 0;   ///< active because their inbox was non-empty
  std::int64_t woken_nodes = 0;   ///< active because a registered wake-up was due
  std::int64_t dense_nodes = 0;   ///< active because the hook keeps them dense
  std::int64_t delivered_messages = 0;
  std::int64_t delivered_bits = 0;
  std::int64_t sent_messages = 0;  ///< queued this round, delivered next
  std::int64_t sent_bits = 0;
  bool broadcast_fast_path = false;  ///< graph-shaped CSR delivery fired
  /// Which execution path materialized this round (kScalar or kVector —
  /// never kAuto; under --engine=auto this records the per-round density
  /// decision, making the heuristic observable).
  EngineKind engine = EngineKind::kScalar;

  // ---- timing (excluded from record identity) ------------------------
  std::int64_t ts_ns = 0;    ///< round start, ns since tracer creation
  std::int64_t wall_ns = 0;  ///< deliver + activate + step
  std::int64_t step_ns = 0;  ///< step pass alone
  std::span<const std::int64_t> chunk_ns;  ///< per thread-chunk step time
};

/// One phase annotation. `own` counts rounds attributed directly to this
/// span (no child open); `subtree` adds closed children and is final
/// once the span closes.
struct TraceSpan {
  std::int32_t id = -1;
  std::int32_t parent = -1;  ///< -1 = top level
  int depth = 0;
  std::string name;
  std::int64_t begin_global_round = 0;
  std::int64_t end_global_round = 0;
  bool open = true;
  TraceTotals own;
  TraceTotals subtree;
  std::int64_t ts_begin_ns = 0;  ///< nondeterministic
  std::int64_t ts_end_ns = 0;    ///< nondeterministic
};

class Tracer;

/// Consumer interface. Callbacks arrive on the simulating thread, in
/// deterministic order; `finish` is called exactly once.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_span_begin(const TraceSpan& span) { (void)span; }
  virtual void on_span_end(const TraceSpan& span) { (void)span; }
  virtual void on_round(const TraceRound& rec) { (void)rec; }
  virtual void finish(const Tracer& tracer) { (void)tracer; }
};

/// Collects the round stream and span tree, forwards both to sinks.
/// Install at most one tracer at a time per process (installs nest:
/// uninstall restores the previously current tracer).
class Tracer {
 public:
  Tracer();
  ~Tracer();  ///< finishes (flushes sinks) if finish() was not called

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void add_sink(std::unique_ptr<TraceSink> sink);

  /// Makes this tracer the process-current one (picked up by every
  /// subsequent Network::run and PhaseSpan).
  void install();
  /// Restores the tracer that was current before install().
  void uninstall();
  /// Uninstalls if needed, force-closes any open spans, and flushes all
  /// sinks. Idempotent.
  void finish();

  /// The tracer engine hooks and PhaseSpan report to (null = disabled).
  static Tracer* current() noexcept;

  // ---- span API (use PhaseSpan, not these, in algorithm code) --------
  std::int32_t begin_span(std::string_view name);
  void end_span(std::int32_t id);

  // ---- engine API ----------------------------------------------------
  /// Fills `global_round` and `span`, attributes the record, forwards
  /// to sinks. `rec` is consumed synchronously.
  void on_round(TraceRound& rec);
  /// Called at the end of every Network::run with its RoundMetrics
  /// round count; advances the global round offset.
  void on_run_end(std::int64_t rounds_elapsed);

  // ---- inspection ----------------------------------------------------
  const std::vector<TraceSpan>& spans() const noexcept { return spans_; }
  /// Rounds attributed to no span at all.
  const TraceTotals& unattributed() const noexcept { return root_; }
  /// Grand total: unattributed + all top-level subtrees. Only exact for
  /// closed spans — call after finish() for final numbers.
  TraceTotals total() const;
  /// "a/b/c" path of a span through its ancestors.
  std::string span_path(std::int32_t id) const;

  /// Nanoseconds since tracer creation for an engine-captured
  /// steady_clock reading (passed as ns since epoch of steady_clock).
  std::int64_t to_trace_ns(std::int64_t steady_ns) const noexcept {
    return steady_ns - epoch_ns_;
  }

 private:
  std::vector<TraceSpan> spans_;
  std::vector<std::int32_t> stack_;  ///< open span ids, outermost first
  std::vector<std::unique_ptr<TraceSink>> sinks_;
  TraceTotals root_;
  std::int64_t global_round_base_ = 0;
  std::int64_t epoch_ns_ = 0;
  bool installed_ = false;
  bool finished_ = false;
  Tracer* prev_ = nullptr;  ///< tracer displaced by install()
};

class InvariantChecker;

/// RAII phase annotation. Constructing is a no-op when no tracer or
/// invariant checker is current; otherwise opens a tracer span and/or a
/// checker phase frame, both closed at scope exit. This is the seam the
/// checker attributes violations through: the phase path in a
/// CheckViolation is the stack of open PhaseSpans at detection time.
class PhaseSpan {
 public:
  explicit PhaseSpan(std::string_view name);
  ~PhaseSpan();

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  InvariantChecker* checker_ = nullptr;
  std::int32_t id_ = -1;
};

// ---- sinks ------------------------------------------------------------

/// JSONL sink writing to a file it owns.
std::unique_ptr<TraceSink> make_jsonl_trace_sink(const std::string& path);
/// JSONL sink writing to a borrowed stream (tests); the stream must
/// outlive the tracer.
std::unique_ptr<TraceSink> make_jsonl_trace_sink(std::ostream& os);

/// Chrome trace_event JSON (chrome://tracing, Perfetto).
std::unique_ptr<TraceSink> make_chrome_trace_sink(const std::string& path);

/// End-of-run hierarchical per-phase summary table.
std::unique_ptr<TraceSink> make_summary_trace_sink(const std::string& path);
std::unique_ptr<TraceSink> make_summary_trace_sink(std::ostream& os);

/// Factory keyed by the CLI/env format name: "jsonl", "chrome", or
/// "summary". Throws CheckError on anything else.
std::unique_ptr<TraceSink> make_trace_sink(const std::string& format,
                                           const std::string& path);

/// One row of a rendered per-phase summary (shared between the summary
/// sink and `dcolor --cmd=trace_summary`, which rebuilds rows from a
/// JSONL file).
struct PhaseSummaryRow {
  int depth = 0;
  std::string name;
  TraceTotals totals;
};

/// Renders rows (indented by depth) plus a TOTAL line.
void render_phase_summary(const std::string& title,
                          const std::vector<PhaseSummaryRow>& rows,
                          const TraceTotals& total, std::ostream& os);

/// Folded view of a JSONL trace stream (`dcolor --cmd=trace_summary`).
struct TraceSummaryData {
  std::vector<PhaseSummaryRow> rows;  ///< "(unattributed)" first when present
  TraceTotals total;                  ///< unattributed + top-level subtrees
  /// Executed rounds per materializing engine (round lines' "engine"
  /// label; both stay 0 on pre-label traces).
  std::int64_t scalar_rounds = 0;
  std::int64_t vector_rounds = 0;
};

/// Rebuilds the per-phase summary from a JSONL trace. Hardened against
/// mixed-engine traces (per-round engine labels — absent on old traces —
/// are tallied, never required) and against the trailing "t" object:
/// deterministic keys are matched strictly BEFORE the `,"t":{` split of
/// each line, so nothing inside the timing block (ts_ns, step_ns, chunk
/// arrays — whatever future fields it grows) can shadow them; wall_ns is
/// read strictly INSIDE it. Unknown line types are skipped. Throws
/// CheckError on out-of-order span ids.
TraceSummaryData summarize_trace_jsonl(std::istream& is);

namespace detail {
/// Installs a process-global tracer from DCOLOR_TRACE /
/// DCOLOR_TRACE_FORMAT on first call (no-op when unset). Flushed via
/// atexit. Called by Network::run and PhaseSpan so env-driven tracing
/// works in any binary without wiring.
void ensure_env_tracer();
}  // namespace detail

}  // namespace dcolor
