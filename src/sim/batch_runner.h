// Batch multi-instance runner: executes N independent coloring jobs
// concurrently over the chunked thread pool (util/parallel.h), one job
// per chunk.
//
// The parallel axis is the JOB, not the round: every job runs with its
// simulator thread count pinned to 1 inside its own RunScope (tracer,
// checker, and thread override are all thread-local), so a batch produces
// bit-identical per-job results for every batch thread count and every
// job-completion order — results are merged by job index.
//
// Steady-state jobs are allocation-lean: each worker leases a BatchScratch
// from a mutex-guarded pool and rebuilds the next job's instance inside
// the previous job's arenas (PaletteStore::clear keeps capacity;
// push_scratch is the allocation-free insert path). The pool accounting
// (scratch_created / scratch_reused) is exposed on the report so tests can
// assert arena reuse actually happened.
//
// Job specs come from `--cmd=batch --jobs=<file-or-inline-spec>`:
//   * inline: jobs separated by ';', fields 'key=value' separated by ','
//       "solver=two_sweep,n=256,degree=8,seed=1;solver=greedy,n=512"
//   * file: one job spec per line, '#' starts a comment
// Keys: solver (required), generator (gnp|regular|tree|geometric|cycle),
// n, degree, seed, symmetric, repeat, label, p, eps, alpha, theta, engine
// (honest|oracle), sim_engine (auto|scalar|vector). `repeat=K` expands a
// spec into K jobs with seeds seed .. seed+K-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/solver.h"

namespace dcolor {

/// One batch job: which solver to run on which generated instance. The
/// instance itself is built inside the worker (premise-by-construction,
/// sized for the solver's capability class) — jobs are pure descriptions
/// and cheap to copy.
struct BatchJob {
  std::string solver = "two_sweep";  ///< registry name or alias
  std::string generator = "gnp";     ///< gnp|regular|tree|geometric|cycle
  NodeId n = 256;
  int degree = 8;           ///< target average degree (generator-dependent)
  std::uint64_t seed = 1;   ///< instance seed (also the RunContext seed root)
  bool symmetric = false;   ///< OLDC symmetric mode (if the solver supports it)
  SolverParams params;
  /// Simulator execution engine for this job (spec key `sim_engine` —
  /// distinct from `engine`, which picks the partition oracle). Results
  /// are bit-identical across engines; kVector on a solver without the
  /// dense_kernel capability simply runs scalar rounds.
  EngineKind sim_engine = EngineKind::kAuto;
  std::string label;        ///< display label; defaulted when empty
};

struct BatchOptions {
  int threads = 0;        ///< batch workers; 0 = default_setup_threads()
  bool check = false;     ///< run each job under a collect-mode checker
  std::uint64_t seed = 0; ///< base seed folded into every job's seed
  /// Directory for the file-backed snapshot cache (`--snapshot-cache`).
  /// Empty = in-memory cache only: repeated job specs still build each
  /// distinct instance once per batch, but nothing persists across runs.
  std::string snapshot_dir;
};

/// Outcome of one job. Everything here except the `t` block is a pure
/// function of the job description (plus BatchOptions::seed) — never of
/// the thread count or scheduling order; test_batch.cpp pins that down.
struct BatchJobResult {
  std::string label;
  std::string solver;            ///< canonical registry name
  bool valid = false;            ///< validate_solve() verdict
  NodeId nodes = 0;
  std::int64_t edges = 0;
  std::int64_t colors_used = 0;  ///< distinct colors in the output
  std::uint64_t color_hash = 0;  ///< FNV-1a over the color vector
  RoundMetrics metrics;
  /// Size-based instance memory (PaletteStore::content_bytes, via the
  /// per-job StatsRegistry); 0 for graph-input solvers. Deterministic —
  /// the capacity-based figure would leak the arena-reuse schedule.
  std::int64_t palette_bytes = 0;
  std::int64_t checker_violations = 0;  ///< collect-mode findings (check on)
  std::string error;             ///< non-empty iff the solver threw

  /// Nondeterministic per-job readings, quarantined the way the JSONL
  /// trace quarantines its trailing "t" object: excluded from equality
  /// and emitted as the last key of the job's JSON line (so stripping
  /// `"t"` yields a byte-identical report for every worker count).
  struct Timing {
    std::int64_t wall_ns = 0;   ///< instance build + solve + validate
    std::int64_t rss_bytes = 0; ///< current RSS sampled at job end
  };
  Timing t;

  friend bool operator==(const BatchJobResult& a, const BatchJobResult& b) {
    return a.label == b.label && a.solver == b.solver && a.valid == b.valid &&
           a.nodes == b.nodes && a.edges == b.edges &&
           a.colors_used == b.colors_used && a.color_hash == b.color_hash &&
           a.metrics == b.metrics && a.palette_bytes == b.palette_bytes &&
           a.checker_violations == b.checker_violations && a.error == b.error;
  }
};

struct BatchReport {
  std::vector<BatchJobResult> jobs;  ///< in job order
  std::int64_t jobs_valid = 0;
  std::int64_t jobs_failed = 0;      ///< error or invalid output
  std::int64_t total_rounds = 0;
  std::int64_t total_messages = 0;
  std::int64_t total_bits = 0;
  std::int64_t total_violations = 0;
  /// Scratch-pool accounting: arenas materialized (bounded by the worker
  /// count) and jobs served by a previously-built arena.
  int scratch_created = 0;
  std::int64_t scratch_reused = 0;
  /// Snapshot-cache accounting (deterministic at every worker count):
  /// distinct instances built once for a repeated spec, instances mmap'd
  /// from a --snapshot-cache directory, and jobs served by an
  /// already-available cached instance instead of a rebuild.
  std::int64_t snapshot_built = 0;
  std::int64_t snapshot_loaded = 0;
  std::int64_t snapshot_reused = 0;

  std::string to_json() const;
};

/// Parses `--jobs`: if the argument names a readable file, one job spec
/// per line ('#' comments, blank lines skipped); otherwise the argument
/// itself is an inline ';'-separated spec list. Throws CheckError on
/// unknown keys, malformed numbers, or an empty result.
std::vector<BatchJob> parse_batch_jobs(const std::string& file_or_spec);

/// Runs every job and merges results by job index.
BatchReport run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options = {});

}  // namespace dcolor
