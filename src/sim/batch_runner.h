// Batch multi-instance runner: executes N independent coloring jobs over
// the unified two-level scheduler (sim/scheduler.h), one level-1 task
// per job.
//
// Small jobs run job-parallel with their simulator pinned to 1 thread
// inside their own RunScope (tracer, checker, and thread override are
// all thread-local). Jobs at or above the big-job threshold get a
// multi-threaded RunContext instead — their rounds decompose into fleet
// chunks that idle workers steal (scheduler level 2) — and are admitted
// first at high priority, so one 1M-node job no longer serializes the
// fleet. Either way a batch produces bit-identical per-job results for
// every worker count, steal order, and threshold (the simulator is
// thread-count-invariant; results merge by job index), and the optional
// on_result stream emits them in job-index commit order.
//
// Steady-state jobs are allocation-lean: each worker leases a BatchScratch
// from a mutex-guarded pool and rebuilds the next job's instance inside
// the previous job's arenas (PaletteStore::clear keeps capacity;
// push_scratch is the allocation-free insert path). The pool accounting
// (scratch_created / scratch_reused) is exposed on the report so tests can
// assert arena reuse actually happened.
//
// Job specs come from `--cmd=batch --jobs=<file-or-inline-spec>`:
//   * inline: jobs separated by ';', fields 'key=value' separated by ','
//       "solver=two_sweep,n=256,degree=8,seed=1;solver=greedy,n=512"
//   * file: one job spec per line, '#' starts a comment
// Keys: solver (required), generator (gnp|regular|tree|geometric|cycle),
// n, degree, seed, symmetric, repeat, label, p, eps, alpha, theta, engine
// (honest|oracle), sim_engine (auto|scalar|vector). `repeat=K` expands a
// spec into K jobs with seeds seed .. seed+K-1.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/solver.h"

namespace dcolor {

namespace sched {
class Scheduler;
}

/// One batch job: which solver to run on which generated instance. The
/// instance itself is built inside the worker (premise-by-construction,
/// sized for the solver's capability class) — jobs are pure descriptions
/// and cheap to copy.
struct BatchJob {
  std::string solver = "two_sweep";  ///< registry name or alias
  std::string generator = "gnp";     ///< gnp|regular|tree|geometric|cycle
  NodeId n = 256;
  int degree = 8;           ///< target average degree (generator-dependent)
  std::uint64_t seed = 1;   ///< instance seed (also the RunContext seed root)
  bool symmetric = false;   ///< OLDC symmetric mode (if the solver supports it)
  SolverParams params;
  /// Simulator execution engine for this job (spec key `sim_engine` —
  /// distinct from `engine`, which picks the partition oracle). Results
  /// are bit-identical across engines; kVector on a solver without the
  /// dense_kernel capability simply runs scalar rounds.
  EngineKind sim_engine = EngineKind::kAuto;
  std::string label;        ///< display label; defaulted when empty
};

struct BatchJobResult;

struct BatchOptions {
  int threads = 0;        ///< batch workers; 0 = default_setup_threads()
  bool check = false;     ///< run each job under a collect-mode checker
  std::uint64_t seed = 0; ///< base seed folded into every job's seed
  /// Directory for the file-backed snapshot cache (`--snapshot-cache`).
  /// Empty = in-memory cache only: repeated job specs still build each
  /// distinct instance once per batch, but nothing persists across runs.
  std::string snapshot_dir;
  /// Node-count threshold for the scheduler's level 2: a job with
  /// n >= threshold runs its simulator rounds with a multi-threaded
  /// RunContext (chunks stolen by idle workers) and is admitted at high
  /// priority, so one huge job no longer serializes the fleet. Jobs
  /// below it stay pinned to one sim thread (the pure job-parallel
  /// axis). 0 = every job big; a huge value = none (the old behavior).
  /// -1 = the DCOLOR_BIG_JOB_THRESHOLD environment variable if set,
  /// else auto: max(65536, 2 * mean job size) — worker-count-independent
  /// by construction, so reports stay byte-identical across fleets.
  /// Results are bit-identical at EVERY threshold (the simulator is
  /// thread-count-invariant); only wall clock moves.
  std::int64_t big_job_threshold = -1;
  /// Streamed per-job emission: invoked with (job index, result) in JOB
  /// INDEX ORDER as a deterministic commit cursor advances — job i is
  /// emitted only once jobs 0..i-1 have been, so the emitted sequence is
  /// identical at every worker count and steal order. Called under the
  /// runner's commit lock; keep it quick and do not re-enter run_batch.
  std::function<void(std::size_t, const BatchJobResult&)> on_result;
  /// Run on this (shared) scheduler instead of a private fleet — how the
  /// serve daemon executes `op:batch` inside its fixed worker budget.
  sched::Scheduler* scheduler = nullptr;
};

/// Outcome of one job. Everything here except the `t` block is a pure
/// function of the job description (plus BatchOptions::seed) — never of
/// the thread count or scheduling order; test_batch.cpp pins that down.
struct BatchJobResult {
  std::string label;
  std::string solver;            ///< canonical registry name
  bool valid = false;            ///< validate_solve() verdict
  NodeId nodes = 0;
  std::int64_t edges = 0;
  std::int64_t colors_used = 0;  ///< distinct colors in the output
  std::uint64_t color_hash = 0;  ///< FNV-1a over the color vector
  RoundMetrics metrics;
  /// Size-based instance memory (PaletteStore::content_bytes, via the
  /// per-job StatsRegistry); 0 for graph-input solvers. Deterministic —
  /// the capacity-based figure would leak the arena-reuse schedule.
  std::int64_t palette_bytes = 0;
  std::int64_t checker_violations = 0;  ///< collect-mode findings (check on)
  std::string error;             ///< non-empty iff the solver threw

  /// Nondeterministic per-job readings, quarantined the way the JSONL
  /// trace quarantines its trailing "t" object: excluded from equality
  /// and emitted as the last key of the job's JSON line (so stripping
  /// `"t"` yields a byte-identical report for every worker count).
  struct Timing {
    std::int64_t wall_ns = 0;   ///< instance build + solve + validate
    std::int64_t rss_bytes = 0; ///< current RSS sampled at job end
  };
  Timing t;

  friend bool operator==(const BatchJobResult& a, const BatchJobResult& b) {
    return a.label == b.label && a.solver == b.solver && a.valid == b.valid &&
           a.nodes == b.nodes && a.edges == b.edges &&
           a.colors_used == b.colors_used && a.color_hash == b.color_hash &&
           a.metrics == b.metrics && a.palette_bytes == b.palette_bytes &&
           a.checker_violations == b.checker_violations && a.error == b.error;
  }
};

struct BatchReport {
  std::vector<BatchJobResult> jobs;  ///< in job order
  std::int64_t jobs_valid = 0;
  std::int64_t jobs_failed = 0;      ///< error or invalid output
  std::int64_t total_rounds = 0;
  std::int64_t total_messages = 0;
  std::int64_t total_bits = 0;
  std::int64_t total_violations = 0;
  /// Scratch-pool accounting: arenas materialized (bounded by the worker
  /// count) and jobs served by a previously-built arena.
  int scratch_created = 0;
  std::int64_t scratch_reused = 0;
  /// Snapshot-cache accounting (deterministic at every worker count):
  /// distinct instances built once for a repeated spec, instances mmap'd
  /// from a --snapshot-cache directory, and jobs served by an
  /// already-available cached instance instead of a rebuild.
  std::int64_t snapshot_built = 0;
  std::int64_t snapshot_loaded = 0;
  std::int64_t snapshot_reused = 0;
  /// Scheduler telemetry for THIS batch (counter deltas on a shared
  /// scheduler). Schedule-dependent — steal counts and peaks vary run to
  /// run, and big_jobs varies with the threshold knob — so all of it is
  /// quarantined in the summary's trailing "t" object, like the per-job
  /// wall clock.
  struct Sched {
    int workers = 0;
    std::int64_t big_jobs = 0;   ///< jobs admitted at level 2
    std::int64_t steals = 0;     ///< chunks run by a non-initiating thread
    std::int64_t chunks = 0;     ///< fork-join chunks executed
    std::int64_t peak_queue_depth = 0;
    std::int64_t peak_occupancy = 0;
  };
  Sched sched;

  std::string to_json() const;
};

/// One streamed JSONL line for a completed job, exactly the fields of
/// the report's job entry plus a leading event/index pair ("t" stays the
/// last key):  {"event": "job", "index": 3, "label": ..., "t": {...}}
/// Emitted by `--cmd=batch --stream` and the serve daemon's `op:batch`;
/// shared here so both streams are byte-compatible.
std::string batch_stream_line(std::size_t index, const BatchJobResult& r);

/// The stream's terminal line: {"event": "summary", ...} with the same
/// fields as the report summary ("t" last).
std::string batch_stream_summary(const BatchReport& report);

/// The effective level-2 threshold for a job list: `requested` >= 0 wins,
/// else DCOLOR_BIG_JOB_THRESHOLD (if set and >= 0), else
/// max(65536, 2 * mean job size). Exposed for the CLI help and tests.
std::int64_t resolve_big_job_threshold(std::int64_t requested,
                                       const std::vector<BatchJob>& jobs);

/// Parses `--jobs`: if the argument names a readable file, one job spec
/// per line ('#' comments, blank lines skipped); otherwise the argument
/// itself is an inline ';'-separated spec list. Throws CheckError on
/// unknown keys, malformed numbers, or an empty result.
std::vector<BatchJob> parse_batch_jobs(const std::string& file_or_spec);

/// Runs every job and merges results by job index.
BatchReport run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options = {});

}  // namespace dcolor
