#include "sim/metrics.h"

#include <algorithm>
#include <sstream>

namespace dcolor {

RoundMetrics& RoundMetrics::operator+=(const RoundMetrics& other) {
  rounds += other.rounds;
  executed_rounds += other.executed_rounds;
  peak_active_nodes = std::max(peak_active_nodes, other.peak_active_nodes);
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  total_messages += other.total_messages;
  total_message_bits += other.total_message_bits;
  local_compute_ops += other.local_compute_ops;
  return *this;
}

RoundMetrics& RoundMetrics::merge_parallel(const RoundMetrics& other) {
  rounds = std::max(rounds, other.rounds);
  executed_rounds = std::max(executed_rounds, other.executed_rounds);
  peak_active_nodes += other.peak_active_nodes;
  max_message_bits = std::max(max_message_bits, other.max_message_bits);
  total_messages += other.total_messages;
  total_message_bits += other.total_message_bits;
  local_compute_ops += other.local_compute_ops;
  return *this;
}

RoundMetrics operator+(RoundMetrics a, const RoundMetrics& b) {
  a += b;
  return a;
}

std::string RoundMetrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " executed=" << executed_rounds
     << " peak_active=" << peak_active_nodes
     << " max_msg_bits=" << max_message_bits << " msgs=" << total_messages
     << " msg_bits=" << total_message_bits << " compute=" << local_compute_ops;
  return os.str();
}

}  // namespace dcolor
