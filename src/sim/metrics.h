// Round and message metrics for simulated distributed executions.
#pragma once

#include <cstdint>
#include <string>

namespace dcolor {

/// Accumulated cost of a (possibly composite) distributed execution.
struct RoundMetrics {
  std::int64_t rounds = 0;            ///< synchronous rounds elapsed
  std::int64_t executed_rounds = 0;   ///< rounds actually stepped by the
                                      ///< engine (the rest were
                                      ///< fast-forwarded as guaranteed no-ops)
  std::int64_t peak_active_nodes = 0; ///< max nodes stepped in one round.
                                      ///< Engine-dependent: the vector
                                      ///< path's eager ingest skips no-op
                                      ///< receiver steps, so this is the
                                      ///< one field outside the
                                      ///< cross-engine identity contract
                                      ///< (sim/engine.h)
  int max_message_bits = 0;           ///< widest single message
  std::int64_t total_messages = 0;    ///< messages sent
  std::int64_t total_message_bits = 0;
  std::int64_t local_compute_ops = 0; ///< per-node internal work (see below)

  /// Sequential composition: phases run one after the other. Rounds and
  /// executed rounds add; the active-node peak is the larger phase's
  /// (the phases never overlap in time).
  RoundMetrics& operator+=(const RoundMetrics& other);

  /// Parallel composition: independent executions on disjoint parts run
  /// simultaneously; rounds take the max, traffic adds up. Executed
  /// rounds take the max too (a merged engine would step both parts in
  /// the same materialized rounds), and the active-node peaks add (both
  /// parts' nodes can be active in the same round).
  RoundMetrics& merge_parallel(const RoundMetrics& other);

  friend bool operator==(const RoundMetrics&, const RoundMetrics&) = default;

  std::string summary() const;
};

RoundMetrics operator+(RoundMetrics a, const RoundMetrics& b);

}  // namespace dcolor
