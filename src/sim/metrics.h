// Round and message metrics for simulated distributed executions.
#pragma once

#include <cstdint>
#include <string>

namespace dcolor {

/// Accumulated cost of a (possibly composite) distributed execution.
struct RoundMetrics {
  std::int64_t rounds = 0;            ///< synchronous rounds elapsed
  int max_message_bits = 0;           ///< widest single message
  std::int64_t total_messages = 0;    ///< messages sent
  std::int64_t total_message_bits = 0;
  std::int64_t local_compute_ops = 0; ///< per-node internal work (see below)

  /// Sequential composition: phases run one after the other.
  RoundMetrics& operator+=(const RoundMetrics& other);

  /// Parallel composition: independent executions on disjoint parts run
  /// simultaneously; rounds take the max, traffic adds up.
  RoundMetrics& merge_parallel(const RoundMetrics& other);

  std::string summary() const;
};

RoundMetrics operator+(RoundMetrics a, const RoundMetrics& b);

}  // namespace dcolor
