#include "sim/trace.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <utility>

#include "check/invariant_checker.h"
#include "util/check.h"
#include "util/parse.h"
#include "util/table.h"

namespace dcolor {

namespace {

// Thread-local: install() only affects the installing thread, so batch
// workers running concurrent jobs each see their own job's tracer (or
// none) and never race on this pointer. All existing single-threaded
// callers install and simulate on the same thread, which is unchanged.
thread_local Tracer* g_current = nullptr;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Appends an integer without heap allocation (std::to_string of a wide
/// int64 can exceed the small-string buffer).
void append_int(std::string& s, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  s.append(buf, res.ptr);
}

void append_quoted(std::string& s, std::string_view name) {
  s.push_back('"');
  for (const char c : name) {
    if (c == '"' || c == '\\') s.push_back('\\');
    s.push_back(c);
  }
  s.push_back('"');
}

void append_key_int(std::string& s, const char* key, std::int64_t v) {
  s.push_back('"');
  s.append(key);
  s.append("\":");
  append_int(s, v);
}

}  // namespace

// ---- Tracer -----------------------------------------------------------

Tracer::Tracer() : epoch_ns_(steady_now_ns()) {}

Tracer::~Tracer() { finish(); }

void Tracer::add_sink(std::unique_ptr<TraceSink> sink) {
  DCOLOR_CHECK(sink != nullptr);
  sinks_.push_back(std::move(sink));
}

Tracer* Tracer::current() noexcept { return g_current; }

void Tracer::install() {
  DCOLOR_CHECK_MSG(!installed_, "tracer installed twice");
  prev_ = g_current;
  g_current = this;
  installed_ = true;
}

void Tracer::uninstall() {
  if (!installed_) return;
  if (g_current == this) g_current = prev_;
  installed_ = false;
  prev_ = nullptr;
}

void Tracer::finish() {
  if (finished_) return;
  uninstall();
  while (!stack_.empty()) end_span(stack_.back());
  finished_ = true;
  for (auto& sink : sinks_) sink->finish(*this);
}

std::int32_t Tracer::begin_span(std::string_view name) {
  const auto id = static_cast<std::int32_t>(spans_.size());
  TraceSpan span;
  span.id = id;
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int>(stack_.size());
  span.name.assign(name);
  span.begin_global_round = global_round_base_;
  span.ts_begin_ns = steady_now_ns() - epoch_ns_;
  spans_.push_back(std::move(span));
  stack_.push_back(id);
  for (auto& sink : sinks_) sink->on_span_begin(spans_[static_cast<std::size_t>(id)]);
  return id;
}

void Tracer::end_span(std::int32_t id) {
  // PhaseSpan destruction is LIFO even on exception paths, so the loop
  // normally closes exactly one span; closing stragglers instead of
  // throwing keeps this safe to call from destructors.
  while (!stack_.empty()) {
    const std::int32_t top = stack_.back();
    stack_.pop_back();
    TraceSpan& span = spans_[static_cast<std::size_t>(top)];
    span.open = false;
    span.end_global_round = global_round_base_;
    span.ts_end_ns = steady_now_ns() - epoch_ns_;
    span.subtree += span.own;
    if (span.parent >= 0) {
      spans_[static_cast<std::size_t>(span.parent)].subtree += span.subtree;
    }
    for (auto& sink : sinks_) sink->on_span_end(span);
    if (top == id) return;
  }
}

void Tracer::on_round(TraceRound& rec) {
  rec.global_round = global_round_base_ + rec.run_round;
  rec.span = stack_.empty() ? -1 : stack_.back();
  TraceTotals& tot =
      rec.span < 0 ? root_ : spans_[static_cast<std::size_t>(rec.span)].own;
  tot.rounds += 1 + rec.ff_rounds;
  tot.executed += 1;
  tot.messages += rec.delivered_messages;
  tot.bits += rec.delivered_bits;
  tot.wall_ns += rec.wall_ns;
  for (auto& sink : sinks_) sink->on_round(rec);
}

void Tracer::on_run_end(std::int64_t rounds_elapsed) {
  global_round_base_ += rounds_elapsed;
}

TraceTotals Tracer::total() const {
  TraceTotals t = root_;
  for (const TraceSpan& s : spans_) {
    if (s.parent == -1) t += s.open ? s.own : s.subtree;
  }
  return t;
}

std::string Tracer::span_path(std::int32_t id) const {
  std::string path;
  while (id >= 0) {
    const TraceSpan& s = spans_[static_cast<std::size_t>(id)];
    path = path.empty() ? s.name : s.name + "/" + path;
    id = s.parent;
  }
  return path;
}

// ---- PhaseSpan --------------------------------------------------------

PhaseSpan::PhaseSpan(std::string_view name) {
  detail::ensure_env_tracer();
  if (InvariantChecker* const ck = InvariantChecker::current();
      ck != nullptr) {
    checker_ = ck;
    ck->on_phase_begin(name);
  }
  Tracer* const t = Tracer::current();
  if (t == nullptr) return;
  tracer_ = t;
  id_ = t->begin_span(name);
}

PhaseSpan::~PhaseSpan() {
  if (tracer_ != nullptr) tracer_->end_span(id_);
  if (checker_ != nullptr) checker_->on_phase_end();
}

// ---- JSONL sink -------------------------------------------------------

namespace {

/// One JSON object per line. INVARIANT: every line's final key is the
/// "t" object holding all nondeterministic (timing) fields — consumers
/// strip from `,"t":` to compare traces across thread counts.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(const std::string& path) : file_(path), os_(&file_) {
    DCOLOR_CHECK_MSG(static_cast<bool>(file_), "cannot open " << path);
    buf_.reserve(512);
  }
  explicit JsonlSink(std::ostream& os) : os_(&os) { buf_.reserve(512); }

  void on_span_begin(const TraceSpan& s) override {
    buf_.assign("{\"type\":\"span_begin\",");
    append_key_int(buf_, "id", s.id);
    buf_.push_back(',');
    append_key_int(buf_, "parent", s.parent);
    buf_.push_back(',');
    append_key_int(buf_, "depth", s.depth);
    buf_.append(",\"name\":");
    append_quoted(buf_, s.name);
    buf_.push_back(',');
    append_key_int(buf_, "g_round", s.begin_global_round);
    buf_.append(",\"t\":{");
    append_key_int(buf_, "ts_ns", s.ts_begin_ns);
    buf_.append("}}\n");
    os_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

  void on_span_end(const TraceSpan& s) override {
    buf_.assign("{\"type\":\"span_end\",");
    append_key_int(buf_, "id", s.id);
    buf_.append(",\"name\":");
    append_quoted(buf_, s.name);
    buf_.push_back(',');
    append_key_int(buf_, "g_round", s.end_global_round);
    buf_.push_back(',');
    append_key_int(buf_, "rounds", s.subtree.rounds);
    buf_.push_back(',');
    append_key_int(buf_, "executed", s.subtree.executed);
    buf_.push_back(',');
    append_key_int(buf_, "msgs", s.subtree.messages);
    buf_.push_back(',');
    append_key_int(buf_, "bits", s.subtree.bits);
    buf_.append(",\"t\":{");
    append_key_int(buf_, "ts_ns", s.ts_end_ns);
    buf_.push_back(',');
    append_key_int(buf_, "wall_ns", s.subtree.wall_ns);
    buf_.append("}}\n");
    os_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

  void on_round(const TraceRound& r) override {
    buf_.assign("{\"type\":\"round\",");
    append_key_int(buf_, "g_round", r.global_round);
    buf_.push_back(',');
    append_key_int(buf_, "round", r.run_round);
    buf_.push_back(',');
    append_key_int(buf_, "ff", r.ff_rounds);
    buf_.push_back(',');
    append_key_int(buf_, "span", r.span);
    buf_.push_back(',');
    append_key_int(buf_, "active", r.active_nodes);
    buf_.push_back(',');
    append_key_int(buf_, "inbox", r.inbox_nodes);
    buf_.push_back(',');
    append_key_int(buf_, "woken", r.woken_nodes);
    buf_.push_back(',');
    append_key_int(buf_, "dense", r.dense_nodes);
    buf_.push_back(',');
    append_key_int(buf_, "dmsgs", r.delivered_messages);
    buf_.push_back(',');
    append_key_int(buf_, "dbits", r.delivered_bits);
    buf_.push_back(',');
    append_key_int(buf_, "smsgs", r.sent_messages);
    buf_.push_back(',');
    append_key_int(buf_, "sbits", r.sent_bits);
    buf_.push_back(',');
    append_key_int(buf_, "bfast", r.broadcast_fast_path ? 1 : 0);
    buf_.append(",\"engine\":");
    append_quoted(buf_, engine_name(r.engine));
    buf_.append(",\"t\":{");
    append_key_int(buf_, "ts_ns", r.ts_ns);
    buf_.push_back(',');
    append_key_int(buf_, "wall_ns", r.wall_ns);
    buf_.push_back(',');
    append_key_int(buf_, "step_ns", r.step_ns);
    buf_.append(",\"chunks\":[");
    for (std::size_t i = 0; i < r.chunk_ns.size(); ++i) {
      if (i != 0) buf_.push_back(',');
      append_int(buf_, r.chunk_ns[i]);
    }
    buf_.append("]}}\n");
    os_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

  void finish(const Tracer&) override { os_->flush(); }

 private:
  std::ofstream file_;  ///< unopened when borrowing an external stream
  std::ostream* os_;
  std::string buf_;
};

// ---- Chrome trace_event sink ------------------------------------------

/// Streams {"traceEvents":[...]}: spans as B/E pairs on tid 0
/// ("phases"), rounds as complete X events on tid 1 ("rounds"), and the
/// per-thread-chunk step timing as X events on tid 2+c ("chunk c") —
/// one row per pool chunk in Perfetto. Timestamps are microseconds
/// since tracer creation.
class ChromeSink final : public TraceSink {
 public:
  explicit ChromeSink(const std::string& path) : os_(path) {
    DCOLOR_CHECK_MSG(static_cast<bool>(os_), "cannot open " << path);
    buf_.reserve(512);
    os_ << "{\"traceEvents\":[\n";
    meta("process_name", 0, "dcolor-sim");
    meta("thread_name", 0, "phases");
    meta("thread_name", 1, "rounds");
  }

  void on_span_begin(const TraceSpan& s) override {
    begin_event();
    buf_.append("{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":");
    append_us(buf_, s.ts_begin_ns);
    buf_.append(",\"name\":");
    append_quoted(buf_, s.name);
    buf_.append(",\"args\":{");
    append_key_int(buf_, "g_round", s.begin_global_round);
    buf_.append("}}");
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

  void on_span_end(const TraceSpan& s) override {
    begin_event();
    buf_.append("{\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":");
    append_us(buf_, s.ts_end_ns);
    buf_.append(",\"args\":{");
    append_key_int(buf_, "g_round", s.end_global_round);
    buf_.push_back(',');
    append_key_int(buf_, "rounds", s.subtree.rounds);
    buf_.push_back(',');
    append_key_int(buf_, "msgs", s.subtree.messages);
    buf_.push_back(',');
    append_key_int(buf_, "bits", s.subtree.bits);
    buf_.append("}}");
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

  void on_round(const TraceRound& r) override {
    begin_event();
    buf_.append("{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":");
    append_us(buf_, r.ts_ns);
    buf_.append(",\"dur\":");
    append_us(buf_, r.wall_ns);
    buf_.append(",\"name\":\"round\",\"args\":{");
    append_key_int(buf_, "g_round", r.global_round);
    buf_.push_back(',');
    append_key_int(buf_, "ff", r.ff_rounds);
    buf_.push_back(',');
    append_key_int(buf_, "active", r.active_nodes);
    buf_.push_back(',');
    append_key_int(buf_, "dmsgs", r.delivered_messages);
    buf_.push_back(',');
    append_key_int(buf_, "dbits", r.delivered_bits);
    buf_.push_back(',');
    append_key_int(buf_, "bfast", r.broadcast_fast_path ? 1 : 0);
    buf_.append(",\"engine\":");
    append_quoted(buf_, engine_name(r.engine));
    buf_.append("}}");
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    // Chunk rows: step-pass slice per pool chunk, laid out from the step
    // start so concurrent chunks overlap visually.
    const std::int64_t step_start = r.ts_ns + r.wall_ns - r.step_ns;
    for (std::size_t c = 0; c < r.chunk_ns.size(); ++c) {
      while (chunk_tids_named_ <= c) {
        meta("thread_name", static_cast<int>(2 + chunk_tids_named_),
             "chunk " + std::to_string(chunk_tids_named_));
        ++chunk_tids_named_;
      }
      begin_event();
      buf_.assign("{\"ph\":\"X\",\"pid\":0,\"tid\":");
      append_int(buf_, static_cast<std::int64_t>(2 + c));
      buf_.append(",\"ts\":");
      append_us(buf_, step_start);
      buf_.append(",\"dur\":");
      append_us(buf_, r.chunk_ns[c]);
      buf_.append(",\"name\":\"step\",\"args\":{");
      append_key_int(buf_, "g_round", r.global_round);
      buf_.append("}}");
      os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    }
  }

  void finish(const Tracer&) override {
    os_ << "\n]}\n";
    os_.flush();
  }

 private:
  void begin_event() {
    if (!first_) {
      os_ << ",\n";
    }
    first_ = false;
    buf_.clear();
  }

  static void append_us(std::string& s, std::int64_t ns) {
    char tmp[40];
    const int len =
        std::snprintf(tmp, sizeof(tmp), "%.3f", static_cast<double>(ns) / 1e3);
    s.append(tmp, static_cast<std::size_t>(len));
  }

  void meta(const std::string& key, int tid, const std::string& value) {
    begin_event();
    buf_.append("{\"ph\":\"M\",\"pid\":0,\"tid\":");
    append_int(buf_, tid);
    buf_.append(",\"name\":");
    append_quoted(buf_, key);
    buf_.append(",\"args\":{\"name\":");
    append_quoted(buf_, value);
    buf_.append("}}");
    os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }

  std::ofstream os_;
  std::string buf_;
  std::size_t chunk_tids_named_ = 0;
  bool first_ = true;
};

// ---- summary sink -----------------------------------------------------

class SummarySink final : public TraceSink {
 public:
  explicit SummarySink(const std::string& path) : file_(path), os_(&file_) {
    DCOLOR_CHECK_MSG(static_cast<bool>(file_), "cannot open " << path);
  }
  explicit SummarySink(std::ostream& os) : os_(&os) {}

  void finish(const Tracer& tracer) override {
    std::vector<PhaseSummaryRow> rows;
    const TraceTotals& unattributed = tracer.unattributed();
    if (unattributed.rounds != 0 || unattributed.executed != 0) {
      rows.push_back({0, "(unattributed)", unattributed});
    }
    for (const TraceSpan& s : tracer.spans()) {
      rows.push_back({s.depth, s.name, s.subtree});
    }
    render_phase_summary("trace summary (per phase)", rows, tracer.total(),
                         *os_);
    os_->flush();
  }

 private:
  std::ofstream file_;
  std::ostream* os_;
};

}  // namespace

std::unique_ptr<TraceSink> make_jsonl_trace_sink(const std::string& path) {
  return std::make_unique<JsonlSink>(path);
}
std::unique_ptr<TraceSink> make_jsonl_trace_sink(std::ostream& os) {
  return std::make_unique<JsonlSink>(os);
}
std::unique_ptr<TraceSink> make_chrome_trace_sink(const std::string& path) {
  return std::make_unique<ChromeSink>(path);
}
std::unique_ptr<TraceSink> make_summary_trace_sink(const std::string& path) {
  return std::make_unique<SummarySink>(path);
}
std::unique_ptr<TraceSink> make_summary_trace_sink(std::ostream& os) {
  return std::make_unique<SummarySink>(os);
}

std::unique_ptr<TraceSink> make_trace_sink(const std::string& format,
                                           const std::string& path) {
  if (format == "jsonl") return make_jsonl_trace_sink(path);
  if (format == "chrome") return make_chrome_trace_sink(path);
  if (format == "summary") return make_summary_trace_sink(path);
  DCOLOR_CHECK_MSG(false, "unknown trace format '" << format
                                                   << "' (jsonl|chrome|summary)");
  return nullptr;
}

void render_phase_summary(const std::string& title,
                          const std::vector<PhaseSummaryRow>& rows,
                          const TraceTotals& total, std::ostream& os) {
  Table t(title);
  t.header({"phase", "rounds", "executed", "msgs", "bits", "wall ms"});
  auto add = [&](const std::string& name, const TraceTotals& tot) {
    t.add(name, tot.rounds, tot.executed, tot.messages, tot.bits,
          static_cast<double>(tot.wall_ns) / 1e6);
  };
  add("TOTAL", total);
  for (const PhaseSummaryRow& row : rows) {
    add(std::string(static_cast<std::size_t>(2 * row.depth), ' ') + row.name,
        row.totals);
  }
  t.print(os);
}

// ---- JSONL summary (the inverse of JsonlSink) -------------------------

namespace {

/// Substring field extractors over ONE region of a JSONL line. The sink
/// writes every key exactly once per line, so quoted-key search is
/// unambiguous — as long as the search is confined to the right side of
/// the `,"t":{` split (deterministic head vs timing tail): the timing
/// object is free to grow fields whose names collide with deterministic
/// keys, and span names travel through append_quoted unmodified.
std::optional<std::int64_t> region_int(std::string_view region,
                                       std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const auto pos = region.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  return parse_int64_prefix(region.substr(pos + needle.size()));
}

std::string_view region_str(std::string_view region, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 4);
  needle += '"';
  needle += key;
  needle += "\":\"";
  const auto pos = region.find(needle);
  if (pos == std::string_view::npos) return {};
  const auto begin = pos + needle.size();
  const auto end = region.find('"', begin);  // sink names contain no escapes
  return end == std::string_view::npos ? std::string_view()
                                       : region.substr(begin, end - begin);
}

}  // namespace

TraceSummaryData summarize_trace_jsonl(std::istream& is) {
  struct Row {
    std::int32_t parent = -1;
    int depth = 0;
    std::string name;
    TraceTotals totals;
  };
  std::vector<Row> rows;  // indexed by span id == begin order
  TraceTotals unattributed;
  TraceSummaryData out;

  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view full(line);
    // The timing object is the LAST key of every line (JsonlSink
    // invariant); rfind tolerates a span name that embeds the marker.
    const auto t_pos = full.rfind(",\"t\":{");
    const std::string_view head =
        t_pos == std::string_view::npos ? full : full.substr(0, t_pos);
    const std::string_view tail =
        t_pos == std::string_view::npos ? std::string_view()
                                        : full.substr(t_pos);
    const std::string_view type = region_str(head, "type");
    if (type == "span_begin") {
      const auto id = region_int(head, "id");
      DCOLOR_CHECK_MSG(id && *id == static_cast<std::int64_t>(rows.size()),
                       "span ids out of order at trace line " << line_no);
      Row row;
      row.parent =
          static_cast<std::int32_t>(region_int(head, "parent").value_or(-1));
      row.depth = static_cast<int>(region_int(head, "depth").value_or(0));
      row.name = std::string(region_str(head, "name"));
      rows.push_back(std::move(row));
    } else if (type == "span_end") {
      const auto id = region_int(head, "id");
      DCOLOR_CHECK_MSG(id && *id >= 0 &&
                           *id < static_cast<std::int64_t>(rows.size()),
                       "span_end without span_begin at trace line "
                           << line_no);
      TraceTotals& t = rows[static_cast<std::size_t>(*id)].totals;
      t.rounds = region_int(head, "rounds").value_or(0);
      t.executed = region_int(head, "executed").value_or(0);
      t.messages = region_int(head, "msgs").value_or(0);
      t.bits = region_int(head, "bits").value_or(0);
      t.wall_ns = region_int(tail, "wall_ns").value_or(0);
    } else if (type == "round") {
      const std::string_view engine = region_str(head, "engine");
      if (engine == "vector") {
        ++out.vector_rounds;
      } else if (!engine.empty()) {
        ++out.scalar_rounds;
      }
      if (region_int(head, "span").value_or(-1) == -1) {
        unattributed.rounds += 1 + region_int(head, "ff").value_or(0);
        unattributed.executed += 1;
        unattributed.messages += region_int(head, "dmsgs").value_or(0);
        unattributed.bits += region_int(head, "dbits").value_or(0);
        unattributed.wall_ns += region_int(tail, "wall_ns").value_or(0);
      }
    }
    // Unknown types: future line kinds fold to nothing, not an error.
  }

  out.total = unattributed;
  for (const Row& row : rows) {
    if (row.parent == -1) out.total += row.totals;
  }
  if (unattributed.rounds != 0 || unattributed.executed != 0) {
    out.rows.push_back({0, "(unattributed)", unattributed});
  }
  for (Row& row : rows) {
    out.rows.push_back({row.depth, std::move(row.name), row.totals});
  }
  return out;
}

// ---- env wiring -------------------------------------------------------

namespace detail {

namespace {
Tracer* g_env_tracer = nullptr;
}

void ensure_env_tracer() {
  static const bool once = [] {
    const char* path = std::getenv("DCOLOR_TRACE");
    if (path == nullptr || *path == '\0') return true;
    const char* fmt = std::getenv("DCOLOR_TRACE_FORMAT");
    // Leaked deliberately: the tracer must outlive every Network the
    // process creates; the atexit hook flushes it.
    g_env_tracer = new Tracer();
    g_env_tracer->add_sink(
        make_trace_sink(fmt != nullptr && *fmt != '\0' ? fmt : "jsonl", path));
    g_env_tracer->install();
    std::atexit([] {
      if (g_env_tracer != nullptr) g_env_tracer->finish();
    });
    return true;
  }();
  (void)once;
}

}  // namespace detail

}  // namespace dcolor
