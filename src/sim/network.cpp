#include "sim/network.h"

#include <algorithm>

#include "util/check.h"

namespace dcolor {

void broadcast(const Graph& g, Mailbox& mail, const Message& m) {
  for (NodeId u : g.neighbors(mail.self())) mail.send(u, m);
}

RoundMetrics Network::run(SyncAlgorithm& algo, std::int64_t max_rounds,
                          int message_bit_cap) {
  const Graph& g = *graph_;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  RoundMetrics metrics;

  // Double-buffered inboxes.
  std::vector<std::vector<Envelope>> inbox(n), next_inbox(n);

  auto flush_outgoing = [&](NodeId v, Mailbox& mail) {
    for (auto& out : mail.outgoing()) {
      DCOLOR_CHECK_MSG(g.has_edge(v, out.to),
                       "node " << v << " sent to non-neighbor " << out.to);
      DCOLOR_CHECK_MSG(
          message_bit_cap <= 0 || out.message.bits() <= message_bit_cap,
          "CONGEST violation: node " << v << " sent " << out.message.bits()
                                     << " bits (cap " << message_bit_cap
                                     << ")");
      metrics.total_messages += 1;
      metrics.total_message_bits += out.message.bits();
      metrics.max_message_bits =
          std::max(metrics.max_message_bits, out.message.bits());
      next_inbox[static_cast<std::size_t>(out.to)].push_back(
          {v, std::move(out.message)});
    }
  };

  // Round 0: init (counts as the first round when anything is sent).
  bool sent_anything = false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    Mailbox mail(v, {});
    algo.init(v, mail);
    if (!mail.outgoing().empty()) sent_anything = true;
    flush_outgoing(v, mail);
  }
  if (sent_anything) metrics.rounds = 1;

  for (std::int64_t round = 1;; ++round) {
    bool all_done = true;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!algo.done(v)) {
        all_done = false;
        break;
      }
    }
    const bool in_flight = std::any_of(
        next_inbox.begin(), next_inbox.end(),
        [](const std::vector<Envelope>& box) { return !box.empty(); });
    if (all_done && !in_flight) break;
    DCOLOR_CHECK_MSG(round <= max_rounds,
                     "algorithm exceeded max_rounds=" << max_rounds);

    inbox.swap(next_inbox);
    for (auto& box : next_inbox) box.clear();

    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      Mailbox mail(v, inbox[static_cast<std::size_t>(v)]);
      algo.step(v, static_cast<int>(round), mail);
      flush_outgoing(v, mail);
    }
    metrics.rounds = std::max(metrics.rounds, round);
  }
  return metrics;
}

}  // namespace dcolor
