#include "sim/network.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <utility>

#include "check/invariant_checker.h"
#include "obs/stats.h"
#include "sim/scheduler.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/parse.h"

namespace dcolor {

namespace {

int env_threads() {
  // Strict: a malformed value used to silently fall back to 1 thread,
  // which reads as "parallelism is broken" rather than "typo in the
  // environment". Garbage, overflow, or an out-of-range count now throw.
  static const int cached = [] {
    const char* s = std::getenv("DCOLOR_SIM_THREADS");
    if (s == nullptr || *s == '\0') return 1;
    const std::int64_t v = parse_int64(s, "DCOLOR_SIM_THREADS");
    DCOLOR_CHECK_MSG(v >= 1 && v <= 256,
                     "DCOLOR_SIM_THREADS must be in [1, 256], got " << v);
    return static_cast<int>(v);
  }();
  return cached;
}

std::atomic<int> g_default_threads{0};  // 0 = fall back to the environment

// Per-thread override set by RunScope; lets concurrent batch workers pin
// their jobs' simulators independently of the process default.
thread_local int t_thread_override = 0;

/// Parallelizing a round only pays off past a minimum amount of work.
constexpr std::size_t kMinParallelActive = 128;

}  // namespace

void broadcast(const Graph& g, Mailbox& mail, const Message& m) {
  if (g.degree(mail.self()) == 0) return;
  mail.send_to_all_neighbors(m);
}

Network::Network(const Graph& g) : graph_(&g) {}

Network::~Network() = default;

int Network::num_threads() const noexcept {
  if (num_threads_ > 0) return num_threads_;
  if (t_thread_override > 0) return t_thread_override;
  return default_num_threads();
}

int Network::set_thread_override(int threads) noexcept {
  const int prev = t_thread_override;
  t_thread_override = threads > 0 ? threads : 0;
  return prev;
}

int Network::thread_override() noexcept { return t_thread_override; }

EngineKind Network::engine() const noexcept {
  if (engine_ != EngineKind::kAuto) return engine_;
  if (const EngineKind o = engine_override(); o != EngineKind::kAuto) return o;
  return default_engine();
}

void Network::set_default_num_threads(int threads) noexcept {
  g_default_threads.store(threads > 0 ? threads : 0,
                          std::memory_order_relaxed);
}

int Network::default_num_threads() noexcept {
  const int t = g_default_threads.load(std::memory_order_relaxed);
  return t > 0 ? t : env_threads();
}

RoundMetrics Network::run(SyncAlgorithm& algo, std::int64_t max_rounds,
                          int message_bit_cap) {
  detail::ensure_env_tracer();
  detail::ensure_env_checker();
  // Cached for the whole run: the tracer may not be swapped while a run
  // is in flight. A null tracer costs one pointer test per round.
  Tracer* const tracer = Tracer::current();
  // Checker-armed bandwidth cap, merged with the caller's cap once per run
  // on this (the simulating) thread; pool threads only ever read the
  // resulting int. active_bit_cap() is nonzero only for throw-mode
  // checkers, whose violations travel through the chunk-order rethrow
  // below — deterministic at every thread count.
  const InvariantChecker* const checker = InvariantChecker::current();
  // Stats mirror the tracer's cost contract: null registry = one pointer
  // test per run; otherwise handles resolve once here and per-round
  // recording is a few field updates on the simulating thread.
  StatsRegistry* const stats = StatsRegistry::current();
  StatCounter* c_scalar_rounds = nullptr;
  StatCounter* c_vector_rounds = nullptr;
  StatHistogram* h_round_active = nullptr;
  StatHistogram* h_round_sent_msgs = nullptr;
  StatHistogram* h_round_sent_bits = nullptr;
  StatGauge* g_inbox_flat = nullptr;
  if (stats != nullptr) {
    // Which rounds go dense — and therefore which rounds materialize
    // envelopes, and which nodes the eager ingest skips — is exactly what
    // differs between engines, hence the kEngine domain on these four.
    c_scalar_rounds = &stats->counter("sim.scalar_rounds", StatDomain::kEngine);
    c_vector_rounds = &stats->counter("sim.vector_rounds", StatDomain::kEngine);
    h_round_active =
        &stats->histogram("sim.round_active_nodes", StatDomain::kEngine);
    g_inbox_flat =
        &stats->gauge("sim.inbox_flat_bytes", StatDomain::kEngine);
    h_round_sent_msgs = &stats->histogram("sim.round_sent_messages");
    h_round_sent_bits = &stats->histogram("sim.round_sent_bits");
  }
  const int checker_cap = checker != nullptr ? checker->active_bit_cap() : 0;
  const int effective_bit_cap =
      message_bit_cap > 0 && checker_cap > 0
          ? std::min(message_bit_cap, checker_cap)
          : std::max(message_bit_cap, checker_cap);
  message_bit_cap = effective_bit_cap;
  const Graph& g = *graph_;
  const NodeId n_nodes = g.num_nodes();
  const auto n = static_cast<std::size_t>(n_nodes);
  RoundMetrics metrics;

  // Message validation and accounting: identical checks (and error text)
  // for the serial and parallel paths. The tallies are associative, so
  // merging per-chunk tallies reproduces the serial metrics exactly.
  // Validates and tallies buf[before..), compacting away broadcast entries
  // from isolated nodes (they stand for zero messages and must not count
  // as in-flight traffic).
  auto account_new = [&](std::vector<Mailbox::Outgoing>& buf,
                         std::size_t before, std::int64_t& msgs,
                         std::int64_t& bits, int& max_bits) {
    auto check_cap = [&](const Mailbox::Outgoing& out) {
      DCOLOR_CHECK_MSG(
          message_bit_cap <= 0 || out.message.bits() <= message_bit_cap,
          "CONGEST violation: node " << out.from << " sent "
                                     << out.message.bits() << " bits (cap "
                                     << message_bit_cap << ")");
    };
    std::size_t w = before;
    for (std::size_t i = before; i < buf.size(); ++i) {
      const Mailbox::Outgoing& out = buf[i];
      if (out.to == Mailbox::kBroadcastTo) {
        const auto deg = static_cast<std::int64_t>(g.degree(out.from));
        if (deg == 0) continue;  // expands to nothing: drop the entry
        check_cap(out);
        msgs += deg;
        bits += deg * out.message.bits();
      } else {
        DCOLOR_CHECK_MSG(g.has_edge(out.from, out.to),
                         "node " << out.from << " sent to non-neighbor "
                                 << out.to);
        check_cap(out);
        msgs += 1;
        bits += out.message.bits();
      }
      max_bits = std::max(max_bits, out.message.bits());
      if (w != i) buf[w] = std::move(buf[i]);
      ++w;
    }
    buf.resize(w);
  };

  // `sent` collects this round's outgoing messages in (sender, send-order)
  // order; the swap into `to_deliver` is the round boundary. The in-flight
  // scan of the old engine is now just `to_deliver.empty()`.
  std::vector<Mailbox::Outgoing> sent, to_deliver;

  // Per-node runtime record. The engine touches several per-node facts on
  // every delivery and step (inbox slice, activation stamp, done/always
  // flags, registered wake); keeping them in ONE record means one cache
  // line per touch instead of one miss per parallel array — the simulator
  // is memory-latency-bound, not compute-bound. Fields are written only by
  // the owning node's step (or the serial delivery pass), so parallel
  // chunks never race on them.
  struct NodeRt {
    std::int64_t in_stamp = -1;     ///< round whose inbox slice is valid
    std::int64_t active_stamp = -1; ///< round already in the active set
    std::int64_t wake_round = -1;   ///< registered wake (-1 = none)
    std::uint32_t in_begin = 0;     ///< inbox slice start in inbox_flat
    std::uint32_t in_count = 0;     ///< inbox slice length
    std::uint32_t in_cursor = 0;    ///< scatter cursor during delivery
    std::uint8_t done = 0;          ///< done(v) already observed true
    std::uint8_t always = 0;        ///< hook returned kEveryRound
  };
  std::vector<NodeRt> rt(n);
  std::int64_t done_count = 0;

  // `always` lists nodes whose hook returned kEveryRound (the dense
  // default); everyone else is stepped only on a non-empty inbox or a
  // registered wake-up round. Duplicate wake registrations are skipped via
  // rt[v].wake_round, keeping bucket sizes linear in DISTINCT registrations.
  std::vector<NodeId> always;
  using WakeEntry = std::pair<std::int64_t, NodeId>;
  // Wake-ups live in per-round buckets instead of a heap: registration and
  // drain are O(1) cache-friendly appends/scans, and the fast-forward scan
  // over empty buckets is amortized O(max_rounds) across the whole run
  // (each scanned bucket is jumped over exactly once). Grown lazily to the
  // furthest registered round, which algorithm behavior keeps near the
  // actual round span — never pre-sized to max_rounds.
  std::vector<std::vector<NodeId>> wake_buckets;
  auto register_wake = [&](const WakeEntry& e) {
    const auto idx = static_cast<std::size_t>(
        std::min<std::int64_t>(e.first, max_rounds + 1));
    if (idx >= wake_buckets.size()) wake_buckets.resize(idx + 1);
    wake_buckets[idx].push_back(e.second);
  };

  auto query_hook = [&](NodeId v, std::int64_t after,
                        std::vector<WakeEntry>& wake_sink,
                        std::vector<NodeId>& promote_sink) {
    const std::int64_t w = algo.next_active_round(v, after);
    if (w == SyncAlgorithm::kEveryRound) {
      promote_sink.push_back(v);
    } else if (w != SyncAlgorithm::kNoWakeup) {
      DCOLOR_CHECK_MSG(w > after, "next_active_round(" << v << ", " << after
                                                       << ") returned "
                                                       << w);
      NodeRt& r = rt[static_cast<std::size_t>(v)];
      if (r.wake_round != w) {
        r.wake_round = w;
        wake_sink.push_back({w, v});
      }
    }
  };

  // ---- Round 0: init (serial; runs once) -------------------------------
  {
    std::vector<WakeEntry> wakes;
    std::vector<NodeId> promote;
    for (NodeId v = 0; v < n_nodes; ++v) {
      const std::size_t before = sent.size();
      Mailbox mail(v, {}, &sent);
      algo.init(v, mail);
      account_new(sent, before, metrics.total_messages,
                  metrics.total_message_bits, metrics.max_message_bits);
      if (algo.done(v)) {
        rt[static_cast<std::size_t>(v)].done = 1;
        ++done_count;
      }
      query_hook(v, 0, wakes, promote);
    }
    for (const WakeEntry& e : wakes) register_wake(e);
    for (NodeId v : promote) {
      rt[static_cast<std::size_t>(v)].always = 1;
      always.push_back(v);  // ascending: v was visited in id order
    }
  }
  to_deliver.swap(sent);

  const bool dense_all = always.size() == n;

  // ---- Engine selection (see sim/engine.h) -----------------------------
  // Sticky policy: the vector path is entered at a round boundary by
  // absorbing the queued scalar sends into the algorithm's dense kernel —
  // under kAuto only when the traffic is dense (>= half the nodes sent,
  // which covers every broadcast-flood round), under kVector whenever the
  // kernel accepts the shape. Once entered, rounds stay dense while the
  // kernel keeps producing (its sends never return to the scalar buffer);
  // a can_step() decline spills the pending broadcasts back and hands
  // that round to the scalar path. Spilled/absorbed messages were already
  // accounted when first queued and are never re-tallied.
  DenseKernel* const kernel = algo.dense_kernel();
  const EngineKind engine_kind = engine();
  const bool vector_allowed =
      kernel != nullptr && engine_kind != EngineKind::kScalar;
  std::int64_t kernel_pending = 0;
  // Latched after the first successful absorb: sparse rounds of an
  // already-vectorized run (a thin color class between two dense sweeps)
  // keep flowing through the kernel instead of bouncing the rest of the
  // run back to the scalar path — kernel work per round is O(senders),
  // so a thin round is cheap on either path and staying avoids the
  // re-entry density gate.
  bool dense_latched = false;
  // Lightweight phase profiling (DCOLOR_SIMPROF=1): per-run totals of the
  // per-round passes, printed to stderr. The clock reads cost a few tens
  // of nanoseconds per round — noise next to any real round.
  using Clk = std::chrono::steady_clock;
  const bool simprof = std::getenv("DCOLOR_SIMPROF") != nullptr;
  std::int64_t t_deliver = 0, t_active = 0, t_step = 0, t_absorb = 0;
  auto tick = [] { return Clk::now(); };
  auto try_enter_dense = [&] {
    if (!vector_allowed || to_deliver.empty()) return;
    if (engine_kind != EngineKind::kVector && !dense_latched &&
        to_deliver.size() * 2 < n)
      return;
    const auto ta = tick();
    if (kernel->absorb(to_deliver)) {
      dense_latched = true;
      kernel_pending = kernel->pending_messages();
      to_deliver.clear();
    }
    t_absorb += std::chrono::duration_cast<std::chrono::nanoseconds>(
                    tick() - ta)
                    .count();
  };
  try_enter_dense();
  // ---- Per-round scratch (allocated once, reused) ----------------------
  std::vector<Envelope> inbox_flat;
  std::vector<NodeId> touched, active, identity;
  if (dense_all) {
    identity.resize(n);
    for (NodeId v = 0; v < n_nodes; ++v)
      identity[static_cast<std::size_t>(v)] = v;
  }

  const int threads = std::max(1, num_threads());
  struct ChunkState {
    std::vector<Mailbox::Outgoing> out;
    std::vector<WakeEntry> wakes;
    std::vector<NodeId> promote;
    std::int64_t done_delta = 0;
    std::int64_t msgs = 0;
    std::int64_t bits = 0;
    std::int64_t step_ns = 0;  ///< this chunk's step wall (traced runs)
    int max_bits = 0;
    DenseChunk dense;  ///< vector-path tallies (scalar path leaves it idle)
    std::exception_ptr error;
  };
  std::vector<ChunkState> chunks;
  std::vector<WakeEntry> wake_scratch;
  std::vector<NodeId> promote_scratch;

  // Tracing state: everything here is plain arithmetic on tallies the
  // engine computes anyway, so the untraced path stays unperturbed and
  // the traced path allocates nothing per round (chunk_ns_scratch is
  // reused). Messages sent in round r are delivered in round r+1, so the
  // per-round "delivered" tallies are just last round's send tallies
  // (init sends count as round-0 sends, delivered in round 1).
  std::int64_t pending_msgs = metrics.total_messages;
  std::int64_t pending_bits = metrics.total_message_bits;
  std::int64_t prev_materialized = 0;
  std::vector<std::int64_t> chunk_ns_scratch;

  // Steps nodes active[lo..hi) for `round`, appending sends to `out` and
  // recording tallies/transitions. Thread-safe for disjoint ranges: only
  // node-local algorithm state, distinct done_flag bytes, and the
  // chunk-local buffers are written.
  auto step_range = [&](std::int64_t round, std::size_t lo, std::size_t hi,
                        const std::vector<NodeId>& act,
                        std::vector<Mailbox::Outgoing>& out,
                        std::vector<WakeEntry>& wake_sink,
                        std::vector<NodeId>& promote_sink,
                        std::int64_t& done_delta, std::int64_t& msgs,
                        std::int64_t& bits, int& max_bits) {
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId v = act[i];
      NodeRt& r = rt[static_cast<std::size_t>(v)];
      std::span<const Envelope> inbox;
      if (r.in_stamp == round) {
        inbox = {inbox_flat.data() + r.in_begin, r.in_count};
      }
      const std::size_t before = out.size();
      Mailbox mail(v, inbox, &out);
      algo.step(v, static_cast<int>(round), mail);
      if (out.size() != before) account_new(out, before, msgs, bits, max_bits);
      if (r.done == 0 && algo.done(v)) {
        r.done = 1;
        ++done_delta;
      }
      // Re-query the hook only when no future wake is pending: a
      // registered wake may not move earlier (see the hook contract), so
      // while one is outstanding the answer cannot change in a way the
      // engine would act on. This skips a virtual call on every
      // pure-ingest step between a node's registered turns.
      if (r.always == 0 && r.wake_round <= round) {
        query_hook(v, round, wake_sink, promote_sink);
      }
    }
  };

  for (std::int64_t round = 1;; ++round) {
    // Start-of-round termination test — O(1) instead of two O(n) scans.
    if (done_count == static_cast<std::int64_t>(n) && to_deliver.empty() &&
        kernel_pending == 0)
      break;

    // Fast-forward: with no messages in flight and no dense nodes, every
    // round before the next wake-up is a guaranteed no-op; the skipped
    // rounds still elapse (metrics parity with the dense engine), they are
    // just not materialized. An empty wake queue here is a stalled
    // execution — the dense engine would spin no-op rounds into the cap,
    // so report the same overrun.
    if (to_deliver.empty() && kernel_pending == 0 && always.empty()) {
      auto b = static_cast<std::size_t>(round);
      while (b < wake_buckets.size() && wake_buckets[b].empty()) ++b;
      round = b < wake_buckets.size() ? static_cast<std::int64_t>(b)
                                      : max_rounds + 1;
    }
    DCOLOR_CHECK_MSG(round <= max_rounds,
                     "algorithm exceeded max_rounds=" << max_rounds);

    // A kernel that cannot represent this round's shape hands its pending
    // broadcasts back to the scalar path (content and order identical to
    // the scalar buffer it absorbed from).
    bool dense_round = kernel_pending > 0;
    if (dense_round && !kernel->can_step(round)) {
      kernel->spill(to_deliver);
      kernel_pending = 0;
      dense_round = false;
    }

    // ---- Deliver: regroup last round's sends by destination (CSR) ----
    auto t0 = tick();
    touched.clear();
    std::size_t expanded = 0;
    bool graph_shaped = false;
    if (dense_round) {
      // Vector path: no Envelope is materialized — the kernel retires its
      // pending broadcasts into readable payload lanes and reports the
      // receivers (deduplicated, first-message order) for the active set.
      kernel->deliver(round, touched);
    } else {
    // Fast path for fully dense broadcast rounds (every node broadcast
    // exactly once — the shape of the polynomial color reductions): the
    // inbox layout IS the graph's CSR, so per-node counts/offsets are a
    // sequential fill instead of one random-access increment per
    // delivered message. Detecting the shape is one sequential scan over
    // the (much shorter) outgoing list.
    graph_shaped = to_deliver.size() == n;
    for (std::size_t i = 0; graph_shaped && i < to_deliver.size(); ++i) {
      graph_shaped = to_deliver[i].to == Mailbox::kBroadcastTo &&
                     to_deliver[i].from == static_cast<NodeId>(i);
    }
    if (graph_shaped) {
      std::uint32_t off = 0;
      for (NodeId v = 0; v < n_nodes; ++v) {
        NodeRt& r = rt[static_cast<std::size_t>(v)];
        const auto d = static_cast<std::uint32_t>(g.degree(v));
        r.in_stamp = round;
        r.in_begin = off;
        r.in_cursor = off;
        r.in_count = d;
        off += d;
        if (d != 0) touched.push_back(v);
      }
      expanded = off;
    } else {
      auto count_to = [&](NodeId to) {
        NodeRt& r = rt[static_cast<std::size_t>(to)];
        if (r.in_stamp != round) {
          r.in_stamp = round;
          r.in_count = 0;
          touched.push_back(to);
        }
        ++r.in_count;
      };
      for (const auto& out : to_deliver) {
        if (out.to == Mailbox::kBroadcastTo) {
          const auto nbrs = g.neighbors(out.from);
          for (const NodeId u : nbrs) count_to(u);
          expanded += nbrs.size();
        } else {
          count_to(out.to);
          ++expanded;
        }
      }
      // `touched` stays in first-message order: the CSR offsets only need
      // to partition the flat array, and the inbox CONTENT per destination
      // is send-order regardless.
      std::uint32_t offset = 0;
      for (const NodeId t : touched) {
        NodeRt& r = rt[static_cast<std::size_t>(t)];
        r.in_begin = offset;
        r.in_cursor = offset;
        offset += r.in_count;
      }
    }
    if (inbox_flat.size() < expanded) {
      inbox_flat.resize(expanded);  // never shrinks: slots are recycled by
                                    // move-assignment
    }
    if (graph_shaped) {
      // Gather in destination order: node v's inbox is exactly its
      // neighbor list ascending (every neighbor broadcast once, senders
      // expand in ascending order on the scatter path too, so the content
      // is identical) — one sequential write stream instead of one
      // random-access write cursor per delivered message.
      std::size_t w = 0;
      for (NodeId v = 0; v < n_nodes; ++v) {
        for (const NodeId u : g.neighbors(v)) {
          inbox_flat[w++] =
              Envelope{u, to_deliver[static_cast<std::size_t>(u)].message};
        }
      }
    } else {
      for (auto& out : to_deliver) {
        if (out.to == Mailbox::kBroadcastTo) {
          // Expand in adjacency order — exactly the per-neighbor send
          // order the non-batched broadcast used; the last copy is a move.
          const auto nbrs = g.neighbors(out.from);
          for (std::size_t j = 0; j + 1 < nbrs.size(); ++j) {
            inbox_flat[rt[static_cast<std::size_t>(nbrs[j])].in_cursor++] =
                Envelope{out.from, out.message};
          }
          inbox_flat[rt[static_cast<std::size_t>(nbrs.back())].in_cursor++] =
              Envelope{out.from, std::move(out.message)};
        } else {
          inbox_flat[rt[static_cast<std::size_t>(out.to)].in_cursor++] =
              Envelope{out.from, std::move(out.message)};
        }
      }
    }
    to_deliver.clear();
    }
    auto t1 = tick();

    // ---- Active set: inbox owners ∪ due wake-ups ∪ dense nodes ----
    const std::vector<NodeId>* act = &identity;
    std::size_t n_woken = 0;
    if (!dense_all) {
      active.clear();
      for (const NodeId t : touched) {
        rt[static_cast<std::size_t>(t)].active_stamp = round;
        active.push_back(t);
      }
      // Buckets below `round` are already drained: rounds are materialized
      // in order and fast-forward only jumps over empty buckets.
      if (static_cast<std::size_t>(round) < wake_buckets.size()) {
        std::vector<NodeId>& due = wake_buckets[static_cast<std::size_t>(round)];
        for (const NodeId v : due) {
          NodeRt& r = rt[static_cast<std::size_t>(v)];
          if (r.active_stamp != round) {
            r.active_stamp = round;
            active.push_back(v);
            ++n_woken;
          }
        }
        due.clear();
      }
      for (const NodeId v : always) {
        NodeRt& r = rt[static_cast<std::size_t>(v)];
        if (r.active_stamp != round) {
          r.active_stamp = round;
          active.push_back(v);
        }
      }
      // The step order within a round is deterministic but unspecified:
      // first-message order, then due wake-ups in registration order, then
      // dense nodes. Algorithms must be step-order independent within a
      // round anyway (synchronous model; enforced by the test suite), and
      // every deterministic order yields deterministic runs. Sorting the
      // set ascending would cost more than the rest of this pass.
      act = &active;
    }

    auto t2 = tick();
    // ---- Step the active nodes (serial, or chunked across the pool) ----
    const std::size_t n_active = act->size();
    const std::int64_t msgs_before_step = metrics.total_messages;
    const std::int64_t bits_before_step = metrics.total_message_bits;
    bool chunked = false;
    if (dense_round) {
      // Vector path: chunks call the kernel's batch step over the SAME
      // contiguous ranges of the active vector the scalar path would
      // iterate; done/hook bookkeeping runs per chunk exactly like
      // step_range's tail (node-local state + chunk-local sinks only).
      // Sender lists are committed in chunk order after the barrier, so
      // the kernel's pending-sender order — and with it next round's
      // delivery — is identical to a serial sweep at any thread count.
      auto post_step = [&](std::size_t lo, std::size_t hi,
                           std::vector<WakeEntry>& wake_sink,
                           std::vector<NodeId>& promote_sink,
                           std::int64_t& done_delta) {
        for (std::size_t i = lo; i < hi; ++i) {
          const NodeId v = (*act)[i];
          NodeRt& r = rt[static_cast<std::size_t>(v)];
          if (r.done == 0 && algo.done(v)) {
            r.done = 1;
            ++done_delta;
          }
          if (r.always == 0 && r.wake_round <= round) {
            query_hook(v, round, wake_sink, promote_sink);
          }
        }
      };
      auto merge_dense = [&](ChunkState& cs) {
        kernel->commit_senders(cs.dense.senders);
        for (const WakeEntry& e : cs.wakes) register_wake(e);
        for (const NodeId v : cs.promote) {
          rt[static_cast<std::size_t>(v)].always = 1;
          always.insert(std::lower_bound(always.begin(), always.end(), v),
                        v);
        }
        done_count += cs.done_delta;
        metrics.total_messages += cs.dense.msgs;
        metrics.total_message_bits += cs.dense.bits;
        metrics.max_message_bits =
            std::max(metrics.max_message_bits, cs.dense.max_bits);
      };
      if (threads > 1 && n_active >= kMinParallelActive) {
        chunked = true;
        // Ambient fleet first (a big batch job's rounds are stolen by
        // idle batch workers); else the lazily-built private fleet.
        sched::Scheduler* fleet = sched::Scheduler::current();
        if (fleet == nullptr) {
          if (!pool_ || pool_->workers() != threads - 1) {
            pool_ = std::make_unique<sched::Scheduler>(threads - 1);
          }
          fleet = pool_.get();
        }
        const int n_chunks = threads;
        chunks.resize(static_cast<std::size_t>(n_chunks));
        fleet->parallel_for(n_chunks, [&](int c) {
          ChunkState& cs = chunks[static_cast<std::size_t>(c)];
          cs.wakes.clear();
          cs.promote.clear();
          cs.done_delta = 0;
          cs.step_ns = 0;
          cs.dense.clear();
          cs.error = nullptr;
          const std::size_t lo = n_active * static_cast<std::size_t>(c) /
                                 static_cast<std::size_t>(n_chunks);
          const std::size_t hi =
              n_active * (static_cast<std::size_t>(c) + 1) /
              static_cast<std::size_t>(n_chunks);
          const auto c0 = tracer != nullptr ? tick() : Clk::time_point{};
          try {
            kernel->step_batch(round, *act, lo, hi, message_bit_cap,
                               cs.dense);
            post_step(lo, hi, cs.wakes, cs.promote, cs.done_delta);
          } catch (...) {
            cs.error = std::current_exception();
          }
          if (tracer != nullptr) cs.step_ns = (tick() - c0).count();
        });
        for (const ChunkState& cs : chunks) {
          if (cs.error) std::rethrow_exception(cs.error);
        }
        for (ChunkState& cs : chunks) merge_dense(cs);
      } else {
        if (chunks.empty()) chunks.resize(1);
        ChunkState& cs = chunks.front();
        cs.wakes.clear();
        cs.promote.clear();
        cs.done_delta = 0;
        cs.dense.clear();
        kernel->step_batch(round, *act, 0, n_active, message_bit_cap,
                           cs.dense);
        post_step(0, n_active, cs.wakes, cs.promote, cs.done_delta);
        merge_dense(cs);
      }
      kernel_pending = kernel->pending_messages();
    } else if (threads > 1 && n_active >= kMinParallelActive) {
      chunked = true;
      sched::Scheduler* fleet = sched::Scheduler::current();
      if (fleet == nullptr) {
        if (!pool_ || pool_->workers() != threads - 1) {
          pool_ = std::make_unique<sched::Scheduler>(threads - 1);
        }
        fleet = pool_.get();
      }
      const int n_chunks = threads;
      chunks.resize(static_cast<std::size_t>(n_chunks));
      fleet->parallel_for(n_chunks, [&](int c) {
        ChunkState& cs = chunks[static_cast<std::size_t>(c)];
        cs.out.clear();
        cs.wakes.clear();
        cs.promote.clear();
        cs.done_delta = cs.msgs = cs.bits = 0;
        cs.step_ns = 0;
        cs.max_bits = 0;
        cs.error = nullptr;
        const std::size_t lo =
            n_active * static_cast<std::size_t>(c) /
            static_cast<std::size_t>(n_chunks);
        const std::size_t hi =
            n_active * (static_cast<std::size_t>(c) + 1) /
            static_cast<std::size_t>(n_chunks);
        // Chunk wall clock is only read under a tracer: the extra two
        // clock calls stay off the untraced path, and no tracer state is
        // touched from pool threads — the record is assembled after the
        // barrier on the simulating thread.
        const auto c0 = tracer != nullptr ? tick() : Clk::time_point{};
        try {
          step_range(round, lo, hi, *act, cs.out, cs.wakes, cs.promote,
                     cs.done_delta, cs.msgs, cs.bits, cs.max_bits);
        } catch (...) {
          cs.error = std::current_exception();
        }
        if (tracer != nullptr) cs.step_ns = (tick() - c0).count();
      });
      // Chunks cover contiguous ranges of the SAME active vector the
      // serial path iterates, so merging them in chunk order reproduces
      // the serial (sender, send-order) delivery order — and the first
      // error in chunk order is the first error the serial engine would
      // have hit.
      for (const ChunkState& cs : chunks) {
        if (cs.error) std::rethrow_exception(cs.error);
      }
      for (ChunkState& cs : chunks) {
        sent.insert(sent.end(), std::make_move_iterator(cs.out.begin()),
                    std::make_move_iterator(cs.out.end()));
        for (const WakeEntry& e : cs.wakes) register_wake(e);
        for (const NodeId v : cs.promote) {
          rt[static_cast<std::size_t>(v)].always = 1;
          always.insert(
              std::lower_bound(always.begin(), always.end(), v), v);
        }
        done_count += cs.done_delta;
        metrics.total_messages += cs.msgs;
        metrics.total_message_bits += cs.bits;
        metrics.max_message_bits =
            std::max(metrics.max_message_bits, cs.max_bits);
      }
    } else {
      std::int64_t done_delta = 0, msgs = 0, bits = 0;
      int max_bits = 0;
      std::vector<WakeEntry>& wakes = wake_scratch;
      std::vector<NodeId>& promote = promote_scratch;
      wakes.clear();
      promote.clear();
      step_range(round, 0, n_active, *act, sent, wakes, promote, done_delta,
                 msgs, bits, max_bits);
      for (const WakeEntry& e : wakes) register_wake(e);
      for (const NodeId v : promote) {
        rt[static_cast<std::size_t>(v)].always = 1;
        always.insert(std::lower_bound(always.begin(), always.end(), v), v);
      }
      done_count += done_delta;
      metrics.total_messages += msgs;
      metrics.total_message_bits += bits;
      metrics.max_message_bits = std::max(metrics.max_message_bits, max_bits);
    }

    auto t3 = tick();
    t_deliver += (t1 - t0).count();
    t_active += (t2 - t1).count();
    t_step += (t3 - t2).count();
    metrics.rounds = round;
    metrics.executed_rounds += 1;
    metrics.peak_active_nodes = std::max(
        metrics.peak_active_nodes, static_cast<std::int64_t>(n_active));

    const std::int64_t sent_msgs = metrics.total_messages - msgs_before_step;
    const std::int64_t sent_bits =
        metrics.total_message_bits - bits_before_step;
    if (tracer != nullptr) {
      TraceRound rec;
      rec.run_round = round;
      rec.ff_rounds = round - prev_materialized - 1;
      rec.active_nodes = static_cast<std::int64_t>(n_active);
      rec.inbox_nodes = static_cast<std::int64_t>(touched.size());
      rec.woken_nodes = static_cast<std::int64_t>(n_woken);
      rec.dense_nodes = rec.active_nodes - rec.inbox_nodes - rec.woken_nodes;
      rec.delivered_messages = pending_msgs;
      rec.delivered_bits = pending_bits;
      rec.sent_messages = sent_msgs;
      rec.sent_bits = sent_bits;
      rec.broadcast_fast_path = graph_shaped;
      rec.engine = dense_round ? EngineKind::kVector : EngineKind::kScalar;
      rec.ts_ns = tracer->to_trace_ns(t0.time_since_epoch().count());
      rec.wall_ns = (t3 - t0).count();
      rec.step_ns = (t3 - t2).count();
      chunk_ns_scratch.clear();
      if (chunked) {
        for (const ChunkState& cs : chunks) {
          chunk_ns_scratch.push_back(cs.step_ns);
        }
      } else {
        chunk_ns_scratch.push_back(rec.step_ns);
      }
      rec.chunk_ns = chunk_ns_scratch;
      tracer->on_round(rec);
    }
    if (stats != nullptr) {
      (dense_round ? c_vector_rounds : c_scalar_rounds)->add(1);
      h_round_active->record(static_cast<std::int64_t>(n_active));
      h_round_sent_msgs->record(sent_msgs);
      h_round_sent_bits->record(sent_bits);
      g_inbox_flat->set(
          static_cast<std::int64_t>(expanded * sizeof(Envelope)));
    }
    pending_msgs = sent_msgs;
    pending_bits = sent_bits;
    prev_materialized = round;
    to_deliver.swap(sent);
    try_enter_dense();
  }
  if (tracer != nullptr) tracer->on_run_end(metrics.rounds);
  if (stats != nullptr) {
    stats->counter("sim.runs").add(1);
    stats->counter("sim.rounds").add(metrics.rounds);
    stats->counter("sim.executed_rounds").add(metrics.executed_rounds);
    stats->counter("sim.messages").add(metrics.total_messages);
    stats->counter("sim.message_bits").add(metrics.total_message_bits);
    stats->gauge("sim.max_message_bits").set(metrics.max_message_bits);
    stats->gauge("sim.peak_active_nodes", StatDomain::kEngine)
        .set(metrics.peak_active_nodes);
  }
  if (simprof) {
    std::fprintf(
        stderr,
        "[simprof] deliver=%lldms active=%lldms step=%lldms absorb=%lldms\n",
        static_cast<long long>(t_deliver / 1000000),
        static_cast<long long>(t_active / 1000000),
        static_cast<long long>(t_step / 1000000),
        static_cast<long long>(t_absorb / 1000000));
  }
  return metrics;
}

}  // namespace dcolor
