#include "sim/batch_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>

#include <condition_variable>
#include <cstdlib>

#include "check/invariant_checker.h"
#include "core/run_context.h"
#include "core/solver_registry.h"
#include "graph/generators.h"
#include "obs/stats.h"
#include "sim/scheduler.h"
#include "storage/snapshot_cache.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/parse.h"
#include "util/rng.h"
#include "util/rss.h"

namespace dcolor {

namespace {

using Input = SolverCapabilities::Input;

// RNG stream salts: one independent stream per construction purpose so a
// job's graph and lists never consume each other's draws.
constexpr std::uint64_t kGraphSalt = 0x67726170;  // "grap"
constexpr std::uint64_t kListSalt = 0x6c697374;   // "list"

/// Per-worker scratch a job builds its instance into. Leased from a
/// mutex-guarded pool and returned after the job, so steady-state jobs
/// rebuild lists inside the previous job's arenas: PaletteStore::clear
/// keeps capacity and push_scratch is the allocation-free insert path.
struct BatchScratch {
  Graph graph;
  OldcInstance oldc;
  ListDefectiveInstance list_defective;
  PaletteStore::Scratch list_buf;
  std::vector<Color> color_pool;     ///< Fisher–Yates sampling pool
  std::vector<Color> distinct_buf;   ///< colors_used counting
};

Graph build_graph(const BatchJob& job, Rng& rng) {
  DCOLOR_CHECK_MSG(job.n >= 2, "batch job needs n >= 2 (got " << job.n << ")");
  if (job.generator == "gnp") {
    return gnp_avg_degree(job.n, static_cast<double>(job.degree), rng);
  }
  if (job.generator == "regular") {
    return random_near_regular(job.n, std::max(1, job.degree), rng);
  }
  if (job.generator == "tree") return random_tree(job.n, rng);
  if (job.generator == "geometric") {
    // Radius giving expected degree ~ `degree`: n·π·r² neighbors in the
    // unit square (ignoring boundary effects).
    const double radius =
        std::sqrt(static_cast<double>(job.degree + 1) /
                  (3.14159265358979323846 * static_cast<double>(job.n)));
    return random_geometric(job.n, std::min(1.0, radius), rng);
  }
  if (job.generator == "cycle") return cycle(std::max<NodeId>(3, job.n));
  DCOLOR_CHECK_MSG(false, "unknown generator '"
                              << job.generator
                              << "' (gnp|regular|tree|geometric|cycle)");
  return {};
}

/// Writes `count` distinct colors from [0, color_space) into scratch.colors
/// with defect `defect` each, via a partial Fisher–Yates over the reusable
/// pool (no per-node allocation once the pool reached color_space).
void sample_palette(PaletteStore::Scratch& scratch,
                    std::vector<Color>& pool, std::int64_t color_space,
                    std::size_t count, int defect, Rng& rng) {
  pool.resize(static_cast<std::size_t>(color_space));
  std::iota(pool.begin(), pool.end(), Color{0});
  scratch.colors.clear();
  scratch.defects.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    scratch.colors.push_back(pool[i]);
    scratch.defects.push_back(defect);
  }
}

/// OLDC instance sized so the target solver's premise holds for every
/// node by construction (same scheme as the fuzz harness, generalized to
/// the job's p/ε): uniform defect with Λ(d+1) strictly above the Eq. (2)
/// and Eq. (7) thresholds, and above 3√C·β for CONGEST solvers.
/// Explicit graph/instance targets so the same builder fills a private
/// scratch OR a shared snapshot-cache entry.
void fill_oldc(const Graph& graph, OldcInstance& inst, const BatchJob& job,
               const SolverCapabilities& caps, Rng& rng,
               PaletteStore::Scratch& list_buf, std::vector<Color>& pool) {
  inst.graph = &graph;
  inst.orientation = Orientation::by_id(graph);
  inst.symmetric = job.symmetric && caps.symmetric;
  const int beta = inst.symmetric ? std::max(1, graph.max_degree())
                                  : inst.orientation.beta();
  const int list_size = 4 + static_cast<int>(rng.below(5));  // 4..8
  const std::int64_t color_space =
      list_size + static_cast<std::int64_t>(
                      rng.below(static_cast<std::uint64_t>(list_size + 4)));
  const auto p = static_cast<double>(std::max(1, job.params.p));
  const double eq2 =
      std::max(p * p, static_cast<double>(list_size)) * beta / p;
  const double eq7 = (1.0 + job.params.eps) *
                     std::max(p, static_cast<double>(list_size) / p) * beta;
  double need = std::max(eq2, eq7);
  if (caps.congest) {
    need = std::max(
        need, 3.0 * std::sqrt(static_cast<double>(color_space)) * beta);
  }
  // weight = Λ(defect+1) = Λ·(⌊need/Λ⌋+1) + Λ·jitter > need.
  const int defect =
      static_cast<int>(std::floor(need / list_size)) +
      static_cast<int>(rng.below(2));

  inst.color_space = color_space;
  inst.lists.clear();
  inst.lists.reserve(static_cast<std::size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    sample_palette(list_buf, pool, color_space,
                   static_cast<std::size_t>(list_size), defect, rng);
    inst.lists.push_scratch(list_buf);
  }
}

/// (deg+1)-list instance with zero defects from a 2(Δ+1) color space —
/// satisfies both the slack-1 premise (weight = deg+1 > deg) and the
/// deg_plus_one premise by construction.
void fill_deg_plus_one(const Graph& graph, ListDefectiveInstance& inst,
                       Rng& rng, PaletteStore::Scratch& list_buf,
                       std::vector<Color>& pool) {
  inst.graph = &graph;
  inst.color_space = 2 * (static_cast<std::int64_t>(graph.max_degree()) + 1);
  inst.lists.clear();
  inst.lists.reserve(static_cast<std::size_t>(graph.num_nodes()));
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    sample_palette(list_buf, pool, inst.color_space,
                   static_cast<std::size_t>(graph.degree(v)) + 1,
                   /*defect=*/0, rng);
    inst.lists.push_scratch(list_buf);
  }
}

/// The cache key of a job's instance: exactly the fields the builders
/// above consume. Jobs with equal keys — `repeat=` expansions resolved to
/// the same seed, or different solvers with matching capability bits over
/// one scenario — build byte-identical instances. nullopt for jobs that
/// will fail solver lookup (they never build anything).
std::optional<InstanceKey> job_key(const BatchJob& job,
                                   const BatchOptions& options) {
  const Solver* solver = SolverRegistry::get().find(job.solver);
  if (solver == nullptr) return std::nullopt;
  const SolverCapabilities caps = solver->capabilities();
  InstanceKey key;
  key.generator = job.generator;
  key.n = job.n;
  key.degree = job.degree;
  key.seed = job.seed + options.seed;
  switch (caps.input) {
    case Input::kOldc:
      key.kind = 0;
      key.symmetric = job.symmetric && caps.symmetric;
      key.congest = caps.congest;
      key.p = job.params.p;
      key.eps = job.params.eps;
      break;
    case Input::kListDefective:
    case Input::kArbdefective:
      // fill_deg_plus_one reads nothing but the graph and the list RNG,
      // so the capability-bit fields stay at their defaults and the
      // instance is shared across every P_D/P_A solver on the scenario.
      key.kind = 1;
      break;
    case Input::kGraph:
      key.kind = 2;
      break;
  }
  return key;
}

std::uint64_t fnv1a(const std::vector<Color>& colors) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Color c : colors) {
    h ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

std::int64_t count_distinct(const std::vector<Color>& colors,
                            std::vector<Color>& buf) {
  buf.assign(colors.begin(), colors.end());
  std::sort(buf.begin(), buf.end());
  return std::unique(buf.begin(), buf.end()) - buf.begin();
}

BatchJobResult run_one(const BatchJob& job, const BatchOptions& options,
                       BatchScratch& s, SnapshotCache* cache,
                       const InstanceKey* key, int sim_threads) {
  BatchJobResult out;
  out.label = job.label;
  // Everything that can throw (unknown solver, bad generator/n, solver
  // preconditions) is handled HERE: an exception must fail this one job,
  // never escape into the worker pool.
  const Solver* solver = SolverRegistry::get().find(job.solver);
  out.solver = solver != nullptr ? std::string(solver->name()) : job.solver;
  if (out.label.empty()) {
    out.label = out.solver + "/" + job.generator + "/n=" +
                std::to_string(job.n) + "#" + std::to_string(job.seed);
  }
  if (solver == nullptr) {
    out.error = "unknown solver '" + job.solver + "'";
    return out;
  }
  const SolverCapabilities caps = solver->capabilities();
  const std::uint64_t seed = job.seed + options.seed;

  InvariantChecker checker(InvariantChecker::Mode::kCollect);
  // Per-job registry, installed by the job's RunScope on this worker
  // thread: producers (Network round histograms, palette snapshots,
  // checker counts) record here without touching other workers' jobs.
  StatsRegistry stats;
  const auto wall0 = std::chrono::steady_clock::now();
  // Instance borrowed from a snapshot-cache entry; declared at function
  // scope so the views outlive the solve below.
  SnapshotCache::EntryPtr cached;
  OldcInstance cached_oldc;
  ListDefectiveInstance cached_ld;
  try {
    // One build per distinct repeated spec: the first job with this key
    // constructs the instance (under the cache's per-key future), every
    // other job borrows it zero-copy. Keys occurring once — and batches
    // without a cache — take the private scratch path unchanged.
    if (cache != nullptr && key != nullptr) {
      cached = cache->get_or_build(*key, [&](SnapshotCache::Entry& entry) {
        Rng graph_rng = Rng::stream(seed, kGraphSalt);
        entry.graph = build_graph(job, graph_rng);
        Rng list_rng = Rng::stream(seed, kListSalt);
        PaletteStore::Scratch list_buf;
        std::vector<Color> pool;
        switch (caps.input) {
          case Input::kOldc:
            fill_oldc(entry.graph, entry.oldc, job, caps, list_rng, list_buf,
                      pool);
            break;
          case Input::kListDefective:
          case Input::kArbdefective:
            fill_deg_plus_one(entry.graph, entry.list_defective, list_rng,
                              list_buf, pool);
            break;
          case Input::kGraph:
            break;
        }
      });
    }

    const Graph* graph = nullptr;
    if (cached != nullptr) {
      graph = &cached->graph_ref();
    } else {
      Rng graph_rng = Rng::stream(seed, kGraphSalt);
      s.graph = build_graph(job, graph_rng);
      graph = &s.graph;
    }
    out.nodes = graph->num_nodes();
    out.edges = graph->num_edges();

    SolveRequest req;
    req.params = job.params;
    Rng list_rng = Rng::stream(seed, kListSalt);
    RunContext ctx;
    switch (caps.input) {
      case Input::kOldc:
        if (cached != nullptr) {
          cached_oldc = cached->borrow_oldc();
          req.oldc = &cached_oldc;
        } else {
          fill_oldc(s.graph, s.oldc, job, caps, list_rng, s.list_buf,
                    s.color_pool);
          req.oldc = &s.oldc;
          ctx.scratch_palettes = &s.oldc.lists;
        }
        break;
      case Input::kListDefective:
      case Input::kArbdefective:
        if (cached != nullptr) {
          cached_ld = cached->borrow_list_defective();
          req.list_defective = &cached_ld;
        } else {
          fill_deg_plus_one(s.graph, s.list_defective, list_rng, s.list_buf,
                            s.color_pool);
          req.list_defective = &s.list_defective;
          ctx.scratch_palettes = &s.list_defective.lists;
        }
        break;
      case Input::kGraph:
        req.graph = graph;
        break;
    }

    // Small jobs pin the simulator to one thread (the job axis is the
    // parallel one); big jobs get the fleet width — their round chunks
    // run as ambient-scheduler regions that idle workers steal. Either
    // way the result is thread-count-invariant, so it is independent of
    // the worker count, the steal order, and the threshold.
    ctx.num_threads = sim_threads;
    ctx.engine = job.sim_engine;
    ctx.seed = seed;
    if (options.check) ctx.checker = &checker;
    ctx.stats = &stats;
    RunScope scope(ctx);

    if (req.oldc != nullptr) {
      stats.observe_palettes(req.oldc->lists);
    } else if (req.list_defective != nullptr) {
      stats.observe_palettes(req.list_defective->lists);
    }

    if (solver->premise_holds(req)) {
      SolveResult res = solver->solve(req, ctx);
      out.valid = validate_solve(req, caps, res);
      out.metrics = res.metrics;
      out.colors_used = count_distinct(res.colors, s.distinct_buf);
      out.color_hash = fnv1a(res.colors);
    } else {
      out.error = "premise does not hold for " + out.solver;
    }
  } catch (const std::exception& e) {
    out.error = e.what();
    out.valid = false;
  }
  out.checker_violations =
      static_cast<std::int64_t>(checker.violations().size());
  out.palette_bytes = stats.gauge("palette.content_bytes").value;
  out.t.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - wall0)
                      .count();
  out.t.rss_bytes = current_rss_bytes();
  return out;
}

// ---- job spec parsing ----------------------------------------------------

bool is_spec_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_spec_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_spec_space(s.back())) s.remove_suffix(1);
  return s;
}

bool parse_bool_field(std::string_view value, std::string_view key) {
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  DCOLOR_CHECK_MSG(false, "batch job key '" << key << "': expected a boolean, got '"
                                            << value << "'");
  return false;
}

PartitionEngine parse_engine(std::string_view value) {
  if (value == "honest") return PartitionEngine::kHonest;
  if (value == "oracle" || value == "beg18") {
    return PartitionEngine::kBeg18Oracle;
  }
  DCOLOR_CHECK_MSG(false, "batch job key 'engine': expected honest|oracle, got '"
                              << value << "'");
  return PartitionEngine::kHonest;
}

/// Parses one ','-separated spec, expanding `repeat=K` into K jobs with
/// consecutive seeds.
void parse_job_spec(std::string_view spec, std::vector<BatchJob>& out) {
  BatchJob job;
  bool saw_solver = false;
  std::int64_t repeat = 1;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view field = trim(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    DCOLOR_CHECK_MSG(eq != std::string_view::npos,
                     "batch job field '" << field << "' is not key=value");
    const std::string_view key = trim(field.substr(0, eq));
    const std::string_view value = trim(field.substr(eq + 1));
    if (key == "solver" || key == "alg") {
      job.solver = std::string(value);
      saw_solver = true;
    } else if (key == "generator" || key == "gen") {
      job.generator = std::string(value);
    } else if (key == "n") {
      job.n = static_cast<NodeId>(parse_int64(value, "batch job n"));
    } else if (key == "degree") {
      job.degree = static_cast<int>(parse_int64(value, "batch job degree"));
    } else if (key == "seed") {
      job.seed =
          static_cast<std::uint64_t>(parse_int64(value, "batch job seed"));
    } else if (key == "symmetric") {
      job.symmetric = parse_bool_field(value, key);
    } else if (key == "repeat") {
      repeat = parse_int64(value, "batch job repeat");
      DCOLOR_CHECK_MSG(repeat >= 1, "batch job repeat must be >= 1");
    } else if (key == "label") {
      job.label = std::string(value);
    } else if (key == "p") {
      job.params.p = static_cast<int>(parse_int64(value, "batch job p"));
    } else if (key == "eps") {
      job.params.eps = parse_double(value, "batch job eps");
    } else if (key == "alpha") {
      job.params.alpha = parse_double(value, "batch job alpha");
    } else if (key == "theta") {
      job.params.theta =
          static_cast<int>(parse_int64(value, "batch job theta"));
    } else if (key == "engine") {
      job.params.engine = parse_engine(value);
    } else if (key == "sim_engine") {
      job.sim_engine = engine_from_string(std::string(value));
    } else {
      DCOLOR_CHECK_MSG(false, "unknown batch job key '" << key << "'");
    }
  }
  DCOLOR_CHECK_MSG(saw_solver,
                   "batch job spec '" << spec << "' is missing solver=");
  for (std::int64_t r = 0; r < repeat; ++r) {
    BatchJob expanded = job;
    expanded.seed = job.seed + static_cast<std::uint64_t>(r);
    if (!job.label.empty() && repeat > 1) {
      expanded.label = job.label + "#" + std::to_string(r);
    }
    out.push_back(std::move(expanded));
  }
}

// ---- JSON report ---------------------------------------------------------

/// Everything a batch's level-1 tasks share. Tasks are POD (fn, ctx,
/// arg) so the submit loop allocates nothing: ctx points here, arg is
/// the job index.
struct BatchExec {
  const std::vector<BatchJob>* jobs = nullptr;
  const BatchOptions* options = nullptr;
  BatchReport* report = nullptr;
  SnapshotCache* cache = nullptr;
  const std::vector<std::optional<InstanceKey>>* keys = nullptr;
  std::int64_t threshold = 0;
  int big_threads = 1;  ///< RunContext width for level-2 jobs

  std::mutex pool_mutex;  ///< guards the scratch lease pool
  std::vector<std::unique_ptr<BatchScratch>> storage;
  std::vector<BatchScratch*> idle;
  std::int64_t reused = 0;

  /// Deterministic commit cursor: job i is emitted only after 0..i-1,
  /// so the on_result stream is identical at every worker count.
  std::mutex commit_mutex;
  std::size_t cursor = 0;
  std::vector<unsigned char> finished;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = 0;
};

void run_batch_job(void* ctx, std::int64_t arg) {
  auto& x = *static_cast<BatchExec*>(ctx);
  const auto i = static_cast<std::size_t>(arg);
  BatchScratch* scratch = nullptr;
  {
    const std::lock_guard<std::mutex> lock(x.pool_mutex);
    if (x.idle.empty()) {
      x.storage.push_back(std::make_unique<BatchScratch>());
      scratch = x.storage.back().get();
    } else {
      scratch = x.idle.back();
      x.idle.pop_back();
      ++x.reused;
    }
  }
  const BatchJob& job = (*x.jobs)[i];
  const bool big = static_cast<std::int64_t>(job.n) >= x.threshold;
  const auto& key = (*x.keys)[i];
  x.report->jobs[i] =
      run_one(job, *x.options, *scratch, x.cache,
              key.has_value() ? &*key : nullptr, big ? x.big_threads : 1);
  {
    const std::lock_guard<std::mutex> lock(x.pool_mutex);
    x.idle.push_back(scratch);
  }
  {
    const std::lock_guard<std::mutex> lock(x.commit_mutex);
    x.finished[i] = 1;
    while (x.cursor < x.finished.size() && x.finished[x.cursor] != 0) {
      if (x.options->on_result) {
        x.options->on_result(x.cursor, x.report->jobs[x.cursor]);
      }
      ++x.cursor;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(x.done_mutex);
    if (--x.remaining == 0) x.done_cv.notify_all();
  }
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::vector<BatchJob> parse_batch_jobs(const std::string& file_or_spec) {
  std::vector<BatchJob> jobs;
  std::ifstream in(file_or_spec);
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      std::string_view s(line);
      if (const std::size_t hash = s.find('#');
          hash != std::string_view::npos) {
        s = s.substr(0, hash);
      }
      s = trim(s);
      if (!s.empty()) parse_job_spec(s, jobs);
    }
    DCOLOR_CHECK_MSG(!jobs.empty(),
                     "batch job file '" << file_or_spec << "' has no jobs");
    return jobs;
  }
  std::string_view spec(file_or_spec);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = std::min(spec.find(';', pos), spec.size());
    const std::string_view one = trim(spec.substr(pos, semi - pos));
    pos = semi + 1;
    if (!one.empty()) parse_job_spec(one, jobs);
  }
  DCOLOR_CHECK_MSG(!jobs.empty(), "batch spec '" << file_or_spec
                                                 << "' has no jobs");
  return jobs;
}

std::int64_t resolve_big_job_threshold(std::int64_t requested,
                                       const std::vector<BatchJob>& jobs) {
  if (requested >= 0) return requested;
  if (const char* env = std::getenv("DCOLOR_BIG_JOB_THRESHOLD");
      env != nullptr && *env != '\0') {
    const std::int64_t parsed = parse_int64(env, "DCOLOR_BIG_JOB_THRESHOLD");
    if (parsed >= 0) return parsed;
  }
  // Auto: "at least twice the mean job size, and at least 64k nodes" —
  // a function of the job list only (never of the worker count), so the
  // big/small split is identical on every machine and fleet size. On a
  // uniform batch nothing qualifies; a lone giant always does.
  std::int64_t total = 0;
  for (const BatchJob& job : jobs) total += static_cast<std::int64_t>(job.n);
  const auto count = static_cast<std::int64_t>(std::max<std::size_t>(
      1, jobs.size()));
  return std::max<std::int64_t>(65536, 2 * (total / count));
}

BatchReport run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options) {
  DCOLOR_CHECK_MSG(!jobs.empty(), "run_batch needs at least one job");
  const int threads =
      options.threads > 0 ? options.threads : default_setup_threads();

  BatchReport report;
  report.jobs.resize(jobs.size());

  // Snapshot-cache planning: key every job, and (in-memory mode) mark the
  // keys that occur more than once as cacheable — single-occurrence jobs
  // keep the scratch path, so a batch of all-distinct specs has the same
  // memory profile as before. File-backed mode caches everything
  // (cross-run reuse is its point).
  SnapshotCache cache(options.snapshot_dir);
  std::vector<std::optional<InstanceKey>> keys(jobs.size());
  {
    std::map<std::string, int> counts;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      keys[i] = job_key(jobs[i], options);
      if (keys[i].has_value()) ++counts[keys[i]->fingerprint()];
    }
    std::vector<InstanceKey> cacheable;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (keys[i].has_value() && counts[keys[i]->fingerprint()] > 1) {
        cacheable.push_back(*keys[i]);
      }
    }
    cache.set_cacheable(cacheable);
  }

  // Private fleet unless the caller shares one (the serve daemon). The
  // caller thread blocks on the completion latch rather than draining —
  // a shared scheduler may be running unrelated tasks.
  std::unique_ptr<sched::Scheduler> owned;
  sched::Scheduler* fleet = options.scheduler;
  if (fleet == nullptr) {
    owned = std::make_unique<sched::Scheduler>(threads);
    fleet = owned.get();
  }

  BatchExec exec;
  exec.jobs = &jobs;
  exec.options = &options;
  exec.report = &report;
  exec.cache = &cache;
  exec.keys = &keys;
  exec.threshold = resolve_big_job_threshold(options.big_job_threshold, jobs);
  exec.big_threads = std::max(1, fleet->workers());
  exec.finished.assign(jobs.size(), 0);
  exec.remaining = jobs.size();

  const sched::SchedCounters before = fleet->counters();
  // Two submit passes implement LPT admission: big jobs first at high
  // priority (each occupies one worker but fans its rounds out to every
  // idle one), then the small fleet in index order. Completion order is
  // irrelevant to the report — results land by job index.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const bool big =
          static_cast<std::int64_t>(jobs[i].n) >= exec.threshold;
      if (big != (pass == 0)) continue;
      sched::Scheduler::TaskOptions opts;
      opts.priority = big ? sched::Priority::kHigh : sched::Priority::kNormal;
      opts.big = big;
      if (big) ++report.sched.big_jobs;
      fleet->submit(&run_batch_job, &exec, static_cast<std::int64_t>(i),
                    opts);
    }
  }
  {
    std::unique_lock<std::mutex> lock(exec.done_mutex);
    exec.done_cv.wait(lock, [&] { return exec.remaining == 0; });
  }
  const sched::SchedCounters after = fleet->counters();
  report.sched.workers = fleet->workers();
  report.sched.steals = after.steals - before.steals;
  report.sched.chunks = after.chunks - before.chunks;
  report.sched.peak_queue_depth = after.peak_queue_depth;
  report.sched.peak_occupancy = after.peak_occupancy;

  report.scratch_created = static_cast<int>(exec.storage.size());
  report.scratch_reused = exec.reused;
  report.snapshot_built = cache.built();
  report.snapshot_loaded = cache.loaded();
  report.snapshot_reused = cache.reused();
  for (const BatchJobResult& r : report.jobs) {
    if (r.valid && r.error.empty()) {
      ++report.jobs_valid;
    } else {
      ++report.jobs_failed;
    }
    report.total_rounds += r.metrics.rounds;
    report.total_messages += r.metrics.total_messages;
    report.total_bits += r.metrics.total_message_bits;
    report.total_violations += r.checker_violations;
  }
  // Aggregate into the CALLER's registry (the per-job registries lived on
  // worker threads and died with their jobs). Lease accounting depends on
  // the worker count/schedule, so it goes under the kTiming quarantine.
  if (StatsRegistry* const stats = StatsRegistry::current();
      stats != nullptr) {
    stats->counter("batch.jobs").add(static_cast<std::int64_t>(jobs.size()));
    stats->counter("batch.jobs_valid").add(report.jobs_valid);
    stats->counter("batch.jobs_failed").add(report.jobs_failed);
    stats->counter("batch.rounds").add(report.total_rounds);
    stats->counter("batch.messages").add(report.total_messages);
    stats->counter("batch.message_bits").add(report.total_bits);
    stats->counter("batch.violations").add(report.total_violations);
    stats->counter("batch.scratch_created", StatDomain::kTiming)
        .add(report.scratch_created);
    stats->counter("batch.scratch_reused", StatDomain::kTiming)
        .add(report.scratch_reused);
    stats->counter("batch.snapshot_built", StatDomain::kTiming)
        .add(report.snapshot_built);
    stats->counter("batch.snapshot_loaded", StatDomain::kTiming)
        .add(report.snapshot_loaded);
    stats->counter("batch.snapshot_reused", StatDomain::kTiming)
        .add(report.snapshot_reused);
    // Scheduler taxonomy: the task count is fixed by the job list alone
    // (kStable — identical across workers, thresholds, engines); every
    // schedule-shaped reading (steals, peaks, chunk counts) and every
    // threshold-shaped one (big_jobs) is quarantined under kTiming.
    stats->counter("sched.tasks").add(static_cast<std::int64_t>(jobs.size()));
    stats->counter("sched.big_jobs", StatDomain::kTiming)
        .add(report.sched.big_jobs);
    stats->counter("sched.steals", StatDomain::kTiming)
        .add(report.sched.steals);
    stats->counter("sched.chunks", StatDomain::kTiming)
        .add(report.sched.chunks);
    stats->gauge("sched.peak_queue_depth", StatDomain::kTiming)
        .set(report.sched.peak_queue_depth);
    stats->gauge("sched.peak_occupancy", StatDomain::kTiming)
        .set(report.sched.peak_occupancy);
    stats->gauge("sched.workers", StatDomain::kTiming)
        .set(report.sched.workers);
  }
  return report;
}

namespace {

/// The inner fields of one job's JSON object (no braces). Shared by the
/// report and the streamed JSONL lines so the two are byte-compatible.
/// INVARIANT: "t" is the LAST key — stripping `, "t": {...}` from every
/// line yields a byte-identical report at every worker count, steal
/// order, threshold, and engine.
void append_job_fields(std::string& out, const BatchJobResult& r) {
  out += "\"label\": ";
  append_json_string(out, r.label);
  out += ", \"solver\": ";
  append_json_string(out, r.solver);
  out += ", \"valid\": ";
  out += r.valid ? "true" : "false";
  out += ", \"nodes\": " + std::to_string(r.nodes);
  out += ", \"edges\": " + std::to_string(r.edges);
  out += ", \"colors_used\": " + std::to_string(r.colors_used);
  {
    char hash[32];
    std::snprintf(hash, sizeof(hash), "\"%016llx\"",
                  static_cast<unsigned long long>(r.color_hash));
    out += ", \"color_hash\": ";
    out += hash;
  }
  out += ", \"rounds\": " + std::to_string(r.metrics.rounds);
  out += ", \"messages\": " + std::to_string(r.metrics.total_messages);
  out += ", \"bits\": " + std::to_string(r.metrics.total_message_bits);
  out += ", \"palette_bytes\": " + std::to_string(r.palette_bytes);
  out += ", \"violations\": " + std::to_string(r.checker_violations);
  if (!r.error.empty()) {
    out += ", \"error\": ";
    append_json_string(out, r.error);
  }
  {
    char t[96];
    std::snprintf(t, sizeof(t),
                  ", \"t\": {\"wall_ms\": %.3f, \"rss_mib\": %.1f}",
                  static_cast<double>(r.t.wall_ns) / 1e6,
                  static_cast<double>(r.t.rss_bytes) / (1024.0 * 1024.0));
    out += t;
  }
}

/// Summary fields (no braces), "t" last: schedule-dependent accounting —
/// scratch leases (bounded by the worker count) and the scheduler
/// telemetry — lives inside "t"; everything before it is a pure function
/// of the job list.
void append_summary_fields(std::string& out, const BatchReport& report) {
  out += "\"jobs\": " + std::to_string(report.jobs.size());
  out += ", \"valid\": " + std::to_string(report.jobs_valid);
  out += ", \"failed\": " + std::to_string(report.jobs_failed);
  out += ", \"total_rounds\": " + std::to_string(report.total_rounds);
  out += ", \"total_messages\": " + std::to_string(report.total_messages);
  out += ", \"total_bits\": " + std::to_string(report.total_bits);
  out += ", \"total_violations\": " + std::to_string(report.total_violations);
  out += ", \"snapshot_built\": " + std::to_string(report.snapshot_built);
  out += ", \"snapshot_loaded\": " + std::to_string(report.snapshot_loaded);
  out += ", \"snapshot_reused\": " + std::to_string(report.snapshot_reused);
  out += ", \"t\": {\"scratch_created\": " +
         std::to_string(report.scratch_created);
  out += ", \"scratch_reused\": " + std::to_string(report.scratch_reused);
  out += ", \"workers\": " + std::to_string(report.sched.workers);
  out += ", \"big_jobs\": " + std::to_string(report.sched.big_jobs);
  out += ", \"steals\": " + std::to_string(report.sched.steals);
  out += ", \"chunks\": " + std::to_string(report.sched.chunks);
  out += ", \"peak_queue_depth\": " +
         std::to_string(report.sched.peak_queue_depth);
  out += ", \"peak_occupancy\": " +
         std::to_string(report.sched.peak_occupancy);
  out += "}";
}

}  // namespace

std::string batch_stream_line(std::size_t index, const BatchJobResult& r) {
  std::string out = "{\"event\": \"job\", \"index\": " + std::to_string(index);
  out += ", ";
  append_job_fields(out, r);
  out += "}";
  return out;
}

std::string batch_stream_summary(const BatchReport& report) {
  std::string out = "{\"event\": \"summary\", ";
  append_summary_fields(out, report);
  out += "}";
  return out;
}

std::string BatchReport::to_json() const {
  std::string out = "{\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out += "    {";
    append_job_fields(out, jobs[i]);
    out += i + 1 < jobs.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"summary\": {";
  append_summary_fields(out, *this);
  out += "}\n}\n";
  return out;
}

}  // namespace dcolor
