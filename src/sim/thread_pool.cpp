#include "sim/thread_pool.h"

#include <algorithm>

namespace dcolor::detail {

SimThreadPool::SimThreadPool(int threads) {
  workers_ = std::max(0, threads - 1);
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

SimThreadPool::~SimThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void SimThreadPool::work_off(const std::function<void(int)>& job, int jobs,
                             std::uint64_t my_gen) {
  for (;;) {
    int chunk;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (generation_ != my_gen || next_chunk_ >= jobs) return;
      chunk = next_chunk_++;
    }
    job(chunk);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void SimThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    int jobs = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      jobs = jobs_;
    }
    work_off(*job, jobs, seen);
  }
}

void SimThreadPool::run(int jobs, const std::function<void(int)>& job) {
  if (jobs <= 0) return;
  if (jobs == 1 || workers_ == 0) {
    for (int i = 0; i < jobs; ++i) job(i);
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    jobs_ = jobs;
    next_chunk_ = 0;
    in_flight_ = jobs;
    gen = ++generation_;
  }
  start_cv_.notify_all();
  work_off(job, jobs, gen);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

}  // namespace dcolor::detail
