#include "sim/thread_pool.h"

#include <algorithm>

namespace dcolor::detail {

SimThreadPool::SimThreadPool(int threads) {
  workers_ = std::max(0, threads - 1);
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

SimThreadPool::~SimThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void SimThreadPool::work_off(const std::function<void(int)>& job, int jobs,
                             std::uint64_t my_gen) {
  for (;;) {
    int chunk;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (generation_ != my_gen || next_chunk_ >= jobs) return;
      chunk = next_chunk_++;
    }
    job(chunk);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void SimThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    int jobs = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      jobs = jobs_;
    }
    work_off(*job, jobs, seen);
  }
}

void SimThreadPool::run(int jobs, const std::function<void(int)>& job) {
  if (jobs <= 0) return;
  if (jobs == 1 || workers_ == 0) {
    for (int i = 0; i < jobs; ++i) job(i);
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    jobs_ = jobs;
    next_chunk_ = 0;
    in_flight_ = jobs;
    gen = ++generation_;
  }
  start_cv_.notify_all();
  work_off(job, jobs, gen);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

TaskQueue::TaskQueue(int threads) {
  const int count = std::max(1, threads);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

TaskQueue::~TaskQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskQueue::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void TaskQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void TaskQueue::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      // Drain-on-destruction: only exit once the queue is empty.
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace dcolor::detail
