#include "sim/engine.h"

#include <atomic>
#include <cstdlib>

#include "util/check.h"

namespace dcolor {

namespace {

EngineKind env_engine() {
  // Strict like DCOLOR_SIM_THREADS: a typo in the environment should read
  // as "typo", not as a silent fall-back to one engine or the other.
  static const EngineKind cached = [] {
    const char* s = std::getenv("DCOLOR_ENGINE");
    if (s == nullptr || *s == '\0') return EngineKind::kAuto;
    return engine_from_string(s);
  }();
  return cached;
}

std::atomic<EngineKind> g_default_engine{EngineKind::kAuto};

// Per-thread override set by RunScope; lets concurrent batch workers pin
// their jobs' engines independently of the process default.
thread_local EngineKind t_engine_override = EngineKind::kAuto;

}  // namespace

EngineKind engine_from_string(const std::string& name) {
  if (name == "auto") return EngineKind::kAuto;
  if (name == "scalar") return EngineKind::kScalar;
  if (name == "vector") return EngineKind::kVector;
  DCOLOR_CHECK_MSG(false, "unknown engine \"" << name
                                              << "\" (auto|scalar|vector)");
}

const char* engine_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kScalar:
      return "scalar";
    case EngineKind::kVector:
      return "vector";
    case EngineKind::kAuto:
      break;
  }
  return "auto";
}

void set_default_engine(EngineKind kind) noexcept {
  g_default_engine.store(kind, std::memory_order_relaxed);
}

EngineKind default_engine() noexcept {
  const EngineKind k = g_default_engine.load(std::memory_order_relaxed);
  return k != EngineKind::kAuto ? k : env_engine();
}

EngineKind set_engine_override(EngineKind kind) noexcept {
  const EngineKind prev = t_engine_override;
  t_engine_override = kind;
  return prev;
}

EngineKind engine_override() noexcept { return t_engine_override; }

}  // namespace dcolor
