// Synchronous message-passing network simulator (LOCAL/CONGEST kernel).
//
// Execution model, matching Section 2 of the paper:
//   * time proceeds in synchronous rounds;
//   * in every round each node may send a (possibly different) message to
//     each neighbor, receives the messages its neighbors sent in the SAME
//     round, and performs arbitrary local computation;
//   * communication flows both ways even on oriented edges.
//
// Algorithms are written as a `SyncAlgorithm`: per-node state lives inside
// the algorithm object, and `step(v, mailbox)` must only touch node v's
// state plus the mailbox. (C++ cannot enforce this cheaply; the test suite
// includes order-independence checks that catch violations.)
//
// Engine (see DESIGN.md, "Execution engine"):
//   * SPARSE SCHEDULING — a node is stepped only when its inbox is
//     non-empty or the round matches the wake-up it registered through
//     `next_active_round`; algorithms that keep the default hook are
//     stepped every round (the historical dense behavior).
//   * PARALLEL ROUNDS — within a round, active nodes are partitioned into
//     contiguous chunks stepped by a small thread pool; per-chunk outboxes
//     are merged in chunk order, so delivery order — and therefore every
//     result and metric — is bit-identical to the serial engine.
//   * FLAT INBOXES — messages live in one flat per-round array grouped by
//     destination (CSR-style); no per-node inbox vectors are allocated.
//   * O(1) TERMINATION — a done-node counter plus the in-flight message
//     count replace the per-round O(n) scans.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/message.h"
#include "sim/metrics.h"

namespace dcolor {

class DenseKernel;

/// Interface a node uses inside one round: read this round's inbox and
/// queue messages for delivery next round.
///
/// The engine hands every Mailbox a shared outbox sink so stepping a node
/// performs no allocation; a default-constructed sink is used when a
/// Mailbox is built standalone (white-box tests).
class Mailbox {
 public:
  /// Sentinel destination: deliver to every neighbor of `from`. One outbox
  /// entry stands for deg(from) messages (the engine expands it in
  /// adjacency order at delivery), so broadcasts cost O(1) outbox work.
  static constexpr NodeId kBroadcastTo = -1;

  struct Outgoing {
    NodeId to;  ///< destination node, or kBroadcastTo
    NodeId from;
    Message message;
  };

  /// Standalone mailbox owning its outbox (tests, manual stepping).
  Mailbox(NodeId self, std::span<const Envelope> inbox)
      : Mailbox(self, inbox, nullptr) {}

  /// Engine mailbox appending into `sink` (entries from `sink->size()` on
  /// belong to this node).
  Mailbox(NodeId self, std::span<const Envelope> inbox,
          std::vector<Outgoing>* sink)
      : self_(self),
        inbox_(inbox),
        sink_(sink != nullptr ? sink : &own_),
        base_(sink_->size()) {}

  NodeId self() const noexcept { return self_; }

  /// Messages delivered to this node this round (sent last round).
  std::span<const Envelope> inbox() const noexcept { return inbox_; }

  /// Queue `m` for delivery to neighbor `to` next round.
  void send(NodeId to, Message m) {
    sink_->push_back({to, self_, std::move(m)});
  }

  /// Queue `m` for delivery to EVERY neighbor next round (one copy each,
  /// identical to calling send() per neighbor in adjacency order, but with
  /// a single outbox entry). Callers on isolated nodes must skip the call;
  /// `broadcast()` below does.
  void send_to_all_neighbors(Message m) {
    sink_->push_back({kBroadcastTo, self_, std::move(m)});
  }

  /// Messages this node queued so far this round.
  std::span<Outgoing> outgoing() noexcept {
    return {sink_->data() + base_, sink_->size() - base_};
  }

 private:
  NodeId self_;
  std::span<const Envelope> inbox_;
  std::vector<Outgoing> own_;  ///< before sink_/base_: they may reference it
  std::vector<Outgoing>* sink_;
  std::size_t base_;
};

/// A distributed algorithm. One object per execution; per-node state is
/// stored in arrays indexed by NodeId.
class SyncAlgorithm {
 public:
  virtual ~SyncAlgorithm() = default;

  /// Round 0 setup for node v: may send initial messages, no inbox yet.
  virtual void init(NodeId v, Mailbox& mail) = 0;

  /// One round for node v.
  virtual void step(NodeId v, int round, Mailbox& mail) = 0;

  /// True once node v has produced its final output. Nodes keep receiving
  /// (and may keep forwarding) until the whole network is done. The value
  /// for node v may only change inside init(v) / step(v).
  virtual bool done(NodeId v) const = 0;

  /// `next_active_round` return value: step this node every round (the
  /// default, dense behavior). Once returned for a node it is permanent —
  /// the engine stops asking.
  static constexpr std::int64_t kEveryRound = 0;
  /// `next_active_round` return value: only step this node when its inbox
  /// is non-empty.
  static constexpr std::int64_t kNoWakeup = -1;

  /// Sparse-scheduling hook. Called once after init(v) (with
  /// `after_round == 0`) and again after steps of v; must return
  /// kEveryRound, kNoWakeup, or the next round > after_round at which v
  /// must be stepped even with an empty inbox. Contract for overriders:
  /// (1) whenever v's inbox is empty and the round is not a registered
  /// wake-up, step(v, round, ...) must be a no-op — no sends, no state
  /// changes, no done() transition; (2) a wake-up round the hook has
  /// returned may not move EARLIER until v has been stepped in it — the
  /// engine skips re-querying while a future wake is pending (later
  /// refinements are picked up at or after the pending round). Nodes with
  /// a non-empty inbox are always stepped regardless of this hook.
  virtual std::int64_t next_active_round(NodeId v,
                                         std::int64_t after_round) const {
    (void)v;
    (void)after_round;
    return kEveryRound;
  }

  /// Dense-round kernel of this algorithm, or null when it only supports
  /// the scalar path (the default). The returned object is typically the
  /// algorithm itself; it must stay valid for the whole run. See
  /// sim/engine.h for the selection policy and the bit-identity contract.
  virtual DenseKernel* dense_kernel() { return nullptr; }
};

/// The dense-round seam a broadcast-shaped algorithm implements to opt
/// into the vector engine. The kernel owns the pending-broadcast state in
/// SoA payload lanes; the engine keeps ownership of scheduling (active
/// sets, wake-ups, done transitions, termination) and of all accounting
/// merges. Obligations, enforced by the cross-engine fuzz differential:
///
///   * state transitions must be bit-identical to SyncAlgorithm::step,
///     including algorithm-side tallies like compute-op counts;
///   * reported per-chunk tallies (DenseChunk) must match what the
///     scalar path's account pass would have produced for the same
///     sends: a broadcast from v counts degree(v) messages and
///     degree(v) · bits traffic, and broadcasts from isolated nodes are
///     not queued at all;
///   * step_batch must be thread-safe for disjoint active ranges (write
///     only node-local lanes of the stepped nodes plus the chunk).
class DenseKernel {
 public:
  virtual ~DenseKernel() = default;

  /// Takes ownership of queued scalar sends (the engine's to_deliver
  /// buffer at a round boundary) as pending dense broadcasts. Returns
  /// false — leaving the kernel's pending state EMPTY and the buffer
  /// untouched — when any entry is not representable (non-broadcast, or
  /// an unknown message shape); the engine then stays scalar.
  virtual bool absorb(std::span<const Mailbox::Outgoing> queued) = 0;

  /// Inverse of absorb: re-materializes all pending broadcasts as scalar
  /// Outgoing entries (identical message content and declared widths, in
  /// pending-sender order) and clears the pending state. Used when the
  /// engine hands a round back to the scalar path.
  virtual void spill(std::vector<Mailbox::Outgoing>& sink) = 0;

  /// Point-to-point messages the pending broadcasts stand for
  /// (Σ degree(sender)); 0 means nothing is in flight.
  virtual std::int64_t pending_messages() const = 0;

  /// May this round be stepped densely? Kernels that cannot represent
  /// some round shape decline here and the engine spills + falls back
  /// for that round. Default: every round.
  virtual bool can_step(std::int64_t round) const {
    (void)round;
    return true;
  }

  /// Delivery for `round`: retire the pending broadcasts. Runs serially,
  /// strictly before any step_batch of the round. The kernel chooses
  /// between two ingestion styles:
  ///   * LAZY — stamp the payloads readable and append every receiver to
  ///     `touched` (deduplicated); receivers then ingest inside their
  ///     step_batch call.
  ///   * EAGER — apply the receivers' state updates right here
  ///     (sender-side scatter) and append only the receivers that still
  ///     need a step. A receiver may be omitted ONLY when skipping its
  ///     step is observationally equivalent to the scalar path stepping
  ///     it: no send, no done() transition, and no wake-up re-query
  ///     (wake_round > round) can result from the ingest alone. Omitted
  ///     receivers shrink metrics.peak_active_nodes relative to the
  ///     scalar path — the one RoundMetrics field the engine contract
  ///     (sim/engine.h) exempts from cross-engine identity.
  /// Nodes with a due wake-up are stepped regardless of `touched`.
  virtual void deliver(std::int64_t round, std::vector<NodeId>& touched) = 0;

  /// Step nodes active[lo..hi) for `round`: read payloads retired by
  /// deliver(round, ...), queue new pending broadcasts into node-local
  /// lanes, record senders/tallies into `chunk`. `message_bit_cap` > 0
  /// enforces the CONGEST cap exactly like the scalar account pass.
  virtual void step_batch(std::int64_t round, std::span<const NodeId> active,
                          std::size_t lo, std::size_t hi, int message_bit_cap,
                          DenseChunk& chunk) = 0;

  /// Called after all chunks of a round, in chunk order, with each
  /// chunk's sender list: the kernel appends them to its pending-sender
  /// order (identical to a serial sweep at any thread count).
  virtual void commit_senders(std::span<const NodeId> senders) = 0;
};

namespace sched {
class Scheduler;
}

/// Drives a SyncAlgorithm over a Graph and accounts rounds and bits.
class Network {
 public:
  explicit Network(const Graph& g);
  ~Network();  // out of line: pool_ is incomplete here

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Runs until all nodes are done and no messages are in flight, or
  /// `max_rounds` elapses (then throws CheckError — distributed algorithms
  /// here have proven round bounds, so hitting the cap is a bug).
  ///
  /// `message_bit_cap` > 0 enforces the CONGEST discipline at the
  /// simulator level: any single message wider than the cap throws. Use
  /// it to certify an algorithm's bandwidth claim rather than trusting
  /// post-hoc metrics.
  RoundMetrics run(SyncAlgorithm& algo, std::int64_t max_rounds,
                   int message_bit_cap = 0);

  const Graph& graph() const noexcept { return *graph_; }

  /// Worker threads used to step nodes within a round (1 = serial).
  /// Per-instance override; 0 restores the process default.
  void set_num_threads(int threads) noexcept { num_threads_ = threads; }

  /// Threads this instance will use: instance override if set, else the
  /// process default.
  int num_threads() const noexcept;

  /// Process-wide default thread count (0 resets to the DCOLOR_SIM_THREADS
  /// environment variable, or 1 — the serial fallback — when unset).
  /// Results are bit-identical for every thread count; only wall-clock
  /// changes.
  static void set_default_num_threads(int threads) noexcept;
  static int default_num_threads() noexcept;

  /// Thread-LOCAL override consulted between the instance setting and the
  /// process default (0 clears it). This is how a RunScope pins the
  /// simulators of one batch job to a thread count without touching the
  /// process-wide knob other workers read concurrently. Returns the
  /// previous override so scopes can nest.
  static int set_thread_override(int threads) noexcept;
  static int thread_override() noexcept;

  /// Per-instance engine selection (kAuto = fall through to the
  /// thread-local override, then the process default — see engine.h).
  void set_engine(EngineKind kind) noexcept { engine_ = kind; }

  /// Engine this instance will select rounds with.
  EngineKind engine() const noexcept;

 private:
  const Graph* graph_;
  int num_threads_ = 0;  ///< 0 = use process default
  EngineKind engine_ = EngineKind::kAuto;  ///< kAuto = inherit
  /// Private chunk-execution fleet, created lazily for round parallelism
  /// when no ambient scheduler is installed on this thread (i.e. solves
  /// driven straight from main). On a fleet worker — a big batch job —
  /// rounds run as regions of sched::Scheduler::current() instead, so
  /// idle batch workers steal round chunks.
  std::unique_ptr<sched::Scheduler> pool_;
};

/// Convenience: broadcast the same message to all neighbors.
void broadcast(const Graph& g, Mailbox& mail, const Message& m);

}  // namespace dcolor
