// Synchronous message-passing network simulator (LOCAL/CONGEST kernel).
//
// Execution model, matching Section 2 of the paper:
//   * time proceeds in synchronous rounds;
//   * in every round each node may send a (possibly different) message to
//     each neighbor, receives the messages its neighbors sent in the SAME
//     round, and performs arbitrary local computation;
//   * communication flows both ways even on oriented edges.
//
// Algorithms are written as a `SyncAlgorithm`: per-node state lives inside
// the algorithm object, and `step(v, mailbox)` must only touch node v's
// state plus the mailbox. (C++ cannot enforce this cheaply; the test suite
// includes order-independence checks that catch violations.)
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sim/message.h"
#include "sim/metrics.h"

namespace dcolor {

/// Interface a node uses inside one round: read this round's inbox and
/// queue messages for delivery next round.
class Mailbox {
 public:
  Mailbox(NodeId self, std::span<const Envelope> inbox) noexcept
      : self_(self), inbox_(inbox) {}

  NodeId self() const noexcept { return self_; }

  /// Messages delivered to this node this round (sent last round).
  std::span<const Envelope> inbox() const noexcept { return inbox_; }

  /// Queue `m` for delivery to neighbor `to` next round.
  void send(NodeId to, Message m) { outbox_.push_back({to, std::move(m)}); }

  struct Outgoing {
    NodeId to;
    Message message;
  };
  std::vector<Outgoing>& outgoing() noexcept { return outbox_; }

 private:
  NodeId self_;
  std::span<const Envelope> inbox_;
  std::vector<Outgoing> outbox_;
};

/// A distributed algorithm. One object per execution; per-node state is
/// stored in arrays indexed by NodeId.
class SyncAlgorithm {
 public:
  virtual ~SyncAlgorithm() = default;

  /// Round 0 setup for node v: may send initial messages, no inbox yet.
  virtual void init(NodeId v, Mailbox& mail) = 0;

  /// One round for node v.
  virtual void step(NodeId v, int round, Mailbox& mail) = 0;

  /// True once node v has produced its final output. Nodes keep receiving
  /// (and may keep forwarding) until the whole network is done.
  virtual bool done(NodeId v) const = 0;
};

/// Drives a SyncAlgorithm over a Graph and accounts rounds and bits.
class Network {
 public:
  explicit Network(const Graph& g) : graph_(&g) {}

  /// Runs until all nodes are done and no messages are in flight, or
  /// `max_rounds` elapses (then throws CheckError — distributed algorithms
  /// here have proven round bounds, so hitting the cap is a bug).
  ///
  /// `message_bit_cap` > 0 enforces the CONGEST discipline at the
  /// simulator level: any single message wider than the cap throws. Use
  /// it to certify an algorithm's bandwidth claim rather than trusting
  /// post-hoc metrics.
  RoundMetrics run(SyncAlgorithm& algo, std::int64_t max_rounds,
                   int message_bit_cap = 0);

  const Graph& graph() const noexcept { return *graph_; }

 private:
  const Graph* graph_;
};

/// Convenience: broadcast the same message to all neighbors.
void broadcast(const Graph& g, Mailbox& mail, const Message& m);

}  // namespace dcolor
