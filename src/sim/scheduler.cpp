#include "sim/scheduler.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace dcolor::sched {

namespace {

/// Ambient scheduler of the executing thread (set for fleet workers,
/// null elsewhere). Plain thread_local pointer: reads are free on the
/// solver hot path.
thread_local Scheduler* tls_current = nullptr;

}  // namespace

Scheduler* Scheduler::current() noexcept { return tls_current; }

// ---- TaskRing --------------------------------------------------------------

void Scheduler::TaskRing::push(const Task& t) {
  if (count == slots.size()) {
    // Grow to the next power of two and unroll the wrap so the live
    // window is contiguous again. Amortized: a warm ring never enters.
    std::vector<Task> bigger(std::max<std::size_t>(16, slots.size() * 2));
    for (std::size_t i = 0; i < count; ++i) {
      bigger[i] = slots[(head + i) & (slots.size() - 1)];
    }
    slots.swap(bigger);
    head = 0;
  }
  slots[(head + count) & (slots.size() - 1)] = t;
  ++count;
}

Scheduler::Task Scheduler::TaskRing::pop() {
  const Task t = slots[head];
  head = (head + 1) & (slots.size() - 1);
  --count;
  return t;
}

// ---- Scheduler -------------------------------------------------------------

Scheduler::Scheduler(int workers) : workers_(std::max(0, workers)) {
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Scheduler::submit(TaskFn fn, void* ctx, std::int64_t arg,
                       TaskOptions opts) {
  if (workers_ == 0) {
    // Worker-less degenerate form: run inline so submit/drain semantics
    // still hold without a fleet (used by tests and threads=1 fallbacks
    // that want the code path, not the concurrency).
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.tasks;
      if (opts.big) ++counters_.big_tasks;
    }
    fn(ctx, arg);
    return;
  }
  const int pri = std::clamp(static_cast<int>(opts.priority), 0,
                             kPriorityLevels - 1);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queues_[pri].push(Task{fn, ctx, arg});
    ++queued_;
    counters_.peak_queue_depth = std::max(
        counters_.peak_queue_depth, static_cast<std::int64_t>(queued_));
    if (opts.big) ++counters_.big_tasks;
  }
  cv_.notify_one();
}

void Scheduler::submit(std::function<void()> task, TaskOptions opts) {
  // Owning shim over the POD path: box the function, unbox in the
  // trampoline. Low-rate convenience — the batch hot loop uses the POD
  // overload directly.
  auto* boxed = new std::function<void()>(std::move(task));
  submit(
      [](void* ctx, std::int64_t) {
        std::unique_ptr<std::function<void()>> fn(
            static_cast<std::function<void()>*>(ctx));
        (*fn)();
      },
      boxed, 0, opts);
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return queued_ == 0 && busy_tasks_ == 0; });
}

bool Scheduler::task_available_locked() const noexcept { return queued_ > 0; }

Scheduler::Task Scheduler::pop_task_locked() {
  for (int pri = kPriorityLevels - 1; pri >= 0; --pri) {
    if (!queues_[pri].empty()) {
      --queued_;
      return queues_[pri].pop();
    }
  }
  // Unreachable: callers check task_available_locked() first.
  return Task{nullptr, nullptr, 0};
}

Scheduler::Region* Scheduler::claimable_region_locked() const noexcept {
  for (Region* r = regions_; r != nullptr; r = r->next_region) {
    if (r->next < r->chunks) return r;
  }
  return nullptr;
}

void Scheduler::work_region(std::unique_lock<std::mutex>& lock, Region& r,
                            bool initiator) {
  while (r.next < r.chunks) {
    const int chunk = r.next++;
    ++active_;
    counters_.peak_occupancy = std::max(
        counters_.peak_occupancy, static_cast<std::int64_t>(active_));
    lock.unlock();
    r.fn(chunk);
    lock.lock();
    --active_;
    ++counters_.chunks;
    if (!initiator) ++counters_.steals;
    if (++r.completed == r.chunks) cv_.notify_all();
  }
}

void Scheduler::worker_loop() {
  tls_current = this;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Steal-first policy: finish in-flight fork-joins before admitting
    // new tasks — a blocked region initiator frees a slot sooner than a
    // fresh job does, so helping first minimizes fleet makespan.
    if (Region* r = claimable_region_locked()) {
      work_region(lock, *r, /*initiator=*/false);
      continue;
    }
    if (task_available_locked()) {
      const Task t = pop_task_locked();
      ++busy_tasks_;
      ++active_;
      counters_.peak_occupancy = std::max(
          counters_.peak_occupancy, static_cast<std::int64_t>(active_));
      lock.unlock();
      t.fn(t.ctx, t.arg);
      lock.lock();
      --active_;
      --busy_tasks_;
      ++counters_.tasks;
      if (queued_ == 0 && busy_tasks_ == 0) cv_.notify_all();  // drain()
      continue;
    }
    if (stop_) return;  // drain-on-destruction: only exit once idle
    cv_.wait(lock);
  }
}

void Scheduler::parallel_for(int chunks, ChunkFn fn) {
  if (chunks <= 0) return;
  if (chunks == 1 || workers_ == 0) {
    for (int c = 0; c < chunks; ++c) fn(c);
    return;
  }
  Region region(fn, chunks);
  std::unique_lock<std::mutex> lock(mutex_);
  region.prev = regions_tail_;
  if (regions_tail_ != nullptr) {
    regions_tail_->next_region = &region;
  } else {
    regions_ = &region;
  }
  regions_tail_ = &region;
  cv_.notify_all();  // wake idle workers to steal
  work_region(lock, region, /*initiator=*/true);
  cv_.wait(lock, [&] { return region.completed == region.chunks; });
  // Unlink; claims happen under this same mutex, so no worker can hold a
  // stale pointer once completed == chunks.
  if (region.prev != nullptr) {
    region.prev->next_region = region.next_region;
  } else {
    regions_ = region.next_region;
  }
  if (region.next_region != nullptr) {
    region.next_region->prev = region.prev;
  } else {
    regions_tail_ = region.prev;
  }
}

SchedCounters Scheduler::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace dcolor::sched
