// Execution-engine selection for the simulator (see SIMULATOR.md,
// "Dense-round engine").
//
// The simulator has two ways to materialize a round:
//
//   * SCALAR — the sparse wake-up path in Network::run: last round's
//     sends are regrouped into per-destination CSR inboxes (one Envelope
//     copy per delivered message) and every active node is stepped
//     through the virtual SyncAlgorithm::step with a Mailbox.
//
//   * VECTOR — the dense-round path (DenseRoundEngine, engine.cpp): for
//     algorithms whose traffic is broadcast-shaped, the pending
//     broadcasts live in structure-of-arrays payload lanes owned by the
//     algorithm's DenseKernel. Delivery marks receivers straight off the
//     CSR adjacency (no Envelope is ever built) and whole batches of
//     active nodes are stepped by one kernel call whose inner loops read
//     neighbor payload lanes directly — the flat per-agent step shape
//     that SIMD (util/simd.h) accelerates.
//
// Selection is per ROUND, not per run: kAuto enters the vector path on
// the first dense round (>= 50% of nodes sent, which covers every
// broadcast_fast_path round) and stays on it while the kernel keeps
// absorbing the traffic; kVector forces the vector path whenever the
// algorithm has a kernel and the round shape permits; kScalar never
// leaves the sparse path. A kernel may decline a round (can_step), in
// which case its pending broadcasts are spilled back into scalar
// envelopes — mixed-engine runs are a supported, tested configuration.
//
// Contract: every algorithm observable of a run — final colors,
// RoundMetrics (including local_compute_ops), and checker violations —
// is bit-identical between the two paths at every thread count, with
// ONE carve-out: peak_active_nodes reports the nodes an engine actually
// stepped, and the vector path's EAGER ingest style (see
// DenseKernel::deliver) legitimately steps fewer nodes than the scalar
// path — receivers whose step would be observationally a no-op are
// skipped; that is where part of the speedup comes from. So
// peak_active_nodes is engine-dependent by design, like the trace
// timing fields. Trace records additionally say which engine
// materialized each round (the engine/fast-path/timing fields are the
// only other ones allowed to differ). The cross-engine fuzz
// differential (check/fuzz.h) enforces this continuously.
//
// Resolution order for the engine kind (mirrors the thread-count knobs):
// instance setting (Network::set_engine) > thread-local override
// (RunScope, via set_engine_override) > process default
// (set_default_engine / the DCOLOR_ENGINE environment variable) > kAuto.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace dcolor {

enum class EngineKind : std::uint8_t {
  kAuto = 0,   ///< per-round density heuristic (the default)
  kScalar,     ///< always the sparse per-node path
  kVector,     ///< dense kernel whenever the algorithm provides one
};

/// "auto" | "scalar" | "vector" -> EngineKind; throws CheckError else.
EngineKind engine_from_string(const std::string& name);
const char* engine_name(EngineKind kind) noexcept;

/// Process-wide default engine (kAuto resets to the DCOLOR_ENGINE
/// environment variable, or kAuto when unset).
void set_default_engine(EngineKind kind) noexcept;
EngineKind default_engine() noexcept;

/// Thread-LOCAL override consulted between the instance setting and the
/// process default; this is how a RunScope pins one batch job's engine
/// without touching the process-wide knob. Returns the previous override
/// so scopes can nest (kAuto clears it).
EngineKind set_engine_override(EngineKind kind) noexcept;
EngineKind engine_override() noexcept;

/// Per-chunk output of a DenseKernel::step_batch call. Chunks cover
/// contiguous ranges of the round's active vector; the engine commits
/// them in chunk order, so the merged sender order — and with it every
/// tally — is identical to a serial sweep at any thread count.
struct DenseChunk {
  std::vector<NodeId> senders;  ///< nodes that queued a broadcast, step order
  std::int64_t msgs = 0;        ///< point-to-point messages those stand for
  std::int64_t bits = 0;        ///< Σ degree(sender) · message bits
  std::int64_t ops = 0;         ///< kernel-internal tally (algorithm use)
  int max_bits = 0;             ///< widest single message queued

  void clear() {
    senders.clear();
    msgs = bits = ops = 0;
    max_bits = 0;
  }
};

}  // namespace dcolor
